package bgpintent

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// TestGenGoldens regenerates the seed-equivalence goldens; run manually
// with BGPINTENT_GEN_GOLDENS=1.
func TestGenGoldens(t *testing.T) {
	if os.Getenv("BGPINTENT_GEN_GOLDENS") != "1" {
		t.Skip("set BGPINTENT_GEN_GOLDENS=1")
	}
	c, err := NewSyntheticCorpus(CorpusOptions{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Classify(Params{Parallelism: 1})
	var tsv bytes.Buffer
	if err := res.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_synthetic.tsv", tsv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	info := SnapshotInfo{Created: time.Unix(1714521600, 0).UTC(), Source: "golden",
		Tuples: c.Tuples(), Paths: c.Paths(), VantagePoints: len(c.VantagePoints()),
		Communities: len(c.Communities()), LargeCommunities: c.LargeCommunities()}
	if err := res.WriteSnapshot(&snap, info); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_synthetic.snap", snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("goldens: %d tsv bytes, %d snap bytes", tsv.Len(), snap.Len())
}

// TestGenClassicGoldens regenerates the classic-only goldens — the
// pre-large-community output contract (TSV, JSON, v1 and v2 snapshot
// bytes) that a corpus without any large communities must reproduce
// forever. Run manually with BGPINTENT_GEN_GOLDENS=1.
func TestGenClassicGoldens(t *testing.T) {
	if os.Getenv("BGPINTENT_GEN_GOLDENS") != "1" {
		t.Skip("set BGPINTENT_GEN_GOLDENS=1")
	}
	c, err := NewSyntheticCorpus(CorpusOptions{Small: true, DisableLargeCommunities: true})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Classify(Params{Parallelism: 1})
	var tsv bytes.Buffer
	if err := res.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_classic.tsv", tsv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_classic.json", jsonBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	info := SnapshotInfo{Created: time.Unix(1714521600, 0).UTC(), Source: "golden",
		Tuples: c.Tuples(), Paths: c.Paths(), VantagePoints: len(c.VantagePoints()),
		Communities: len(c.Communities()), LargeCommunities: c.LargeCommunities()}
	var snap bytes.Buffer
	if err := res.WriteSnapshot(&snap, info); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_classic.snap", snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := res.WriteSnapshotV2(&v2, info); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_classic.v2snap", v2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("classic goldens: %d tsv, %d json, %d snap, %d v2snap bytes",
		tsv.Len(), jsonBuf.Len(), snap.Len(), v2.Len())
}

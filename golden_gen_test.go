package bgpintent

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// TestGenGoldens regenerates the seed-equivalence goldens; run manually
// with BGPINTENT_GEN_GOLDENS=1.
func TestGenGoldens(t *testing.T) {
	if os.Getenv("BGPINTENT_GEN_GOLDENS") != "1" {
		t.Skip("set BGPINTENT_GEN_GOLDENS=1")
	}
	c, err := NewSyntheticCorpus(CorpusOptions{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Classify(Params{Parallelism: 1})
	var tsv bytes.Buffer
	if err := res.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_synthetic.tsv", tsv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	info := SnapshotInfo{Created: time.Unix(1714521600, 0).UTC(), Source: "golden",
		Tuples: c.Tuples(), Paths: c.Paths(), VantagePoints: len(c.VantagePoints()),
		Communities: len(c.Communities()), LargeCommunities: c.LargeCommunities()}
	if err := res.WriteSnapshot(&snap, info); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_synthetic.snap", snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("goldens: %d tsv bytes, %d snap bytes", tsv.Len(), snap.Len())
}

#!/usr/bin/env bash
# Serve-bench smoke, run by CI and usable locally: build the tools,
# write a v2 (mmap-able) snapshot for a tiny corpus, exercise
# snapconvert both directions, boot intentd from the v2 snapshot, run
# the intentload closed-loop harness against it, and validate the
# BENCH_serve.json it emits. Also boots a replica polling the origin's
# /v1/snapshot endpoint and proves the poll/swap/degrade loop works
# end to end. With BGPINTENT_SERVE_GUARD=1 the measured p99 is compared
# against the committed BENCH_serve.json baseline (+25% budget).
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
bin="$work/bin"
log="$work/intentd.log"
replog="$work/replica.log"
pid=""
rpid=""
cleanup() {
    [ -n "$rpid" ] && kill -9 "$rpid" 2>/dev/null || true
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() {
    echo "SERVE-BENCH FAIL: $*" >&2
    [ -s "$log" ] && sed 's/^/  intentd: /' "$log" >&2
    [ -s "$replog" ] && sed 's/^/  replica: /' "$replog" >&2
    exit 1
}

echo "== build"
go build -o "$bin/" ./cmd/gencorpus ./cmd/intentinfer ./cmd/intentd ./cmd/intentload ./cmd/snapconvert

echo "== generate tiny corpus + v2 snapshot"
"$bin/gencorpus" -out "$work/corpus" -scale tiny -days 1 >/dev/null
"$bin/intentinfer" -rib "$work/corpus/*.rib.mrt" -updates "$work/corpus/*.updates.mrt" \
    -as2org "$work/corpus/as2org.txt" -format snapshot -o "$work/intent.snap" >/dev/null
head -c 10 "$work/intent.snap" | od -An -tu1 | grep ' 2$' >/dev/null || fail "intentinfer default is not a v2 snapshot"

echo "== snapconvert round trip (v2 -> v1 -> v2) preserves verdicts"
"$bin/snapconvert" -verify "$work/intent.snap" >/dev/null || fail "v2 snapshot fails verification"
"$bin/snapconvert" -in "$work/intent.snap" -out "$work/intent.v1.snap" -to 1 >/dev/null
"$bin/snapconvert" -in "$work/intent.v1.snap" -out "$work/intent.rt.snap" -to 2 >/dev/null
cmp -s "$work/intent.snap" "$work/intent.rt.snap" || fail "v2->v1->v2 round trip is not byte-identical"

start_intentd() {
    : > "$log"
    "$bin/intentd" -addr 127.0.0.1:0 -drain-timeout 5s "$@" >"$log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr=$(sed -n 's/^listening on //p' "$log" | head -1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || fail "intentd exited during startup"
        sleep 0.1
    done
    [ -n "$addr" ] || fail "intentd never reported its listen address"
}

stop_pid() {
    local p=$1
    kill -TERM "$p" 2>/dev/null || true
    for _ in $(seq 1 100); do
        kill -0 "$p" 2>/dev/null || return 0
        sleep 0.1
    done
    fail "process $p did not exit within 10s of SIGTERM"
}

curl_ok() { curl -sf --max-time 10 "$@" || fail "curl $* failed"; }

echo "== boot origin intentd from the v2 snapshot"
start_intentd -snapshot "$work/intent.snap"
origin_addr=$addr
curl_ok "http://$origin_addr/v1/health" | grep '"mode": "mmap"' >/dev/null || fail "origin is not serving the mmap path"
curl_ok "http://$origin_addr/metrics" | grep '^intentd_snapshot_mmap 1$' >/dev/null || fail "mmap gauge not set"

echo "== replica polls the origin's /v1/snapshot"
: > "$replog"
"$bin/intentd" -addr 127.0.0.1:0 -drain-timeout 5s \
    -replica -snapshot-url "http://$origin_addr/v1/snapshot" \
    -poll-interval 1s -snapshot-cache "$work/replica-cache" >"$replog" 2>&1 &
rpid=$!
rep_addr=""
for _ in $(seq 1 300); do
    rep_addr=$(sed -n 's/^listening on //p' "$replog" | head -1)
    [ -n "$rep_addr" ] && break
    kill -0 "$rpid" 2>/dev/null || fail "replica intentd exited during startup"
    sleep 0.1
done
[ -n "$rep_addr" ] || fail "replica never reported its listen address"
for _ in $(seq 1 100); do
    status=$(curl -sf --max-time 10 "http://$rep_addr/v1/health" | sed -n 's/.*"status": "\([a-z]*\)".*/\1/p' | head -1)
    [ "$status" = "healthy" ] && break
    sleep 0.1
done
[ "$status" = "healthy" ] || fail "replica never became healthy (status: ${status:-none})"
rep_health=$(curl_ok "http://$rep_addr/v1/health")
echo "$rep_health" | grep '"source": "replica-url"' >/dev/null || fail "replica provenance missing"
echo "$rep_health" | grep '"mode": "replica"' >/dev/null || fail "replica mode missing"
comm=$(curl_ok "http://$origin_addr/v1/stats" | sed -n 's/.*"communities": \([0-9]*\).*/\1/p' | head -1)
[ -n "$comm" ] || fail "origin stats unreadable"

echo "== replica degrades (not dies) when the origin disappears"
stop_pid "$pid"; pid=""
sleep 2.5
curl_ok "http://$rep_addr/v1/stats" >/dev/null || fail "replica stopped serving after origin death"
curl -sf --max-time 10 "http://$rep_addr/v1/health" | grep -E '"status": "(stale|healthy)"' >/dev/null \
    || fail "replica health unreadable after origin death"
curl -sf --max-time 10 "http://$rep_addr/metrics" | grep '^intentd_replica_poll_errors_total [1-9]' >/dev/null \
    || fail "replica poll errors not counted after origin death"
stop_pid "$rpid"; rpid=""

echo "== load harness against a fresh origin"
start_intentd -snapshot "$work/intent.snap"
"$bin/intentload" -url "http://$addr" -snapshot "$work/intent.snap" \
    -mode closed -duration "${BGPINTENT_SERVE_DURATION:-5s}" -concurrency 4 -seed 1 \
    -server-pid "$pid" -out "$work/BENCH_serve.json" || fail "intentload run failed"
stop_pid "$pid"; pid=""

echo "== BENCH_serve.json schema"
"$bin/intentload" -check "$work/BENCH_serve.json" || fail "report schema validation"
python3 - "$work/BENCH_serve.json" <<'PYEOF' || fail "report field validation"
import json, sys
r = json.load(open(sys.argv[1]))
required = ["go_version", "num_cpu", "gomaxprocs", "mode", "duration_seconds",
            "concurrency", "seed", "paths", "requests", "errors", "qps",
            "p50_us", "p90_us", "p99_us", "p999_us", "max_us", "mean_us", "rss_bytes"]
missing = [k for k in required if k not in r]
if missing:
    sys.exit(f"missing fields: {missing}")
if r["requests"] <= 0 or r["qps"] <= 0:
    sys.exit(f"implausible run: {r['requests']} requests, {r['qps']} qps")
if not (r["p50_us"] <= r["p99_us"] <= r["p999_us"] <= r["max_us"]):
    sys.exit("latency quantiles out of order")
if r["rss_bytes"] <= 0:
    sys.exit("rss_bytes not sampled")
print(f"report OK: {r['qps']:.0f} qps, p99 {r['p99_us']:.0f}us, rss {r['rss_bytes']>>20}MiB")
PYEOF

if [ "${BGPINTENT_SERVE_GUARD:-0}" = "1" ] && [ -f BENCH_serve.json ]; then
    echo "== p99 regression guard vs committed baseline"
    # The committed baseline was measured on a quiet machine; CI runners
    # are slower and noisier, so the smoke budget is 2x (catches losing
    # the cached/zero-alloc serving path, not scheduler jitter). Tighten
    # via BGPINTENT_SERVE_MAX_REGRESS for same-machine comparisons —
    # intentload's own default budget is 0.25.
    "$bin/intentload" -check "$work/BENCH_serve.json" -baseline BENCH_serve.json \
        -max-regress "${BGPINTENT_SERVE_MAX_REGRESS:-1.0}" \
        || fail "p99 regressed past the committed baseline budget"
fi

echo "SERVE-BENCH OK"

#!/usr/bin/env bash
# CommunityWatch ground-truth smoke, run by CI and usable locally.
# Three gates, all at fixed seeds:
#
#   1. The precision/recall contract: internal/anomaly's scripted
#      ground-truth test injects a spike, a community-stripping event
#      and a flap into the simulated feed and asserts every event is
#      detected with the correct inferred-semantics attribution and
#      ZERO false positives at the committed thresholds.
#   2. The public-package path: examples/anomaly picks its own event
#      subjects from a fresh classification, replays the scripted feed
#      through the engine, and must report every event detected.
#   3. The daemon path: intentd -live serves /v1/anomalies with sane
#      provenance, rejects bad parameters, and reports detector health
#      (including lag) at /v1/health.
#
# Exits nonzero on the first violated assertion.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
bin="$work/bin"
log="$work/intentd.log"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "ANOMALY FAIL: $*" >&2; [ -s "$log" ] && tail -40 "$log" | sed 's/^/  intentd: /' >&2; exit 1; }

echo "== ground truth: all scripted events detected, zero false positives (race)"
go test -race -run 'TestGroundTruthScriptedEvents' -v ./internal/anomaly/ \
    || fail "ground-truth precision/recall test"

echo "== example driver: self-picked subjects all detected"
out=$(go run ./examples/anomaly)
echo "$out" | tail -8
[ "$(echo "$out" | grep -c ': detected$')" = 3 ] || fail "example scorecard incomplete"
echo "$out" | grep -q 'MISSED' && fail "example missed a scripted event" || true

echo "== daemon path: /v1/anomalies served by intentd -live"
go build -o "$bin/" ./cmd/intentd
"$bin/intentd" -addr 127.0.0.1:0 -drain-timeout 5s \
    -live -live-small -live-seed 1 -live-interval 0 \
    -snapshot-every 1000 >"$log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 300); do
    addr=$(sed -n 's/^listening on //p' "$log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "intentd exited during startup"
    sleep 0.1
done
[ -n "$addr" ] || fail "intentd never reported its listen address"

python3 - "$addr" <<'PYEOF' || fail "daemon anomaly assertions"
import json, sys, time, urllib.request

base = "http://" + sys.argv[1]

def get(path, want=200):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read())

# Wait for the feed to classify and the engine to close buckets.
deadline = time.time() + 60
while True:
    _, h = get("/v1/health")
    a = h.get("anomalies")
    if a and a["semantics_generation"] >= 1 and a["buckets"] >= 10:
        break
    if time.time() > deadline:
        sys.exit(f"no anomaly progress within 60s: {h}")
    time.sleep(0.1)

if sorted(a["detectors"]) != ["churn", "disappearance", "spike"]:
    sys.exit(f"detector set wrong: {a['detectors']}")
if a["updates"] < 1000:
    sys.exit(f"engine consumed only {a['updates']} updates")
if a["dropped"] != 0:
    sys.exit(f"engine dropped {a['dropped']} updates at smoke scale")
if "lag_seconds" not in a:
    sys.exit(f"health lacks detector lag: {a}")

code, body = get("/v1/anomalies")
if code != 200:
    sys.exit(f"/v1/anomalies status {code}")
if body["semantics_generation"] < 1 or body["generation"] < 1 or body["stamp"] == 0:
    sys.exit(f"anomaly provenance wrong: {body}")
if body["buckets"] < 10 or not body["last_bucket"]:
    sys.exit(f"bucket provenance wrong: {body}")

code, filt = get("/v1/anomalies?detector=spike&window=24h&limit=5")
if code != 200 or len(filt["findings"]) > 5:
    sys.exit(f"filtered query: status {code}, {len(filt.get('findings', []))} findings")
for bad in ("?window=banana", "?since=banana", "?limit=-1"):
    code, err = get("/v1/anomalies" + bad)
    if code != 400 or "error" not in err:
        sys.exit(f"GET /v1/anomalies{bad}: status {code} body {err}")

print(f"daemon OK: {a['updates']} updates, {a['buckets']} buckets, "
      f"semantics gen {a['semantics_generation']}, {a['findings']} findings")
PYEOF

kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$pid" 2>/dev/null && fail "intentd did not exit within 10s of SIGTERM"
wait "$pid" || fail "intentd exited nonzero after SIGTERM"
pid=""

echo "ANOMALY OK"

#!/usr/bin/env bash
# Chaos smoke test for intentd's live mode, run by CI and usable
# locally: start the daemon against the simulated feed with the
# deterministic fault injector at a fixed seed (disconnects, stalls,
# corrupt frames, duplicates, reorderings at 10% of deliveries), hammer
# the API for a fixed window, and assert the robustness contract:
#
#   - 100% availability: every request during the chaos window answers
#     200 with well-formed JSON;
#   - no torn snapshots: the served generation is monotone and every
#     /v1/stats body is a complete live-installed classification;
#   - the feed survives: reconnects and stalls happen (the injector is
#     live) yet updates and snapshots keep accumulating;
#   - /v1/health transitions healthy -> stale -> healthy as injected
#     stalls outrun the staleness budget and ingestion recovers;
#   - CommunityWatch stays available: /v1/anomalies answers 200 with a
#     monotone semantics generation through every injected fault, and
#     the detection engine keeps consuming updates;
#   - a clean SIGTERM drain at the end.
#
# Exits nonzero on the first violated assertion.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
bin="$work/bin"
log="$work/intentd.log"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "CHAOS FAIL: $*" >&2; [ -s "$log" ] && tail -40 "$log" | sed 's/^/  intentd: /' >&2; exit 1; }

echo "== build"
go build -o "$bin/" ./cmd/intentd

echo "== start intentd -live with fault injection (feed seed 7, fault seed 42, rate 0.10)"
"$bin/intentd" -addr 127.0.0.1:0 -drain-timeout 5s \
    -live -live-small -live-seed 7 -live-interval 0 \
    -fault-rate 0.10 -fault-seed 42 -fault-stall 250ms \
    -feed-read-timeout 400ms -stale-after 120ms -retry-budget -1 \
    -snapshot-every 1000 -snapshot-interval 2s >"$log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 300); do
    addr=$(sed -n 's/^listening on //p' "$log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "intentd exited during startup"
    sleep 0.1
done
[ -n "$addr" ] || fail "intentd never reported its listen address"

echo "== hammer through the chaos window"
python3 - "$addr" 15 <<'PYEOF' || fail "chaos window assertions"
import json, sys, time, urllib.request

base = "http://" + sys.argv[1]
window = float(sys.argv[2])

def get(path):
    with urllib.request.urlopen(base + path, timeout=10) as r:
        if r.status != 200:
            sys.exit(f"GET {path}: status {r.status}")
        return json.loads(r.read())

# Phase 0: the feed must install a real snapshot past the placeholder.
deadline = time.time() + 60
h = get("/v1/health")
while h["generation"] < 2:
    if time.time() > deadline:
        sys.exit(f"no feed snapshot installed within 60s: {h}")
    time.sleep(0.05)
    h = get("/v1/health")
if h["mode"] != "live" or not h.get("feed"):
    sys.exit(f"not in live mode: {h}")

# Phase 1: hammer. Any non-200, parse error, or connection failure
# raises and fails the smoke -- that IS the availability assertion.
polls, last_gen = 0, 0
last_sem_gen = last_anom_gen = 0
saw_stale = recovered = False
end = time.time() + window
while time.time() < end:
    h = get("/v1/health")
    s = get("/v1/stats")
    a = get("/v1/anomalies")
    polls += 1
    gen = h["generation"]
    if gen < last_gen:
        sys.exit(f"generation went backwards: {last_gen} -> {gen} (torn swap)")
    last_gen = gen
    if a["generation"] < last_anom_gen:
        sys.exit(f"anomaly snapshot generation went backwards: "
                 f"{last_anom_gen} -> {a['generation']}")
    last_anom_gen = a["generation"]
    if a["semantics_generation"] < last_sem_gen:
        sys.exit(f"anomaly semantics generation went backwards: "
                 f"{last_sem_gen} -> {a['semantics_generation']}")
    last_sem_gen = a["semantics_generation"]
    if not h.get("anomalies"):
        sys.exit(f"live health lacks the anomalies block: {h}")
    if not s["source"].startswith("live:seq="):
        sys.exit(f"served a non-feed snapshot mid-chaos: {s['source']!r}")
    if s["action"] + s["information"] == 0:
        sys.exit(f"served an empty classification mid-chaos: {s}")
    status = h["status"]
    if status == "degraded":
        sys.exit(f"feed degraded despite unlimited retry budget: {h}")
    if status == "stale":
        saw_stale = True
    elif status == "healthy" and saw_stale:
        recovered = True
    time.sleep(0.02)

# Phase 2: the feed must settle back to healthy once left alone.
deadline = time.time() + 30
while h["status"] != "healthy":
    if time.time() > deadline:
        sys.exit(f"never recovered to healthy after the window: {h}")
    time.sleep(0.05)
    h = get("/v1/health")

feed = h["feed"]
if not saw_stale:
    sys.exit("health never reported stale: injected stalls did not outrun the budget")
if not recovered:
    sys.exit("health never transitioned stale -> healthy inside the window")
if feed["reconnects"] < 5:
    sys.exit(f"only {feed['reconnects']} reconnects: the injector barely ran")
if feed["updates"] < 2000:
    sys.exit(f"only {feed['updates']} updates applied: the feed did not survive the faults")
if feed["snapshots"] < 2:
    sys.exit(f"only {feed['snapshots']} snapshots installed")
anom = h["anomalies"]
# The tap hands every applied update to the engine through a 4096-deep
# buffer; anything beyond buffered slack must have been consumed.
if anom["updates"] + anom["dropped"] + 4096 < feed["updates"]:
    sys.exit(f"CommunityWatch consumed only {anom['updates']} updates "
             f"of {feed['updates']} applied: the tap fell behind")
if last_sem_gen < 1:
    sys.exit("CommunityWatch never received classified semantics")
print(f"chaos OK: {polls} polls all 200, gen {last_gen}, "
      f"{feed['updates']} updates, {feed['reconnects']} reconnects, "
      f"{feed['snapshots']} snapshots, healthy->stale->healthy observed; "
      f"anomalies: {anom['updates']} updates, semantics gen {last_sem_gen}, "
      f"{anom['findings']} findings, {anom['dropped']} dropped")
PYEOF

echo "== feed counters reached /metrics"
prom=$(curl -sf --max-time 10 "http://$addr/metrics") || fail "/metrics unreachable"
echo "$prom" | grep -q '^intentd_feed_updates_total [0-9]' || fail "/metrics misses feed update counter"
echo "$prom" | grep -q '^intentd_feed_reconnects_total [0-9]' || fail "/metrics misses feed reconnect counter"

echo "== anomaly counters reached /metrics"
echo "$prom" | grep -q '^intentd_anomaly_updates_total [1-9]' || fail "/metrics misses anomaly update counter (or it is zero)"
echo "$prom" | grep -q '^intentd_anomaly_buckets_total [0-9]' || fail "/metrics misses anomaly bucket counter"
echo "$prom" | grep -q 'intentd_anomaly_detector_findings_total{detector="spike"}' || fail "/metrics misses per-detector finding series"

echo "== reload stays disabled under chaos"
code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 -X POST "http://$addr/v1/admin/reload")
[ "$code" = "409" ] || fail "live-mode reload answered $code, want 409"

echo "== graceful shutdown"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    fail "intentd did not exit within 10s of SIGTERM"
fi
wait "$pid" || fail "intentd exited nonzero after SIGTERM"
pid=""

echo "CHAOS OK"

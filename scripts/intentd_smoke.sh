#!/usr/bin/env bash
# End-to-end smoke test for intentd, run by CI and usable locally:
# build the tools, generate a tiny corpus, cold-start intentd both ways
# (MRT re-ingestion and precomputed snapshot, timing each), curl every
# endpoint family, trigger a live reload, and assert a clean SIGTERM
# drain. Exits nonzero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
bin="$work/bin"
log="$work/intentd.log"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; [ -s "$log" ] && sed 's/^/  intentd: /' "$log" >&2; exit 1; }

echo "== build"
go build -o "$bin/" ./cmd/gencorpus ./cmd/intentinfer ./cmd/intentd ./cmd/mrtdump

echo "== generate tiny corpus"
"$bin/gencorpus" -out "$work/corpus" -scale tiny -days 1 >/dev/null

echo "== mrtdump from stdin (gzipped)"
gzip -c "$work/corpus/rc00.day0.rib.mrt" | "$bin/mrtdump" - | grep -q "TABLE_DUMP_V2/RIB" \
    || fail "mrtdump - did not decode gzipped stdin"

echo "== write snapshot + tsv (tracing the tsv run)"
"$bin/intentinfer" -rib "$work/corpus/*.rib.mrt" -updates "$work/corpus/*.updates.mrt" \
    -as2org "$work/corpus/as2org.txt" -format snapshot -o "$work/intent.snap" >/dev/null
"$bin/intentinfer" -rib "$work/corpus/*.rib.mrt" -updates "$work/corpus/*.updates.mrt" \
    -as2org "$work/corpus/as2org.txt" -o "$work/intent.tsv" \
    -progress -trace-json "$work/trace.jsonl" >/dev/null 2>"$work/progress.log"

echo "== trace stream is well-formed JSON lines"
[ -s "$work/trace.jsonl" ] || fail "empty -trace-json stream"
python3 - "$work/trace.jsonl" <<'PYEOF' || fail "trace stream validation"
import json, sys
stages = set()
final = False
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        ev = json.loads(line)
        if ev["event"] not in ("stage_start", "stage_end", "progress"):
            sys.exit(f"line {i}: unknown event {ev['event']!r}")
        if ev["event"] == "stage_end":
            stages.add(ev["stage"])
        if ev["event"] == "progress" and ev["final"]:
            final = True
missing = {"open", "decode", "store-add", "stitch",
           "observe", "cluster", "ratio", "classify", "snapshot-write"} - stages
if missing:
    sys.exit(f"no stage_end for: {sorted(missing)}")
if not final:
    sys.exit("no final progress event")
PYEOF
grep -q "^stage " "$work/progress.log" || fail "-progress printed no stage lines"
comm=$(head -1 "$work/intent.tsv" | cut -f1)
alpha=${comm%%:*}
[ -n "$comm" ] || fail "empty TSV"

# start_intentd <extra args...>: starts intentd on an ephemeral port,
# waits for the listen line, sets $pid/$addr/$startup.
start_intentd() {
    : > "$log"
    "$bin/intentd" -addr 127.0.0.1:0 -drain-timeout 5s "$@" >"$log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr=$(sed -n 's/^listening on //p' "$log" | head -1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || fail "intentd exited during startup"
        sleep 0.1
    done
    [ -n "$addr" ] || fail "intentd never reported its listen address"
    startup=$(sed -n 's/.*(startup \(.*\))/\1/p' "$log" | head -1)
    [ -n "$startup" ] || fail "intentd never reported its startup time"
}

stop_intentd() {
    kill -TERM "$pid"
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        fail "intentd did not exit within 10s of SIGTERM"
    fi
    wait "$pid" || fail "intentd exited nonzero after SIGTERM"
    pid=""
}

curl_ok() { curl -sf --max-time 10 "$@" || fail "curl $* failed"; }

echo "== cold start from MRT"
start_intentd -rib "$work/corpus/*.rib.mrt" -updates "$work/corpus/*.updates.mrt" \
    -as2org "$work/corpus/as2org.txt"
mrt_startup=$startup
curl_ok "http://$addr/v1/stats" | grep -q '"source": "mrt:' || fail "MRT source not reported"
stop_intentd

echo "== cold start from snapshot"
start_intentd -snapshot "$work/intent.snap"
snap_startup=$startup
echo "   startup: mrt=$mrt_startup snapshot=$snap_startup"

echo "== endpoints"
curl_ok "http://$addr/healthz" | grep -q ok || fail "healthz"
curl_ok "http://$addr/v1/stats" | grep -q '"source": "snapshot:' || fail "snapshot source not reported"
curl_ok "http://$addr/v1/community/$comm" | grep -q '"community"' || fail "community endpoint"
curl_ok "http://$addr/v1/community/$comm" | grep -q '"generation": 1' || fail "generation missing"
curl_ok "http://$addr/v1/as/$alpha" | grep -q '"clusters"' || fail "as endpoint"
curl_ok -X POST "http://$addr/v1/annotate" \
    -d "{\"communities\": [\"$comm\"], \"tuples\": [{\"path\": \"65000 $alpha\", \"communities\": \"$comm\"}]}" \
    | grep -q '"on_this_path": true' || fail "annotate endpoint"

echo "== live reload"
curl_ok -X POST "http://$addr/v1/admin/reload" | grep -q '"generation": 2' || fail "admin reload"
curl_ok "http://$addr/v1/community/$comm" | grep -q '"generation": 2' || fail "reload did not swap"
kill -HUP "$pid"
for _ in $(seq 1 100); do
    gen=$(curl -sf --max-time 10 "http://$addr/v1/stats" | sed -n 's/.*"generation": \([0-9]*\).*/\1/p')
    [ "$gen" = "3" ] && break
    sleep 0.1
done
[ "$gen" = "3" ] || fail "SIGHUP reload did not reach generation 3 (got ${gen:-none})"
curl_ok "http://$addr/v1/metrics" | grep -q '"reloads": 2' || fail "metrics reload count"

echo "== prometheus exposition"
prom=$(curl_ok "http://$addr/metrics")
echo "$prom" | grep -q '^intentd_http_requests_total{endpoint="community"} [0-9]' \
    || fail "/metrics misses request counters"
echo "$prom" | grep -q '^intentd_reloads_total 2$' || fail "/metrics reload counter"
echo "$prom" | grep -q '^intentd_snapshot_generation 3$' || fail "/metrics snapshot generation"
echo "$prom" | grep -q '^intentd_uptime_seconds [0-9]' || fail "/metrics uptime gauge"
echo "$prom" | grep -q '^# TYPE intentd_http_requests_total counter$' || fail "/metrics TYPE lines"

echo "== graceful shutdown"
stop_intentd

echo "SMOKE OK (startup: mrt=$mrt_startup snapshot=$snap_startup)"

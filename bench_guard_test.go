package bgpintent

// Bench regression guard: a cheap CI tripwire that re-measures the
// numbers this codebase stakes its performance story on and compares
// them against the committed BENCH_pipeline.json baseline:
//
//   - load_mrt allocations per op, normalized per tuple so corpus size
//     (BGPINTENT_BENCH_DAYS) doesn't skew the comparison — fails on a
//     >20% regression, which would mean the columnar store's
//     allocation-free hot path has been eroded;
//   - load_mrt allocs per tuple on a mixed classic+large (std/lrg
//     matrix) corpus vs the classic-only number from the same run —
//     fails above 1.5×, which would mean keying large communities into
//     the store stopped being allocation-free;
//   - classify speedup at workers=4 vs workers=1 — fails below 1.0×,
//     which would mean parallel classification went back to being
//     slower than sequential (the pre-CSR pathology was 0.72×);
//   - load_mrt speedup at workers=4 vs workers=1 (only with >=4
//     schedulable CPUs) — fails below 1.5×, which would mean the
//     merge-free parallel load path has re-serialized.
//
// Gated behind BGPINTENT_BENCH_GUARD=1 because it runs the pipeline at
// benchmark fidelity (tens of seconds):
//
//	BGPINTENT_BENCH_GUARD=1 go test -run TestBenchGuard -v .

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"
)

const (
	// guardLoadAllocHeadroom is how much per-tuple allocation growth the
	// guard tolerates before failing (measurement noise on allocs/op is
	// small; 20% catches any real per-view regression).
	guardLoadAllocHeadroom = 1.20
	// guardMinClassifySpeedup is the floor for classify's workers=4
	// speedup over sequential. Best-of-3 benchmark runs keep scheduler
	// noise out of the ratio; a genuine regression to the old
	// merge-heavy Observe shows up as ~0.7, far below the floor.
	guardMinClassifySpeedup = 1.0
	// guardMixedAllocFactor bounds how much a mixed classic+large corpus
	// may cost per tuple relative to the classic-only corpus measured in
	// the same run. The std/lrg matrix roughly doubles the community
	// payload per view, but large sets deduplicate through the shared
	// intern table, so the steady-state per-tuple cost is nearly flat
	// (measured ~1.01x); 1.5x is the tripwire for the keyed-large path
	// falling off the allocation-free hot path (e.g. per-view boxing of
	// large community slices or a map allocation per tuple).
	guardMixedAllocFactor = 1.5
	// guardMinLoadSpeedup is the floor for load_mrt's workers=4 speedup
	// over sequential, checked only with >=4 schedulable CPUs. The
	// merge-free store plus the frame/decode split should deliver well
	// above 2x at 4 workers; 1.5x is the tripwire for the load path
	// quietly re-serializing (a global lock on the hot path, the split
	// pipeline failing to activate, or a stitch that re-copies data).
	guardMinLoadSpeedup = 1.5
)

func TestBenchGuard(t *testing.T) {
	if os.Getenv("BGPINTENT_BENCH_GUARD") != "1" {
		t.Skip("set BGPINTENT_BENCH_GUARD=1 to run the bench regression guard")
	}
	raw, err := os.ReadFile("BENCH_pipeline.json")
	if err != nil {
		t.Fatal(err)
	}
	var baseline pipelineBenchReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parsing BENCH_pipeline.json: %v", err)
	}
	baseLoad := findBenchResult(&baseline, "load_mrt", 1)
	if baseLoad == nil || baseline.Tuples == 0 {
		t.Fatal("BENCH_pipeline.json has no load_mrt workers=1 baseline")
	}
	if baseline.SingleCore || baseline.GoMaxProcs < 2 {
		t.Logf("baseline was emitted at GOMAXPROCS=%d (single-core): its speedup columns are not "+
			"a scaling reference; the guard measures speedup fresh and only uses the baseline's "+
			"allocation counts", baseline.GoMaxProcs)
	}

	ribs, err := writeBenchMRT(benchDays(), false)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := LoadMRTCorpusOptions(ribs, nil, "", LoadOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Tuples() == 0 {
		t.Fatal("empty bench corpus")
	}

	// Load allocation regression, per tuple.
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := LoadMRTCorpusOptions(ribs, nil, "", LoadOptions{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	allocsPerTuple := float64(res.AllocsPerOp()) / float64(warm.Tuples())
	baseAllocsPerTuple := float64(baseLoad.AllocsPerOp) / float64(baseline.Tuples)
	limit := baseAllocsPerTuple * guardLoadAllocHeadroom
	t.Logf("load_mrt allocs/tuple: got %.3f, baseline %.3f, limit %.3f",
		allocsPerTuple, baseAllocsPerTuple, limit)
	if allocsPerTuple > limit {
		t.Errorf("load_mrt allocations regressed: %.3f allocs/tuple exceeds %.3f (baseline %.3f +%d%%)",
			allocsPerTuple, limit, baseAllocsPerTuple, int(guardLoadAllocHeadroom*100)-100)
	}

	// Mixed-community load tripwire: the same corpus with the std/lrg
	// matrix enabled, measured against the classic-only number from this
	// very run (self-relative, so baseline drift and host noise cancel).
	// Large communities are full inference subjects — keyed into the
	// tuple store through the shared intern table — and that keyed path
	// must stay within a constant factor of the classic hot path.
	mixedRibs, err := writeBenchMRT(benchDays(), true)
	if err != nil {
		t.Fatal(err)
	}
	mixedWarm, _, err := LoadMRTCorpusOptions(mixedRibs, nil, "", LoadOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mixedWarm.LargeCommunities() == 0 {
		t.Fatal("matrix bench corpus observed no large communities; mirroring inert")
	}
	mixedRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := LoadMRTCorpusOptions(mixedRibs, nil, "", LoadOptions{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	mixedAllocsPerTuple := float64(mixedRes.AllocsPerOp()) / float64(mixedWarm.Tuples())
	mixedLimit := allocsPerTuple * guardMixedAllocFactor
	t.Logf("load_mrt mixed allocs/tuple: got %.3f, classic %.3f, limit %.3f (%d large communities)",
		mixedAllocsPerTuple, allocsPerTuple, mixedLimit, mixedWarm.LargeCommunities())
	if mixedAllocsPerTuple > mixedLimit {
		t.Errorf("mixed-community load regressed: %.3f allocs/tuple exceeds %.1fx the classic-only %.3f — "+
			"the keyed large-community path has fallen off the allocation-free hot path",
			mixedAllocsPerTuple, guardMixedAllocFactor, allocsPerTuple)
	}

	// Parallel scaling: best-of-3 at each worker count. On a
	// single-core host a workers=4 run measures scheduler overhead, not
	// parallelism, so the checks would reject healthy code — skip them.
	if runtime.GOMAXPROCS(0) < 2 {
		t.Logf("GOMAXPROCS=%d: skipping speedup checks (meaningless on one core)", runtime.GOMAXPROCS(0))
		return
	}
	bestOf3 := func(fn func()) int64 {
		best := int64(math.MaxInt64)
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					fn()
				}
			})
			if ns := r.NsPerOp(); ns < best {
				best = ns
			}
		}
		return best
	}
	classify := func(workers int) int64 {
		return bestOf3(func() { warm.Classify(Params{Parallelism: workers}) })
	}
	seq := classify(1)
	par := classify(4)
	speedup := float64(seq) / float64(par)
	t.Logf("classify: workers=1 %dns, workers=4 %dns, speedup %.3f", seq, par, speedup)
	if speedup < guardMinClassifySpeedup {
		t.Errorf("classify speedup at workers=4 is %.3fx, want >= %.2fx — parallel classification is slower than sequential",
			speedup, guardMinClassifySpeedup)
	}

	// Load scaling needs at least as many schedulable CPUs as workers;
	// at GOMAXPROCS 2-3 a workers=4 ratio understates the pipeline.
	if runtime.GOMAXPROCS(0) < 4 {
		t.Logf("GOMAXPROCS=%d: skipping load_mrt speedup check (needs >=4)", runtime.GOMAXPROCS(0))
		return
	}
	load := func(workers int) int64 {
		return bestOf3(func() {
			if _, _, err := LoadMRTCorpusOptions(ribs, nil, "", LoadOptions{Parallelism: workers}); err != nil {
				t.Fatal(err)
			}
		})
	}
	loadSeq := load(1)
	loadPar := load(4)
	loadSpeedup := float64(loadSeq) / float64(loadPar)
	t.Logf("load_mrt: workers=1 %dns, workers=4 %dns, speedup %.3f (%d rib files)",
		loadSeq, loadPar, loadSpeedup, len(ribs))
	if loadSpeedup < guardMinLoadSpeedup {
		t.Errorf("load_mrt speedup at workers=4 is %.3fx, want >= %.2fx — the parallel load path has re-serialized",
			loadSpeedup, guardMinLoadSpeedup)
	}
}

func findBenchResult(r *pipelineBenchReport, name string, workers int) *pipelineBenchResult {
	for i := range r.Results {
		res := &r.Results[i]
		if res.Name == name && res.Workers == workers {
			return res
		}
	}
	return nil
}

package bgpintent

import (
	"context"
	"fmt"
	"time"

	"bgpintent/internal/anomaly"
	"bgpintent/internal/core"
	"bgpintent/internal/simulate"
	"bgpintent/internal/stream"
	"bgpintent/internal/topology"
)

// LiveOptions configure StartLive: the simulated feed, the optional
// fault injector, the rolling window, and the Ingestor's robustness
// knobs. Zero values mean the documented defaults throughout.
type LiveOptions struct {
	// Seed selects the deterministic feed (0 means 1); Days is how many
	// distinct simulated days it covers (default 2); Small selects the
	// test-sized synthetic Internet instead of benchmark scale.
	Seed  int64
	Days  int
	Small bool
	// Loop replays the days forever (an endless feed); without it the
	// feed ends and the Ingestor finishes with a final snapshot.
	Loop bool
	// Interval paces deliveries in wall time; 0 delivers as fast as the
	// Ingestor reads.
	Interval time.Duration

	// Events, when non-empty, scripts ground-truth anomalies into the
	// feed (see simulate.ParseScript):
	// "spike:<asn>:<value>@<at>+<dur>#<count>" bursts a community,
	// "strip:<asn>@<at>+<dur>" strips communities on routes through an
	// AS, "flap:<asn>:<value>@<at>+<dur>#<cycles>x<count>" toggles one;
	// events are joined with ";" and offsets are relative to the feed
	// epoch. With Loop the events play once at their absolute times.
	Events string

	// Anomaly enables CommunityWatch: a streaming detection engine tap
	// on the feed, queried via Live.Anomalies. AnomalyBucket is the
	// feed-time bucket width (default 30m), AnomalyHistory the baseline
	// buckets kept per series (default 32), AnomalyBuffer the hand-off
	// queue depth (default 4096).
	Anomaly        bool
	AnomalyBucket  time.Duration
	AnomalyHistory int
	AnomalyBuffer  int

	// FaultRate, when positive, wraps the feed in the deterministic
	// fault injector: each delivery fails with this probability, drawing
	// uniformly from disconnects, stalls, corrupt frames, duplicates and
	// reorderings. FaultSeed makes the schedule replayable; FaultStall
	// is the injected stall length (default 1s).
	FaultRate  float64
	FaultSeed  int64
	FaultStall time.Duration

	// Params are the classifier parameters for every published
	// snapshot. Live mode classifies without sibling awareness (the
	// simulated feed carries no as2org context), which also keeps the
	// incremental dirty-α reclassification exact.
	Params Params

	// WindowSpan bounds the rolling window in feed time (0 keeps
	// everything — batch semantics); WindowBuckets is the eviction
	// granularity (default 6).
	WindowSpan    time.Duration
	WindowBuckets int

	// Robustness knobs, mirroring the stream package defaults:
	// ReadTimeout (30s) bounds one read before the feed counts as
	// stalled; StaleAfter (2m) is the staleness budget /v1/health keys
	// on; BackoffBase/BackoffMax (100ms/30s) shape reconnect backoff;
	// RetryBudget (8) is how many consecutive no-progress cycles are
	// tolerated before degrading to stale-but-serving (negative: never
	// give up).
	ReadTimeout time.Duration
	StaleAfter  time.Duration
	BackoffBase time.Duration
	BackoffMax  time.Duration
	RetryBudget int

	// SnapshotEvery (5000 updates) and SnapshotInterval (10s) bound how
	// much feed progress accumulates between published snapshots;
	// negative disables that trigger.
	SnapshotEvery    int
	SnapshotInterval time.Duration

	// OnSnapshot receives every published classification, called from
	// the ingest goroutine: swap and return, do not block.
	OnSnapshot func(res *Result, info SnapshotInfo, lastSeq uint64)
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// LiveHealth is the degradation-aware health verdict of a live feed.
type LiveHealth struct {
	// Status is "healthy", "stale", or "degraded"; a stale or degraded
	// feed still serves its last good snapshot.
	Status string
	// State is the connection state: connecting, live, down, or ended.
	State      string
	LastSeq    uint64
	LastUpdate time.Time
	Staleness  time.Duration
	Updates    uint64
	Reconnects uint64
	Snapshots  uint64
}

// LiveStats are a live feed's lifetime counters.
type LiveStats struct {
	Updates       uint64
	Duplicates    uint64
	Reordered     uint64
	CorruptFrames uint64
	Disconnects   uint64
	Stalls        uint64
	Resyncs       uint64
	Reconnects    uint64
	Snapshots     uint64

	// WindowUpdates / WindowEvicted describe the rolling window.
	WindowUpdates int
	WindowEvicted uint64

	// FaultsInjected counts injector-produced faults (0 when FaultRate
	// is 0).
	FaultsInjected uint64
}

// Live is a running live-feed ingestion: a streaming source consumed
// through the fault-tolerant Ingestor, publishing classification
// snapshots via OnSnapshot.
type Live struct {
	in     *stream.Ingestor
	faults *stream.FaultSource // nil without injection
	watch  *anomaly.Watcher    // nil unless Anomaly was enabled
}

// StartLive builds the simulated feed and starts ingesting it. It
// returns immediately; snapshots arrive via opts.OnSnapshot, health via
// Health, and termination via Wait. Canceling ctx stops ingestion
// promptly with no goroutine left behind.
func StartLive(ctx context.Context, opts LiveOptions) (*Live, error) {
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Days == 0 {
		opts.Days = 2
	}
	if opts.WindowBuckets == 0 {
		opts.WindowBuckets = 6
	}

	tcfg, scfg := topology.DefaultConfig(), simulate.DefaultConfig()
	if opts.Small {
		tcfg, scfg = topology.TinyConfig(), simulate.TinyConfig()
	}
	tcfg.Seed, scfg.Seed = opts.Seed, opts.Seed
	topo, err := topology.Generate(tcfg)
	if err != nil {
		return nil, fmt.Errorf("bgpintent: generating live topology: %w", err)
	}

	var script *simulate.Script
	if opts.Events != "" {
		script, err = simulate.ParseScript(opts.Events)
		if err != nil {
			return nil, fmt.Errorf("bgpintent: parsing event script: %w", err)
		}
	}

	var src stream.Source = stream.NewSimSource(simulate.New(topo, scfg), stream.SimConfig{
		Days:     opts.Days,
		Loop:     opts.Loop,
		Interval: opts.Interval,
		Script:   script,
	})
	var faults *stream.FaultSource
	if opts.FaultRate > 0 {
		faults = stream.NewFaultSource(src, stream.FaultConfig{
			Seed:     opts.FaultSeed,
			Rate:     opts.FaultRate,
			StallFor: opts.FaultStall,
		})
		src = faults
	}

	copts := core.DefaultOptions()
	if opts.Params.MinGap > 0 || opts.Params.RatioThreshold > 0 {
		copts.MinGap = opts.Params.MinGap
		copts.RatioThreshold = opts.Params.RatioThreshold
	}
	copts.Workers = opts.Params.Parallelism

	var watch *anomaly.Watcher
	var onUpdate func(u stream.Update)
	if opts.Anomaly {
		eng := anomaly.NewEngine(anomaly.Options{
			BucketSpan: opts.AnomalyBucket,
			History:    opts.AnomalyHistory,
			Logf:       opts.Logf,
		})
		watch = anomaly.StartWatcher(ctx, eng, opts.AnomalyBuffer)
		onUpdate = watch.Offer
	}

	scfgSource := fmt.Sprintf("live-sim(seed=%d,days=%d,loop=%v,fault=%g)",
		opts.Seed, opts.Days, opts.Loop, opts.FaultRate)
	var onSnap func(inf *core.Inferences, st stream.WindowStats, lastSeq uint64)
	if opts.OnSnapshot != nil || watch != nil {
		cb := opts.OnSnapshot
		onSnap = func(inf *core.Inferences, st stream.WindowStats, lastSeq uint64) {
			if watch != nil {
				// Every published classification generation refreshes the
				// detectors' semantics — findings attribute with the newest
				// inference, no restart involved.
				watch.SetSemantics(inf)
			}
			if cb == nil {
				return
			}
			cb(newResult(inf), SnapshotInfo{
				Created:          time.Now(),
				Source:           scfgSource,
				Tuples:           st.Tuples,
				Paths:            st.Paths,
				VantagePoints:    st.VantagePoints,
				Communities:      st.Communities,
				LargeCommunities: st.LargeCommunities,
			}, lastSeq)
		}
	}

	in, err := stream.Start(ctx, stream.Config{
		Source:   src,
		Window:   stream.WindowConfig{Span: opts.WindowSpan, Buckets: opts.WindowBuckets},
		Classify: copts,
		OnUpdate: onUpdate,

		ReadTimeout: opts.ReadTimeout,
		StaleAfter:  opts.StaleAfter,
		BackoffBase: opts.BackoffBase,
		BackoffMax:  opts.BackoffMax,
		RetryBudget: opts.RetryBudget,

		SnapshotEvery:    opts.SnapshotEvery,
		SnapshotInterval: opts.SnapshotInterval,
		Seed:             opts.Seed,
		OnSnapshot:       onSnap,
		Logf:             opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &Live{in: in, faults: faults, watch: watch}, nil
}

// Anomalies returns the CommunityWatch watcher when LiveOptions.Anomaly
// was set, nil otherwise. The watcher serves windowed finding queries
// and detection health, and satisfies serve.AnomalySource.
func (l *Live) Anomalies() *anomaly.Watcher { return l.watch }

// Health reports the feed's current degradation-aware verdict.
func (l *Live) Health() LiveHealth {
	h := l.in.Health()
	st := l.in.Stats()
	return LiveHealth{
		Status:     h.Status,
		State:      h.State.String(),
		LastSeq:    h.LastSeq,
		LastUpdate: h.LastUpdate,
		Staleness:  h.Staleness,
		Updates:    st.Updates,
		Reconnects: st.Reconnects,
		Snapshots:  st.Snapshots,
	}
}

// Stats snapshots the feed's lifetime counters.
func (l *Live) Stats() LiveStats {
	st := l.in.Stats()
	out := LiveStats{
		Updates:       st.Updates,
		Duplicates:    st.Duplicates,
		Reordered:     st.Reordered,
		CorruptFrames: st.CorruptFrames,
		Disconnects:   st.Disconnects,
		Stalls:        st.Stalls,
		Resyncs:       st.Resyncs,
		Reconnects:    st.Reconnects,
		Snapshots:     st.Snapshots,
		WindowUpdates: st.Window.Updates,
		WindowEvicted: st.Window.Evicted,
	}
	if l.faults != nil {
		out.FaultsInjected = l.faults.Stats.Total()
	}
	return out
}

// Wait blocks until ingestion stops: nil after a finite feed completed,
// the context error after cancellation, or stream.ErrRetryBudget after
// the feed was abandoned (the last snapshot keeps serving either way).
func (l *Live) Wait() error { return l.in.Wait() }

// Done closes when ingestion has fully stopped.
func (l *Live) Done() <-chan struct{} { return l.in.Done() }

// EmptyResult returns a classification of an empty corpus — the
// placeholder a live-mode server serves until the first feed snapshot
// arrives.
func EmptyResult() (*Result, SnapshotInfo) {
	inf, err := core.ClassifyContext(context.Background(), core.NewTupleStore(), core.DefaultOptions())
	if err != nil {
		// Unreachable: an empty store classifies without I/O and the
		// background context never cancels.
		panic(err)
	}
	return newResult(inf), SnapshotInfo{Created: time.Now(), Source: "empty"}
}

package topology

import (
	"math/rand"
	"sort"

	"bgpintent/internal/dict"
)

// Plan-size classes: how rich an operator's community plan is.
const (
	planSizeStub   = iota // a couple of information blocks tagged at origination
	planSizeSmall         // regional transit: a few blocks
	planSizeMedium        // large transit
	planSizeLarge         // tier-1: the full Arelion-style plan
)

// Calibration constants for the β-space layout. The paper's method is
// sensitive to two distributions (Figure 9): the spacing of values inside
// a purpose block (mostly 1-10, up to ~100 for local-pref grades, so
// small gap parameters fragment blocks) and the gaps between blocks
// (mostly ≥ 300 with a tail down to ~160, so large gap parameters merge
// neighboring blocks).
const (
	planBetaCeil   = 63000 // stop allocating blocks past this β
	planStartFloor = 20
)

// interBlockGap samples the distance between two purpose blocks.
func interBlockGap(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.15:
		return 160 + rng.Intn(140) // 160..299: merged by large gap params
	case r < 0.75:
		return 300 + rng.Intn(1200)
	default:
		return 1500 + rng.Intn(2500)
	}
}

// planBuilder allocates β values left to right with inter-block gaps.
type planBuilder struct {
	plan   *dict.Plan
	rng    *rand.Rand
	cursor int
	full   bool
}

func newPlanBuilder(asn uint32, rng *rand.Rand) *planBuilder {
	return &planBuilder{
		plan:   dict.NewPlan(asn),
		rng:    rng,
		cursor: planStartFloor + rng.Intn(150),
	}
}

// begin opens a new block and returns its base β, or -1 when β space is
// exhausted.
func (b *planBuilder) begin() int {
	if b.full {
		return -1
	}
	if len(b.plan.Defs) > 0 {
		b.cursor += interBlockGap(b.rng)
	}
	if b.cursor > planBetaCeil {
		b.full = true
		return -1
	}
	b.plan.BeginBlock()
	return b.cursor
}

// put adds a definition at base+off and advances the cursor.
func (b *planBuilder) put(base, off int, d dict.Def) {
	v := base + off
	if v > 65535 {
		b.full = true
		return
	}
	d.Value = uint16(v)
	// Duplicate offsets within a malformed block are silently skipped;
	// generation never produces them for distinct offsets.
	if err := b.plan.Add(&d); err == nil && v >= b.cursor {
		b.cursor = v + 1
	}
}

// The individual block constructors. Each writes one contiguous purpose
// block at the current cursor.

func (b *planBuilder) localPrefBlock() {
	base := b.begin()
	if base < 0 {
		return
	}
	// Two or three local-pref grades, spaced inside the block.
	prefs := [][2]int{{0, 50}, {100, 150}}
	if b.rng.Intn(2) == 0 {
		prefs = [][2]int{{0, 80}, {5, 120}, {10, 140}}
	}
	for _, p := range prefs {
		b.put(base, p[0], dict.Def{Sub: dict.SubSetAttribute, HasLocalPref: true, LocalPref: uint32(p[1])})
	}
}

func (b *planBuilder) blackholeBlock() {
	base := b.begin()
	if base < 0 {
		return
	}
	// Operators like the conventional 666; use it when still available.
	if base < 666 {
		base = 666
		b.cursor = base
	}
	b.put(base, 0, dict.Def{Sub: dict.SubBlackhole})
	if b.rng.Intn(2) == 0 {
		b.put(base, 1, dict.Def{Sub: dict.SubBlackhole})
	}
}

func (b *planBuilder) rovBlock() {
	base := b.begin()
	if base < 0 {
		return
	}
	n := 2 + b.rng.Intn(2)
	for i := 0; i < n; i++ {
		b.put(base, i, dict.Def{Sub: dict.SubROV, ROV: i})
	}
}

func (b *planBuilder) relationshipBlock() {
	base := b.begin()
	if base < 0 {
		return
	}
	rels := []int{RelCustomer, RelPeer}
	if b.rng.Intn(2) == 0 {
		rels = append(rels, RelProvider)
	}
	for i, r := range rels {
		b.put(base, i, dict.Def{Sub: dict.SubRelationship, Rel: r})
	}
}

// exportControlBlock builds an Arelion-style range for one region: per
// target AS, prepend 1-3× at offsets 1..3, announce-override at 5, and
// do-not-export at offset 9. The stride between target groups varies by
// operator (10..100), which is what gives Figure 9 its plateau left edge:
// gap parameters below the stride fragment these blocks.
func (b *planBuilder) exportControlBlock(region int, targets []uint32) {
	base := b.begin()
	if base < 0 || len(targets) == 0 {
		return
	}
	strides := []int{10, 10, 25, 60, 100}
	stride := strides[b.rng.Intn(len(strides))]
	for i, target := range targets {
		off := i * stride
		for p := 1; p <= 3; p++ {
			b.put(base, off+p, dict.Def{Sub: dict.SubSetAttribute, TargetAS: target, TargetRegion: region, Prepend: p})
		}
		b.put(base, off+5, dict.Def{Sub: dict.SubAnnounce, TargetAS: target, TargetRegion: region})
		b.put(base, off+9, dict.Def{Sub: dict.SubSuppress, TargetAS: target, TargetRegion: region})
	}
}

// regionActionBlock: suppress or announce in an entire region.
func (b *planBuilder) regionActionBlock(sub dict.SubCategory, regions []int) {
	base := b.begin()
	if base < 0 {
		return
	}
	for i, r := range regions {
		b.put(base, i, dict.Def{Sub: sub, TargetRegion: r})
	}
}

// regionalLocalPrefBlock: set local preference for routes in a region.
func (b *planBuilder) regionalLocalPrefBlock(regions []int) {
	base := b.begin()
	if base < 0 {
		return
	}
	for i, r := range regions {
		b.put(base, i*10, dict.Def{Sub: dict.SubSetAttribute, TargetRegion: r, HasLocalPref: true, LocalPref: 60})
		b.put(base, i*10+1, dict.Def{Sub: dict.SubSetAttribute, TargetRegion: r, HasLocalPref: true, LocalPref: 140})
	}
}

// locationBlock: one information value per city of presence, plus
// region-granularity values.
func (b *planBuilder) locationBlock(t *Topology, cities []int) {
	base := b.begin()
	if base < 0 {
		return
	}
	steps := []int{1, 10, 10, 25}
	step := steps[b.rng.Intn(len(steps))]
	off := 0
	for _, city := range cities {
		b.put(base, off, dict.Def{Sub: dict.SubLocation, City: city, Region: t.Region(city)})
		off += step
	}
	// Region-level rollups directly after the cities.
	regions := regionsOf(t, cities)
	for _, r := range regions {
		b.put(base, off, dict.Def{Sub: dict.SubLocation, Region: r})
		off += step
	}
}

func (b *planBuilder) otherInfoBlock() {
	base := b.begin()
	if base < 0 {
		return
	}
	n := 4 + b.rng.Intn(12)
	step := 1 + b.rng.Intn(3)
	for i := 0; i < n; i++ {
		b.put(base, i*step, dict.Def{Sub: dict.SubOtherInfo})
	}
}

// buildPlan constructs and attaches a community plan to a. The draw
// sequence is fixed so a given (seed, ASN) always yields the same plan,
// and Epoch growth appends without disturbing earlier blocks.
func buildPlan(t *Topology, a *AS, cfg Config, size int) {
	rng := perASRand(cfg.Seed, a.ASN, saltPlan)
	b := newPlanBuilder(a.ASN, rng)

	regions := regionsOf(t, a.Cities)
	targets := actionTargets(a, rng)

	switch size {
	case planSizeStub:
		b.otherInfoBlock()
		if rng.Intn(2) == 0 {
			b.locationBlock(t, a.Cities)
		}
	case planSizeSmall:
		b.locationBlock(t, a.Cities)
		b.relationshipBlock()
		if rng.Intn(2) == 0 && len(targets) > 0 {
			b.exportControlBlock(regions[0], targets[:min(2, len(targets))])
		}
		if rng.Intn(2) == 0 {
			b.otherInfoBlock()
		}
	case planSizeMedium:
		b.localPrefBlock()
		if rng.Intn(2) == 0 {
			b.rovBlock()
		}
		b.blackholeBlock()
		nEC := min(1+rng.Intn(2), len(regions))
		for i := 0; i < nEC && len(targets) > 0; i++ {
			b.exportControlBlock(regions[i], targets[:min(3, len(targets))])
		}
		if rng.Intn(2) == 0 {
			b.regionActionBlock(dict.SubSuppress, regions)
		}
		b.locationBlock(t, a.Cities)
		b.relationshipBlock()
		if rng.Intn(2) == 0 {
			b.otherInfoBlock()
		}
	case planSizeLarge:
		b.localPrefBlock()
		b.rovBlock()
		b.blackholeBlock()
		for _, r := range regions {
			if len(targets) > 0 {
				b.exportControlBlock(r, targets[:min(4, len(targets))])
			}
		}
		b.regionalLocalPrefBlock(regions)
		b.regionActionBlock(dict.SubSuppress, regions)
		b.regionActionBlock(dict.SubAnnounce, regions)
		b.locationBlock(t, a.Cities)
		b.relationshipBlock()
		b.otherInfoBlock()
	}

	// Longitudinal growth: each epoch may append one more information
	// block; replaying the same draws keeps earlier epochs' additions.
	// The rate is tuned so a year of epochs grows the observable
	// community population by a few percent, as the paper reports.
	for e := 0; e < cfg.Epoch; e++ {
		if rng.Float64() < 0.02 {
			b.otherInfoBlock()
		}
	}

	if len(b.plan.Defs) == 0 {
		return
	}
	a.Plan = b.plan
	// Operators deploy most — not all — of what they document.
	a.TagsLocation = hasSub(b.plan, dict.SubLocation) && rng.Float64() < 0.9
	a.TagsRelationship = hasSub(b.plan, dict.SubRelationship) && rng.Float64() < 0.9
	a.TagsROV = hasSub(b.plan, dict.SubROV) && rng.Float64() < 0.9
}

// buildIXPPlan gives the route server a plan: member-targeted actions and
// informational tags. Because the route server never appears in AS paths,
// every observation of these is off-path.
func buildIXPPlan(t *Topology, ix *IXP, cfg Config) {
	rng := perASRand(cfg.Seed, ix.RouteServerASN, saltPlan)
	b := newPlanBuilder(ix.RouteServerASN, rng)
	b.otherInfoBlock() // e.g. "learned at this IXP"
	base := b.begin()
	if base >= 0 {
		for i, m := range ix.Members {
			if i >= 12 {
				break
			}
			b.put(base, i, dict.Def{Sub: dict.SubSuppress, TargetAS: m})
		}
	}
	if len(b.plan.Defs) > 0 {
		ix.Plan = b.plan
	}
}

// actionTargets picks the neighbor ASes an operator's export-control
// communities reference: its peers and providers, the networks customers
// want to steer traffic around.
func actionTargets(a *AS, rng *rand.Rand) []uint32 {
	pool := make([]uint32, 0, len(a.Peers)+len(a.Providers))
	pool = append(pool, a.Peers...)
	pool = append(pool, a.Providers...)
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > 4 {
		pool = pool[:4]
	}
	return pool
}

// regionsOf returns the sorted distinct regions covered by cities.
func regionsOf(t *Topology, cities []int) []int {
	set := make(map[int]bool)
	for _, c := range cities {
		set[t.Region(c)] = true
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

func hasSub(p *dict.Plan, sub dict.SubCategory) bool {
	for _, d := range p.Defs {
		if d.Sub == sub {
			return true
		}
	}
	return false
}

package topology

import (
	"reflect"
	"testing"

	"bgpintent/internal/dict"
)

func genTiny(t *testing.T) *Topology {
	t.Helper()
	topo, err := Generate(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGenerateValidates(t *testing.T) {
	topo := genTiny(t)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Order, b.Order) {
		t.Fatal("Order differs across identical generations")
	}
	for asn, asA := range a.ASes {
		asB := b.ASes[asn]
		if asB == nil {
			t.Fatalf("AS%d missing in second generation", asn)
		}
		if !reflect.DeepEqual(asA.Providers, asB.Providers) ||
			!reflect.DeepEqual(asA.Customers, asB.Customers) ||
			!reflect.DeepEqual(asA.Peers, asB.Peers) {
			t.Fatalf("AS%d adjacency differs", asn)
		}
		if (asA.Plan == nil) != (asB.Plan == nil) {
			t.Fatalf("AS%d plan presence differs", asn)
		}
		if asA.Plan != nil && !reflect.DeepEqual(asA.Plan.Values(), asB.Plan.Values()) {
			t.Fatalf("AS%d plan values differ", asn)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := TinyConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 999
	b, _ := Generate(cfg)
	// Some stub's providers should differ between seeds.
	diff := false
	for asn, asA := range a.ASes {
		if asB, ok := b.ASes[asn]; ok && !reflect.DeepEqual(asA.Providers, asB.Providers) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical provider edges")
	}
}

func TestGenerateTierCounts(t *testing.T) {
	cfg := TinyConfig()
	topo := genTiny(t)
	s := topo.Stats()
	if s.Tier1 != cfg.Tier1 || s.Tier2 != cfg.Tier2 || s.Tier3 != cfg.Tier3 || s.Stubs != cfg.Stubs {
		t.Errorf("tiers = %d/%d/%d/%d, want %d/%d/%d/%d",
			s.Tier1, s.Tier2, s.Tier3, s.Stubs, cfg.Tier1, cfg.Tier2, cfg.Tier3, cfg.Stubs)
	}
	if s.ASes != cfg.Tier1+cfg.Tier2+cfg.Tier3+cfg.Stubs {
		t.Errorf("ASes = %d", s.ASes)
	}
	if s.IXPs != cfg.IXPs {
		t.Errorf("IXPs = %d, want %d", s.IXPs, cfg.IXPs)
	}
	if s.Prefixes < s.ASes {
		t.Errorf("prefixes = %d < ASes", s.Prefixes)
	}
}

func TestTier1Clique(t *testing.T) {
	topo := genTiny(t)
	var t1s []uint32
	for asn, a := range topo.ASes {
		if a.Tier == TierT1 {
			t1s = append(t1s, asn)
		}
	}
	for _, a := range t1s {
		for _, b := range t1s {
			if a == b {
				continue
			}
			rel, ok := topo.ASes[a].RelWith(b)
			if !ok || rel != RelPeer {
				t.Errorf("tier-1 AS%d and AS%d not peers (rel=%d ok=%v)", a, b, rel, ok)
			}
		}
	}
	// Tier-1s have no providers.
	for _, asn := range t1s {
		if len(topo.ASes[asn].Providers) != 0 {
			t.Errorf("tier-1 AS%d has providers", asn)
		}
	}
}

func TestEveryNonTier1HasProvider(t *testing.T) {
	topo := genTiny(t)
	for asn, a := range topo.ASes {
		if a.Tier == TierT1 {
			continue
		}
		if len(a.Providers) == 0 {
			t.Errorf("AS%d (tier %d) has no providers", asn, a.Tier)
		}
	}
}

func TestRegionsAndCities(t *testing.T) {
	topo := genTiny(t)
	if topo.Region(0) != 0 {
		t.Error("Region(0) should be 0")
	}
	for r := 1; r <= topo.NumRegions; r++ {
		for k := 0; k < topo.CitiesPerRegion; k++ {
			city := topo.CityID(r, k)
			if got := topo.Region(city); got != r {
				t.Errorf("Region(CityID(%d,%d)=%d) = %d", r, k, city, got)
			}
		}
	}
	for asn, a := range topo.ASes {
		if len(a.Cities) == 0 {
			t.Errorf("AS%d has no cities", asn)
		}
		for _, c := range a.Cities {
			if c < 1 || c > topo.NumCities() {
				t.Errorf("AS%d city %d out of range", asn, c)
			}
		}
	}
}

func TestSiblings(t *testing.T) {
	topo := genTiny(t)
	s := topo.Stats()
	if s.MultiASOrgs == 0 {
		t.Fatal("no multi-AS orgs generated")
	}
	found := false
	for _, members := range topo.Orgs {
		if len(members) < 2 {
			continue
		}
		found = true
		for _, m := range members {
			sibs := topo.Siblings(m)
			if len(sibs) != len(members)-1 {
				t.Errorf("AS%d siblings = %v, org = %v", m, sibs, members)
			}
			for _, s := range sibs {
				if s == m {
					t.Errorf("AS%d lists itself as sibling", m)
				}
			}
		}
	}
	if !found {
		t.Error("no sibling group inspected")
	}
	if got := topo.Siblings(4294967295); got != nil {
		t.Errorf("Siblings(unknown) = %v", got)
	}
}

func TestPlansGenerated(t *testing.T) {
	topo := genTiny(t)
	s := topo.Stats()
	if s.PlansDefined == 0 || s.ActionDefs == 0 || s.InfoDefs == 0 {
		t.Fatalf("plan stats = %+v", s)
	}
	// Every tier-1 and tier-2 AS has a plan with both categories.
	for asn, a := range topo.ASes {
		if a.Tier > TierT2 {
			continue
		}
		if a.Plan == nil {
			t.Errorf("AS%d (tier %d) has no plan", asn, a.Tier)
			continue
		}
		if len(a.Plan.ValuesOf(dict.CatAction)) == 0 {
			t.Errorf("AS%d plan has no action communities", asn)
		}
		if len(a.Plan.ValuesOf(dict.CatInformation)) == 0 {
			t.Errorf("AS%d plan has no information communities", asn)
		}
	}
}

func TestPlanBlocksAreOrderedAndDisjoint(t *testing.T) {
	topo := genTiny(t)
	for asn, a := range topo.ASes {
		if a.Plan == nil {
			continue
		}
		blocks := a.Plan.Blocks
		for i := range blocks {
			if blocks[i].Lo > blocks[i].Hi {
				t.Errorf("AS%d block %d inverted: %+v", asn, i, blocks[i])
			}
			if i > 0 && blocks[i].Lo <= blocks[i-1].Hi {
				t.Errorf("AS%d blocks %d/%d overlap: %+v %+v", asn, i-1, i, blocks[i-1], blocks[i])
			}
		}
		// Every def lies in some block of its own category.
		for v, d := range a.Plan.Defs {
			ok := false
			for _, b := range blocks {
				if v >= b.Lo && v <= b.Hi && b.Category() == d.Category() {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("AS%d def %d (%v) not covered by a same-category block", asn, v, d.Sub)
			}
		}
	}
}

func TestPlanIntraBlockGapsBounded(t *testing.T) {
	// Values inside one block must be close together (the clustering
	// method's premise); the generator keeps intra-block spacing ≤ 100.
	topo := genTiny(t)
	for asn, a := range topo.ASes {
		if a.Plan == nil {
			continue
		}
		for _, b := range a.Plan.Blocks {
			var vals []uint16
			for v := range a.Plan.Defs {
				if v >= b.Lo && v <= b.Hi {
					vals = append(vals, v)
				}
			}
			sortU16(vals)
			for i := 1; i < len(vals); i++ {
				if int(vals[i])-int(vals[i-1]) > 100 {
					t.Errorf("AS%d block [%d,%d]: intra gap %d", asn, b.Lo, b.Hi, vals[i]-vals[i-1])
				}
			}
		}
	}
}

func TestInterBlockGapsBounded(t *testing.T) {
	topo := genTiny(t)
	for asn, a := range topo.ASes {
		if a.Plan == nil {
			continue
		}
		for i := 1; i < len(a.Plan.Blocks); i++ {
			gap := int(a.Plan.Blocks[i].Lo) - int(a.Plan.Blocks[i-1].Hi)
			if gap < 140 {
				t.Errorf("AS%d inter-block gap %d < 140 (blocks %+v %+v)",
					asn, gap, a.Plan.Blocks[i-1], a.Plan.Blocks[i])
			}
		}
	}
}

func TestIXPStructure(t *testing.T) {
	topo := genTiny(t)
	if len(topo.IXPs) == 0 {
		t.Fatal("no IXPs")
	}
	for _, ix := range topo.IXPs {
		if ix.Plan == nil {
			t.Errorf("IXP %d has no route-server plan", ix.ID)
		}
		if len(ix.Members) < 2 {
			t.Errorf("IXP %d has %d members", ix.ID, len(ix.Members))
		}
		// Route server ASN is not an AS in the topology (never on-path).
		if _, ok := topo.ASes[ix.RouteServerASN]; ok {
			t.Errorf("route server AS%d is a topology AS", ix.RouteServerASN)
		}
		// Members are mutually reachable through IXP peering.
		for i, a := range ix.Members {
			for _, b := range ix.Members[i+1:] {
				asA := topo.ASes[a]
				if rel, ok := asA.RelWith(b); !ok || rel != RelPeer {
					// They may also have a bilateral relationship that
					// takes precedence; IXPPeers must still know them
					// unless a bilateral link existed first.
					if _, ixpOK := asA.IXPPeers[b]; !ixpOK {
						if _, bilOK := asA.RelWith(b); !bilOK {
							t.Errorf("IXP %d members AS%d/AS%d unconnected", ix.ID, a, b)
						}
					}
				}
			}
		}
	}
}

func TestEpochGrowthIsMonotone(t *testing.T) {
	cfg := TinyConfig()
	base, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Epoch = 3
	grown, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.ASes) <= len(base.ASes) {
		t.Errorf("epoch 3 has %d ASes, base %d", len(grown.ASes), len(base.ASes))
	}
	// Every base plan value survives, and some plans gained values.
	gained := 0
	for asn, a := range base.ASes {
		if a.Plan == nil {
			continue
		}
		g := grown.ASes[asn]
		if g == nil || g.Plan == nil {
			t.Fatalf("AS%d lost its plan after growth", asn)
		}
		for v := range a.Plan.Defs {
			if _, ok := g.Plan.Defs[v]; !ok {
				t.Fatalf("AS%d lost community value %d after growth", asn, v)
			}
		}
		if len(g.Plan.Defs) > len(a.Plan.Defs) {
			gained++
		}
	}
	if gained == 0 {
		t.Error("no plan gained communities across epochs")
	}
}

func TestVantagePointCandidates(t *testing.T) {
	topo := genTiny(t)
	vps := topo.VantagePointCandidates()
	if len(vps) != len(topo.ASes) {
		t.Fatalf("candidates = %d", len(vps))
	}
	// Transit first.
	for i := 1; i < len(vps); i++ {
		if topo.ASes[vps[i-1]].Tier > topo.ASes[vps[i]].Tier {
			t.Fatalf("candidates not tier-sorted at %d", i)
		}
	}
}

func TestFilteringFractionNonZero(t *testing.T) {
	topo := genTiny(t)
	if topo.Stats().Filtering == 0 {
		t.Error("no community-filtering ASes generated")
	}
}

func TestValidateCatchesBrokenTopology(t *testing.T) {
	topo := genTiny(t)
	// Break symmetry: add a provider nobody lists as customer.
	var victim *AS
	for _, a := range topo.ASes {
		if a.Tier == TierStub {
			victim = a
			break
		}
	}
	victim.Providers = append(victim.Providers, 100)
	// Ensure not already a provider relationship.
	if err := topo.Validate(); err == nil {
		t.Error("Validate accepted asymmetric provider edge")
	}
}

func sortU16(v []uint16) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Package topology generates synthetic AS-level Internet topologies for
// the BGP community-intent corpus: a tiered transit hierarchy with
// provider-customer and peer links, geographic presence, multi-AS
// organizations, IXP route servers, and per-AS community plans whose
// contiguous block structure mirrors the operator practice the paper's
// Figures 3 and 4 document.
//
// The generator substitutes for the public Internet the paper measures
// through RouteViews/RIS: it reproduces the generating process behind the
// distributional facts the inference method exploits (see DESIGN.md §2).
package topology

import (
	"fmt"
	"net/netip"
	"sort"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
)

// Tier labels for generated ASes.
const (
	TierT1   = 1 // global transit clique
	TierT2   = 2 // large transit
	TierT3   = 3 // regional transit
	TierStub = 4 // edge networks
)

// Relationship values used in link maps and relationship-information
// communities.
const (
	RelCustomer = 0 // route learned from a customer
	RelPeer     = 1 // route learned from a peer
	RelProvider = 2 // route learned from a provider
)

// AS is one autonomous system in the generated topology.
type AS struct {
	ASN        uint32
	Tier       int
	OrgID      int
	HomeRegion int
	Cities     []int // global city IDs where the AS has presence

	Providers []uint32
	Customers []uint32
	Peers     []uint32

	// IXPPeers maps multilateral-peering neighbors (reached through an
	// IXP route server) to the IXP ID. Routing treats them as peers, but
	// the route server tags its own communities on these sessions while
	// staying out of the AS path.
	IXPPeers map[uint32]int

	// LinkCity records, per neighbor ASN, the city where the BGP session
	// lives; it drives location-information tagging and region-targeted
	// actions.
	LinkCity map[uint32]int

	// Plan is the AS's community plan, nil if it defines no communities.
	// Sibling ASes may share one organization-wide plan; TagASN then
	// holds the α the whole organization uses.
	Plan *dict.Plan

	// TagASN is the ASN used as α when this AS tags or interprets
	// communities; zero means the AS's own ASN. Multi-AS organizations
	// that share one plan set it to the plan owner's ASN — the reason
	// the paper's method must be sibling-aware.
	TagASN uint32

	// Which kinds of information communities the AS actually attaches at
	// ingress (an operator may document more than it deploys).
	TagsLocation     bool
	TagsRelationship bool
	TagsROV          bool

	// FiltersCommunities marks the ~2% of ASes that strip all communities
	// from routes before announcing them further.
	FiltersCommunities bool

	// Prefixes the AS originates.
	Prefixes []bgp.Prefix
}

// Alpha returns the ASN this AS uses as the α half of its communities:
// its own, unless it shares an organization-wide plan.
func (a *AS) Alpha() uint32 {
	if a.TagASN != 0 {
		return a.TagASN
	}
	return a.ASN
}

// Neighbors returns all neighbor ASNs (providers, customers, bilateral
// and IXP peers) in deterministic order.
func (a *AS) Neighbors() []uint32 {
	out := make([]uint32, 0, len(a.Providers)+len(a.Customers)+len(a.Peers)+len(a.IXPPeers))
	out = append(out, a.Providers...)
	out = append(out, a.Customers...)
	out = append(out, a.Peers...)
	ixp := make([]uint32, 0, len(a.IXPPeers))
	for n := range a.IXPPeers {
		ixp = append(ixp, n)
	}
	sort.Slice(ixp, func(i, j int) bool { return ixp[i] < ixp[j] })
	return append(out, ixp...)
}

// RelWith returns the relationship of the route source asn from this AS's
// perspective (RelCustomer if asn is a customer, etc.), and whether asn
// is a neighbor at all. IXP peers report RelPeer.
func (a *AS) RelWith(asn uint32) (int, bool) {
	for _, c := range a.Customers {
		if c == asn {
			return RelCustomer, true
		}
	}
	for _, p := range a.Peers {
		if p == asn {
			return RelPeer, true
		}
	}
	if _, ok := a.IXPPeers[asn]; ok {
		return RelPeer, true
	}
	for _, p := range a.Providers {
		if p == asn {
			return RelProvider, true
		}
	}
	return 0, false
}

// IXP is an Internet exchange whose route server connects members
// multilaterally. The route server tags member routes with communities
// using its own ASN as α but never appears in the AS path — the
// configuration that makes its communities unclassifiable by the paper's
// method (§5.2).
type IXP struct {
	ID             int
	RouteServerASN uint32
	City           int
	Members        []uint32
	Plan           *dict.Plan
}

// Topology is a generated AS-level Internet.
type Topology struct {
	ASes map[uint32]*AS
	// Order lists ASNs in a deterministic order with providers strictly
	// after their customers in tier terms (stubs first): a valid
	// customer-to-provider processing order for route propagation.
	Order []uint32
	// Orgs maps organization ID to its member ASNs; multi-member orgs are
	// sibling groups.
	Orgs map[int][]uint32
	IXPs []*IXP

	NumRegions      int
	CitiesPerRegion int
}

// Region returns the region a global city ID belongs to (regions and
// cities are numbered from 1).
func (t *Topology) Region(city int) int {
	if city <= 0 {
		return 0
	}
	return (city-1)/t.CitiesPerRegion + 1
}

// CityID returns the global city ID for the k-th city (0-based) of a
// region (1-based).
func (t *Topology) CityID(region, k int) int {
	return (region-1)*t.CitiesPerRegion + k + 1
}

// NumCities returns the total number of cities.
func (t *Topology) NumCities() int { return t.NumRegions * t.CitiesPerRegion }

// Siblings returns the other ASNs in asn's organization (empty for
// singleton orgs or unknown ASNs).
func (t *Topology) Siblings(asn uint32) []uint32 {
	a, ok := t.ASes[asn]
	if !ok {
		return nil
	}
	members := t.Orgs[a.OrgID]
	out := make([]uint32, 0, len(members))
	for _, m := range members {
		if m != asn {
			out = append(out, m)
		}
	}
	return out
}

// SessionCity returns the city of the BGP session between two adjacent
// ASes, like a PeeringDB/facility lookup. ok is false when the ASes are
// not adjacent.
func (t *Topology) SessionCity(a, b uint32) (int, bool) {
	as, ok := t.ASes[a]
	if !ok {
		return 0, false
	}
	city, ok := as.LinkCity[b]
	return city, ok
}

// Stats summarizes a topology for reports and sanity checks.
type Stats struct {
	ASes, Tier1, Tier2, Tier3, Stubs int
	P2CLinks, P2PLinks               int
	PlansDefined                     int
	TotalCommunityDefs               int
	ActionDefs, InfoDefs             int
	Filtering                        int
	MultiASOrgs                      int
	IXPs                             int
	Prefixes                         int
}

// Stats computes summary statistics.
func (t *Topology) Stats() Stats {
	var s Stats
	s.ASes = len(t.ASes)
	s.IXPs = len(t.IXPs)
	for _, a := range t.ASes {
		switch a.Tier {
		case TierT1:
			s.Tier1++
		case TierT2:
			s.Tier2++
		case TierT3:
			s.Tier3++
		default:
			s.Stubs++
		}
		s.P2CLinks += len(a.Customers)
		s.P2PLinks += len(a.Peers) // counted twice; halved below
		if a.Plan != nil {
			s.PlansDefined++
			s.TotalCommunityDefs += len(a.Plan.Defs)
			for _, d := range a.Plan.Defs {
				if d.Category() == dict.CatAction {
					s.ActionDefs++
				} else {
					s.InfoDefs++
				}
			}
		}
		if a.FiltersCommunities {
			s.Filtering++
		}
		s.Prefixes += len(a.Prefixes)
	}
	s.P2PLinks /= 2
	for _, members := range t.Orgs {
		if len(members) > 1 {
			s.MultiASOrgs++
		}
	}
	return s
}

// Validate checks structural invariants: symmetric adjacency, consistent
// relationship labels, session cities assigned for every link, no AS that
// is simultaneously provider and peer of another, and an acyclic
// provider hierarchy.
func (t *Topology) Validate() error {
	for asn, a := range t.ASes {
		if a.ASN != asn {
			return fmt.Errorf("topology: AS map key %d != ASN %d", asn, a.ASN)
		}
		seen := make(map[uint32]int)
		for _, p := range a.Providers {
			seen[p]++
		}
		for _, c := range a.Customers {
			seen[c]++
		}
		for _, p := range a.Peers {
			seen[p]++
		}
		for p := range a.IXPPeers {
			seen[p]++
		}
		for n, cnt := range seen {
			if cnt > 1 {
				return fmt.Errorf("topology: AS%d has AS%d in multiple roles", asn, n)
			}
			if n == asn {
				return fmt.Errorf("topology: AS%d neighbors itself", asn)
			}
			if _, ok := a.LinkCity[n]; !ok {
				return fmt.Errorf("topology: AS%d link to AS%d has no session city", asn, n)
			}
		}
		for _, p := range a.Providers {
			pa, ok := t.ASes[p]
			if !ok {
				return fmt.Errorf("topology: AS%d provider AS%d missing", asn, p)
			}
			if !contains(pa.Customers, asn) {
				return fmt.Errorf("topology: AS%d lists provider AS%d, which does not list it as customer", asn, p)
			}
		}
		for _, p := range a.Peers {
			pa, ok := t.ASes[p]
			if !ok {
				return fmt.Errorf("topology: AS%d peer AS%d missing", asn, p)
			}
			if !contains(pa.Peers, asn) {
				return fmt.Errorf("topology: AS%d peer AS%d not symmetric", asn, p)
			}
		}
		for p, ixp := range a.IXPPeers {
			pa, ok := t.ASes[p]
			if !ok {
				return fmt.Errorf("topology: AS%d IXP peer AS%d missing", asn, p)
			}
			if pa.IXPPeers[asn] != ixp {
				return fmt.Errorf("topology: AS%d IXP peer AS%d not symmetric", asn, p)
			}
		}
	}
	// Provider hierarchy must be acyclic; colors: 0 unvisited, 1 active,
	// 2 done.
	color := make(map[uint32]int, len(t.ASes))
	var visit func(uint32) error
	visit = func(asn uint32) error {
		switch color[asn] {
		case 1:
			return fmt.Errorf("topology: provider cycle through AS%d", asn)
		case 2:
			return nil
		}
		color[asn] = 1
		for _, p := range t.ASes[asn].Providers {
			if err := visit(p); err != nil {
				return err
			}
		}
		color[asn] = 2
		return nil
	}
	for asn := range t.ASes {
		if err := visit(asn); err != nil {
			return err
		}
	}
	// Order must contain every AS exactly once, customers before
	// providers.
	if len(t.Order) != len(t.ASes) {
		return fmt.Errorf("topology: Order has %d entries for %d ASes", len(t.Order), len(t.ASes))
	}
	pos := make(map[uint32]int, len(t.Order))
	for i, asn := range t.Order {
		if _, dup := pos[asn]; dup {
			return fmt.Errorf("topology: Order repeats AS%d", asn)
		}
		pos[asn] = i
	}
	for asn, a := range t.ASes {
		for _, p := range a.Providers {
			if pos[p] <= pos[asn] {
				return fmt.Errorf("topology: Order places provider AS%d before customer AS%d", p, asn)
			}
		}
	}
	return nil
}

// VantagePointCandidates returns ASNs suitable as full-feed vantage
// points, transit-heavy first (the RouteViews/RIS peer population skews
// toward transit networks), in deterministic order.
func (t *Topology) VantagePointCandidates() []uint32 {
	var out []uint32
	for asn := range t.ASes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := t.ASes[out[i]], t.ASes[out[j]]
		if a.Tier != b.Tier {
			return a.Tier < b.Tier
		}
		return a.ASN < b.ASN
	})
	return out
}

// prefixFromIndex deterministically assigns the idx-th /24 out of a
// documentation-style pool starting at 16.0.0.0.
func prefixFromIndex(idx int) bgp.Prefix {
	b0 := 16 + byte(idx>>16)
	b1 := byte(idx >> 8)
	b2 := byte(idx)
	return bgp.PrefixFrom(netip.AddrFrom4([4]byte{b0, b1, b2, 0}), 24)
}

func contains(s []uint32, v uint32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Config controls topology generation. All randomness is derived from
// Seed through per-entity streams (an AS's neighbors, cities and plan
// depend only on Seed and its own ASN), so growing the topology — more
// stubs in a later Epoch — leaves existing structure unchanged, which the
// longitudinal experiment relies on.
type Config struct {
	Seed int64

	// Tier sizes.
	Tier1, Tier2, Tier3, Stubs int

	// Geography.
	Regions, CitiesPerRegion int

	// IXPs is the number of exchanges, placed round-robin over regions.
	IXPs int

	// StubMultihome gives the probabilities of a stub having 1, 2 or 3
	// providers. Multihoming is what pushes action communities off-path.
	StubMultihome [3]float64

	// SiblingOrgFrac is the fraction of transit ASes grouped into
	// multi-AS organizations.
	SiblingOrgFrac float64

	// FilterFrac is the fraction of ASes that strip all communities on
	// export (≈400 of 75k in the wild).
	FilterFrac float64

	// Tier3PlanFrac is the fraction of tier-3 ASes that define community
	// plans (all tier-1/2 ASes do).
	Tier3PlanFrac float64

	// StubInfoPlanFrac is the fraction of stubs with a small
	// information-only plan they tag at origination.
	StubInfoPlanFrac float64

	// T2PeerProb is the probability that two region-overlapping tier-2
	// ASes peer bilaterally.
	T2PeerProb float64

	// T3PeerProb is the same for tier-3 ASes in the same region.
	T3PeerProb float64

	// IXPJoinProbTransit/Stub are the per-AS probabilities of joining the
	// IXP in the AS's home region.
	IXPJoinProbTransit float64
	IXPJoinProbStub    float64

	// Epoch models growth over time: later epochs append extra
	// information blocks to some plans and add stubs, leaving everything
	// already generated untouched.
	Epoch int

	// EpochStubGrowth is how many stubs each epoch adds.
	EpochStubGrowth int
}

// DefaultConfig returns the corpus-scale configuration used by the
// benchmark harness: ~1,300 ASes.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Tier1:              8,
		Tier2:              48,
		Tier3:              220,
		Stubs:              1000,
		Regions:            5,
		CitiesPerRegion:    6,
		IXPs:               5,
		StubMultihome:      [3]float64{0.45, 0.35, 0.20},
		SiblingOrgFrac:     0.12,
		FilterFrac:         0.02,
		Tier3PlanFrac:      0.55,
		StubInfoPlanFrac:   0.08,
		T2PeerProb:         0.18,
		T3PeerProb:         0.02,
		IXPJoinProbTransit: 0.30,
		IXPJoinProbStub:    0.04,
		EpochStubGrowth:    4,
	}
}

// LargeConfig returns a corpus several times the default benchmark
// scale (~4,200 ASes), for runs that want to stress the pipeline closer
// to the paper's population. Expect tens of seconds per simulated day.
func LargeConfig() Config {
	cfg := DefaultConfig()
	cfg.Tier1 = 12
	cfg.Tier2 = 110
	cfg.Tier3 = 600
	cfg.Stubs = 3500
	cfg.Regions = 6
	cfg.CitiesPerRegion = 6
	cfg.IXPs = 12
	cfg.EpochStubGrowth = 15
	return cfg
}

// TinyConfig returns a fast configuration for unit tests: ~170 ASes.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Tier1 = 4
	cfg.Tier2 = 12
	cfg.Tier3 = 40
	cfg.Stubs = 110
	cfg.Regions = 3
	cfg.CitiesPerRegion = 4
	cfg.IXPs = 2
	cfg.IXPJoinProbTransit = 0.5
	cfg.IXPJoinProbStub = 0.1
	cfg.EpochStubGrowth = 8
	return cfg
}

// ASN bases per tier; generated ASNs are deterministic functions of the
// tier-local index.
const (
	asnBaseT1   = 100
	asnBaseT2   = 1000
	asnBaseT3   = 10000
	asnBaseStub = 30000
	asnBaseRS   = 62000
)

// Salts for the per-entity random streams.
const (
	saltGeo   = 0x6e0
	saltEdge  = 0xed6e
	saltPeer  = 0x9ee5
	saltIXP   = 0x1c39
	saltOrg   = 0x0569
	saltMisc  = 0xa11ce
	saltPlan  = 0x9fab
	saltCount = 0xc047
)

// Generate builds a topology from cfg. The result is deterministic for a
// given configuration.
func Generate(cfg Config) (*Topology, error) {
	if cfg.Regions <= 0 || cfg.CitiesPerRegion <= 0 {
		return nil, fmt.Errorf("topology: need at least one region and city")
	}
	if cfg.Tier1 < 2 {
		return nil, fmt.Errorf("topology: need at least two tier-1 ASes")
	}
	if cfg.Tier2 < 1 || cfg.Tier3 < 1 || cfg.Stubs < 1 {
		return nil, fmt.Errorf("topology: every tier needs at least one AS")
	}
	t := &Topology{
		ASes:            make(map[uint32]*AS),
		Orgs:            make(map[int][]uint32),
		NumRegions:      cfg.Regions,
		CitiesPerRegion: cfg.CitiesPerRegion,
	}
	stubs := cfg.Stubs + cfg.Epoch*cfg.EpochStubGrowth

	var t1s, t2s, t3s, stubASNs []uint32
	newAS := func(asn uint32, tier int) *AS {
		a := &AS{ASN: asn, Tier: tier, LinkCity: make(map[uint32]int)}
		t.ASes[asn] = a
		return a
	}

	// Tier 1: global presence, up to two cities per region.
	for i := 0; i < cfg.Tier1; i++ {
		asn := uint32(asnBaseT1 + i)
		a := newAS(asn, TierT1)
		rng := perASRand(cfg.Seed, asn, saltGeo)
		a.HomeRegion = 1 + i%cfg.Regions
		for r := 1; r <= cfg.Regions; r++ {
			a.Cities = append(a.Cities, t.CityID(r, rng.Intn(cfg.CitiesPerRegion)))
			if cfg.CitiesPerRegion > 1 {
				c2 := t.CityID(r, rng.Intn(cfg.CitiesPerRegion))
				if c2 != a.Cities[len(a.Cities)-1] {
					a.Cities = append(a.Cities, c2)
				}
			}
		}
		sort.Ints(a.Cities)
		t1s = append(t1s, asn)
	}
	// Tier 2: home region plus 1-2 extra regions.
	for i := 0; i < cfg.Tier2; i++ {
		asn := uint32(asnBaseT2 + i)
		a := newAS(asn, TierT2)
		rng := perASRand(cfg.Seed, asn, saltGeo)
		a.HomeRegion = 1 + rng.Intn(cfg.Regions)
		regions := []int{a.HomeRegion}
		for k := 0; k < 1+rng.Intn(2); k++ {
			r := 1 + rng.Intn(cfg.Regions)
			if !containsInt(regions, r) {
				regions = append(regions, r)
			}
		}
		for _, r := range regions {
			a.Cities = append(a.Cities, t.CityID(r, rng.Intn(cfg.CitiesPerRegion)))
		}
		sort.Ints(a.Cities)
		t2s = append(t2s, asn)
	}
	// Tier 3: regional, 1-3 cities in the home region.
	for i := 0; i < cfg.Tier3; i++ {
		asn := uint32(asnBaseT3 + i)
		a := newAS(asn, TierT3)
		rng := perASRand(cfg.Seed, asn, saltGeo)
		a.HomeRegion = 1 + rng.Intn(cfg.Regions)
		n := 1 + rng.Intn(3)
		for k := 0; k < n; k++ {
			c := t.CityID(a.HomeRegion, rng.Intn(cfg.CitiesPerRegion))
			if !containsInt(a.Cities, c) {
				a.Cities = append(a.Cities, c)
			}
		}
		sort.Ints(a.Cities)
		t3s = append(t3s, asn)
	}
	// Stubs: one city.
	for i := 0; i < stubs; i++ {
		asn := uint32(asnBaseStub + i)
		a := newAS(asn, TierStub)
		rng := perASRand(cfg.Seed, asn, saltGeo)
		a.HomeRegion = 1 + rng.Intn(cfg.Regions)
		a.Cities = []int{t.CityID(a.HomeRegion, rng.Intn(cfg.CitiesPerRegion))}
		stubASNs = append(stubASNs, asn)
	}

	// Tier-1 clique.
	for i, a := range t1s {
		for _, b := range t1s[i+1:] {
			rng := pairRand(cfg.Seed, a, b, saltPeer)
			addPeer(t, a, b, sessionCity(t, rng, a, b))
		}
	}
	// Tier-2 customers of 1-3 tier-1s.
	for _, asn := range t2s {
		rng := perASRand(cfg.Seed, asn, saltEdge)
		n := 1 + rng.Intn(3)
		for _, p := range pickDistinct(rng, t1s, n) {
			addP2C(t, p, asn, sessionCity(t, rng, p, asn))
		}
	}
	// Tier-2 bilateral peering with region overlap.
	for i, a := range t2s {
		for _, b := range t2s[i+1:] {
			if !regionOverlap(t, a, b) {
				continue
			}
			rng := pairRand(cfg.Seed, a, b, saltPeer)
			if rng.Float64() < cfg.T2PeerProb {
				addPeer(t, a, b, sessionCity(t, rng, a, b))
			}
		}
	}
	// Tier-3 customers of 1-3 tier-2s, preferring region overlap.
	for _, asn := range t3s {
		rng := perASRand(cfg.Seed, asn, saltEdge)
		n := 1 + rng.Intn(3)
		cands := preferRegion(t, rng, t2s, asn)
		for _, p := range cands[:min(n, len(cands))] {
			addP2C(t, p, asn, sessionCity(t, rng, p, asn))
		}
	}
	// Tier-3 peering inside a region.
	for i, a := range t3s {
		for _, b := range t3s[i+1:] {
			if t.ASes[a].HomeRegion != t.ASes[b].HomeRegion {
				continue
			}
			rng := pairRand(cfg.Seed, a, b, saltPeer)
			if rng.Float64() < cfg.T3PeerProb {
				addPeer(t, a, b, sessionCity(t, rng, a, b))
			}
		}
	}
	// Stubs: 1-3 providers from tier-2 (20%) / tier-3 (80%) in region.
	for _, asn := range stubASNs {
		rng := perASRand(cfg.Seed, asn, saltEdge)
		n := 1
		r := rng.Float64()
		switch {
		case r < cfg.StubMultihome[2]:
			n = 3
		case r < cfg.StubMultihome[2]+cfg.StubMultihome[1]:
			n = 2
		}
		pool := t3s
		if rng.Float64() < 0.2 {
			pool = t2s
		}
		cands := preferRegion(t, rng, pool, asn)
		if len(cands) == 0 {
			cands = preferRegion(t, rng, t2s, asn)
		}
		picked := cands[:min(n, len(cands))]
		for _, p := range picked {
			addP2C(t, p, asn, sessionCity(t, rng, p, asn))
		}
		// Multihomed stubs sometimes add a tier-2 provider for path
		// diversity across tiers.
		if n >= 2 && rng.Float64() < 0.3 && len(t2s) > 0 {
			p := t2s[rng.Intn(len(t2s))]
			if _, isNbr := t.ASes[asn].RelWith(p); !isNbr {
				addP2C(t, p, asn, sessionCity(t, rng, p, asn))
			}
		}
	}

	// IXPs: route servers with multilateral member peering. Joining is a
	// per-AS decision so membership only grows as the topology grows.
	for i := 0; i < cfg.IXPs; i++ {
		region := 1 + i%cfg.Regions
		rsASN := uint32(asnBaseRS + i)
		ixRng := perASRand(cfg.Seed, rsASN, saltIXP)
		ix := &IXP{
			ID:             i + 1,
			RouteServerASN: rsASN,
			City:           t.CityID(region, ixRng.Intn(cfg.CitiesPerRegion)),
		}
		for _, group := range [][]uint32{t2s, t3s, stubASNs} {
			for _, asn := range group {
				a := t.ASes[asn]
				if a.HomeRegion != region {
					continue
				}
				prob := cfg.IXPJoinProbTransit
				if a.Tier == TierStub {
					prob = cfg.IXPJoinProbStub
				}
				if perASRand(cfg.Seed, asn, saltIXP+int64(ix.ID)).Float64() < prob {
					ix.Members = append(ix.Members, asn)
				}
			}
		}
		sort.Slice(ix.Members, func(x, y int) bool { return ix.Members[x] < ix.Members[y] })
		for j, a := range ix.Members {
			for _, b := range ix.Members[j+1:] {
				addIXPPeer(t, a, b, ix.ID, ix.City)
			}
		}
		t.IXPs = append(t.IXPs, ix)
	}

	// Organizations: group some transit ASes into multi-AS orgs. The
	// transit population does not change with Epoch, so a dedicated
	// stream keeps groups stable.
	orgID := 1
	orgRng := rand.New(rand.NewSource(cfg.Seed ^ saltOrg))
	transit := append(append([]uint32{}, t2s...), t3s...)
	sort.Slice(transit, func(i, j int) bool { return transit[i] < transit[j] })
	orgRng.Shuffle(len(transit), func(i, j int) { transit[i], transit[j] = transit[j], transit[i] })
	grouped := make(map[uint32]bool)
	budget := int(float64(len(transit)) * cfg.SiblingOrgFrac)
	for i := 0; i+1 < len(transit) && budget > 1; {
		size := 2 + orgRng.Intn(2)
		if size > budget {
			size = budget
		}
		if i+size > len(transit) {
			break
		}
		members := transit[i : i+size]
		for _, m := range members {
			t.ASes[m].OrgID = orgID
			grouped[m] = true
		}
		t.Orgs[orgID] = append([]uint32{}, members...)
		orgID++
		i += size
		budget -= size
	}
	for _, asn := range sortedASNs(t) {
		if !grouped[asn] {
			t.ASes[asn].OrgID = orgID
			t.Orgs[orgID] = []uint32{asn}
			orgID++
		}
	}

	// Community filtering, prefix allocation (per-AS streams).
	pidx := 0
	for _, asn := range sortedASNs(t) {
		a := t.ASes[asn]
		rng := perASRand(cfg.Seed, asn, saltCount)
		if rng.Float64() < cfg.FilterFrac {
			a.FiltersCommunities = true
		}
		n := 1
		switch a.Tier {
		case TierStub:
			n = 1 + rng.Intn(3)
		case TierT3, TierT2:
			n = 1 + rng.Intn(2)
		}
		for k := 0; k < n; k++ {
			a.Prefixes = append(a.Prefixes, prefixFromIndex(pidx))
			pidx++
		}
	}

	// Community plans (per-AS deterministic randomness).
	for _, asn := range t1s {
		buildPlan(t, t.ASes[asn], cfg, planSizeLarge)
	}
	for _, asn := range t2s {
		buildPlan(t, t.ASes[asn], cfg, planSizeMedium)
	}
	for _, asn := range t3s {
		if perASRand(cfg.Seed, asn, saltMisc).Float64() < cfg.Tier3PlanFrac {
			buildPlan(t, t.ASes[asn], cfg, planSizeSmall)
		}
	}
	for _, asn := range stubASNs {
		if perASRand(cfg.Seed, asn, saltMisc).Float64() < cfg.StubInfoPlanFrac {
			buildPlan(t, t.ASes[asn], cfg, planSizeStub)
		}
	}
	for _, ix := range t.IXPs {
		buildIXPPlan(t, ix, cfg)
	}

	// Organization-wide plan sharing: sibling ASes without their own plan
	// often tag with the plan owner's ASN as α — the behavior that makes
	// the paper's on-path test sibling-aware.
	for _, members := range t.Orgs {
		if len(members) < 2 {
			continue
		}
		var leader *AS
		for _, m := range members {
			a := t.ASes[m]
			if a.Plan != nil && (leader == nil || a.ASN < leader.ASN) {
				leader = a
			}
		}
		if leader == nil {
			continue
		}
		for _, m := range members {
			a := t.ASes[m]
			if a.Plan != nil || a == leader {
				continue
			}
			if perASRand(cfg.Seed, a.ASN, saltOrg).Float64() < 0.7 {
				a.Plan = leader.Plan
				a.TagASN = leader.ASN
				a.TagsLocation = leader.TagsLocation
				a.TagsRelationship = leader.TagsRelationship
				a.TagsROV = leader.TagsROV
			}
		}
	}

	// Processing order: stubs, then tier 3, 2, 1 — customers always
	// before providers because providers come from strictly lower tiers.
	t.Order = append(t.Order, stubASNs...)
	t.Order = append(t.Order, t3s...)
	t.Order = append(t.Order, t2s...)
	t.Order = append(t.Order, t1s...)

	return t, nil
}

// sessionCity picks the city of a BGP session between a and b: a common
// city if one exists, otherwise one of the second AS's cities (the
// provider builds out to meet its customer).
func sessionCity(t *Topology, rng *rand.Rand, a, b uint32) int {
	ca, cb := t.ASes[a].Cities, t.ASes[b].Cities
	var common []int
	set := make(map[int]bool, len(ca))
	for _, c := range ca {
		set[c] = true
	}
	for _, c := range cb {
		if set[c] {
			common = append(common, c)
		}
	}
	if len(common) > 0 {
		return common[rng.Intn(len(common))]
	}
	return cb[rng.Intn(len(cb))]
}

func addP2C(t *Topology, provider, customer uint32, city int) {
	p, c := t.ASes[provider], t.ASes[customer]
	if _, dup := p.RelWith(customer); dup {
		return
	}
	p.Customers = append(p.Customers, customer)
	c.Providers = append(c.Providers, provider)
	p.LinkCity[customer] = city
	c.LinkCity[provider] = city
}

func addPeer(t *Topology, a, b uint32, city int) {
	pa, pb := t.ASes[a], t.ASes[b]
	if _, dup := pa.RelWith(b); dup {
		return
	}
	pa.Peers = append(pa.Peers, b)
	pb.Peers = append(pb.Peers, a)
	pa.LinkCity[b] = city
	pb.LinkCity[a] = city
}

func addIXPPeer(t *Topology, a, b uint32, ixpID, city int) {
	pa, pb := t.ASes[a], t.ASes[b]
	if _, dup := pa.RelWith(b); dup {
		return
	}
	if pa.IXPPeers == nil {
		pa.IXPPeers = make(map[uint32]int)
	}
	if pb.IXPPeers == nil {
		pb.IXPPeers = make(map[uint32]int)
	}
	pa.IXPPeers[b] = ixpID
	pb.IXPPeers[a] = ixpID
	pa.LinkCity[b] = city
	pb.LinkCity[a] = city
}

// regionOverlap reports whether two ASes share a region of presence.
func regionOverlap(t *Topology, a, b uint32) bool {
	ra := make(map[int]bool)
	for _, c := range t.ASes[a].Cities {
		ra[t.Region(c)] = true
	}
	for _, c := range t.ASes[b].Cities {
		if ra[t.Region(c)] {
			return true
		}
	}
	return false
}

// preferRegion returns pool shuffled with region-overlapping candidates
// first.
func preferRegion(t *Topology, rng *rand.Rand, pool []uint32, asn uint32) []uint32 {
	var same, other []uint32
	for _, p := range pool {
		if regionOverlap(t, p, asn) {
			same = append(same, p)
		} else {
			other = append(other, p)
		}
	}
	rng.Shuffle(len(same), func(i, j int) { same[i], same[j] = same[j], same[i] })
	rng.Shuffle(len(other), func(i, j int) { other[i], other[j] = other[j], other[i] })
	return append(same, other...)
}

// pickDistinct samples n distinct elements from pool (fewer if the pool
// is small).
func pickDistinct(rng *rand.Rand, pool []uint32, n int) []uint32 {
	if n >= len(pool) {
		out := append([]uint32{}, pool...)
		return out
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]uint32, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func sortedASNs(t *Topology) []uint32 {
	out := make([]uint32, 0, len(t.ASes))
	for asn := range t.ASes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// perASRand derives a deterministic rng for one AS so plans do not
// reshuffle when the topology grows.
func perASRand(seed int64, asn uint32, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(seed) ^ uint64(asn)*0x9e3779b97f4a7c15 ^ uint64(salt)))))
}

// pairRand derives a deterministic rng for an unordered AS pair.
func pairRand(seed int64, a, b uint32, salt int64) *rand.Rand {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	x := uint64(seed) ^ uint64(lo)*0x9e3779b97f4a7c15 ^ uint64(hi)*0xc2b2ae3d27d4eb4f ^ uint64(salt)
	return rand.New(rand.NewSource(int64(mix64(x))))
}

// mix64 is the splitmix64 finalizer, for good bit diffusion.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

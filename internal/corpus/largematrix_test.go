package corpus

import (
	"testing"

	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
)

// TestLargeMatrixGroundTruth builds the deterministic std/lrg matrix
// corpus — every eligible origin-attached community mirrored as α:1:β
// — and checks the large inference space against the plan ground
// truth. The matrix mirrors origin-attached controls (provider
// actions, route-server suppressions, leaked tags); ingress tags added
// mid-path have no large twin, so the large space is validated against
// the dictionary rather than byte-for-byte against the classic labels.
func TestLargeMatrixGroundTruth(t *testing.T) {
	cfg := TinyConfig()
	cfg.LargeMatrix = true
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Store.LargeCommunityCount() == 0 {
		t.Fatal("matrix corpus has no large communities; mirroring inert")
	}
	inf := core.Classify(c.Store, c.Options())

	if n := inf.LargeObserved(); n == 0 {
		t.Fatal("no large communities observed by the classifier")
	}
	if n := len(inf.LargeClusters); n == 0 {
		t.Fatal("no large clusters inferred")
	}

	// Every labeled large community must be a matrix mirror: function
	// field 1, both halves within the classic 16-bit space.
	for lc := range inf.LargeLabels {
		if lc.LocalData1 != 1 || lc.GlobalAdmin > 0xFFFF || lc.LocalData2 > 0xFFFF {
			t.Fatalf("labeled large community %v is not a matrix mirror", lc)
		}
	}

	// Full recall over the mirrored plan: every observed large
	// community whose (α, β) the ground-truth dictionary defines must
	// be classified, with one legitimate exception — α-never-on-path
	// administrators like IXP route servers (which tag without entering
	// the AS path) are excluded in the classic space too, and the large
	// space must agree with that verdict, not improve on it.
	covered := func(lc bgp.LargeCommunity) bool {
		return lc.GlobalAdmin <= 0xFFFF && lc.LocalData2 <= 0xFFFF &&
			c.TruthCategory(lc.GlobalAdmin, uint16(lc.LocalData2)) != dict.CatUnknown
	}
	recalled := 0
	for lc, reason := range inf.LargeExcluded {
		if !covered(lc) {
			continue
		}
		orig := bgp.NewCommunity(uint16(lc.GlobalAdmin), uint16(lc.LocalData2))
		if classicReason, ok := inf.Excluded[orig]; !ok || classicReason != reason {
			t.Errorf("dictionary-covered mirror %v excluded (%v) but classic twin is not (reason %v, excluded=%v)",
				lc, reason, classicReason, ok)
		}
	}
	// Accuracy against the plan: the classifier is not perfect (the
	// paper reports 96%/91% per-category accuracy on real data), but
	// the mirrored plan must be broadly recovered.
	agree, disagree := 0, 0
	for lc, cat := range inf.LargeLabels {
		if !covered(lc) {
			continue
		}
		recalled++
		if cat == c.TruthCategory(lc.GlobalAdmin, uint16(lc.LocalData2)) {
			agree++
		} else {
			disagree++
		}
	}
	if recalled == 0 {
		t.Fatal("no labeled large community overlaps the ground-truth dictionary")
	}
	if agree*1 < disagree*9 { // require ≥90% agreement
		t.Errorf("large vs ground truth: %d agree, %d disagree", agree, disagree)
	}

	// Where the mirror and its classic twin are both attached at the
	// origin — dictionary action communities — the two inference spaces
	// see the same routes, so verdicts must coincide exactly.
	compared := 0
	for lc, cat := range inf.LargeLabels {
		truth := c.TruthCategory(lc.GlobalAdmin, uint16(lc.LocalData2))
		if truth != dict.CatAction {
			continue
		}
		orig := bgp.NewCommunity(uint16(lc.GlobalAdmin), uint16(lc.LocalData2))
		if classic, ok := inf.Labels[orig]; ok {
			compared++
			if classic != cat {
				t.Errorf("action mirror %v labeled %v, classic twin labeled %v", lc, cat, classic)
			}
		}
	}
	if compared == 0 {
		t.Fatal("no action mirror had a labeled classic twin")
	}
}

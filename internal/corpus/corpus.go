// Package corpus assembles end-to-end experiment corpora: a generated
// topology, a route-propagation simulator over it, the as2org map, the
// ground-truth dictionary for a subset of ASes (the paper's 59), and a
// tuple store filled from the simulated collector views.
package corpus

import (
	"fmt"
	"sort"

	"bgpintent/internal/asrel"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
	"bgpintent/internal/simulate"
	"bgpintent/internal/topology"
)

// Scale selects the corpus size.
type Scale int

const (
	// ScaleTiny is for unit tests (~170 ASes).
	ScaleTiny Scale = iota
	// ScaleDefault is the benchmark corpus (~1,300 ASes).
	ScaleDefault
	// ScaleLarge is several times the benchmark scale (~4,200 ASes),
	// closer to the paper's population; expect tens of seconds per day.
	ScaleLarge
)

// Config controls corpus assembly.
type Config struct {
	Scale Scale
	Seed  int64

	// Days of simulated data to load into the tuple store (RIB snapshot
	// per day).
	Days int

	// DictASes is how many plan-defining ASes get ground-truth dictionary
	// coverage (the paper hand-collected 59).
	DictASes int

	// Epoch forwards topology growth for the longitudinal experiment.
	Epoch int

	// OrgCoverage is the fraction of multi-AS org members present in the
	// exported as2org map (real as2org data is incomplete).
	OrgCoverage float64

	// Workers bounds classifier parallelism in Options(): 0 means one
	// worker per CPU, 1 forces sequential runs (results are identical).
	Workers int

	// NoLargeComms disables large-community mirroring in the simulator,
	// producing a classic-only corpus (RFC 1997 communities exclusively).
	// The classic routes are unchanged either way: the mirror draw uses
	// its own keyed RNG, so a classic-only corpus differs from the mixed
	// one only by the absence of large communities.
	NoLargeComms bool

	// LargeMatrix switches the simulator to the deterministic std/lrg
	// matrix: every plan community an origin attaches is mirrored as a
	// large community (arouteserver-style announce/suppress matrix),
	// instead of the probabilistic LargeMirrorProb sampling.
	LargeMatrix bool
}

// DefaultConfig returns the benchmark corpus configuration.
func DefaultConfig() Config {
	return Config{Scale: ScaleDefault, Seed: 1, Days: 7, DictASes: 59, OrgCoverage: 0.9}
}

// TinyConfig returns the unit-test corpus configuration.
func TinyConfig() Config {
	return Config{Scale: ScaleTiny, Seed: 1, Days: 2, DictASes: 30, OrgCoverage: 0.9}
}

// Corpus bundles everything an experiment needs.
type Corpus struct {
	Config Config

	Topo  *topology.Topology
	Sim   *simulate.Simulator
	Orgs  *asrel.OrgMap
	Store *core.TupleStore

	// Dict is the ground-truth dictionary (range regexes over the plans
	// of DictASes ASes).
	Dict *dict.Dictionary
	// DictASNs lists the covered ASNs.
	DictASNs []uint32
}

// Build generates, simulates and loads a corpus.
func Build(cfg Config) (*Corpus, error) {
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	var tcfg topology.Config
	var scfg simulate.Config
	switch cfg.Scale {
	case ScaleTiny:
		tcfg = topology.TinyConfig()
		scfg = simulate.TinyConfig()
	case ScaleLarge:
		tcfg = topology.LargeConfig()
		scfg = simulate.LargeConfig()
	default:
		tcfg = topology.DefaultConfig()
		scfg = simulate.DefaultConfig()
	}
	tcfg.Seed = cfg.Seed
	tcfg.Epoch = cfg.Epoch
	scfg.Seed = cfg.Seed
	if cfg.NoLargeComms {
		scfg.LargeMirrorProb = 0
	}
	scfg.LargeMatrix = cfg.LargeMatrix

	topo, err := topology.Generate(tcfg)
	if err != nil {
		return nil, err
	}
	c := &Corpus{
		Config: cfg,
		Topo:   topo,
		Sim:    simulate.New(topo, scfg),
		Orgs:   OrgMapOf(topo, cfg.OrgCoverage),
		Store:  core.NewTupleStore(),
	}
	for d := 0; d < cfg.Days; d++ {
		c.LoadDay(d)
	}
	c.Store.AnnotateOrgs(c.Orgs)
	if err := c.buildDictionary(cfg.DictASes); err != nil {
		return nil, err
	}
	return c, nil
}

// LoadDay simulates one more day and adds its views to the store.
// Callers that load days incrementally should re-run AnnotateOrgs
// afterwards.
func (c *Corpus) LoadDay(day int) {
	res := c.Sim.RunDay(day)
	for i := range res.Views {
		v := &res.Views[i]
		c.Store.AddViewLarge(v.VP, v.Path, v.Comms, v.LargeComms)
	}
}

// Options returns classifier options wired to this corpus (paper
// defaults plus the org map).
func (c *Corpus) Options() core.Options {
	opts := core.DefaultOptions()
	opts.Orgs = c.Orgs
	opts.Workers = c.Config.Workers
	return opts
}

// OrgMapOf exports a topology's organizations as an as2org map, keeping
// only the given fraction of multi-AS org members (as2org coverage is
// imperfect in the wild). Singleton orgs are omitted: they carry no
// sibling information.
func OrgMapOf(topo *topology.Topology, coverage float64) *asrel.OrgMap {
	m := asrel.NewOrgMap()
	orgIDs := make([]int, 0, len(topo.Orgs))
	for id, members := range topo.Orgs {
		if len(members) > 1 {
			orgIDs = append(orgIDs, id)
		}
	}
	sort.Ints(orgIDs)
	for _, id := range orgIDs {
		for _, asn := range topo.Orgs[id] {
			// Deterministic thinning by a per-ASN hash.
			if coverage < 1 && float64(splitmix(uint64(asn))%1000) >= coverage*1000 {
				continue
			}
			m.Set(asn, fmt.Sprintf("org-%d", id))
		}
	}
	return m
}

// splitmix is the splitmix64 finalizer.
func splitmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// buildDictionary picks the n plan-defining ASes with the largest plans
// (the well-documented networks an operator would find on NLNOG/IRR) and
// compiles their blocks into range regexes.
func (c *Corpus) buildDictionary(n int) error {
	type cand struct {
		asn  uint32
		size int
	}
	var cands []cand
	seenPlan := make(map[*dict.Plan]bool)
	for _, asn := range c.Topo.Order {
		a := c.Topo.ASes[asn]
		// Org-shared plans belong to their owner; skip sharers so each
		// plan is summarized once, under its α.
		if a.Plan == nil || a.TagASN != 0 || seenPlan[a.Plan] {
			continue
		}
		seenPlan[a.Plan] = true
		cands = append(cands, cand{asn: asn, size: len(a.Plan.Defs)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size > cands[j].size
		}
		return cands[i].asn < cands[j].asn
	})
	if n > len(cands) {
		n = len(cands)
	}
	c.Dict = dict.NewDictionary()
	for _, cd := range cands[:n] {
		if err := c.Dict.BuildFromPlan(c.Topo.ASes[cd.asn].Plan); err != nil {
			return err
		}
		c.DictASNs = append(c.DictASNs, cd.asn)
	}
	sort.Slice(c.DictASNs, func(i, j int) bool { return c.DictASNs[i] < c.DictASNs[j] })
	return nil
}

// TruthCategory returns the generator's ground-truth label for a
// community: the defining plan's category when α owns a plan (an AS's
// own, an org-shared plan under the owner's α, or an IXP route server's).
func (c *Corpus) TruthCategory(asn uint32, beta uint16) dict.Category {
	if a, ok := c.Topo.ASes[asn]; ok && a.Plan != nil && a.Plan.ASN == asn {
		return a.Plan.Category(beta)
	}
	for _, ix := range c.Topo.IXPs {
		if ix.RouteServerASN == asn && ix.Plan != nil {
			return ix.Plan.Category(beta)
		}
	}
	return dict.CatUnknown
}

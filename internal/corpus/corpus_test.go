package corpus

import (
	"strings"
	"testing"

	"bgpintent/internal/dict"
)

func buildTiny(t *testing.T) *Corpus {
	t.Helper()
	c, err := Build(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildTiny(t *testing.T) {
	c := buildTiny(t)
	if c.Store.Len() == 0 {
		t.Fatal("empty store")
	}
	if c.Dict.ASNs() == 0 || c.Dict.Len() == 0 {
		t.Fatal("empty dictionary")
	}
	if len(c.DictASNs) != c.Dict.ASNs() {
		t.Errorf("DictASNs = %d, dict covers %d", len(c.DictASNs), c.Dict.ASNs())
	}
	if c.Orgs.Len() == 0 {
		t.Error("empty org map")
	}
}

func TestDictionaryMatchesPlans(t *testing.T) {
	c := buildTiny(t)
	// Every dictionary label must agree with the defining plan for the
	// values the plan defines.
	checked := 0
	for _, asn := range c.DictASNs {
		plan := c.Topo.ASes[asn].Plan
		if plan == nil {
			t.Fatalf("dict AS%d has no plan", asn)
		}
		for _, v := range plan.Values() {
			want := plan.Category(v)
			got := c.Dict.Category(asn, v)
			if got != want {
				t.Fatalf("AS%d value %d: dict=%v plan=%v", asn, v, got, want)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Errorf("only %d values checked", checked)
	}
}

func TestDictionaryPrefersBigPlans(t *testing.T) {
	c := buildTiny(t)
	// Covered plans must be at least as large as uncovered ones.
	minCovered := 1 << 30
	for _, asn := range c.DictASNs {
		if n := len(c.Topo.ASes[asn].Plan.Defs); n < minCovered {
			minCovered = n
		}
	}
	covered := make(map[uint32]bool)
	for _, asn := range c.DictASNs {
		covered[asn] = true
	}
	for _, asn := range c.Topo.Order {
		a := c.Topo.ASes[asn]
		if a.Plan == nil || covered[asn] || a.TagASN != 0 {
			continue
		}
		if len(a.Plan.Defs) > minCovered {
			t.Errorf("uncovered AS%d has %d defs > smallest covered %d", asn, len(a.Plan.Defs), minCovered)
		}
	}
}

func TestTruthCategory(t *testing.T) {
	c := buildTiny(t)
	found := false
	for _, asn := range c.DictASNs {
		plan := c.Topo.ASes[asn].Plan
		for _, v := range plan.Values() {
			if got := c.TruthCategory(asn, v); got != plan.Category(v) {
				t.Fatalf("TruthCategory(%d,%d) = %v, want %v", asn, v, got, plan.Category(v))
			}
			found = true
		}
		break
	}
	if !found {
		t.Fatal("no plan values checked")
	}
	// Route server plans resolve too.
	rs := c.Topo.IXPs[0]
	if rs.Plan != nil {
		v := rs.Plan.Values()[0]
		if got := c.TruthCategory(rs.RouteServerASN, v); got == dict.CatUnknown {
			t.Error("route-server community has no truth category")
		}
	}
	if got := c.TruthCategory(4294900000, 5); got != dict.CatUnknown {
		t.Errorf("unknown ASN truth = %v", got)
	}
}

func TestOrgMapCoverage(t *testing.T) {
	full := buildTiny(t)
	m1 := OrgMapOf(full.Topo, 1.0)
	m2 := OrgMapOf(full.Topo, 0.5)
	if m2.Len() >= m1.Len() {
		t.Errorf("coverage 0.5 (%d) not smaller than 1.0 (%d)", m2.Len(), m1.Len())
	}
	// Full coverage includes every multi-org member.
	want := 0
	for _, members := range full.Topo.Orgs {
		if len(members) > 1 {
			want += len(members)
		}
	}
	if m1.Len() != want {
		t.Errorf("full coverage = %d, want %d", m1.Len(), want)
	}
}

func TestLoadDayIncremental(t *testing.T) {
	cfg := TinyConfig()
	cfg.Days = 1
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Store.Len()
	c.LoadDay(1)
	c.Store.AnnotateOrgs(c.Orgs)
	if c.Store.Len() <= before {
		t.Errorf("second day added no tuples: %d -> %d", before, c.Store.Len())
	}
}

func TestEpochGrowsCommunities(t *testing.T) {
	base := buildTiny(t)
	cfg := TinyConfig()
	cfg.Epoch = 4
	grown, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.Store.Communities()) <= len(base.Store.Communities()) {
		t.Errorf("epoch 4 observed %d communities, base %d",
			len(grown.Store.Communities()), len(base.Store.Communities()))
	}
}

func TestDictionarySerializes(t *testing.T) {
	c := buildTiny(t)
	var b strings.Builder
	if _, err := c.Dict.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	reparsed, err := dict.ReadDictionary(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.Len() != c.Dict.Len() {
		t.Errorf("round trip %d entries, want %d", reparsed.Len(), c.Dict.Len())
	}
}

package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"reflect"
	"testing"

	"bgpintent/internal/bgp"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	bodies := [][]byte{{1, 2, 3}, {}, {0xff}}
	for i, b := range bodies {
		if err := w.WriteRecord(uint32(1000+i), TypeBGP4MP, SubtypeBGP4MPMessageAS4, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	for i, want := range bodies {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Timestamp != uint32(1000+i) || rec.Type != TypeBGP4MP || rec.Subtype != SubtypeBGP4MPMessageAS4 {
			t.Errorf("record %d header = %+v", i, rec)
		}
		if !bytes.Equal(rec.Body, want) {
			t.Errorf("record %d body = %v, want %v", i, rec.Body, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("tail err = %v, want io.EOF", err)
	}
	// Errors are sticky.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("repeat err = %v, want io.EOF", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(1, TypeBGP4MP, 4, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()

	// Truncated header.
	r := NewReader(bytes.NewReader(full[:6]))
	if _, err := r.Next(); err == nil {
		t.Error("truncated header: want error")
	}
	// Truncated body.
	r = NewReader(bytes.NewReader(full[:14]))
	if _, err := r.Next(); err == nil {
		t.Error("truncated body: want error")
	}
}

func TestReaderLengthLimit(t *testing.T) {
	hdr := make([]byte, 12)
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xff, 0xff, 0xff, 0xff
	r := NewReader(bytes.NewReader(hdr))
	if _, err := r.Next(); err == nil {
		t.Error("giant length: want error")
	}
}

func testPeerTable() *PeerIndexTable {
	return &PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("10.0.0.1"),
		ViewName:       "rc1",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.1.0.1"), Addr: netip.MustParseAddr("198.51.100.1"), ASN: 65269},
			{BGPID: netip.MustParseAddr("10.1.0.2"), Addr: netip.MustParseAddr("2001:db8::2"), ASN: 65541},
			{BGPID: netip.MustParseAddr("10.1.0.3"), Addr: netip.MustParseAddr("198.51.100.3"), ASN: 4200000001},
		},
	}
}

func TestPeerIndexTableRoundTrip(t *testing.T) {
	want := testPeerTable()
	got, err := ParsePeerIndexTable(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.CollectorBGPID != want.CollectorBGPID || got.ViewName != want.ViewName {
		t.Errorf("header = %v %q", got.CollectorBGPID, got.ViewName)
	}
	if !reflect.DeepEqual(got.Peers, want.Peers) {
		t.Errorf("peers = %+v, want %+v", got.Peers, want.Peers)
	}
}

func TestParsePeerIndexTableErrors(t *testing.T) {
	enc := testPeerTable().Encode()
	for _, cut := range []int{2, 7, 9, 12, len(enc) - 1} {
		if _, err := ParsePeerIndexTable(enc[:cut]); err == nil {
			t.Errorf("cut at %d: want error", cut)
		}
	}
}

func testRIBEntry(peerIdx uint16, comms ...bgp.Community) RIBEntry {
	return RIBEntry{
		PeerIndex:      peerIdx,
		OriginatedTime: 1714500000,
		Attrs: bgp.PathAttributes{
			HasOrigin:   true,
			Origin:      bgp.OriginIGP,
			ASPath:      bgp.NewASPath(65269, 7018, 1299, 64496),
			HasNextHop:  true,
			NextHop:     netip.MustParseAddr("198.51.100.1"),
			Communities: comms,
		},
	}
}

func TestRIBRoundTrip(t *testing.T) {
	want := &RIB{
		SequenceNumber: 7,
		Prefix:         bgp.MustParsePrefix("192.0.2.0/24"),
		Entries: []RIBEntry{
			testRIBEntry(0, bgp.NewCommunity(1299, 2569)),
			testRIBEntry(2, bgp.NewCommunity(1299, 35130), bgp.NewCommunity(7018, 1000)),
		},
	}
	body, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRIB(SubtypeRIBIPv4Unicast, body)
	if err != nil {
		t.Fatal(err)
	}
	if got.SequenceNumber != 7 || got.Prefix != want.Prefix || len(got.Entries) != 2 {
		t.Fatalf("got %+v", got)
	}
	for i := range want.Entries {
		w, g := want.Entries[i], got.Entries[i]
		if g.PeerIndex != w.PeerIndex || g.OriginatedTime != w.OriginatedTime {
			t.Errorf("entry %d header mismatch", i)
		}
		if !g.Attrs.ASPath.Equal(w.Attrs.ASPath) {
			t.Errorf("entry %d as path", i)
		}
		if !reflect.DeepEqual(g.Attrs.Communities, w.Attrs.Communities) {
			t.Errorf("entry %d communities = %v", i, g.Attrs.Communities)
		}
	}
}

func TestParseRIBErrors(t *testing.T) {
	rib := &RIB{Prefix: bgp.MustParsePrefix("192.0.2.0/24"), Entries: []RIBEntry{testRIBEntry(0)}}
	body, err := rib.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseRIB(99, body); err == nil {
		t.Error("bad subtype: want error")
	}
	for _, cut := range []int{2, 5, 8, 12, len(body) - 1} {
		if _, err := ParseRIB(SubtypeRIBIPv4Unicast, body[:cut]); err == nil {
			t.Errorf("cut at %d: want error", cut)
		}
	}
	if _, err := ParseRIB(SubtypeRIBIPv4Unicast, append(body, 0)); err == nil {
		t.Error("trailing byte: want error")
	}
}

func TestBGP4MPRoundTrip(t *testing.T) {
	msg := &bgp.UpdateMessage{
		Attrs: bgp.PathAttributes{
			HasOrigin: true,
			ASPath:    bgp.NewASPath(65269, 64496),
			Communities: bgp.Communities{
				bgp.NewCommunity(1299, 2569),
			},
		},
		NLRI: []bgp.Prefix{bgp.MustParsePrefix("192.0.2.0/24")},
	}
	wire, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want := &BGP4MPMessage{
		PeerAS:    65269,
		LocalAS:   64999,
		IfIndex:   3,
		PeerAddr:  netip.MustParseAddr("198.51.100.1"),
		LocalAddr: netip.MustParseAddr("198.51.100.254"),
		Message:   wire,
	}
	got, err := ParseBGP4MP(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.PeerAS != want.PeerAS || got.LocalAS != want.LocalAS || got.IfIndex != want.IfIndex {
		t.Errorf("header = %+v", got)
	}
	if got.PeerAddr.Unmap() != want.PeerAddr || got.LocalAddr.Unmap() != want.LocalAddr {
		t.Errorf("addrs = %v %v", got.PeerAddr, got.LocalAddr)
	}
	if !bytes.Equal(got.Message, wire) {
		t.Error("message bytes differ")
	}
}

func TestBGP4MPRoundTripIPv6(t *testing.T) {
	want := &BGP4MPMessage{
		PeerAS:    1,
		LocalAS:   2,
		PeerAddr:  netip.MustParseAddr("2001:db8::1"),
		LocalAddr: netip.MustParseAddr("2001:db8::2"),
		Message:   []byte{1, 2, 3},
	}
	got, err := ParseBGP4MP(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.PeerAddr != want.PeerAddr || got.LocalAddr != want.LocalAddr {
		t.Errorf("addrs = %v %v", got.PeerAddr, got.LocalAddr)
	}
}

func TestParseBGP4MPErrors(t *testing.T) {
	if _, err := ParseBGP4MP([]byte{1, 2, 3}); err == nil {
		t.Error("short: want error")
	}
	body := (&BGP4MPMessage{PeerAddr: netip.MustParseAddr("10.0.0.1"), LocalAddr: netip.MustParseAddr("10.0.0.2")}).Encode()
	body[10], body[11] = 0, 9 // bad AFI
	if _, err := ParseBGP4MP(body); err == nil {
		t.Error("bad AFI: want error")
	}
}

func TestTableDumpWriterScannerEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	table := testPeerTable()
	tw, err := NewTableDumpWriter(&buf, 1714500000, table)
	if err != nil {
		t.Fatal(err)
	}
	p1 := bgp.MustParsePrefix("192.0.2.0/24")
	p2 := bgp.MustParsePrefix("198.51.100.0/24")
	if err := tw.WriteRIB(p1, []RIBEntry{testRIBEntry(0, bgp.NewCommunity(1299, 1)), testRIBEntry(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteRIB(p2, []RIBEntry{testRIBEntry(2)}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	s := NewTableDumpScanner(&buf)
	// Views are only valid until the next Next call, so retain copies.
	var views []RIBView
	for {
		v, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, *v)
	}
	if len(views) != 3 {
		t.Fatalf("views = %d, want 3", len(views))
	}
	if views[0].Prefix != p1 || views[0].Peer.ASN != 65269 {
		t.Errorf("view 0 = %+v", views[0])
	}
	if views[1].Prefix != p1 || views[1].Peer.ASN != 65541 {
		t.Errorf("view 1 = %+v", views[1])
	}
	if views[2].Prefix != p2 || views[2].Peer.ASN != 4200000001 {
		t.Errorf("view 2 = %+v", views[2])
	}
	if got := s.PeerTable().ViewName; got != "rc1" {
		t.Errorf("view name = %q", got)
	}
}

func TestTableDumpScannerBadPeerIndex(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTableDumpWriter(&buf, 1, testPeerTable())
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteRIB(bgp.MustParsePrefix("192.0.2.0/24"), []RIBEntry{testRIBEntry(9)}); err != nil {
		t.Fatal(err)
	}
	tw.Flush()
	s := NewTableDumpScanner(&buf)
	if _, err := s.Next(); err == nil {
		t.Error("peer index out of range: want error")
	}
}

func TestUpdateWriterScannerEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	uw := NewUpdateWriter(&buf)
	peer := netip.MustParseAddr("198.51.100.1")
	local := netip.MustParseAddr("198.51.100.254")
	msg := &bgp.UpdateMessage{
		Attrs: bgp.PathAttributes{
			HasOrigin:   true,
			ASPath:      bgp.NewASPath(65269, 7018, 64496),
			Communities: bgp.Communities{bgp.NewCommunity(7018, 5000)},
		},
		NLRI: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.0/24")},
	}
	for i := 0; i < 3; i++ {
		if err := uw.WriteUpdate(uint32(100+i), 65269, 64999, peer, local, msg); err != nil {
			t.Fatal(err)
		}
	}
	uw.Flush()

	s := NewUpdateScanner(&buf)
	count := 0
	for {
		v, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if v.PeerAS != 65269 || v.PeerAddr.Unmap() != peer {
			t.Errorf("peer = %d %v", v.PeerAS, v.PeerAddr)
		}
		if v.Timestamp != uint32(100+count) {
			t.Errorf("timestamp = %d", v.Timestamp)
		}
		if len(v.Update.NLRI) != 1 || v.Update.NLRI[0] != msg.NLRI[0] {
			t.Errorf("nlri = %v", v.Update.NLRI)
		}
		if !reflect.DeepEqual(v.Update.Attrs.Communities, msg.Attrs.Communities) {
			t.Errorf("communities = %v", v.Update.Attrs.Communities)
		}
		count++
	}
	if count != 3 {
		t.Errorf("updates = %d, want 3", count)
	}
}

func TestUpdateScannerSkipsForeignRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// A TABLE_DUMP_V2 record the update scanner must skip.
	w.WriteRecord(1, TypeTableDumpV2, SubtypePeerIndexTable, testPeerTable().Encode())
	// A BGP4MP record with an unhandled subtype (STATE_CHANGE): skipped.
	w.WriteRecord(2, TypeBGP4MP, 0, []byte{0, 0})
	w.Flush()
	uw := NewUpdateWriter(&buf)
	msg := &bgp.UpdateMessage{NLRI: []bgp.Prefix{bgp.MustParsePrefix("192.0.2.0/24")}}
	uw.WriteUpdate(3, 1, 2, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), msg)
	uw.Flush()

	s := NewUpdateScanner(&buf)
	v, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if v.Timestamp != 3 {
		t.Errorf("timestamp = %d, want 3", v.Timestamp)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("tail = %v, want io.EOF", err)
	}
}

func TestUpdateScannerLegacyRecords(t *testing.T) {
	// Hand-build a BGP4MP_MESSAGE (2-octet session) record carrying a
	// 2-octet UPDATE and verify the scanner reconstructs the path.
	var msg []byte
	attrs := []byte{0x40, bgp.AttrOrigin, 1, bgp.OriginIGP}
	asPath := []byte{bgp.SegmentTypeASSequence, 2, 0xFE, 0xF5, 0xFB, 0xF0} // 65269 64496
	attrs = append(attrs, 0x40, bgp.AttrASPath, byte(len(asPath)))
	attrs = append(attrs, asPath...)
	nlri := bgp.MustParsePrefix("192.0.2.0/24").AppendWire(nil)
	total := 19 + 2 + 2 + len(attrs) + len(nlri)
	for i := 0; i < 16; i++ {
		msg = append(msg, 0xff)
	}
	msg = append(msg, byte(total>>8), byte(total), bgp.MsgTypeUpdate, 0, 0)
	msg = append(msg, byte(len(attrs)>>8), byte(len(attrs)))
	msg = append(msg, attrs...)
	msg = append(msg, nlri...)

	var body []byte
	body = append(body, 0xFE, 0xF5) // peer AS 65269
	body = append(body, 0x00, 0x01) // local AS 1
	body = append(body, 0, 0)       // ifindex
	body = append(body, 0, 1)       // AFI IPv4
	body = append(body, 198, 51, 100, 1)
	body = append(body, 10, 0, 0, 1)
	body = append(body, msg...)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(42, TypeBGP4MP, SubtypeBGP4MPMessage, body); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	s := NewUpdateScanner(&buf)
	v, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if v.PeerAS != 65269 {
		t.Errorf("peer AS = %d", v.PeerAS)
	}
	want := bgp.NewASPath(65269, 64496)
	if !v.Update.Attrs.ASPath.Equal(want) {
		t.Errorf("path = %v, want %v", v.Update.Attrs.ASPath, want)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("tail = %v", err)
	}
}

func TestParseBGP4MPLegacyErrors(t *testing.T) {
	if _, err := ParseBGP4MPLegacy([]byte{1, 2}); err == nil {
		t.Error("short body accepted")
	}
	bad := []byte{0, 1, 0, 2, 0, 0, 0, 9} // AFI 9
	if _, err := ParseBGP4MPLegacy(bad); err == nil {
		t.Error("bad AFI accepted")
	}
	short := []byte{0, 1, 0, 2, 0, 0, 0, 1, 10, 0} // truncated addresses
	if _, err := ParseBGP4MPLegacy(short); err == nil {
		t.Error("truncated addresses accepted")
	}
}

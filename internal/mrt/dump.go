package mrt

import (
	"fmt"
	"io"
	"net/netip"

	"bgpintent/internal/bgp"
)

// TableDumpWriter writes a complete TABLE_DUMP_V2 snapshot: a
// PEER_INDEX_TABLE record followed by one RIB record per prefix, the
// layout RouteViews and RIS use for their rib files.
type TableDumpWriter struct {
	w   *Writer
	ts  uint32
	seq uint32
}

// NewTableDumpWriter writes the peer index table immediately and returns
// a writer for the RIB records that follow.
func NewTableDumpWriter(w io.Writer, timestamp uint32, table *PeerIndexTable) (*TableDumpWriter, error) {
	tw := &TableDumpWriter{w: NewWriter(w), ts: timestamp}
	if err := tw.w.WriteRecord(timestamp, TypeTableDumpV2, SubtypePeerIndexTable, table.Encode()); err != nil {
		return nil, err
	}
	return tw, nil
}

// WriteRIB emits one RIB record for prefix with the given vantage-point
// entries, assigning the next sequence number.
func (tw *TableDumpWriter) WriteRIB(prefix bgp.Prefix, entries []RIBEntry) error {
	subtype := SubtypeRIBIPv4Unicast
	if prefix.Addr().Is6() && !prefix.Addr().Is4In6() {
		subtype = SubtypeRIBIPv6Unicast
	}
	rib := RIB{SequenceNumber: tw.seq, Prefix: prefix, Entries: entries}
	tw.seq++
	body, err := rib.Encode()
	if err != nil {
		return err
	}
	return tw.w.WriteRecord(tw.ts, TypeTableDumpV2, subtype, body)
}

// Flush flushes buffered output.
func (tw *TableDumpWriter) Flush() error { return tw.w.Flush() }

// RIBView is one vantage point's route for one prefix, with the peer
// resolved through the index table: the unit the inference pipeline
// consumes.
type RIBView struct {
	Peer   Peer
	Prefix bgp.Prefix
	Entry  RIBEntry
}

// TableDumpScanner streams RIBViews out of a TABLE_DUMP_V2 file,
// resolving peer indexes against the PEER_INDEX_TABLE. Records of other
// types are skipped.
type TableDumpScanner struct {
	r       *Reader
	table   *PeerIndexTable
	current *RIB
	pos     int
	err     error
}

// NewTableDumpScanner wraps an MRT stream.
func NewTableDumpScanner(r io.Reader) *TableDumpScanner {
	return &TableDumpScanner{r: NewReader(r)}
}

// PeerTable returns the peer index table, once one has been read.
func (s *TableDumpScanner) PeerTable() *PeerIndexTable { return s.table }

// Next returns the next RIBView, or io.EOF at end of stream.
func (s *TableDumpScanner) Next() (*RIBView, error) {
	if s.err != nil {
		return nil, s.err
	}
	for {
		if s.current != nil && s.pos < len(s.current.Entries) {
			e := s.current.Entries[s.pos]
			s.pos++
			if s.table == nil || int(e.PeerIndex) >= len(s.table.Peers) {
				s.err = fmt.Errorf("mrt: RIB entry references peer index %d outside table", e.PeerIndex)
				return nil, s.err
			}
			return &RIBView{
				Peer:   s.table.Peers[e.PeerIndex],
				Prefix: s.current.Prefix,
				Entry:  e,
			}, nil
		}
		rec, err := s.r.Next()
		if err != nil {
			s.err = err
			return nil, err
		}
		if rec.Type != TypeTableDumpV2 {
			continue
		}
		switch rec.Subtype {
		case SubtypePeerIndexTable:
			t, err := ParsePeerIndexTable(rec.Body)
			if err != nil {
				s.err = err
				return nil, err
			}
			s.table = t
		case SubtypeRIBIPv4Unicast, SubtypeRIBIPv6Unicast:
			rib, err := ParseRIB(rec.Subtype, rec.Body)
			if err != nil {
				s.err = err
				return nil, err
			}
			s.current = rib
			s.pos = 0
		default:
			// Other TABLE_DUMP_V2 subtypes (multicast, generic) skipped.
		}
	}
}

// UpdateWriter writes BGP4MP_MESSAGE_AS4 records, the layout of
// RouteViews/RIS updates files.
type UpdateWriter struct {
	w *Writer
}

// NewUpdateWriter returns a writer for BGP4MP update records.
func NewUpdateWriter(w io.Writer) *UpdateWriter {
	return &UpdateWriter{w: NewWriter(w)}
}

// WriteUpdate encodes msg and emits it as one BGP4MP_MESSAGE_AS4 record
// observed from the given peer session.
func (uw *UpdateWriter) WriteUpdate(timestamp uint32, peerAS, localAS uint32, peerAddr, localAddr netip.Addr, msg *bgp.UpdateMessage) error {
	wire, err := msg.Encode()
	if err != nil {
		return err
	}
	rec := BGP4MPMessage{
		PeerAS:    peerAS,
		LocalAS:   localAS,
		PeerAddr:  peerAddr,
		LocalAddr: localAddr,
		Message:   wire,
	}
	return uw.w.WriteRecord(timestamp, TypeBGP4MP, SubtypeBGP4MPMessageAS4, rec.Encode())
}

// Flush flushes buffered output.
func (uw *UpdateWriter) Flush() error { return uw.w.Flush() }

// UpdateView is one decoded BGP UPDATE observed from a collector peer.
type UpdateView struct {
	Timestamp uint32
	PeerAS    uint32
	PeerAddr  netip.Addr
	Update    *bgp.UpdateMessage
}

// UpdateScanner streams decoded updates out of a BGP4MP file. Non-UPDATE
// BGP messages and non-BGP4MP records are skipped.
type UpdateScanner struct {
	r   *Reader
	err error
}

// NewUpdateScanner wraps an MRT stream.
func NewUpdateScanner(r io.Reader) *UpdateScanner {
	return &UpdateScanner{r: NewReader(r)}
}

// Next returns the next decoded update, or io.EOF at end of stream.
func (s *UpdateScanner) Next() (*UpdateView, error) {
	if s.err != nil {
		return nil, s.err
	}
	for {
		rec, err := s.r.Next()
		if err != nil {
			s.err = err
			return nil, err
		}
		if rec.Type != TypeBGP4MP && rec.Type != TypeBGP4MPET {
			continue
		}
		body := rec.Body
		if rec.Type == TypeBGP4MPET {
			// Extended timestamp: 4 extra microsecond octets first.
			if len(body) < 4 {
				s.err = fmt.Errorf("mrt: BGP4MP_ET: short body")
				return nil, s.err
			}
			body = body[4:]
		}
		var (
			m    *BGP4MPMessage
			perr error
			asn  = 4
		)
		switch rec.Subtype {
		case SubtypeBGP4MPMessageAS4:
			m, perr = ParseBGP4MP(body)
		case SubtypeBGP4MPMessage:
			m, perr = ParseBGP4MPLegacy(body)
			asn = 2
		default:
			continue
		}
		if perr != nil {
			s.err = perr
			return nil, perr
		}
		if len(m.Message) >= 19 && m.Message[18] != bgp.MsgTypeUpdate {
			continue // keepalive/open/notification
		}
		upd, err := bgp.DecodeUpdateSized(m.Message, asn)
		if err != nil {
			s.err = fmt.Errorf("mrt: BGP4MP update: %w", err)
			return nil, s.err
		}
		return &UpdateView{
			Timestamp: rec.Timestamp,
			PeerAS:    m.PeerAS,
			PeerAddr:  m.PeerAddr,
			Update:    upd,
		}, nil
	}
}

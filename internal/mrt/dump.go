package mrt

import (
	"fmt"
	"io"
	"net/netip"

	"bgpintent/internal/bgp"
)

// TableDumpWriter writes a complete TABLE_DUMP_V2 snapshot: a
// PEER_INDEX_TABLE record followed by one RIB record per prefix, the
// layout RouteViews and RIS use for their rib files.
type TableDumpWriter struct {
	w   *Writer
	ts  uint32
	seq uint32
}

// NewTableDumpWriter writes the peer index table immediately and returns
// a writer for the RIB records that follow.
func NewTableDumpWriter(w io.Writer, timestamp uint32, table *PeerIndexTable) (*TableDumpWriter, error) {
	tw := &TableDumpWriter{w: NewWriter(w), ts: timestamp}
	if err := tw.w.WriteRecord(timestamp, TypeTableDumpV2, SubtypePeerIndexTable, table.Encode()); err != nil {
		return nil, err
	}
	return tw, nil
}

// WriteRIB emits one RIB record for prefix with the given vantage-point
// entries, assigning the next sequence number.
func (tw *TableDumpWriter) WriteRIB(prefix bgp.Prefix, entries []RIBEntry) error {
	subtype := SubtypeRIBIPv4Unicast
	if prefix.Addr().Is6() && !prefix.Addr().Is4In6() {
		subtype = SubtypeRIBIPv6Unicast
	}
	rib := RIB{SequenceNumber: tw.seq, Prefix: prefix, Entries: entries}
	tw.seq++
	body, err := rib.Encode()
	if err != nil {
		return err
	}
	return tw.w.WriteRecord(tw.ts, TypeTableDumpV2, subtype, body)
}

// Flush flushes buffered output.
func (tw *TableDumpWriter) Flush() error { return tw.w.Flush() }

// RIBView is one vantage point's route for one prefix, with the peer
// resolved through the index table: the unit the inference pipeline
// consumes.
type RIBView struct {
	Peer   Peer
	Prefix bgp.Prefix
	Entry  RIBEntry
}

// ScanOptions configure the fault tolerance of a scanner.
type ScanOptions struct {
	// Lenient makes the scanner skip undecodable records (and resync
	// over corrupt framing) instead of returning a sticky error.
	Lenient bool
	// Stats, if non-nil, receives per-stream decode statistics.
	Stats *Stats
	// Check, if non-nil, runs after every processed record with the
	// current stats; a non-nil return aborts the scan with that sticky
	// error. Ingestion uses it to enforce an error budget.
	Check func(*Stats) error
}

// Reader returns the record reader a scanner with these options would
// use: strict or lenient per o.Lenient, framing stats wired to o.Stats,
// record reuse enabled. Decode loops built outside this package (the
// frame/decode split pipeline in internal/ingest) use it to frame with
// exactly the scanners' fault tolerance.
func (o *ScanOptions) Reader(r io.Reader) *Reader { return o.reader(r) }

func (o *ScanOptions) reader(r io.Reader) *Reader {
	var rd *Reader
	if o.Lenient {
		rd = NewLenientReader(r, o.Stats)
	} else {
		rd = NewReader(r)
		rd.stats = o.Stats
	}
	// The scanners fully decode each record before reading the next, so
	// the record and its body buffer can be recycled.
	rd.ReuseRecord()
	return rd
}

func (o *ScanOptions) check() error {
	if o.Check == nil {
		return nil
	}
	return o.Check(o.Stats)
}

// TableDumpScanner streams RIBViews out of a TABLE_DUMP_V2 file,
// resolving peer indexes against the PEER_INDEX_TABLE. Records of other
// types are skipped.
type TableDumpScanner struct {
	r       *Reader
	opts    ScanOptions
	table   *PeerIndexTable
	rib     RIB  // reusable decode target; current points here once filled
	current *RIB
	view    RIBView // reusable return value
	curOff  int64
	pos     int
	err     error
}

// NewTableDumpScanner wraps an MRT stream with strict decoding.
func NewTableDumpScanner(r io.Reader) *TableDumpScanner {
	return NewTableDumpScannerOptions(r, ScanOptions{})
}

// NewTableDumpScannerOptions wraps an MRT stream with the given fault
// tolerance.
func NewTableDumpScannerOptions(r io.Reader, opts ScanOptions) *TableDumpScanner {
	if opts.Check != nil && opts.Stats == nil {
		opts.Stats = &Stats{}
	}
	return &TableDumpScanner{r: opts.reader(r), opts: opts}
}

// PeerTable returns the peer index table, once one has been read.
func (s *TableDumpScanner) PeerTable() *PeerIndexTable { return s.table }

// Stats returns the scanner's statistics collector (nil unless one was
// configured).
func (s *TableDumpScanner) Stats() *Stats { return s.opts.Stats }

// Next returns the next RIBView, or io.EOF at end of stream. The view
// is owned by the scanner and valid only until the following Next call;
// callers that retain it must copy what they need.
func (s *TableDumpScanner) Next() (*RIBView, error) {
	if s.err != nil {
		return nil, s.err
	}
	v, err := s.next()
	if err != nil {
		s.err = err
		return nil, err
	}
	return v, nil
}

func (s *TableDumpScanner) next() (*RIBView, error) {
	for {
		if s.current != nil && s.pos < len(s.current.Entries) {
			e := s.current.Entries[s.pos]
			s.pos++
			if s.table == nil || int(e.PeerIndex) >= len(s.table.Peers) {
				if !s.opts.Lenient {
					return nil, fmt.Errorf("mrt: RIB record at offset %d: entry references peer index %d outside table", s.curOff, e.PeerIndex)
				}
				s.opts.Stats.noteSkip("peer-index-out-of-range")
				if err := s.opts.check(); err != nil {
					return nil, err
				}
				continue
			}
			s.view = RIBView{
				Peer:   s.table.Peers[e.PeerIndex],
				Prefix: s.current.Prefix,
				Entry:  e,
			}
			return &s.view, nil
		}
		rec, err := s.r.Next()
		if err != nil {
			if err == io.EOF {
				if cerr := s.opts.check(); cerr != nil {
					return nil, cerr
				}
			}
			return nil, err
		}
		if rec.Type != TypeTableDumpV2 {
			s.opts.Stats.noteUnknown(rec.Type, rec.Subtype)
		} else {
			switch rec.Subtype {
			case SubtypePeerIndexTable:
				t, perr := ParsePeerIndexTable(rec.Body)
				if perr != nil {
					if !s.opts.Lenient {
						return nil, fmt.Errorf("mrt: record at offset %d: %w", rec.Offset, perr)
					}
					s.opts.Stats.noteSkip("peer-index-table")
					s.r.Reject(rec)
				} else {
					s.table = t
					s.opts.Stats.noteDecoded()
				}
			case SubtypeRIBIPv4Unicast, SubtypeRIBIPv6Unicast:
				perr := ParseRIBInto(rec.Subtype, rec.Body, &s.rib)
				if perr != nil {
					// A failed decode leaves the reused RIB in an
					// unspecified state; drop any stale reference.
					s.current = nil
					if !s.opts.Lenient {
						return nil, fmt.Errorf("mrt: record at offset %d: %w", rec.Offset, perr)
					}
					s.opts.Stats.noteSkip("rib")
					s.r.Reject(rec)
				} else {
					s.current = &s.rib
					s.curOff = rec.Offset
					s.pos = 0
					s.opts.Stats.noteDecoded()
				}
			default:
				// Other TABLE_DUMP_V2 subtypes (multicast, generic) skipped.
				s.opts.Stats.noteUnknown(rec.Type, rec.Subtype)
			}
		}
		if err := s.opts.check(); err != nil {
			return nil, err
		}
	}
}

// UpdateWriter writes BGP4MP_MESSAGE_AS4 records, the layout of
// RouteViews/RIS updates files.
type UpdateWriter struct {
	w *Writer
}

// NewUpdateWriter returns a writer for BGP4MP update records.
func NewUpdateWriter(w io.Writer) *UpdateWriter {
	return &UpdateWriter{w: NewWriter(w)}
}

// WriteUpdate encodes msg and emits it as one BGP4MP_MESSAGE_AS4 record
// observed from the given peer session.
func (uw *UpdateWriter) WriteUpdate(timestamp uint32, peerAS, localAS uint32, peerAddr, localAddr netip.Addr, msg *bgp.UpdateMessage) error {
	wire, err := msg.Encode()
	if err != nil {
		return err
	}
	rec := BGP4MPMessage{
		PeerAS:    peerAS,
		LocalAS:   localAS,
		PeerAddr:  peerAddr,
		LocalAddr: localAddr,
		Message:   wire,
	}
	return uw.w.WriteRecord(timestamp, TypeBGP4MP, SubtypeBGP4MPMessageAS4, rec.Encode())
}

// Flush flushes buffered output.
func (uw *UpdateWriter) Flush() error { return uw.w.Flush() }

// UpdateView is one decoded BGP UPDATE observed from a collector peer.
type UpdateView struct {
	Timestamp uint32
	PeerAS    uint32
	PeerAddr  netip.Addr
	Update    *bgp.UpdateMessage
}

// UpdateScanner streams decoded updates out of a BGP4MP file. Non-UPDATE
// BGP messages and non-BGP4MP records are skipped.
type UpdateScanner struct {
	r    *Reader
	opts ScanOptions
	upd  bgp.UpdateMessage // reusable decode target
	view UpdateView        // reusable return value
	err  error
}

// NewUpdateScanner wraps an MRT stream with strict decoding.
func NewUpdateScanner(r io.Reader) *UpdateScanner {
	return NewUpdateScannerOptions(r, ScanOptions{})
}

// NewUpdateScannerOptions wraps an MRT stream with the given fault
// tolerance.
func NewUpdateScannerOptions(r io.Reader, opts ScanOptions) *UpdateScanner {
	if opts.Check != nil && opts.Stats == nil {
		opts.Stats = &Stats{}
	}
	return &UpdateScanner{r: opts.reader(r), opts: opts}
}

// Stats returns the scanner's statistics collector (nil unless one was
// configured).
func (s *UpdateScanner) Stats() *Stats { return s.opts.Stats }

// Next returns the next decoded update, or io.EOF at end of stream. The
// view is owned by the scanner and valid only until the following Next
// call; callers that retain it must copy what they need.
func (s *UpdateScanner) Next() (*UpdateView, error) {
	if s.err != nil {
		return nil, s.err
	}
	v, err := s.next()
	if err != nil {
		s.err = err
		return nil, err
	}
	return v, nil
}

func (s *UpdateScanner) next() (*UpdateView, error) {
	for {
		rec, err := s.r.Next()
		if err != nil {
			if err == io.EOF {
				if cerr := s.opts.check(); cerr != nil {
					return nil, cerr
				}
			}
			return nil, err
		}
		v, perr := s.decode(rec)
		if perr != nil {
			if !s.opts.Lenient {
				return nil, fmt.Errorf("mrt: record at offset %d: %w", rec.Offset, perr)
			}
			s.opts.Stats.noteSkip("bgp4mp")
			s.r.Reject(rec)
		} else if v != nil {
			s.opts.Stats.noteDecoded()
		}
		if err := s.opts.check(); err != nil {
			return nil, err
		}
		if v != nil && perr == nil {
			return v, nil
		}
	}
}

// decode turns one record into an UpdateView. A nil view with a nil
// error means the record is not a decodable BGP UPDATE (foreign type,
// keepalive...) and carries no corruption signal.
func (s *UpdateScanner) decode(rec *Record) (*UpdateView, error) {
	ok, err := DecodeUpdateRecord(rec, &s.upd, &s.view, s.opts.Stats)
	if err != nil || !ok {
		return nil, err
	}
	return &s.view, nil
}

// DecodeUpdateRecord decodes one BGP4MP record into caller-owned
// storage: upd receives the UPDATE message (its internal buffers are
// reused across calls) and view is filled pointing at it. A false ok
// with a nil error means the record is not a decodable BGP UPDATE
// (foreign type, unknown subtype — noted against stats — or a
// keepalive/open/notification) and carries no corruption signal. The
// caller accounts decodes and skips; only unknown-type notes happen
// here, mirroring UpdateScanner. This is the per-record decode step of
// the frame/decode split pipeline; stats may be nil.
func DecodeUpdateRecord(rec *Record, upd *bgp.UpdateMessage, view *UpdateView, stats *Stats) (ok bool, err error) {
	if rec.Type != TypeBGP4MP && rec.Type != TypeBGP4MPET {
		stats.noteUnknown(rec.Type, rec.Subtype)
		return false, nil
	}
	body := rec.Body
	if rec.Type == TypeBGP4MPET {
		// Extended timestamp: 4 extra microsecond octets first.
		if len(body) < 4 {
			return false, fmt.Errorf("mrt: BGP4MP_ET: short body")
		}
		body = body[4:]
	}
	var (
		m    *BGP4MPMessage
		perr error
		asn  = 4
	)
	switch rec.Subtype {
	case SubtypeBGP4MPMessageAS4:
		m, perr = ParseBGP4MP(body)
	case SubtypeBGP4MPMessage:
		m, perr = ParseBGP4MPLegacy(body)
		asn = 2
	default:
		stats.noteUnknown(rec.Type, rec.Subtype)
		return false, nil
	}
	if perr != nil {
		return false, perr
	}
	if len(m.Message) >= 19 && m.Message[18] != bgp.MsgTypeUpdate {
		return false, nil // keepalive/open/notification
	}
	if err := bgp.DecodeUpdateSizedInto(m.Message, asn, upd); err != nil {
		return false, fmt.Errorf("mrt: BGP4MP update: %w", err)
	}
	*view = UpdateView{
		Timestamp: rec.Timestamp,
		PeerAS:    m.PeerAS,
		PeerAddr:  m.PeerAddr,
		Update:    upd,
	}
	return true, nil
}

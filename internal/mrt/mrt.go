// Package mrt implements the MRT routing-information export format
// (RFC 6396) used by RouteViews and RIPE RIS archives: TABLE_DUMP_V2 RIB
// snapshots and BGP4MP update messages. It provides a streaming record
// reader, typed record parsers, and a writer, all from scratch on the
// standard library.
package mrt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"bgpintent/internal/bgp"
)

// MRT record types (RFC 6396 §4).
const (
	TypeTableDump   uint16 = 12
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16
	TypeBGP4MPET    uint16 = 17
)

// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
const (
	SubtypePeerIndexTable uint16 = 1
	SubtypeRIBIPv4Unicast uint16 = 2
	SubtypeRIBIPv6Unicast uint16 = 4
)

// BGP4MP subtypes (RFC 6396 §4.4).
const (
	SubtypeBGP4MPMessage    uint16 = 1
	SubtypeBGP4MPMessageAS4 uint16 = 4
)

// AFI values used in BGP4MP headers.
const (
	AFIIPv4 uint16 = 1
	AFIIPv6 uint16 = 2
)

// maxRecordLen bounds a single MRT record body; real archives stay far
// below this, and the cap keeps a corrupt length field from causing a
// giant allocation.
const maxRecordLen = 16 << 20

// recordHeaderLen is the fixed MRT common-header size.
const recordHeaderLen = 12

// Record is one MRT record: the common header plus its undecoded body.
type Record struct {
	Offset    int64  // byte offset of the record header in the stream
	Timestamp uint32 // seconds since the Unix epoch
	Type      uint16
	Subtype   uint16
	Body      []byte
}

// Stats counts decode outcomes over one MRT stream (or, merged, over a
// whole corpus load). The reader fills the framing fields; the scanners
// fill the record-decode fields. A nil *Stats is accepted everywhere
// and disables collection.
type Stats struct {
	Records      int   // records framed by the reader
	Decoded      int   // framed records whose body decoded cleanly
	Skipped      int   // records (or RIB entries) dropped as undecodable
	Resyncs      int   // framing failures recovered by resynchronization
	Truncated    int   // streams that ended in the middle of a record
	BytesRead    int64 // bytes consumed from the stream
	BytesSkipped int64 // bytes discarded while hunting for a valid header

	// UnknownTypes counts records of types/subtypes the scanner does not
	// decode, keyed "type/subtype". Unknown records are normal in real
	// archives and do not count against the error rate.
	UnknownTypes map[string]int
	// SkipReasons breaks Skipped down by cause.
	SkipReasons map[string]int
}

func (s *Stats) addRecord() {
	if s != nil {
		s.Records++
	}
}

func (s *Stats) noteDecoded() {
	if s != nil {
		s.Decoded++
	}
}

func (s *Stats) noteSkip(reason string) {
	if s == nil {
		return
	}
	s.Skipped++
	if s.SkipReasons == nil {
		s.SkipReasons = make(map[string]int)
	}
	s.SkipReasons[reason]++
}

func (s *Stats) noteUnknown(typ, subtype uint16) {
	if s == nil {
		return
	}
	if s.UnknownTypes == nil {
		s.UnknownTypes = make(map[string]int)
	}
	s.UnknownTypes[fmt.Sprintf("%d/%d", typ, subtype)]++
}

// NoteDecoded counts one cleanly decoded record. Exposed for decode
// loops built outside this package (the frame/decode split pipeline in
// internal/ingest); in-package scanners use the unexported form.
func (s *Stats) NoteDecoded() { s.noteDecoded() }

// NoteSkip counts one record (or RIB entry) dropped as undecodable,
// under the given reason. See NoteDecoded.
func (s *Stats) NoteSkip(reason string) { s.noteSkip(reason) }

// NoteUnknown counts one record of an undecoded type/subtype. See
// NoteDecoded.
func (s *Stats) NoteUnknown(typ, subtype uint16) { s.noteUnknown(typ, subtype) }

// Attempts returns the number of record-level framing and decode
// attempts the error rate is measured over.
func (s *Stats) Attempts() int {
	if s == nil {
		return 0
	}
	return s.Records + s.Resyncs + s.Truncated
}

// ErrorRate returns the fraction of attempts that hit corruption:
// undecodable records, resyncs, and truncated tails. 0 for an empty
// stream; capped at 1.
func (s *Stats) ErrorRate() float64 {
	att := s.Attempts()
	if att == 0 {
		return 0
	}
	rate := float64(s.Skipped+s.Resyncs+s.Truncated) / float64(att)
	if rate > 1 {
		return 1
	}
	return rate
}

// Clean reports whether the stream decoded without any corruption
// events (unknown record types are still clean).
func (s *Stats) Clean() bool {
	return s == nil || (s.Skipped == 0 && s.Resyncs == 0 && s.Truncated == 0)
}

// Merge accumulates o into s.
func (s *Stats) Merge(o *Stats) {
	if s == nil || o == nil {
		return
	}
	s.Records += o.Records
	s.Decoded += o.Decoded
	s.Skipped += o.Skipped
	s.Resyncs += o.Resyncs
	s.Truncated += o.Truncated
	s.BytesRead += o.BytesRead
	s.BytesSkipped += o.BytesSkipped
	for k, v := range o.UnknownTypes {
		if s.UnknownTypes == nil {
			s.UnknownTypes = make(map[string]int)
		}
		s.UnknownTypes[k] += v
	}
	for k, v := range o.SkipReasons {
		if s.SkipReasons == nil {
			s.SkipReasons = make(map[string]int)
		}
		s.SkipReasons[k] += v
	}
}

// UnknownCount returns the total number of unknown-type records.
func (s *Stats) UnknownCount() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, v := range s.UnknownTypes {
		n += v
	}
	return n
}

// Reader streams MRT records from an io.Reader.
//
// In strict mode (NewReader) any malformed record is a sticky error, as
// RFC 6396 framing demands. In lenient mode (NewLenientReader) framing
// failures — impossible length fields, truncated tails — skip forward
// to the next plausible record header instead of poisoning the stream,
// and the damage is tallied in a Stats.
type Reader struct {
	br      *bufio.Reader
	err     error
	offset  int64
	lenient bool
	stats   *Stats
	rejects int
	reuse   bool
	rec     Record
}

// ReuseRecord makes Next return the same Record every time, with its
// body buffer recycled between calls: a record is then valid only until
// the following Next. The scanners enable this — they fully decode each
// record before advancing — but callers that retain records must not.
func (r *Reader) ReuseRecord() { r.reuse = true }

// NewReader returns a strict streaming MRT record reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// NewLenientReader returns a reader that skips and resynchronizes over
// corrupt framing instead of failing. stats may be nil.
func NewLenientReader(r io.Reader, stats *Stats) *Reader {
	rd := NewReader(r)
	rd.lenient = true
	rd.stats = stats
	return rd
}

// Offset returns the byte offset of the next unread byte, counted over
// the (decompressed) stream.
func (r *Reader) Offset() int64 { return r.offset }

// discard consumes n buffered bytes, keeping the offset accurate.
func (r *Reader) discard(n int) {
	consumed, _ := r.br.Discard(n)
	r.offset += int64(consumed)
	if r.stats != nil {
		r.stats.BytesRead += int64(consumed)
	}
}

// skip consumes n buffered bytes and counts them as corruption loss.
func (r *Reader) skip(n int) {
	if r.stats != nil {
		r.stats.BytesSkipped += int64(n)
	}
	r.discard(n)
}

// Next returns the next record, or io.EOF at a clean end of stream. Any
// error is sticky. In lenient mode the only errors are io.EOF and
// failures of the underlying reader.
func (r *Reader) Next() (*Record, error) {
	if r.err != nil {
		return nil, r.err
	}
	rec, err := r.next()
	if err != nil {
		r.err = err
		return nil, err
	}
	return rec, nil
}

func (r *Reader) next() (*Record, error) {
	for {
		hdr, err := r.br.Peek(recordHeaderLen)
		if err != nil {
			if len(hdr) == 0 {
				return nil, err // io.EOF at a record boundary, or a read error
			}
			if err != io.EOF {
				return nil, err
			}
			// Partial header at end of stream.
			if r.lenient {
				if r.stats != nil {
					r.stats.Truncated++
				}
				r.skip(len(hdr))
				return nil, io.EOF
			}
			return nil, fmt.Errorf("mrt: truncated record header at offset %d: %w", r.offset, io.ErrUnexpectedEOF)
		}
		// hdr aliases the bufio buffer, which the deeper Peek inside
		// frameLooksSound may slide; copy it before looking ahead.
		var h [recordHeaderLen]byte
		copy(h[:], hdr)
		n := binary.BigEndian.Uint32(h[8:12])
		if n > maxRecordLen {
			if !r.lenient {
				return nil, fmt.Errorf("mrt: record length %d exceeds limit at offset %d", n, r.offset)
			}
			if err := r.resync(); err != nil {
				return nil, err
			}
			continue
		}
		if r.lenient && int(n)+recordHeaderLen <= resyncWindow {
			if win, _ := r.br.Peek(recordHeaderLen + int(n)); len(win) < recordHeaderLen+int(n) {
				// The stream ends inside this frame. Either the tail
				// really is cut, or a corrupt length points past the
				// end of the file; in both cases hunt for a later
				// record instead of swallowing everything to EOF.
				if r.stats != nil {
					r.stats.Truncated++
				}
				if err := r.hunt(); err != nil {
					return nil, err
				}
				continue
			}
		}
		if r.lenient && !r.frameLooksSound(int(n)) {
			// The header that would follow this frame announces an
			// impossible length, so this record's own length field is
			// almost certainly corrupt (a truncated or bit-flipped
			// record would otherwise drag the reader out of sync and
			// swallow everything up to end of file). Strict mode would
			// fail on that following header anyway; resync now instead
			// of consuming a bogus frame.
			if err := r.resync(); err != nil {
				return nil, err
			}
			continue
		}
		rec := &Record{}
		if r.reuse {
			rec = &r.rec
		}
		if cap(rec.Body) < int(n) {
			rec.Body = make([]byte, n)
		}
		rec.Offset = r.offset
		rec.Timestamp = binary.BigEndian.Uint32(h[0:4])
		rec.Type = binary.BigEndian.Uint16(h[4:6])
		rec.Subtype = binary.BigEndian.Uint16(h[6:8])
		rec.Body = rec.Body[:n]
		r.discard(recordHeaderLen)
		m, err := io.ReadFull(r.br, rec.Body)
		r.offset += int64(m)
		if r.stats != nil {
			r.stats.BytesRead += int64(m)
		}
		if err != nil {
			if r.lenient {
				// The stream ends inside this record: salvage nothing from
				// it, report a truncated tail.
				if r.stats != nil {
					r.stats.Truncated++
					r.stats.BytesSkipped += int64(recordHeaderLen + m)
				}
				return nil, io.EOF
			}
			return nil, fmt.Errorf("mrt: truncated record body at offset %d: %w", rec.Offset, err)
		}
		r.stats.addRecord()
		return rec, nil
	}
}

// frameLooksSound cross-checks a candidate frame of body length n
// against the 12 bytes that would follow it: if those carry a length
// field over the cap they cannot be a record header, which means the
// current length field is lying about where the next record starts (a
// truncated or bit-flipped record would otherwise drag the reader out
// of sync and silently swallow real records). Only a definite
// contradiction returns false — the follow-on position is exactly where
// strict mode would frame the next record, and strict mode dies on an
// over-cap length, so at a trusted boundary lenient mode still takes
// exactly what strict mode takes. The check is deliberately weaker than
// plausibleHeader: a sane length with an unknown type must pass,
// because strict mode would read it happily. One hop only: looking
// deeper would let a single corrupt record ahead condemn a run of good
// frames before it. Frames whose follow-on header extends past the
// peekable window, or past a clean end of stream, are accepted.
func (r *Reader) frameLooksSound(n int) bool {
	total := recordHeaderLen + n + recordHeaderLen
	win, _ := r.br.Peek(total)
	if len(win) < total {
		return true
	}
	next := win[recordHeaderLen+n:]
	return binary.BigEndian.Uint32(next[8:12]) <= maxRecordLen
}

// maxRejects bounds how many record pushbacks one stream will honor;
// beyond it Reject degrades to today's skip-the-record behavior, which
// keeps adversarial input from stacking pushback readers without bound.
const maxRejects = 64

// Reject pushes the most recently returned record's wire bytes back
// into the stream and re-synchronizes inside them. The lenient scanners
// call it when a record that framed cleanly fails to parse: after
// mid-record truncation the reader silently drifts out of alignment,
// and the first misframed record typically has real records swallowed
// inside its body — rescanning the rejected bytes recovers them and
// re-anchors the stream. Calling it with anything but the last record
// returned corrupts offset accounting. No-op in strict mode, on bodies
// too small to hide a record, and past the pushback cap.
func (r *Reader) Reject(rec *Record) {
	if !r.lenient || rec == nil || len(rec.Body) < 2*recordHeaderLen || r.rejects >= maxRejects || r.err != nil {
		return
	}
	r.rejects++
	wire := make([]byte, recordHeaderLen+len(rec.Body))
	binary.BigEndian.PutUint32(wire[0:4], rec.Timestamp)
	binary.BigEndian.PutUint16(wire[4:6], rec.Type)
	binary.BigEndian.PutUint16(wire[6:8], rec.Subtype)
	binary.BigEndian.PutUint32(wire[8:12], uint32(len(rec.Body)))
	copy(wire[recordHeaderLen:], rec.Body)
	// Rewind the accounting and splice the bytes back in front of the
	// stream; the hunt below re-counts whatever it consumes.
	r.offset -= int64(len(wire))
	if r.stats != nil {
		r.stats.BytesRead -= int64(len(wire))
	}
	r.br = bufio.NewReaderSize(io.MultiReader(bytes.NewReader(wire), r.br), 1<<16)
	if err := r.hunt(); err != nil {
		r.err = err
	}
}

// resyncWindow is how far ahead resync scans per Peek; it matches the
// reader's buffer size.
const resyncWindow = 1 << 16

// resync discards bytes until the stream is positioned at a plausible
// MRT record header (see plausibleHeader): the recovery path after a
// corrupt length field. It always makes at least one byte of progress.
func (r *Reader) resync() error {
	if r.stats != nil {
		r.stats.Resyncs++
	}
	return r.hunt()
}

// hunt is resync's scan loop, also used for truncated-frame recovery
// (which counts against Truncated rather than Resyncs).
func (r *Reader) hunt() error {
	r.skip(1) // never re-match at the failure point
	for {
		win, err := r.br.Peek(resyncWindow)
		if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
			return err
		}
		if len(win) < recordHeaderLen {
			r.skip(len(win))
			return io.EOF
		}
		for i := 0; i+recordHeaderLen <= len(win); i++ {
			if plausibleAt(win, i) {
				r.skip(i)
				return nil
			}
		}
		// No candidate in the window: keep the last 11 bytes in case a
		// header straddles the boundary, and refill.
		r.skip(len(win) - (recordHeaderLen - 1))
		if err == io.EOF {
			r.skip(recordHeaderLen - 1)
			return io.EOF
		}
	}
}

// plausibleHeader reports whether the 12 bytes look like the header of
// a real MRT record: a known type, a valid subtype for it, and a length
// under the cap. Used only while hunting for a resync point — at a
// trusted record boundary the reader accepts exactly what strict mode
// accepts.
func plausibleHeader(hdr []byte) bool {
	typ := binary.BigEndian.Uint16(hdr[4:6])
	sub := binary.BigEndian.Uint16(hdr[6:8])
	if binary.BigEndian.Uint32(hdr[8:12]) > maxRecordLen {
		return false
	}
	switch typ {
	case TypeTableDumpV2:
		// Subtypes 1-6: peer index, RIB unicast/multicast v4/v6, generic.
		return sub >= 1 && sub <= 6
	case TypeBGP4MP, TypeBGP4MPET:
		// RFC 6396 + RFC 8050 define subtypes 0-11.
		return sub <= 11
	case TypeTableDump:
		return sub == 1 || sub == 2 // AFI IPv4 / IPv6
	}
	return false
}

// plausibleAt checks a candidate header at win[i:], and when the whole
// candidate record fits in the window, demands that it is followed by
// another plausible header or the end of the window.
func plausibleAt(win []byte, i int) bool {
	if !plausibleHeader(win[i : i+recordHeaderLen]) {
		return false
	}
	next := i + recordHeaderLen + int(binary.BigEndian.Uint32(win[i+8:i+12]))
	if next+recordHeaderLen <= len(win) {
		return plausibleHeader(win[next : next+recordHeaderLen])
	}
	return true
}

// Writer emits MRT records to an io.Writer.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter returns an MRT record writer. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// WriteRecord emits one record with the given header fields.
func (w *Writer) WriteRecord(timestamp uint32, typ, subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], timestamp)
	binary.BigEndian.PutUint16(hdr[4:6], typ)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(body)
	return err
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Peer is one entry of a TABLE_DUMP_V2 PEER_INDEX_TABLE: a vantage point
// (collector BGP session) whose RIB entries reference it by index.
type Peer struct {
	BGPID netip.Addr // peer BGP identifier (rendered as an IPv4 address)
	Addr  netip.Addr // peer IP address
	ASN   uint32     // peer AS number
}

// PeerIndexTable is the TABLE_DUMP_V2 preamble naming the collector and
// its peers.
type PeerIndexTable struct {
	CollectorBGPID netip.Addr
	ViewName       string
	Peers          []Peer
}

// Peer-type bits in the PEER_INDEX_TABLE entries.
const (
	peerTypeIPv6 = 0x01 // peer address is 16 octets
	peerTypeAS4  = 0x02 // peer ASN is 4 octets
)

// Encode serializes the peer index table body. Peers are always written
// with 4-octet ASNs; addresses use their native family.
func (t *PeerIndexTable) Encode() []byte {
	var out []byte
	id := t.CollectorBGPID.As4()
	out = append(out, id[:]...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(t.ViewName)))
	out = append(out, t.ViewName...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(t.Peers)))
	for _, p := range t.Peers {
		ptype := byte(peerTypeAS4)
		if p.Addr.Is6() && !p.Addr.Is4In6() {
			ptype |= peerTypeIPv6
		}
		out = append(out, ptype)
		bid := p.BGPID.As4()
		out = append(out, bid[:]...)
		if ptype&peerTypeIPv6 != 0 {
			a := p.Addr.As16()
			out = append(out, a[:]...)
		} else {
			a := p.Addr.As4()
			out = append(out, a[:]...)
		}
		out = binary.BigEndian.AppendUint32(out, p.ASN)
	}
	return out
}

// ParsePeerIndexTable decodes a PEER_INDEX_TABLE record body.
func ParsePeerIndexTable(body []byte) (*PeerIndexTable, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("mrt: peer index table: short body (%d bytes)", len(body))
	}
	var t PeerIndexTable
	t.CollectorBGPID = netip.AddrFrom4([4]byte(body[0:4]))
	vlen := int(binary.BigEndian.Uint16(body[4:6]))
	body = body[6:]
	if len(body) < vlen+2 {
		return nil, fmt.Errorf("mrt: peer index table: truncated view name")
	}
	t.ViewName = string(body[:vlen])
	count := int(binary.BigEndian.Uint16(body[vlen : vlen+2]))
	body = body[vlen+2:]
	t.Peers = make([]Peer, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 5 {
			return nil, fmt.Errorf("mrt: peer index table: truncated peer %d", i)
		}
		ptype := body[0]
		var p Peer
		p.BGPID = netip.AddrFrom4([4]byte(body[1:5]))
		body = body[5:]
		alen := 4
		if ptype&peerTypeIPv6 != 0 {
			alen = 16
		}
		if len(body) < alen {
			return nil, fmt.Errorf("mrt: peer index table: truncated peer %d address", i)
		}
		addr, _ := netip.AddrFromSlice(body[:alen])
		p.Addr = addr
		body = body[alen:]
		if ptype&peerTypeAS4 != 0 {
			if len(body) < 4 {
				return nil, fmt.Errorf("mrt: peer index table: truncated peer %d ASN", i)
			}
			p.ASN = binary.BigEndian.Uint32(body[:4])
			body = body[4:]
		} else {
			if len(body) < 2 {
				return nil, fmt.Errorf("mrt: peer index table: truncated peer %d ASN", i)
			}
			p.ASN = uint32(binary.BigEndian.Uint16(body[:2]))
			body = body[2:]
		}
		t.Peers = append(t.Peers, p)
	}
	return &t, nil
}

// RIBEntry is one vantage point's view of a prefix in a TABLE_DUMP_V2 RIB
// record.
type RIBEntry struct {
	PeerIndex      uint16 // index into the PEER_INDEX_TABLE
	OriginatedTime uint32
	Attrs          bgp.PathAttributes
}

// RIB is a TABLE_DUMP_V2 RIB_IPV4_UNICAST (or IPv6) record: the set of
// vantage-point entries for one prefix.
type RIB struct {
	SequenceNumber uint32
	Prefix         bgp.Prefix
	Entries        []RIBEntry
}

// Encode serializes the RIB record body.
func (rib *RIB) Encode() ([]byte, error) {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, rib.SequenceNumber)
	out = rib.Prefix.AppendWire(out)
	out = binary.BigEndian.AppendUint16(out, uint16(len(rib.Entries)))
	for _, e := range rib.Entries {
		out = binary.BigEndian.AppendUint16(out, e.PeerIndex)
		out = binary.BigEndian.AppendUint32(out, e.OriginatedTime)
		attrs := e.Attrs.EncodeAttrs()
		if len(attrs) > 0xffff {
			return nil, fmt.Errorf("mrt: RIB entry attributes exceed 65535 bytes")
		}
		out = binary.BigEndian.AppendUint16(out, uint16(len(attrs)))
		out = append(out, attrs...)
	}
	return out, nil
}

// ParseRIB decodes a RIB_IPV4_UNICAST or RIB_IPV6_UNICAST record body;
// subtype selects the address family.
func ParseRIB(subtype uint16, body []byte) (*RIB, error) {
	var rib RIB
	if err := ParseRIBInto(subtype, body, &rib); err != nil {
		return nil, err
	}
	return &rib, nil
}

// ParseRIBInto is ParseRIB decoding into a caller-owned RIB: rib's
// previous contents are discarded, but its entry slice and each entry's
// attribute storage are reused, so a scan loop recycling one RIB runs
// allocation-free at steady state. On error rib's contents are
// unspecified.
func ParseRIBInto(subtype uint16, body []byte, rib *RIB) error {
	if len(body) < 4 {
		return fmt.Errorf("mrt: RIB: short body")
	}
	rib.SequenceNumber = binary.BigEndian.Uint32(body[:4])
	body = body[4:]
	var (
		n   int
		err error
	)
	switch subtype {
	case SubtypeRIBIPv4Unicast:
		rib.Prefix, n, err = bgp.DecodePrefixIPv4(body)
	case SubtypeRIBIPv6Unicast:
		rib.Prefix, n, err = bgp.DecodePrefixIPv6(body)
	default:
		return fmt.Errorf("mrt: RIB: unsupported subtype %d", subtype)
	}
	if err != nil {
		return fmt.Errorf("mrt: RIB prefix: %w", err)
	}
	body = body[n:]
	if len(body) < 2 {
		return fmt.Errorf("mrt: RIB: truncated entry count")
	}
	count := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	entries := rib.Entries[:0]
	if cap(entries) < count {
		entries = make([]RIBEntry, 0, count)
	}
	for i := 0; i < count; i++ {
		if len(body) < 8 {
			return fmt.Errorf("mrt: RIB: truncated entry %d header", i)
		}
		// Grow into the slot left by a previous decode where possible,
		// keeping that entry's attribute storage for reuse.
		entries = entries[:i+1]
		e := &entries[i]
		e.Attrs.ResetForReuse()
		e.PeerIndex = binary.BigEndian.Uint16(body[0:2])
		e.OriginatedTime = binary.BigEndian.Uint32(body[2:6])
		alen := int(binary.BigEndian.Uint16(body[6:8]))
		body = body[8:]
		if len(body) < alen {
			return fmt.Errorf("mrt: RIB: truncated entry %d attributes", i)
		}
		if err := bgp.DecodeAttrs(body[:alen], &e.Attrs); err != nil {
			return fmt.Errorf("mrt: RIB entry %d: %w", i, err)
		}
		body = body[alen:]
	}
	rib.Entries = entries
	if len(body) != 0 {
		return fmt.Errorf("mrt: RIB: %d trailing bytes", len(body))
	}
	return nil
}

// BGP4MPMessage is a BGP4MP_MESSAGE_AS4 record: one BGP message observed
// on a collector session, with the session endpoints.
type BGP4MPMessage struct {
	PeerAS    uint32
	LocalAS   uint32
	IfIndex   uint16
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	Message   []byte // full BGP message, header included
}

// Encode serializes the BGP4MP_MESSAGE_AS4 record body.
func (m *BGP4MPMessage) Encode() []byte {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, m.PeerAS)
	out = binary.BigEndian.AppendUint32(out, m.LocalAS)
	out = binary.BigEndian.AppendUint16(out, m.IfIndex)
	if m.PeerAddr.Is6() && !m.PeerAddr.Is4In6() {
		out = binary.BigEndian.AppendUint16(out, AFIIPv6)
		p := m.PeerAddr.As16()
		l := m.LocalAddr.As16()
		out = append(out, p[:]...)
		out = append(out, l[:]...)
	} else {
		out = binary.BigEndian.AppendUint16(out, AFIIPv4)
		p := m.PeerAddr.As4()
		l := m.LocalAddr.As4()
		out = append(out, p[:]...)
		out = append(out, l[:]...)
	}
	return append(out, m.Message...)
}

// ParseBGP4MP decodes a BGP4MP_MESSAGE_AS4 record body.
func ParseBGP4MP(body []byte) (*BGP4MPMessage, error) {
	if len(body) < 12 {
		return nil, fmt.Errorf("mrt: BGP4MP: short body")
	}
	var m BGP4MPMessage
	m.PeerAS = binary.BigEndian.Uint32(body[0:4])
	m.LocalAS = binary.BigEndian.Uint32(body[4:8])
	m.IfIndex = binary.BigEndian.Uint16(body[8:10])
	afi := binary.BigEndian.Uint16(body[10:12])
	body = body[12:]
	alen := 4
	if afi == AFIIPv6 {
		alen = 16
	} else if afi != AFIIPv4 {
		return nil, fmt.Errorf("mrt: BGP4MP: unsupported AFI %d", afi)
	}
	if len(body) < 2*alen {
		return nil, fmt.Errorf("mrt: BGP4MP: truncated addresses")
	}
	peer, _ := netip.AddrFromSlice(body[:alen])
	local, _ := netip.AddrFromSlice(body[alen : 2*alen])
	m.PeerAddr, m.LocalAddr = peer, local
	m.Message = body[2*alen:]
	return &m, nil
}

// ParseBGP4MPLegacy decodes a plain BGP4MP_MESSAGE record body, whose
// session header carries 2-octet AS numbers (pre-RFC 6793 sessions).
// The contained BGP message also uses 2-octet AS_PATH encoding; decode
// it with bgp.DecodeUpdateSized(msg, 2).
func ParseBGP4MPLegacy(body []byte) (*BGP4MPMessage, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("mrt: BGP4MP legacy: short body")
	}
	var m BGP4MPMessage
	m.PeerAS = uint32(binary.BigEndian.Uint16(body[0:2]))
	m.LocalAS = uint32(binary.BigEndian.Uint16(body[2:4]))
	m.IfIndex = binary.BigEndian.Uint16(body[4:6])
	afi := binary.BigEndian.Uint16(body[6:8])
	body = body[8:]
	alen := 4
	if afi == AFIIPv6 {
		alen = 16
	} else if afi != AFIIPv4 {
		return nil, fmt.Errorf("mrt: BGP4MP legacy: unsupported AFI %d", afi)
	}
	if len(body) < 2*alen {
		return nil, fmt.Errorf("mrt: BGP4MP legacy: truncated addresses")
	}
	peer, _ := netip.AddrFromSlice(body[:alen])
	local, _ := netip.AddrFromSlice(body[alen : 2*alen])
	m.PeerAddr, m.LocalAddr = peer, local
	m.Message = body[2*alen:]
	return &m, nil
}

// Package mrt implements the MRT routing-information export format
// (RFC 6396) used by RouteViews and RIPE RIS archives: TABLE_DUMP_V2 RIB
// snapshots and BGP4MP update messages. It provides a streaming record
// reader, typed record parsers, and a writer, all from scratch on the
// standard library.
package mrt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"bgpintent/internal/bgp"
)

// MRT record types (RFC 6396 §4).
const (
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16
	TypeBGP4MPET    uint16 = 17
)

// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
const (
	SubtypePeerIndexTable uint16 = 1
	SubtypeRIBIPv4Unicast uint16 = 2
	SubtypeRIBIPv6Unicast uint16 = 4
)

// BGP4MP subtypes (RFC 6396 §4.4).
const (
	SubtypeBGP4MPMessage    uint16 = 1
	SubtypeBGP4MPMessageAS4 uint16 = 4
)

// AFI values used in BGP4MP headers.
const (
	AFIIPv4 uint16 = 1
	AFIIPv6 uint16 = 2
)

// maxRecordLen bounds a single MRT record body; real archives stay far
// below this, and the cap keeps a corrupt length field from causing a
// giant allocation.
const maxRecordLen = 16 << 20

// Record is one MRT record: the common header plus its undecoded body.
type Record struct {
	Timestamp uint32 // seconds since the Unix epoch
	Type      uint16
	Subtype   uint16
	Body      []byte
}

// Reader streams MRT records from an io.Reader.
type Reader struct {
	br  *bufio.Reader
	err error
}

// NewReader returns a streaming MRT record reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, or io.EOF at a clean end of stream. Any
// error is sticky.
func (r *Reader) Next() (*Record, error) {
	if r.err != nil {
		return nil, r.err
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("mrt: truncated record header: %w", err)
		}
		r.err = err
		return nil, err
	}
	rec := &Record{
		Timestamp: binary.BigEndian.Uint32(hdr[0:4]),
		Type:      binary.BigEndian.Uint16(hdr[4:6]),
		Subtype:   binary.BigEndian.Uint16(hdr[6:8]),
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > maxRecordLen {
		r.err = fmt.Errorf("mrt: record length %d exceeds limit", n)
		return nil, r.err
	}
	rec.Body = make([]byte, n)
	if _, err := io.ReadFull(r.br, rec.Body); err != nil {
		r.err = fmt.Errorf("mrt: truncated record body: %w", err)
		return nil, r.err
	}
	return rec, nil
}

// Writer emits MRT records to an io.Writer.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter returns an MRT record writer. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// WriteRecord emits one record with the given header fields.
func (w *Writer) WriteRecord(timestamp uint32, typ, subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], timestamp)
	binary.BigEndian.PutUint16(hdr[4:6], typ)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(body)
	return err
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Peer is one entry of a TABLE_DUMP_V2 PEER_INDEX_TABLE: a vantage point
// (collector BGP session) whose RIB entries reference it by index.
type Peer struct {
	BGPID netip.Addr // peer BGP identifier (rendered as an IPv4 address)
	Addr  netip.Addr // peer IP address
	ASN   uint32     // peer AS number
}

// PeerIndexTable is the TABLE_DUMP_V2 preamble naming the collector and
// its peers.
type PeerIndexTable struct {
	CollectorBGPID netip.Addr
	ViewName       string
	Peers          []Peer
}

// Peer-type bits in the PEER_INDEX_TABLE entries.
const (
	peerTypeIPv6 = 0x01 // peer address is 16 octets
	peerTypeAS4  = 0x02 // peer ASN is 4 octets
)

// Encode serializes the peer index table body. Peers are always written
// with 4-octet ASNs; addresses use their native family.
func (t *PeerIndexTable) Encode() []byte {
	var out []byte
	id := t.CollectorBGPID.As4()
	out = append(out, id[:]...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(t.ViewName)))
	out = append(out, t.ViewName...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(t.Peers)))
	for _, p := range t.Peers {
		ptype := byte(peerTypeAS4)
		if p.Addr.Is6() && !p.Addr.Is4In6() {
			ptype |= peerTypeIPv6
		}
		out = append(out, ptype)
		bid := p.BGPID.As4()
		out = append(out, bid[:]...)
		if ptype&peerTypeIPv6 != 0 {
			a := p.Addr.As16()
			out = append(out, a[:]...)
		} else {
			a := p.Addr.As4()
			out = append(out, a[:]...)
		}
		out = binary.BigEndian.AppendUint32(out, p.ASN)
	}
	return out
}

// ParsePeerIndexTable decodes a PEER_INDEX_TABLE record body.
func ParsePeerIndexTable(body []byte) (*PeerIndexTable, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("mrt: peer index table: short body (%d bytes)", len(body))
	}
	var t PeerIndexTable
	t.CollectorBGPID = netip.AddrFrom4([4]byte(body[0:4]))
	vlen := int(binary.BigEndian.Uint16(body[4:6]))
	body = body[6:]
	if len(body) < vlen+2 {
		return nil, fmt.Errorf("mrt: peer index table: truncated view name")
	}
	t.ViewName = string(body[:vlen])
	count := int(binary.BigEndian.Uint16(body[vlen : vlen+2]))
	body = body[vlen+2:]
	t.Peers = make([]Peer, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 5 {
			return nil, fmt.Errorf("mrt: peer index table: truncated peer %d", i)
		}
		ptype := body[0]
		var p Peer
		p.BGPID = netip.AddrFrom4([4]byte(body[1:5]))
		body = body[5:]
		alen := 4
		if ptype&peerTypeIPv6 != 0 {
			alen = 16
		}
		if len(body) < alen {
			return nil, fmt.Errorf("mrt: peer index table: truncated peer %d address", i)
		}
		addr, _ := netip.AddrFromSlice(body[:alen])
		p.Addr = addr
		body = body[alen:]
		if ptype&peerTypeAS4 != 0 {
			if len(body) < 4 {
				return nil, fmt.Errorf("mrt: peer index table: truncated peer %d ASN", i)
			}
			p.ASN = binary.BigEndian.Uint32(body[:4])
			body = body[4:]
		} else {
			if len(body) < 2 {
				return nil, fmt.Errorf("mrt: peer index table: truncated peer %d ASN", i)
			}
			p.ASN = uint32(binary.BigEndian.Uint16(body[:2]))
			body = body[2:]
		}
		t.Peers = append(t.Peers, p)
	}
	return &t, nil
}

// RIBEntry is one vantage point's view of a prefix in a TABLE_DUMP_V2 RIB
// record.
type RIBEntry struct {
	PeerIndex      uint16 // index into the PEER_INDEX_TABLE
	OriginatedTime uint32
	Attrs          bgp.PathAttributes
}

// RIB is a TABLE_DUMP_V2 RIB_IPV4_UNICAST (or IPv6) record: the set of
// vantage-point entries for one prefix.
type RIB struct {
	SequenceNumber uint32
	Prefix         bgp.Prefix
	Entries        []RIBEntry
}

// Encode serializes the RIB record body.
func (rib *RIB) Encode() ([]byte, error) {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, rib.SequenceNumber)
	out = rib.Prefix.AppendWire(out)
	out = binary.BigEndian.AppendUint16(out, uint16(len(rib.Entries)))
	for _, e := range rib.Entries {
		out = binary.BigEndian.AppendUint16(out, e.PeerIndex)
		out = binary.BigEndian.AppendUint32(out, e.OriginatedTime)
		attrs := e.Attrs.EncodeAttrs()
		if len(attrs) > 0xffff {
			return nil, fmt.Errorf("mrt: RIB entry attributes exceed 65535 bytes")
		}
		out = binary.BigEndian.AppendUint16(out, uint16(len(attrs)))
		out = append(out, attrs...)
	}
	return out, nil
}

// ParseRIB decodes a RIB_IPV4_UNICAST or RIB_IPV6_UNICAST record body;
// subtype selects the address family.
func ParseRIB(subtype uint16, body []byte) (*RIB, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("mrt: RIB: short body")
	}
	var rib RIB
	rib.SequenceNumber = binary.BigEndian.Uint32(body[:4])
	body = body[4:]
	var (
		n   int
		err error
	)
	switch subtype {
	case SubtypeRIBIPv4Unicast:
		rib.Prefix, n, err = bgp.DecodePrefixIPv4(body)
	case SubtypeRIBIPv6Unicast:
		rib.Prefix, n, err = bgp.DecodePrefixIPv6(body)
	default:
		return nil, fmt.Errorf("mrt: RIB: unsupported subtype %d", subtype)
	}
	if err != nil {
		return nil, fmt.Errorf("mrt: RIB prefix: %w", err)
	}
	body = body[n:]
	if len(body) < 2 {
		return nil, fmt.Errorf("mrt: RIB: truncated entry count")
	}
	count := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	rib.Entries = make([]RIBEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 8 {
			return nil, fmt.Errorf("mrt: RIB: truncated entry %d header", i)
		}
		var e RIBEntry
		e.PeerIndex = binary.BigEndian.Uint16(body[0:2])
		e.OriginatedTime = binary.BigEndian.Uint32(body[2:6])
		alen := int(binary.BigEndian.Uint16(body[6:8]))
		body = body[8:]
		if len(body) < alen {
			return nil, fmt.Errorf("mrt: RIB: truncated entry %d attributes", i)
		}
		if err := bgp.DecodeAttrs(body[:alen], &e.Attrs); err != nil {
			return nil, fmt.Errorf("mrt: RIB entry %d: %w", i, err)
		}
		body = body[alen:]
		rib.Entries = append(rib.Entries, e)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("mrt: RIB: %d trailing bytes", len(body))
	}
	return &rib, nil
}

// BGP4MPMessage is a BGP4MP_MESSAGE_AS4 record: one BGP message observed
// on a collector session, with the session endpoints.
type BGP4MPMessage struct {
	PeerAS    uint32
	LocalAS   uint32
	IfIndex   uint16
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	Message   []byte // full BGP message, header included
}

// Encode serializes the BGP4MP_MESSAGE_AS4 record body.
func (m *BGP4MPMessage) Encode() []byte {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, m.PeerAS)
	out = binary.BigEndian.AppendUint32(out, m.LocalAS)
	out = binary.BigEndian.AppendUint16(out, m.IfIndex)
	if m.PeerAddr.Is6() && !m.PeerAddr.Is4In6() {
		out = binary.BigEndian.AppendUint16(out, AFIIPv6)
		p := m.PeerAddr.As16()
		l := m.LocalAddr.As16()
		out = append(out, p[:]...)
		out = append(out, l[:]...)
	} else {
		out = binary.BigEndian.AppendUint16(out, AFIIPv4)
		p := m.PeerAddr.As4()
		l := m.LocalAddr.As4()
		out = append(out, p[:]...)
		out = append(out, l[:]...)
	}
	return append(out, m.Message...)
}

// ParseBGP4MP decodes a BGP4MP_MESSAGE_AS4 record body.
func ParseBGP4MP(body []byte) (*BGP4MPMessage, error) {
	if len(body) < 12 {
		return nil, fmt.Errorf("mrt: BGP4MP: short body")
	}
	var m BGP4MPMessage
	m.PeerAS = binary.BigEndian.Uint32(body[0:4])
	m.LocalAS = binary.BigEndian.Uint32(body[4:8])
	m.IfIndex = binary.BigEndian.Uint16(body[8:10])
	afi := binary.BigEndian.Uint16(body[10:12])
	body = body[12:]
	alen := 4
	if afi == AFIIPv6 {
		alen = 16
	} else if afi != AFIIPv4 {
		return nil, fmt.Errorf("mrt: BGP4MP: unsupported AFI %d", afi)
	}
	if len(body) < 2*alen {
		return nil, fmt.Errorf("mrt: BGP4MP: truncated addresses")
	}
	peer, _ := netip.AddrFromSlice(body[:alen])
	local, _ := netip.AddrFromSlice(body[alen : 2*alen])
	m.PeerAddr, m.LocalAddr = peer, local
	m.Message = body[2*alen:]
	return &m, nil
}

// ParseBGP4MPLegacy decodes a plain BGP4MP_MESSAGE record body, whose
// session header carries 2-octet AS numbers (pre-RFC 6793 sessions).
// The contained BGP message also uses 2-octet AS_PATH encoding; decode
// it with bgp.DecodeUpdateSized(msg, 2).
func ParseBGP4MPLegacy(body []byte) (*BGP4MPMessage, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("mrt: BGP4MP legacy: short body")
	}
	var m BGP4MPMessage
	m.PeerAS = uint32(binary.BigEndian.Uint16(body[0:2]))
	m.LocalAS = uint32(binary.BigEndian.Uint16(body[2:4]))
	m.IfIndex = binary.BigEndian.Uint16(body[4:6])
	afi := binary.BigEndian.Uint16(body[6:8])
	body = body[8:]
	alen := 4
	if afi == AFIIPv6 {
		alen = 16
	} else if afi != AFIIPv4 {
		return nil, fmt.Errorf("mrt: BGP4MP legacy: unsupported AFI %d", afi)
	}
	if len(body) < 2*alen {
		return nil, fmt.Errorf("mrt: BGP4MP legacy: truncated addresses")
	}
	peer, _ := netip.AddrFromSlice(body[:alen])
	local, _ := netip.AddrFromSlice(body[alen : 2*alen])
	m.PeerAddr, m.LocalAddr = peer, local
	m.Message = body[2*alen:]
	return &m, nil
}

package mrt

// FramedRecord is one record's header plus the location of its body
// inside the owning FrameBatch's buffer. It carries no pointers, so a
// batch of frames is two flat allocations however many records it
// holds.
type FramedRecord struct {
	Offset    int64
	Timestamp uint32
	Type      uint16
	Subtype   uint16
	bodyOff   int
	bodyLen   int
}

// FrameBatch is a run of consecutive framed-but-undecoded records with
// their bodies packed into one buffer. The frame/decode split pipeline
// fills batches on one goroutine (NextBatch) and decodes them on
// others (Rec); batches are reused through a free list, so steady-state
// framing allocates nothing.
type FrameBatch struct {
	recs []FramedRecord
	buf  []byte
}

// Len returns the number of records in the batch.
func (b *FrameBatch) Len() int { return len(b.recs) }

// Bytes returns the total body bytes buffered in the batch.
func (b *FrameBatch) Bytes() int { return len(b.buf) }

// Reset empties the batch, keeping its storage for reuse.
func (b *FrameBatch) Reset() {
	b.recs = b.recs[:0]
	b.buf = b.buf[:0]
}

// Rec materializes record i into rec. The body aliases the batch
// buffer: it is valid until the batch is Reset.
func (b *FrameBatch) Rec(i int, rec *Record) {
	f := &b.recs[i]
	rec.Offset = f.Offset
	rec.Timestamp = f.Timestamp
	rec.Type = f.Type
	rec.Subtype = f.Subtype
	rec.Body = b.buf[f.bodyOff : f.bodyOff+f.bodyLen]
}

// NextBatch frames records into b (after resetting it) until maxRecs
// records or maxBytes body bytes are buffered, the stream ends, or a
// record matching barrier arrives. A barrier record is NOT added to the
// batch: it is returned instead, so the caller can process it in frame
// order before handing the batch off (the record aliases the reader's
// reusable storage and must be fully consumed before the next read).
// barrier may be nil.
//
// A nil barrier record and nil error mean a batch ended by size or by a
// non-empty stream tail; io.EOF is returned only when the stream ended
// with nothing framed. An error with records already framed is held
// back — the reader's errors are sticky, so the next call redelivers
// it against an empty batch.
func (r *Reader) NextBatch(b *FrameBatch, maxRecs, maxBytes int, barrier func(typ, subtype uint16) bool) (*Record, error) {
	b.Reset()
	for b.Len() < maxRecs && b.Bytes() < maxBytes {
		rec, err := r.Next()
		if err != nil {
			if b.Len() > 0 {
				// Deliver what we framed; a sticky non-EOF error comes
				// back on the next call.
				return nil, nil
			}
			return nil, err
		}
		if barrier != nil && barrier(rec.Type, rec.Subtype) {
			return rec, nil
		}
		off := len(b.buf)
		b.buf = append(b.buf, rec.Body...)
		b.recs = append(b.recs, FramedRecord{
			Offset:    rec.Offset,
			Timestamp: rec.Timestamp,
			Type:      rec.Type,
			Subtype:   rec.Subtype,
			bodyOff:   off,
			bodyLen:   len(rec.Body),
		})
	}
	return nil, nil
}

package mrt

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"testing"

	"bgpintent/internal/bgp"
)

// buildValidStream writes a small, valid MRT stream: a peer table, a RIB
// record, and one update.
func buildValidStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	table := &PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("10.0.0.1"),
		ViewName:       "fuzz",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.1.0.1"), Addr: netip.MustParseAddr("198.51.100.1"), ASN: 65269},
		},
	}
	tw, err := NewTableDumpWriter(&buf, 100, table)
	if err != nil {
		t.Fatal(err)
	}
	entry := RIBEntry{
		PeerIndex: 0,
		Attrs: bgp.PathAttributes{
			HasOrigin:   true,
			ASPath:      bgp.NewASPath(65269, 64496),
			Communities: bgp.Communities{bgp.NewCommunity(1299, 2569)},
		},
	}
	if err := tw.WriteRIB(bgp.MustParsePrefix("192.0.2.0/24"), []RIBEntry{entry}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	uw := NewUpdateWriter(&buf)
	msg := &bgp.UpdateMessage{NLRI: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.0/24")}}
	if err := uw.WriteUpdate(101, 65269, 0, netip.MustParseAddr("198.51.100.1"), netip.MustParseAddr("10.0.0.1"), msg); err != nil {
		t.Fatal(err)
	}
	if err := uw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func drainScanners(data []byte) {
	ts := NewTableDumpScanner(bytes.NewReader(data))
	for {
		if _, err := ts.Next(); err != nil {
			break
		}
	}
	us := NewUpdateScanner(bytes.NewReader(data))
	for {
		if _, err := us.Next(); err != nil {
			break
		}
	}
}

// TestScannersNeverPanic corrupts a valid stream in random ways; the
// scanners must fail cleanly.
func TestScannersNeverPanic(t *testing.T) {
	wire := buildValidStream(t)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4000; trial++ {
		buf := append([]byte(nil), wire...)
		for k := 0; k < 1+rng.Intn(10); k++ {
			buf[rng.Intn(len(buf))] = byte(rng.Intn(256))
		}
		if rng.Intn(2) == 0 {
			buf = buf[:rng.Intn(len(buf)+1)]
		}
		drainScanners(buf)
	}
}

// TestScannersRandomBytes drives the scanners with pure noise.
func TestScannersRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2000; trial++ {
		buf := make([]byte, rng.Intn(512))
		rng.Read(buf)
		drainScanners(buf)
	}
}

// TestReaderStreamBoundary checks the reader across a slow io.Reader
// that returns one byte at a time.
func TestReaderStreamBoundary(t *testing.T) {
	wire := buildValidStream(t)
	r := NewReader(&oneByteReader{data: wire})
	records := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		records++
	}
	if records != 3 {
		t.Errorf("records = %d, want 3", records)
	}
}

// oneByteReader yields one byte per Read call.
type oneByteReader struct {
	data []byte
}

func (s *oneByteReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	p[0] = s.data[0]
	s.data = s.data[1:]
	return 1, nil
}

package mrt

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"strings"
	"testing"

	"bgpintent/internal/bgp"
)

// buildRIBStream writes a peer table plus n RIB records and returns the
// wire bytes along with each record's start offset.
func buildRIBStream(t *testing.T, n int) ([]byte, []int64) {
	t.Helper()
	var buf bytes.Buffer
	table := &PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("10.0.0.1"),
		ViewName:       "lenient",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.1.0.1"), Addr: netip.MustParseAddr("198.51.100.1"), ASN: 65269},
		},
	}
	tw, err := NewTableDumpWriter(&buf, 100, table)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		entry := RIBEntry{
			PeerIndex: 0,
			Attrs: bgp.PathAttributes{
				HasOrigin:   true,
				ASPath:      bgp.NewASPath(65269, 64496),
				Communities: bgp.Communities{bgp.NewCommunity(1299, uint16(i))},
			},
		}
		prefix := bgp.MustParsePrefix("192.0.2.0/24")
		if err := tw.WriteRIB(prefix, []RIBEntry{entry}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	var offsets []int64
	for off := int64(0); off < int64(len(data)); {
		offsets = append(offsets, off)
		l := binary.BigEndian.Uint32(data[off+8 : off+12])
		off += recordHeaderLen + int64(l)
	}
	return data, offsets
}

func drainReader(t *testing.T, r *Reader) int {
	t.Helper()
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatalf("unexpected reader error: %v", err)
		}
		n++
	}
}

func TestLenientMatchesStrictOnCleanStream(t *testing.T) {
	data, offsets := buildRIBStream(t, 20)
	var st Stats
	lenient := drainReader(t, NewLenientReader(bytes.NewReader(data), &st))
	strict := drainReader(t, NewReader(bytes.NewReader(data)))
	if lenient != strict || lenient != len(offsets) {
		t.Errorf("lenient read %d records, strict %d, want %d", lenient, strict, len(offsets))
	}
	if !st.Clean() {
		t.Errorf("clean stream produced dirty stats: %+v", st)
	}
	if st.BytesRead != int64(len(data)) {
		t.Errorf("BytesRead = %d, want %d", st.BytesRead, len(data))
	}
}

func TestStrictErrorsCarryOffset(t *testing.T) {
	data, offsets := buildRIBStream(t, 5)
	bad := offsets[3]

	t.Run("oversized length", func(t *testing.T) {
		buf := append([]byte(nil), data...)
		binary.BigEndian.PutUint32(buf[bad+8:bad+12], maxRecordLen+1)
		r := NewReader(bytes.NewReader(buf))
		var err error
		for err == nil {
			_, err = r.Next()
		}
		if err == io.EOF || !strings.Contains(err.Error(), "offset") {
			t.Errorf("error = %v, want offset-bearing length error", err)
		}
	})

	t.Run("truncated body", func(t *testing.T) {
		buf := data[:bad+6] // cut inside record 3
		r := NewReader(bytes.NewReader(buf))
		var err error
		for err == nil {
			_, err = r.Next()
		}
		if err == io.EOF || !strings.Contains(err.Error(), "offset") {
			t.Errorf("error = %v, want offset-bearing truncation error", err)
		}
	})
}

// TestLenientResyncSalvages corrupts one record's length field; the
// lenient reader must resynchronize and deliver the records after it.
func TestLenientResyncSalvages(t *testing.T) {
	data, offsets := buildRIBStream(t, 20)
	buf := append([]byte(nil), data...)
	bad := offsets[5]
	binary.BigEndian.PutUint32(buf[bad+8:bad+12], maxRecordLen+12345)

	var st Stats
	got := drainReader(t, NewLenientReader(bytes.NewReader(buf), &st))
	// Everything except the corrupted record (and at worst a neighbor
	// clipped by the resync scan) must survive.
	if got < len(offsets)-2 {
		t.Errorf("salvaged %d of %d records, stats=%+v", got, len(offsets), st)
	}
	if st.Resyncs == 0 {
		t.Error("no resync recorded for a corrupt length field")
	}
	if st.Clean() {
		t.Error("stats report a clean stream over corrupt input")
	}
	if st.BytesSkipped == 0 {
		t.Error("no bytes counted as skipped during resync")
	}
}

// TestLenientTruncatedTail cuts the stream mid-record; the lenient
// reader must deliver everything before the cut and report one
// truncated tail.
func TestLenientTruncatedTail(t *testing.T) {
	data, offsets := buildRIBStream(t, 10)
	cut := offsets[8] + 7 // inside record 8's header region

	var st Stats
	got := drainReader(t, NewLenientReader(bytes.NewReader(data[:cut]), &st))
	if got != 8 {
		t.Errorf("salvaged %d records before the cut, want 8", got)
	}
	if st.Truncated != 1 {
		t.Errorf("Truncated = %d, want 1 (stats=%+v)", st.Truncated, st)
	}
}

// TestLenientGarbageOnly feeds pure garbage: no records, one recorded
// corruption event, and termination.
func TestLenientGarbageOnly(t *testing.T) {
	garbage := bytes.Repeat([]byte("not mrt data at all "), 40)
	var st Stats
	got := drainReader(t, NewLenientReader(bytes.NewReader(garbage), &st))
	if got != 0 {
		t.Errorf("read %d records from garbage", got)
	}
	if st.Clean() {
		t.Error("garbage input produced clean stats")
	}
}

// TestLenientGarbageBetweenRecords splices garbage between two valid
// records; resync must recover the second one.
func TestLenientGarbageBetweenRecords(t *testing.T) {
	data, offsets := buildRIBStream(t, 6)
	splice := offsets[3]
	var buf bytes.Buffer
	buf.Write(data[:splice])
	buf.Write(bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 64))
	buf.Write(data[splice:])

	var st Stats
	got := drainReader(t, NewLenientReader(bytes.NewReader(buf.Bytes()), &st))
	if got < len(offsets)-1 {
		t.Errorf("salvaged %d of %d records around spliced garbage (stats=%+v)", got, len(offsets), st)
	}
	if st.Resyncs == 0 {
		t.Error("no resync recorded over spliced garbage")
	}
}

func TestLenientScannerSkipsBadRecord(t *testing.T) {
	data, offsets := buildRIBStream(t, 10)
	buf := append([]byte(nil), data...)
	// Corrupt record 4's body so it frames fine but fails to parse:
	// a bogus entry count makes ParseRIB run off the end of the body.
	bodyStart := offsets[4] + recordHeaderLen
	for i := bodyStart + 9; i < bodyStart+13; i++ {
		buf[i] = 0xff
	}

	var st Stats
	s := NewTableDumpScannerOptions(bytes.NewReader(buf), ScanOptions{Lenient: true, Stats: &st})
	views := 0
	for {
		_, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("lenient scanner error: %v", err)
		}
		views++
	}
	if views != 9 {
		t.Errorf("scanner yielded %d views, want 9 (stats=%+v)", views, st)
	}
	if st.Skipped == 0 {
		t.Errorf("no skip recorded for the undecodable RIB record: %+v", st)
	}

	strict := NewTableDumpScanner(bytes.NewReader(buf))
	var err error
	for err == nil {
		_, err = strict.Next()
	}
	if err == io.EOF || !strings.Contains(err.Error(), "offset") {
		t.Errorf("strict scanner error = %v, want offset-bearing parse error", err)
	}
}

func TestScanCheckAborts(t *testing.T) {
	data, _ := buildRIBStream(t, 10)
	wantErr := io.ErrClosedPipe
	s := NewTableDumpScannerOptions(bytes.NewReader(data), ScanOptions{
		Lenient: true,
		Check: func(st *Stats) error {
			if st.Records >= 3 {
				return wantErr
			}
			return nil
		},
	})
	var err error
	for err == nil {
		_, err = s.Next()
	}
	if err != wantErr {
		t.Errorf("scan error = %v, want the check's error", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	var s Stats
	s.addRecord()
	s.addRecord()
	s.noteDecoded()
	s.noteSkip("rib")
	s.noteUnknown(48, 2)
	s.Resyncs++
	if got := s.Attempts(); got != 3 {
		t.Errorf("Attempts = %d, want 3", got)
	}
	if got := s.ErrorRate(); got <= 0.6 || got >= 0.7 {
		t.Errorf("ErrorRate = %v, want 2/3", got)
	}
	if s.Clean() {
		t.Error("dirty stats report clean")
	}
	if got := s.UnknownCount(); got != 1 {
		t.Errorf("UnknownCount = %d, want 1", got)
	}

	var m Stats
	m.Merge(&s)
	m.Merge(&s)
	if m.Records != 4 || m.Skipped != 2 || m.Resyncs != 2 || m.UnknownTypes["48/2"] != 2 || m.SkipReasons["rib"] != 2 {
		t.Errorf("Merge accumulated %+v", m)
	}

	// The nil receiver is a no-op collector and never divides by zero.
	var nilStats *Stats
	nilStats.addRecord()
	nilStats.noteSkip("x")
	nilStats.noteUnknown(1, 2)
	nilStats.Merge(&s)
	if nilStats.Attempts() != 0 || nilStats.ErrorRate() != 0 || !nilStats.Clean() {
		t.Error("nil Stats is not a clean no-op")
	}
	var empty Stats
	if empty.ErrorRate() != 0 {
		t.Error("empty stats have a nonzero error rate")
	}
}

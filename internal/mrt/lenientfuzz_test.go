// Fuzz targets for the lenient decoder. They live in an external test
// package so they can seed themselves with ingest/faults, which imports
// mrt.
package mrt_test

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"bgpintent/internal/bgp"
	"bgpintent/internal/ingest/faults"
	"bgpintent/internal/mrt"
)

// fuzzValidStream builds a small well-formed stream: a peer table, RIB
// records, and a couple of updates.
func fuzzValidStream(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	table := &mrt.PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("10.0.0.1"),
		ViewName:       "fuzz",
		Peers: []mrt.Peer{
			{BGPID: netip.MustParseAddr("10.1.0.1"), Addr: netip.MustParseAddr("198.51.100.1"), ASN: 65269},
			{BGPID: netip.MustParseAddr("10.1.0.2"), Addr: netip.MustParseAddr("198.51.100.2"), ASN: 3356},
		},
	}
	tw, err := mrt.NewTableDumpWriter(&buf, 100, table)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		entry := mrt.RIBEntry{
			PeerIndex: uint16(i % 2),
			Attrs: bgp.PathAttributes{
				HasOrigin:   true,
				ASPath:      bgp.NewASPath(65269, 3356, 64496),
				Communities: bgp.Communities{bgp.NewCommunity(3356, uint16(i))},
			},
		}
		if err := tw.WriteRIB(bgp.MustParsePrefix("192.0.2.0/24"), []mrt.RIBEntry{entry}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		tb.Fatal(err)
	}
	uw := mrt.NewUpdateWriter(&buf)
	for i := 0; i < 2; i++ {
		msg := &bgp.UpdateMessage{NLRI: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.0/24")}}
		if err := uw.WriteUpdate(uint32(101+i), 65269, 64500,
			netip.MustParseAddr("198.51.100.1"), netip.MustParseAddr("10.0.0.1"), msg); err != nil {
			tb.Fatal(err)
		}
	}
	if err := uw.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// addFaultSeeds registers the valid stream plus one corrupted variant
// per fault kind as fuzz seeds.
func addFaultSeeds(f *testing.F) {
	wire := fuzzValidStream(f)
	f.Add(wire)
	f.Add([]byte{})
	f.Add(wire[:len(wire)/2])
	for _, kind := range faults.AllKinds() {
		var buf bytes.Buffer
		if _, err := faults.Corrupt(&buf, bytes.NewReader(wire), faults.Config{
			Seed:  int64(kind) + 1,
			Rate:  0.5,
			Kinds: []faults.Kind{kind},
		}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
}

// strictRejects reports whether a strict pass over data ends in a
// non-EOF error.
func strictRejects(data []byte) bool {
	r := mrt.NewReader(bytes.NewReader(data))
	for {
		if _, err := r.Next(); err != nil {
			return err != io.EOF
		}
	}
}

// FuzzLenientReader checks the core robustness contract of the lenient
// reader: it never panics, always terminates, salvages no more records
// than the input could hold, and records corruption only on inputs
// strict mode rejects.
func FuzzLenientReader(f *testing.F) {
	addFaultSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var st mrt.Stats
		r := mrt.NewLenientReader(bytes.NewReader(data), &st)
		records := 0
		// Progress guard: every iteration consumes at least one byte,
		// so this bound is only reachable by a termination bug.
		for iter := 0; ; iter++ {
			if iter > len(data)+16 {
				t.Fatalf("reader failed to terminate after %d iterations on %d bytes", iter, len(data))
			}
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("lenient reader leaked error %v", err)
			}
			records++
		}
		if max := len(data)/12 + 1; records > max {
			t.Fatalf("read %d records from %d bytes (max %d)", records, len(data), max)
		}
		if st.BytesRead > int64(len(data)) {
			t.Fatalf("BytesRead %d exceeds input size %d", st.BytesRead, len(data))
		}
		// Strict mode must reject everything lenient mode skips: any
		// recorded corruption implies a strict error on the same bytes.
		if !st.Clean() && !strictRejects(data) {
			t.Fatalf("lenient reported corruption %+v on input strict mode accepts", st)
		}
		// And the converse sanity check: on strict-clean input the
		// lenient reader must deliver exactly the strict record count.
		if st.Clean() {
			sr := mrt.NewReader(bytes.NewReader(data))
			strict := 0
			for {
				if _, err := sr.Next(); err != nil {
					break
				}
				strict++
			}
			if records != strict {
				t.Fatalf("clean input: lenient read %d records, strict %d", records, strict)
			}
		}
	})
}

// FuzzLenientScanners drives both scanners in lenient mode: no panics,
// no hangs, no leaked errors, and any skip implies a strict-mode
// rejection by the same scanner.
func FuzzLenientScanners(f *testing.F) {
	addFaultSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var rst mrt.Stats
		rs := mrt.NewTableDumpScannerOptions(bytes.NewReader(data), mrt.ScanOptions{Lenient: true, Stats: &rst})
		for iter := 0; ; iter++ {
			if iter > 8*len(data)+64 { // pushback re-frames rejected bytes, so allow headroom
				t.Fatalf("rib scanner failed to terminate on %d bytes", len(data))
			}
			_, err := rs.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("lenient rib scanner leaked error %v", err)
			}
		}
		if !rst.Clean() {
			strict := mrt.NewTableDumpScanner(bytes.NewReader(data))
			var err error
			for err == nil {
				_, err = strict.Next()
			}
			if err == io.EOF {
				t.Fatalf("lenient rib scanner reported corruption %+v on input the strict scanner accepts", rst)
			}
		}

		var ust mrt.Stats
		us := mrt.NewUpdateScannerOptions(bytes.NewReader(data), mrt.ScanOptions{Lenient: true, Stats: &ust})
		for iter := 0; ; iter++ {
			if iter > 8*len(data)+64 {
				t.Fatalf("update scanner failed to terminate on %d bytes", len(data))
			}
			_, err := us.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("lenient update scanner leaked error %v", err)
			}
		}
		if !ust.Clean() {
			strict := mrt.NewUpdateScanner(bytes.NewReader(data))
			var err error
			for err == nil {
				_, err = strict.Next()
			}
			if err == io.EOF {
				t.Fatalf("lenient update scanner reported corruption %+v on input the strict scanner accepts", ust)
			}
		}
	})
}

// Scriptable ground-truth event injection. A Script perturbs the
// simulator's per-day view stream with routing events whose timing and
// subjects are known exactly — a blackhole-style activity spike on one
// community, a community-stripping leak on routes through one AS, a
// traffic-engineering flap series — so anomaly detectors can be scored
// for precision and recall against injected truth instead of eyeballed
// plausibility. Everything here is deterministic: equal (script, views)
// yield equal output, with no random source involved.
package simulate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"bgpintent/internal/bgp"
)

// EventKind discriminates the scripted event types.
type EventKind int

const (
	// EventSpike injects a burst of extra updates carrying one
	// community — the shape of a blackhole onset (and, when the burst
	// ends, its withdrawal).
	EventSpike EventKind = iota
	// EventStrip removes all communities from updates whose AS path
	// traverses one AS — the shape of a route leak through a
	// community-stripping network.
	EventStrip
	// EventFlap injects alternating on/off bursts of one community —
	// the shape of unstable traffic engineering.
	EventFlap
)

// String names the kind for logs and errors.
func (k EventKind) String() string {
	switch k {
	case EventSpike:
		return "spike"
	case EventStrip:
		return "strip"
	case EventFlap:
		return "flap"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one scripted routing event. Times are feed-time offsets from
// the feed epoch (day 0 spans [0, 24h), day 1 [24h, 48h), ...), so a
// script is independent of the wall-clock pacing of delivery.
type Event struct {
	Kind EventKind
	// At is when the event starts, as an offset from the feed epoch;
	// Duration is how long it lasts.
	At, Duration time.Duration

	// Community is the subject of spike and flap events.
	Community bgp.Community
	// ASN is the stripping AS of a strip event (full 32-bit space).
	ASN uint32

	// Count is the total updates injected by a spike, or the updates
	// injected per on-phase of a flap.
	Count int
	// Cycles is a flap's number of on/off cycles.
	Cycles int
}

// Validate checks one event for internal consistency.
func (e Event) Validate() error {
	if e.At < 0 || e.Duration <= 0 {
		return fmt.Errorf("simulate: %s event needs At >= 0 and Duration > 0", e.Kind)
	}
	switch e.Kind {
	case EventSpike:
		if e.Count <= 0 {
			return fmt.Errorf("simulate: spike event needs Count > 0")
		}
	case EventStrip:
		if e.ASN == 0 {
			return fmt.Errorf("simulate: strip event needs ASN != 0")
		}
	case EventFlap:
		if e.Count <= 0 || e.Cycles <= 0 {
			return fmt.Errorf("simulate: flap event needs Count > 0 and Cycles > 0")
		}
	default:
		return fmt.Errorf("simulate: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// Script is an ordered set of ground-truth events applied to a view
// stream.
type Script struct {
	Events []Event
}

// Validate checks every event.
func (sc *Script) Validate() error {
	for i := range sc.Events {
		if err := sc.Events[i].Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// ParseScript parses the event DSL: events separated by ';', each one of
//
//	spike:<asn>:<value>@<at>+<dur>#<count>
//	strip:<asn>@<at>+<dur>
//	flap:<asn>:<value>@<at>+<dur>#<cycles>x<count>
//
// where <at> and <dur> are Go durations offset from the feed epoch, e.g.
// "spike:65010:666@26h+1h#600; strip:174@30h+2h; flap:65010:20@34h+6h#4x300".
func ParseScript(s string) (*Script, error) {
	sc := &Script{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseEvent(part)
		if err != nil {
			return nil, fmt.Errorf("simulate: parsing script event %q: %w", part, err)
		}
		sc.Events = append(sc.Events, e)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	return sc, nil
}

func parseEvent(s string) (Event, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Event{}, fmt.Errorf("missing ':' after event kind")
	}
	var e Event
	switch kind {
	case "spike":
		e.Kind = EventSpike
	case "strip":
		e.Kind = EventStrip
	case "flap":
		e.Kind = EventFlap
	default:
		return Event{}, fmt.Errorf("unknown event kind %q", kind)
	}

	subject, rest, ok := strings.Cut(rest, "@")
	if !ok {
		return Event{}, fmt.Errorf("missing '@<at>'")
	}
	if e.Kind == EventStrip {
		asn, err := strconv.ParseUint(subject, 10, 32)
		if err != nil {
			return Event{}, fmt.Errorf("bad ASN %q: %v", subject, err)
		}
		e.ASN = uint32(asn)
	} else {
		c, err := bgp.ParseCommunity(subject)
		if err != nil {
			return Event{}, fmt.Errorf("bad community %q: %v", subject, err)
		}
		e.Community = c
	}

	when, tail, _ := strings.Cut(rest, "#")
	atStr, durStr, ok := strings.Cut(when, "+")
	if !ok {
		return Event{}, fmt.Errorf("missing '+<dur>' after '@<at>'")
	}
	var err error
	if e.At, err = time.ParseDuration(atStr); err != nil {
		return Event{}, fmt.Errorf("bad at %q: %v", atStr, err)
	}
	if e.Duration, err = time.ParseDuration(durStr); err != nil {
		return Event{}, fmt.Errorf("bad duration %q: %v", durStr, err)
	}

	switch e.Kind {
	case EventStrip:
		if tail != "" {
			return Event{}, fmt.Errorf("strip takes no '#' argument")
		}
	case EventSpike:
		n, err := strconv.Atoi(tail)
		if err != nil {
			return Event{}, fmt.Errorf("bad count %q: %v", tail, err)
		}
		e.Count = n
	case EventFlap:
		cyc, cnt, ok := strings.Cut(tail, "x")
		if !ok {
			return Event{}, fmt.Errorf("flap needs '#<cycles>x<count>'")
		}
		if e.Cycles, err = strconv.Atoi(cyc); err != nil {
			return Event{}, fmt.Errorf("bad cycles %q: %v", cyc, err)
		}
		if e.Count, err = strconv.Atoi(cnt); err != nil {
			return Event{}, fmt.Errorf("bad count %q: %v", cnt, err)
		}
	}
	return e, nil
}

// String renders the script back into the DSL.
func (sc *Script) String() string {
	parts := make([]string, 0, len(sc.Events))
	for _, e := range sc.Events {
		switch e.Kind {
		case EventSpike:
			parts = append(parts, fmt.Sprintf("spike:%s@%s+%s#%d", e.Community, e.At, e.Duration, e.Count))
		case EventStrip:
			parts = append(parts, fmt.Sprintf("strip:%d@%s+%s", e.ASN, e.At, e.Duration))
		case EventFlap:
			parts = append(parts, fmt.Sprintf("flap:%s@%s+%s#%dx%d", e.Community, e.At, e.Duration, e.Cycles, e.Count))
		}
	}
	return strings.Join(parts, "; ")
}

// TimedView is one view stamped with its feed-time offset from the
// epoch — the unit a scripted day produces. The simulate package keeps
// no timeline of its own; feed adapters add their epoch.
type TimedView struct {
	At   time.Duration
	View View
}

// Affects reports whether any event perturbs the feed-time window
// [start, end), measured as offsets from the epoch.
func (sc *Script) Affects(start, end time.Duration) bool {
	if sc == nil {
		return false
	}
	for _, e := range sc.Events {
		if e.At < end && e.At+e.Duration > start {
			return true
		}
	}
	return false
}

// Apply spreads one day's views evenly across [start, start+span) and
// perturbs them with every event intersecting that window. start is the
// day's offset from the feed epoch. Strip events rewrite matching views
// (the input slice is not modified); spike and flap events insert
// synthetic views cloned from templates whose paths avoid the injected
// community's α, so the burst reads as off-path activity — the signature
// of an action community being triggered. The result is sorted by time,
// ties resolved by input order, and fully deterministic.
func (sc *Script) Apply(start, span time.Duration, views []View) []TimedView {
	out := make([]TimedView, 0, len(views))
	if len(views) > 0 {
		step := span / time.Duration(len(views))
		for i := range views {
			out = append(out, TimedView{At: start + time.Duration(i)*step, View: views[i]})
		}
	}
	if sc == nil || len(views) == 0 {
		return out
	}
	end := start + span
	injected := false
	for _, e := range sc.Events {
		if e.At >= end || e.At+e.Duration <= start {
			continue
		}
		switch e.Kind {
		case EventStrip:
			for i := range out {
				off := out[i].At
				if off < e.At || off >= e.At+e.Duration {
					continue
				}
				if pathThrough(out[i].View.Path, e.ASN) {
					v := out[i].View
					v.Comms = nil
					v.LargeComms = nil
					out[i].View = v
				}
			}
		case EventSpike:
			for j := 0; j < e.Count; j++ {
				at := e.At + time.Duration(j)*e.Duration/time.Duration(e.Count)
				if at < start || at >= end {
					continue
				}
				out = append(out, injectView(views, e.Community, at, j))
				injected = true
			}
		case EventFlap:
			phase := e.Duration / time.Duration(2*e.Cycles)
			for c := 0; c < e.Cycles; c++ {
				on := e.At + time.Duration(2*c)*phase
				for j := 0; j < e.Count; j++ {
					at := on + time.Duration(j)*phase/time.Duration(e.Count)
					if at < start || at >= end {
						continue
					}
					out = append(out, injectView(views, e.Community, at, c*e.Count+j))
					injected = true
				}
			}
		}
	}
	if injected {
		sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	}
	return out
}

// pathThrough reports whether asn appears on the path beyond the
// vantage point itself (index 0): a strip event models a transit
// network mangling routes it propagates, not the collector session.
func pathThrough(path []uint32, asn uint32) bool {
	for _, a := range path[1:] {
		if a == asn {
			return true
		}
	}
	return false
}

// injectView clones a deterministic template view and appends the event
// community. Template selection walks the day's views from a
// salt-derived position, preferring one whose path avoids the
// community's α (off-path evidence, like an action community attached
// far from the AS it instructs).
func injectView(views []View, c bgp.Community, at time.Duration, salt int) TimedView {
	idx := (salt*2654435761 + 97) % len(views)
	if idx < 0 {
		idx += len(views)
	}
	for tries := 0; tries < 32; tries++ {
		if !pathThrough(views[idx].Path, uint32(c.ASN())) && views[idx].Path[0] != uint32(c.ASN()) {
			break
		}
		idx = (idx + 1) % len(views)
	}
	v := views[idx]
	v.Comms = append(v.Comms.Clone(), c).Canonical()
	v.LargeComms = v.LargeComms.Clone()
	return TimedView{At: at, View: v}
}

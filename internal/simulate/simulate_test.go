package simulate

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
	"bgpintent/internal/mrt"
	"bgpintent/internal/topology"
)

func tinySim(t *testing.T) (*topology.Topology, *Simulator) {
	t.Helper()
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo, New(topo, TinyConfig())
}

func TestRunDayProducesViews(t *testing.T) {
	topo, sim := tinySim(t)
	day := sim.RunDay(0)
	if len(day.Views) == 0 {
		t.Fatal("no views")
	}
	// Rough coverage: views ≈ VPs × prefixes (minus blackhole/no-export
	// confinement and flapped links).
	expect := len(sim.VPs()) * sim.Prefixes()
	if len(day.Views) < expect/2 {
		t.Errorf("views = %d, expected at least half of %d", len(day.Views), expect)
	}
	_ = topo
}

func TestRunDayDeterministic(t *testing.T) {
	_, sim := tinySim(t)
	a := sim.RunDay(2)
	b := sim.RunDay(2)
	if len(a.Views) != len(b.Views) {
		t.Fatalf("view counts differ: %d vs %d", len(a.Views), len(b.Views))
	}
	for i := range a.Views {
		if !reflect.DeepEqual(a.Views[i], b.Views[i]) {
			t.Fatalf("view %d differs", i)
		}
	}
}

func TestDaysDiffer(t *testing.T) {
	_, sim := tinySim(t)
	a := sim.RunDay(0)
	b := sim.RunDay(1)
	if reflect.DeepEqual(a.Views, b.Views) {
		t.Error("two days produced identical corpora; flaps/jitter inert")
	}
}

func TestPathsLoopFree(t *testing.T) {
	_, sim := tinySim(t)
	day := sim.RunDay(0)
	for _, v := range day.Views {
		seen := make(map[uint32]int)
		prev := uint32(0)
		for _, asn := range v.Path {
			if asn == prev {
				continue // prepending
			}
			prev = asn
			seen[asn]++
			if seen[asn] > 1 {
				t.Fatalf("loop in path %v (prefix %v)", v.Path, v.Prefix)
			}
		}
	}
}

func TestPathsValleyFree(t *testing.T) {
	topo, sim := tinySim(t)
	day := sim.RunDay(0)
	const (
		up   = 0
		flat = 1
		dn   = 2
	)
	for _, v := range day.Views {
		// Deduplicate prepends.
		var hops []uint32
		for _, asn := range v.Path {
			if len(hops) == 0 || hops[len(hops)-1] != asn {
				hops = append(hops, asn)
			}
		}
		// Walk origin -> VP; the phase may only decrease (up, then one
		// flat, then down).
		phase := up
		flats := 0
		for i := len(hops) - 1; i > 0; i-- {
			x, y := hops[i], hops[i-1] // x announced to y
			rel, ok := topo.ASes[y].RelWith(x)
			if !ok {
				t.Fatalf("path %v uses non-adjacent ASes %d-%d", v.Path, x, y)
			}
			var step int
			switch rel {
			case topology.RelCustomer:
				step = up // y learned from its customer: the route went up
			case topology.RelPeer:
				step = flat
			default:
				step = dn
			}
			if step < phase {
				t.Fatalf("valley in path %v (prefix %v)", v.Path, v.Prefix)
			}
			if step == flat {
				if flats++; flats > 1 {
					t.Fatalf("two peer links in path %v", v.Path)
				}
			}
			phase = step
		}
	}
}

func TestInfoCommunitiesMostlyOnPath(t *testing.T) {
	topo, sim := tinySim(t)
	day := sim.RunDay(0)
	on, off := 0, 0
	for _, v := range day.Views {
		inPath := make(map[uint32]bool)
		for _, asn := range v.Path {
			inPath[asn] = true
		}
		for _, c := range v.Comms {
			a := topo.ASes[uint32(c.ASN())]
			if a == nil || a.Plan == nil {
				continue
			}
			if a.Plan.Category(c.Value()) != dict.CatInformation {
				continue
			}
			if inPath[uint32(c.ASN())] {
				on++
			} else {
				off++
			}
		}
	}
	if on == 0 {
		t.Fatal("no information community observations")
	}
	if off*50 > on {
		t.Errorf("info communities off-path too often: on=%d off=%d", on, off)
	}
}

func TestActionCommunitiesAppearOffPath(t *testing.T) {
	topo, sim := tinySim(t)
	day := sim.RunDay(0)
	on, off := 0, 0
	for _, v := range day.Views {
		inPath := make(map[uint32]bool)
		for _, asn := range v.Path {
			inPath[asn] = true
		}
		for _, c := range v.Comms {
			a := topo.ASes[uint32(c.ASN())]
			if a == nil || a.Plan == nil {
				continue
			}
			if a.Plan.Category(c.Value()) != dict.CatAction {
				continue
			}
			if inPath[uint32(c.ASN())] {
				on++
			} else {
				off++
			}
		}
	}
	if on == 0 || off == 0 {
		t.Fatalf("action observations: on=%d off=%d; want both non-zero", on, off)
	}
	// Action communities propagate via other providers, so off-path
	// observations should be a substantial share.
	if off*20 < on {
		t.Errorf("action communities almost never off-path: on=%d off=%d", on, off)
	}
}

func TestFilteringASesStripCommunities(t *testing.T) {
	topo, sim := tinySim(t)
	day := sim.RunDay(0)
	for _, v := range day.Views {
		if topo.ASes[v.VP].FiltersCommunities && len(v.Comms) > 0 {
			t.Fatalf("filtering VP %d delivered communities %v", v.VP, v.Comms)
		}
		// Any path through a filtering AS (other than the VP itself, which
		// already strips) must not carry communities from below it.
		for i := len(v.Path) - 1; i > 0; i-- {
			mid := v.Path[i]
			if !topo.ASes[mid].FiltersCommunities {
				continue
			}
			// Communities whose α appears strictly below the filter point
			// must be gone, unless re-added above. Origin-attached foreign
			// tags are the common case: check the origin's own tags.
			origin := v.Path[len(v.Path)-1]
			if origin == mid {
				continue
			}
			for _, c := range v.Comms {
				if uint32(c.ASN()) == origin {
					t.Fatalf("origin %d communities survived filter AS%d in %v", origin, mid, v.Path)
				}
			}
		}
	}
}

func TestRouteServerASNNeverOnPath(t *testing.T) {
	topo, sim := tinySim(t)
	rs := make(map[uint32]bool)
	for _, ix := range topo.IXPs {
		rs[ix.RouteServerASN] = true
	}
	day := sim.RunDay(0)
	foundRSComm := false
	for _, v := range day.Views {
		for _, asn := range v.Path {
			if rs[asn] {
				t.Fatalf("route server AS%d in path %v", asn, v.Path)
			}
		}
		for _, c := range v.Comms {
			if rs[uint32(c.ASN())] {
				foundRSComm = true
			}
		}
	}
	if !foundRSComm {
		t.Error("no route-server communities observed; IXP tagging inert")
	}
}

func TestVPSelection(t *testing.T) {
	topo, sim := tinySim(t)
	vps := sim.VPs()
	if len(vps) != TinyConfig().VantagePoints {
		t.Fatalf("VPs = %d, want %d", len(vps), TinyConfig().VantagePoints)
	}
	// All tier-1s should be VPs (transit-heavy mix).
	for asn, a := range topo.ASes {
		if a.Tier != topology.TierT1 {
			continue
		}
		found := false
		for _, vp := range vps {
			if vp == asn {
				found = true
			}
		}
		if !found {
			t.Errorf("tier-1 AS%d not a vantage point", asn)
		}
	}
}

func TestPrependingObservable(t *testing.T) {
	_, sim := tinySim(t)
	day := sim.RunDay(0)
	found := false
	for _, v := range day.Views {
		for i := 1; i < len(v.Path); i++ {
			if v.Path[i] == v.Path[i-1] {
				found = true
			}
		}
	}
	if !found {
		t.Error("no prepending observed; set-attribute actions inert")
	}
}

func TestBlackholePrefixesConfined(t *testing.T) {
	_, sim := tinySim(t)
	day := sim.RunDay(0)
	counts := make(map[bgp.Prefix]int)
	isBH := make(map[bgp.Prefix]bool)
	for _, v := range day.Views {
		counts[v.Prefix]++
		if v.Prefix.Bits() == 32 {
			isBH[v.Prefix] = true
		}
	}
	if len(isBH) == 0 {
		t.Skip("no blackhole /32s in tiny corpus")
	}
	// Blackholed /32s must reach fewer VPs on average than /24s: the
	// honoring provider absorbs them.
	var bhTotal, bhN, normTotal, normN int
	for p, n := range counts {
		if isBH[p] {
			bhTotal += n
			bhN++
		} else {
			normTotal += n
			normN++
		}
	}
	if bhN > 0 && normN > 0 {
		if float64(bhTotal)/float64(bhN) >= float64(normTotal)/float64(normN) {
			t.Errorf("blackhole prefixes reach as many VPs as normal ones (%d/%d vs %d/%d)",
				bhTotal, bhN, normTotal, normN)
		}
	}
}

func TestMRTRIBRoundTrip(t *testing.T) {
	_, sim := tinySim(t)
	day := sim.RunDay(0)

	var recovered []View
	for c := 0; c < sim.Collectors(); c++ {
		var buf bytes.Buffer
		if err := sim.WriteRIB(&buf, 1714500000, c, day); err != nil {
			t.Fatal(err)
		}
		sc := mrt.NewTableDumpScanner(&buf)
		for {
			v, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			// The scanner reuses the view's attribute storage between
			// Next calls, so retain copies.
			recovered = append(recovered, View{
				VP:     v.Peer.ASN,
				Prefix: v.Prefix,
				Path:   v.Entry.Attrs.ASPath.Flatten(),
				Comms:  append(bgp.Communities(nil), v.Entry.Attrs.Communities...),
			})
		}
	}
	if len(recovered) != len(day.Views) {
		t.Fatalf("recovered %d views, wrote %d", len(recovered), len(day.Views))
	}
	// Index original views and compare.
	type key struct {
		vp uint32
		p  bgp.Prefix
	}
	orig := make(map[key]View, len(day.Views))
	for _, v := range day.Views {
		orig[key{v.VP, v.Prefix}] = v
	}
	for _, r := range recovered {
		o, ok := orig[key{r.VP, r.Prefix}]
		if !ok {
			t.Fatalf("unexpected view vp=%d prefix=%v", r.VP, r.Prefix)
		}
		if !reflect.DeepEqual(o.Path, r.Path) {
			t.Fatalf("path mismatch vp=%d prefix=%v: %v vs %v", r.VP, r.Prefix, o.Path, r.Path)
		}
		if len(o.Comms) != len(r.Comms) {
			t.Fatalf("comms mismatch vp=%d prefix=%v", r.VP, r.Prefix)
		}
		for i := range o.Comms {
			if o.Comms[i] != r.Comms[i] {
				t.Fatalf("comms[%d] mismatch", i)
			}
		}
	}
}

func TestMRTUpdatesRoundTrip(t *testing.T) {
	_, sim := tinySim(t)
	day := sim.RunDay(0)
	var buf bytes.Buffer
	if err := sim.WriteUpdates(&buf, 1714500000, 0, day, 0.3); err != nil {
		t.Fatal(err)
	}
	sc := mrt.NewUpdateScanner(&buf)
	count := 0
	for {
		v, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Update.NLRI) == 0 && len(v.Update.Withdrawn) == 0 {
			t.Error("update with no NLRI and no withdrawals")
		}
		count++
	}
	if count == 0 {
		t.Fatal("no updates written")
	}
}

func TestCollectorPartition(t *testing.T) {
	_, sim := tinySim(t)
	seen := make(map[uint32]int)
	for c := 0; c < sim.Collectors(); c++ {
		for _, vp := range sim.CollectorVPs(c) {
			seen[vp]++
			if got := sim.CollectorOf(vp); got != c {
				t.Errorf("CollectorOf(%d) = %d, want %d", vp, got, c)
			}
		}
	}
	if len(seen) != len(sim.VPs()) {
		t.Errorf("partition covers %d VPs of %d", len(seen), len(sim.VPs()))
	}
	for vp, n := range seen {
		if n != 1 {
			t.Errorf("VP %d in %d collectors", vp, n)
		}
	}
	if sim.CollectorOf(4294967295) != -1 {
		t.Error("CollectorOf(unknown) != -1")
	}
}

func TestPrivateJunkAppears(t *testing.T) {
	_, sim := tinySim(t)
	day := sim.RunDay(0)
	found := false
	for _, v := range day.Views {
		for _, c := range v.Comms {
			if c.IsPrivateASN() {
				found = true
			}
		}
	}
	if !found {
		t.Error("no private-ASN communities in corpus; junk generation inert")
	}
}

func TestLargeCommunitiesEmitted(t *testing.T) {
	_, sim := tinySim(t)
	day := sim.RunDay(0)
	distinct := make(map[bgp.LargeCommunity]bool)
	for _, v := range day.Views {
		for _, lc := range v.LargeComms {
			distinct[lc] = true
			// Mirrors carry the regular community's α and value.
			if lc.LocalData1 != 1 {
				t.Fatalf("unexpected large function field: %v", lc)
			}
		}
	}
	if len(distinct) == 0 {
		t.Fatal("no large communities in corpus; mirroring inert")
	}
	// Large communities must be a minority relative to regular ones, as
	// in the paper (11,524 large vs 88,982 regular).
	regular := make(map[bgp.Community]bool)
	for _, v := range day.Views {
		for _, c := range v.Comms {
			regular[c] = true
		}
	}
	if len(distinct) >= len(regular) {
		t.Errorf("large (%d) should be rarer than regular (%d)", len(distinct), len(regular))
	}
}

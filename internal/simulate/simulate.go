// Package simulate propagates BGP routes over a generated topology and
// records what route collectors would observe. It implements Gao-Rexford
// valley-free export with community semantics: customers attach their
// providers' action communities at origination, transit ASes honor them
// (prepending, suppression, local-pref, blackholing) and attach their own
// information communities at ingress (location, relationship, ROV), IXP
// route servers tag routes while staying out of the AS path, and a small
// population of ASes strips communities entirely.
//
// The output — vantage-point views of (prefix, AS path, communities) —
// substitutes for the RouteViews/RIS corpus the paper measures.
package simulate

import (
	"math/rand"
	"net/netip"
	"runtime"
	"sort"
	"sync"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
	"bgpintent/internal/topology"
)

// Config controls corpus simulation.
type Config struct {
	Seed int64

	// Collectors is the number of route collectors; vantage points are
	// assigned to collectors round-robin.
	Collectors int

	// VantagePoints is the number of full-feed VP sessions.
	VantagePoints int

	// ActionUseProb is the probability that an origin attaches action
	// communities from one of its providers' plans to a prefix.
	ActionUseProb float64

	// RSActionUseProb is the probability an IXP member origin attaches a
	// route-server action community.
	RSActionUseProb float64

	// PrivateJunkProb is the probability an origin attaches a community
	// with a private-range α, which the method must refuse to classify.
	PrivateJunkProb float64

	// LeakProb is the probability an origin erroneously attaches a
	// foreign information community (cargo-cult configuration); this is
	// what gives information clusters small off-path counts (Fig. 6).
	LeakProb float64

	// NoExportProb is the probability an origin confines a prefix with
	// the well-known NO_EXPORT community.
	NoExportProb float64

	// BlackholeProb is the probability an origin announces an additional
	// blackholed /32 under one of its prefixes.
	BlackholeProb float64

	// LinkFlapFrac is the per-day fraction of multihomed stubs that lose
	// one provider link, making paths (and tuples) vary across days.
	LinkFlapFrac float64

	// DayActionJitter is the per-day probability that an origin's action
	// tagging for a prefix is re-drawn, adding day-over-day tuple
	// diversity.
	DayActionJitter float64

	// PartialFeedFrac is the fraction of vantage points that provide
	// peer-style partial feeds (customer-cone routes only) instead of
	// full tables, as many RouteViews/RIS peers do.
	PartialFeedFrac float64

	// LargeMirrorProb is the probability that an origin mirrors its
	// attached communities as large (RFC 8092) communities too, giving
	// the corpus the regular/large mix the paper reports. Unlike the
	// paper (which counts large communities and defers them), the
	// pipeline classifies the mirrored large space as well.
	LargeMirrorProb float64

	// LargeMatrix makes the mirroring deterministic: every eligible
	// community an origin attaches gets its large twin, regardless of
	// LargeMirrorProb — the arouteserver-style std/lrg matrix, where
	// each standard announce/suppress control has a large-form sibling.
	LargeMatrix bool
}

// DefaultConfig returns corpus-scale simulation parameters.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Collectors:      3,
		VantagePoints:   180,
		ActionUseProb:   0.45,
		RSActionUseProb: 0.25,
		PrivateJunkProb: 0.02,
		LeakProb:        0.012,
		NoExportProb:    0.002,
		BlackholeProb:   0.04,
		LinkFlapFrac:    0.03,
		DayActionJitter: 0.08,
		PartialFeedFrac: 0.40,
		LargeMirrorProb: 0.10,
	}
}

// LargeConfig returns simulation parameters for the large corpus scale.
func LargeConfig() Config {
	cfg := DefaultConfig()
	cfg.VantagePoints = 420
	cfg.Collectors = 5
	return cfg
}

// TinyConfig returns fast parameters for unit tests.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.VantagePoints = 40
	cfg.Collectors = 2
	return cfg
}

// View is one vantage point's route for one prefix: the unit of
// observation the inference pipeline consumes.
type View struct {
	VP     uint32 // vantage-point ASN (first element of Path)
	Prefix bgp.Prefix
	Path   []uint32 // nearest-first, origin last, VP included
	Comms  bgp.Communities
	// LargeComms carries the route's large communities; the pipeline
	// counts but does not classify them, like the paper.
	LargeComms bgp.LargeCommunities
}

// DayResult is one day of collected views.
type DayResult struct {
	Day   int
	Views []View
}

// route is a route as held by one AS. The AS path is a parent chain —
// each hop records who announced it and how many extra prepends were
// applied — materialized only at vantage points.
type route struct {
	parent    *route
	sender    uint32 // ASN that announced this route to the holder
	prepends  int    // extra repetitions of sender beyond the mandatory one
	pathLen   int    // total materialized path length
	comms     bgp.Communities
	lcomms    bgp.LargeCommunities
	lpref     uint32
	from      int32 // dense index of the neighbor it was learned from
	fromRel   int   // topology.Rel* the route was learned over
	blackhole bool
}

// appendPath materializes the AS path (nearest-first, origin last).
func (r *route) appendPath(dst []uint32) []uint32 {
	for cur := r; cur.parent != nil; cur = cur.parent {
		for i := 0; i <= cur.prepends; i++ {
			dst = append(dst, cur.sender)
		}
	}
	return dst
}

// better implements best-path selection: highest local-pref (which
// encodes the customer > peer > provider preference by default), then
// shortest AS path, then lowest neighbor index.
func better(r, than *route) bool {
	if than == nil {
		return true
	}
	if r.lpref != than.lpref {
		return r.lpref > than.lpref
	}
	if r.pathLen != than.pathLen {
		return r.pathLen < than.pathLen
	}
	return r.from < than.from
}

// defaultLocalPref encodes the Gao-Rexford preference order.
func defaultLocalPref(rel int) uint32 {
	switch rel {
	case topology.RelCustomer:
		return 200
	case topology.RelPeer:
		return 100
	default:
		return 50
	}
}

// planCache precomputes per-AS lookups the hot transfer path needs.
type planCache struct {
	locCity   map[int]uint16 // city -> location β
	locRegion map[int]uint16 // region -> rollup location β
	relDef    map[int]uint16 // relationship -> β
	rovDef    map[int]uint16 // ROV state -> β
	otherInfo []uint16       // other-info β, for rotating internal tags
}

func newPlanCache(plan *dict.Plan) *planCache {
	c := &planCache{
		locCity:   make(map[int]uint16),
		locRegion: make(map[int]uint16),
		relDef:    make(map[int]uint16),
		rovDef:    make(map[int]uint16),
	}
	for _, v := range plan.Values() {
		d, _ := plan.Lookup(v)
		switch d.Sub {
		case dict.SubLocation:
			if d.City != 0 {
				if _, dup := c.locCity[d.City]; !dup {
					c.locCity[d.City] = v
				}
			} else if d.Region != 0 {
				if _, dup := c.locRegion[d.Region]; !dup {
					c.locRegion[d.Region] = v
				}
			}
		case dict.SubRelationship:
			if _, dup := c.relDef[d.Rel]; !dup {
				c.relDef[d.Rel] = v
			}
		case dict.SubROV:
			if _, dup := c.rovDef[d.ROV]; !dup {
				c.rovDef[d.ROV] = v
			}
		case dict.SubOtherInfo:
			c.otherInfo = append(c.otherInfo, v)
		}
	}
	return c
}

type originPrefix struct {
	prefix    bgp.Prefix
	origin    int32
	blackhole bool // announced with the origin's provider blackhole community
}

// Simulator runs route propagation over a topology.
type Simulator struct {
	topo *topology.Topology
	cfg  Config

	vps     []uint32
	index   map[uint32]int32 // ASN -> dense index
	asns    []uint32         // dense index -> ASN
	ases    []*topology.AS   // dense index -> AS
	caches  []*planCache     // dense index -> plan cache (nil without plan)
	ixpAdj  [][]uint32       // dense index -> sorted IXP-peer ASNs
	rsPlans map[int]*dict.Plan
	rsTag   map[int]bgp.Community // ixpID -> "learned here" info community

	originStates []*originState
	leakPool     []bgp.Community // foreign info communities origins may leak

	origins []originPrefix
}

// New prepares a simulator: dense indexes, vantage-point selection, plan
// caches, and the prefix origin list.
func New(topo *topology.Topology, cfg Config) *Simulator {
	s := &Simulator{
		topo:    topo,
		cfg:     cfg,
		index:   make(map[uint32]int32, len(topo.ASes)),
		rsPlans: make(map[int]*dict.Plan),
		rsTag:   make(map[int]bgp.Community),
	}
	n := len(topo.Order)
	s.asns = make([]uint32, n)
	s.ases = make([]*topology.AS, n)
	s.caches = make([]*planCache, n)
	s.ixpAdj = make([][]uint32, n)
	for i, asn := range topo.Order {
		s.index[asn] = int32(i)
		s.asns[i] = asn
		s.ases[i] = topo.ASes[asn]
		if s.ases[i].Plan != nil {
			s.caches[i] = newPlanCache(s.ases[i].Plan)
		}
		s.ixpAdj[i] = sortedKeys(s.ases[i].IXPPeers)
	}
	for _, ix := range topo.IXPs {
		if ix.Plan == nil {
			continue
		}
		s.rsPlans[ix.ID] = ix.Plan
		for _, v := range ix.Plan.Values() {
			if d, _ := ix.Plan.Lookup(v); d.Sub == dict.SubOtherInfo {
				s.rsTag[ix.ID] = bgp.NewCommunity(uint16(ix.RouteServerASN), v)
				break
			}
		}
	}
	// Leak pool: transit information communities an origin might
	// cargo-cult onto its own announcements (or carry stale after
	// re-homing). The rate is kept low: with full-feed vantage points a
	// single leak event is visible on every path to the leaking origin,
	// so leaks are far more corrosive here than in the partial-visibility
	// reality (see EXPERIMENTS.md, Fig. 6 notes).
	for _, asn := range topo.Order {
		a := topo.ASes[asn]
		if a.Plan == nil || a.Tier == topology.TierStub {
			continue
		}
		count := 0
		for _, v := range a.Plan.Values() {
			if d, _ := a.Plan.Lookup(v); d.Category() == dict.CatInformation {
				s.leakPool = append(s.leakPool, bgp.NewCommunity(uint16(a.Alpha()), v))
				if count++; count >= 2 {
					break
				}
			}
		}
	}
	s.originStates = make([]*originState, n)
	for i := range s.ases {
		s.originStates[i] = s.buildOriginState(int32(i))
	}
	s.selectVPs()
	s.buildOrigins()
	return s
}

// selectVPs picks the vantage-point population: every tier-1/2, then a
// deterministic sample of tier-3 and stubs, mirroring the transit-heavy
// RouteViews/RIS peer mix.
func (s *Simulator) selectVPs() {
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5eed))
	var transit, t3, stubs []uint32
	for _, asn := range s.topo.Order {
		switch s.topo.ASes[asn].Tier {
		case topology.TierT1, topology.TierT2:
			transit = append(transit, asn)
		case topology.TierT3:
			t3 = append(t3, asn)
		default:
			stubs = append(stubs, asn)
		}
	}
	for _, group := range [][]uint32{transit, t3, stubs} {
		sort.Slice(group, func(i, j int) bool { return group[i] < group[j] })
	}
	rng.Shuffle(len(t3), func(i, j int) { t3[i], t3[j] = t3[j], t3[i] })
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	want := s.cfg.VantagePoints
	vps := append([]uint32{}, transit...)
	if len(vps) > want {
		vps = vps[:want]
	}
	if rem := want - len(vps); rem > 0 {
		n3 := min(rem*2/3, len(t3))
		vps = append(vps, t3[:n3]...)
		if rem = want - len(vps); rem > 0 {
			vps = append(vps, stubs[:min(rem, len(stubs))]...)
		}
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	s.vps = vps
}

// buildOrigins lists every originated prefix, plus blackholed /32s for a
// sample of stub origins.
func (s *Simulator) buildOrigins() {
	for idx, a := range s.ases {
		for _, p := range a.Prefixes {
			s.origins = append(s.origins, originPrefix{prefix: p, origin: int32(idx)})
		}
	}
	for idx, a := range s.ases {
		if a.Tier != topology.TierStub || len(a.Prefixes) == 0 {
			continue
		}
		rng := keyRand(s.cfg.Seed, uint64(a.ASN), 0xb1ac)
		if rng.Float64() >= s.cfg.BlackholeProb {
			continue
		}
		base := a.Prefixes[0]
		addr := base.Addr().As4()
		addr[3] = byte(1 + rng.Intn(250))
		p := bgp.PrefixFrom(netip.AddrFrom4(addr), 32)
		s.origins = append(s.origins, originPrefix{prefix: p, origin: int32(idx), blackhole: true})
	}
	sort.Slice(s.origins, func(i, j int) bool {
		a, b := s.origins[i].prefix, s.origins[j].prefix
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
}

// VPs returns the vantage-point ASNs.
func (s *Simulator) VPs() []uint32 { return s.vps }

// Prefixes returns the number of originated prefixes (including
// blackhole /32s).
func (s *Simulator) Prefixes() int { return len(s.origins) }

// RunDay propagates every prefix for one day and returns the vantage
// point views. Day-dependent state: a fraction of multihomed stubs lose
// one provider link, and some origins re-draw their action tagging.
//
// Prefixes are independent, so the work is sharded across GOMAXPROCS
// workers; per-prefix determinism keeps the output identical to a
// sequential run.
func (s *Simulator) RunDay(day int) *DayResult {
	res := &DayResult{Day: day}
	vpIdx := make([]int32, len(s.vps))
	partial := make([]bool, len(s.vps))
	for i, vp := range s.vps {
		vpIdx[i] = s.index[vp]
		partial[i] = s.isPartialFeed(vp)
	}
	down := s.dayDownLinks(day)

	workers := runtime.GOMAXPROCS(0)
	if workers > len(s.origins) {
		workers = len(s.origins)
	}
	if workers < 1 {
		workers = 1
	}
	// Contiguous origin shards keep the output prefix-major and stable.
	shards := make([][]View, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(s.origins) / workers
		hi := (w + 1) * len(s.origins) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			shards[w] = s.runOrigins(day, s.origins[lo:hi], down, vpIdx, partial)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, sh := range shards {
		total += len(sh)
	}
	res.Views = make([]View, 0, total)
	for _, sh := range shards {
		res.Views = append(res.Views, sh...)
	}
	return res
}

// runOrigins propagates one shard of prefixes and collects its views.
func (s *Simulator) runOrigins(day int, origins []originPrefix, down map[uint64]bool, vpIdx []int32, partial []bool) []View {
	n := len(s.ases)
	custBest := make([]*route, n)
	peerBest := make([]*route, n)
	provBest := make([]*route, n)
	var views []View
	for _, op := range origins {
		for i := range custBest {
			custBest[i], peerBest[i], provBest[i] = nil, nil, nil
		}
		orig := s.originRoute(op, day)
		s.propagate(op, orig, down, custBest, peerBest, provBest)
		for i, vp := range s.vps {
			vi := vpIdx[i]
			best := bestOf(custBest[vi], peerBest[vi], provBest[vi])
			if vi == op.origin {
				best = orig
			}
			if best == nil {
				continue
			}
			// Partial feeds share only customer-cone routes, like the
			// peer sessions many collectors have.
			if partial[i] && vi != op.origin && best.fromRel != topology.RelCustomer {
				continue
			}
			path := make([]uint32, 0, best.pathLen+1)
			path = append(path, vp)
			path = best.appendPath(path)
			comms := best.comms
			lcomms := best.lcomms
			if s.ases[vi].FiltersCommunities {
				comms, lcomms = nil, nil
			}
			views = append(views, View{
				VP:         vp,
				Prefix:     op.prefix,
				Path:       path,
				Comms:      comms.Canonical(),
				LargeComms: lcomms,
			})
		}
	}
	return views
}

// isPartialFeed reports whether a vantage point provides a peer-style
// partial feed (deterministic per VP).
func (s *Simulator) isPartialFeed(vp uint32) bool {
	if s.cfg.PartialFeedFrac <= 0 {
		return false
	}
	return float64(mix(uint64(vp), 0xfeed)%1000) < s.cfg.PartialFeedFrac*1000
}

// dayDownLinks returns the (stub, provider) links down on the given day.
func (s *Simulator) dayDownLinks(day int) map[uint64]bool {
	down := make(map[uint64]bool)
	if s.cfg.LinkFlapFrac <= 0 {
		return down
	}
	for _, a := range s.ases {
		if a.Tier != topology.TierStub || len(a.Providers) < 2 {
			continue
		}
		rng := keyRand(s.cfg.Seed, uint64(a.ASN)<<16|uint64(day), 0xf1a9)
		if rng.Float64() < s.cfg.LinkFlapFrac {
			p := a.Providers[rng.Intn(len(a.Providers))]
			down[linkKey(a.ASN, p)] = true
		}
	}
	return down
}

func linkKey(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// propagate computes every AS's candidate routes for one prefix using the
// three Gao-Rexford phases: customer routes climb provider links, then
// cross peer links once, then descend to customers. Local-pref action
// communities influence selection inside each AS; as in other valley-free
// simulators, a route already exported upward in phase one is not
// retracted if a later phase wins selection.
func (s *Simulator) propagate(op originPrefix, orig *route, down map[uint64]bool, custBest, peerBest, provBest []*route) {
	// Phase 1: customer routes, customers before providers.
	for u := int32(0); u < int32(len(s.ases)); u++ {
		a := s.ases[u]
		for _, cASN := range a.Customers {
			c := s.index[cASN]
			src := custBest[c]
			if c == op.origin {
				src = orig
			}
			if src == nil || down[linkKey(a.ASN, cASN)] {
				continue
			}
			if r := s.transfer(c, u, topology.RelCustomer, src, op); r != nil && better(r, custBest[u]) {
				custBest[u] = r
			}
		}
	}
	// Phase 2: best customer (or origin) route crosses peer links.
	for u := int32(0); u < int32(len(s.ases)); u++ {
		a := s.ases[u]
		src := custBest[u]
		if u == op.origin {
			src = orig
		}
		if src == nil {
			continue
		}
		for _, pASN := range a.Peers {
			v := s.index[pASN]
			if r := s.transfer(u, v, topology.RelPeer, src, op); r != nil && better(r, peerBest[v]) {
				peerBest[v] = r
			}
		}
		for _, pASN := range s.ixpAdj[u] {
			v := s.index[pASN]
			if r := s.transfer(u, v, topology.RelPeer, src, op); r != nil && better(r, peerBest[v]) {
				peerBest[v] = r
			}
		}
	}
	// Phase 3: overall best descends provider->customer, providers first.
	for u := int32(len(s.ases)) - 1; u >= 0; u-- {
		a := s.ases[u]
		src := bestOf(custBest[u], peerBest[u], provBest[u])
		if u == op.origin {
			src = orig
		}
		if src == nil {
			continue
		}
		for _, cASN := range a.Customers {
			c := s.index[cASN]
			if c == op.origin || down[linkKey(a.ASN, cASN)] {
				continue
			}
			if r := s.transfer(u, c, topology.RelProvider, src, op); r != nil && better(r, provBest[c]) {
				provBest[c] = r
			}
		}
	}
}

func bestOf(routes ...*route) *route {
	var best *route
	for _, r := range routes {
		if r != nil && better(r, best) {
			best = r
		}
	}
	return best
}

// transfer models one announcement hop: the sender's export policy
// (including the action communities its customers set) followed by the
// receiver's import processing (local-pref, blackhole detection,
// information tagging). rel is the relationship of the sender from the
// receiver's perspective. It returns nil when the route is not exported.
func (s *Simulator) transfer(from, to int32, rel int, r *route, op originPrefix) *route {
	sender, recv := s.ases[from], s.ases[to]
	if r.blackhole {
		return nil // blackhole routes stay within the honoring AS
	}
	// NO_EXPORT confines a learned route; the origin itself may announce.
	if r.parent != nil && r.comms.Has(bgp.CommunityNoExport) {
		return nil
	}
	linkCity := sender.LinkCity[recv.ASN]
	linkRegion := s.topo.Region(linkCity)

	prepends := 0
	if sender.Plan != nil {
		for _, c := range r.comms {
			if uint32(c.ASN()) != sender.Alpha() {
				continue
			}
			def, ok := sender.Plan.Lookup(c.Value())
			if !ok {
				continue
			}
			switch def.Sub {
			case dict.SubSuppress:
				if actionMatches(def, recv.ASN, linkRegion) {
					return nil
				}
			case dict.SubSetAttribute:
				if def.Prepend > prepends && actionMatches(def, recv.ASN, linkRegion) {
					prepends = def.Prepend
				}
			}
		}
	}

	out := &route{
		parent:   r,
		sender:   sender.ASN,
		prepends: prepends,
		pathLen:  r.pathLen + 1 + prepends,
		from:     from,
		fromRel:  rel,
		lpref:    defaultLocalPref(rel),
	}

	var comms bgp.Communities
	if !sender.FiltersCommunities {
		comms = make(bgp.Communities, len(r.comms), len(r.comms)+4)
		copy(comms, r.comms)
		out.lcomms = r.lcomms // immutable after origination; shared
	}

	// IXP route-server processing on multilateral sessions: the RS honors
	// member-set actions and adds its tag, without entering the path.
	if ixpID, viaIXP := sender.IXPPeers[recv.ASN]; viaIXP {
		if plan := s.rsPlans[ixpID]; plan != nil {
			for _, c := range comms {
				if uint32(c.ASN()) != plan.ASN {
					continue
				}
				if def, ok := plan.Lookup(c.Value()); ok &&
					def.Sub == dict.SubSuppress && actionMatches(def, recv.ASN, linkRegion) {
					return nil
				}
			}
			if tag, ok := s.rsTag[ixpID]; ok {
				comms = append(comms, tag)
			}
		}
	}

	// Receiver import: local-pref overrides and blackhole requests set by
	// its customers.
	if recv.Plan != nil {
		for _, c := range comms {
			if uint32(c.ASN()) != recv.Alpha() {
				continue
			}
			def, ok := recv.Plan.Lookup(c.Value())
			if !ok {
				continue
			}
			if def.Sub == dict.SubSetAttribute && def.HasLocalPref && def.TargetAS == 0 &&
				(def.TargetRegion == 0 || def.TargetRegion == linkRegion) {
				out.lpref = def.LocalPref
			}
			if def.Sub == dict.SubBlackhole {
				out.blackhole = true
			}
		}
	}
	if comms.Has(bgp.CommunityBlackhole) {
		out.blackhole = true
	}

	// Receiver ingress tagging.
	if cache := s.caches[to]; cache != nil && !recv.FiltersCommunities {
		asn16 := uint16(recv.Alpha())
		if recv.TagsLocation {
			if v, ok := cache.locCity[linkCity]; ok {
				comms = append(comms, bgp.NewCommunity(asn16, v))
			} else if v, ok := cache.locRegion[linkRegion]; ok {
				comms = append(comms, bgp.NewCommunity(asn16, v))
			}
		}
		// Relationship tags drive export policy ("may I export this?"),
		// so operators tag customer- and peer-learned routes; provider-
		// learned routes need no mark.
		if recv.TagsRelationship && rel != topology.RelProvider {
			if v, ok := cache.relDef[rel]; ok {
				comms = append(comms, bgp.NewCommunity(asn16, v))
			}
		}
		if recv.TagsROV {
			if v, ok := cache.rovDef[ROVState(s.asns[op.origin])]; ok {
				comms = append(comms, bgp.NewCommunity(asn16, v))
			}
		}
		// Internal metadata tags rotate over the other-info values by a
		// stable per-(AS, prefix, ingress-city) hash, so newly defined
		// values (plan growth across epochs) become observable and each
		// value is seen at many ingress points (internal tags are not
		// location signals).
		if len(cache.otherInfo) > 0 {
			h := mix(prefixKey(op.prefix)^uint64(recv.ASN)^uint64(linkCity)<<40, 0x07e2)
			if h%2 == 0 {
				comms = append(comms, bgp.NewCommunity(asn16, cache.otherInfo[(h>>8)%uint64(len(cache.otherInfo))]))
			}
		}
	}
	out.comms = comms
	return out
}

// ROVState returns the Route Origin Validation state of an origin AS in
// the simulated Internet: 0 valid (most), 2 unknown (some), 1 invalid
// (few). It is the synthetic substitute for an RPKI validated-ROA table
// and is exported for consumers that need the oracle (e.g. fine-grained
// community classification).
func ROVState(origin uint32) int {
	h := mix(uint64(origin), 0x20f)
	switch {
	case h%10 < 7:
		return 0
	case h%10 < 9:
		return 2
	default:
		return 1
	}
}

// actionMatches reports whether an action definition applies to an export
// toward neighbor nbr on a session in linkRegion. Definitions with no
// target at all apply only to suppression (a global do-not-export).
func actionMatches(def *dict.Def, nbr uint32, linkRegion int) bool {
	if def.TargetAS != 0 && def.TargetAS != nbr {
		return false
	}
	if def.TargetRegion != 0 && def.TargetRegion != linkRegion {
		return false
	}
	return def.TargetAS != 0 || def.TargetRegion != 0 || def.Sub == dict.SubSuppress
}

func sortedKeys(m map[uint32]int) []uint32 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

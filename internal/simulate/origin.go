package simulate

import (
	"math/rand"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
	"bgpintent/internal/topology"
)

// Salts for origin-side deterministic randomness.
const (
	saltActionUse  = 0xac7
	saltActionPick = 0x91c6
	saltOwnInfo    = 0x0f0
	saltJunk       = 0x77a4
	saltLeak       = 0x1eaf
	saltRS         = 0x25e1
	saltLarge      = 0x1a49
)

// originState caches per-AS data used when originating prefixes.
type originState struct {
	ownInfo    []bgp.Community // the origin's own information communities
	ixpIDs     []int           // IXPs the origin is a member of
	providers  []providerPlan  // providers that define plans
	rsSuppress [][]bgp.Community
}

type providerPlan struct {
	asn        uint32
	alpha      uint32   // α the provider's plan uses (org leader for shared plans)
	actionVals []uint16 // usable action β (blackhole excluded)
	// regionVals are the action β targeting the customer's home region;
	// customers mostly steer traffic near home, which geographically
	// concentrates TE communities — the effect behind Da Silva et al.'s
	// location false positives (Table 1).
	regionVals []uint16
	blackhole  bgp.Community
	hasBH      bool
}

// buildOriginState precomputes origin-side tagging material for one AS.
func (s *Simulator) buildOriginState(idx int32) *originState {
	a := s.ases[idx]
	st := &originState{}

	if a.Plan != nil {
		// The origin's own info tags: its first other-info values and the
		// location value of its home city, when defined.
		count := 0
		for _, v := range a.Plan.Values() {
			d, _ := a.Plan.Lookup(v)
			if d.Category() != dict.CatInformation {
				continue
			}
			st.ownInfo = append(st.ownInfo, bgp.NewCommunity(uint16(a.Alpha()), v))
			if count++; count >= 3 {
				break
			}
		}
	}

	for _, pASN := range a.Providers {
		p := s.topo.ASes[pASN]
		if p.Plan == nil {
			continue
		}
		pp := providerPlan{asn: pASN, alpha: p.Alpha()}
		for _, v := range p.Plan.Values() {
			d, _ := p.Plan.Lookup(v)
			if d.Category() != dict.CatAction {
				continue
			}
			if d.Sub == dict.SubBlackhole {
				if !pp.hasBH {
					pp.blackhole = bgp.NewCommunity(uint16(pp.alpha), v)
					pp.hasBH = true
				}
				continue
			}
			pp.actionVals = append(pp.actionVals, v)
			if d.TargetRegion == a.HomeRegion {
				pp.regionVals = append(pp.regionVals, v)
			}
		}
		if len(pp.actionVals) > 0 || pp.hasBH {
			st.providers = append(st.providers, pp)
		}
	}

	for ixpID := range s.rsPlans {
		member := false
		for _, ix := range s.topo.IXPs {
			if ix.ID != ixpID {
				continue
			}
			for _, m := range ix.Members {
				if m == a.ASN {
					member = true
				}
			}
		}
		if !member {
			continue
		}
		st.ixpIDs = append(st.ixpIDs, ixpID)
		plan := s.rsPlans[ixpID]
		var sup []bgp.Community
		for _, v := range plan.Values() {
			if d, _ := plan.Lookup(v); d.Sub == dict.SubSuppress {
				sup = append(sup, bgp.NewCommunity(uint16(plan.ASN), v))
			}
		}
		st.rsSuppress = append(st.rsSuppress, sup)
	}
	return st
}

// originRoute builds the route as announced by the origin, with all the
// communities the origin attaches: its own information tags, its
// providers' action communities, route-server actions, well-known
// communities, private-range junk, and occasional leaked foreign
// information communities. Choices are deterministic per
// (seed, origin, prefix), with a small day-dependent jitter.
func (s *Simulator) originRoute(op originPrefix, day int) *route {
	a := s.ases[op.origin]
	st := s.originStates[op.origin]
	pkey := prefixKey(op.prefix)

	r := &route{pathLen: 0, lpref: defaultLocalPref(topology.RelCustomer)}
	var comms bgp.Communities

	// Own information tags (α = origin): trivially on-path.
	if len(st.ownInfo) > 0 {
		rng := keyRand(s.cfg.Seed, pkey^uint64(a.ASN), saltOwnInfo)
		n := 1 + rng.Intn(len(st.ownInfo))
		comms = append(comms, st.ownInfo[:n]...)
	}

	if op.blackhole {
		// Blackhole announcements carry the provider's blackhole
		// community (or the well-known one) and nothing else fancy.
		tagged := false
		for _, pp := range st.providers {
			if pp.hasBH {
				comms = append(comms, pp.blackhole)
				tagged = true
				break
			}
		}
		if !tagged {
			comms = append(comms, bgp.CommunityBlackhole)
		}
		r.comms = comms
		return r
	}

	// Provider action communities: the mechanism that puts action values
	// on provider-disjoint (off-path) routes.
	for _, pp := range st.providers {
		use := keyRand(s.cfg.Seed, pkey^uint64(pp.asn)^uint64(a.ASN), saltActionUse)
		if use.Float64() >= s.cfg.ActionUseProb || len(pp.actionVals) == 0 {
			continue
		}
		pick := keyRand(s.cfg.Seed, pkey^uint64(pp.asn)^uint64(a.ASN), saltActionPick)
		if jit := keyRand(s.cfg.Seed, pkey^uint64(pp.asn)^uint64(a.ASN)^uint64(day)<<40, saltActionPick); jit.Float64() < s.cfg.DayActionJitter {
			pick = jit
		}
		n := 1 + pick.Intn(2)
		for i := 0; i < n; i++ {
			pool := pp.actionVals
			if len(pp.regionVals) > 0 && pick.Float64() < 0.85 {
				pool = pp.regionVals
			}
			// Popularity skew: customers converge on the same few knobs
			// (e.g. "prepend once toward the big peer"), so the first
			// values of a pool see disproportionate use and the tail is
			// sparsely observed.
			var v uint16
			if pick.Float64() < 0.5 {
				v = pool[pick.Intn(min(2, len(pool)))]
			} else {
				v = pool[pick.Intn(len(pool))]
			}
			comms = append(comms, bgp.NewCommunity(uint16(pp.alpha), v))
		}
	}

	// Route-server actions for IXP members.
	for i := range st.ixpIDs {
		if len(st.rsSuppress[i]) == 0 {
			continue
		}
		rng := keyRand(s.cfg.Seed, pkey^uint64(st.ixpIDs[i])<<20^uint64(a.ASN), saltRS)
		if rng.Float64() < s.cfg.RSActionUseProb {
			comms = append(comms, st.rsSuppress[i][rng.Intn(len(st.rsSuppress[i]))])
		}
	}

	// Private-range junk the method must leave unclassified.
	junk := keyRand(s.cfg.Seed, pkey^uint64(a.ASN), saltJunk)
	if junk.Float64() < s.cfg.PrivateJunkProb {
		comms = append(comms, bgp.NewCommunity(uint16(64512+junk.Intn(1022)), uint16(junk.Intn(65536))))
	}

	// Cargo-cult leakage of a foreign information community: the source
	// of small off-path counts in information clusters.
	leak := keyRand(s.cfg.Seed, pkey^uint64(a.ASN), saltLeak)
	if leak.Float64() < s.cfg.LeakProb && len(s.leakPool) > 0 {
		comms = append(comms, s.leakPool[leak.Intn(len(s.leakPool))])
	}

	// NO_EXPORT confinement.
	ne := keyRand(s.cfg.Seed, pkey^uint64(a.ASN), saltJunk^0x5a5a)
	if ne.Float64() < s.cfg.NoExportProb {
		comms = append(comms, bgp.CommunityNoExport)
	}

	// Large-community mirroring: some origins duplicate their tags in the
	// RFC 8092 form (α as 32-bit ASN, function code, value). In matrix
	// mode every origin mirrors unconditionally — the deterministic
	// std/lrg announce/suppress matrix.
	lm := keyRand(s.cfg.Seed, pkey^uint64(a.ASN), saltLarge)
	if s.cfg.LargeMatrix || lm.Float64() < s.cfg.LargeMirrorProb {
		lcs := make(bgp.LargeCommunities, 0, len(comms))
		for _, c := range comms {
			if c.IsWellKnown() || c.IsPrivateASN() {
				continue
			}
			lcs = append(lcs, bgp.LargeCommunity{
				GlobalAdmin: uint32(c.ASN()),
				LocalData1:  1, // operator "function" field
				LocalData2:  uint32(c.Value()),
			})
		}
		lcs.Sort()
		r.lcomms = lcs
	}

	r.comms = comms
	return r
}

// prefixKey derives a stable 64-bit key from a prefix.
func prefixKey(p bgp.Prefix) uint64 {
	a := p.Addr().As4()
	return uint64(a[0])<<32 | uint64(a[1])<<24 | uint64(a[2])<<16 | uint64(a[3])<<8 | uint64(p.Bits())
}

// keyRand derives a deterministic rng from (seed, key, salt).
func keyRand(seed int64, key uint64, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix(uint64(seed)^key*0x9e3779b97f4a7c15, uint64(salt)))))
}

// mix is the splitmix64 finalizer over x^salt.
func mix(x, salt uint64) uint64 {
	x ^= salt * 0xc2b2ae3d27d4eb4f
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

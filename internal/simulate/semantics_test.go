package simulate

import (
	"testing"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
	"bgpintent/internal/topology"
)

// handTopo builds a minimal hand-wired topology:
//
//	AS20 (stub, origin) --customer-of--> AS10 (transit) <--peer--> AS30
//	                                      ^
//	                                      +--customer-of--> AS40 (tier1)
//
// AS10's plan is supplied by the caller; AS20 originates 192.0.2.0/24.
func handTopo(plan *dict.Plan) *topology.Topology {
	t := &topology.Topology{
		ASes:            make(map[uint32]*topology.AS),
		Orgs:            map[int][]uint32{1: {10}, 2: {20}, 3: {30}, 4: {40}},
		NumRegions:      2,
		CitiesPerRegion: 2,
	}
	mk := func(asn uint32, tier int, cities ...int) *topology.AS {
		a := &topology.AS{ASN: asn, Tier: tier, OrgID: int(asn / 10), HomeRegion: 1,
			Cities: cities, LinkCity: make(map[uint32]int)}
		t.ASes[asn] = a
		return a
	}
	a10 := mk(10, topology.TierT2, 1, 3)
	a20 := mk(20, topology.TierStub, 1)
	a30 := mk(30, topology.TierT2, 1)
	a40 := mk(40, topology.TierT1, 1, 2, 3, 4)

	link := func(x, y *topology.AS, rel string, city int) {
		switch rel {
		case "p2c": // x provider of y
			x.Customers = append(x.Customers, y.ASN)
			y.Providers = append(y.Providers, x.ASN)
		case "p2p":
			x.Peers = append(x.Peers, y.ASN)
			y.Peers = append(y.Peers, x.ASN)
		}
		x.LinkCity[y.ASN] = city
		y.LinkCity[x.ASN] = city
	}
	link(a10, a20, "p2c", 1)
	link(a10, a30, "p2p", 1)
	link(a40, a10, "p2c", 3)
	link(a40, a30, "p2c", 2)

	a10.Plan = plan
	a10.TagsLocation = true
	a10.TagsRelationship = true
	a20.Prefixes = []bgp.Prefix{bgp.MustParsePrefix("192.0.2.0/24")}

	// Order: customers before providers.
	t.Order = []uint32{20, 30, 10, 40}
	return t
}

// semCfg forces deterministic origin tagging: action communities always
// used, no noise.
func semCfg() Config {
	return Config{
		Seed:          1,
		Collectors:    1,
		VantagePoints: 4,
		ActionUseProb: 1.0,
	}
}

func planWith(defs ...dict.Def) *dict.Plan {
	p := dict.NewPlan(10)
	for i := range defs {
		p.BeginBlock()
		if err := p.Add(&defs[i]); err != nil {
			panic(err)
		}
	}
	return p
}

// viewOf returns the view a VP has for the prefix, or nil.
func viewOf(day *DayResult, vp uint32) *View {
	for i := range day.Views {
		if day.Views[i].VP == vp && day.Views[i].Prefix == bgp.MustParsePrefix("192.0.2.0/24") {
			return &day.Views[i]
		}
	}
	return nil
}

func TestSuppressToTargetHonored(t *testing.T) {
	// The only action community: "do not export to AS30".
	plan := planWith(dict.Def{Value: 9, Sub: dict.SubSuppress, TargetAS: 30})
	topo := handTopo(plan)
	sim := New(topo, semCfg())
	day := sim.RunDay(0)

	// AS30 must not receive the route from AS10 directly; the only other
	// route is via AS40 (30 is 40's customer).
	v30 := viewOf(day, 30)
	if v30 == nil {
		t.Fatal("AS30 has no route at all; expected one via AS40")
	}
	if len(v30.Path) < 2 || v30.Path[1] != 40 {
		t.Fatalf("AS30 path = %v, want via AS40 (direct 10-30 suppressed)", v30.Path)
	}
	// The suppressed community still travels on the surviving route:
	// that is the off-path signal.
	if !hasComm(v30.Comms, 10, 9) {
		t.Errorf("AS30 route lost the action community: %v", v30.Comms)
	}
	// AS40 still gets the route (only AS30 was targeted).
	if v40 := viewOf(day, 40); v40 == nil {
		t.Error("AS40 missing route; suppress leaked to the wrong session")
	}
}

func TestPrependHonored(t *testing.T) {
	plan := planWith(dict.Def{Value: 2, Sub: dict.SubSetAttribute, TargetAS: 30, Prepend: 2})
	topo := handTopo(plan)
	sim := New(topo, semCfg())
	day := sim.RunDay(0)

	v30 := viewOf(day, 30)
	if v30 == nil {
		t.Fatal("AS30 has no route")
	}
	// Path via 10 with 2 extra prepends: [30 10 10 10 20] — or via 40 if
	// prepending made it longer than the alternative (40's path is
	// [30 40 10 20], length 4 vs 5, but peer routes lose to customer
	// routes only in 30's selection: 10 is a peer, 40 is a provider, so
	// the peer route wins on local-pref despite prepending).
	count10 := 0
	for _, asn := range v30.Path {
		if asn == 10 {
			count10++
		}
	}
	if count10 != 3 {
		t.Fatalf("AS30 path = %v, want AS10 prepended 3 times total", v30.Path)
	}
}

func TestNoExportConfines(t *testing.T) {
	plan := planWith(dict.Def{Value: 100, Sub: dict.SubOtherInfo})
	topo := handTopo(plan)
	cfg := semCfg()
	cfg.ActionUseProb = 0
	cfg.NoExportProb = 1.0
	sim := New(topo, cfg)
	day := sim.RunDay(0)

	// AS10 (direct provider) sees the route; AS30/AS40 never do.
	if v := viewOf(day, 10); v == nil {
		t.Error("AS10 should hold the NO_EXPORT route")
	}
	if v := viewOf(day, 30); v != nil {
		t.Errorf("AS30 received a NO_EXPORT route: %v", v.Path)
	}
	if v := viewOf(day, 40); v != nil {
		t.Errorf("AS40 received a NO_EXPORT route: %v", v.Path)
	}
}

func TestIngressTagging(t *testing.T) {
	plan := planWith(
		dict.Def{Value: 500, Sub: dict.SubLocation, City: 1, Region: 1},
		dict.Def{Value: 800, Sub: dict.SubRelationship, Rel: topology.RelCustomer},
	)
	topo := handTopo(plan)
	cfg := semCfg()
	cfg.ActionUseProb = 0
	sim := New(topo, cfg)
	day := sim.RunDay(0)

	// AS10 learns from customer AS20 at city 1: it must tag both the
	// location and the relationship community, visible downstream at 30.
	v30 := viewOf(day, 30)
	if v30 == nil {
		t.Fatal("AS30 has no route")
	}
	if !hasComm(v30.Comms, 10, 500) {
		t.Errorf("missing location tag: %v", v30.Comms)
	}
	if !hasComm(v30.Comms, 10, 800) {
		t.Errorf("missing relationship tag: %v", v30.Comms)
	}
}

func TestBlackholeAbsorbed(t *testing.T) {
	plan := planWith(dict.Def{Value: 666, Sub: dict.SubBlackhole})
	topo := handTopo(plan)
	cfg := semCfg()
	cfg.ActionUseProb = 0
	cfg.BlackholeProb = 1.0
	sim := New(topo, cfg)
	day := sim.RunDay(0)

	// The blackhole /32 exists (prefix count grew) and reaches AS10, but
	// AS10 must not re-export it.
	var bh bgp.Prefix
	found := false
	for _, v := range day.Views {
		if v.Prefix.Bits() == 32 {
			bh = v.Prefix
			found = true
		}
	}
	if !found {
		t.Fatal("no blackhole /32 observed anywhere")
	}
	for _, v := range day.Views {
		if v.Prefix != bh {
			continue
		}
		if v.VP != 10 && v.VP != 20 {
			t.Errorf("blackholed /32 escaped to AS%d via %v", v.VP, v.Path)
		}
	}
}

func TestLocalPrefActionChangesSelection(t *testing.T) {
	// The origin sets AS10's region-scoped "local-pref 50 in region 1"
	// community. AS20 multihomes to AS30 as well, so AS10 sees the route
	// twice: from its customer AS20 at city 1 (region 1 — depreferenced
	// to 50) and from its peer AS30 at city 3 (region 2 — default 100).
	// The peer route must win selection at AS10, the classic
	// customer-driven backup-link setup.
	plan := planWith(dict.Def{Value: 50, Sub: dict.SubSetAttribute, HasLocalPref: true, LocalPref: 50, TargetRegion: 1})
	topo := handTopo(plan)
	a10, a20, a30 := topo.ASes[10], topo.ASes[20], topo.ASes[30]
	a30.Customers = append(a30.Customers, 20)
	a20.Providers = append(a20.Providers, 30)
	a30.LinkCity[20] = 1
	a20.LinkCity[30] = 1
	// Move the 10-30 peering session to region 2.
	a10.LinkCity[30] = 3
	a30.LinkCity[10] = 3

	sim := New(topo, semCfg())
	day := sim.RunDay(0)
	v10 := viewOf(day, 10)
	if v10 == nil {
		t.Fatal("AS10 has no route")
	}
	// Without the local-pref community AS10 would use its direct
	// customer route [10 20]; with it, the peer route via AS30 wins.
	if len(v10.Path) < 2 || v10.Path[1] != 30 {
		t.Fatalf("AS10 path = %v; region-scoped local-pref action not honored", v10.Path)
	}
}

func hasComm(comms bgp.Communities, asn, val uint16) bool {
	return comms.Has(bgp.NewCommunity(asn, val))
}

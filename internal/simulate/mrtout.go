package simulate

import (
	"fmt"
	"io"
	"math/rand"
	"net/netip"

	"bgpintent/internal/bgp"
	"bgpintent/internal/mrt"
)

// CollectorOf returns the collector index a vantage point feeds
// (round-robin assignment), or -1 for non-VP ASNs.
func (s *Simulator) CollectorOf(vp uint32) int {
	for i, v := range s.vps {
		if v == vp {
			return i % s.cfg.Collectors
		}
	}
	return -1
}

// CollectorVPs returns the vantage points feeding one collector.
func (s *Simulator) CollectorVPs(collector int) []uint32 {
	var out []uint32
	for i, v := range s.vps {
		if i%s.cfg.Collectors == collector {
			out = append(out, v)
		}
	}
	return out
}

// vpAddr synthesizes a stable session address for the i-th vantage point
// of a collector.
func vpAddr(collector, i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(collector + 1), byte(i >> 8), byte(i)})
}

// collectorAddr is the collector-side session address.
func collectorAddr(collector int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(collector + 1), 255, 254})
}

// peerTable builds the TABLE_DUMP_V2 PEER_INDEX_TABLE for a collector.
func (s *Simulator) peerTable(collector int) (*mrt.PeerIndexTable, map[uint32]uint16) {
	vps := s.CollectorVPs(collector)
	table := &mrt.PeerIndexTable{
		CollectorBGPID: collectorAddr(collector),
		ViewName:       fmt.Sprintf("rc%02d", collector),
	}
	idx := make(map[uint32]uint16, len(vps))
	for i, vp := range vps {
		idx[vp] = uint16(i)
		table.Peers = append(table.Peers, mrt.Peer{
			BGPID: vpAddr(collector, i),
			Addr:  vpAddr(collector, i),
			ASN:   vp,
		})
	}
	return table, idx
}

// viewAttrs converts a view into BGP path attributes.
func viewAttrs(v *View, nextHop netip.Addr) bgp.PathAttributes {
	return bgp.PathAttributes{
		HasOrigin:        true,
		Origin:           bgp.OriginIGP,
		ASPath:           bgp.NewASPath(v.Path...),
		HasNextHop:       true,
		NextHop:          nextHop,
		Communities:      v.Comms,
		LargeCommunities: v.LargeComms,
	}
}

// WriteRIB writes one collector's TABLE_DUMP_V2 snapshot of a day's
// views, the analogue of a RouteViews rib file.
func (s *Simulator) WriteRIB(w io.Writer, timestamp uint32, collector int, day *DayResult) error {
	table, idx := s.peerTable(collector)
	tw, err := mrt.NewTableDumpWriter(w, timestamp, table)
	if err != nil {
		return err
	}
	// Views arrive prefix-major from RunDay; emit one RIB record per
	// contiguous prefix run.
	var cur bgp.Prefix
	var entries []mrt.RIBEntry
	flush := func() error {
		if len(entries) == 0 {
			return nil
		}
		err := tw.WriteRIB(cur, entries)
		entries = nil
		return err
	}
	for i := range day.Views {
		v := &day.Views[i]
		pi, ok := idx[v.VP]
		if !ok {
			continue
		}
		if v.Prefix != cur {
			if err := flush(); err != nil {
				return err
			}
			cur = v.Prefix
		}
		entries = append(entries, mrt.RIBEntry{
			PeerIndex:      pi,
			OriginatedTime: timestamp,
			Attrs:          viewAttrs(v, vpAddr(collector, int(pi))),
		})
	}
	if err := flush(); err != nil {
		return err
	}
	return tw.Flush()
}

// WriteUpdates writes a BGP4MP updates file for one collector: a sample
// of the day's routes re-announced (some preceded by a withdrawal),
// modeling the churn in RouteViews updates archives. frac selects the
// announcement sample.
func (s *Simulator) WriteUpdates(w io.Writer, tsBase uint32, collector int, day *DayResult, frac float64) error {
	_, idx := s.peerTable(collector)
	uw := mrt.NewUpdateWriter(w)
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ int64(day.Day)<<8 ^ int64(collector)))
	ts := tsBase
	for i := range day.Views {
		v := &day.Views[i]
		pi, ok := idx[v.VP]
		if !ok || rng.Float64() >= frac {
			continue
		}
		ts += uint32(rng.Intn(3))
		peerAddr := vpAddr(collector, int(pi))
		if rng.Float64() < 0.2 {
			withdraw := &bgp.UpdateMessage{Withdrawn: []bgp.Prefix{v.Prefix}}
			if err := uw.WriteUpdate(ts, v.VP, 0, peerAddr, collectorAddr(collector), withdraw); err != nil {
				return err
			}
		}
		attrs := viewAttrs(v, peerAddr)
		msg := &bgp.UpdateMessage{Attrs: attrs, NLRI: []bgp.Prefix{v.Prefix}}
		if err := uw.WriteUpdate(ts, v.VP, 0, peerAddr, collectorAddr(collector), msg); err != nil {
			return err
		}
	}
	return uw.Flush()
}

// Collectors returns the number of collectors.
func (s *Simulator) Collectors() int { return s.cfg.Collectors }

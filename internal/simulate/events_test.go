package simulate

import (
	"reflect"
	"testing"
	"time"

	"bgpintent/internal/bgp"
)

func TestParseScriptRoundTrip(t *testing.T) {
	in := "spike:65010:666@26h+1h#600; strip:174@30h+2h; flap:65010:20@34h+6h#4x300"
	sc, err := ParseScript(in)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if len(sc.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(sc.Events))
	}
	e := sc.Events[0]
	if e.Kind != EventSpike || e.Community != bgp.NewCommunity(65010, 666) ||
		e.At != 26*time.Hour || e.Duration != time.Hour || e.Count != 600 {
		t.Errorf("spike parsed wrong: %+v", e)
	}
	e = sc.Events[1]
	if e.Kind != EventStrip || e.ASN != 174 || e.At != 30*time.Hour || e.Duration != 2*time.Hour {
		t.Errorf("strip parsed wrong: %+v", e)
	}
	e = sc.Events[2]
	if e.Kind != EventFlap || e.Cycles != 4 || e.Count != 300 {
		t.Errorf("flap parsed wrong: %+v", e)
	}
	// Round-trip through String.
	sc2, err := ParseScript(sc.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sc.String(), err)
	}
	if !reflect.DeepEqual(sc, sc2) {
		t.Errorf("round trip changed script: %v vs %v", sc, sc2)
	}
}

func TestParseScriptRejects(t *testing.T) {
	for _, bad := range []string{
		"spike:65010:666@26h+1h",      // missing count
		"strip:174@30h+2h#5",          // strip takes no count
		"flap:65010:20@34h+6h#4",      // missing xCount
		"tremble:65010:20@34h+6h#4x2", // unknown kind
		"spike:65010:666@-1h+1h#10",   // negative at
		"strip:0@1h+1h",               // zero ASN
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) accepted, want error", bad)
		}
	}
}

// eventViews builds a tiny fixed day: four views, two of which pass
// through AS 2001 beyond the vantage point.
func eventViews() []View {
	return []View{
		{VP: 10, Path: []uint32{10, 2001, 30}, Comms: bgp.Communities{bgp.NewCommunity(2001, 100)}},
		{VP: 11, Path: []uint32{11, 40, 30}, Comms: bgp.Communities{bgp.NewCommunity(40, 100)}},
		{VP: 10, Path: []uint32{10, 2001, 50}, Comms: bgp.Communities{bgp.NewCommunity(2001, 100)}},
		{VP: 11, Path: []uint32{11, 60}, Comms: nil},
	}
}

func TestApplyStrip(t *testing.T) {
	views := eventViews()
	sc := &Script{Events: []Event{{Kind: EventStrip, ASN: 2001, At: 0, Duration: 12 * time.Hour}}}
	out := sc.Apply(0, 24*time.Hour, views)
	if len(out) != len(views) {
		t.Fatalf("strip changed view count: %d vs %d", len(out), len(views))
	}
	// Views 0 and 1 fall in [0, 12h); view 0 goes through 2001 and must
	// lose its communities, view 1 must keep them. Views 2..3 are after
	// the window and keep theirs.
	if out[0].View.Comms != nil {
		t.Errorf("view through stripping AS kept communities: %v", out[0].View.Comms)
	}
	if len(out[1].View.Comms) != 1 {
		t.Errorf("unaffected view lost communities")
	}
	if len(out[2].View.Comms) != 1 {
		t.Errorf("view outside window lost communities")
	}
	// The input must be untouched.
	if len(views[0].Comms) != 1 {
		t.Errorf("Apply modified its input")
	}
}

func TestApplySpikeInjects(t *testing.T) {
	views := eventViews()
	c := bgp.NewCommunity(40, 666)
	sc := &Script{Events: []Event{{Kind: EventSpike, Community: c, At: 6 * time.Hour, Duration: time.Hour, Count: 10}}}
	out := sc.Apply(0, 24*time.Hour, views)
	if len(out) != len(views)+10 {
		t.Fatalf("got %d timed views, want %d", len(out), len(views)+10)
	}
	injected := 0
	for i := 1; i < len(out); i++ {
		if out[i].At < out[i-1].At {
			t.Fatalf("output not sorted at %d", i)
		}
	}
	for _, tv := range out {
		if tv.View.Comms.Has(c) {
			injected++
			off := tv.At
			if off < 6*time.Hour || off >= 7*time.Hour {
				t.Errorf("injected view outside event window: %v", off)
			}
			if pathThrough(tv.View.Path, uint32(c.ASN())) || tv.View.Path[0] == uint32(c.ASN()) {
				t.Errorf("injected view rides a path through the community's α: %v", tv.View.Path)
			}
		}
	}
	if injected != 10 {
		t.Errorf("found %d injected views, want 10", injected)
	}
	// Determinism: a second application is identical.
	out2 := sc.Apply(0, 24*time.Hour, eventViews())
	if !reflect.DeepEqual(out, out2) {
		t.Errorf("Apply is not deterministic")
	}
}

func TestApplyFlapPhases(t *testing.T) {
	views := eventViews()
	c := bgp.NewCommunity(40, 20)
	sc := &Script{Events: []Event{{Kind: EventFlap, Community: c, At: 0, Duration: 8 * time.Hour, Cycles: 2, Count: 4}}}
	out := sc.Apply(0, 24*time.Hour, views)
	// 2 cycles x 4 updates; on-phases are [0,2h) and [4h,6h).
	var offs []time.Duration
	for _, tv := range out {
		if tv.View.Comms.Has(c) {
			offs = append(offs, tv.At)
		}
	}
	if len(offs) != 8 {
		t.Fatalf("got %d injected flap views, want 8", len(offs))
	}
	for _, off := range offs {
		inOn := (off >= 0 && off < 2*time.Hour) || (off >= 4*time.Hour && off < 6*time.Hour)
		if !inOn {
			t.Errorf("flap view at %v is outside every on-phase", off)
		}
	}
}

func TestApplySpansDays(t *testing.T) {
	views := eventViews()
	// Event fully inside day 1: day 0 must be untouched, day 1 perturbed.
	sc := &Script{Events: []Event{{Kind: EventSpike, Community: bgp.NewCommunity(40, 666), At: 30 * time.Hour, Duration: time.Hour, Count: 5}}}
	if sc.Affects(0, 24*time.Hour) {
		t.Errorf("script claims to affect day 0")
	}
	if !sc.Affects(24*time.Hour, 48*time.Hour) {
		t.Errorf("script misses day 1")
	}
	day0 := sc.Apply(0, 24*time.Hour, views)
	if len(day0) != len(views) {
		t.Errorf("day 0 gained views: %d", len(day0))
	}
	day1 := sc.Apply(24*time.Hour, 24*time.Hour, views)
	if len(day1) != len(views)+5 {
		t.Errorf("day 1 has %d views, want %d", len(day1), len(views)+5)
	}
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bgpintent"
	"bgpintent/internal/bgp"
	"bgpintent/internal/obs"
)

// Builder produces a fresh classification result; the server calls it
// once at startup and again on every reload (SIGHUP or
// POST /v1/admin/reload). It runs outside the request read path — a
// slow build delays only the swap, never a query. The returned source
// string describes provenance for /v1/stats.
type Builder func(ctx context.Context) (res *bgpintent.Result, info bgpintent.SnapshotInfo, source string, err error)

// maxAnnotateBody bounds the POST /v1/annotate request body.
const maxAnnotateBody = 4 << 20

// maxAnnotateItems bounds how many communities one annotate call may
// resolve, counting tuple members.
const maxAnnotateItems = 65536

// endpointNames are the instrumented endpoint keys in /v1/metrics and
// the endpoint label values at /metrics.
var endpointNames = []string{"community", "annotate", "as", "stats", "metrics", "prometheus", "reload", "health", "snapshot", "anomalies"}

// Server is the intentd HTTP core: an atomic current snapshot, a
// builder to replace it, and the instrumented mux.
type Server struct {
	snap    atomic.Pointer[Snapshot]
	gen     atomic.Uint64
	builder Builder
	metrics *Metrics
	cache   *responseCache
	logf    func(format string, args ...any)
	mux     *http.ServeMux

	// feed, when set, switches /v1/health to live-feed reporting; set
	// once via SetFeed before serving.
	feed HealthSource

	// anoms, when set, enables GET /v1/anomalies and the anomaly health
	// block; set once via SetAnomalies before serving. anomCache holds
	// its rendered bodies, separate from the snapshot-keyed cache.
	anoms     AnomalySource
	anomCache *responseCache

	// replica, when set, adds poll provenance to /v1/health and
	// /metrics; set once via SetReplica before serving.
	replica *Replica

	// snapshotFile, when non-empty, is published at GET /v1/snapshot so
	// replicas can poll this instance directly; set once via
	// SetSnapshotFile before serving.
	snapshotFile string

	// reloadMu serializes builds: concurrent reload requests queue
	// rather than racing to install snapshots out of order. Readers
	// never touch it.
	reloadMu sync.Mutex

	// reloadDisabled, when non-nil, rejects Reload with its reason —
	// live mode owns snapshot installation and a builder-driven reload
	// would clobber the streamed state.
	reloadDisabled atomic.Pointer[string]
}

// ErrReloadDisabled is wrapped into Reload's error after DisableReload;
// the HTTP layer maps it to 409 Conflict.
var ErrReloadDisabled = errors.New("reload disabled")

// DisableReload makes every future Reload (HTTP or SIGHUP) fail with
// ErrReloadDisabled and the given reason, without touching the served
// snapshot. Used in live mode, where the feed Ingestor owns snapshot
// installation via Install.
func (s *Server) DisableReload(reason string) {
	s.reloadDisabled.Store(&reason)
}

// New constructs a server and installs its first snapshot by running
// the builder. logf receives operational log lines; nil means
// log.Printf.
func New(ctx context.Context, builder Builder, logf func(string, ...any)) (*Server, error) {
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		builder:   builder,
		metrics:   newMetrics(endpointNames),
		cache:     newResponseCache(),
		anomCache: newResponseCache(),
		logf:      logf,
	}
	s.metrics.registerCache(func() int { return s.cache.len() + s.anomCache.len() })
	if _, err := s.Reload(ctx); err != nil {
		return nil, err
	}
	// The reload counter should not count the initial build the
	// constructor already turned into an error.
	s.metrics.reloads.Set(0)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/community/{comm}", s.instrument("community", s.handleCommunity))
	s.mux.HandleFunc("POST /v1/annotate", s.instrument("annotate", s.handleAnnotate))
	s.mux.HandleFunc("GET /v1/as/{asn}", s.instrument("as", s.handleAS))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /metrics", s.instrument("prometheus", s.handlePrometheus))
	s.mux.HandleFunc("POST /v1/admin/reload", s.instrument("reload", s.handleReload))
	s.mux.HandleFunc("GET /v1/health", s.instrument("health", s.handleHealth))
	s.mux.HandleFunc("GET /v1/snapshot", s.instrument("snapshot", s.handleSnapshotFile))
	s.mux.HandleFunc("GET /v1/anomalies", s.instrument("anomalies", s.handleAnomalies))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// ServeHTTP serves the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Snapshot returns the current snapshot; the result stays valid (and
// internally consistent) for as long as the caller holds it, even
// across reloads.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Reload runs the builder and atomically installs the result as the
// new current snapshot. Queries observe either the old or the new
// snapshot in full — never a mix. On error the old snapshot stays
// installed and keeps serving.
func (s *Server) Reload(ctx context.Context) (*Snapshot, error) {
	if reason := s.reloadDisabled.Load(); reason != nil {
		return nil, fmt.Errorf("%w: %s", ErrReloadDisabled, *reason)
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	start := time.Now()
	res, info, source, err := s.builder(ctx)
	if err != nil {
		s.metrics.reloadErrors.Add(1)
		s.logf("reload failed (still serving %v): %v", s.snap.Load(), err)
		return nil, err
	}
	snap := NewSnapshot(s.gen.Add(1), res, info, source, time.Since(start))
	s.snap.Store(snap)
	s.metrics.reloads.Add(1)
	s.metrics.setSnapshot(snap)
	s.logf("installed snapshot %v in %v", snap, snap.BuildDuration.Round(time.Millisecond))
	return snap, nil
}

// Install atomically swaps in a snapshot built outside the builder —
// the live-mode path, where the stream Ingestor produces results and
// the builder never runs again. Queries observe either the old or the
// new snapshot in full, exactly as with Reload.
func (s *Server) Install(res *bgpintent.Result, info bgpintent.SnapshotInfo, source string, buildDuration time.Duration) *Snapshot {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	snap := NewSnapshot(s.gen.Add(1), res, info, source, buildDuration)
	s.snap.Store(snap)
	s.metrics.setSnapshot(snap)
	return snap
}

// instrument wraps a handler with the per-endpoint counters.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &countingWriter{ResponseWriter: w}
		h(cw, r)
		em.observe(time.Since(start), cw.status >= 400)
	}
}

// countingWriter records the response status for the error counters.
type countingWriter struct {
	http.ResponseWriter
	status int
}

func (c *countingWriter) WriteHeader(status int) {
	c.status = status
	c.ResponseWriter.WriteHeader(status)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// ClusterJSON is a cluster as rendered in responses. The numeric
// fields are wide enough for large-community clusters; classic
// clusters render identically to the historical uint16 shape. Fn is
// only present on large clusters.
type ClusterJSON struct {
	ASN         uint32  `json:"asn"`
	Lo          uint32  `json:"lo"`
	Hi          uint32  `json:"hi"`
	Category    string  `json:"category"`
	Size        int     `json:"size"`
	OnPath      int     `json:"on_path"`
	OffPath     int     `json:"off_path"`
	PureOnPath  bool    `json:"pure_on_path"`
	PureOffPath bool    `json:"pure_off_path"`
	Ratio       float64 `json:"ratio"`
	Fn          *uint32 `json:"fn,omitempty"`
}

func clusterJSON(cl *bgpintent.Cluster) *ClusterJSON {
	if cl == nil {
		return nil
	}
	return &ClusterJSON{
		ASN: uint32(cl.ASN), Lo: uint32(cl.Lo), Hi: uint32(cl.Hi), Category: cl.Category.String(),
		Size: cl.Size, OnPath: cl.OnPath, OffPath: cl.OffPath,
		PureOnPath: cl.PureOnPath, PureOffPath: cl.PureOffPath, Ratio: cl.Ratio,
	}
}

func largeClusterJSON(cl *bgpintent.LargeCluster) *ClusterJSON {
	if cl == nil {
		return nil
	}
	fn := cl.Fn
	return &ClusterJSON{
		ASN: cl.ASN, Lo: cl.Lo, Hi: cl.Hi, Category: cl.Category.String(),
		Size: cl.Size, OnPath: cl.OnPath, OffPath: cl.OffPath,
		PureOnPath: cl.PureOnPath, PureOffPath: cl.PureOffPath, Ratio: cl.Ratio,
		Fn: &fn,
	}
}

// Annotation is one community verdict as rendered in responses.
type Annotation struct {
	Community string `json:"community"`
	// Kind is "classic" for α:β communities, "large" for RFC 8092
	// α:fn:value ones.
	Kind      string       `json:"kind"`
	Observed  bool         `json:"observed"`
	Category  string       `json:"category"`
	OnPath    int          `json:"on_path"`
	OffPath   int          `json:"off_path"`
	Reason    string       `json:"exclude_reason,omitempty"`
	Cluster   *ClusterJSON `json:"cluster,omitempty"`
	// OnThisPath reports whether the community's α appears in the AS
	// path supplied with a tuple annotation; null for bare communities.
	OnThisPath *bool `json:"on_this_path,omitempty"`
}

func annotate(snap *Snapshot, c bgp.Community) Annotation {
	return annotateKey(snap, bgpintent.ClassicKey(c.ASN(), c.Value()))
}

func annotateLarge(snap *Snapshot, lc bgp.LargeCommunity) Annotation {
	return annotateKey(snap, bgpintent.LargeKey(lc.GlobalAdmin, lc.LocalData1, lc.LocalData2))
}

// annotateKey answers one verdict for a community of either kind.
func annotateKey(snap *Snapshot, k bgpintent.CommunityKey) Annotation {
	l := snap.LookupKey(k)
	a := Annotation{
		Community: l.Key.String(),
		Kind:      l.Key.Kind().String(),
		Observed:  l.Observed,
		Category:  l.Category.String(),
		OnPath:    l.OnPath,
		OffPath:   l.OffPath,
		Reason:    string(l.Reason),
	}
	if l.Cluster != nil {
		a.Cluster = clusterJSON(l.Cluster)
	} else if l.LargeCluster != nil {
		a.Cluster = largeClusterJSON(l.LargeCluster)
	}
	return a
}

// communityResponse is the GET /v1/community/{comm} body.
type communityResponse struct {
	Annotation
	Generation uint64 `json:"generation"`
}

func (s *Server) handleCommunity(w http.ResponseWriter, r *http.Request) {
	k, err := bgpintent.ParseCommunityKey(r.PathValue("comm"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad community: %v", err)
		return
	}
	// One snapshot load; everything below answers from it, so the
	// response is internally consistent even mid-reload. Hot keys come
	// straight out of the generation-keyed body cache.
	snap := s.Snapshot()
	s.serveCached(w, snap, r.URL.Path, func() any {
		return communityResponse{
			Annotation: annotateKey(snap, k),
			Generation: snap.Gen,
		}
	})
}

// AnnotateTuple is one (AS path, communities) input of POST
// /v1/annotate, in looking-glass notation.
type AnnotateTuple struct {
	// Path is the AS path, e.g. "701 2914 3356"; optional. When given,
	// each annotation also reports whether its α is on this path.
	Path string `json:"path,omitempty"`
	// Communities is the attached community set, e.g. "2914:3075 2914:420".
	Communities string `json:"communities"`
}

// annotateRequest is the POST /v1/annotate body.
type annotateRequest struct {
	// Communities are bare communities to annotate.
	Communities []string `json:"communities,omitempty"`
	// Tuples are full route observations to annotate member by member.
	Tuples []AnnotateTuple `json:"tuples,omitempty"`
}

// annotateTupleResponse annotates one input tuple.
type annotateTupleResponse struct {
	Path        string       `json:"path,omitempty"`
	Annotations []Annotation `json:"annotations"`
}

// annotateResponse is the POST /v1/annotate response body.
type annotateResponse struct {
	Generation  uint64                  `json:"generation"`
	Annotations []Annotation            `json:"annotations,omitempty"`
	Tuples      []annotateTupleResponse `json:"tuples,omitempty"`
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req annotateRequest
	body := io.LimitReader(r.Body, maxAnnotateBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Communities) == 0 && len(req.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, "empty request: give communities and/or tuples")
		return
	}

	snap := s.Snapshot()
	resp := annotateResponse{Generation: snap.Gen}
	items := 0
	budget := func(n int) bool {
		items += n
		return items <= maxAnnotateItems
	}

	for i, cs := range req.Communities {
		k, err := bgpintent.ParseCommunityKey(cs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "communities[%d]: %v", i, err)
			return
		}
		if !budget(1) {
			writeError(w, http.StatusRequestEntityTooLarge, "more than %d communities in one request", maxAnnotateItems)
			return
		}
		resp.Annotations = append(resp.Annotations, annotateKey(snap, k))
	}

	for i, tup := range req.Tuples {
		comms, lcomms, err := bgp.ParseCommunities(tup.Communities)
		if err != nil {
			writeError(w, http.StatusBadRequest, "tuples[%d].communities: %v", i, err)
			return
		}
		if !budget(len(comms) + len(lcomms)) {
			writeError(w, http.StatusRequestEntityTooLarge, "more than %d communities in one request", maxAnnotateItems)
			return
		}
		tr := annotateTupleResponse{Path: tup.Path}
		var path bgp.ASPath
		havePath := tup.Path != ""
		if havePath {
			if path, err = bgp.ParseASPath(tup.Path); err != nil {
				writeError(w, http.StatusBadRequest, "tuples[%d].path: %v", i, err)
				return
			}
		}
		for _, c := range comms {
			a := annotate(snap, c)
			if havePath {
				on := path.Contains(uint32(c.ASN()))
				a.OnThisPath = &on
			}
			tr.Annotations = append(tr.Annotations, a)
		}
		for _, lc := range lcomms {
			a := annotateLarge(snap, lc)
			if havePath {
				on := path.Contains(lc.GlobalAdmin)
				a.OnThisPath = &on
			}
			tr.Annotations = append(tr.Annotations, a)
		}
		resp.Tuples = append(resp.Tuples, tr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// asResponse is the GET /v1/as/{asn} body.
type asResponse struct {
	ASN        uint16        `json:"asn"`
	Clusters   []ClusterJSON `json:"clusters"`
	Generation uint64        `json:"generation"`
}

func (s *Server) handleAS(w http.ResponseWriter, r *http.Request) {
	asn64, err := strconv.ParseUint(r.PathValue("asn"), 10, 16)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad asn: %v", err)
		return
	}
	snap := s.Snapshot()
	s.serveCached(w, snap, r.URL.Path, func() any {
		resp := asResponse{ASN: uint16(asn64), Generation: snap.Gen, Clusters: []ClusterJSON{}}
		for _, cl := range snap.ClustersFor(uint16(asn64)) {
			resp.Clusters = append(resp.Clusters, *clusterJSON(&cl))
		}
		return resp
	})
}

// statsResponse is the GET /v1/stats body.
type statsResponse struct {
	Generation    uint64  `json:"generation"`
	Source        string  `json:"source"`
	BuiltAt       string  `json:"built_at"`
	BuildSeconds  float64 `json:"build_seconds"`
	CorpusCreated string  `json:"corpus_created"`

	Tuples           int `json:"tuples"`
	Paths            int `json:"paths"`
	VantagePoints    int `json:"vantage_points"`
	Communities      int `json:"communities"`
	LargeCommunities int `json:"large_communities"`

	Action      int `json:"action"`
	Information int `json:"information"`
	Excluded    int `json:"excluded"`
	Clusters    int `json:"clusters"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	s.serveCached(w, snap, r.URL.Path, func() any { return s.statsFor(snap) })
}

func (s *Server) statsFor(snap *Snapshot) statsResponse {
	return statsResponse{
		Generation:       snap.Gen,
		Source:           snap.Source,
		BuiltAt:          snap.BuiltAt.UTC().Format(time.RFC3339),
		BuildSeconds:     snap.BuildDuration.Seconds(),
		CorpusCreated:    snap.Info.Created.UTC().Format(time.RFC3339),
		Tuples:           snap.Info.Tuples,
		Paths:            snap.Info.Paths,
		VantagePoints:    snap.Info.VantagePoints,
		Communities:      snap.Info.Communities,
		LargeCommunities: snap.Info.LargeCommunities,
		Action:           snap.action,
		Information:      snap.information,
		Excluded:         snap.excluded,
		Clusters:         snap.clusters,
	}
}

// SetSnapshotFile publishes the snapshot file at GET /v1/snapshot, so
// replica instances can poll this one directly (one writer, N mmap
// replicas sharing the page cache). Call at most once, before serving.
func (s *Server) SetSnapshotFile(path string) { s.snapshotFile = path }

// handleSnapshotFile streams the published snapshot file with an ETag
// derived from (mtime, size), so replica polls short-circuit to 304
// until the file is replaced.
func (s *Server) handleSnapshotFile(w http.ResponseWriter, r *http.Request) {
	if s.snapshotFile == "" {
		writeError(w, http.StatusNotFound, "no snapshot file published (start with -snapshot, or point replicas at the origin)")
		return
	}
	f, err := os.Open(s.snapshotFile)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "open snapshot: %v", err)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "stat snapshot: %v", err)
		return
	}
	w.Header().Set("ETag", fmt.Sprintf(`"%x-%x"`, st.ModTime().UnixNano(), st.Size()))
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, "", st.ModTime(), f)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.Snapshot().Gen))
}

// handlePrometheus serves the registry in the Prometheus text
// exposition format — the scrape target backing GET /metrics.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	s.metrics.reg.WritePrometheus(w) //nolint:errcheck // the connection is gone; nothing to do
}

// reloadResponse is the POST /v1/admin/reload body.
type reloadResponse struct {
	Generation   uint64  `json:"generation"`
	Source       string  `json:"source"`
	BuildSeconds float64 `json:"build_seconds"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Reload(r.Context())
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrReloadDisabled) {
			status = http.StatusConflict
		}
		writeError(w, status, "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{
		Generation:   snap.Gen,
		Source:       snap.Source,
		BuildSeconds: snap.BuildDuration.Seconds(),
	})
}

// ServeConfig configures ListenAndServe.
type ServeConfig struct {
	// Addr is the listen address, e.g. ":8642" or "127.0.0.1:0".
	Addr string
	// DrainTimeout bounds connection draining at shutdown; 0 means
	// DefaultDrainTimeout.
	DrainTimeout time.Duration
	// OnListen, if set, receives the bound address before serving
	// starts (useful with port 0).
	OnListen func(addr net.Addr)

	// ReadHeaderTimeout, ReadTimeout and IdleTimeout harden the listener
	// against slow-loris clients and idle-connection pileups. 0 means
	// the package default; negative disables that timeout.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
}

// DefaultDrainTimeout is how long a shutting-down server waits for
// in-flight requests before closing their connections.
const DefaultDrainTimeout = 10 * time.Second

// Default HTTP hardening timeouts: generous for the API's small
// request bodies, strict enough that a stalled client cannot pin a
// connection (and its goroutine) indefinitely.
const (
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
)

// timeoutOrDefault resolves the 0-default / negative-disabled
// convention of ServeConfig timeouts.
func timeoutOrDefault(v, def time.Duration) time.Duration {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return def
	default:
		return v
	}
}

// ListenAndServe runs the HTTP server until ctx is canceled, then
// shuts down gracefully: the listener closes immediately, in-flight
// requests get up to DrainTimeout to complete, and only then are
// connections torn down. Returns nil on a clean drained shutdown.
func (s *Server) ListenAndServe(ctx context.Context, cfg ServeConfig) error {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr())
	}
	drain := cfg.DrainTimeout
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}

	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: timeoutOrDefault(cfg.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		ReadTimeout:       timeoutOrDefault(cfg.ReadTimeout, DefaultReadTimeout),
		IdleTimeout:       timeoutOrDefault(cfg.IdleTimeout, DefaultIdleTimeout),
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	s.logf("shutting down, draining for up to %v", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain timeout exceeded: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	s.logf("shutdown complete")
	return nil
}

package serve

import (
	"sort"
	"sync/atomic"
	"time"
)

// endpointMetrics are the per-endpoint counters; all fields are
// atomics, so the hot path never takes a lock.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
	totalNS  atomic.Int64
	maxNS    atomic.Int64
}

func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	m.requests.Add(1)
	if failed {
		m.errors.Add(1)
	}
	ns := d.Nanoseconds()
	m.totalNS.Add(ns)
	for {
		old := m.maxNS.Load()
		if ns <= old || m.maxNS.CompareAndSwap(old, ns) {
			return
		}
	}
}

// EndpointStats is the exported view of one endpoint's counters.
type EndpointStats struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	AvgMicros float64 `json:"avg_us"`
	MaxMicros float64 `json:"max_us"`
}

// Metrics aggregates the server's operational counters, in the spirit
// of expvar: cheap atomic updates, one JSON page to scrape.
type Metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics // keys fixed at construction

	reloads      atomic.Int64
	reloadErrors atomic.Int64
}

func newMetrics(endpoints []string) *Metrics {
	m := &Metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointMetrics{}
	}
	return m
}

// endpoint returns the counters for a name registered at construction.
func (m *Metrics) endpoint(name string) *endpointMetrics {
	return m.endpoints[name]
}

// MetricsSnapshot is the scrape-time view served at /v1/metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Generation    uint64                   `json:"generation"`
	Reloads       int64                    `json:"reloads"`
	ReloadErrors  int64                    `json:"reload_errors"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

// snapshot assembles a point-in-time copy of every counter.
func (m *Metrics) snapshot(gen uint64) MetricsSnapshot {
	out := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Generation:    gen,
		Reloads:       m.reloads.Load(),
		ReloadErrors:  m.reloadErrors.Load(),
		Endpoints:     make(map[string]EndpointStats, len(m.endpoints)),
	}
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		em := m.endpoints[name]
		st := EndpointStats{
			Requests:  em.requests.Load(),
			Errors:    em.errors.Load(),
			MaxMicros: float64(em.maxNS.Load()) / 1e3,
		}
		if st.Requests > 0 {
			st.AvgMicros = float64(em.totalNS.Load()) / float64(st.Requests) / 1e3
		}
		out.Endpoints[name] = st
	}
	return out
}

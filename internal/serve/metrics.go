package serve

import (
	"sort"
	"time"

	"bgpintent/internal/obs"
)

// endpointMetrics are one endpoint's series handles into the registry;
// updates are atomic, so the hot path never takes a lock.
type endpointMetrics struct {
	requests *obs.Metric
	errors   *obs.Metric
	durTotal *obs.Metric // seconds
	durMax   *obs.Metric // seconds
}

func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	m.requests.Add(1)
	if failed {
		m.errors.Add(1)
	}
	s := d.Seconds()
	m.durTotal.Add(s)
	m.durMax.Max(s)
}

// EndpointStats is the exported view of one endpoint's counters.
type EndpointStats struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	AvgMicros float64 `json:"avg_us"`
	MaxMicros float64 `json:"max_us"`
}

// Metrics aggregates the server's operational counters on an
// obs.Registry, so one set of atomic counters backs both the
// Prometheus exposition at /metrics and the JSON view at /v1/metrics.
type Metrics struct {
	start     time.Time
	reg       *obs.Registry
	endpoints map[string]*endpointMetrics // keys fixed at construction

	reloads      *obs.Metric
	reloadErrors *obs.Metric

	cacheHits   *obs.Metric
	cacheMisses *obs.Metric

	snapGeneration   *obs.Metric
	snapBuildSeconds *obs.Metric
	snapTuples       *obs.Metric
	snapPaths        *obs.Metric
	snapCommunities  *obs.Metric
	snapClusters     *obs.Metric
	snapMmap         *obs.Metric
}

func newMetrics(endpoints []string) *Metrics {
	reg := obs.NewRegistry()
	requests := reg.CounterVec("intentd_http_requests_total",
		"HTTP requests served, by endpoint.", "endpoint")
	errors := reg.CounterVec("intentd_http_request_errors_total",
		"HTTP responses with status >= 400, by endpoint.", "endpoint")
	durTotal := reg.CounterVec("intentd_http_request_duration_seconds_total",
		"Summed request handling time in seconds, by endpoint.", "endpoint")
	durMax := reg.GaugeVec("intentd_http_request_max_duration_seconds",
		"Slowest request handling time in seconds, by endpoint.", "endpoint")

	m := &Metrics{
		start:     time.Now(),
		reg:       reg,
		endpoints: make(map[string]*endpointMetrics, len(endpoints)),
		reloads: reg.Counter("intentd_reloads_total",
			"Successful snapshot reloads since start (the initial build excluded)."),
		reloadErrors: reg.Counter("intentd_reload_errors_total",
			"Failed snapshot reloads since start."),
		snapGeneration: reg.Gauge("intentd_snapshot_generation",
			"Generation number of the currently-served snapshot."),
		snapBuildSeconds: reg.Gauge("intentd_snapshot_build_seconds",
			"Build duration of the currently-served snapshot, in seconds."),
		snapTuples: reg.Gauge("intentd_snapshot_tuples",
			"Corpus tuple count behind the currently-served snapshot."),
		snapPaths: reg.Gauge("intentd_snapshot_paths",
			"Corpus unique-AS-path count behind the currently-served snapshot."),
		snapCommunities: reg.Gauge("intentd_snapshot_communities",
			"Distinct communities observed in the currently-served snapshot's corpus."),
		snapClusters: reg.Gauge("intentd_snapshot_clusters",
			"Inferred clusters in the currently-served snapshot."),
		snapMmap: reg.Gauge("intentd_snapshot_mmap",
			"1 while the served snapshot is a zero-copy mmap view, 0 when heap-resident."),
		cacheHits: reg.Counter("intentd_response_cache_hits_total",
			"Responses answered from the pre-encoded body cache."),
		cacheMisses: reg.Counter("intentd_response_cache_misses_total",
			"Cacheable responses that had to be rendered."),
	}
	reg.GaugeFunc("intentd_uptime_seconds",
		"Seconds since the server started.", func() float64 {
			return time.Since(m.start).Seconds()
		})
	for _, e := range endpoints {
		m.endpoints[e] = &endpointMetrics{
			requests: requests.With(e),
			errors:   errors.With(e),
			durTotal: durTotal.With(e),
			durMax:   durMax.With(e),
		}
	}
	return m
}

// endpoint returns the counters for a name registered at construction.
func (m *Metrics) endpoint(name string) *endpointMetrics {
	return m.endpoints[name]
}

// setSnapshot publishes a freshly-installed snapshot's gauges.
func (m *Metrics) setSnapshot(snap *Snapshot) {
	m.snapGeneration.Set(float64(snap.Gen))
	m.snapBuildSeconds.Set(snap.BuildDuration.Seconds())
	m.snapTuples.Set(float64(snap.Info.Tuples))
	m.snapPaths.Set(float64(snap.Info.Paths))
	m.snapCommunities.Set(float64(snap.Info.Communities))
	m.snapClusters.Set(float64(snap.clusters))
	if snap.Mode == "mmap" {
		m.snapMmap.Set(1)
	} else {
		m.snapMmap.Set(0)
	}
}

// registerCache exports the response-cache occupancy gauge; scrapes
// read through fn.
func (m *Metrics) registerCache(fn func() int) {
	m.reg.GaugeFunc("intentd_response_cache_entries",
		"Pre-encoded response bodies currently cached.", func() float64 {
			return float64(fn())
		})
}

// MetricsSnapshot is the scrape-time view served at /v1/metrics — a
// JSON rendering of the same registry /metrics exposes.
type MetricsSnapshot struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Generation    uint64                   `json:"generation"`
	Reloads       int64                    `json:"reloads"`
	ReloadErrors  int64                    `json:"reload_errors"`
	CacheHits     int64                    `json:"cache_hits"`
	CacheMisses   int64                    `json:"cache_misses"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

// snapshot assembles a point-in-time copy of every counter.
func (m *Metrics) snapshot(gen uint64) MetricsSnapshot {
	out := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Generation:    gen,
		Reloads:       int64(m.reloads.Value()),
		ReloadErrors:  int64(m.reloadErrors.Value()),
		CacheHits:     int64(m.cacheHits.Value()),
		CacheMisses:   int64(m.cacheMisses.Value()),
		Endpoints:     make(map[string]EndpointStats, len(m.endpoints)),
	}
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		em := m.endpoints[name]
		st := EndpointStats{
			Requests:  int64(em.requests.Value()),
			Errors:    int64(em.errors.Value()),
			MaxMicros: em.durMax.Value() * 1e6,
		}
		if st.Requests > 0 {
			st.AvgMicros = em.durTotal.Value() / float64(st.Requests) * 1e6
		}
		out.Endpoints[name] = st
	}
	return out
}

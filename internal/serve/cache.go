package serve

import (
	"bytes"
	"encoding/json"
	"hash/maphash"
	"net/http"
	"sync"
)

// responseCache memoizes pre-encoded JSON response bodies per snapshot
// generation. Hot lookups (the same community queried over and over)
// skip both the snapshot query and the JSON re-encode and reply with a
// single buffer write. Entries are keyed by request path and stamped
// with the generation they were rendered from; a snapshot swap makes
// every cached body stale at once, and each shard drops its old
// entries lazily the first time it is touched at the new generation —
// no swap-time stop-the-world sweep.
type responseCache struct {
	seed   maphash.Seed
	shards [cacheShards]cacheShard
}

const (
	cacheShards = 16
	// cacheShardCap bounds entries per shard (~4k bodies total) so a
	// key-scanning client cannot grow the cache without limit.
	cacheShardCap = 256
)

type cacheShard struct {
	mu      sync.RWMutex
	gen     uint64
	entries map[string][]byte
}

func newResponseCache() *responseCache {
	return &responseCache{seed: maphash.MakeSeed()}
}

func (c *responseCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&(cacheShards-1)]
}

// get returns the cached body for key if it was rendered at gen. The
// hit path is a shared-lock map probe — no allocation.
func (c *responseCache) get(gen uint64, key string) ([]byte, bool) {
	sh := c.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.gen != gen {
		return nil, false
	}
	body, ok := sh.entries[key]
	return body, ok
}

// put stores a body rendered at gen, clearing the shard first if it
// still holds a previous generation. The caller must hand over an
// unshared slice.
func (c *responseCache) put(gen uint64, key string, body []byte) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.gen != gen || sh.entries == nil {
		sh.gen = gen
		sh.entries = make(map[string][]byte, 32)
	}
	if len(sh.entries) >= cacheShardCap {
		if _, exists := sh.entries[key]; !exists {
			// Evict one arbitrary entry (map iteration order); hot keys
			// repopulate on their next request, cold ones stay gone.
			for k := range sh.entries {
				delete(sh.entries, k)
				break
			}
		}
	}
	sh.entries[key] = body
}

// len counts live entries across shards (metrics only).
func (c *responseCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// encBufPool recycles the JSON encode buffers of cache-miss (and
// uncached POST) responses, so sustained load stops allocating a fresh
// buffer per request.
var encBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// encodeJSONBody renders v exactly as writeJSON does (two-space
// indent, trailing newline) into a pooled buffer, returning an
// unshared copy of the bytes.
func encodeJSONBody(v any) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		encBufPool.Put(buf)
	}()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// serveCached answers a GET endpoint from the response cache when the
// body for this path was already rendered at the current generation,
// and renders-and-caches it otherwise. build must produce the full
// response value for a cache miss.
func (s *Server) serveCached(w http.ResponseWriter, snap *Snapshot, key string, build func() any) {
	s.serveCachedIn(w, s.cache, snap.Gen, key, build)
}

// serveCachedIn is serveCached generalized over the cache instance and
// the invalidation stamp: snapshot-derived bodies stamp with the
// snapshot generation, anomaly bodies with (generation, engine stamp).
func (s *Server) serveCachedIn(w http.ResponseWriter, cache *responseCache, stamp uint64, key string, build func() any) {
	if body, ok := cache.get(stamp, key); ok {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body) //nolint:errcheck // the connection is gone; nothing to do
		return
	}
	s.metrics.cacheMisses.Add(1)
	body, err := encodeJSONBody(build())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode response: %v", err)
		return
	}
	cache.put(stamp, key, body)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // the connection is gone; nothing to do
}

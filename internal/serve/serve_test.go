package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bgpintent"
)

// testWorld is the shared fixture: one synthetic corpus classified
// under two opposite ratio thresholds, so the two results disagree on
// at least one community — the probe the consistency tests key on.
type testWorld struct {
	corpus *bgpintent.Corpus
	resA   *bgpintent.Result // threshold 1: every mixed cluster information
	resB   *bgpintent.Result // threshold ~inf: every mixed cluster action
	probe  bgpintent.Community
	catA   bgpintent.Category
	catB   bgpintent.Category

	excluded   bgpintent.Community // an observed-but-excluded community
	unobserved bgpintent.Community
}

var (
	worldOnce sync.Once
	world     *testWorld
)

func getWorld(t *testing.T) *testWorld {
	t.Helper()
	worldOnce.Do(func() {
		c, err := bgpintent.NewSyntheticCorpus(bgpintent.CorpusOptions{Small: true, Seed: 7})
		if err != nil {
			panic(err)
		}
		w := &testWorld{
			corpus: c,
			resA:   c.Classify(bgpintent.Params{MinGap: 140, RatioThreshold: 1}),
			resB:   c.Classify(bgpintent.Params{MinGap: 140, RatioThreshold: 1e9}),
		}
		for _, lc := range w.resA.Labeled() {
			if w.resB.Category(lc.Community) != lc.Category {
				w.probe = lc.Community
				w.catA = lc.Category
				w.catB = w.resB.Category(lc.Community)
				break
			}
		}
		for _, comm := range c.Communities() {
			if _, ok := w.resA.Excluded(comm); ok {
				w.excluded = comm
				break
			}
		}
		// Find a community absent from the corpus.
		seen := make(map[bgpintent.Community]bool)
		for _, comm := range c.Communities() {
			seen[comm] = true
		}
		for v := uint16(1); ; v++ {
			if cand := bgpintent.Comm(4242, v); !seen[cand] {
				w.unobserved = cand
				break
			}
		}
		world = w
	})
	if world.probe == (bgpintent.Community{}) {
		t.Fatal("no probe community disagrees between thresholds; synthetic corpus has no mixed clusters?")
	}
	if world.excluded == (bgpintent.Community{}) {
		t.Fatal("no excluded community in synthetic corpus")
	}
	return world
}

// staticBuilder always serves the given result.
func staticBuilder(w *testWorld, res *bgpintent.Result, source string) Builder {
	return func(context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
		return res, w.corpus.SnapshotInfo("synthetic-test"), source, nil
	}
}

func newTestServer(t *testing.T, b Builder) *Server {
	t.Helper()
	s, err := New(context.Background(), b, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs an in-process request and decodes the JSON body into out.
func do(t *testing.T, s *Server, method, path, body string, out any) int {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func TestCommunityEndpoint(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))

	var resp communityResponse
	if code := do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !resp.Observed || resp.Category != w.catA.String() || resp.Generation != 1 {
		t.Fatalf("probe response %+v, want observed %s gen 1", resp, w.catA)
	}
	if resp.Cluster == nil || resp.Cluster.Lo > uint32(w.probe.Value) || resp.Cluster.Hi < uint32(w.probe.Value) {
		t.Fatalf("probe cluster %+v does not span %v", resp.Cluster, w.probe)
	}
	if resp.OnPath+resp.OffPath == 0 {
		t.Fatalf("probe has no evidence: %+v", resp)
	}

	if code := do(t, s, "GET", "/v1/community/"+w.excluded.String(), "", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !resp.Observed || resp.Category != "unknown" || resp.Reason == "" || resp.Reason == "unobserved" {
		t.Fatalf("excluded response %+v, want a concrete exclude_reason", resp)
	}

	if code := do(t, s, "GET", "/v1/community/"+w.unobserved.String(), "", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Observed || resp.Reason != "unobserved" {
		t.Fatalf("unobserved response %+v", resp)
	}

	var errResp errorResponse
	if code := do(t, s, "GET", "/v1/community/nonsense", "", &errResp); code != 400 {
		t.Fatalf("bad community: status %d", code)
	}
	if code := do(t, s, "GET", "/v1/community/99999999:1", "", &errResp); code != 400 {
		t.Fatalf("oversized ASN: status %d", code)
	}
}

func TestAnnotateEndpoint(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))

	body := fmt.Sprintf(`{"communities": [%q, %q]}`, w.probe, w.unobserved)
	var resp annotateResponse
	if code := do(t, s, "POST", "/v1/annotate", body, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Annotations) != 2 {
		t.Fatalf("got %d annotations", len(resp.Annotations))
	}
	if resp.Annotations[0].Category != w.catA.String() || resp.Annotations[1].Observed {
		t.Fatalf("annotations %+v", resp.Annotations)
	}

	// Tuple form: α on / not on the supplied path.
	alpha := w.probe.ASN
	body = fmt.Sprintf(`{"tuples": [
		{"path": "65000 %d 65001", "communities": %q},
		{"path": "65000 65001", "communities": %q}
	]}`, alpha, w.probe, w.probe)
	if code := do(t, s, "POST", "/v1/annotate", body, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Tuples) != 2 {
		t.Fatalf("got %d tuples", len(resp.Tuples))
	}
	on := resp.Tuples[0].Annotations[0].OnThisPath
	off := resp.Tuples[1].Annotations[0].OnThisPath
	if on == nil || !*on || off == nil || *off {
		t.Fatalf("on_this_path: %v / %v, want true / false", on, off)
	}

	for _, bad := range []string{
		``, `{}`, `{"communities": ["nope"]}`, `not json`,
		`{"tuples": [{"path": "x y", "communities": "1:2"}]}`,
	} {
		if code := do(t, s, "POST", "/v1/annotate", bad, nil); code != 400 {
			t.Errorf("body %q: status %d, want 400", bad, code)
		}
	}
}

func TestASAndStatsEndpoints(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))

	var asResp asResponse
	if code := do(t, s, "GET", fmt.Sprintf("/v1/as/%d", w.probe.ASN), "", &asResp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(asResp.Clusters) == 0 {
		t.Fatalf("no clusters for α %d", w.probe.ASN)
	}
	found := false
	for _, cl := range asResp.Clusters {
		if cl.Lo <= uint32(w.probe.Value) && uint32(w.probe.Value) <= cl.Hi {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cluster spans the probe: %+v", asResp.Clusters)
	}
	// Unknown α: empty cluster list, not an error.
	if code := do(t, s, "GET", "/v1/as/4242", "", &asResp); code != 200 || len(asResp.Clusters) != 0 {
		t.Fatalf("unknown α: status %d clusters %v", code, asResp.Clusters)
	}
	if code := do(t, s, "GET", "/v1/as/70000", "", nil); code != 400 {
		t.Fatalf("oversized α: status %d", code)
	}

	var stats statsResponse
	if code := do(t, s, "GET", "/v1/stats", "", &stats); code != 200 {
		t.Fatalf("status %d", code)
	}
	action, info := w.resA.Counts()
	if stats.Action != action || stats.Information != info || stats.Excluded != w.resA.ExcludedCount() {
		t.Fatalf("stats %+v, want action=%d information=%d excluded=%d", stats, action, info, w.resA.ExcludedCount())
	}
	if stats.Tuples != w.corpus.Tuples() || stats.Paths != w.corpus.Paths() {
		t.Fatalf("stats corpus counters %+v", stats)
	}
	if stats.Source != "static" || stats.Generation != 1 {
		t.Fatalf("stats provenance %+v", stats)
	}
}

func TestMetricsAndReload(t *testing.T) {
	w := getWorld(t)
	n := 0
	failing := false
	builder := func(context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
		if failing {
			return nil, bgpintent.SnapshotInfo{}, "", fmt.Errorf("synthetic build failure")
		}
		n++
		res := w.resA
		if n%2 == 0 {
			res = w.resB
		}
		return res, w.corpus.SnapshotInfo("synthetic-test"), fmt.Sprintf("build-%d", n), nil
	}
	s := newTestServer(t, builder)

	var comm communityResponse
	do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &comm)
	if comm.Generation != 1 || comm.Category != w.catA.String() {
		t.Fatalf("gen 1 response %+v", comm)
	}

	var rel reloadResponse
	if code := do(t, s, "POST", "/v1/admin/reload", "", &rel); code != 200 {
		t.Fatalf("reload status %d", code)
	}
	if rel.Generation != 2 || rel.Source != "build-2" {
		t.Fatalf("reload response %+v", rel)
	}
	do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &comm)
	if comm.Generation != 2 || comm.Category != w.catB.String() {
		t.Fatalf("gen 2 response %+v, want %s", comm, w.catB)
	}

	// A failing reload keeps the old snapshot serving.
	failing = true
	if code := do(t, s, "POST", "/v1/admin/reload", "", nil); code != 500 {
		t.Fatalf("failing reload status %d", code)
	}
	do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &comm)
	if comm.Generation != 2 || comm.Category != w.catB.String() {
		t.Fatalf("post-failure response %+v, want gen 2 intact", comm)
	}

	var m MetricsSnapshot
	if code := do(t, s, "GET", "/v1/metrics", "", &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Generation != 2 || m.Reloads != 1 || m.ReloadErrors != 1 {
		t.Fatalf("metrics %+v, want gen 2, 1 reload, 1 reload error", m)
	}
	if m.Endpoints["community"].Requests != 3 || m.Endpoints["community"].Errors != 0 {
		t.Fatalf("community endpoint metrics %+v", m.Endpoints["community"])
	}
	if m.Endpoints["reload"].Requests != 2 || m.Endpoints["reload"].Errors != 1 {
		t.Fatalf("reload endpoint metrics %+v", m.Endpoints["reload"])
	}

	// The same counters expose at GET /metrics in Prometheus text form.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE intentd_http_requests_total counter",
		`intentd_http_requests_total{endpoint="community"} 3`,
		`intentd_http_requests_total{endpoint="reload"} 2`,
		`intentd_http_request_errors_total{endpoint="reload"} 1`,
		"intentd_reloads_total 1",
		"intentd_reload_errors_total 1",
		"intentd_snapshot_generation 2",
		"intentd_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics misses %q:\n%s", want, body)
		}
	}
	if snap := s.Snapshot(); !strings.Contains(body,
		fmt.Sprintf("intentd_snapshot_tuples %d", snap.Info.Tuples)) {
		t.Errorf("/metrics misses snapshot tuple gauge:\n%s", body)
	}
}

func TestListenAndServeGracefulShutdown(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))

	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- s.ListenAndServe(ctx, ServeConfig{
			Addr:         "127.0.0.1:0",
			DrainTimeout: 5 * time.Second,
			OnListen:     func(a net.Addr) { addrc <- a.String() },
		})
	}()

	addr := <-addrc
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

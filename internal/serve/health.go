package serve

import (
	"net/http"
	"time"
)

// FeedHealth is a live feed's degradation-aware health report, rendered
// at GET /v1/health and exported as Prometheus gauges. The serving
// layer never interprets it beyond display: a stale or degraded feed
// still serves the last good snapshot.
type FeedHealth struct {
	// Status is "healthy", "stale" (no fresh update within the staleness
	// budget) or "degraded" (feed abandoned; serving the last snapshot).
	Status string
	// State is the feed connection state: connecting, live, down, ended.
	State string
	// LastSeq and LastUpdate identify the freshest applied feed update.
	LastSeq    uint64
	LastUpdate time.Time
	// Staleness is the wall-clock age of LastUpdate.
	Staleness time.Duration
	// Updates, Reconnects, Snapshots are lifetime counters.
	Updates    uint64
	Reconnects uint64
	Snapshots  uint64
}

// HealthSource reports live-feed health. A server without one is in
// batch mode and always reports healthy.
type HealthSource interface {
	FeedHealth() FeedHealth
}

// SetFeed attaches a live-feed health source: /v1/health switches from
// batch to live reporting and the feed gauges appear at /metrics.
// Call at most once, before serving traffic.
func (s *Server) SetFeed(hs HealthSource) {
	s.feed = hs
	s.metrics.registerFeed(hs.FeedHealth)
}

// registerFeed exports the live-feed gauges; scrapes read through fn.
func (m *Metrics) registerFeed(fn func() FeedHealth) {
	m.reg.GaugeFunc("intentd_feed_healthy",
		"1 while the live feed is healthy, 0 when stale or degraded.", func() float64 {
			if fn().Status == "healthy" {
				return 1
			}
			return 0
		})
	m.reg.GaugeFunc("intentd_feed_connected",
		"1 while a live-feed session is established and reading.", func() float64 {
			if fn().State == "live" {
				return 1
			}
			return 0
		})
	m.reg.GaugeFunc("intentd_feed_staleness_seconds",
		"Age of the last applied feed update, in seconds.", func() float64 {
			return fn().Staleness.Seconds()
		})
	m.reg.GaugeFunc("intentd_feed_last_seq",
		"Sequence number of the last applied feed update.", func() float64 {
			return float64(fn().LastSeq)
		})
	m.reg.GaugeFunc("intentd_feed_updates_total",
		"Feed updates applied since start.", func() float64 {
			return float64(fn().Updates)
		})
	m.reg.GaugeFunc("intentd_feed_reconnects_total",
		"Feed reconnects since start.", func() float64 {
			return float64(fn().Reconnects)
		})
	m.reg.GaugeFunc("intentd_feed_snapshots_total",
		"Delta snapshots installed from the feed since start.", func() float64 {
			return float64(fn().Snapshots)
		})
}

// feedJSON renders FeedHealth in /v1/health.
type feedJSON struct {
	State            string  `json:"state"`
	LastSeq          uint64  `json:"last_seq"`
	LastUpdate       string  `json:"last_update"`
	StalenessSeconds float64 `json:"staleness_seconds"`
	Updates          uint64  `json:"updates"`
	Reconnects       uint64  `json:"reconnects"`
	Snapshots        uint64  `json:"snapshots"`
}

// snapshotProvenanceJSON says where the served snapshot came from and
// how it is held, rendered in /v1/health.
type snapshotProvenanceJSON struct {
	// Source is "local" (built in this process: classifier, snapshot
	// file, live feed) or "replica-url" (polled from an origin).
	Source string `json:"source"`
	// Mode is "mmap" (zero-copy mapped v2 snapshot) or "heap".
	Mode       string `json:"mode"`
	Generation uint64 `json:"generation"`

	// Replica-only poll provenance.
	URL                   string  `json:"url,omitempty"`
	LastPollAgeSeconds    float64 `json:"last_poll_age_seconds,omitempty"`
	LastSuccessAgeSeconds float64 `json:"last_success_age_seconds,omitempty"`
	Polls                 uint64  `json:"polls,omitempty"`
	PollErrors            uint64  `json:"poll_errors,omitempty"`
	Swaps                 uint64  `json:"swaps,omitempty"`
	LastError             string  `json:"last_error,omitempty"`
}

// healthResponse is the GET /v1/health body. The endpoint always
// answers 200: liveness belongs to /healthz, and a degraded service
// deliberately keeps serving — status reports data freshness, not
// willingness.
type healthResponse struct {
	Status     string                  `json:"status"`
	Mode       string                  `json:"mode"` // "batch", "live" or "replica"
	Generation uint64                  `json:"generation"`
	BuiltAt    string                  `json:"snapshot_built_at"`
	Snapshot   *snapshotProvenanceJSON `json:"snapshot"`
	Feed       *feedJSON               `json:"feed,omitempty"`
	Anomalies  *anomalyHealthJSON      `json:"anomalies,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	resp := healthResponse{
		Status:     "healthy",
		Mode:       "batch",
		Generation: snap.Gen,
		BuiltAt:    snap.BuiltAt.UTC().Format(time.RFC3339),
		Snapshot: &snapshotProvenanceJSON{
			Source:     "local",
			Mode:       snap.Mode,
			Generation: snap.Gen,
		},
	}
	if s.replica != nil {
		rh := s.replica.Health()
		resp.Status = rh.Status
		resp.Mode = "replica"
		resp.Snapshot.Source = "replica-url"
		resp.Snapshot.URL = rh.URL
		if !rh.LastPoll.IsZero() {
			resp.Snapshot.LastPollAgeSeconds = time.Since(rh.LastPoll).Seconds()
		}
		if !rh.LastSuccess.IsZero() {
			resp.Snapshot.LastSuccessAgeSeconds = time.Since(rh.LastSuccess).Seconds()
		}
		resp.Snapshot.Polls = rh.Polls
		resp.Snapshot.PollErrors = rh.PollErrors
		resp.Snapshot.Swaps = rh.Swaps
		resp.Snapshot.LastError = rh.LastError
	}
	if s.feed != nil {
		fh := s.feed.FeedHealth()
		resp.Status = fh.Status
		resp.Mode = "live"
		resp.Feed = &feedJSON{
			State:            fh.State,
			LastSeq:          fh.LastSeq,
			LastUpdate:       fh.LastUpdate.UTC().Format(time.RFC3339Nano),
			StalenessSeconds: fh.Staleness.Seconds(),
			Updates:          fh.Updates,
			Reconnects:       fh.Reconnects,
			Snapshots:        fh.Snapshots,
		}
	}
	if s.anoms != nil {
		resp.Anomalies = anomalyHealth(s.anoms.Health())
	}
	writeJSON(w, http.StatusOK, resp)
}

package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"bgpintent"
)

// TestConcurrentReadReload hammers GET /v1/community from many
// goroutines while snapshots swap repeatedly underneath them. The
// builder alternates between two classifications that disagree on the
// probe community, and every generation has a known expected verdict
// (odd generations serve resA, even resB) — so any torn read, i.e. a
// response whose category comes from a different snapshot than the
// generation it reports, is detected, not just data races. Run under
// -race this is the swap-safety proof the serving layer rests on.
func TestConcurrentReadReload(t *testing.T) {
	w := getWorld(t)

	builds := 0
	builder := func(context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
		builds++ // guarded by the server's reload lock
		res := w.resA
		if builds%2 == 0 {
			res = w.resB
		}
		return res, w.corpus.SnapshotInfo("synthetic-test"), "alternating", nil
	}
	s := newTestServer(t, builder)

	const (
		readers   = 8
		reloads   = 40
		perReader = 400
	)
	expected := map[bool]string{true: w.catA.String(), false: w.catB.String()}
	path := "/v1/community/" + w.probe.String()

	var failures atomic.Int64
	var wg sync.WaitGroup

	// Swapper: reload back and forth while the readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			if _, err := s.Reload(context.Background()); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				req := httptest.NewRequest("GET", path, nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d during reload churn", rec.Code)
					failures.Add(1)
					continue
				}
				var resp communityResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Errorf("bad body during reload churn: %v", err)
					failures.Add(1)
					continue
				}
				odd := resp.Generation%2 == 1
				if want := expected[odd]; resp.Category != want {
					t.Errorf("torn read: generation %d reports %q, want %q",
						resp.Generation, resp.Category, want)
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d inconsistent responses out of %d", n, readers*perReader)
	}
	if got := s.Snapshot().Gen; got != uint64(reloads)+1 {
		t.Fatalf("final generation %d, want %d", got, reloads+1)
	}
}

// TestConcurrentReloadRequests checks that overlapping admin reloads
// serialize: generations stay monotonic and every reload succeeds.
func TestConcurrentReloadRequests(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))

	const concurrent = 8
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("POST", "/v1/admin/reload", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("reload status %d", rec.Code)
			}
		}()
	}
	wg.Wait()
	if got := s.Snapshot().Gen; got != concurrent+1 {
		t.Fatalf("generation %d after %d reloads, want %d", got, concurrent, concurrent+1)
	}
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bgpintent"
)

// writeSnapFile serializes res as a flat (v2/v3) snapshot file and
// returns its path — what an origin intentd would publish at
// /v1/snapshot.
func writeSnapFile(t *testing.T, dir, name string, w *testWorld, res *bgpintent.Result) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteSnapshotFlat(f, w.corpus.SnapshotInfo("replica-test")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// snapOrigin is a fake origin: it serves whichever snapshot file is
// currently selected, with a per-file ETag, like intentd's
// /v1/snapshot endpoint.
type snapOrigin struct {
	mu   sync.Mutex
	path string
	hits atomic.Int64
}

func (o *snapOrigin) set(path string) {
	o.mu.Lock()
	o.path = path
	o.mu.Unlock()
}

func (o *snapOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o.hits.Add(1)
	o.mu.Lock()
	path := o.path
	o.mu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	etag := fmt.Sprintf("%q", path)
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	http.ServeContent(w, r, "snapshot", st.ModTime(), f)
}

// emptyBuilder is the placeholder builder replica-mode intentd uses
// before its first successful poll.
func emptyBuilder(context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
	res, info := bgpintent.EmptyResult()
	return res, info, "replica:awaiting-poll", nil
}

// TestReplicaPollAndSwap: the poller installs the origin's snapshot,
// 304s an unchanged generation, and swaps when the origin advances.
func TestReplicaPollAndSwap(t *testing.T) {
	w := getWorld(t)
	dir := t.TempDir()
	origin := &snapOrigin{}
	origin.set(writeSnapFile(t, dir, "a.snap", w, w.resA))
	ts := httptest.NewServer(origin)
	defer ts.Close()

	s := newTestServer(t, emptyBuilder)
	// A cache dir that doesn't exist yet: NewReplica must create it, or
	// every poll fails before the first byte is written.
	rep := NewReplica(s, ReplicaConfig{URL: ts.URL, CacheDir: filepath.Join(t.TempDir(), "nested", "cache")})

	swapped, err := rep.Poll(context.Background())
	if err != nil || !swapped {
		t.Fatalf("first poll: swapped=%v err=%v", swapped, err)
	}
	snap := s.Snapshot()
	if snap.Gen != 2 { // gen 1 is the awaiting-poll placeholder
		t.Fatalf("generation after first swap = %d, want 2", snap.Gen)
	}
	if got := snap.res.Category(w.probe); got != w.catA {
		t.Fatalf("probe category = %v, want %v (resA)", got, w.catA)
	}
	if snap.Mode != "mmap" {
		t.Fatalf("replica snapshot mode = %q, want mmap", snap.Mode)
	}

	// Unchanged origin: ETag gates the transfer, no swap.
	swapped, err = rep.Poll(context.Background())
	if err != nil || swapped {
		t.Fatalf("unchanged poll: swapped=%v err=%v", swapped, err)
	}
	if s.Snapshot().Gen != 2 {
		t.Fatalf("generation moved on an unchanged poll")
	}

	// Origin advances: next poll swaps to resB's verdicts.
	origin.set(writeSnapFile(t, dir, "b.snap", w, w.resB))
	swapped, err = rep.Poll(context.Background())
	if err != nil || !swapped {
		t.Fatalf("advance poll: swapped=%v err=%v", swapped, err)
	}
	if got := s.Snapshot().res.Category(w.probe); got != w.catB {
		t.Fatalf("probe category after swap = %v, want %v (resB)", got, w.catB)
	}

	h := rep.Health()
	if h.Status != "healthy" || h.Swaps != 2 || h.PollErrors != 0 {
		t.Fatalf("health = %+v, want healthy with 2 swaps", h)
	}
}

// TestReplicaReadDuringSwap hammers /v1/community while polls swap
// mmap-backed snapshots underneath — the torn-read proof for the
// replica path, meaningful under -race. Every response must be
// internally consistent: the category must match the generation the
// response reports.
func TestReplicaReadDuringSwap(t *testing.T) {
	w := getWorld(t)
	dir := t.TempDir()
	pathA := writeSnapFile(t, dir, "a.snap", w, w.resA)
	pathB := writeSnapFile(t, dir, "b.snap", w, w.resB)
	origin := &snapOrigin{}
	origin.set(pathA)
	ts := httptest.NewServer(origin)
	defer ts.Close()

	s := newTestServer(t, emptyBuilder)
	rep := NewReplica(s, ReplicaConfig{URL: ts.URL, CacheDir: t.TempDir()})
	if _, err := rep.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Generation → expected category: polls alternate A and B, and the
	// first fetch (gen 2) is A.
	expect := func(gen uint64) bgpintent.Category {
		if gen%2 == 0 {
			return w.catA
		}
		return w.catB
	}

	const readers = 8
	const swaps = 20
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			url := "/v1/community/" + w.probe.String()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp communityResponse
				if code := do(t, s, "GET", url, "", &resp); code != 200 {
					errs <- fmt.Errorf("status %d", code)
					return
				}
				if want := expect(resp.Generation); resp.Category != want.String() {
					errs <- fmt.Errorf("gen %d served %q, want %q (torn read)",
						resp.Generation, resp.Category, want)
					return
				}
			}
		}()
	}
	for i := 0; i < swaps; i++ {
		if i%2 == 0 {
			origin.set(pathB)
		} else {
			origin.set(pathA)
		}
		if swapped, err := rep.Poll(context.Background()); err != nil || !swapped {
			close(stop)
			wg.Wait()
			t.Fatalf("swap %d: swapped=%v err=%v", i, swapped, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if gen := s.Snapshot().Gen; gen != uint64(2+swaps) {
		t.Fatalf("final generation = %d, want %d", gen, 2+swaps)
	}
}

// TestReplicaUpstreamDeath: when the origin dies the replica keeps
// serving its last good snapshot and /v1/health degrades to "stale"
// without ever failing a request.
func TestReplicaUpstreamDeath(t *testing.T) {
	w := getWorld(t)
	dir := t.TempDir()
	origin := &snapOrigin{}
	origin.set(writeSnapFile(t, dir, "a.snap", w, w.resA))
	ts := httptest.NewServer(origin)

	s := newTestServer(t, emptyBuilder)
	rep := NewReplica(s, ReplicaConfig{
		URL:        ts.URL,
		CacheDir:   t.TempDir(),
		StaleAfter: time.Nanosecond, // any gap counts as stale
	})
	if _, err := rep.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}

	ts.Close() // kill the upstream
	if _, err := rep.Poll(context.Background()); err == nil {
		t.Fatal("poll against a dead origin succeeded")
	}

	// Still serving the last good snapshot.
	var resp communityResponse
	if code := do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &resp); code != 200 {
		t.Fatalf("lookup after origin death: status %d", code)
	}
	if resp.Category != w.catA.String() {
		t.Fatalf("category after origin death = %q, want %q", resp.Category, w.catA)
	}

	h := rep.Health()
	if h.Status != "stale" || h.PollErrors == 0 || h.LastError == "" {
		t.Fatalf("health after origin death = %+v, want stale with an error", h)
	}

	// /v1/health reports the degradation and the replica provenance.
	var hr struct {
		Status   string `json:"status"`
		Mode     string `json:"mode"`
		Snapshot struct {
			Source     string `json:"source"`
			Mode       string `json:"mode"`
			PollErrors uint64 `json:"poll_errors"`
			LastError  string `json:"last_error"`
		} `json:"snapshot"`
	}
	if code := do(t, s, "GET", "/v1/health", "", &hr); code != 200 {
		t.Fatalf("health status %d", code)
	}
	if hr.Status != "stale" || hr.Mode != "replica" || hr.Snapshot.Source != "replica-url" {
		t.Fatalf("health body = %+v", hr)
	}
	if hr.Snapshot.PollErrors == 0 || hr.Snapshot.LastError == "" {
		t.Fatalf("health body hides the poll failure: %+v", hr)
	}

	// A replica that never fetched anything is "degraded", not "stale".
	s2 := newTestServer(t, emptyBuilder)
	rep2 := NewReplica(s2, ReplicaConfig{URL: ts.URL, CacheDir: t.TempDir()})
	if _, err := rep2.Poll(context.Background()); err == nil {
		t.Fatal("poll against a dead origin succeeded")
	}
	if h := rep2.Health(); h.Status != "degraded" {
		t.Fatalf("never-fetched health = %+v, want degraded", h)
	}
}

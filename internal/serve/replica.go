// Replica mode: this instance serves a snapshot it polls from an
// origin (another intentd's /v1/snapshot, or any HTTP endpoint that
// serves the file) instead of building one itself. Polls are gated by
// ETag when the origin provides one and by content hash otherwise, so
// an unchanged snapshot costs a 304 (or a hash compare) and no swap.
// A fetched generation is written to the cache directory, opened with
// OpenSnapshotFile (mmap for v2), and atomically installed; the
// previous generation keeps serving every in-flight request that
// already loaded it and is unmapped only after the garbage collector
// proves no reference remains — the same drain discipline as reloads.
// When the origin dies the replica degrades gracefully: it keeps
// serving the last good mapping and reports staleness in /v1/health.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bgpintent"
)

// ReplicaConfig configures snapshot polling.
type ReplicaConfig struct {
	// URL is the snapshot endpoint, e.g. "http://origin:8642/v1/snapshot".
	URL string
	// Interval is the poll period; 0 means DefaultPollInterval.
	Interval time.Duration
	// CacheDir is where fetched snapshot files land (the mmap backing
	// store); "" means os.TempDir().
	CacheDir string
	// StaleAfter is how long without a successful poll before
	// /v1/health reports "stale"; 0 means 3×Interval (at least a
	// minute).
	StaleAfter time.Duration
	// Client overrides the HTTP client; nil means a 30s-timeout client.
	Client *http.Client
}

// DefaultPollInterval is the replica poll period when unset.
const DefaultPollInterval = 15 * time.Second

// Replica polls a snapshot URL and swaps fetched generations into its
// server. Health counters are safe for concurrent readers.
type Replica struct {
	srv *Server
	cfg ReplicaConfig

	// Poll-loop state; mu also serializes explicit Poll calls.
	mu       sync.Mutex
	etag     string
	lastSum  string
	prevPath string

	lastPollNano    atomic.Int64
	lastSuccessNano atomic.Int64
	polls           atomic.Uint64
	pollErrors      atomic.Uint64
	swaps           atomic.Uint64
	lastErr         atomic.Pointer[string]
}

// NewReplica wires a poller to srv and registers its provenance in
// /v1/health and /metrics. Call before serving traffic, then Run.
func NewReplica(srv *Server, cfg ReplicaConfig) *Replica {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultPollInterval
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = max(3*cfg.Interval, time.Minute)
	}
	if cfg.CacheDir == "" {
		cfg.CacheDir = os.TempDir()
	} else {
		// The fetched snapshot is the mmap backing store, so the cache
		// dir must exist before the first poll writes into it.
		_ = os.MkdirAll(cfg.CacheDir, 0o755)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	r := &Replica{srv: srv, cfg: cfg}
	srv.setReplica(r)
	return r
}

// setReplica attaches replica provenance to health and metrics.
func (s *Server) setReplica(r *Replica) {
	s.replica = r
	s.metrics.registerReplica(r.Health)
}

// Run polls until ctx is canceled. The first poll fires immediately.
// Poll failures never stop the loop — the replica keeps serving its
// last good snapshot and reports the error in /v1/health.
func (r *Replica) Run(ctx context.Context) error {
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		if _, err := r.Poll(ctx); err != nil && ctx.Err() != nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
	}
}

// Poll fetches the snapshot URL once and installs the result if it
// changed. Returns whether a new generation was swapped in.
func (r *Replica) Poll(ctx context.Context) (swapped bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.polls.Add(1)
	r.lastPollNano.Store(time.Now().UnixNano())
	swapped, err = r.fetch(ctx)
	if err != nil {
		r.pollErrors.Add(1)
		msg := err.Error()
		r.lastErr.Store(&msg)
		r.srv.logf("replica poll %s failed (still serving last good snapshot): %v", r.cfg.URL, err)
		return false, err
	}
	r.lastErr.Store(nil)
	r.lastSuccessNano.Store(time.Now().UnixNano())
	return swapped, nil
}

func (r *Replica) fetch(ctx context.Context) (bool, error) {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.URL, nil)
	if err != nil {
		return false, err
	}
	if r.etag != "" {
		req.Header.Set("If-None-Match", r.etag)
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return false, nil
	case http.StatusOK:
	default:
		return false, fmt.Errorf("origin returned %s", resp.Status)
	}

	f, err := os.CreateTemp(r.cfg.CacheDir, "intentd-replica-*.snap")
	if err != nil {
		return false, err
	}
	tmp := f.Name()
	h := sha256.New()
	_, err = io.Copy(f, io.TeeReader(resp.Body, h))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return false, fmt.Errorf("download snapshot: %w", err)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	if sum == r.lastSum {
		// Same bytes under a changed (or absent) ETag: generation gate.
		os.Remove(tmp)
		r.etag = resp.Header.Get("ETag")
		return false, nil
	}

	res, info, err := bgpintent.OpenSnapshotFile(tmp)
	if err != nil {
		os.Remove(tmp)
		return false, fmt.Errorf("open fetched snapshot: %w", err)
	}
	snap := r.srv.Install(res, info, "replica-url:"+r.cfg.URL, time.Since(start))
	r.swaps.Add(1)
	r.etag = resp.Header.Get("ETag")
	r.lastSum = sum
	if r.prevPath != "" {
		// The previous generation may still be mapped by in-flight
		// requests; unlinking is safe — the pages live until munmap.
		os.Remove(r.prevPath)
	}
	r.prevPath = tmp
	r.srv.logf("replica installed %v from %s (%s)", snap, r.cfg.URL, time.Since(start).Round(time.Millisecond))
	return true, nil
}

// ReplicaHealth is a point-in-time view of the poller, rendered in
// /v1/health and exported as gauges.
type ReplicaHealth struct {
	// Status is "healthy" (recent successful poll), "stale" (no success
	// within StaleAfter) or "degraded" (never fetched a snapshot).
	Status string
	URL    string
	// LastPoll/LastSuccess are zero until the first attempt/success.
	LastPoll    time.Time
	LastSuccess time.Time
	Polls       uint64
	PollErrors  uint64
	Swaps       uint64
	LastError   string
}

// Health reports the poller's current state.
func (r *Replica) Health() ReplicaHealth {
	h := ReplicaHealth{
		URL:        r.cfg.URL,
		Polls:      r.polls.Load(),
		PollErrors: r.pollErrors.Load(),
		Swaps:      r.swaps.Load(),
	}
	if n := r.lastPollNano.Load(); n != 0 {
		h.LastPoll = time.Unix(0, n)
	}
	if n := r.lastSuccessNano.Load(); n != 0 {
		h.LastSuccess = time.Unix(0, n)
	}
	if msg := r.lastErr.Load(); msg != nil {
		h.LastError = *msg
	}
	switch {
	case h.Swaps == 0:
		h.Status = "degraded"
	case h.LastSuccess.IsZero() || time.Since(h.LastSuccess) > r.cfg.StaleAfter:
		h.Status = "stale"
	default:
		h.Status = "healthy"
	}
	return h
}

// registerReplica exports the poller gauges; scrapes read through fn.
func (m *Metrics) registerReplica(fn func() ReplicaHealth) {
	m.reg.GaugeFunc("intentd_replica_healthy",
		"1 while the replica has a fresh snapshot from its origin.", func() float64 {
			if fn().Status == "healthy" {
				return 1
			}
			return 0
		})
	m.reg.GaugeFunc("intentd_replica_last_poll_age_seconds",
		"Seconds since the last poll attempt (-1 before the first).", func() float64 {
			h := fn()
			if h.LastPoll.IsZero() {
				return -1
			}
			return time.Since(h.LastPoll).Seconds()
		})
	m.reg.GaugeFunc("intentd_replica_last_success_age_seconds",
		"Seconds since the last successful poll (-1 before the first).", func() float64 {
			h := fn()
			if h.LastSuccess.IsZero() {
				return -1
			}
			return time.Since(h.LastSuccess).Seconds()
		})
	m.reg.GaugeFunc("intentd_replica_polls_total",
		"Snapshot polls attempted since start.", func() float64 {
			return float64(fn().Polls)
		})
	m.reg.GaugeFunc("intentd_replica_poll_errors_total",
		"Snapshot polls that failed since start.", func() float64 {
			return float64(fn().PollErrors)
		})
	m.reg.GaugeFunc("intentd_replica_swaps_total",
		"Snapshot generations swapped in since start.", func() float64 {
			return float64(fn().Swaps)
		})
}

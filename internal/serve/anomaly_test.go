package serve

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bgpintent/internal/anomaly"
	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
	"bgpintent/internal/stream"
)

// anomalyWorld wires a real engine (fed by hand) into a test server.
func anomalyWorld(t *testing.T) (*Server, *anomaly.Engine) {
	t.Helper()
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))

	eng := anomaly.NewEngine(anomaly.Options{BucketSpan: 10 * time.Minute, History: 16, Logf: t.Logf})
	s.SetAnomalies(engineSource{eng})
	return s, eng
}

// engineSource adapts a bare Engine (no watcher goroutine needed in
// HTTP tests) to AnomalySource.
type engineSource struct{ eng *anomaly.Engine }

func (a engineSource) Query(q anomaly.Query) anomaly.Report { return a.eng.Query(q) }
func (a engineSource) Health() anomaly.WatchHealth {
	return anomaly.WatchHealth{HealthInfo: a.eng.Health()}
}
func (a engineSource) Stamp() uint64 { return a.eng.Stamp() }

// feedSpike drives the engine through a baseline and one burst so at
// least one spike finding exists.
func feedSpike(t *testing.T, eng *anomaly.Engine) {
	t.Helper()
	c := bgp.NewCommunity(100, 666)
	eng.SetSemantics(&staticSem{c: c, cat: dict.CatAction})
	start := time.Unix(1_600_000_000, 0).UTC().Truncate(time.Hour)
	path := []uint32{10, 20, 30}
	feed := func(b, n int) {
		for i := 0; i < n; i++ {
			eng.Process(stream.Update{
				Time:  start.Add(time.Duration(b)*10*time.Minute + time.Duration(i)*time.Second),
				VP:    10,
				Path:  path,
				Comms: []bgp.Community{c},
			})
		}
	}
	for b := 0; b < 10; b++ {
		feed(b, 5)
	}
	feed(10, 200)
	feed(11, 5)
	eng.CloseUpTo(start.Add(13 * 10 * time.Minute))
}

// staticSem is a one-community InferenceSource stub; the engine only
// calls Category.
type staticSem struct {
	core.NoLargeInferences
	c   bgp.Community
	cat dict.Category
}

func (s *staticSem) Category(c bgp.Community) dict.Category {
	if c == s.c {
		return s.cat
	}
	return dict.CatUnknown
}

func (s *staticSem) Verdict(c bgp.Community) core.Verdict {
	return core.Verdict{Comm: c, Category: s.Category(c)}
}
func (s *staticSem) Observed() int                            { return 1 }
func (s *staticSem) Counts() (int, int)                       { return 1, 0 }
func (s *staticSem) ExcludedCount() int                       { return 0 }
func (s *staticSem) ClusterCount() int                        { return 0 }
func (s *staticSem) ClusterSummaryAt(int) core.ClusterSummary { panic("unused") }
func (s *staticSem) EachLabeled(fn func(bgp.Community, dict.Category) bool) {
	fn(s.c, s.cat)
}
func (s *staticSem) Options() core.Options         { return core.Options{} }
func (s *staticSem) Materialize() *core.Inferences { panic("unused") }

func TestAnomaliesEndpointDisabled(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))
	var resp errorResponse
	if code := do(t, s, "GET", "/v1/anomalies", "", &resp); code != 404 {
		t.Fatalf("status %d without SetAnomalies, want 404", code)
	}
	if !strings.Contains(resp.Error, "not enabled") {
		t.Fatalf("error %q", resp.Error)
	}
}

func TestAnomaliesEndpoint(t *testing.T) {
	s, eng := anomalyWorld(t)
	feedSpike(t, eng)

	var resp anomaliesResponse
	if code := do(t, s, "GET", "/v1/anomalies", "", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Generation != 1 || resp.SemanticsGeneration != 1 || resp.Stamp == 0 {
		t.Fatalf("provenance wrong: %+v", resp)
	}
	if len(resp.Findings) < 2 {
		t.Fatalf("want spike onset+withdrawal findings, got %+v", resp.Findings)
	}
	f := resp.Findings[0]
	if f.Detector != "spike" || f.Kind != "spike-onset" || f.Community != "100:666" ||
		f.Category != "action" || f.Generation != 1 || f.SpanSeconds != 600 {
		t.Fatalf("first finding %+v", f)
	}
	if resp.LastBucket == "" || resp.Buckets == 0 {
		t.Fatalf("bucket provenance missing: %+v", resp)
	}

	// Filters narrow, bad parameters reject.
	var one anomaliesResponse
	if code := do(t, s, "GET", "/v1/anomalies?detector=spike&limit=1", "", &one); code != 200 {
		t.Fatalf("filtered status %d", code)
	}
	if len(one.Findings) != 1 || one.Findings[0].Detector != "spike" {
		t.Fatalf("filtered findings %+v", one.Findings)
	}
	if code := do(t, s, "GET", "/v1/anomalies?detector=churn", "", &one); code != 200 || len(one.Findings) != 0 {
		t.Fatalf("churn filter: code %d findings %+v", code, one.Findings)
	}
	for _, bad := range []string{"?window=banana", "?since=banana", "?limit=-3", "?limit=x"} {
		if code := do(t, s, "GET", "/v1/anomalies"+bad, "", nil); code != 400 {
			t.Errorf("GET /v1/anomalies%s: status %d, want 400", bad, code)
		}
	}
}

func TestAnomaliesResponseCaching(t *testing.T) {
	s, eng := anomalyWorld(t)
	feedSpike(t, eng)

	hits0 := int64(s.metrics.cacheHits.Value())
	var a, b anomaliesResponse
	do(t, s, "GET", "/v1/anomalies?detector=spike", "", &a)
	do(t, s, "GET", "/v1/anomalies?detector=spike", "", &b)
	if hits := int64(s.metrics.cacheHits.Value()); hits != hits0+1 {
		t.Fatalf("second identical query: cache hits %d, want %d", hits, hits0+1)
	}
	if a.Stamp != b.Stamp {
		t.Fatalf("cached body diverged: %d vs %d", a.Stamp, b.Stamp)
	}

	// Any engine change (here: a semantics swap) invalidates.
	eng.SetSemantics(&staticSem{c: bgp.NewCommunity(100, 666), cat: dict.CatAction})
	var c anomaliesResponse
	do(t, s, "GET", "/v1/anomalies?detector=spike", "", &c)
	if c.SemanticsGeneration != 2 {
		t.Fatalf("post-swap response stale: %+v", c)
	}
}

func TestHealthAnomalyBlock(t *testing.T) {
	s, eng := anomalyWorld(t)
	feedSpike(t, eng)

	var resp struct {
		Anomalies *anomalyHealthJSON `json:"anomalies"`
	}
	if code := do(t, s, "GET", "/v1/health", "", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	h := resp.Anomalies
	if h == nil {
		t.Fatal("health lacks anomalies block")
	}
	if len(h.Detectors) != 3 || h.Updates == 0 || h.Buckets == 0 || h.Findings == 0 {
		t.Fatalf("anomaly health %+v", h)
	}
	if h.Generation != 1 || h.LastBucket == "" || h.LagSeconds <= 0 {
		t.Fatalf("anomaly provenance %+v", h)
	}
}

func TestAnomalyPrometheusMetrics(t *testing.T) {
	s, eng := anomalyWorld(t)
	feedSpike(t, eng)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	out := rec.Body.String()
	for _, want := range []string{
		"intentd_anomaly_findings_total 2",
		`intentd_anomaly_detector_findings_total{detector="spike"} 2`,
		`intentd_anomaly_detector_findings_total{detector="churn"} 0`,
		`intentd_anomaly_detector_findings_total{detector="disappearance"} 0`,
		"intentd_anomaly_updates_total 255",
		"intentd_anomaly_buckets_total 13",
		"intentd_anomaly_dropped_total 0",
		"intentd_anomaly_generation 1",
		"intentd_anomaly_lag_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition misses %q", want)
		}
	}
}

// Package serve is the query layer over the inference pipeline: a
// long-running HTTP service answering "what does community α:β mean?"
// from an immutable, atomically swappable snapshot of classifier
// output.
//
// The read path is lock-free: every request loads the current
// *Snapshot once from an atomic.Pointer and answers entirely from that
// snapshot, so a concurrent reload can never tear a response across
// two corpus generations. Reloads build the replacement snapshot in
// the background (from MRT archives or a snapshot file, via the
// caller-supplied Builder) and swap it in with a single pointer store;
// the old snapshot stays reachable — and thus alive — until the last
// in-flight request that loaded it returns, at which point the garbage
// collector reclaims it. No reader ever blocks on a writer, and no
// request ever fails because a reload is in progress.
package serve

import (
	"fmt"
	"time"

	"bgpintent"
)

// Snapshot is one immutable generation of classifier output plus the
// derived query indexes. Everything in it is read-only after Build;
// handlers may share it freely across goroutines.
type Snapshot struct {
	// Gen is the monotonically increasing snapshot generation; every
	// response reports the generation it was answered from.
	Gen uint64
	// BuiltAt is when this snapshot was installed.
	BuiltAt time.Time
	// BuildDuration is how long the builder took to produce it.
	BuildDuration time.Duration
	// Source describes where the data came from ("snapshot:<path>" or
	// "mrt:<n> files").
	Source string
	// Info carries the corpus counters recorded at classification time.
	Info bgpintent.SnapshotInfo

	// Mode says how the result is held: "mmap" when served zero-copy
	// from a mapped v2 snapshot file, "heap" otherwise.
	Mode string

	res *bgpintent.Result

	action      int
	information int
	excluded    int
	clusters    int
}

// NewSnapshot wraps a classification result into a query-ready
// snapshot. The summary counters are O(1) reads for mmap-backed
// results (precomputed in the snapshot's stats section), so installing
// a polled replica generation does not touch the full inference set.
func NewSnapshot(gen uint64, res *bgpintent.Result, info bgpintent.SnapshotInfo, source string, buildDuration time.Duration) *Snapshot {
	mode := "heap"
	if res.Mmapped() {
		mode = "mmap"
	}
	s := &Snapshot{
		Gen:           gen,
		BuiltAt:       time.Now(),
		BuildDuration: buildDuration,
		Source:        source,
		Info:          info,
		Mode:          mode,
		res:           res,
	}
	s.action, s.information = res.Counts()
	s.excluded = res.ExcludedCount()
	s.clusters = res.ClusterCount()
	return s
}

// Lookup answers one community query from this snapshot.
func (s *Snapshot) Lookup(c bgpintent.Community) bgpintent.Lookup {
	return s.res.Lookup(c)
}

// LookupKey answers one kind-aware community query (classic or large)
// from this snapshot.
func (s *Snapshot) LookupKey(k bgpintent.CommunityKey) bgpintent.KeyLookup {
	return s.res.LookupKey(k)
}

// ClustersFor returns the clusters inferred for one α, in (Lo, Hi)
// order. The returned slice is shared and must not be mutated.
func (s *Snapshot) ClustersFor(asn uint16) []bgpintent.Cluster {
	return s.res.ClustersFor(asn)
}

// String identifies the snapshot in logs.
func (s *Snapshot) String() string {
	return fmt.Sprintf("gen %d (%s: %d action, %d information, %d clusters)",
		s.Gen, s.Source, s.action, s.information, s.clusters)
}

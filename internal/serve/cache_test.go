package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"bgpintent"
)

// bodyOf fetches path in-process and returns status and raw body.
func bodyOf(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// TestResponseCacheHitAndInvalidation: repeated GETs of one key are
// answered from the pre-encoded cache with byte-identical bodies, and
// a snapshot swap (new generation) invalidates every cached body at
// once — the stale-answer hazard the generation stamp exists for.
func TestResponseCacheHitAndInvalidation(t *testing.T) {
	w := getWorld(t)
	builds := 0
	builder := func(context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
		builds++
		res := w.resA
		if builds%2 == 0 {
			res = w.resB
		}
		return res, w.corpus.SnapshotInfo("synthetic-test"), "alternating", nil
	}
	s := newTestServer(t, builder)
	url := "/v1/community/" + w.probe.String()

	hits := func() int64 { return int64(s.metrics.cacheHits.Value()) }
	misses := func() int64 { return int64(s.metrics.cacheMisses.Value()) }

	code, first := bodyOf(t, s, url)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if hits() != 0 || misses() != 1 {
		t.Fatalf("after first GET: hits=%d misses=%d, want 0/1", hits(), misses())
	}
	code, second := bodyOf(t, s, url)
	if code != 200 || second != first {
		t.Fatalf("cached body differs from rendered body (%d bytes vs %d)", len(second), len(first))
	}
	if hits() != 1 || misses() != 1 {
		t.Fatalf("after second GET: hits=%d misses=%d, want 1/1", hits(), misses())
	}
	if s.cache.len() == 0 {
		t.Fatal("cache reports no entries after a put")
	}

	// Swap the snapshot: the same path must render fresh (miss) and
	// disagree with the old body — resA and resB differ on the probe.
	if code, _ := bodyOf(t, s, "/v1/stats"); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("reload status %d: %s", rec.Code, rec.Body.String())
	}
	code, third := bodyOf(t, s, url)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if third == first {
		t.Fatal("swap did not invalidate the cached body (stale category served)")
	}
}

// TestCacheGetZeroAlloc guards the hot path: a cache hit must not
// allocate — it is the request fast path under production load.
func TestCacheGetZeroAlloc(t *testing.T) {
	c := newResponseCache()
	body := []byte(`{"k":"v"}` + "\n")
	keys := []string{"/v1/community/100:10", "/v1/community/100:9000", "/v1/stats"}
	for _, k := range keys {
		c.put(7, k, body)
	}
	var sink []byte
	if avg := testing.AllocsPerRun(200, func() {
		for _, k := range keys {
			b, ok := c.get(7, k)
			if !ok {
				panic("expected hit")
			}
			sink = b
		}
		if _, ok := c.get(6, keys[0]); ok { // stale generation misses
			panic("stale generation hit")
		}
	}); avg != 0 {
		t.Errorf("cache get allocates %.2f per run, want 0", avg)
	}
	_ = sink
}

// TestCacheEvictionBound: a key-scanning client cannot grow a shard
// past its cap.
func TestCacheEvictionBound(t *testing.T) {
	c := newResponseCache()
	body := []byte("{}\n")
	for i := 0; i < 64*cacheShardCap; i++ {
		c.put(1, "/v1/community/1:"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('a'+(i/676)%26)), body)
	}
	if n := c.len(); n > cacheShards*cacheShardCap {
		t.Fatalf("cache grew to %d entries, cap is %d", n, cacheShards*cacheShardCap)
	}
}

package serve

import (
	"net/http"
	"strconv"
	"time"

	"bgpintent/internal/anomaly"
)

// AnomalySource is the serving view of the CommunityWatch engine: the
// live pipeline hands the server its anomaly.Watcher via SetAnomalies
// and the server only ever reads. Stamp is the cheap cache probe — it
// moves on every finding, bucket close and semantics swap.
type AnomalySource interface {
	Query(q anomaly.Query) anomaly.Report
	Health() anomaly.WatchHealth
	Stamp() uint64
}

// SetAnomalies attaches the anomaly engine: GET /v1/anomalies starts
// answering, /v1/health gains the anomalies block, and the
// intentd_anomaly_* gauges appear at /metrics. Call at most once,
// before serving traffic.
func (s *Server) SetAnomalies(src AnomalySource) {
	s.anoms = src
	s.metrics.registerAnomalies(func() anomaly.WatchHealth { return src.Health() })
}

// registerAnomalies exports the detection gauges; scrapes read through
// fn, so they always reflect the engine's live counters.
func (m *Metrics) registerAnomalies(fn func() anomaly.WatchHealth) {
	m.reg.GaugeFunc("intentd_anomaly_findings_total",
		"Anomaly findings made since start (dropped ones included).", func() float64 {
			return float64(fn().Findings)
		})
	m.reg.GaugeFuncVec("intentd_anomaly_detector_findings_total",
		"Anomaly findings made since start, by emitting detector.", "detector",
		func() map[string]float64 {
			h := fn()
			out := make(map[string]float64, len(h.Detectors))
			// Every active detector exposes a series, zero included.
			for _, d := range h.Detectors {
				out[d] = float64(h.ByDetector[d])
			}
			return out
		})
	m.reg.GaugeFunc("intentd_anomaly_updates_total",
		"Stream updates the anomaly engine has processed since start.", func() float64 {
			return float64(fn().Updates)
		})
	m.reg.GaugeFunc("intentd_anomaly_buckets_total",
		"Activity buckets closed (detectors run) since start.", func() float64 {
			return float64(fn().Buckets)
		})
	m.reg.GaugeFunc("intentd_anomaly_dropped_total",
		"Stream updates dropped at the engine hand-off since start.", func() float64 {
			return float64(fn().Dropped)
		})
	m.reg.GaugeFunc("intentd_anomaly_lag_seconds",
		"Wall-clock age of the newest bucket close - the detector lag.", func() float64 {
			return fn().Lag.Seconds()
		})
	m.reg.GaugeFunc("intentd_anomaly_generation",
		"Semantics generation the detectors currently attribute with.", func() float64 {
			return float64(fn().Generation)
		})
}

// FindingJSON is one anomaly finding as rendered in responses.
type FindingJSON struct {
	ID       uint64 `json:"id"`
	Detector string `json:"detector"`
	Kind     string `json:"kind"`
	// Community is the subject community (series findings); ASN the
	// subject AS — the community's α, or the implicated on-path AS of a
	// disappearance finding.
	Community string `json:"community,omitempty"`
	ASN       uint32 `json:"asn"`
	// Category and Generation are the subject's inferred semantics at
	// detection time and the classification generation that assigned it.
	Category   string `json:"category"`
	Generation uint64 `json:"semantics_generation"`

	Bucket      string  `json:"bucket"`
	SpanSeconds float64 `json:"span_seconds"`

	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	Score    float64 `json:"score"`
	Summary  string  `json:"summary"`
}

func findingJSON(f anomaly.Finding) FindingJSON {
	out := FindingJSON{
		ID:          f.ID,
		Detector:    f.Detector,
		Kind:        f.Kind,
		ASN:         f.ASN,
		Category:    f.Category.String(),
		Generation:  f.Generation,
		Bucket:      f.Bucket.UTC().Format(time.RFC3339),
		SpanSeconds: f.Span.Seconds(),
		Value:       f.Value,
		Baseline:    f.Baseline,
		Score:       f.Score,
		Summary:     f.Summary,
	}
	if f.HasCommunity {
		out.Community = f.Community.String()
	}
	return out
}

// anomaliesResponse is the GET /v1/anomalies body.
type anomaliesResponse struct {
	// Generation is the served snapshot generation;
	// SemanticsGeneration the classification generation the detectors
	// attribute with (they trail the snapshot briefly after a swap).
	Generation          uint64 `json:"generation"`
	SemanticsGeneration uint64 `json:"semantics_generation"`
	// Stamp is the engine change counter the body was rendered at.
	Stamp      uint64        `json:"stamp"`
	LastBucket string        `json:"last_bucket,omitempty"`
	Buckets    uint64        `json:"buckets"`
	Total      uint64        `json:"total_findings"`
	Findings   []FindingJSON `json:"findings"`
}

// handleAnomalies answers GET /v1/anomalies?window=1h&since=RFC3339&
// detector=spike&limit=100. All parameters are optional; zero values
// mean unconstrained.
func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	if s.anoms == nil {
		writeError(w, http.StatusNotFound, "anomaly detection not enabled (start intentd with -live)")
		return
	}
	var q anomaly.Query
	qp := r.URL.Query()
	if v := qp.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "bad window %q: want a positive Go duration like 90m", v)
			return
		}
		q.Window = d
	}
	if v := qp.Get("since"); v != "" {
		ts, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since %q: want RFC3339", v)
			return
		}
		q.Since = ts
	}
	q.Detector = qp.Get("detector")
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q: want a non-negative integer", v)
			return
		}
		q.Limit = n
	}

	// Anomaly bodies are cached like snapshot-derived ones, but in their
	// own cache keyed by (snapshot generation, engine stamp): the engine
	// moves much faster than the snapshot, and sharing shards would let
	// each bucket close evict unrelated community entries.
	snap := s.Snapshot()
	stamp := snap.Gen<<32 ^ s.anoms.Stamp()
	key := r.URL.Path + "?" + r.URL.RawQuery
	s.serveCachedIn(w, s.anomCache, stamp, key, func() any {
		rep := s.anoms.Query(q)
		resp := anomaliesResponse{
			Generation:          snap.Gen,
			SemanticsGeneration: rep.Generation,
			Stamp:               rep.Stamp,
			Buckets:             rep.Buckets,
			Total:               rep.Total,
			Findings:            make([]FindingJSON, 0, len(rep.Findings)),
		}
		if !rep.LastBucket.IsZero() {
			resp.LastBucket = rep.LastBucket.UTC().Format(time.RFC3339)
		}
		for _, f := range rep.Findings {
			resp.Findings = append(resp.Findings, findingJSON(f))
		}
		return resp
	})
}

// anomalyHealthJSON is the anomalies block of /v1/health: detection
// provenance — what runs, which semantics generation it attributes
// with, and how far behind the detectors are.
type anomalyHealthJSON struct {
	Detectors  []string `json:"detectors"`
	Generation uint64   `json:"semantics_generation"`
	Updates    uint64   `json:"updates"`
	Buckets    uint64   `json:"buckets"`
	Findings   uint64   `json:"findings"`
	Dropped    uint64   `json:"dropped"`
	LastBucket string   `json:"last_bucket,omitempty"`
	// LagSeconds is the wall-clock age of the newest bucket close — how
	// stale detection is, regardless of feed-time compression.
	LagSeconds float64 `json:"lag_seconds"`
}

func anomalyHealth(h anomaly.WatchHealth) *anomalyHealthJSON {
	out := &anomalyHealthJSON{
		Detectors:  h.Detectors,
		Generation: h.Generation,
		Updates:    h.Updates,
		Buckets:    h.Buckets,
		Findings:   h.Findings,
		Dropped:    h.Dropped,
		LagSeconds: h.Lag.Seconds(),
	}
	if !h.LastBucket.IsZero() {
		out.LastBucket = h.LastBucket.UTC().Format(time.RFC3339)
	}
	return out
}

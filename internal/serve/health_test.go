package serve

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bgpintent"
)

// fakeFeed is a scriptable HealthSource.
type fakeFeed struct{ fh FeedHealth }

func (f *fakeFeed) FeedHealth() FeedHealth { return f.fh }

func TestHealthBatchMode(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))

	var resp healthResponse
	if code := do(t, s, "GET", "/v1/health", "", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Status != "healthy" || resp.Mode != "batch" || resp.Generation != 1 {
		t.Fatalf("batch health = %+v", resp)
	}
	if resp.Feed != nil {
		t.Fatalf("batch mode reported feed details: %+v", resp.Feed)
	}
}

func TestHealthLiveMode(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))
	feed := &fakeFeed{fh: FeedHealth{
		Status: "stale", State: "connecting", LastSeq: 42,
		LastUpdate: time.Now().Add(-time.Minute), Staleness: time.Minute,
		Updates: 42, Reconnects: 3, Snapshots: 2,
	}}
	s.SetFeed(feed)

	var resp healthResponse
	if code := do(t, s, "GET", "/v1/health", "", &resp); code != 200 {
		t.Fatalf("status %d: degraded health must still answer 200", code)
	}
	if resp.Status != "stale" || resp.Mode != "live" || resp.Feed == nil {
		t.Fatalf("live health = %+v", resp)
	}
	if resp.Feed.LastSeq != 42 || resp.Feed.Reconnects != 3 || resp.Feed.StalenessSeconds < 59 {
		t.Fatalf("feed details = %+v", resp.Feed)
	}

	// The transition back to healthy is visible immediately.
	feed.fh.Status, feed.fh.State = "healthy", "live"
	do(t, s, "GET", "/v1/health", "", &resp)
	if resp.Status != "healthy" || resp.Feed.State != "live" {
		t.Fatalf("recovered health = %+v", resp)
	}

	// The feed gauges reached /metrics.
	reqRec := doRaw(t, s, "GET", "/metrics")
	for _, metric := range []string{"intentd_feed_healthy 1", "intentd_feed_connected 1", "intentd_feed_last_seq 42"} {
		if !strings.Contains(reqRec, metric) {
			t.Fatalf("/metrics missing %q:\n%s", metric, reqRec)
		}
	}
}

func TestInstallSwapsSnapshot(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))

	var before communityResponse
	do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &before)
	if before.Category != w.catA.String() {
		t.Fatalf("before install: %+v", before)
	}

	snap := s.Install(w.resB, w.corpus.SnapshotInfo("live"), "live-feed", time.Millisecond)
	if snap.Gen != 2 {
		t.Fatalf("installed generation %d, want 2", snap.Gen)
	}

	var after communityResponse
	do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &after)
	if after.Category != w.catB.String() || after.Generation != 2 {
		t.Fatalf("after install: %+v, want %s gen 2", after, w.catB)
	}
}

func TestDisableReload(t *testing.T) {
	w := getWorld(t)
	s := newTestServer(t, staticBuilder(w, w.resA, "static"))
	s.DisableReload("live mode: snapshots come from the feed")

	var errResp errorResponse
	if code := do(t, s, "POST", "/v1/admin/reload", "", &errResp); code != 409 {
		t.Fatalf("reload while disabled: status %d, want 409", code)
	}
	if !strings.Contains(errResp.Error, "live mode") {
		t.Fatalf("error body %q lacks the disable reason", errResp.Error)
	}
	// The served snapshot is untouched.
	var resp communityResponse
	do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &resp)
	if resp.Generation != 1 || resp.Category != w.catA.String() {
		t.Fatalf("snapshot disturbed by rejected reload: %+v", resp)
	}
}

// TestReloadCorruptSnapshotKeepsServing is the regression test for the
// robustness bug class: a reload pointed at a truncated or
// CRC-corrupted snapshot file must fail with a structured error and
// keep serving the old generation.
func TestReloadCorruptSnapshotKeepsServing(t *testing.T) {
	w := getWorld(t)
	path := filepath.Join(t.TempDir(), "snap.bin")

	var buf bytes.Buffer
	if err := w.resA.WriteSnapshot(&buf, w.corpus.SnapshotInfo("file-test")); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}

	fileBuilder := func(ctx context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, bgpintent.SnapshotInfo{}, "", err
		}
		defer f.Close()
		res, info, err := bgpintent.ReadSnapshot(f)
		return res, info, path, err
	}
	s := newTestServer(t, fileBuilder)

	var healthy communityResponse
	do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &healthy)
	if healthy.Generation != 1 {
		t.Fatalf("initial load: %+v", healthy)
	}

	corruptions := map[string]func() []byte{
		"truncated": func() []byte { return good[:len(good)/2] },
		"bit-flipped": func() []byte {
			bad := bytes.Clone(good)
			bad[len(bad)-9] ^= 0xFF // inside the CRC-protected body
			return bad
		},
		"empty": func() []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, corrupt(), 0o644); err != nil {
				t.Fatal(err)
			}
			var errResp errorResponse
			if code := do(t, s, "POST", "/v1/admin/reload", "", &errResp); code != 500 {
				t.Fatalf("reload of %s file: status %d, want 500", name, code)
			}
			if errResp.Error == "" {
				t.Fatal("no structured error in reload failure body")
			}
			// Old generation still serves, fully intact.
			var resp communityResponse
			do(t, s, "GET", "/v1/community/"+w.probe.String(), "", &resp)
			if resp.Generation != 1 || resp.Category != w.catA.String() {
				t.Fatalf("corrupt reload disturbed serving: %+v", resp)
			}
		})
	}

	// Restoring the file makes reload work again — no sticky failure.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	var ok reloadResponse
	if code := do(t, s, "POST", "/v1/admin/reload", "", &ok); code != 200 || ok.Generation != 2 {
		t.Fatalf("recovery reload: code %d resp %+v", code, ok)
	}
}

func TestServeConfigTimeouts(t *testing.T) {
	cases := []struct {
		in, def, want time.Duration
	}{
		{0, DefaultReadHeaderTimeout, DefaultReadHeaderTimeout}, // zero: default
		{-1, DefaultReadTimeout, 0},                             // negative: disabled
		{5 * time.Second, DefaultIdleTimeout, 5 * time.Second},  // explicit wins
	}
	for _, c := range cases {
		if got := timeoutOrDefault(c.in, c.def); got != c.want {
			t.Fatalf("timeoutOrDefault(%v, %v) = %v, want %v", c.in, c.def, got, c.want)
		}
	}
}

// doRaw performs an in-process request and returns the raw body.
func doRaw(t *testing.T, s *Server, method, path string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec.Body.String()
}

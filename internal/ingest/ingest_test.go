package ingest

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpintent/internal/bgp"
	"bgpintent/internal/ingest/faults"
	"bgpintent/internal/mrt"
)

// buildRIBStream writes a peer table plus n RIB records.
func buildRIBStream(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	table := &mrt.PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("10.0.0.1"),
		ViewName:       "ingest",
		Peers: []mrt.Peer{
			{BGPID: netip.MustParseAddr("10.1.0.1"), Addr: netip.MustParseAddr("198.51.100.1"), ASN: 65269},
			{BGPID: netip.MustParseAddr("10.1.0.2"), Addr: netip.MustParseAddr("198.51.100.2"), ASN: 3356},
		},
	}
	tw, err := mrt.NewTableDumpWriter(&buf, 100, table)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		entry := mrt.RIBEntry{
			PeerIndex: uint16(i % 2),
			Attrs: bgp.PathAttributes{
				HasOrigin:   true,
				ASPath:      bgp.NewASPath(65269, 3356, 64496),
				Communities: bgp.Communities{bgp.NewCommunity(3356, uint16(i))},
			},
		}
		if err := tw.WriteRIB(bgp.MustParsePrefix("192.0.2.0/24"), []mrt.RIBEntry{entry}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func countViews(t *testing.T, data []byte, opts Options) (int, *Stats, error) {
	t.Helper()
	st := &Stats{}
	views := 0
	err := ScanRIBsFrom(bytes.NewReader(data), "test.mrt", opts, st, func(*mrt.RIBView) error {
		views++
		return nil
	})
	return views, st, err
}

// TestLenientSalvageAcceptance is the issue's acceptance test: a stream
// corrupted at a 1% record rate must load leniently salvaging >= 95% of
// the clean views, while strict mode fails with an offset-bearing error.
func TestLenientSalvageAcceptance(t *testing.T) {
	wire := buildRIBStream(t, 400)
	cleanViews, _, err := countViews(t, wire, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cleanViews != 400 {
		t.Fatalf("clean load produced %d views, want 400", cleanViews)
	}

	var dirty bytes.Buffer
	res, err := faults.Corrupt(&dirty, bytes.NewReader(wire), faults.Config{Seed: 7, Rate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 {
		t.Fatal("seed injected no faults; pick another seed")
	}
	t.Logf("injected %d faults over %d records: %v", res.Faults, res.Records, res.PerKind)

	views, st, err := countViews(t, dirty.Bytes(), Options{})
	if err != nil {
		t.Fatalf("lenient load failed: %v (stats=%+v)", err, st.Total)
	}
	if min := cleanViews * 95 / 100; views < min {
		t.Errorf("salvaged %d of %d clean views, want >= %d (stats=%+v)", views, cleanViews, min, st.Total)
	}
	if st.Clean() {
		t.Error("stats report a clean load over corrupted input")
	}

	_, _, err = countViews(t, dirty.Bytes(), Options{Strict: true})
	if err == nil {
		t.Fatal("strict load of corrupted input succeeded")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("strict error %q does not carry a byte offset", err)
	}
}

// TestErrorBudget checks both the mid-stream and end-of-file budget
// enforcement paths.
func TestErrorBudget(t *testing.T) {
	t.Run("garbage trips the default budget", func(t *testing.T) {
		garbage := bytes.Repeat([]byte("definitely not mrt "), 16)
		_, _, err := countViews(t, garbage, Options{})
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("error = %v, want *BudgetError", err)
		}
		if be.Rate <= be.Limit {
			t.Errorf("budget error with rate %v <= limit %v", be.Rate, be.Limit)
		}
		if !strings.Contains(err.Error(), "error budget") {
			t.Errorf("unhelpful budget message %q", err)
		}
	})

	t.Run("negative rate disables the budget", func(t *testing.T) {
		garbage := bytes.Repeat([]byte("definitely not mrt "), 16)
		views, st, err := countViews(t, garbage, Options{MaxErrorRate: -1})
		if err != nil {
			t.Fatalf("budget-disabled load failed: %v", err)
		}
		if views != 0 || st.Clean() {
			t.Errorf("garbage load: %d views, clean=%v", views, st.Clean())
		}
	})

	t.Run("mid-stream abort on a long dirty file", func(t *testing.T) {
		// Corrupt heavily so the rate check trips once the minimum
		// sample accumulates, well before end of file.
		wire := buildRIBStream(t, 2000)
		var dirty bytes.Buffer
		if _, err := faults.Corrupt(&dirty, bytes.NewReader(wire), faults.Config{
			Seed:  3,
			Rate:  0.5,
			Kinds: []faults.Kind{faults.BitFlip, faults.Garbage},
		}); err != nil {
			t.Fatal(err)
		}
		views, _, err := countViews(t, dirty.Bytes(), Options{MaxErrorRate: 0.10})
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("error = %v, want *BudgetError", err)
		}
		if views >= 2000 {
			t.Errorf("budget did not abort mid-stream: %d views delivered", views)
		}
	})

	t.Run("clean stream passes the budget", func(t *testing.T) {
		wire := buildRIBStream(t, 300)
		views, st, err := countViews(t, wire, Options{})
		if err != nil || views != 300 || !st.Clean() {
			t.Errorf("clean load: views=%d err=%v clean=%v", views, err, st.Clean())
		}
	})
}

func TestOptionsLimit(t *testing.T) {
	if got := (Options{}).limit(); got != DefaultMaxErrorRate {
		t.Errorf("zero limit = %v, want default", got)
	}
	if got := (Options{MaxErrorRate: -3}).limit(); got != -1 {
		t.Errorf("negative limit = %v, want -1", got)
	}
	if got := (Options{MaxErrorRate: 0.2}).limit(); got != 0.2 {
		t.Errorf("explicit limit = %v", got)
	}
}

func TestOpenDecompresses(t *testing.T) {
	wire := buildRIBStream(t, 3)
	dir := t.TempDir()

	plain := filepath.Join(dir, "a.mrt")
	if err := os.WriteFile(plain, wire, 0o644); err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(dir, "a.mrt.gz")
	var gzBuf bytes.Buffer
	zw := gzip.NewWriter(&gzBuf)
	zw.Write(wire)
	zw.Close()
	if err := os.WriteFile(gzPath, gzBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{plain, gzPath} {
		rc, err := Open(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || !bytes.Equal(got, wire) {
			t.Errorf("%s: read %d bytes (err=%v), want %d", path, len(got), err, len(wire))
		}
	}

	if _, err := Open(filepath.Join(dir, "missing.mrt")); err == nil {
		t.Error("missing file opened")
	}
	bad := filepath.Join(dir, "bad.gz")
	os.WriteFile(bad, []byte("not gzip"), 0o644)
	if _, err := Open(bad); err == nil {
		t.Error("bad gzip opened")
	}
}

func TestScanRIBsFromFile(t *testing.T) {
	wire := buildRIBStream(t, 5)
	path := filepath.Join(t.TempDir(), "t.rib.mrt")
	if err := os.WriteFile(path, wire, 0o644); err != nil {
		t.Fatal(err)
	}
	st := &Stats{}
	views := 0
	if err := ScanRIBs(path, Options{}, st, func(*mrt.RIBView) error { views++; return nil }); err != nil {
		t.Fatal(err)
	}
	if views != 5 {
		t.Errorf("views = %d, want 5", views)
	}
	if len(st.Files) != 1 || st.Files[0].Path != path {
		t.Errorf("per-file stats = %+v", st.Files)
	}
	if s := st.Summary(); !strings.Contains(s, "no corruption") {
		t.Errorf("summary = %q", s)
	}
}

func TestCallbackErrorPropagates(t *testing.T) {
	wire := buildRIBStream(t, 5)
	boom := errors.New("boom")
	st := &Stats{}
	err := ScanRIBsFrom(bytes.NewReader(wire), "t", Options{}, st, func(*mrt.RIBView) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("callback error = %v, want boom", err)
	}
	if len(st.Files) != 1 {
		t.Error("stats not recorded on callback abort")
	}
}

func TestOpenReaderSniffing(t *testing.T) {
	payload := []byte("MRT-ish payload bytes")

	var gzBuf bytes.Buffer
	zw := gzip.NewWriter(&gzBuf)
	zw.Write(payload)
	zw.Close()

	for name, tc := range map[string]struct {
		in   []byte
		want []byte
	}{
		"plain": {payload, payload},
		"gzip":  {gzBuf.Bytes(), payload},
		"short": {[]byte{0x1f}, []byte{0x1f}}, // too short for a magic number
		"empty": {nil, nil},
	} {
		r, err := OpenReader(bytes.NewReader(tc.in))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Errorf("%s: read: %v", name, err)
			continue
		}
		if !bytes.Equal(got, tc.want) {
			t.Errorf("%s: got %q, want %q", name, got, tc.want)
		}
	}
}

// Package ingest is the fault-tolerant MRT file-loading layer between
// the raw mrt decoder and the corpus facade. It opens archive files
// (decompressing .gz/.bz2 as RouteViews and RIPE RIS ship them), streams
// views out of them in strict or lenient mode, keeps per-file and
// aggregate statistics, and enforces an error budget: a lenient load
// aborts when a file's corruption rate exceeds a threshold, so silent
// garbage cannot masquerade as a clean corpus.
package ingest

import (
	"bufio"
	"compress/bzip2"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bgpintent/internal/mrt"
	"bgpintent/internal/obs"
)

// DefaultMaxErrorRate is the default error budget: the fraction of
// corrupt records per file above which a lenient load aborts.
const DefaultMaxErrorRate = 0.05

// budgetMinSample is how many record attempts must accumulate before
// the budget is enforced mid-stream; it keeps a single early bad record
// in a huge file from tripping the rate check. The budget is always
// re-checked, without the floor, when the file ends.
const budgetMinSample = 128

// Options control how files are ingested.
type Options struct {
	// Strict fails on the first malformed record, today's legacy
	// behavior. Default is lenient: skip and resynchronize.
	Strict bool
	// MaxErrorRate is the lenient-mode error budget: 0 means
	// DefaultMaxErrorRate, negative disables the budget entirely.
	MaxErrorRate float64
	// Tracer receives per-file open/decode spans and live
	// record/byte/file counters; nil disables ingestion telemetry.
	Tracer *obs.Tracer
	// ForceFrameSplit makes ScanParallelContext use the frame/decode
	// split pipeline (see framesplit.go) even when there are enough
	// input files to keep every worker on its own file. Normally the
	// split activates only when workers outnumber files; forcing it is
	// for tests and experiments. Output and statistics are identical
	// either way.
	ForceFrameSplit bool
}

func (o Options) limit() float64 {
	switch {
	case o.MaxErrorRate == 0:
		return DefaultMaxErrorRate
	case o.MaxErrorRate < 0:
		return -1
	default:
		return o.MaxErrorRate
	}
}

// BudgetError reports a file whose corruption rate exceeded the error
// budget.
type BudgetError struct {
	Path  string
	Rate  float64
	Limit float64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("ingest: %s: corruption rate %.2f%% exceeds error budget %.2f%%",
		e.Path, 100*e.Rate, 100*e.Limit)
}

// FileStats pairs one ingested file with its decode statistics.
type FileStats struct {
	Path string
	mrt.Stats
}

// Stats aggregates ingestion statistics across a corpus load.
type Stats struct {
	Files []FileStats
	Total mrt.Stats
}

func (s *Stats) add(path string, fs *mrt.Stats) {
	if s == nil {
		return
	}
	s.Files = append(s.Files, FileStats{Path: path, Stats: *fs})
	s.Total.Merge(fs)
}

// Clean reports whether every file loaded without corruption events.
func (s *Stats) Clean() bool { return s == nil || s.Total.Clean() }

// Summary renders a one-line human-readable account of the load.
func (s *Stats) Summary() string {
	if s == nil {
		return "no ingestion statistics"
	}
	t := &s.Total
	var b strings.Builder
	fmt.Fprintf(&b, "%d files, %d records (%d decoded, %d unknown-type)",
		len(s.Files), t.Records, t.Decoded, t.UnknownCount())
	if t.Clean() {
		b.WriteString(", no corruption")
	} else {
		fmt.Fprintf(&b, ", %d skipped, %d resyncs, %d truncated tails, %d bytes lost of %d read",
			t.Skipped, t.Resyncs, t.Truncated, t.BytesSkipped, t.BytesRead)
	}
	return b.String()
}

// Open opens an MRT archive file, transparently decompressing .gz and
// .bz2 by extension, as the RouteViews and RIS archives ship them.
func Open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(path, ".gz"):
		zr, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: %s: %w", path, err)
		}
		return &wrappedCloser{Reader: zr, close: func() error { zr.Close(); return f.Close() }}, nil
	case strings.HasSuffix(path, ".bz2"):
		return &wrappedCloser{Reader: bzip2.NewReader(f), close: f.Close}, nil
	default:
		return f, nil
	}
}

// OpenReader wraps an already-open stream with transparent
// decompression, sniffing the gzip and bzip2 magic bytes instead of a
// file extension — for inputs with no name to go by, such as stdin.
// Streams too short to carry a magic number pass through unchanged.
func OpenReader(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, _ := br.Peek(3)
	switch {
	case len(magic) >= 2 && magic[0] == 0x1f && magic[1] == 0x8b:
		return gzip.NewReader(br)
	case len(magic) >= 3 && magic[0] == 'B' && magic[1] == 'Z' && magic[2] == 'h':
		return bzip2.NewReader(br), nil
	}
	return br, nil
}

// wrappedCloser pairs a decompressing reader with the underlying file's
// closer.
type wrappedCloser struct {
	io.Reader
	close func() error
}

// Close closes the decompressor and the underlying file.
func (w *wrappedCloser) Close() error { return w.close() }

// scanOptions builds the mrt scanner configuration for one file,
// wiring in the mid-stream budget check.
func scanOptions(name string, opts Options, fs *mrt.Stats) mrt.ScanOptions {
	so := mrt.ScanOptions{Lenient: !opts.Strict, Stats: fs}
	limit := opts.limit()
	if !opts.Strict && limit >= 0 {
		so.Check = func(s *mrt.Stats) error {
			if s.Attempts() >= budgetMinSample {
				if rate := s.ErrorRate(); rate > limit {
					return &BudgetError{Path: name, Rate: rate, Limit: limit}
				}
			}
			return nil
		}
	}
	return so
}

// finish records the file's stats and applies the final (no minimum
// sample) budget check.
func finish(name string, opts Options, stats *Stats, fs *mrt.Stats) error {
	stats.add(name, fs)
	if limit := opts.limit(); !opts.Strict && limit >= 0 {
		if rate := fs.ErrorRate(); rate > limit {
			return &BudgetError{Path: name, Rate: rate, Limit: limit}
		}
	}
	return nil
}

// openTimed is Open plus an obs.StageOpen span when a tracer is
// attached.
func openTimed(path string, tr *obs.Tracer) (io.ReadCloser, error) {
	if !tr.Active() {
		return Open(path)
	}
	start := time.Now()
	rc, err := Open(path)
	tr.EmitSpan(obs.StageOpen, path, start, time.Since(start), nil)
	return rc, err
}

// ScanRIBs streams every RIBView of a TABLE_DUMP_V2 file into fn.
func ScanRIBs(path string, opts Options, stats *Stats, fn func(*mrt.RIBView) error) error {
	return ScanRIBsContext(context.Background(), path, opts, stats, fn)
}

// ScanRIBsContext is ScanRIBs with cancellation: a canceled ctx aborts
// the scan between records with ctx.Err().
func ScanRIBsContext(ctx context.Context, path string, opts Options, stats *Stats, fn func(*mrt.RIBView) error) error {
	rc, err := openTimed(path, opts.Tracer)
	if err != nil {
		return err
	}
	defer rc.Close()
	return scanRIBsFrom(ctx, rc, path, opts, stats, fn)
}

// ScanRIBsFrom is ScanRIBs over an already-open stream; name labels the
// stream in errors and statistics.
func ScanRIBsFrom(r io.Reader, name string, opts Options, stats *Stats, fn func(*mrt.RIBView) error) error {
	return scanRIBsFrom(context.Background(), r, name, opts, stats, fn)
}

func scanRIBsFrom(ctx context.Context, r io.Reader, name string, opts Options, stats *Stats, fn func(*mrt.RIBView) error) error {
	fs := &mrt.Stats{}
	tr := opts.Tracer
	if tr.Active() {
		tr.StageStartOnly(obs.StageDecode, name)
		start := time.Now()
		defer func() {
			tr.EmitSpan(obs.StageDecode, name, start, time.Since(start), func(s *obs.Span) {
				s.Records = int64(fs.Records)
				s.Bytes = fs.BytesRead
			})
			tr.AddBytes(fs.BytesRead)
		}()
	}
	done := ctx.Done()
	sc := mrt.NewTableDumpScannerOptions(r, scanOptions(name, opts, fs))
	for {
		if chClosed(done) {
			stats.add(name, fs)
			return ctx.Err()
		}
		v, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			stats.add(name, fs)
			if _, ok := err.(*BudgetError); ok {
				return err
			}
			return fmt.Errorf("ingest: %s: %w", name, err)
		}
		tr.AddRecords(1)
		if err := fn(v); err != nil {
			stats.add(name, fs)
			return err
		}
	}
	tr.FileDone()
	return finish(name, opts, stats, fs)
}

// ScanUpdates streams every decoded UpdateView of a BGP4MP file into fn.
func ScanUpdates(path string, opts Options, stats *Stats, fn func(*mrt.UpdateView) error) error {
	return ScanUpdatesContext(context.Background(), path, opts, stats, fn)
}

// ScanUpdatesContext is ScanUpdates with cancellation: a canceled ctx
// aborts the scan between records with ctx.Err().
func ScanUpdatesContext(ctx context.Context, path string, opts Options, stats *Stats, fn func(*mrt.UpdateView) error) error {
	rc, err := openTimed(path, opts.Tracer)
	if err != nil {
		return err
	}
	defer rc.Close()
	return scanUpdatesFrom(ctx, rc, path, opts, stats, fn)
}

// ScanUpdatesFrom is ScanUpdates over an already-open stream.
func ScanUpdatesFrom(r io.Reader, name string, opts Options, stats *Stats, fn func(*mrt.UpdateView) error) error {
	return scanUpdatesFrom(context.Background(), r, name, opts, stats, fn)
}

func scanUpdatesFrom(ctx context.Context, r io.Reader, name string, opts Options, stats *Stats, fn func(*mrt.UpdateView) error) error {
	fs := &mrt.Stats{}
	tr := opts.Tracer
	if tr.Active() {
		tr.StageStartOnly(obs.StageDecode, name)
		start := time.Now()
		defer func() {
			tr.EmitSpan(obs.StageDecode, name, start, time.Since(start), func(s *obs.Span) {
				s.Records = int64(fs.Records)
				s.Bytes = fs.BytesRead
			})
			tr.AddBytes(fs.BytesRead)
		}()
	}
	done := ctx.Done()
	sc := mrt.NewUpdateScannerOptions(r, scanOptions(name, opts, fs))
	for {
		if chClosed(done) {
			stats.add(name, fs)
			return ctx.Err()
		}
		v, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			stats.add(name, fs)
			if _, ok := err.(*BudgetError); ok {
				return err
			}
			return fmt.Errorf("ingest: %s: %w", name, err)
		}
		tr.AddRecords(1)
		if err := fn(v); err != nil {
			stats.add(name, fs)
			return err
		}
	}
	tr.FileDone()
	return finish(name, opts, stats, fs)
}

// chClosed is a non-blocking closed-channel probe; nil reads as open.
func chClosed(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Parallel ingestion: one worker per input file, bounded by a
// configurable pool, with deterministic statistics and error reporting.
package ingest

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"bgpintent/internal/mrt"
)

// InputFile names one MRT archive and its format.
type InputFile struct {
	Path string
	// Updates marks a BGP4MP updates file; false means a TABLE_DUMP_V2
	// RIB.
	Updates bool
}

// ScanParallel ingests the given files concurrently, at most workers
// files in flight (workers <= 0 means GOMAXPROCS; 1 degenerates to the
// sequential scan order). ribFn and updFn receive the decoded views and
// MAY BE CALLED CONCURRENTLY from multiple goroutines — the callee must
// be safe for concurrent use (e.g. feed a core.ShardedTupleStore).
//
// Statistics are assembled into stats in input-file order once all
// workers finish, so an N-worker load reports the same Stats as a
// sequential one. On failure the error of the earliest failed file (in
// input order, among those processed before the abort) is returned, and
// stats covers the files up to and including it; files queued behind a
// failure are not started.
func ScanParallel(files []InputFile, opts Options, workers int, stats *Stats,
	ribFn func(*mrt.RIBView) error, updFn func(*mrt.UpdateView) error) error {
	return ScanParallelContext(context.Background(), files, opts, workers, stats, ribFn, updFn)
}

// ScanParallelContext is ScanParallel with cancellation: a canceled ctx
// stops workers from starting new files, aborts in-flight scans between
// records, and returns ctx.Err() once every worker has been joined — no
// goroutine outlives the call. If a file failed on its own before the
// cancellation, that error wins (input order), matching ScanParallel.
func ScanParallelContext(ctx context.Context, files []InputFile, opts Options, workers int, stats *Stats,
	ribFn func(*mrt.RIBView) error, updFn func(*mrt.UpdateView) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// With more workers than files (or when forced), file-level
	// parallelism cannot use the machine: split each file across the
	// workers with the frame/decode pipeline instead.
	if workers > 1 && len(files) > 0 && (opts.ForceFrameSplit || workers > len(files)) {
		return scanSplitFiles(ctx, files, opts, workers, stats, ribFn, updFn)
	}
	if workers > len(files) {
		workers = len(files)
	}
	done := ctx.Done()
	if workers <= 1 {
		for _, f := range files {
			if chClosed(done) {
				return ctx.Err()
			}
			var err error
			if f.Updates {
				err = ScanUpdatesContext(ctx, f.Path, opts, stats, updFn)
			} else {
				err = ScanRIBsContext(ctx, f.Path, opts, stats, ribFn)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	type fileResult struct {
		stats Stats
		err   error
		done  bool
	}
	results := make([]fileResult, len(files))
	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() || chClosed(done) {
					continue
				}
				f := files[i]
				var st Stats
				var err error
				if f.Updates {
					err = ScanUpdatesContext(ctx, f.Path, opts, &st, updFn)
				} else {
					err = ScanRIBsContext(ctx, f.Path, opts, &st, ribFn)
				}
				results[i] = fileResult{stats: st, err: err, done: true}
				if err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range files {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i := range results {
		r := &results[i]
		if !r.done {
			continue
		}
		if stats != nil {
			stats.Files = append(stats.Files, r.stats.Files...)
			stats.Total.Merge(&r.stats.Total)
		}
		if r.err != nil {
			return r.err
		}
	}
	return ctx.Err()
}

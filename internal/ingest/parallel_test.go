package ingest

import (
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"bgpintent/internal/mrt"
)

// writeRIBFiles writes n RIB files of varying record counts and returns
// the input list.
func writeRIBFiles(t *testing.T, dir string, n int) []InputFile {
	t.Helper()
	files := make([]InputFile, n)
	for i := 0; i < n; i++ {
		wire := buildRIBStream(t, 50+i*37)
		path := filepath.Join(dir, "rib"+string(rune('0'+i))+".mrt")
		if err := os.WriteFile(path, wire, 0o644); err != nil {
			t.Fatal(err)
		}
		files[i] = InputFile{Path: path}
	}
	return files
}

// TestScanParallelMatchesSequential: view counts and assembled Stats are
// identical for every worker count, including per-file order.
func TestScanParallelMatchesSequential(t *testing.T) {
	files := writeRIBFiles(t, t.TempDir(), 6)

	run := func(workers int) (int64, *Stats, error) {
		var views atomic.Int64
		st := &Stats{}
		err := ScanParallel(files, Options{}, workers, st,
			func(*mrt.RIBView) error { views.Add(1); return nil }, nil)
		return views.Load(), st, err
	}

	refViews, refStats, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	if refViews == 0 {
		t.Fatal("no views scanned")
	}
	for _, workers := range []int{2, 8} {
		views, st, err := run(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if views != refViews {
			t.Errorf("workers=%d: %d views, want %d", workers, views, refViews)
		}
		if !reflect.DeepEqual(st, refStats) {
			t.Errorf("workers=%d: stats differ:\n  %+v\n  %+v", workers, st, refStats)
		}
	}
}

// TestScanParallelError: a corrupt file fails a strict parallel load,
// and files queued behind the failure are skipped.
func TestScanParallelError(t *testing.T) {
	dir := t.TempDir()
	files := writeRIBFiles(t, dir, 4)
	if err := os.WriteFile(files[1].Path, []byte("this is not MRT data at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := &Stats{}
	err := ScanParallel(files, Options{Strict: true}, 4, st,
		func(*mrt.RIBView) error { return nil }, nil)
	if err == nil {
		t.Fatal("corrupt file accepted")
	}
	// Stats stop at the failing file in input order.
	if len(st.Files) > 2 {
		t.Errorf("stats cover %d files, want <= 2 (through the failure)", len(st.Files))
	}
}

// TestScanParallelUpdatesRouting: updates files reach the updates
// callback, RIBs the RIB callback, under concurrency.
func TestScanParallelUpdatesRouting(t *testing.T) {
	dir := t.TempDir()
	files := writeRIBFiles(t, dir, 2)
	var ribs atomic.Int64
	err := ScanParallel(files, Options{}, 2, nil,
		func(*mrt.RIBView) error { ribs.Add(1); return nil },
		func(*mrt.UpdateView) error { t.Error("updates callback hit for RIB file"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if ribs.Load() == 0 {
		t.Fatal("no RIB views")
	}
}

// Frame/decode split: one file scanned by one framing goroutine feeding
// decode workers, so a single large MRT file spreads across cores
// instead of pinning one. Activated by ScanParallelContext when there
// are more workers than files (or forced by Options.ForceFrameSplit).
//
// The framer runs the same fault-tolerant mrt.Reader the sequential
// scanners use and copies record bodies into reusable FrameBatches; the
// workers decode batches concurrently and feed views to the (shared,
// concurrency-safe) store callbacks. Statistics stay exactly equal to a
// sequential scan: the framer owns every framing counter (records,
// resyncs, truncation, bytes) by construction, and the decode counters
// the workers accumulate per batch are order-independent sums. The one
// case that is genuinely order-dependent — lenient recovery from a
// record that framed but failed to decode, where the sequential scanner
// rejects the record's bytes back into the stream and rescans inside
// them — triggers a full-file fallback instead: the split attempt's
// statistics are discarded and the file is rescanned sequentially.
// Re-feeding views already delivered is safe because every store
// callback is idempotent (tuple dedup, sorted-set VP insertion,
// large-community set), so the fallback keeps both the corpus and the
// final LoadStats byte-for-byte identical to a sequential load.
package ingest

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"bgpintent/internal/bgp"
	"bgpintent/internal/mrt"
	"bgpintent/internal/obs"
)

// Frame batches hand off at most this many records / body bytes; two
// batches per worker circulate through the free list, so the framer
// read-ahead is bounded (double buffering) and backpressure is the free
// list running empty.
const (
	frameBatchRecords = 512
	frameBatchBytes   = 1 << 20
)

// frameJob is one batch handed from the framer to a decode worker,
// with the peer table in force when its records were framed (nil for
// updates files) and the slot its outcome is reported through.
type frameJob struct {
	batch *mrt.FrameBatch
	table *mrt.PeerIndexTable
	res   *batchResult
}

// batchResult is one batch's decode outcome. The framer allocates it
// and appends it to an ordered list before dispatch; the worker is the
// only writer afterwards, and the join's wg.Wait publishes the writes.
type batchResult struct {
	stats mrt.Stats
	err   error
}

// splitState is the shared control state of one split-file scan.
type splitState struct {
	failed   atomic.Bool // a worker hit a terminal error; stop dispatching
	fallback atomic.Bool // lenient decode failure; rescan sequentially
	done     <-chan struct{}
}

func (st *splitState) aborted() bool {
	return st.failed.Load() || chClosed(st.done)
}

// scanFileSplit scans one file with a framer goroutine plus workers
// decode goroutines. Statistics and error semantics match the
// sequential Scan{RIBs,Updates}Context (see the package comment of this
// file for the fallback that guarantees it).
func scanFileSplit(ctx context.Context, f InputFile, opts Options, workers int, stats *Stats,
	ribFn func(*mrt.RIBView) error, updFn func(*mrt.UpdateView) error) error {
	rc, err := openTimed(f.Path, opts.Tracer)
	if err != nil {
		return err
	}
	defer rc.Close()

	fs := &mrt.Stats{}
	tr := opts.Tracer
	if tr.Active() {
		tr.StageStartOnly(obs.StageDecode, f.Path)
		start := time.Now()
		defer func() {
			tr.EmitSpan(obs.StageDecode, f.Path, start, time.Since(start), func(s *obs.Span) {
				s.Records = int64(fs.Records)
				s.Bytes = fs.BytesRead
			})
			tr.AddBytes(fs.BytesRead)
		}()
	}

	so := scanOptions(f.Path, opts, fs)
	r := so.Reader(rc)
	st := &splitState{done: ctx.Done()}

	nBatches := 2 * workers
	free := make(chan *mrt.FrameBatch, nBatches)
	for i := 0; i < nBatches; i++ {
		free <- &mrt.FrameBatch{}
	}
	jobs := make(chan frameJob)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			if f.Updates {
				decodeUpdateBatches(jobs, free, st, opts, tr, updFn)
			} else {
				decodeRIBBatches(jobs, free, st, opts, tr, ribFn)
			}
		}()
	}

	// RIB files interleave PEER_INDEX_TABLE records with the RIB records
	// that reference them, so table records are a framing barrier: the
	// framer parses them in stream order and stamps each batch with the
	// table in force when it was framed.
	var barrier func(typ, subtype uint16) bool
	if !f.Updates {
		barrier = func(typ, subtype uint16) bool {
			return typ == mrt.TypeTableDumpV2 && subtype == mrt.SubtypePeerIndexTable
		}
	}

	var (
		table    *mrt.PeerIndexTable
		ordered  []*batchResult
		framerFn error // framer-side terminal error (budget, reader, strict table)
		canceled bool
	)
frame:
	for {
		if st.failed.Load() {
			break
		}
		if chClosed(st.done) {
			canceled = true
			break
		}
		batch := <-free
		var frameStart time.Time
		if tr.Active() {
			frameStart = time.Now()
		}
		brec, err := r.NextBatch(batch, frameBatchRecords, frameBatchBytes, barrier)
		if tr.Active() {
			tr.AddStageTime(obs.StageFrame, time.Since(frameStart), int64(batch.Len()))
		}
		if err != nil {
			free <- batch
			if err == io.EOF {
				break
			}
			framerFn = err
			break
		}
		if batch.Len() > 0 {
			res := &batchResult{}
			ordered = append(ordered, res)
			jobs <- frameJob{batch: batch, table: table, res: res}
		} else {
			free <- batch
		}
		if brec != nil {
			// Barrier record: a peer index table, governing every record
			// after it. The batch just dispatched was framed before it.
			t, perr := mrt.ParsePeerIndexTable(brec.Body)
			if perr != nil {
				if opts.Strict {
					framerFn = fmt.Errorf("mrt: record at offset %d: %w", brec.Offset, perr)
					break
				}
				fs.NoteSkip("peer-index-table")
				st.fallback.Store(true)
				break
			}
			fs.NoteDecoded()
			table = t
		}
		if so.Check != nil {
			// Mid-stream budget check over the framing counters; decode
			// skips are re-checked exactly at finish (and a lenient decode
			// failure falls back to the sequential scan, where the budget
			// applies per record).
			if cerr := so.Check(fs); cerr != nil {
				framerFn = cerr
				break frame
			}
		}
	}
	close(jobs)
	wg.Wait()

	if canceled || chClosed(st.done) {
		stats.add(f.Path, fs)
		return ctx.Err()
	}
	if st.fallback.Load() {
		// Discard the split attempt entirely and rescan sequentially;
		// idempotent callbacks make the re-feed invisible (see the file
		// comment).
		if f.Updates {
			return ScanUpdatesContext(ctx, f.Path, opts, stats, updFn)
		}
		return ScanRIBsContext(ctx, f.Path, opts, stats, ribFn)
	}
	// Merge batch outcomes in frame order: the earliest batch error wins,
	// with the stats of everything before it, matching the point a
	// sequential scan would have stopped at.
	var werr error
	for _, res := range ordered {
		fs.Merge(&res.stats)
		if res.err != nil {
			werr = res.err
			break
		}
	}
	if werr == nil {
		werr = framerFn
	}
	if werr != nil {
		stats.add(f.Path, fs)
		if _, ok := werr.(*BudgetError); ok {
			return werr
		}
		return fmt.Errorf("ingest: %s: %w", f.Path, werr)
	}
	tr.FileDone()
	return finish(f.Path, opts, stats, fs)
}

// decodeRIBBatches is one worker's loop over a RIB file's frame jobs.
// All reusable decode state (record view, RIB, RIBView) is worker-local;
// per-batch counters land in the job's result slot.
func decodeRIBBatches(jobs <-chan frameJob, free chan<- *mrt.FrameBatch, st *splitState,
	opts Options, tr *obs.Tracer, fn func(*mrt.RIBView) error) {
	var (
		rec  mrt.Record
		rib  mrt.RIB
		view mrt.RIBView
	)
	for job := range jobs {
		if st.aborted() {
			free <- job.batch
			continue
		}
		n := job.batch.Len()
		for i := 0; i < n && !st.aborted(); i++ {
			job.batch.Rec(i, &rec)
			if rec.Type != mrt.TypeTableDumpV2 {
				job.res.stats.NoteUnknown(rec.Type, rec.Subtype)
				continue
			}
			switch rec.Subtype {
			case mrt.SubtypeRIBIPv4Unicast, mrt.SubtypeRIBIPv6Unicast:
				if perr := mrt.ParseRIBInto(rec.Subtype, rec.Body, &rib); perr != nil {
					if opts.Strict {
						job.res.err = fmt.Errorf("mrt: record at offset %d: %w", rec.Offset, perr)
						st.failed.Store(true)
					} else {
						// The sequential scanner would Reject the record's
						// bytes and rescan inside them; that recovery is
						// inherently stream-ordered, so redo the whole file
						// sequentially instead.
						job.res.stats.NoteSkip("rib")
						st.fallback.Store(true)
						st.failed.Store(true)
					}
					break
				}
				job.res.stats.NoteDecoded()
				for _, e := range rib.Entries {
					if job.table == nil || int(e.PeerIndex) >= len(job.table.Peers) {
						if opts.Strict {
							job.res.err = fmt.Errorf("mrt: RIB record at offset %d: entry references peer index %d outside table", rec.Offset, e.PeerIndex)
							st.failed.Store(true)
							break
						}
						job.res.stats.NoteSkip("peer-index-out-of-range")
						continue
					}
					view = mrt.RIBView{Peer: job.table.Peers[e.PeerIndex], Prefix: rib.Prefix, Entry: e}
					if err := fn(&view); err != nil {
						job.res.err = err
						st.failed.Store(true)
						break
					}
				}
			default:
				// Peer index tables never reach workers (framing barrier);
				// other TABLE_DUMP_V2 subtypes are skipped like the
				// sequential scanner skips them.
				job.res.stats.NoteUnknown(rec.Type, rec.Subtype)
			}
		}
		tr.AddRecords(int64(n))
		free <- job.batch
	}
}

// decodeUpdateBatches is one worker's loop over an updates file's frame
// jobs.
func decodeUpdateBatches(jobs <-chan frameJob, free chan<- *mrt.FrameBatch, st *splitState,
	opts Options, tr *obs.Tracer, fn func(*mrt.UpdateView) error) {
	var (
		rec  mrt.Record
		upd  bgp.UpdateMessage
		view mrt.UpdateView
	)
	for job := range jobs {
		if st.aborted() {
			free <- job.batch
			continue
		}
		n := job.batch.Len()
		for i := 0; i < n && !st.aborted(); i++ {
			job.batch.Rec(i, &rec)
			ok, perr := mrt.DecodeUpdateRecord(&rec, &upd, &view, &job.res.stats)
			if perr != nil {
				if opts.Strict {
					job.res.err = fmt.Errorf("mrt: record at offset %d: %w", rec.Offset, perr)
					st.failed.Store(true)
				} else {
					job.res.stats.NoteSkip("bgp4mp")
					st.fallback.Store(true)
					st.failed.Store(true)
				}
				break
			}
			if !ok {
				continue
			}
			job.res.stats.NoteDecoded()
			if err := fn(&view); err != nil {
				job.res.err = err
				st.failed.Store(true)
				break
			}
		}
		tr.AddRecords(int64(n))
		free <- job.batch
	}
}

// scanSplitFiles runs the frame/decode split over every input file, one
// file at a time in input order — cross-file parallelism would not add
// throughput (the workers already cover the cores) and processing files
// in order keeps statistics assembly and earliest-error semantics
// identical to the sequential path for free.
func scanSplitFiles(ctx context.Context, files []InputFile, opts Options, workers int, stats *Stats,
	ribFn func(*mrt.RIBView) error, updFn func(*mrt.UpdateView) error) error {
	for _, f := range files {
		if chClosed(ctx.Done()) {
			return ctx.Err()
		}
		if err := scanFileSplit(ctx, f, opts, workers, stats, ribFn, updFn); err != nil {
			return err
		}
	}
	return nil
}

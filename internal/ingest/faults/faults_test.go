package faults

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"

	"bgpintent/internal/bgp"
	"bgpintent/internal/mrt"
)

func validStream(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	table := &mrt.PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("10.0.0.1"),
		ViewName:       "faults",
		Peers: []mrt.Peer{
			{BGPID: netip.MustParseAddr("10.1.0.1"), Addr: netip.MustParseAddr("198.51.100.1"), ASN: 65269},
		},
	}
	tw, err := mrt.NewTableDumpWriter(&buf, 100, table)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		entry := mrt.RIBEntry{
			Attrs: bgp.PathAttributes{
				HasOrigin:   true,
				ASPath:      bgp.NewASPath(65269, 64496),
				Communities: bgp.Communities{bgp.NewCommunity(1299, uint16(i))},
			},
		}
		if err := tw.WriteRIB(bgp.MustParsePrefix("192.0.2.0/24"), []mrt.RIBEntry{entry}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCorruptDeterministic(t *testing.T) {
	wire := validStream(t, 50)
	cfg := Config{Seed: 42, Rate: 0.3}
	var a, b bytes.Buffer
	ra, err := Corrupt(&a, bytes.NewReader(wire), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Corrupt(&b, bytes.NewReader(wire), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("equal seeds produced different corruption")
	}
	if ra.Faults != rb.Faults || ra.Records != rb.Records {
		t.Errorf("results differ: %+v vs %+v", ra, rb)
	}
	if ra.Faults == 0 {
		t.Error("rate 0.3 over 51 records injected nothing")
	}

	var c bytes.Buffer
	if _, err := Corrupt(&c, bytes.NewReader(wire), Config{Seed: 43, Rate: 0.3}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different seeds produced identical corruption")
	}
}

func TestCorruptRateZeroIsIdentity(t *testing.T) {
	wire := validStream(t, 20)
	var out bytes.Buffer
	res, err := Corrupt(&out, bytes.NewReader(wire), Config{Seed: 1, Rate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), wire) {
		t.Error("rate 0 altered the stream")
	}
	if res.Records != 21 || res.Faults != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestCorruptPerKindEffects(t *testing.T) {
	wire := validStream(t, 40)
	// Rate 1 with a single kind: every record gets exactly that fault.
	corrupt := func(kind Kind) (*bytes.Buffer, Result) {
		t.Helper()
		var out bytes.Buffer
		res, err := Corrupt(&out, bytes.NewReader(wire), Config{Seed: 5, Rate: 1, Kinds: []Kind{kind}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults != res.Records || res.PerKind[kind] != res.Faults {
			t.Fatalf("%v: result = %+v", kind, res)
		}
		return &out, res
	}

	t.Run("truncate shortens the stream", func(t *testing.T) {
		out, _ := corrupt(Truncate)
		if out.Len() >= len(wire) {
			t.Errorf("truncated stream is %d bytes, input %d", out.Len(), len(wire))
		}
	})
	t.Run("oversize announces impossible lengths", func(t *testing.T) {
		out, _ := corrupt(Oversize)
		if l := binary.BigEndian.Uint32(out.Bytes()[8:12]); l <= 16<<20 {
			t.Errorf("first record announces %d, want > 16 MiB", l)
		}
	})
	t.Run("bitflip keeps framing intact", func(t *testing.T) {
		out, _ := corrupt(BitFlip)
		if out.Len() != len(wire) {
			t.Fatalf("bitflip changed stream size: %d vs %d", out.Len(), len(wire))
		}
		if bytes.Equal(out.Bytes(), wire) {
			t.Error("bitflip changed nothing")
		}
		// Framing survives: a strict read sees every record.
		r := mrt.NewReader(bytes.NewReader(out.Bytes()))
		n := 0
		for {
			if _, err := r.Next(); err != nil {
				break
			}
			n++
		}
		if n != 41 {
			t.Errorf("strict reframe of bitflipped stream got %d records, want 41", n)
		}
	})
	t.Run("garbage keeps framing intact", func(t *testing.T) {
		out, _ := corrupt(Garbage)
		if out.Len() != len(wire) || bytes.Equal(out.Bytes(), wire) {
			t.Errorf("garbage stream: len %d (want %d), changed=%v", out.Len(), len(wire), !bytes.Equal(out.Bytes(), wire))
		}
	})
	t.Run("duplicate doubles the records", func(t *testing.T) {
		out, _ := corrupt(Duplicate)
		r := mrt.NewReader(bytes.NewReader(out.Bytes()))
		n := 0
		for {
			if _, err := r.Next(); err != nil {
				break
			}
			n++
		}
		if n != 82 {
			t.Errorf("duplicated stream has %d records, want 82", n)
		}
	})
}

func TestCorruptRejectsDirtyInput(t *testing.T) {
	if _, err := Corrupt(io.Discard, bytes.NewReader([]byte("garbage in garbage out")), Config{Rate: 0.5}); err == nil {
		t.Error("dirty input accepted")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range AllKinds() {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("kind %d has placeholder name %q", int(k), s)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("out-of-range kind name")
	}
}

// Package faults deterministically corrupts MRT streams, reproducing
// the damage real RouteViews/RIS archives arrive with: flipped bits,
// mid-record truncation, impossible length fields, garbage attribute
// bytes, and duplicated records. Every fault is driven by a seeded RNG
// so tests and experiments replay exactly; the ingestion layer's
// lenient decoder must survive all of them.
package faults

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"

	"bgpintent/internal/mrt"
)

// Kind is one class of injected fault.
type Kind int

const (
	// BitFlip flips one random bit of the record body, leaving framing
	// intact: the record still frames but may no longer decode.
	BitFlip Kind = iota
	// Truncate drops the record's trailing body bytes while keeping the
	// announced length, so the next record header is consumed as body —
	// the framing damage a partial write or disk error causes.
	Truncate
	// Oversize announces an impossible record length (beyond the
	// decoder's cap), the classic corrupt-length-field failure.
	Oversize
	// Garbage overwrites a span of body bytes (path attributes, peer
	// entries...) with random noise.
	Garbage
	// Duplicate emits the record twice.
	Duplicate

	numKinds
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case BitFlip:
		return "bitflip"
	case Truncate:
		return "truncate"
	case Oversize:
		return "oversize"
	case Garbage:
		return "garbage"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllKinds returns every fault kind.
func AllKinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Config controls fault injection.
type Config struct {
	// Seed drives every random choice; equal seeds replay exactly.
	Seed int64
	// Rate is the per-record fault probability in [0, 1].
	Rate float64
	// Kinds restricts which faults are injected; nil means all kinds.
	Kinds []Kind
}

// Result reports what Corrupt did.
type Result struct {
	Records int          // records copied from the clean stream
	Faults  int          // records a fault was applied to
	PerKind map[Kind]int // fault counts by kind
}

// Corrupt copies the MRT stream r to w, injecting faults per cfg. The
// input must itself be well-formed: records are reframed strictly and
// corrupted on the way out.
func Corrupt(w io.Writer, r io.Reader, cfg Config) (Result, error) {
	res := Result{PerKind: make(map[Kind]int)}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rd := mrt.NewReader(r)
	bw := bufio.NewWriterSize(w, 1<<16)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, fmt.Errorf("faults: clean input: %w", err)
		}
		res.Records++
		if rng.Float64() >= cfg.Rate {
			writeRecord(bw, rec, uint32(len(rec.Body)), rec.Body)
			continue
		}
		kind := kinds[rng.Intn(len(kinds))]
		res.Faults++
		res.PerKind[kind]++
		body := append([]byte(nil), rec.Body...)
		switch kind {
		case BitFlip:
			if len(body) > 0 {
				bit := rng.Intn(len(body) * 8)
				body[bit/8] ^= 1 << (bit % 8)
			}
			writeRecord(bw, rec, uint32(len(body)), body)
		case Truncate:
			cut := 0
			if len(body) > 0 {
				cut = rng.Intn(len(body))
			}
			// Announce the full length but ship only a prefix.
			writeRecord(bw, rec, uint32(len(body)), body[:cut])
		case Oversize:
			// Far beyond the decoder's 16 MiB cap.
			writeRecord(bw, rec, 0x40000000|rng.Uint32(), body)
		case Garbage:
			if len(body) > 0 {
				off := rng.Intn(len(body))
				n := 1 + rng.Intn(min(16, len(body)-off))
				rng.Read(body[off : off+n])
			}
			writeRecord(bw, rec, uint32(len(body)), body)
		case Duplicate:
			writeRecord(bw, rec, uint32(len(body)), body)
			writeRecord(bw, rec, uint32(len(body)), body)
		}
	}
	return res, bw.Flush()
}

// writeRecord emits one MRT record, allowing the announced length to
// disagree with the shipped body — the whole point of the exercise.
func writeRecord(bw *bufio.Writer, rec *mrt.Record, length uint32, body []byte) {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], rec.Timestamp)
	binary.BigEndian.PutUint16(hdr[4:6], rec.Type)
	binary.BigEndian.PutUint16(hdr[6:8], rec.Subtype)
	binary.BigEndian.PutUint32(hdr[8:12], length)
	bw.Write(hdr[:])
	bw.Write(body)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

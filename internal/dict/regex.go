package dict

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// RangeRegex returns an anchored regular expression matching exactly the
// decimal integers lo..hi (inclusive, no leading zeros). It is how the
// dictionary summarizes a contiguous block of β values, mirroring the
// hand-written range regexes the paper built from operator documentation
// (e.g. 1299:[257]\d\d[1239]).
func RangeRegex(lo, hi uint16) string {
	if lo > hi {
		lo, hi = hi, lo
	}
	var alts []string
	// Split by digit count so each sub-range has same-length bounds.
	for digits := len(strconv.Itoa(int(lo))); digits <= len(strconv.Itoa(int(hi))); digits++ {
		dLo := 0
		if digits > 1 {
			dLo = pow10(digits - 1)
		}
		dHi := pow10(digits) - 1
		a, b := int(lo), int(hi)
		if a < dLo {
			a = dLo
		}
		if b > dHi {
			b = dHi
		}
		if a > b {
			continue
		}
		alts = append(alts, samLenPatterns(strconv.Itoa(a), strconv.Itoa(b))...)
	}
	if len(alts) == 1 {
		return "^" + alts[0] + "$"
	}
	return "^(" + strings.Join(alts, "|") + ")$"
}

func pow10(n int) int {
	out := 1
	for i := 0; i < n; i++ {
		out *= 10
	}
	return out
}

// samLenPatterns emits regex alternatives covering lo..hi where both
// bounds have the same number of digits.
func samLenPatterns(lo, hi string) []string {
	if lo == hi {
		return []string{lo}
	}
	if len(lo) == 1 {
		return []string{digitClass(lo[0], hi[0])}
	}
	if lo[0] == hi[0] {
		sub := samLenPatterns(lo[1:], hi[1:])
		out := make([]string, len(sub))
		for i, s := range sub {
			out[i] = string(lo[0]) + s
		}
		return out
	}
	var out []string
	nines := strings.Repeat("9", len(lo)-1)
	zeros := strings.Repeat("0", len(lo)-1)
	// lo .. lo[0]999…
	if lo[1:] == zeros {
		// lo covers its whole leading-digit span; fold into the middle.
		out = append(out, spanPattern(lo[0], lo[0], len(lo)-1))
	} else {
		for _, s := range samLenPatterns(lo[1:], nines) {
			out = append(out, string(lo[0])+s)
		}
	}
	// middle full spans
	loMid, hiMid := lo[0]+1, hi[0]-1
	if lo[1:] == zeros {
		loMid = lo[0] + 1 // already folded above; keep middle separate
	}
	if hi[1:] == nines {
		hiMid = hi[0]
	}
	if loMid <= hiMid {
		out = append(out, spanPattern(loMid, hiMid, len(lo)-1))
	}
	// hi[0]000… .. hi
	if hi[1:] != nines {
		for _, s := range samLenPatterns(zeros, hi[1:]) {
			out = append(out, string(hi[0])+s)
		}
	}
	return out
}

// spanPattern matches any number with leading digit in [a,b] followed by
// n free digits.
func spanPattern(a, b byte, n int) string {
	p := digitClass(a, b)
	switch n {
	case 0:
		return p
	case 1:
		return p + `\d`
	default:
		return p + fmt.Sprintf(`\d{%d}`, n)
	}
}

// digitClass renders a single-digit character class.
func digitClass(a, b byte) string {
	if a == b {
		return string(a)
	}
	if a == '0' && b == '9' {
		return `\d`
	}
	return "[" + string(a) + "-" + string(b) + "]"
}

// Entry is one dictionary rule: a β regex for one AS with its label, like
// the paper's 199 information and 133 action regexes.
type Entry struct {
	ASN     uint32
	Pattern string
	Sub     SubCategory

	re *regexp.Regexp
}

// Category returns the entry's coarse label.
func (e *Entry) Category() Category { return e.Sub.Category() }

// Compile prepares the entry for matching. It is called automatically by
// Dictionary.Add.
func (e *Entry) Compile() error {
	re, err := regexp.Compile(e.Pattern)
	if err != nil {
		return fmt.Errorf("dict: entry %d %q: %v", e.ASN, e.Pattern, err)
	}
	e.re = re
	return nil
}

// MatchBeta reports whether the entry's regex matches the decimal
// rendering of β.
func (e *Entry) MatchBeta(beta uint16) bool {
	return e.re != nil && e.re.MatchString(strconv.Itoa(int(beta)))
}

// Dictionary is a ground-truth community dictionary: per-AS regex rules
// assembled from operator documentation (here: from generated plans).
type Dictionary struct {
	byASN map[uint32][]*Entry
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byASN: make(map[uint32][]*Entry)}
}

// Add compiles and inserts an entry.
func (d *Dictionary) Add(e *Entry) error {
	if err := e.Compile(); err != nil {
		return err
	}
	d.byASN[e.ASN] = append(d.byASN[e.ASN], e)
	return nil
}

// Lookup returns the first entry matching the community α:β, if any.
func (d *Dictionary) Lookup(asn uint32, beta uint16) (*Entry, bool) {
	for _, e := range d.byASN[asn] {
		if e.MatchBeta(beta) {
			return e, true
		}
	}
	return nil, false
}

// Category returns the coarse label the dictionary assigns to α:β, or
// CatUnknown if uncovered.
func (d *Dictionary) Category(asn uint32, beta uint16) Category {
	if e, ok := d.Lookup(asn, beta); ok {
		return e.Category()
	}
	return CatUnknown
}

// ASNs returns the number of ASes with at least one entry.
func (d *Dictionary) ASNs() int { return len(d.byASN) }

// HasASN reports whether the dictionary documents any communities for asn.
func (d *Dictionary) HasASN(asn uint32) bool { return len(d.byASN[asn]) > 0 }

// Entries returns all entries for an AS (nil if none).
func (d *Dictionary) Entries(asn uint32) []*Entry { return d.byASN[asn] }

// Len returns the total number of entries.
func (d *Dictionary) Len() int {
	n := 0
	for _, es := range d.byASN {
		n += len(es)
	}
	return n
}

// CountByCategory returns the number of entries per coarse category.
func (d *Dictionary) CountByCategory() map[Category]int {
	out := make(map[Category]int)
	for _, es := range d.byASN {
		for _, e := range es {
			out[e.Category()]++
		}
	}
	return out
}

// BuildFromPlan appends one regex entry per plan block, the automated
// equivalent of summarizing operator documentation with range regexes.
func (d *Dictionary) BuildFromPlan(p *Plan) error {
	for _, b := range p.Blocks {
		e := &Entry{ASN: p.ASN, Pattern: RangeRegex(b.Lo, b.Hi), Sub: b.Sub}
		if err := d.Add(e); err != nil {
			return err
		}
	}
	return nil
}

// Package dict models BGP community semantics: the action/information
// taxonomy of the paper's Figure 2, per-AS community plans (the meanings
// an operator assigns to β values), and ground-truth dictionaries in
// which contiguous runs of same-purpose values are summarized by regular
// expressions, as the paper builds from NLNOG/IRR/OneStep data.
package dict

// Category is the coarse-grained intent of a community: the binary label
// the paper's method infers.
type Category int8

const (
	// CatUnknown marks communities with no label (undocumented, or not
	// classifiable).
	CatUnknown Category = iota
	// CatAction marks communities a neighbor sets to influence routing
	// in the AS identified by the community's α half.
	CatAction
	// CatInformation marks communities the α AS itself attaches to record
	// route metadata.
	CatInformation
)

// String returns the category name used in reports and dictionary files.
func (c Category) String() string {
	switch c {
	case CatAction:
		return "action"
	case CatInformation:
		return "information"
	default:
		return "unknown"
	}
}

// ParseCategory parses the String form.
func ParseCategory(s string) (Category, bool) {
	switch s {
	case "action":
		return CatAction, true
	case "information":
		return CatInformation, true
	case "unknown":
		return CatUnknown, true
	}
	return CatUnknown, false
}

// SubCategory refines the coarse category along the taxonomy of Figure 2.
type SubCategory int8

const (
	SubNone SubCategory = iota

	// Action subcategories.

	// SubSuppress: do not export to an AS or in a location (incl.
	// RFC 1997 NO_EXPORT, RFC 3765 NOPEER semantics).
	SubSuppress
	// SubAnnounce: export only/also to an AS or in a location.
	SubAnnounce
	// SubSetAttribute: set local-pref or prepend on export.
	SubSetAttribute
	// SubBlackhole: discard traffic to the prefix (RFC 7999).
	SubBlackhole

	// Information subcategories.

	// SubLocation: where the route was received (city/country/region).
	SubLocation
	// SubRelationship: the relationship with the neighbor the route was
	// learned from.
	SubRelationship
	// SubROV: Route Origin Validation status.
	SubROV
	// SubOtherInfo: other metadata (ingress interface, route type, ...).
	SubOtherInfo
)

// Category returns the coarse category a subcategory belongs to.
func (s SubCategory) Category() Category {
	switch s {
	case SubSuppress, SubAnnounce, SubSetAttribute, SubBlackhole:
		return CatAction
	case SubLocation, SubRelationship, SubROV, SubOtherInfo:
		return CatInformation
	default:
		return CatUnknown
	}
}

// String returns the subcategory name used in reports and dictionary
// files.
func (s SubCategory) String() string {
	switch s {
	case SubSuppress:
		return "suppress"
	case SubAnnounce:
		return "announce"
	case SubSetAttribute:
		return "set-attribute"
	case SubBlackhole:
		return "blackhole"
	case SubLocation:
		return "location"
	case SubRelationship:
		return "relationship"
	case SubROV:
		return "rov"
	case SubOtherInfo:
		return "other-info"
	default:
		return "none"
	}
}

// ParseSubCategory parses the String form.
func ParseSubCategory(s string) (SubCategory, bool) {
	for _, sc := range []SubCategory{
		SubNone, SubSuppress, SubAnnounce, SubSetAttribute, SubBlackhole,
		SubLocation, SubRelationship, SubROV, SubOtherInfo,
	} {
		if sc.String() == s {
			return sc, true
		}
	}
	return SubNone, false
}

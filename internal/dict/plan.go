package dict

import (
	"fmt"
	"sort"
)

// Def is one community definition in an operator's plan: the meaning of a
// single β value, including the parameters the route-propagation
// simulator needs to act on it.
type Def struct {
	Value uint16 // β
	Sub   SubCategory

	// Action parameters (meaningful for action subcategories).

	// TargetAS restricts a suppress/announce action to one neighbor AS
	// (0 = no AS restriction).
	TargetAS uint32
	// TargetRegion restricts a suppress/announce action to sessions in
	// one region (0 = no region restriction).
	TargetRegion int
	// Prepend is the number of times the AS prepends itself on export
	// (set-attribute actions).
	Prepend int
	// LocalPref, when HasLocalPref, overrides the local preference the
	// AS assigns the route (set-attribute actions).
	HasLocalPref bool
	LocalPref    uint32

	// Information parameters.

	// City identifies the ingress city signaled by a location community.
	City int
	// Region identifies the ingress region for region-granularity
	// location communities.
	Region int
	// Rel encodes the neighbor relationship signaled by a relationship
	// community (see internal/topology for the value space).
	Rel int
	// ROV encodes the signaled validation state (0 valid, 1 invalid,
	// 2 unknown).
	ROV int
}

// Category returns the coarse label of the definition.
func (d *Def) Category() Category { return d.Sub.Category() }

// Block is a contiguous range of β values an operator devotes to one
// purpose — the clustering structure the paper's Figures 3 and 4 show and
// its method exploits. A block may mix subcategories of the same coarse
// category (Arelion's 256x range mixes prepend and no-export variants);
// Sub records the first subcategory seen and serves as a representative
// label.
type Block struct {
	Lo, Hi uint16 // inclusive bounds in β space
	Sub    SubCategory
}

// Category returns the coarse label of the block.
func (b Block) Category() Category { return b.Sub.Category() }

// Plan is one AS's community plan: every β value it assigns meaning to,
// organized in contiguous blocks.
type Plan struct {
	ASN    uint32
	Defs   map[uint16]*Def
	Blocks []Block

	breakBlock bool // next Add starts a new block even if the purpose matches
}

// NewPlan returns an empty plan for the AS.
func NewPlan(asn uint32) *Plan {
	return &Plan{ASN: asn, Defs: make(map[uint16]*Def)}
}

// Add inserts a definition and extends or creates its block: consecutive
// additions with the same coarse category extend the current block.
// Definitions must be added in ascending β order within a block; Add
// returns an error on duplicate values.
func (p *Plan) Add(d *Def) error {
	if _, dup := p.Defs[d.Value]; dup {
		return fmt.Errorf("dict: plan %d: duplicate β %d", p.ASN, d.Value)
	}
	p.Defs[d.Value] = d
	if n := len(p.Blocks); n > 0 && !p.breakBlock {
		last := &p.Blocks[n-1]
		if last.Sub.Category() == d.Sub.Category() && d.Value > last.Hi {
			last.Hi = d.Value
			return nil
		}
	}
	p.breakBlock = false
	p.Blocks = append(p.Blocks, Block{Lo: d.Value, Hi: d.Value, Sub: d.Sub})
	return nil
}

// BeginBlock forces the next Add to open a new block, so two same-purpose
// ranges separated by an operator-chosen gap are not merged.
func (p *Plan) BeginBlock() { p.breakBlock = true }

// Lookup returns the definition for β, if any.
func (p *Plan) Lookup(beta uint16) (*Def, bool) {
	d, ok := p.Defs[beta]
	return d, ok
}

// Category returns the coarse label of β according to the plan, or
// CatUnknown if undefined.
func (p *Plan) Category(beta uint16) Category {
	if d, ok := p.Defs[beta]; ok {
		return d.Category()
	}
	return CatUnknown
}

// Values returns every defined β in ascending order.
func (p *Plan) Values() []uint16 {
	out := make([]uint16, 0, len(p.Defs))
	for v := range p.Defs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ValuesOf returns every defined β with the given coarse category, in
// ascending order.
func (p *Plan) ValuesOf(cat Category) []uint16 {
	var out []uint16
	for v, d := range p.Defs {
		if d.Category() == cat {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BlocksOf returns the blocks with the given coarse category, in β order.
func (p *Plan) BlocksOf(cat Category) []Block {
	var out []Block
	for _, b := range p.Blocks {
		if b.Category() == cat {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}

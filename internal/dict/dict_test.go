package dict

import (
	"bytes"
	"math/rand"
	"regexp"
	"strconv"
	"testing"
)

func TestCategoryStrings(t *testing.T) {
	for _, c := range []Category{CatUnknown, CatAction, CatInformation} {
		got, ok := ParseCategory(c.String())
		if !ok || got != c {
			t.Errorf("ParseCategory(%q) = %v,%v", c.String(), got, ok)
		}
	}
	if _, ok := ParseCategory("bogus"); ok {
		t.Error("ParseCategory(bogus) ok")
	}
}

func TestSubCategoryMapping(t *testing.T) {
	actions := []SubCategory{SubSuppress, SubAnnounce, SubSetAttribute, SubBlackhole}
	infos := []SubCategory{SubLocation, SubRelationship, SubROV, SubOtherInfo}
	for _, s := range actions {
		if s.Category() != CatAction {
			t.Errorf("%v.Category() = %v, want action", s, s.Category())
		}
	}
	for _, s := range infos {
		if s.Category() != CatInformation {
			t.Errorf("%v.Category() = %v, want information", s, s.Category())
		}
	}
	if SubNone.Category() != CatUnknown {
		t.Error("SubNone category")
	}
	for _, s := range append(append([]SubCategory{SubNone}, actions...), infos...) {
		got, ok := ParseSubCategory(s.String())
		if !ok || got != s {
			t.Errorf("ParseSubCategory(%q) = %v,%v", s.String(), got, ok)
		}
	}
}

func TestPlanAddAndBlocks(t *testing.T) {
	p := NewPlan(1299)
	// Action block 50..150 (local pref), then info block 430..431 (ROV),
	// then action block 2561..2569.
	for _, v := range []uint16{50, 150} {
		if err := p.Add(&Def{Value: v, Sub: SubSetAttribute, HasLocalPref: true, LocalPref: uint32(v)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []uint16{430, 431} {
		if err := p.Add(&Def{Value: v, Sub: SubROV, ROV: int(v - 430)}); err != nil {
			t.Fatal(err)
		}
	}
	p.BeginBlock()
	for _, v := range []uint16{2561, 2562, 2563, 2569} {
		if err := p.Add(&Def{Value: v, Sub: SubSuppress, TargetAS: 3356}); err != nil {
			t.Fatal(err)
		}
	}
	if len(p.Blocks) != 3 {
		t.Fatalf("blocks = %+v", p.Blocks)
	}
	if p.Blocks[0].Lo != 50 || p.Blocks[0].Hi != 150 || p.Blocks[0].Category() != CatAction {
		t.Errorf("block 0 = %+v", p.Blocks[0])
	}
	if p.Blocks[1].Lo != 430 || p.Blocks[1].Hi != 431 || p.Blocks[1].Category() != CatInformation {
		t.Errorf("block 1 = %+v", p.Blocks[1])
	}
	if p.Blocks[2].Lo != 2561 || p.Blocks[2].Hi != 2569 {
		t.Errorf("block 2 = %+v", p.Blocks[2])
	}
	if p.Category(430) != CatInformation || p.Category(2569) != CatAction || p.Category(9999) != CatUnknown {
		t.Error("Category lookups wrong")
	}
	if err := p.Add(&Def{Value: 50, Sub: SubSuppress}); err == nil {
		t.Error("duplicate Add: want error")
	}
	if got := p.Values(); len(got) != 8 || got[0] != 50 || got[7] != 2569 {
		t.Errorf("Values() = %v", got)
	}
	if got := p.ValuesOf(CatAction); len(got) != 6 {
		t.Errorf("ValuesOf(action) = %v", got)
	}
	if got := p.BlocksOf(CatInformation); len(got) != 1 || got[0].Lo != 430 {
		t.Errorf("BlocksOf(info) = %v", got)
	}
}

func TestPlanBeginBlockSeparatesSamePurpose(t *testing.T) {
	p := NewPlan(1)
	p.Add(&Def{Value: 10, Sub: SubLocation})
	p.Add(&Def{Value: 11, Sub: SubLocation})
	p.BeginBlock()
	p.Add(&Def{Value: 500, Sub: SubLocation})
	if len(p.Blocks) != 2 {
		t.Fatalf("blocks = %+v", p.Blocks)
	}
	if p.Blocks[0].Hi != 11 || p.Blocks[1].Lo != 500 {
		t.Errorf("blocks = %+v", p.Blocks)
	}
}

func TestRangeRegexKnown(t *testing.T) {
	tests := []struct {
		lo, hi uint16
		match  []uint16
		reject []uint16
	}{
		{5, 5, []uint16{5}, []uint16{4, 6, 55}},
		{0, 9, []uint16{0, 5, 9}, []uint16{10}},
		{50, 150, []uint16{50, 99, 100, 150}, []uint16{49, 151, 5, 1500}},
		{2561, 2569, []uint16{2561, 2565, 2569}, []uint16{2560, 2570, 256, 25610}},
		{20000, 39999, []uint16{20000, 30000, 39999}, []uint16{19999, 40000, 2000}},
		{0, 65535, []uint16{0, 65535, 12345}, nil},
	}
	for _, tc := range tests {
		pat := RangeRegex(tc.lo, tc.hi)
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("RangeRegex(%d,%d) = %q: %v", tc.lo, tc.hi, pat, err)
		}
		for _, v := range tc.match {
			if !re.MatchString(strconv.Itoa(int(v))) {
				t.Errorf("RangeRegex(%d,%d) = %q: should match %d", tc.lo, tc.hi, pat, v)
			}
		}
		for _, v := range tc.reject {
			if re.MatchString(strconv.Itoa(int(v))) {
				t.Errorf("RangeRegex(%d,%d) = %q: should reject %d", tc.lo, tc.hi, pat, v)
			}
		}
	}
}

func TestRangeRegexExhaustiveSmall(t *testing.T) {
	// Exhaustively validate every range within 0..300: the regex must
	// match exactly the integers in [lo,hi].
	for lo := 0; lo <= 300; lo += 7 {
		for hi := lo; hi <= 300; hi += 11 {
			re := regexp.MustCompile(RangeRegex(uint16(lo), uint16(hi)))
			for v := 0; v <= 310; v++ {
				got := re.MatchString(strconv.Itoa(v))
				want := v >= lo && v <= hi
				if got != want {
					t.Fatalf("RangeRegex(%d,%d): value %d: match=%v want %v (pattern %q)",
						lo, hi, v, got, want, re.String())
				}
			}
		}
	}
}

func TestRangeRegexRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		lo := uint16(rng.Intn(65536))
		hi := uint16(rng.Intn(65536))
		if lo > hi {
			lo, hi = hi, lo
		}
		re := regexp.MustCompile(RangeRegex(lo, hi))
		// Probe boundaries and random in/out points.
		probes := []int{int(lo) - 1, int(lo), int(lo) + 1, int(hi) - 1, int(hi), int(hi) + 1}
		for i := 0; i < 20; i++ {
			probes = append(probes, rng.Intn(70000))
		}
		for _, v := range probes {
			if v < 0 {
				continue
			}
			got := re.MatchString(strconv.Itoa(v))
			want := v >= int(lo) && v <= int(hi)
			if got != want {
				t.Fatalf("RangeRegex(%d,%d): value %d: match=%v want %v (pattern %q)",
					lo, hi, v, got, want, re.String())
			}
		}
	}
}

func TestDictionaryLookup(t *testing.T) {
	d := NewDictionary()
	if err := d.Add(&Entry{ASN: 1299, Pattern: RangeRegex(2561, 2569), Sub: SubSuppress}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(&Entry{ASN: 1299, Pattern: RangeRegex(20000, 39999), Sub: SubLocation}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(&Entry{ASN: 3356, Pattern: RangeRegex(100, 199), Sub: SubRelationship}); err != nil {
		t.Fatal(err)
	}

	if got := d.Category(1299, 2565); got != CatAction {
		t.Errorf("1299:2565 = %v", got)
	}
	if got := d.Category(1299, 35130); got != CatInformation {
		t.Errorf("1299:35130 = %v", got)
	}
	if got := d.Category(1299, 9); got != CatUnknown {
		t.Errorf("1299:9 = %v", got)
	}
	if got := d.Category(7018, 100); got != CatUnknown {
		t.Errorf("7018:100 = %v", got)
	}
	if !d.HasASN(3356) || d.HasASN(7018) {
		t.Error("HasASN wrong")
	}
	if d.ASNs() != 2 || d.Len() != 3 {
		t.Errorf("ASNs=%d Len=%d", d.ASNs(), d.Len())
	}
	counts := d.CountByCategory()
	if counts[CatAction] != 1 || counts[CatInformation] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestDictionaryAddBadPattern(t *testing.T) {
	d := NewDictionary()
	if err := d.Add(&Entry{ASN: 1, Pattern: "([", Sub: SubSuppress}); err == nil {
		t.Error("bad pattern: want error")
	}
}

func TestBuildFromPlan(t *testing.T) {
	p := NewPlan(1299)
	p.Add(&Def{Value: 50, Sub: SubSetAttribute})
	p.Add(&Def{Value: 150, Sub: SubSetAttribute})
	p.BeginBlock()
	p.Add(&Def{Value: 20000, Sub: SubLocation})
	p.Add(&Def{Value: 20010, Sub: SubLocation})

	d := NewDictionary()
	if err := d.BuildFromPlan(p); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("entries = %d, want 2", d.Len())
	}
	if got := d.Category(1299, 75); got != CatAction {
		t.Errorf("1299:75 = %v (range regexes cover the whole block)", got)
	}
	if got := d.Category(1299, 20005); got != CatInformation {
		t.Errorf("1299:20005 = %v", got)
	}
}

func TestDictionaryRoundTripIO(t *testing.T) {
	d := NewDictionary()
	d.Add(&Entry{ASN: 1299, Pattern: RangeRegex(2561, 2569), Sub: SubSuppress})
	d.Add(&Entry{ASN: 1299, Pattern: RangeRegex(20000, 39999), Sub: SubLocation})
	d.Add(&Entry{ASN: 174, Pattern: RangeRegex(3000, 3099), Sub: SubAnnounce})

	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDictionary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.ASNs() != 2 {
		t.Fatalf("round trip: Len=%d ASNs=%d", got.Len(), got.ASNs())
	}
	if got.Category(1299, 2561) != CatAction || got.Category(174, 3050) != CatAction {
		t.Error("round trip lost categories")
	}
	if e, ok := got.Lookup(1299, 25000); !ok || e.Sub != SubLocation {
		t.Errorf("Lookup(1299, 25000) = %+v,%v", e, ok)
	}
}

func TestReadDictionaryErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields":  "1299\t^5$\n",
		"bad asn":         "x\tsuppress\t^5$\n",
		"bad subcategory": "1299\tfrobnicate\t^5$\n",
		"bad pattern":     "1299\tsuppress\t([\n",
	}
	for name, in := range cases {
		if _, err := ReadDictionary(bytes.NewBufferString(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// Comments and blanks are fine.
	d, err := ReadDictionary(bytes.NewBufferString("# header\n\n1299\tsuppress\t^5$\n"))
	if err != nil || d.Len() != 1 {
		t.Errorf("comment handling: %v %d", err, d.Len())
	}
}

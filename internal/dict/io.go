package dict

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteTo serializes the dictionary as a tab-separated text file, one
// entry per line (the pattern comes last because it may contain any
// character except a tab):
//
//	# comment
//	<asn>\t<subcategory>\t<pattern>
//
// the same spirit as the NLNOG community-to-text mappings the paper
// collects.
func (d *Dictionary) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	asns := make([]uint32, 0, len(d.byASN))
	for asn := range d.byASN {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		for _, e := range d.byASN[asn] {
			n, err := fmt.Fprintf(bw, "%d\t%s\t%s\n", e.ASN, e.Sub, e.Pattern)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadDictionary parses the WriteTo format. Blank lines and lines
// beginning with '#' are ignored.
func ReadDictionary(r io.Reader) (*Dictionary, error) {
	d := NewDictionary()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("dict: line %d: want 3 fields, have %d", lineNo, len(parts))
		}
		asn, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dict: line %d: bad ASN: %v", lineNo, err)
		}
		sub, ok := ParseSubCategory(parts[1])
		if !ok {
			return nil, fmt.Errorf("dict: line %d: unknown subcategory %q", lineNo, parts[1])
		}
		if err := d.Add(&Entry{ASN: uint32(asn), Pattern: parts[2], Sub: sub}); err != nil {
			return nil, fmt.Errorf("dict: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Report is the BENCH_serve.json schema: one serving-benchmark run,
// environment first so regressions can be attributed, then the
// measured throughput/latency. scripts/serve_bench_smoke.sh validates
// this shape and the CI guard compares P99Micros against the committed
// baseline.
type Report struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	Gomaxprocs int    `json:"gomaxprocs"`

	Mode            string  `json:"mode"` // "closed" or "open"
	DurationSeconds float64 `json:"duration_seconds"`
	Concurrency     int     `json:"concurrency"`
	TargetRate      float64 `json:"target_rate,omitempty"` // open mode only
	Seed            int64   `json:"seed"`
	Paths           int     `json:"paths"` // size of the request-key universe

	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	DroppedSend int64   `json:"dropped_send,omitempty"`
	QPS         float64 `json:"qps"`

	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`
	MaxMicros  float64 `json:"max_us"`
	MeanMicros float64 `json:"mean_us"`

	// RSSBytes is the server's resident set at the end of the run, 0
	// when unavailable (no /proc or unknown pid).
	RSSBytes int64 `json:"rss_bytes"`
}

// BuildReport assembles a Report from a finished run. serverPID
// locates the intentd process whose RSS is sampled; 0 skips sampling.
func BuildReport(cfg Config, res *Result, serverPID int) Report {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	r := Report{
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		Gomaxprocs:      runtime.GOMAXPROCS(0),
		Mode:            res.Mode,
		DurationSeconds: cfg.Duration.Seconds(),
		Concurrency:     cfg.Concurrency,
		Seed:            cfg.Seed,
		Paths:           len(cfg.Paths),
		Requests:        res.Requests,
		Errors:          res.Errors,
		DroppedSend:     res.DroppedSend,
		QPS:             res.QPS,
		P50Micros:       us(res.Latency.Quantile(0.50)),
		P90Micros:       us(res.Latency.Quantile(0.90)),
		P99Micros:       us(res.Latency.Quantile(0.99)),
		P999Micros:      us(res.Latency.Quantile(0.999)),
		MaxMicros:       us(res.Latency.Max()),
		MeanMicros:      res.Latency.Mean() / 1e3,
	}
	if res.Mode == ModeOpen {
		r.TargetRate = cfg.Rate
	}
	if serverPID > 0 {
		if rss, err := ReadRSS(serverPID); err == nil {
			r.RSSBytes = rss
		}
	}
	return r
}

// Validate rejects reports that could not have come from a real run,
// so a broken harness fails the smoke instead of committing zeros.
func (r Report) Validate() error {
	switch {
	case r.GoVersion == "":
		return fmt.Errorf("report: go_version missing")
	case r.Mode != ModeClosed && r.Mode != ModeOpen:
		return fmt.Errorf("report: bad mode %q", r.Mode)
	case r.DurationSeconds <= 0:
		return fmt.Errorf("report: non-positive duration")
	case r.Requests <= 0:
		return fmt.Errorf("report: no requests completed")
	case r.Errors == r.Requests:
		return fmt.Errorf("report: every request failed")
	case r.QPS <= 0:
		return fmt.Errorf("report: non-positive qps")
	case r.P99Micros <= 0:
		return fmt.Errorf("report: non-positive p99")
	case r.P50Micros > r.P99Micros || r.P99Micros > r.P999Micros:
		return fmt.Errorf("report: quantiles out of order (p50=%v p99=%v p999=%v)",
			r.P50Micros, r.P99Micros, r.P999Micros)
	}
	return nil
}

// CompareBaseline fails when the current p99 regressed more than
// maxRegress (a fraction: 0.25 allows +25%) over the baseline, or when
// the error rate worsened past 1%. Throughput is advisory — CI hosts
// vary too much for a hard QPS gate.
func CompareBaseline(baseline, current Report, maxRegress float64) error {
	if baseline.P99Micros <= 0 {
		return fmt.Errorf("baseline has no p99")
	}
	limit := baseline.P99Micros * (1 + maxRegress)
	if current.P99Micros > limit {
		return fmt.Errorf("p99 regression: %.1fµs > %.1fµs (baseline %.1fµs +%d%%)",
			current.P99Micros, limit, baseline.P99Micros, int(maxRegress*100))
	}
	if current.Requests > 0 && float64(current.Errors)/float64(current.Requests) > 0.01 {
		return fmt.Errorf("error rate %.2f%% exceeds 1%%",
			100*float64(current.Errors)/float64(current.Requests))
	}
	return nil
}

// WriteJSON renders the report with stable, indented formatting.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a BENCH_serve.json.
func ReadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// ReadRSS returns a process's resident set size in bytes from
// /proc/<pid>/status (VmRSS). Unsupported platforms return an error;
// callers treat RSS as optional.
func ReadRSS(pid int) (int64, error) {
	f, err := os.Open(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line) // "VmRSS:  12345 kB"
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, err
		}
		return kb * 1024, nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("no VmRSS in /proc/%d/status", pid)
}

// WaitReady polls url until it answers 2xx or the deadline passes —
// the harness's server-boot barrier.
func WaitReady(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode < 300 {
				return nil
			}
			lastErr = fmt.Errorf("%s returned %s", url, resp.Status)
		} else {
			lastErr = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server not ready after %v: %w", timeout, lastErr)
}

// Package loadgen is the closed-loop load harness behind cmd/intentload:
// it drives an intentd instance with a deterministic, zipf-skewed
// request mix and reports throughput and latency quantiles in the
// BENCH_serve.json schema the CI smoke validates.
package loadgen

import (
	"fmt"
	"math/bits"
)

// histSubBits is the log-linear resolution: each power-of-two range is
// split into 2^histSubBits linear sub-buckets, bounding quantile error
// at ~1.6% of the value — the same layout HDR histograms use.
const histSubBits = 6

const histSub = 1 << histSubBits // sub-buckets per power of two

// histBuckets covers values up to 2^63-1 nanoseconds (~292 years):
// values below histSub land in one linear region, and each of the
// remaining 63-histSubBits power ranges contributes histSub buckets.
const histBuckets = histSub + (63-histSubBits)*histSub

// Hist is a log-linear latency histogram over int64 nanoseconds.
// Recording is constant-time and allocation-free; it is not
// synchronized — give each worker its own and Merge at the end.
type Hist struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{min: int64(^uint64(0) >> 1)}
}

// bucketIdx maps a non-negative value to its bucket: values below
// histSub get exact buckets, larger values share a power-of-two range
// split into histSub linear sub-buckets.
func bucketIdx(v int64) int {
	if v < histSub {
		return int(v)
	}
	pow := bits.Len64(uint64(v)) - 1 // >= histSubBits
	sub := int(v>>(uint(pow)-histSubBits)) & (histSub - 1)
	return histSub + (pow-histSubBits)*histSub + sub
}

// bucketLow returns the lowest value a bucket holds — the value
// reported for quantiles, so estimates never exceed the true value.
func bucketLow(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	pow := uint(idx/histSub-1) + histSubBits
	sub := int64(idx % histSub)
	return (int64(1) << pow) | (sub << (pow - histSubBits))
}

// Record adds one observation. Negative values count as zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIdx(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.count }

// Mean returns the arithmetic mean, 0 when empty.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest recorded value, 0 when empty.
func (h *Hist) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded value, 0 when empty.
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the value at quantile q in [0,1]: the smallest
// bucket lower-bound such that at least q of the observations are at
// or below it. Exact min/max are substituted at the extremes.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if c > 0 && seen > rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// String summarizes the distribution for logs.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v max=%v",
		h.count, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}

package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the intentd address, e.g. "http://127.0.0.1:8642".
	BaseURL string
	// Paths are the request paths to draw from, relative to BaseURL.
	// Draws are zipf-skewed toward the front of the slice, modeling the
	// hot-key traffic the response cache is built for.
	Paths []string
	// Mode selects the loop discipline: "closed" keeps Concurrency
	// workers issuing back-to-back requests (throughput-bound), "open"
	// paces arrivals at Rate per second regardless of completions and
	// measures latency from the scheduled arrival, so a slow server
	// shows up as queueing delay instead of being coordinated away.
	Mode string
	// Duration is how long to drive load.
	Duration time.Duration
	// Concurrency is the worker count (closed) or the in-flight cap
	// (open). 0 means 8.
	Concurrency int
	// Rate is the open-loop arrival rate in requests/second; ignored
	// when closed. 0 means 1000.
	Rate float64
	// Seed makes the request sequence reproducible across runs.
	Seed int64
	// ZipfS is the skew exponent; 0 means 1.1 (mild hot-key skew).
	ZipfS float64
	// Client overrides the HTTP client; nil uses a keep-alive client
	// sized to Concurrency.
	Client *http.Client
	// WarmupFraction of Duration is driven but not recorded, letting
	// connection setup and cache fill settle out; 0 means 0.1,
	// negative disables warmup.
	WarmupFraction float64
}

// ModeClosed and ModeOpen are the Config.Mode values.
const (
	ModeClosed = "closed"
	ModeOpen   = "open"
)

func (cfg *Config) normalize() error {
	if cfg.BaseURL == "" {
		return errors.New("loadgen: BaseURL required")
	}
	if len(cfg.Paths) == 0 {
		return errors.New("loadgen: at least one request path required")
	}
	switch cfg.Mode {
	case ModeClosed, ModeOpen:
	case "":
		cfg.Mode = ModeClosed
	default:
		return fmt.Errorf("loadgen: unknown mode %q (want closed or open)", cfg.Mode)
	}
	if cfg.Duration <= 0 {
		return errors.New("loadgen: Duration must be positive")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1000
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.WarmupFraction == 0 {
		cfg.WarmupFraction = 0.1
	}
	if cfg.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = cfg.Concurrency
		cfg.Client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	return nil
}

// Result is the measured outcome of a Run.
type Result struct {
	Mode        string
	Elapsed     time.Duration // measured (post-warmup) window
	Requests    int64
	Errors      int64 // transport failures and non-2xx statuses
	QPS         float64
	Latency     *Hist // nanoseconds
	DroppedSend int64 // open mode: arrivals skipped because all workers were busy
}

// pathPicker draws zipf-skewed path indexes deterministically.
type pathPicker struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	paths []string
}

func newPathPicker(seed int64, s float64, paths []string) *pathPicker {
	rng := rand.New(rand.NewSource(seed))
	var z *rand.Zipf
	if len(paths) > 1 {
		z = rand.NewZipf(rng, s, 1, uint64(len(paths)-1))
	}
	return &pathPicker{rng: rng, zipf: z, paths: paths}
}

func (p *pathPicker) next() string {
	if p.zipf == nil {
		return p.paths[0]
	}
	return p.paths[p.zipf.Uint64()]
}

// worker state shared between the two loop disciplines.
type worker struct {
	hist    *Hist
	reqs    int64
	errs    int64
	client  *http.Client
	baseURL string
}

// hit issues one GET and returns the latency; ok is false on transport
// error or non-2xx status.
func (w *worker) hit(ctx context.Context, path string) (time.Duration, bool) {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.baseURL+path, nil)
	if err != nil {
		return 0, false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode >= 200 && resp.StatusCode < 300
}

// record tallies one request into the worker, counting latency only
// when recording (post-warmup).
func (w *worker) record(d time.Duration, ok, recording bool) {
	if !recording {
		return
	}
	w.reqs++
	if !ok {
		w.errs++
		return
	}
	w.hist.Record(int64(d))
}

// Run drives the configured load until Duration elapses or ctx is
// canceled, and returns the merged measurements.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	warmup := time.Duration(0)
	if cfg.WarmupFraction > 0 {
		warmup = time.Duration(cfg.WarmupFraction * float64(cfg.Duration))
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	recordAfter := time.Now().Add(warmup)

	workers := make([]*worker, cfg.Concurrency)
	for i := range workers {
		workers[i] = &worker{hist: NewHist(), client: cfg.Client, baseURL: cfg.BaseURL}
	}

	var dropped int64
	var wg sync.WaitGroup
	switch cfg.Mode {
	case ModeClosed:
		for i, w := range workers {
			wg.Add(1)
			go func(i int, w *worker) {
				defer wg.Done()
				picker := newPathPicker(cfg.Seed+int64(i), cfg.ZipfS, cfg.Paths)
				for ctx.Err() == nil {
					d, ok := w.hit(ctx, picker.next())
					if ctx.Err() != nil {
						return // canceled mid-request; latency is not the server's
					}
					w.record(d, ok, time.Now().After(recordAfter))
				}
			}(i, w)
		}
	case ModeOpen:
		// Arrivals are scheduled on a fixed cadence; workers pull them
		// from a channel carrying the scheduled time, and latency runs
		// from that schedule, so server slowness surfaces as queueing
		// delay (no coordinated omission). A full channel means every
		// worker is busy and the queue bound is exceeded: the arrival is
		// counted as dropped rather than silently deferred.
		arrivals := make(chan time.Time, cfg.Concurrency)
		for i, w := range workers {
			wg.Add(1)
			go func(i int, w *worker) {
				defer wg.Done()
				picker := newPathPicker(cfg.Seed+int64(i), cfg.ZipfS, cfg.Paths)
				for sched := range arrivals {
					_, ok := w.hit(ctx, picker.next())
					if ctx.Err() != nil {
						return
					}
					w.record(time.Since(sched), ok, sched.After(recordAfter))
				}
			}(i, w)
		}
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		go func() {
			defer close(arrivals)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case sched := <-tick.C:
					select {
					case arrivals <- sched:
					default:
						atomic.AddInt64(&dropped, 1)
					}
				}
			}
		}()
	}
	wg.Wait()

	res := &Result{
		Mode:        cfg.Mode,
		Elapsed:     cfg.Duration - warmup,
		Latency:     NewHist(),
		DroppedSend: dropped,
	}
	for _, w := range workers {
		res.Requests += w.reqs
		res.Errors += w.errs
		res.Latency.Merge(w.hist)
	}
	if res.Elapsed > 0 {
		res.QPS = float64(res.Requests) / res.Elapsed.Seconds()
	}
	return res, nil
}

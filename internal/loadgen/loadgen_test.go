package loadgen

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// TestHistBucketRoundTrip: bucketLow(bucketIdx(v)) <= v and within the
// layout's relative-error bound for every magnitude.
func TestHistBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 63, 64, 65, 127, 128, 1000, 4096, 1e6, 1e9, 1e12}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		values = append(values, rng.Int63n(int64(1)<<uint(10+rng.Intn(40))))
	}
	for _, v := range values {
		idx := bucketIdx(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		low := bucketLow(idx)
		if low > v {
			t.Fatalf("bucketLow(%d) = %d exceeds value %d", idx, low, v)
		}
		// Sub-bucket width is 2^(pow-histSubBits): relative error < 1/64.
		if v >= histSub && float64(v-low)/float64(v) > 1.0/float64(histSub) {
			t.Fatalf("value %d landed in bucket starting %d (err %.4f)", v, low, float64(v-low)/float64(v))
		}
		// Monotonic: the next bucket starts above this value's bucket.
		if idx+1 < histBuckets && bucketLow(idx+1) <= low {
			t.Fatalf("bucket %d (low %d) not below bucket %d (low %d)", idx, low, idx+1, bucketLow(idx+1))
		}
	}
}

// TestHistQuantiles: quantiles over a known uniform distribution land
// within the layout's error bound, and Merge equals bulk recording.
func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	for v := int64(1); v <= 100000; v++ {
		h.Record(v)
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.50, 50000}, {0.90, 90000}, {0.99, 99000}, {0.999, 99900}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if ratio := float64(got) / float64(c.want); ratio < 0.98 || ratio > 1.02 {
			t.Errorf("p%g = %d, want ~%d", c.q*100, got, c.want)
		}
	}
	if h.Max() != 100000 || h.Min() != 1 || h.Count() != 100000 {
		t.Fatalf("min/max/count = %d/%d/%d", h.Min(), h.Max(), h.Count())
	}

	a, b := NewHist(), NewHist()
	for v := int64(1); v <= 100000; v++ {
		if v%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(b)
	for _, c := range checks {
		if a.Quantile(c.q) != h.Quantile(c.q) {
			t.Fatalf("merged p%g = %d, bulk %d", c.q*100, a.Quantile(c.q), h.Quantile(c.q))
		}
	}
}

// TestRunClosedLoop drives a local stub server and checks the report
// plumbing end to end, including schema validation and RSS sampling.
func TestRunClosedLoop(t *testing.T) {
	var served int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	cfg := Config{
		BaseURL:        ts.URL,
		Paths:          []string{"/v1/community/100:10", "/v1/community/100:20", "/v1/stats"},
		Mode:           ModeClosed,
		Duration:       300 * time.Millisecond,
		Concurrency:    4,
		Seed:           1,
		WarmupFraction: -1,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 || res.QPS <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Latency.Count() != res.Requests {
		t.Fatalf("histogram count %d != requests %d", res.Latency.Count(), res.Requests)
	}

	rep := BuildReport(cfg, res, os.Getpid())
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v\n%+v", err, rep)
	}
	if rep.RSSBytes == 0 {
		if _, err := os.Stat("/proc/self/status"); err == nil {
			t.Fatal("RSS sampling returned 0 on a /proc platform")
		}
	}

	// Baseline comparison: identical run passes, a 10x-p99 run fails.
	if err := CompareBaseline(rep, rep, 0.25); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	slow := rep
	slow.P99Micros *= 10
	if err := CompareBaseline(rep, slow, 0.25); err == nil {
		t.Fatal("10x p99 regression passed the baseline gate")
	}
}

// TestRunOpenLoop checks the paced mode completes and respects the
// schedule-based latency accounting.
func TestRunOpenLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:        ts.URL,
		Paths:          []string{"/x"},
		Mode:           ModeOpen,
		Duration:       300 * time.Millisecond,
		Concurrency:    4,
		Rate:           500,
		Seed:           1,
		WarmupFraction: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("result %+v", res)
	}
	// ~150 arrivals scheduled; allow wide slack for CI jitter but catch
	// a runaway closed loop (which would do thousands).
	if res.Requests > 400 {
		t.Fatalf("open loop issued %d requests at rate 500 over 300ms — not paced", res.Requests)
	}
}

// TestReportValidateRejectsGarbage: the schema gate actually gates.
func TestReportValidateRejectsGarbage(t *testing.T) {
	good := Report{
		GoVersion: "go1.22", Mode: ModeClosed, DurationSeconds: 1,
		Requests: 100, QPS: 100, P50Micros: 10, P99Micros: 20, P999Micros: 30,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	bad := []Report{
		{},
		{GoVersion: "go1.22", Mode: "sideways", DurationSeconds: 1, Requests: 1, QPS: 1, P50Micros: 1, P99Micros: 2, P999Micros: 3},
		{GoVersion: "go1.22", Mode: ModeClosed, DurationSeconds: 1, Requests: 0, QPS: 1, P50Micros: 1, P99Micros: 2, P999Micros: 3},
		{GoVersion: "go1.22", Mode: ModeClosed, DurationSeconds: 1, Requests: 5, Errors: 5, QPS: 1, P50Micros: 1, P99Micros: 2, P999Micros: 3},
		{GoVersion: "go1.22", Mode: ModeClosed, DurationSeconds: 1, Requests: 1, QPS: 1, P50Micros: 5, P99Micros: 2, P999Micros: 3},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad report %d accepted: %+v", i, r)
		}
	}
}

package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"bgpintent/internal/core"
)

// Defaults for Config fields left zero.
const (
	DefaultReadTimeout      = 30 * time.Second
	DefaultStaleAfter       = 2 * time.Minute
	DefaultBackoffBase      = 100 * time.Millisecond
	DefaultBackoffMax       = 30 * time.Second
	DefaultRetryBudget      = 8
	DefaultReorderWindow    = 64
	DefaultSnapshotEvery    = 5000
	DefaultSnapshotInterval = 10 * time.Second
)

// ErrRetryBudget is returned by Wait when the Ingestor gave up
// reconnecting: RetryBudget consecutive connect/read cycles made no
// progress. The window and the last published snapshot remain valid —
// the service degrades to stale-but-serving, it does not crash.
var ErrRetryBudget = errors.New("stream: retry budget exhausted, feed abandoned")

// errStalled marks a read deadline expiry (silent feed hang).
var errStalled = errors.New("stream: read stalled past deadline")

// errGap marks an unrecoverable ordering gap: the reorder buffer
// overflowed or the session ended with buffered out-of-order updates,
// so the Ingestor resynchronizes by reconnecting from the last applied
// sequence number.
var errGap = errors.New("stream: sequence gap, resynchronizing")

// Config configures an Ingestor.
type Config struct {
	// Source is the feed to consume.
	Source Source
	// Window configures the rolling window over the tuple store.
	Window WindowConfig
	// Classify are the classifier options for delta snapshots
	// (Orgs must be nil for the delta path to engage; with Orgs set
	// every snapshot is a full reclassification).
	Classify core.Options

	// ReadTimeout bounds one Recv: a feed silent for longer is treated
	// as stalled and the session is torn down and re-established.
	ReadTimeout time.Duration
	// StaleAfter is the wall-clock age of the last applied update
	// beyond which Health reports the serving data as stale.
	StaleAfter time.Duration
	// BackoffBase/BackoffMax shape the jittered exponential backoff
	// between reconnect attempts.
	BackoffBase, BackoffMax time.Duration
	// RetryBudget is how many consecutive no-progress connect/read
	// cycles are tolerated before the Ingestor gives up (ErrRetryBudget).
	// 0 means DefaultRetryBudget; negative means never give up.
	RetryBudget int
	// ReorderWindow bounds the out-of-order buffer; a gap wider than
	// this forces a resync reconnect. 0 means DefaultReorderWindow.
	ReorderWindow int

	// SnapshotEvery emits a delta snapshot after this many applied
	// updates; SnapshotInterval after this much wall time (whichever
	// comes first, and only when something changed). Zeros mean the
	// defaults; negative disables that trigger.
	SnapshotEvery    int
	SnapshotInterval time.Duration

	// Seed drives the backoff jitter, so failure schedules are
	// replayable in tests.
	Seed int64

	// OnSnapshot receives every delta snapshot (including the final one
	// of a finite feed), called from the ingest goroutine: the callback
	// must swap and return, not block.
	OnSnapshot func(inf *core.Inferences, st WindowStats, lastSeq uint64)
	// OnUpdate receives every applied update in exact sequence order,
	// after it entered the window — the tap a streaming consumer (the
	// anomaly engine) listens on. Called from the ingest goroutine: it
	// must hand off and return, not block; a slow OnUpdate stalls
	// ingestion itself.
	OnUpdate func(u Update)
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time view of the Ingestor's counters; every
// field is read from atomics, so Stats is safe to call from any
// goroutine while ingestion runs.
type Stats struct {
	State         FeedState
	LastSeq       uint64
	LastUpdate    time.Time
	Updates       uint64
	Duplicates    uint64
	Reordered     uint64
	CorruptFrames uint64
	Disconnects   uint64
	Stalls        uint64
	Resyncs       uint64
	Reconnects    uint64
	Snapshots     uint64
	Window        WindowStats
}

// Health is the degradation-aware health verdict.
type Health struct {
	// Status is "healthy", "stale" or "degraded" (see Ingestor.Health).
	Status string
	State  FeedState
	// LastSeq/LastUpdate identify the freshest applied update.
	LastSeq    uint64
	LastUpdate time.Time
	// Staleness is the wall-clock age of LastUpdate.
	Staleness time.Duration
}

// Ingestor consumes a Source, survives its failures, and keeps a
// rolling-window classification fresh. One goroutine owns the window
// and the session; everything exported is answered from atomics.
type Ingestor struct {
	cfg Config
	win *Window

	prev *core.Inferences // last published classification (goroutine-local)

	state        atomic.Int32
	lastSeq      atomic.Uint64
	lastUpdateAt atomic.Int64 // unix nanos; 0 until the first update
	startedAt    time.Time

	updates       atomic.Uint64
	duplicates    atomic.Uint64
	reordered     atomic.Uint64
	corruptFrames atomic.Uint64
	disconnects   atomic.Uint64
	stalls        atomic.Uint64
	resyncs       atomic.Uint64
	connects      atomic.Uint64
	snapshots     atomic.Uint64
	winStats      atomic.Pointer[WindowStats]

	sinceSnap  int
	lastSnapAt time.Time
	rng        *rand.Rand

	done chan struct{}
	err  error
}

// Start validates cfg and launches the ingest loop. It returns
// immediately; Wait (or Done) observes termination. Canceling ctx
// stops the loop promptly — mid-read, mid-backoff, or mid-classify —
// and no goroutine outlives Wait's return.
func Start(ctx context.Context, cfg Config) (*Ingestor, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("stream: Config.Source is nil")
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = DefaultStaleAfter
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.ReorderWindow <= 0 {
		cfg.ReorderWindow = DefaultReorderWindow
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.SnapshotInterval == 0 {
		cfg.SnapshotInterval = DefaultSnapshotInterval
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	in := &Ingestor{
		cfg:        cfg,
		win:        NewWindow(cfg.Window),
		startedAt:  time.Now(),
		lastSnapAt: time.Now(),
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x19e57)),
		done:       make(chan struct{}),
	}
	in.winStats.Store(&WindowStats{})
	go func() {
		in.err = in.run(ctx)
		close(in.done)
	}()
	return in, nil
}

// Done closes when the ingest loop has fully stopped.
func (in *Ingestor) Done() <-chan struct{} { return in.done }

// Wait blocks until the loop stops and returns why: nil after a finite
// feed completed, ctx.Err() after cancellation, ErrRetryBudget after
// giving up.
func (in *Ingestor) Wait() error {
	<-in.done
	return in.err
}

// Stats snapshots the counters.
func (in *Ingestor) Stats() Stats {
	connects := in.connects.Load()
	var reconnects uint64
	if connects > 1 {
		reconnects = connects - 1
	}
	return Stats{
		State:         FeedState(in.state.Load()),
		LastSeq:       in.lastSeq.Load(),
		LastUpdate:    in.lastUpdateTime(),
		Updates:       in.updates.Load(),
		Duplicates:    in.duplicates.Load(),
		Reordered:     in.reordered.Load(),
		CorruptFrames: in.corruptFrames.Load(),
		Disconnects:   in.disconnects.Load(),
		Stalls:        in.stalls.Load(),
		Resyncs:       in.resyncs.Load(),
		Reconnects:    reconnects,
		Snapshots:     in.snapshots.Load(),
		Window:        *in.winStats.Load(),
	}
}

func (in *Ingestor) lastUpdateTime() time.Time {
	ns := in.lastUpdateAt.Load()
	if ns == 0 {
		return in.startedAt
	}
	return time.Unix(0, ns)
}

// Health derives the degradation verdict: "degraded" once the feed is
// abandoned (retry budget exhausted), "stale" while the last applied
// update is older than StaleAfter and the feed has not cleanly ended,
// "healthy" otherwise. A stale-or-degraded service still serves — the
// verdict is advisory, never a refusal.
func (in *Ingestor) Health() Health {
	state := FeedState(in.state.Load())
	last := in.lastUpdateTime()
	staleness := time.Since(last)
	status := "healthy"
	switch {
	case state == StateDown:
		status = "degraded"
	case state != StateEnded && staleness > in.cfg.StaleAfter:
		status = "stale"
	}
	return Health{
		Status:     status,
		State:      state,
		LastSeq:    in.lastSeq.Load(),
		LastUpdate: last,
		Staleness:  staleness,
	}
}

func (in *Ingestor) setState(s FeedState) { in.state.Store(int32(s)) }

// run is the reconnect loop: connect (resuming after the last applied
// sequence number), consume until the session fails, back off, repeat.
// failures counts consecutive cycles that applied nothing.
func (in *Ingestor) run(ctx context.Context) error {
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		in.setState(StateConnecting)
		sess, err := in.cfg.Source.Connect(ctx, in.lastSeq.Load())
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			in.disconnects.Add(1)
			in.cfg.Logf("stream: connect failed: %v", err)
			failures++
			if err := in.backoff(ctx, failures); err != nil {
				return err
			}
			continue
		}
		in.connects.Add(1)
		progressed, err := in.consume(ctx, sess)
		sess.Close()
		if progressed {
			failures = 0
		}
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, io.EOF):
			in.setState(StateEnded)
			in.snapshot(ctx)
			in.cfg.Logf("stream: feed ended at seq %d (%d updates applied)",
				in.lastSeq.Load(), in.updates.Load())
			return nil
		default:
			in.cfg.Logf("stream: session lost at seq %d: %v", in.lastSeq.Load(), err)
			failures++
			if err := in.backoff(ctx, failures); err != nil {
				return err
			}
		}
	}
}

// backoff sleeps the jittered exponential delay for the given failure
// streak, honoring cancellation, and enforces the retry budget.
func (in *Ingestor) backoff(ctx context.Context, failures int) error {
	if in.cfg.RetryBudget > 0 && failures > in.cfg.RetryBudget {
		in.setState(StateDown)
		in.cfg.Logf("stream: giving up after %d consecutive failures; serving last good snapshot", failures-1)
		return ErrRetryBudget
	}
	d := in.cfg.BackoffBase << (failures - 1)
	if d <= 0 || d > in.cfg.BackoffMax {
		d = in.cfg.BackoffMax
	}
	// Full jitter in [d/2, d): desynchronizes reconnect herds without
	// ever collapsing the delay to zero.
	d = d/2 + time.Duration(in.rng.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// consume reads one session until it fails, applying updates in
// sequence order: duplicates (Seq already applied) are dropped, small
// reorderings are buffered until the gap fills, and a gap that cannot
// fill forces a resync via the resume protocol. Returns whether any
// update was applied, and why the session ended.
func (in *Ingestor) consume(ctx context.Context, sess Session) (bool, error) {
	progressed := false
	pending := make(map[uint64]Update)
	for {
		rctx, cancel := context.WithTimeout(ctx, in.cfg.ReadTimeout)
		u, err := sess.Recv(rctx)
		cancel()
		if err != nil {
			switch {
			case ctx.Err() != nil:
				return progressed, ctx.Err()
			case errors.Is(err, context.DeadlineExceeded):
				in.stalls.Add(1)
				return progressed, errStalled
			case errors.Is(err, ErrCorruptFrame):
				in.corruptFrames.Add(1)
				return progressed, err
			case errors.Is(err, io.EOF):
				if len(pending) > 0 {
					// The feed ended with a hole before our buffered
					// updates: resume to recover the missing ones.
					in.resyncs.Add(1)
					return progressed, errGap
				}
				return progressed, io.EOF
			default:
				in.disconnects.Add(1)
				return progressed, err
			}
		}
		in.setState(StateLive)
		next := in.lastSeq.Load() + 1
		switch {
		case u.Seq < next:
			in.duplicates.Add(1)
			continue
		case u.Seq > next:
			in.reordered.Add(1)
			if _, dup := pending[u.Seq]; !dup {
				pending[u.Seq] = u
			}
			if len(pending) > in.cfg.ReorderWindow {
				in.resyncs.Add(1)
				return progressed, errGap
			}
			continue
		}
		in.apply(u)
		progressed = true
		for {
			nu, ok := pending[in.lastSeq.Load()+1]
			if !ok {
				break
			}
			delete(pending, nu.Seq)
			in.apply(nu)
		}
		if in.shouldSnapshot() {
			if err := in.snapshot(ctx); err != nil {
				return progressed, err
			}
		}
	}
}

// apply feeds one in-order update into the window and the OnUpdate tap.
func (in *Ingestor) apply(u Update) {
	in.win.Add(u)
	in.lastSeq.Store(u.Seq)
	in.lastUpdateAt.Store(time.Now().UnixNano())
	in.updates.Add(1)
	in.sinceSnap++
	if in.cfg.OnUpdate != nil {
		in.cfg.OnUpdate(u)
	}
}

func (in *Ingestor) shouldSnapshot() bool {
	if in.sinceSnap == 0 {
		return false
	}
	if in.cfg.SnapshotEvery > 0 && in.sinceSnap >= in.cfg.SnapshotEvery {
		return true
	}
	return in.cfg.SnapshotInterval > 0 && time.Since(in.lastSnapAt) >= in.cfg.SnapshotInterval
}

// snapshot reclassifies the dirty αs and publishes the delta result.
// Only a canceled context is an error; the previous snapshot stays
// published on any failure.
func (in *Ingestor) snapshot(ctx context.Context) error {
	dirty := in.win.TakeDirty()
	if dirty == nil && in.prev != nil {
		in.lastSnapAt = time.Now()
		in.sinceSnap = 0
		return nil // nothing changed
	}
	inf, err := core.ClassifyDelta(ctx, in.win.Store(), in.cfg.Classify, in.prev, dirty)
	if err != nil {
		in.win.RestoreDirty(dirty) // keep the αs dirty for the next tick
		if ctx.Err() != nil {
			return ctx.Err()
		}
		in.cfg.Logf("stream: delta classify failed (keeping previous snapshot): %v", err)
		return nil
	}
	in.prev = inf
	st := in.win.Stats()
	in.winStats.Store(&st)
	in.snapshots.Add(1)
	in.lastSnapAt = time.Now()
	in.sinceSnap = 0
	if in.cfg.OnSnapshot != nil {
		in.cfg.OnSnapshot(inf, st, in.lastSeq.Load())
	}
	return nil
}

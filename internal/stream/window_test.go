package stream

import (
	"slices"
	"testing"
	"time"

	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
)

// wu builds a synthetic update for window tests: one VP, a path, and
// communities given as (asn, value) pairs.
func wu(seq uint64, at time.Time, path []uint32, comms ...uint32) Update {
	cs := make(bgp.Communities, 0, len(comms)/2)
	for i := 0; i+1 < len(comms); i += 2 {
		cs = append(cs, bgp.NewCommunity(uint16(comms[i]), uint16(comms[i+1])))
	}
	return Update{Seq: seq, Time: at, VP: path[0], Path: path, Comms: cs}
}

// refStore rebuilds a tuple store from scratch out of updates — the
// oracle an incrementally-maintained window store must match.
func refStore(ups []Update) *core.TupleStore {
	ts := core.NewTupleStore()
	for _, u := range ups {
		ts.AddView(u.VP, u.Path, u.Comms)
		ts.NoteLarge(u.LargeComms)
	}
	return ts
}

// sameStore compares the observable content of two tuple stores.
func sameStore(t *testing.T, got, want *core.TupleStore) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("tuples: got %d, want %d", got.Len(), want.Len())
	}
	if got.PathCount() != want.PathCount() {
		t.Fatalf("paths: got %d, want %d", got.PathCount(), want.PathCount())
	}
	gc, wc := got.Communities(), want.Communities()
	slices.Sort(gc)
	slices.Sort(wc)
	if !slices.Equal(gc, wc) {
		t.Fatalf("community sets differ: got %d, want %d", len(gc), len(wc))
	}
	gv, wv := got.VPSet(), want.VPSet()
	slices.Sort(gv)
	slices.Sort(wv)
	if !slices.Equal(gv, wv) {
		t.Fatalf("VP sets differ: %d vs %d", len(gv), len(wv))
	}
}

func TestWindowUnboundedMatchesBatch(t *testing.T) {
	w := NewWindow(WindowConfig{}) // Span 0: no eviction
	ups := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 1}), 0, 0)
	for _, u := range ups {
		w.Add(u)
	}
	sameStore(t, w.Store(), refStore(ups))
	st := w.Stats()
	if st.Evicted != 0 || st.Rebuilds != 0 {
		t.Fatalf("unbounded window evicted %d / rebuilt %d times", st.Evicted, st.Rebuilds)
	}
	if st.Updates != len(ups) {
		t.Fatalf("Updates = %d, want %d", st.Updates, len(ups))
	}
}

func TestWindowEvicts(t *testing.T) {
	// Span 4h in 4 buckets of 1h; updates one hour apart, so each Add
	// past the fourth opens a bucket and evicts the tail one.
	epoch := time.Unix(1_700_000_000, 0).UTC()
	w := NewWindow(WindowConfig{Span: 4 * time.Hour, Buckets: 4})
	var ups []Update
	for i := 0; i < 10; i++ {
		u := wu(uint64(i+1), epoch.Add(time.Duration(i)*time.Hour),
			[]uint32{uint32(100 + i), 200}, uint32(300+i), 10)
		ups = append(ups, u)
		w.Add(u)
	}
	st := w.Stats()
	if st.Evicted != 6 {
		t.Fatalf("Evicted = %d, want 6 (10 hourly updates, 4-bucket window)", st.Evicted)
	}
	if st.Rebuilds == 0 {
		t.Fatal("eviction without a store rebuild")
	}
	if st.Updates != 4 {
		t.Fatalf("live Updates = %d, want 4", st.Updates)
	}
	// The store must equal one rebuilt from only the surviving updates.
	sameStore(t, w.Store(), refStore(ups[6:]))
	if got, want := st.Oldest, ups[6].Time; !got.Equal(want) {
		t.Fatalf("Oldest = %v, want %v", got, want)
	}
	if got, want := st.Newest, ups[9].Time; !got.Equal(want) {
		t.Fatalf("Newest = %v, want %v", got, want)
	}
}

func TestWindowTimeJumpFastForward(t *testing.T) {
	// A feed-time jump far past the window (long stall, loop wrap) must
	// evict everything old without materializing intermediate buckets.
	epoch := time.Unix(1_700_000_000, 0).UTC()
	w := NewWindow(WindowConfig{Span: time.Hour, Buckets: 4})
	w.Add(wu(1, epoch, []uint32{1, 2}, 10, 1))
	w.Add(wu(2, epoch.Add(10*365*24*time.Hour), []uint32{3, 4}, 20, 2))
	st := w.Stats()
	if st.Updates != 1 || st.Evicted != 1 {
		t.Fatalf("after 10-year jump: live=%d evicted=%d, want 1/1", st.Updates, st.Evicted)
	}
	sameStore(t, w.Store(), refStore([]Update{wu(2, epoch, []uint32{3, 4}, 20, 2)}))
}

func TestWindowStragglerStays(t *testing.T) {
	// An update whose feed time is older than the newest bucket lands in
	// it rather than being dropped: conservative, never lossy.
	epoch := time.Unix(1_700_000_000, 0).UTC()
	w := NewWindow(WindowConfig{Span: 4 * time.Hour, Buckets: 4})
	w.Add(wu(1, epoch.Add(2*time.Hour), []uint32{1, 2}, 10, 1))
	w.Add(wu(2, epoch, []uint32{3, 4}, 20, 2)) // straggler, 2h behind
	if st := w.Stats(); st.Updates != 2 || st.Evicted != 0 {
		t.Fatalf("straggler handling: live=%d evicted=%d, want 2/0", st.Updates, st.Evicted)
	}
}

func TestWindowDirtyTracking(t *testing.T) {
	epoch := time.Unix(1_700_000_000, 0).UTC()
	w := NewWindow(WindowConfig{Span: 2 * time.Hour, Buckets: 2})

	// First add: comm α 300 dirty, path ASNs 100/200 newly on-path.
	w.Add(wu(1, epoch, []uint32{100, 200}, 300, 10))
	d := w.TakeDirty()
	for _, a := range []uint16{300, 100, 200} {
		if !d[a] {
			t.Fatalf("α %d not dirty after first add (got %v)", a, d)
		}
	}

	// TakeDirty cleared: nothing new means nil.
	if d := w.TakeDirty(); d != nil {
		t.Fatalf("TakeDirty after clear = %v, want nil", d)
	}

	// Same path again: refcount 1→2 flips nothing; only the comm's α
	// (already ≠ path ASNs here) is dirty.
	w.Add(wu(2, epoch.Add(30*time.Minute), []uint32{100, 200}, 301, 10))
	d = w.TakeDirty()
	if !d[301] {
		t.Fatal("comm α 301 not dirty")
	}
	if d[100] || d[200] {
		t.Fatalf("path refcount 1→2 wrongly dirtied path αs: %v", d)
	}

	// Advance feed time so the first two updates evict: their comm αs
	// dirty again, and path ASNs 100/200 flip off-path.
	w.Add(wu(3, epoch.Add(3*time.Hour), []uint32{150, 250}, 302, 10))
	d = w.TakeDirty()
	for _, a := range []uint16{300, 301, 100, 200, 302, 150, 250} {
		if !d[a] {
			t.Fatalf("α %d not dirty after eviction (got %v)", a, d)
		}
	}
	if st := w.Stats(); st.Evicted != 2 {
		t.Fatalf("Evicted = %d, want 2", st.Evicted)
	}

	// RestoreDirty undoes a TakeDirty whose classify failed.
	w.RestoreDirty(map[uint16]bool{42: true})
	if d := w.TakeDirty(); !d[42] {
		t.Fatalf("RestoreDirty lost α 42: %v", d)
	}
}

func TestWindowLargeASNPathRefs(t *testing.T) {
	// 32-bit path ASNs above 0xFFFF cannot be community αs; their flips
	// must not panic or dirty anything.
	w := NewWindow(WindowConfig{})
	w.Add(wu(1, time.Unix(0, 0), []uint32{400000, 500000}, 300, 10))
	d := w.TakeDirty()
	if !d[300] || len(d) != 1 {
		t.Fatalf("dirty = %v, want only α 300", d)
	}
}

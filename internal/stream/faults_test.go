package stream

import (
	"context"
	"errors"
	"io"
	"slices"
	"testing"
	"time"
)

// drainFaulty reads one faulty session to its end (EOF or session
// death), recording delivered updates; non-terminal errors (corrupt
// frames) are counted and skipped, mimicking a consumer that presses
// on without the resume protocol.
func drainFaulty(t *testing.T, src Source) (ups []Update, corrupts int) {
	t.Helper()
	ctx := context.Background()
	sess, err := src.Connect(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for {
		u, err := sess.Recv(ctx)
		switch {
		case err == nil:
			ups = append(ups, u)
		case errors.Is(err, ErrCorruptFrame):
			corrupts++
		case errors.Is(err, io.EOF), errors.Is(err, ErrDisconnected):
			return ups, corrupts
		default:
			t.Fatalf("Recv: %v", err)
		}
	}
}

func TestFaultSourceDeterministic(t *testing.T) {
	run := func() ([]Update, uint64) {
		fs := NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 1}),
			FaultConfig{Seed: 7, Rate: 0.2, StallFor: time.Millisecond})
		ups, _ := drainFaulty(t, fs)
		return ups, fs.Stats.Total()
	}
	a, atot := run()
	b, btot := run()
	if atot != btot || !sameUpdates(a, b) {
		t.Fatalf("same seed produced different fault patterns: %d/%d faults, %d/%d updates",
			atot, btot, len(a), len(b))
	}
}

func TestFaultSourceSeedVariesBySession(t *testing.T) {
	// Session n is seeded Seed+n: a reconnect must redraw its faults,
	// otherwise a deterministic corrupt-at-seq-k would repeat forever
	// and resume could never make progress past it.
	fs := NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 1}),
		FaultConfig{Seed: 3, Rate: 0.3, Kinds: []FaultKind{FaultCorrupt}})
	a, ca := drainFaulty(t, fs)
	b, cb := drainFaulty(t, fs)
	if len(a) == len(b) && ca == cb && sameUpdates(a, b) {
		t.Fatal("two sessions drew identical fault patterns; reconnects would never recover")
	}
}

func TestFaultCorruptConsumesExactlyOne(t *testing.T) {
	clean := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 1}), 0, 0)
	fs := NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 1}),
		FaultConfig{Seed: 11, Rate: 0.25, Kinds: []FaultKind{FaultCorrupt}})
	ups, corrupts := drainFaulty(t, fs)
	if corrupts == 0 {
		t.Fatal("no corrupt frames injected at 25% rate")
	}
	if got, want := len(ups)+corrupts, len(clean); got != want {
		t.Fatalf("corrupt frame consumed %d updates total, want exactly one each: delivered %d + corrupt %d != %d",
			want-len(ups), len(ups), corrupts, want)
	}
	if int(fs.Stats.Corrupts.Load()) != corrupts {
		t.Fatalf("Stats.Corrupts = %d, observed %d", fs.Stats.Corrupts.Load(), corrupts)
	}
}

func TestFaultDuplicateRedelivers(t *testing.T) {
	clean := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 1}), 0, 0)
	fs := NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 1}),
		FaultConfig{Seed: 5, Rate: 0.25, Kinds: []FaultKind{FaultDuplicate}})
	ups, _ := drainFaulty(t, fs)
	if fs.Stats.Duplicates.Load() == 0 {
		t.Fatal("no duplicates injected at 25% rate")
	}
	var dedup []Update
	for _, u := range ups {
		if len(dedup) > 0 && dedup[len(dedup)-1].Seq == u.Seq {
			continue
		}
		dedup = append(dedup, u)
	}
	if !sameUpdates(dedup, clean) {
		t.Fatalf("deduplicated faulty stream != clean stream (%d vs %d)", len(dedup), len(clean))
	}
}

func TestFaultReorderPermutes(t *testing.T) {
	clean := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 1}), 0, 0)
	fs := NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 1}),
		FaultConfig{Seed: 9, Rate: 0.25, Kinds: []FaultKind{FaultReorder}})
	ups, _ := drainFaulty(t, fs)
	if fs.Stats.Reorders.Load() == 0 {
		t.Fatal("no reorders injected at 25% rate")
	}
	if slices.IsSortedFunc(ups, func(a, b Update) int {
		return int(int64(a.Seq) - int64(b.Seq))
	}) {
		t.Fatal("reorder fault delivered a fully ordered stream")
	}
	slices.SortFunc(ups, func(a, b Update) int { return int(int64(a.Seq) - int64(b.Seq)) })
	if !sameUpdates(ups, clean) {
		t.Fatalf("reordered stream is not a permutation of the clean one (%d vs %d)", len(ups), len(clean))
	}
}

func TestFaultDisconnectKillsSession(t *testing.T) {
	fs := NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 1, Loop: true}),
		FaultConfig{Seed: 1, Rate: 0.1, Kinds: []FaultKind{FaultDisconnect}})
	sess, err := fs.Connect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("no disconnect injected in 10000 reads at 10% rate")
		}
		if _, err := sess.Recv(context.Background()); err != nil {
			if !errors.Is(err, ErrDisconnected) {
				t.Fatalf("want ErrDisconnected, got %v", err)
			}
			break
		}
	}
	// The session is dead: every further Recv fails the same way.
	if _, err := sess.Recv(context.Background()); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("dead session revived: %v", err)
	}
}

func TestFaultStallHonorsContext(t *testing.T) {
	fs := NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 1}),
		FaultConfig{Seed: 2, Rate: 1, Kinds: []FaultKind{FaultStall}, StallFor: time.Minute})
	sess, err := fs.Connect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := sess.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from stalled Recv, got %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("stall ignored context deadline")
	}
}

func TestFaultStallShortResolvesItself(t *testing.T) {
	fs := NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 1}),
		FaultConfig{Seed: 2, Rate: 1, Kinds: []FaultKind{FaultStall}, StallFor: time.Millisecond})
	sess, err := fs.Connect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	u, err := sess.Recv(context.Background())
	if err != nil || u.Seq != 1 {
		t.Fatalf("short stall should deliver: seq=%d err=%v", u.Seq, err)
	}
	if fs.Stats.Stalls.Load() == 0 {
		t.Fatal("stall not counted")
	}
}

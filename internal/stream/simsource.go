package stream

import (
	"context"
	"io"
	"sync"
	"time"

	"bgpintent/internal/simulate"
)

// simDay is how much feed time one simulated day spans.
const simDay = 24 * time.Hour

// DefaultEpoch is the feed time of day 0 when SimConfig.Epoch is zero.
var DefaultEpoch = time.Unix(1_600_000_000, 0).UTC()

// SimConfig controls the simulator-backed feed.
type SimConfig struct {
	// Days is how many distinct simulated days the feed covers (>= 1).
	Days int
	// Loop replays the days forever after the last one, with sequence
	// numbers and feed time continuing to advance — an endless feed for
	// long-running daemons. Without it the feed ends in io.EOF.
	Loop bool
	// Interval paces deliveries in wall-clock time (one update per
	// Interval); 0 delivers as fast as the consumer reads.
	Interval time.Duration
	// Epoch is the feed time of day 0; zero means DefaultEpoch.
	Epoch time.Time
	// Script, when set, injects ground-truth events into the stream:
	// days it touches are perturbed (views stripped, bursts inserted)
	// with exactly known timing, for scoring anomaly detectors. Event
	// offsets are relative to Epoch; with Loop the events play out once,
	// at their absolute feed times, and later replays of the same day
	// are clean.
	Script *simulate.Script
}

// SimSource adapts the route-propagation simulator into a resumable
// live feed: every vantage-point view of every simulated day becomes
// one timestamped, sequence-numbered update, spread evenly through its
// day. Day results are generated lazily and cached, so reconnecting
// and resuming from any sequence number is cheap and — like the
// simulator itself — fully deterministic: equal (simulator, config)
// yield byte-equal update streams, however often sessions reconnect.
type SimSource struct {
	sim *simulate.Simulator
	cfg SimConfig

	mu       sync.Mutex
	days     [][]simulate.View            // day index (mod Days) -> cached views
	scripted map[int][]simulate.TimedView // absolute day -> event-perturbed stream
	cum      []uint64                     // cum[d] = updates before absolute day d
}

// NewSimSource wraps a simulator as a Source. Days below 1 is treated
// as 1.
func NewSimSource(sim *simulate.Simulator, cfg SimConfig) *SimSource {
	if cfg.Days < 1 {
		cfg.Days = 1
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = DefaultEpoch
	}
	return &SimSource{sim: sim, cfg: cfg, cum: []uint64{0}, scripted: make(map[int][]simulate.TimedView)}
}

// dayViews returns (and caches) the clean views of one absolute day.
// The simulator emits views prefix-major; delivering them in that
// order would cluster each prefix's routes into a few contiguous
// minutes of feed time, which no real collector does. interleave
// spreads them so per-community activity is smooth across the day —
// the baseline anomaly detectors calibrate against.
func (s *SimSource) dayViews(absDay int) []simulate.View {
	gen := absDay % s.cfg.Days
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.days) <= gen {
		s.days = append(s.days, interleave(s.sim.RunDay(len(s.days)).Views))
	}
	return s.days[gen]
}

// interleave deterministically permutes views by a stride coprime to
// their count, scattering the simulator's prefix-major runs across the
// whole sequence.
func interleave(views []simulate.View) []simulate.View {
	n := len(views)
	if n < 2 {
		return views
	}
	stride := n*61803/100000 | 1 // ~1/φ of n, odd
	for gcd(stride, n) != 1 {
		stride += 2
	}
	out := make([]simulate.View, n)
	for i := range views {
		out[i*stride%n] = views[i]
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// scriptedDay returns the event-perturbed timed stream of one absolute
// day, or (nil, false) when no event touches it. Perturbed days are
// cached; the script is finite, so the cache is bounded even on a
// looping feed.
func (s *SimSource) scriptedDay(absDay int) ([]simulate.TimedView, bool) {
	sc := s.cfg.Script
	start := time.Duration(absDay) * simDay
	if sc == nil || !sc.Affects(start, start+simDay) {
		return nil, false
	}
	s.mu.Lock()
	tvs, ok := s.scripted[absDay]
	s.mu.Unlock()
	if ok {
		return tvs, true
	}
	tvs = sc.Apply(start, simDay, s.dayViews(absDay))
	s.mu.Lock()
	if prior, ok := s.scripted[absDay]; ok {
		tvs = prior // lost races are benign: results are equal
	} else {
		s.scripted[absDay] = tvs
	}
	s.mu.Unlock()
	return tvs, true
}

// dayLen is the update count of one absolute day, script included.
func (s *SimSource) dayLen(absDay int) int {
	if tvs, ok := s.scriptedDay(absDay); ok {
		return len(tvs)
	}
	return len(s.dayViews(absDay))
}

// item returns one absolute day's idx-th view and its feed time.
func (s *SimSource) item(absDay, idx int) (*simulate.View, time.Time) {
	if tvs, ok := s.scriptedDay(absDay); ok {
		return &tvs[idx].View, s.cfg.Epoch.Add(tvs[idx].At)
	}
	views := s.dayViews(absDay)
	off := time.Duration(absDay)*simDay + time.Duration(idx)*(simDay/time.Duration(len(views)))
	return &views[idx], s.cfg.Epoch.Add(off)
}

// startSeq returns how many updates precede absolute day d, extending
// the cumulative index (and the day cache) as needed.
func (s *SimSource) startSeq(d int) uint64 {
	for {
		s.mu.Lock()
		n := len(s.cum)
		if d < n {
			c := s.cum[d]
			s.mu.Unlock()
			return c
		}
		s.mu.Unlock()
		// Generate the next missing day outside cum's critical section
		// (dayLen takes the lock itself).
		count := s.dayLen(n - 1)
		s.mu.Lock()
		if len(s.cum) == n { // lost races are benign: recompute
			s.cum = append(s.cum, s.cum[n-1]+uint64(count))
		}
		s.mu.Unlock()
	}
}

// Connect opens a session delivering every update with Seq > after.
func (s *SimSource) Connect(ctx context.Context, after uint64) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Locate the day containing sequence number after+1.
	day := 0
	for {
		if !s.cfg.Loop && day >= s.cfg.Days {
			break // session starts at EOF
		}
		if s.startSeq(day+1) > after {
			break
		}
		day++
	}
	return &simSession{src: s, day: day, idx: int(after - s.startSeq(day))}, nil
}

// simSession is one cursor over the cached update stream.
type simSession struct {
	src  *SimSource
	day  int // absolute day
	idx  int // next view index within day
	done bool
}

func (ss *simSession) Recv(ctx context.Context) (Update, error) {
	if ss.done {
		return Update{}, io.EOF
	}
	cfg := ss.src.cfg
	for {
		if !cfg.Loop && ss.day >= cfg.Days {
			ss.done = true
			return Update{}, io.EOF
		}
		if ss.idx < ss.src.dayLen(ss.day) {
			break
		}
		ss.day++ // also skips (unlikely) empty days
		ss.idx = 0
	}
	if cfg.Interval > 0 {
		t := time.NewTimer(cfg.Interval)
		select {
		case <-ctx.Done():
			t.Stop()
			return Update{}, ctx.Err()
		case <-t.C:
		}
	} else if err := ctx.Err(); err != nil {
		return Update{}, err
	}
	v, at := ss.src.item(ss.day, ss.idx)
	u := Update{
		Seq:        ss.src.startSeq(ss.day) + uint64(ss.idx) + 1,
		Time:       at,
		VP:         v.VP,
		Path:       v.Path,
		Comms:      v.Comms,
		LargeComms: v.LargeComms,
	}
	ss.idx++
	return u, nil
}

func (ss *simSession) Close() error {
	ss.done = true
	return nil
}

package stream

import (
	"context"
	"io"
	"sync"
	"time"

	"bgpintent/internal/simulate"
)

// simDay is how much feed time one simulated day spans.
const simDay = 24 * time.Hour

// DefaultEpoch is the feed time of day 0 when SimConfig.Epoch is zero.
var DefaultEpoch = time.Unix(1_600_000_000, 0).UTC()

// SimConfig controls the simulator-backed feed.
type SimConfig struct {
	// Days is how many distinct simulated days the feed covers (>= 1).
	Days int
	// Loop replays the days forever after the last one, with sequence
	// numbers and feed time continuing to advance — an endless feed for
	// long-running daemons. Without it the feed ends in io.EOF.
	Loop bool
	// Interval paces deliveries in wall-clock time (one update per
	// Interval); 0 delivers as fast as the consumer reads.
	Interval time.Duration
	// Epoch is the feed time of day 0; zero means DefaultEpoch.
	Epoch time.Time
}

// SimSource adapts the route-propagation simulator into a resumable
// live feed: every vantage-point view of every simulated day becomes
// one timestamped, sequence-numbered update, spread evenly through its
// day. Day results are generated lazily and cached, so reconnecting
// and resuming from any sequence number is cheap and — like the
// simulator itself — fully deterministic: equal (simulator, config)
// yield byte-equal update streams, however often sessions reconnect.
type SimSource struct {
	sim *simulate.Simulator
	cfg SimConfig

	mu   sync.Mutex
	days [][]simulate.View // day index (mod Days) -> cached views
	cum  []uint64          // cum[d] = updates before absolute day d
}

// NewSimSource wraps a simulator as a Source. Days below 1 is treated
// as 1.
func NewSimSource(sim *simulate.Simulator, cfg SimConfig) *SimSource {
	if cfg.Days < 1 {
		cfg.Days = 1
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = DefaultEpoch
	}
	return &SimSource{sim: sim, cfg: cfg, cum: []uint64{0}}
}

// dayViews returns (and caches) the views of one absolute day.
func (s *SimSource) dayViews(absDay int) []simulate.View {
	gen := absDay % s.cfg.Days
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.days) <= gen {
		s.days = append(s.days, s.sim.RunDay(len(s.days)).Views)
	}
	return s.days[gen]
}

// startSeq returns how many updates precede absolute day d, extending
// the cumulative index (and the day cache) as needed.
func (s *SimSource) startSeq(d int) uint64 {
	for {
		s.mu.Lock()
		n := len(s.cum)
		if d < n {
			c := s.cum[d]
			s.mu.Unlock()
			return c
		}
		s.mu.Unlock()
		// Generate the next missing day outside cum's critical section
		// (dayViews takes the lock itself).
		views := s.dayViews(n - 1)
		s.mu.Lock()
		if len(s.cum) == n { // lost races are benign: recompute
			s.cum = append(s.cum, s.cum[n-1]+uint64(len(views)))
		}
		s.mu.Unlock()
	}
}

// Connect opens a session delivering every update with Seq > after.
func (s *SimSource) Connect(ctx context.Context, after uint64) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Locate the day containing sequence number after+1.
	day := 0
	for {
		if !s.cfg.Loop && day >= s.cfg.Days {
			break // session starts at EOF
		}
		if s.startSeq(day+1) > after {
			break
		}
		day++
	}
	return &simSession{src: s, day: day, idx: int(after - s.startSeq(day))}, nil
}

// simSession is one cursor over the cached update stream.
type simSession struct {
	src  *SimSource
	day  int // absolute day
	idx  int // next view index within day
	done bool
}

func (ss *simSession) Recv(ctx context.Context) (Update, error) {
	if ss.done {
		return Update{}, io.EOF
	}
	cfg := ss.src.cfg
	var views []simulate.View
	for {
		if !cfg.Loop && ss.day >= cfg.Days {
			ss.done = true
			return Update{}, io.EOF
		}
		views = ss.src.dayViews(ss.day)
		if ss.idx < len(views) {
			break
		}
		ss.day++ // also skips (unlikely) empty days
		ss.idx = 0
	}
	if cfg.Interval > 0 {
		t := time.NewTimer(cfg.Interval)
		select {
		case <-ctx.Done():
			t.Stop()
			return Update{}, ctx.Err()
		case <-t.C:
		}
	} else if err := ctx.Err(); err != nil {
		return Update{}, err
	}
	v := &views[ss.idx]
	u := Update{
		Seq:        ss.src.startSeq(ss.day) + uint64(ss.idx) + 1,
		Time:       cfg.Epoch.Add(time.Duration(ss.day)*simDay + time.Duration(ss.idx)*(simDay/time.Duration(len(views)))),
		VP:         v.VP,
		Path:       v.Path,
		Comms:      v.Comms,
		LargeComms: v.LargeComms,
	}
	ss.idx++
	return u, nil
}

func (ss *simSession) Close() error {
	ss.done = true
	return nil
}

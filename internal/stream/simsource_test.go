package stream

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"bgpintent/internal/bgp"
	"bgpintent/internal/simulate"
	"bgpintent/internal/topology"
)

// newTestSim builds a fresh tiny simulator; equal configs yield
// byte-equal simulators, which the determinism tests rely on.
func newTestSim(t *testing.T) *simulate.Simulator {
	t.Helper()
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		t.Fatalf("topology.Generate: %v", err)
	}
	return simulate.New(topo, simulate.TinyConfig())
}

// drain reads from src starting after the given sequence number until
// io.EOF or max updates, failing the test on any other error.
func drain(t *testing.T, src Source, after uint64, max int) []Update {
	t.Helper()
	ctx := context.Background()
	sess, err := src.Connect(ctx, after)
	if err != nil {
		t.Fatalf("Connect(after=%d): %v", after, err)
	}
	defer sess.Close()
	var out []Update
	for max <= 0 || len(out) < max {
		u, err := sess.Recv(ctx)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Recv after %d updates: %v", len(out), err)
		}
		out = append(out, u)
	}
	return out
}

func sameUpdates(a, b []Update) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || !a[i].Time.Equal(b[i].Time) || a[i].VP != b[i].VP {
			return false
		}
	}
	return true
}

func TestSimSourceSeqDenseAndOrdered(t *testing.T) {
	src := NewSimSource(newTestSim(t), SimConfig{Days: 2})
	ups := drain(t, src, 0, 0)
	if len(ups) == 0 {
		t.Fatal("empty feed")
	}
	for i, u := range ups {
		if u.Seq != uint64(i)+1 {
			t.Fatalf("update %d has Seq %d, want %d (dense 1-based)", i, u.Seq, i+1)
		}
		if i > 0 && u.Time.Before(ups[i-1].Time) {
			t.Fatalf("feed time went backwards at seq %d: %v < %v", u.Seq, u.Time, ups[i-1].Time)
		}
		if len(u.Path) == 0 {
			t.Fatalf("seq %d has empty path", u.Seq)
		}
	}
	// Day boundary: the feed covers two distinct days of feed time.
	first, last := ups[0].Time, ups[len(ups)-1].Time
	if last.Sub(first) < simDay {
		t.Fatalf("two-day feed spans only %v", last.Sub(first))
	}
}

func TestSimSourceDeterministic(t *testing.T) {
	a := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 2}), 0, 0)
	b := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 2}), 0, 0)
	if !sameUpdates(a, b) {
		t.Fatal("two identically-configured sources produced different streams")
	}
}

func TestSimSourceResume(t *testing.T) {
	src := NewSimSource(newTestSim(t), SimConfig{Days: 2})
	full := drain(t, src, 0, 0)
	n := len(full)
	for _, cut := range []int{0, 1, n / 3, n / 2, n - 1, n} {
		resumed := drain(t, src, uint64(cut), 0)
		if want := full[cut:]; !sameUpdates(resumed, want) {
			t.Fatalf("resume after seq %d: got %d updates, want %d starting at seq %d",
				cut, len(resumed), len(want), cut+1)
		}
	}
}

func TestSimSourceEOFIsSticky(t *testing.T) {
	src := NewSimSource(newTestSim(t), SimConfig{Days: 1})
	sess, err := src.Connect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for {
		if _, err := sess.Recv(context.Background()); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("want io.EOF, got %v", err)
			}
			break
		}
	}
	if _, err := sess.Recv(context.Background()); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF not sticky: got %v", err)
	}
}

func TestSimSourceLoop(t *testing.T) {
	sim := newTestSim(t)
	finite := drain(t, NewSimSource(sim, SimConfig{Days: 1}), 0, 0)
	n := len(finite)
	looped := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 1, Loop: true}), 0, 2*n+n/2)
	if len(looped) != 2*n+n/2 {
		t.Fatalf("looped feed ended early: %d updates", len(looped))
	}
	for i, u := range looped {
		if u.Seq != uint64(i)+1 {
			t.Fatalf("looped seq not dense at %d: %d", i, u.Seq)
		}
		// Content repeats with period n; seq and feed time keep advancing.
		base := finite[i%n]
		if u.VP != base.VP {
			t.Fatalf("looped update %d differs from day-0 update %d", i, i%n)
		}
		if i >= n && !u.Time.After(looped[i-n].Time) {
			t.Fatalf("looped feed time did not advance across wrap at %d", i)
		}
	}
}

func TestSimSourceCancel(t *testing.T) {
	src := NewSimSource(newTestSim(t), SimConfig{Days: 1, Loop: true, Interval: time.Hour})
	sess, err := src.Connect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := sess.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from paced Recv, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Recv ignored context cancellation")
	}
}

func TestSimSourceScriptedInjection(t *testing.T) {
	cleanLen := len(drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 2}), 0, 0))

	comm := bgp.NewCommunity(4242, 4242)
	sc := &simulate.Script{Events: []simulate.Event{
		{Kind: simulate.EventSpike, Community: comm, At: 30 * time.Hour, Duration: time.Hour, Count: 40},
	}}
	src := NewSimSource(newTestSim(t), SimConfig{Days: 2, Script: sc})
	all := drain(t, src, 0, 0)
	if len(all) != cleanLen+40 {
		t.Fatalf("scripted feed has %d updates, want %d", len(all), cleanLen+40)
	}
	// Sequence numbers stay dense and times non-decreasing across the
	// injection, and every injected update sits in the event window.
	injected := 0
	for i, u := range all {
		if u.Seq != uint64(i)+1 {
			t.Fatalf("seq %d at position %d", u.Seq, i)
		}
		if i > 0 && u.Time.Before(all[i-1].Time) {
			t.Fatalf("time went backwards at seq %d", u.Seq)
		}
		if u.Comms.Has(comm) {
			injected++
			off := u.Time.Sub(DefaultEpoch)
			if off < 30*time.Hour || off >= 31*time.Hour {
				t.Errorf("injected update at offset %v, outside the event window", off)
			}
		}
	}
	if injected != 40 {
		t.Errorf("found %d injected updates, want 40", injected)
	}
}

func TestSimSourceScriptedResumeDeterministic(t *testing.T) {
	sc, err := simulate.ParseScript("strip:174@26h+2h; spike:4242:4242@30h+1h#25")
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	cfg := SimConfig{Days: 2, Script: sc}
	full := drain(t, NewSimSource(newTestSim(t), cfg), 0, 0)

	// Resuming mid-feed from a fresh source replays the identical tail,
	// script effects included.
	cut := len(full) / 3
	tail := drain(t, NewSimSource(newTestSim(t), cfg), full[cut-1].Seq, 0)
	if !sameUpdates(full[cut:], tail) {
		t.Fatalf("scripted resume diverged: %d vs %d updates", len(full[cut:]), len(tail))
	}
}

func TestSimSourceScriptedLoopPlaysOnce(t *testing.T) {
	comm := bgp.NewCommunity(4242, 4242)
	sc := &simulate.Script{Events: []simulate.Event{
		{Kind: simulate.EventSpike, Community: comm, At: 6 * time.Hour, Duration: time.Hour, Count: 10},
	}}
	src := NewSimSource(newTestSim(t), SimConfig{Days: 1, Loop: true, Script: sc})
	day0 := uint64(src.dayLen(0))
	// Day 0 carries the injection; the day-1 replay of the same views
	// must be clean — events happen at absolute feed times.
	if rep := src.dayLen(1); uint64(rep) != day0-10 {
		t.Fatalf("replay day has %d updates, want %d", rep, day0-10)
	}
	all := drain(t, src, 0, int(2*day0-10))
	for _, u := range all[day0:] {
		if u.Comms.Has(comm) && u.Time.Sub(DefaultEpoch) >= simDay {
			t.Fatalf("injected community leaked into the day-1 replay at seq %d", u.Seq)
		}
	}
}

package stream

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"bgpintent/internal/core"
)

// classifyBatch is the oracle: a one-shot batch classification over the
// full update set, exactly what the paper's pipeline would produce.
func classifyBatch(t *testing.T, ups []Update) *core.Inferences {
	t.Helper()
	inf, err := core.ClassifyContext(context.Background(), refStore(ups), core.DefaultOptions())
	if err != nil {
		t.Fatalf("batch classify: %v", err)
	}
	return inf
}

// sameInferences fails unless two classifications agree on every label,
// cluster, and exclusion.
func sameInferences(t *testing.T, got, want *core.Inferences) {
	t.Helper()
	if got == nil {
		t.Fatal("no classification produced")
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatalf("labels diverged: %d vs %d entries", len(got.Labels), len(want.Labels))
	}
	if !reflect.DeepEqual(got.Excluded, want.Excluded) {
		t.Fatalf("exclusions diverged: %d vs %d entries", len(got.Excluded), len(want.Excluded))
	}
	if !reflect.DeepEqual(got.Clusters, want.Clusters) {
		t.Fatalf("clusters diverged: %d vs %d", len(got.Clusters), len(want.Clusters))
	}
}

// snapshotRecorder captures the latest published classification.
type snapshotRecorder struct {
	mu   sync.Mutex
	inf  *core.Inferences
	seen int
}

func (r *snapshotRecorder) record(inf *core.Inferences, _ WindowStats, _ uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inf = inf
	r.seen++
}

func (r *snapshotRecorder) latest() (*core.Inferences, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inf, r.seen
}

func TestIngestorCleanConvergence(t *testing.T) {
	clean := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 2}), 0, 0)
	want := classifyBatch(t, clean)

	rec := &snapshotRecorder{}
	in, err := Start(context.Background(), Config{
		Source:           NewSimSource(newTestSim(t), SimConfig{Days: 2}),
		Classify:         core.DefaultOptions(),
		SnapshotEvery:    2000, // several ticks per run so the delta path really runs
		SnapshotInterval: -1,
		OnSnapshot:       rec.record,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	st := in.Stats()
	if st.State != StateEnded {
		t.Fatalf("state = %v, want ended", st.State)
	}
	if st.Updates != uint64(len(clean)) || st.LastSeq != uint64(len(clean)) {
		t.Fatalf("applied %d updates to seq %d, want %d", st.Updates, st.LastSeq, len(clean))
	}
	if st.Duplicates+st.CorruptFrames+st.Disconnects+st.Stalls != 0 {
		t.Fatalf("clean feed produced fault counters: %+v", st)
	}
	inf, snaps := rec.latest()
	if snaps < 2 {
		t.Fatalf("only %d snapshots; the delta path was not exercised", snaps)
	}
	sameInferences(t, inf, want)
	if h := in.Health(); h.Status != "healthy" || h.State != StateEnded {
		t.Fatalf("health after clean EOF = %+v", h)
	}
}

// TestIngestorFaultConvergence is the acceptance test: at a 10% fault
// rate across every fault kind, the Ingestor must apply every update
// exactly once and converge to the same classification as a clean
// batch run over the same update set.
func TestIngestorFaultConvergence(t *testing.T) {
	clean := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 2}), 0, 0)
	want := classifyBatch(t, clean)

	fs := NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 2}), FaultConfig{
		Seed:     42,
		Rate:     0.10,
		StallFor: 100 * time.Millisecond, // longer than ReadTimeout: must trip the deadline
	})
	rec := &snapshotRecorder{}
	in, err := Start(context.Background(), Config{
		Source:           fs,
		Classify:         core.DefaultOptions(),
		// Tight on purpose: a clean read off the cached feed is
		// microseconds, and a spuriously tripped deadline only costs a
		// reconnect, which the test is about anyway.
		ReadTimeout:      20 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		RetryBudget:      -1, // a 10% rate can produce long failure streaks
		ReorderWindow:    8,
		SnapshotEvery:    2000,
		SnapshotInterval: -1,
		Seed:             1,
		OnSnapshot:       rec.record,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	st := in.Stats()
	if st.Updates != uint64(len(clean)) || st.LastSeq != uint64(len(clean)) {
		t.Fatalf("exactly-once violated: applied %d, last seq %d, want %d",
			st.Updates, st.LastSeq, len(clean))
	}
	if fs.Stats.Total() == 0 {
		t.Fatal("no faults injected; the test proved nothing")
	}
	if st.Reconnects == 0 {
		t.Fatal("survived faults without reconnecting? injector misconfigured")
	}
	t.Logf("faults injected: disconnects=%d stalls=%d corrupts=%d dups=%d reorders=%d; ingestor: reconnects=%d resyncs=%d dups=%d reordered=%d",
		fs.Stats.Disconnects.Load(), fs.Stats.Stalls.Load(), fs.Stats.Corrupts.Load(),
		fs.Stats.Duplicates.Load(), fs.Stats.Reorders.Load(),
		st.Reconnects, st.Resyncs, st.Duplicates, st.Reordered)

	inf, _ := rec.latest()
	sameInferences(t, inf, want)
}

// failSource never connects.
type failSource struct{}

func (failSource) Connect(context.Context, uint64) (Session, error) {
	return nil, errors.New("connection refused")
}

func TestIngestorRetryBudgetDegrades(t *testing.T) {
	in, err := Start(context.Background(), Config{
		Source:      failSource{},
		RetryBudget: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Wait(); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("Wait = %v, want ErrRetryBudget", err)
	}
	if h := in.Health(); h.Status != "degraded" || h.State != StateDown {
		t.Fatalf("health after giving up = %+v, want degraded/down", h)
	}
	// Degraded, not dead: stats and health still answer.
	if st := in.Stats(); st.Disconnects < 3 {
		t.Fatalf("Disconnects = %d, want >= RetryBudget", st.Disconnects)
	}
}

// gatedSource delays every Recv until the gate channel closes —
// a connected feed gone silent.
type gatedSource struct {
	inner Source
	gate  chan struct{}
}

func (g *gatedSource) Connect(ctx context.Context, after uint64) (Session, error) {
	sess, err := g.inner.Connect(ctx, after)
	if err != nil {
		return nil, err
	}
	return &gatedSession{inner: sess, gate: g.gate}, nil
}

type gatedSession struct {
	inner Session
	gate  chan struct{}
}

func (s *gatedSession) Recv(ctx context.Context) (Update, error) {
	select {
	case <-s.gate:
	case <-ctx.Done():
		return Update{}, ctx.Err()
	}
	return s.inner.Recv(ctx)
}

func (s *gatedSession) Close() error { return s.inner.Close() }

// waitFor polls cond for up to 20s (generous for -race CI runners).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestIngestorHealthStaleThenRecovers(t *testing.T) {
	gate := make(chan struct{})
	src := &gatedSource{
		inner: NewSimSource(newTestSim(t), SimConfig{Days: 1, Loop: true}),
		gate:  gate,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in, err := Start(ctx, Config{
		Source:           src,
		Classify:         core.DefaultOptions(),
		ReadTimeout:      time.Minute, // the silent gate must not look like a stall
		StaleAfter:       30 * time.Millisecond,
		SnapshotEvery:    64,
		SnapshotInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h := in.Health(); h.Status != "healthy" {
		t.Fatalf("initial health = %q, want healthy", h.Status)
	}
	waitFor(t, "stale health on silent feed", func() bool {
		return in.Health().Status == "stale"
	})
	close(gate) // feed comes back
	waitFor(t, "health recovery after feed resumes", func() bool {
		h := in.Health()
		return h.Status == "healthy" && h.LastSeq > 0
	})
	cancel()
	if err := in.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after cancel = %v", err)
	}
}

// TestIngestorCancelMidStream pins the shutdown contract under -race:
// canceling mid-read, mid-backoff, or mid-classify leaves no goroutine
// behind and the counters consistent (exactly-once up to the last
// applied sequence number).
func TestIngestorCancelMidStream(t *testing.T) {
	before := runtime.NumGoroutine()

	t.Run("mid-read", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		in, err := Start(ctx, Config{
			Source:           NewSimSource(newTestSim(t), SimConfig{Days: 1, Loop: true}),
			Classify:         core.DefaultOptions(),
			SnapshotEvery:    1024,
			SnapshotInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "some updates applied", func() bool { return in.Stats().Updates > 100 })
		cancel()
		if err := in.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
		st := in.Stats()
		if st.Updates != st.LastSeq {
			t.Fatalf("inconsistent after cancel: %d updates but last seq %d", st.Updates, st.LastSeq)
		}
	})

	t.Run("mid-backoff", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		in, err := Start(ctx, Config{
			Source:      failSource{},
			RetryBudget: -1,
			BackoffBase: time.Hour, // cancel must interrupt the sleep
			BackoffMax:  time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // let it reach the backoff sleep
		cancel()
		done := make(chan error, 1)
		go func() { done <- in.Wait() }()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Wait = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancel did not interrupt the backoff sleep")
		}
	})

	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

func TestIngestorRollingWindowEvicts(t *testing.T) {
	perDay := len(drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 1}), 0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in, err := Start(ctx, Config{
		Source:   NewSimSource(newTestSim(t), SimConfig{Days: 1, Loop: true}),
		Classify: core.DefaultOptions(),
		Window: WindowConfig{
			Span:    36 * time.Hour, // 1.5 looped days
			Buckets: 3,
		},
		SnapshotEvery:    4096,
		SnapshotInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "three days of updates", func() bool {
		return in.Stats().Updates >= uint64(3*perDay)
	})
	cancel()
	if err := in.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v", err)
	}
	st := in.Stats()
	if st.Window.Evicted == 0 {
		t.Fatalf("rolling window never evicted over 3 looped days: %+v", st.Window)
	}
	if st.Window.Updates >= int(st.Updates) {
		t.Fatalf("window holds %d of %d applied updates; eviction is not bounding it",
			st.Window.Updates, st.Updates)
	}
}

func TestIngestorOnUpdateTap(t *testing.T) {
	want := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 1}), 0, 0)

	var mu sync.Mutex
	var got []Update
	in, err := Start(context.Background(), Config{
		Source:           NewSimSource(newTestSim(t), SimConfig{Days: 1}),
		Classify:         core.DefaultOptions(),
		SnapshotInterval: -1,
		OnUpdate: func(u Update) {
			mu.Lock()
			got = append(got, u)
			mu.Unlock()
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !sameUpdates(got, want) {
		t.Fatalf("OnUpdate saw %d updates, feed carried %d (or order/content diverged)", len(got), len(want))
	}
}

func TestIngestorOnUpdateTapExactlyOnceUnderFaults(t *testing.T) {
	want := drain(t, NewSimSource(newTestSim(t), SimConfig{Days: 1}), 0, 0)

	var mu sync.Mutex
	var got []Update
	in, err := Start(context.Background(), Config{
		Source: NewFaultSource(NewSimSource(newTestSim(t), SimConfig{Days: 1}), FaultConfig{
			Seed: 42, Rate: 0.05, StallFor: time.Millisecond,
		}),
		Classify:         core.DefaultOptions(),
		SnapshotInterval: -1,
		ReadTimeout:      200 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		RetryBudget:      -1,
		OnUpdate: func(u Update) {
			mu.Lock()
			got = append(got, u)
			mu.Unlock()
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// Duplicates, reorders and reconnects must be invisible to the tap:
	// every update exactly once, in sequence order.
	if !sameUpdates(got, want) {
		t.Fatalf("OnUpdate under faults saw %d updates, want %d in exact order", len(got), len(want))
	}
}

package stream

import (
	"time"

	"bgpintent/internal/core"
)

// WindowConfig controls the rolling time window over the tuple store.
type WindowConfig struct {
	// Span is the total window length in feed time: updates older than
	// Span behind the newest bucket are evicted. 0 means an unbounded
	// window (no eviction) — the batch semantics.
	Span time.Duration
	// Buckets is the eviction granularity: the window is Span split
	// into this many buckets, dropped whole as feed time advances.
	// Values below 2 are raised to 2 (newest + at least one aged).
	Buckets int
}

// WindowStats are the window's corpus counters, used for snapshot
// provenance.
type WindowStats struct {
	Updates          int // live (unevicted) updates
	Evicted          uint64
	Rebuilds         uint64 // store rebuilds (one per bucket eviction batch)
	Tuples           int
	Paths            int
	VantagePoints    int
	Communities      int
	LargeCommunities int
	DirtyAlphas      int // αs awaiting reclassification
	// Oldest/Newest bound the live window in feed time; zero when empty.
	Oldest, Newest time.Time
}

// Window is a rolling time window of updates feeding a columnar tuple
// store incrementally. Adds go straight into the store (cheap,
// allocation-light); when feed time advances past a bucket boundary,
// whole buckets fall off the tail and the store is rebuilt from the
// survivors — O(window), amortized once per bucket span.
//
// The window also tracks the dirty α set: every α whose classification
// evidence may have changed since the last TakeDirty. That is (a) the
// α of every community on an added or evicted update, and (b) every
// 16-bit ASN whose presence in the observed path set flipped (first
// live update containing it arrived, or last one left) — those flips
// can change never-on-path exclusions for the α even when none of its
// communities moved. Classification consumers re-run only the dirty
// αs (core.ClassifyDelta) and reuse the previous result for the rest.
//
// Window is not safe for concurrent use; the Ingestor owns it from a
// single goroutine and publishes immutable classification results.
type Window struct {
	cfg   WindowConfig
	store *core.TupleStore

	buckets []windowBucket
	base    time.Time // start of buckets[0]; zero until the first add

	dirty    map[uint16]struct{}
	pathRefs map[uint32]int // live-update refcount per path ASN (flip detection)

	evicted  uint64
	rebuilds uint64
}

type windowBucket struct {
	start   time.Time
	updates []Update
}

// NewWindow returns an empty window.
func NewWindow(cfg WindowConfig) *Window {
	if cfg.Span > 0 && cfg.Buckets < 2 {
		cfg.Buckets = 2
	}
	return &Window{
		cfg:      cfg,
		store:    core.NewTupleStore(),
		dirty:    make(map[uint16]struct{}),
		pathRefs: make(map[uint32]int),
	}
}

// bucketSpan is the feed-time length of one bucket.
func (w *Window) bucketSpan() time.Duration {
	return w.cfg.Span / time.Duration(w.cfg.Buckets)
}

// Add applies one update: rotates/evicts buckets if the update's feed
// time crossed a boundary, then feeds the store and the dirty set.
// Updates are expected in roughly feed-time order (the sequence
// protocol guarantees it); stragglers land in the newest bucket, which
// only makes eviction conservative, never wrong.
func (w *Window) Add(u Update) {
	if w.cfg.Span > 0 {
		w.rotate(u.Time)
	} else if w.buckets == nil {
		w.buckets = []windowBucket{{start: u.Time}}
	}
	b := &w.buckets[len(w.buckets)-1]
	b.updates = append(b.updates, u)
	w.apply(u)
}

// apply feeds one update into the store and marks what it dirtied.
// Large communities are deliberately counted (NoteLarge) rather than
// tuple-keyed (AddViewLarge): the window relies on dirty-α delta
// reclassification, which only tracks 16-bit α sets, and keyed larges
// would force every tick onto the full-classify fallback.
func (w *Window) apply(u Update) {
	w.store.AddView(u.VP, u.Path, u.Comms)
	w.store.NoteLarge(u.LargeComms)
	for _, c := range u.Comms {
		w.dirty[c.ASN()] = struct{}{}
	}
	for _, asn := range u.Path {
		if w.pathRefs[asn]++; w.pathRefs[asn] == 1 && asn <= 0xFFFF {
			w.dirty[uint16(asn)] = struct{}{} // newly on-path
		}
	}
}

// rotate advances the bucket ring to cover feed time t, evicting
// buckets that fell out of the window and rebuilding the store when
// any did.
func (w *Window) rotate(t time.Time) {
	span := w.bucketSpan()
	if w.base.IsZero() {
		w.base = t.Truncate(span)
		w.buckets = append(w.buckets, windowBucket{start: w.base})
		return
	}
	last := w.buckets[len(w.buckets)-1].start
	if t.Before(last.Add(span)) {
		return // stragglers and same-bucket updates: nothing to rotate
	}
	// Open buckets up to the one containing t. A jump past the whole
	// window (a long stall, a looped feed wrapping) opens only the
	// buckets that can survive — intermediate empties would all be
	// evicted immediately anyway.
	steps := int64(t.Sub(last) / span)
	if skip := steps - int64(w.cfg.Buckets); skip > 0 {
		last = last.Add(time.Duration(skip) * span)
		steps = int64(w.cfg.Buckets)
	}
	for i := int64(1); i <= steps; i++ {
		w.buckets = append(w.buckets, windowBucket{start: last.Add(time.Duration(i) * span)})
	}
	if len(w.buckets) <= w.cfg.Buckets {
		return
	}
	// Evict whole buckets off the tail, then rebuild the store from the
	// survivors: the columnar store dedups tuples and interns paths, so
	// removal is a rebuild, amortized to once per bucket span.
	evict := w.buckets[:len(w.buckets)-w.cfg.Buckets]
	w.buckets = w.buckets[len(w.buckets)-w.cfg.Buckets:]
	for _, b := range evict {
		for i := range b.updates {
			u := &b.updates[i]
			w.evicted++
			for _, c := range u.Comms {
				w.dirty[c.ASN()] = struct{}{}
			}
			for _, asn := range u.Path {
				if w.pathRefs[asn]--; w.pathRefs[asn] == 0 {
					delete(w.pathRefs, asn)
					if asn <= 0xFFFF {
						w.dirty[uint16(asn)] = struct{}{} // no longer on-path
					}
				}
			}
		}
	}
	w.rebuilds++
	w.store = core.NewTupleStore()
	for bi := range w.buckets {
		for i := range w.buckets[bi].updates {
			u := &w.buckets[bi].updates[i]
			w.store.AddView(u.VP, u.Path, u.Comms)
			w.store.NoteLarge(u.LargeComms)
		}
	}
}

// Store exposes the live tuple store. The caller must not retain it
// across Add calls that may rotate buckets (the store is replaced on
// eviction); classify from the Ingestor goroutine only.
func (w *Window) Store() *core.TupleStore { return w.store }

// TakeDirty returns the accumulated dirty α set and resets it. A nil
// map means nothing changed since the last call.
func (w *Window) TakeDirty() map[uint16]bool {
	if len(w.dirty) == 0 {
		return nil
	}
	out := make(map[uint16]bool, len(w.dirty))
	for a := range w.dirty {
		out[a] = true
	}
	clear(w.dirty)
	return out
}

// RestoreDirty re-marks αs as dirty — the undo for a TakeDirty whose
// reclassification failed, so the next snapshot tick retries them.
func (w *Window) RestoreDirty(d map[uint16]bool) {
	for a := range d {
		w.dirty[a] = struct{}{}
	}
}

// Stats snapshots the window counters.
func (w *Window) Stats() WindowStats {
	st := WindowStats{
		Evicted:          w.evicted,
		Rebuilds:         w.rebuilds,
		Tuples:           w.store.Len(),
		Paths:            w.store.PathCount(),
		VantagePoints:    len(w.store.VPSet()),
		Communities:      len(w.store.Communities()),
		LargeCommunities: w.store.LargeCommunityCount(),
		DirtyAlphas:      len(w.dirty),
	}
	for bi := range w.buckets {
		b := &w.buckets[bi]
		st.Updates += len(b.updates)
		for i := range b.updates {
			t := b.updates[i].Time
			if st.Oldest.IsZero() || t.Before(st.Oldest) {
				st.Oldest = t
			}
			if t.After(st.Newest) {
				st.Newest = t
			}
		}
	}
	return st
}

package stream

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// FaultKind is one class of injected stream fault, mirroring how live
// BGP feeds actually fail (session resets, silent stalls, framing
// corruption, and the duplicate/reordered deliveries a recovering
// broker produces).
type FaultKind int

const (
	// FaultDisconnect drops the session: Recv returns ErrDisconnected.
	FaultDisconnect FaultKind = iota
	// FaultStall blocks Recv for StallFor (or until ctx is done) before
	// delivering — the silent-hang failure a read deadline must catch.
	FaultStall
	// FaultCorrupt consumes one update from the clean feed but delivers
	// ErrCorruptFrame instead: the update is lost in transit and only
	// the resume protocol can recover it.
	FaultCorrupt
	// FaultDuplicate re-delivers the previous update (same Seq).
	FaultDuplicate
	// FaultReorder swaps two adjacent deliveries.
	FaultReorder

	numFaultKinds
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultDisconnect:
		return "disconnect"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	case FaultDuplicate:
		return "duplicate"
	case FaultReorder:
		return "reorder"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllFaultKinds returns every fault kind.
func AllFaultKinds() []FaultKind {
	out := make([]FaultKind, numFaultKinds)
	for i := range out {
		out[i] = FaultKind(i)
	}
	return out
}

// FaultConfig controls injection.
type FaultConfig struct {
	// Seed drives every random choice. Session n uses Seed+n, so each
	// reconnect sees a fresh — but replayable — fault pattern, and a
	// delivery that was corrupted once is not doomed to corrupt forever.
	Seed int64
	// Rate is the per-delivery fault probability in [0, 1].
	Rate float64
	// Kinds restricts the injected faults; nil means all kinds.
	Kinds []FaultKind
	// StallFor is how long FaultStall blocks; 0 means 2× a typical test
	// read deadline is NOT assumed — it defaults to one second.
	StallFor time.Duration
}

// FaultStats counts injected faults; all fields are atomic so health
// endpoints and tests may read them while the feed runs.
type FaultStats struct {
	Disconnects atomic.Uint64
	Stalls      atomic.Uint64
	Corrupts    atomic.Uint64
	Duplicates  atomic.Uint64
	Reorders    atomic.Uint64
}

// Total returns the sum of all injected faults.
func (fs *FaultStats) Total() uint64 {
	return fs.Disconnects.Load() + fs.Stalls.Load() + fs.Corrupts.Load() +
		fs.Duplicates.Load() + fs.Reorders.Load()
}

// FaultSource wraps a clean Source with deterministic fault injection.
// The wrapped sessions honor the resume protocol (Connect(after) is
// forwarded untouched), so an Ingestor consuming a FaultSource must
// converge to exactly the clean stream's content — that is the whole
// test.
type FaultSource struct {
	inner    Source
	cfg      FaultConfig
	Stats    FaultStats
	connects atomic.Int64
}

// NewFaultSource wraps src.
func NewFaultSource(src Source, cfg FaultConfig) *FaultSource {
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = AllFaultKinds()
	}
	if cfg.StallFor <= 0 {
		cfg.StallFor = time.Second
	}
	return &FaultSource{inner: src, cfg: cfg}
}

// Connect opens a faulty session over the clean source.
func (f *FaultSource) Connect(ctx context.Context, after uint64) (Session, error) {
	inner, err := f.inner.Connect(ctx, after)
	if err != nil {
		return nil, err
	}
	n := f.connects.Add(1)
	return &faultSession{
		src:   f,
		inner: inner,
		rng:   rand.New(rand.NewSource(f.cfg.Seed + n)),
	}, nil
}

// faultSession injects faults on the Recv path. Not safe for
// concurrent Recv (neither are clean sessions).
type faultSession struct {
	src   *FaultSource
	inner Session
	rng   *rand.Rand

	pending []Update // reorder stash, delivered before new reads
	last    *Update  // previous delivery, for duplicates
	dead    bool
}

func (s *faultSession) Recv(ctx context.Context) (Update, error) {
	if s.dead {
		return Update{}, ErrDisconnected
	}
	// A reorder stash is delivered first, fault-free: the swap already
	// happened when it was stashed.
	if len(s.pending) > 0 {
		u := s.pending[0]
		s.pending = s.pending[1:]
		s.remember(u)
		return u, nil
	}
	cfg := &s.src.cfg
	if s.rng.Float64() >= cfg.Rate {
		return s.recvClean(ctx)
	}
	switch kind := cfg.Kinds[s.rng.Intn(len(cfg.Kinds))]; kind {
	case FaultDisconnect:
		s.src.Stats.Disconnects.Add(1)
		s.dead = true
		s.inner.Close()
		return Update{}, ErrDisconnected
	case FaultStall:
		s.src.Stats.Stalls.Add(1)
		t := time.NewTimer(cfg.StallFor)
		select {
		case <-ctx.Done():
			t.Stop()
			return Update{}, ctx.Err()
		case <-t.C:
		}
		// A stall shorter than the consumer's read deadline resolves
		// itself; deliver normally.
		return s.recvClean(ctx)
	case FaultCorrupt:
		u, err := s.inner.Recv(ctx)
		if err != nil {
			return Update{}, err // nothing to corrupt at EOF/error
		}
		_ = u // consumed and lost in transit
		s.src.Stats.Corrupts.Add(1)
		return Update{}, ErrCorruptFrame
	case FaultDuplicate:
		if s.last != nil {
			s.src.Stats.Duplicates.Add(1)
			return *s.last, nil
		}
		return s.recvClean(ctx) // nothing delivered yet to duplicate
	case FaultReorder:
		u1, err := s.inner.Recv(ctx)
		if err != nil {
			return Update{}, err
		}
		u2, err := s.inner.Recv(ctx)
		if err != nil {
			// Feed ended under the swap; deliver what we have, in order.
			s.remember(u1)
			return u1, nil
		}
		s.src.Stats.Reorders.Add(1)
		s.pending = append(s.pending, u1)
		s.remember(u2)
		return u2, nil
	default:
		return s.recvClean(ctx)
	}
}

func (s *faultSession) recvClean(ctx context.Context) (Update, error) {
	u, err := s.inner.Recv(ctx)
	if err != nil {
		return Update{}, err
	}
	s.remember(u)
	return u, nil
}

func (s *faultSession) remember(u Update) {
	c := u
	s.last = &c
}

func (s *faultSession) Close() error {
	s.dead = true
	return s.inner.Close()
}

// Package stream turns the batch pipeline into a continuously-fresh
// one: a resumable live-feed abstraction (Source/Session), a
// deterministic fault injector that breaks it the way real feeds break
// (disconnects, stalls, corrupt frames, duplicate and reordered
// deliveries), a rolling time window over the columnar tuple store
// with dirty-α tracking, and an Ingestor that survives all of it —
// reconnecting with jittered exponential backoff, resuming from the
// last applied sequence number, and emitting periodic delta snapshots
// for the serving layer to hot-swap.
//
// The robustness contract the Ingestor provides: no update in the
// feed is ever lost or double-applied (exactly-once application up to
// the resume protocol), a dead feed degrades the service to
// stale-but-serving rather than crashing it, and a canceled context
// tears everything down with no goroutine left behind.
package stream

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bgpintent/internal/bgp"
)

// Update is one timestamped route observation delivered by a live
// feed. Sequence numbers are assigned by the source, start at 1, and
// are strictly increasing in feed order; they are the resume tokens of
// the reconnect protocol.
type Update struct {
	// Seq is the source-assigned sequence number (1-based, dense).
	Seq uint64
	// Time is the observation timestamp in feed time; the rolling
	// window buckets and evicts by it.
	Time time.Time
	// VP is the vantage-point ASN that observed the route.
	VP uint32
	// Path is the AS path, nearest-first, VP included.
	Path []uint32
	// Comms is the attached community set.
	Comms bgp.Communities
	// LargeComms carries large communities. The streaming window
	// deliberately tracks these as statistics only — keying them into
	// window tuples would defeat dirty-α delta reclassification (see
	// window.go); batch loads classify them fully.
	LargeComms bgp.LargeCommunities
}

// Source is a resumable live feed of BGP updates. Connect opens a new
// session delivering every update with Seq > after, in sequence order
// (a fault-injecting wrapper may violate the ordering; the Ingestor
// copes). Implementations must support reconnecting any number of
// times, including concurrently with an unclosed prior session.
type Source interface {
	Connect(ctx context.Context, after uint64) (Session, error)
}

// Session is one live connection to a Source. Recv blocks until the
// next update arrives, the feed ends (io.EOF), the session dies
// (ErrDisconnected), a frame fails to decode (ErrCorruptFrame), or ctx
// is done (ctx.Err()). Sessions are not safe for concurrent Recv.
type Session interface {
	Recv(ctx context.Context) (Update, error)
	Close() error
}

// ErrDisconnected is returned by Recv when the transport drops; the
// consumer should reconnect and resume.
var ErrDisconnected = errors.New("stream: disconnected")

// ErrCorruptFrame is returned by Recv when a frame fails validation.
// The update it carried is lost in transit and the stream position can
// no longer be trusted, so the consumer must reconnect and resume from
// its last applied sequence number to recover it.
var ErrCorruptFrame = errors.New("stream: corrupt frame")

// FeedState is the Ingestor's connection state, exposed for health
// reporting.
type FeedState int32

const (
	// StateConnecting: no session yet (initial connect or reconnect in
	// progress, including backoff waits).
	StateConnecting FeedState = iota
	// StateLive: a session is established and reads are succeeding.
	StateLive
	// StateDown: the retry budget is exhausted; the Ingestor has given
	// up and the service keeps serving its last good snapshot.
	StateDown
	// StateEnded: the feed reported io.EOF (finite feeds only).
	StateEnded
)

// String names the state for health endpoints and logs.
func (s FeedState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateLive:
		return "live"
	case StateDown:
		return "down"
	case StateEnded:
		return "ended"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

package locinfer

import (
	"fmt"
	"testing"

	"bgpintent/internal/asrel"
	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
	"bgpintent/internal/simulate"
	"bgpintent/internal/topology"
)

func c(asn, val uint16) bgp.Community { return bgp.NewCommunity(asn, val) }

// mapGeo is a test SessionGeo: (a, b) -> city; cities 1-3 are in
// region 1.
type mapGeo map[[2]uint32]int

func (g mapGeo) SessionCity(a, b uint32) (int, bool) {
	city, ok := g[[2]uint32{a, b}]
	return city, ok
}

func (g mapGeo) Region(city int) int { return (city-1)/3 + 1 }

// testGeo places AS100's sessions to neighbors 501..506 in cities 1..6
// (region 1 holds cities 1-3, region 2 cities 4-6).
func testGeo() mapGeo {
	g := mapGeo{}
	for i, nbr := range []uint32{501, 502, 503, 504, 505, 506} {
		g[[2]uint32{100, nbr}] = 1 + i
	}
	return g
}

// buildStore creates a corpus where:
//   - 100:20 is a location community: tagged only on routes entering
//     AS100 via neighbors 501/502 (city 1), many origins.
//   - 100:30 is a relationship community: appears across all of AS100's
//     sessions, every city.
//   - 100:40 is origin-specific (one origin only).
func buildStore() *core.TupleStore {
	ts := core.NewTupleStore()
	neighbors := []uint32{501, 502, 503, 504, 505, 506}
	// Location community: ingress via 501/502 only.
	for i := 0; i < 12; i++ {
		vp := uint32(1000 + i)
		nbr := neighbors[i%2]
		origin := uint32(7000 + i)
		ts.AddView(vp, []uint32{vp, 100, nbr, origin}, bgp.Communities{c(100, 20)})
	}
	// Relationship community: every neighbor.
	for i := 0; i < 12; i++ {
		vp := uint32(1100 + i)
		nbr := neighbors[i%len(neighbors)]
		origin := uint32(7100 + i)
		ts.AddView(vp, []uint32{vp, 100, nbr, origin}, bgp.Communities{c(100, 30)})
	}
	// Origin-specific: one origin.
	for i := 0; i < 12; i++ {
		vp := uint32(1200 + i)
		ts.AddView(vp, []uint32{vp, 100, 501, 7777}, bgp.Communities{c(100, 40)})
	}
	return ts
}

func TestInferSynthetic(t *testing.T) {
	ts := buildStore()
	locs := Infer(ts, testGeo(), DefaultConfig())
	got := make(map[bgp.Community]bool)
	for _, l := range locs {
		got[l.Comm] = true
	}
	if !got[c(100, 20)] {
		t.Error("100:20 (location) not inferred")
	}
	if got[c(100, 30)] {
		t.Error("100:30 (relationship, all cities) inferred as location")
	}
	if got[c(100, 40)] {
		t.Error("100:40 (single origin) inferred as location")
	}
}

func TestInferRespectsSupport(t *testing.T) {
	ts := core.NewTupleStore()
	// Only 3 paths: below MinPaths.
	for i := 0; i < 3; i++ {
		vp := uint32(1000 + i)
		ts.AddView(vp, []uint32{vp, 100, 501, uint32(7000 + i)}, bgp.Communities{c(100, 20)})
	}
	if locs := Infer(ts, testGeo(), DefaultConfig()); len(locs) != 0 {
		t.Errorf("inferred %v from 3 paths", locs)
	}
}

func TestInferNeedsGeoFootprint(t *testing.T) {
	ts := core.NewTupleStore()
	// Plenty of support, but α's whole footprint is one city: no
	// concentration signal, so nothing can be inferred.
	for i := 0; i < 12; i++ {
		vp := uint32(1000 + i)
		ts.AddView(vp, []uint32{vp, 100, 501, uint32(7000 + i)}, bgp.Communities{c(100, 20)})
	}
	g := mapGeo{{100, 501}: 1}
	if locs := Infer(ts, g, DefaultConfig()); len(locs) != 0 {
		t.Errorf("inferred %v with a single-city footprint", locs)
	}
}

func TestFilterWithIntent(t *testing.T) {
	locs := []Inference{{Comm: c(100, 20)}, {Comm: c(100, 500)}}
	intent := &core.Inferences{Labels: map[bgp.Community]dict.Category{
		c(100, 20):  dict.CatInformation,
		c(100, 500): dict.CatAction,
	}}
	kept, dropped := FilterWithIntent(locs, intent)
	if len(kept) != 1 || kept[0].Comm != c(100, 20) {
		t.Errorf("kept = %v", kept)
	}
	if len(dropped) != 1 || dropped[0].Comm != c(100, 500) {
		t.Errorf("dropped = %v", dropped)
	}
}

// TestTable1ShapeOnCorpus verifies the headline Table 1 behavior: the
// location method has substantial traffic-engineering false positives,
// and filtering with the intent inference removes most of them while
// keeping most true geolocation inferences.
func TestTable1ShapeOnCorpus(t *testing.T) {
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate.New(topo, simulate.TinyConfig())
	ts := core.NewTupleStore()
	for d := 0; d < 2; d++ {
		day := sim.RunDay(d)
		for _, v := range day.Views {
			ts.AddView(v.VP, v.Path, v.Comms)
		}
	}
	orgs := asrel.NewOrgMap()
	for orgID, members := range topo.Orgs {
		for _, m := range members {
			orgs.Set(m, fmt.Sprintf("org-%d", orgID))
		}
	}
	ts.AnnotateOrgs(orgs)

	locs := Infer(ts, topo, DefaultConfig())
	if len(locs) < 10 {
		t.Fatalf("only %d location inferences; corpus too sparse", len(locs))
	}

	categorize := func(ls []Inference) (geo, te, other int) {
		for _, l := range ls {
			a := topo.ASes[uint32(l.Comm.ASN())]
			if a == nil || a.Plan == nil {
				other++
				continue
			}
			d, ok := a.Plan.Lookup(l.Comm.Value())
			if !ok {
				other++
				continue
			}
			switch {
			case d.Sub == dict.SubLocation:
				geo++
			case d.Category() == dict.CatAction:
				te++
			default:
				other++
			}
		}
		return
	}

	geoB, teB, otherB := categorize(locs)
	t.Logf("before filter: geo=%d te=%d other=%d", geoB, teB, otherB)
	if geoB == 0 {
		t.Fatal("no true geolocation inferences")
	}
	if teB == 0 {
		t.Fatal("no TE false positives; the Table 1 failure mode is absent")
	}

	opts := core.DefaultOptions()
	opts.Orgs = orgs
	intent := core.Classify(ts, opts)
	kept, dropped := FilterWithIntent(locs, intent)
	geoA, teA, otherA := categorize(kept)
	t.Logf("after filter:  geo=%d te=%d other=%d (dropped %d)", geoA, teA, otherA, len(dropped))

	if teA*4 > teB {
		t.Errorf("filter removed too few TE false positives: %d -> %d", teB, teA)
	}
	if geoA*10 < geoB*8 {
		t.Errorf("filter removed too many true geolocation inferences: %d -> %d", geoB, geoA)
	}
	precB := float64(geoB) / float64(geoB+teB+otherB)
	precA := float64(geoA) / float64(geoA+teA+otherA)
	t.Logf("precision %.3f -> %.3f", precB, precA)
	if precA <= precB {
		t.Errorf("precision did not improve: %.3f -> %.3f", precB, precA)
	}
}

// Package locinfer reimplements the location-community inference of
// Da Silva Jr. et al. (SIGMETRICS 2022), the state-of-the-art method the
// paper improves in §6/Table 1. Like the original, it examines each
// community in isolation and infers "location" from the geographic
// concentration of the sessions where routes carrying it entered the
// tagging AS (session geography plays the role PeeringDB/facility data
// plays for the original). Traffic-engineering action communities are
// also geographically concentrated — customers mostly steer traffic near
// home — which is the false-positive mode the paper's intent filter
// removes.
package locinfer

import (
	"sort"

	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
)

// SessionGeo locates the BGP session between two adjacent ASes, the
// substitute for the PeeringDB/facility geolocation the original method
// uses.
type SessionGeo interface {
	SessionCity(a, b uint32) (city int, ok bool)
	// Region maps a city to its region, for the geographic-coherence
	// test.
	Region(city int) int
}

// Config tunes the inference thresholds.
type Config struct {
	// MinPaths is the minimum number of unique on-path AS paths before a
	// community is considered at all.
	MinPaths int

	// MinOrigins is the minimum number of distinct origin ASes: location
	// communities annotate routes from many origins, while origin-
	// specific tags do not generalize.
	MinOrigins int

	// MaxCityShare is the concentration test: the community must appear
	// on routes entering α at no more than this share of the cities
	// where α's sessions are observed.
	MaxCityShare float64

	// MinAlphaCities is the minimum geographic footprint of α before
	// concentration is measurable.
	MinAlphaCities int

	// MinRegionShare is the geographic-coherence test: at least this
	// share of the community's on-path observations must enter α in a
	// single region.
	MinRegionShare float64
}

// DefaultConfig returns thresholds that behave like the published method
// on the simulated corpus.
func DefaultConfig() Config {
	return Config{MinPaths: 5, MinOrigins: 2, MaxCityShare: 0.45, MinAlphaCities: 5, MinRegionShare: 0.75}
}

// Inference is one community the method inferred to signal a location.
type Inference struct {
	Comm bgp.Community
	// Paths, Origins, Cities describe the evidence.
	Paths, Origins, Cities int
	// CityShare is Cities over α's observed session-city count.
	CityShare float64
}

// Infer returns the communities inferred to be location communities,
// sorted by community value. Each community is examined in isolation
// from the other communities of its AS, as in the original method.
func Infer(ts *core.TupleStore, geo SessionGeo, cfg Config) []Inference {
	if cfg.MinPaths <= 0 {
		cfg.MinPaths = 1
	}
	if cfg.MinAlphaCities < 2 {
		cfg.MinAlphaCities = 2
	}
	type evidence struct {
		paths       map[int32]struct{}
		origins     map[uint32]struct{}
		cities      map[int]struct{}
		regionPaths map[int]int
	}
	perComm := make(map[bgp.Community]*evidence)
	alphaCities := make(map[uint16]map[int]struct{})

	// α's geographic footprint: cities of every (α, downstream) session
	// on every unique path containing α, independent of communities.
	pathSeen := make(map[int32]struct{})
	for _, t := range ts.Tuples() {
		if _, dup := pathSeen[t.PathID]; dup {
			continue
		}
		pathSeen[t.PathID] = struct{}{}
		asns := ts.Path(t.PathID).ASNs
		for i := 0; i+1 < len(asns); i++ {
			a := asns[i]
			if a > 0xffff {
				continue
			}
			city, ok := geo.SessionCity(a, asns[i+1])
			if !ok {
				continue
			}
			set := alphaCities[uint16(a)]
			if set == nil {
				set = make(map[int]struct{})
				alphaCities[uint16(a)] = set
			}
			set[city] = struct{}{}
		}
	}

	tuples := ts.Tuples()
	for i := range tuples {
		t := &tuples[i]
		asns := ts.Path(t.PathID).ASNs
		for _, c := range ts.TupleComms(t) {
			alpha := uint32(c.ASN())
			// Find α and its downstream neighbor on this path.
			pos := -1
			for i, a := range asns {
				if a == alpha {
					pos = i
					break
				}
			}
			if pos < 0 || pos+1 >= len(asns) {
				continue // off-path, or α is the origin: no ingress evidence
			}
			city, ok := geo.SessionCity(alpha, asns[pos+1])
			if !ok {
				continue
			}
			ev := perComm[c]
			if ev == nil {
				ev = &evidence{
					paths:       make(map[int32]struct{}),
					origins:     make(map[uint32]struct{}),
					cities:      make(map[int]struct{}),
					regionPaths: make(map[int]int),
				}
				perComm[c] = ev
			}
			if _, dup := ev.paths[t.PathID]; !dup {
				ev.paths[t.PathID] = struct{}{}
				ev.regionPaths[geo.Region(city)]++
			}
			ev.origins[asns[len(asns)-1]] = struct{}{}
			ev.cities[city] = struct{}{}
		}
	}

	var out []Inference
	for c, ev := range perComm {
		if len(ev.paths) < cfg.MinPaths || len(ev.origins) < cfg.MinOrigins {
			continue
		}
		total := len(alphaCities[c.ASN()])
		if total < cfg.MinAlphaCities {
			continue
		}
		share := float64(len(ev.cities)) / float64(total)
		if share > cfg.MaxCityShare {
			continue
		}
		// Geographic coherence: a location community's observations
		// concentrate in one region; metadata that merely has a sparse
		// city set does not.
		maxRegion := 0
		for _, n := range ev.regionPaths {
			if n > maxRegion {
				maxRegion = n
			}
		}
		if float64(maxRegion) < cfg.MinRegionShare*float64(len(ev.paths)) {
			continue
		}
		out = append(out, Inference{
			Comm:      c,
			Paths:     len(ev.paths),
			Origins:   len(ev.origins),
			Cities:    len(ev.cities),
			CityShare: share,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Comm < out[j].Comm })
	return out
}

// FilterWithIntent applies the paper's improvement: location inferences
// our method classifies as action communities are removed. It returns
// the kept and dropped inferences.
func FilterWithIntent(locs []Inference, intent *core.Inferences) (kept, dropped []Inference) {
	for _, l := range locs {
		if intent.Category(l.Comm) == dict.CatAction {
			dropped = append(dropped, l)
		} else {
			kept = append(kept, l)
		}
	}
	return kept, dropped
}

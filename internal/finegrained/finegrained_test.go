package finegrained

import (
	"testing"

	"bgpintent/internal/asrel"
	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/corpus"
	"bgpintent/internal/dict"
	"bgpintent/internal/simulate"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindOther: "other-info", KindLocation: "location",
		KindRelationship: "relationship", KindROV: "rov",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// TestClassifyOnCorpus runs the fine-grained inference over a simulated
// corpus and scores it against the generator's subcategory ground truth.
func TestClassifyOnCorpus(t *testing.T) {
	c, err := corpus.Build(corpus.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	intent := core.Classify(c.Store, c.Options())
	rels := asrel.Infer(c.Store.AllPaths())
	res := Classify(c.Store, intent, c.Topo, ROVFunc(simulate.ROVState), rels, DefaultConfig())
	if len(res.Kinds) == 0 {
		t.Fatal("no fine-grained inferences")
	}

	// Score per ground-truth kind.
	type cell struct{ correct, total int }
	score := make(map[string]*cell)
	var confusion [4][4]int
	kindOf := func(sub dict.SubCategory) (Kind, bool) {
		switch sub {
		case dict.SubLocation:
			return KindLocation, true
		case dict.SubRelationship:
			return KindRelationship, true
		case dict.SubROV:
			return KindROV, true
		case dict.SubOtherInfo:
			return KindOther, true
		}
		return KindOther, false
	}
	for comm, got := range res.Kinds {
		a := c.Topo.ASes[uint32(comm.ASN())]
		if a == nil || a.Plan == nil || a.Plan.ASN != uint32(comm.ASN()) {
			continue
		}
		d, ok := a.Plan.Lookup(comm.Value())
		if !ok {
			continue
		}
		want, ok := kindOf(d.Sub)
		if !ok {
			continue
		}
		cl := score[want.String()]
		if cl == nil {
			cl = &cell{}
			score[want.String()] = cl
		}
		cl.total++
		if got == want {
			cl.correct++
		}
		confusion[want][got]++
	}
	overallCorrect, overallTotal := 0, 0
	for name, cl := range score {
		t.Logf("%-14s recall %d/%d", name, cl.correct, cl.total)
		overallCorrect += cl.correct
		overallTotal += cl.total
	}
	if overallTotal < 50 {
		t.Fatalf("only %d scored", overallTotal)
	}
	acc := float64(overallCorrect) / float64(overallTotal)
	t.Logf("fine-grained accuracy = %.3f (%d communities)", acc, overallTotal)
	if acc < 0.6 {
		t.Errorf("fine-grained accuracy = %.3f, want >= 0.6 (future-work quality bar)", acc)
	}
	// Every major kind must be both present in truth and recalled at
	// least once.
	for _, name := range []string{"location", "relationship"} {
		cl := score[name]
		if cl == nil || cl.total == 0 {
			t.Errorf("no ground-truth %s communities scored", name)
			continue
		}
		if cl.correct == 0 {
			t.Errorf("kind %s never recalled (0/%d)", name, cl.total)
		}
	}
}

// TestROVDetectorSynthetic checks the partition logic directly.
func TestROVDetectorSynthetic(t *testing.T) {
	ts := core.NewTupleStore()
	// 100:7 appears only on routes from invalid-state origins; plenty of
	// origins and neighbors.
	invalidOrigins := []uint32{}
	for o := uint32(7000); len(invalidOrigins) < 8; o++ {
		if simulate.ROVState(o) == 1 {
			invalidOrigins = append(invalidOrigins, o)
		}
	}
	for i, origin := range invalidOrigins {
		vp := uint32(1000 + i)
		nbr := uint32(500 + i%4)
		ts.AddView(vp, []uint32{vp, 100, nbr, origin}, bgp.Communities{bgp.NewCommunity(100, 7)})
	}
	intent := &core.Inferences{Labels: map[bgp.Community]dict.Category{
		bgp.NewCommunity(100, 7): dict.CatInformation,
	}}
	rels := asrel.NewGraph() // no relationship evidence
	res := Classify(ts, intent, nullGeo{}, ROVFunc(simulate.ROVState), rels, DefaultConfig())
	if k, ok := res.Kind(bgp.NewCommunity(100, 7)); !ok || k != KindROV {
		t.Errorf("kind = %v, %v; want rov", k, ok)
	}
}

// TestRelationshipDetectorSynthetic checks the relationship purity path.
func TestRelationshipDetectorSynthetic(t *testing.T) {
	ts := core.NewTupleStore()
	g := asrel.NewGraph()
	// 100:9 appears only when AS100 learned the route from a customer;
	// many different customers, origins of mixed ROV states.
	for i := 0; i < 12; i++ {
		vp := uint32(1000 + i)
		cust := uint32(600 + i%5)
		origin := uint32(8000 + i)
		g.SetP2C(100, cust)
		ts.AddView(vp, []uint32{vp, 100, cust, origin}, bgp.Communities{bgp.NewCommunity(100, 9)})
	}
	intent := &core.Inferences{Labels: map[bgp.Community]dict.Category{
		bgp.NewCommunity(100, 9): dict.CatInformation,
	}}
	res := Classify(ts, intent, nullGeo{}, nil, g, DefaultConfig())
	if k, ok := res.Kind(bgp.NewCommunity(100, 9)); !ok || k != KindRelationship {
		t.Errorf("kind = %v, %v; want relationship", k, ok)
	}
}

// TestActionCommunitiesIgnored: only information communities get kinds.
func TestActionCommunitiesIgnored(t *testing.T) {
	ts := core.NewTupleStore()
	for i := 0; i < 10; i++ {
		vp := uint32(1000 + i)
		ts.AddView(vp, []uint32{vp, 100, uint32(7000 + i)}, bgp.Communities{bgp.NewCommunity(100, 5)})
	}
	intent := &core.Inferences{Labels: map[bgp.Community]dict.Category{
		bgp.NewCommunity(100, 5): dict.CatAction,
	}}
	res := Classify(ts, intent, nullGeo{}, nil, asrel.NewGraph(), DefaultConfig())
	if len(res.Kinds) != 0 {
		t.Errorf("action community classified fine-grained: %v", res.Kinds)
	}
}

// nullGeo is a SessionGeo with no knowledge.
type nullGeo struct{}

func (nullGeo) SessionCity(a, b uint32) (int, bool) { return 0, false }
func (nullGeo) Region(city int) int                 { return 0 }

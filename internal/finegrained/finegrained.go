// Package finegrained takes the paper's stated next step (§7, Figure 2):
// refining information communities into sub-categories — location,
// relationship, ROV status, other. The coarse action/information split
// is the prerequisite the paper establishes; this package shows what the
// enabled follow-on inference looks like on the same corpus.
//
// Detectors, applied in order of evidence strength to communities the
// coarse classifier labeled information:
//
//  1. ROV: the community's presence partitions by the origin's RPKI
//     validation state (oracle: a validated-ROA table; here the
//     simulator's synthetic one).
//  2. Location: the Da Silva-style geographic concentration test
//     (oracle: session geography, standing in for PeeringDB).
//  3. Relationship: the community's on-path observations correlate with
//     one inferred relationship class between α and the neighbor it
//     learned the route from.
//  4. Other: everything else.
package finegrained

import (
	"sort"

	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
	"bgpintent/internal/locinfer"
)

// Kind is the inferred sub-category of an information community.
type Kind int8

const (
	KindOther Kind = iota
	KindLocation
	KindRelationship
	KindROV
)

// String names the kind, matching the dict subcategory names where
// applicable.
func (k Kind) String() string {
	switch k {
	case KindLocation:
		return "location"
	case KindRelationship:
		return "relationship"
	case KindROV:
		return "rov"
	default:
		return "other-info"
	}
}

// ROVOracle resolves an origin AS to its validation state, the RPKI
// substitute.
type ROVOracle interface {
	ROVState(origin uint32) int
}

// ROVFunc adapts a function to ROVOracle.
type ROVFunc func(origin uint32) int

// ROVState implements ROVOracle.
func (f ROVFunc) ROVState(origin uint32) int { return f(origin) }

// Config tunes the detectors.
type Config struct {
	// Loc configures the location detector.
	Loc locinfer.Config

	// MinPaths is the minimum unique on-path support before any
	// fine-grained call is made.
	MinPaths int

	// MinOrigins is the minimum distinct origins for the ROV detector
	// (a community seen from one origin trivially has a pure state).
	MinOrigins int

	// ROVPurity is the required fraction of origins sharing one
	// validation state.
	ROVPurity float64

	// RelPurity is the required fraction of on-path observations whose
	// α-to-neighbor relationship agrees.
	RelPurity float64

	// MinNeighbors is the minimum distinct neighbors for the
	// relationship detector (tags from one session prove nothing).
	MinNeighbors int
}

// DefaultConfig returns detector thresholds that behave well on the
// simulated corpus.
func DefaultConfig() Config {
	return Config{
		Loc:          locinfer.DefaultConfig(),
		MinPaths:     5,
		MinOrigins:   5,
		ROVPurity:    0.95,
		RelPurity:    0.90,
		MinNeighbors: 3,
	}
}

// Result maps each information community with enough evidence to its
// inferred kind. Communities with insufficient support are absent.
type Result struct {
	Kinds map[bgp.Community]Kind
}

// Kind returns the inferred kind and whether the community was resolved.
func (r *Result) Kind(c bgp.Community) (Kind, bool) {
	k, ok := r.Kinds[c]
	return k, ok
}

// Counts returns how many communities were assigned each kind.
func (r *Result) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, k := range r.Kinds {
		out[k]++
	}
	return out
}

// evidence aggregates one community's on-path observations.
type evidence struct {
	paths     int
	origins   map[uint32]int // origin -> unique paths
	relCounts [3]int         // topology.Rel* -> unique paths with that α→next relationship
	relKnown  int
	neighbors map[uint32]struct{}
}

// Classify infers sub-categories for the information communities in
// intent, using the corpus observations plus the geographic, RPKI and
// relationship context.
func Classify(ts *core.TupleStore, intent *core.Inferences, geo locinfer.SessionGeo, rov ROVOracle, rels core.RelLookup, cfg Config) *Result {
	if cfg.MinPaths <= 0 {
		cfg.MinPaths = 1
	}
	res := &Result{Kinds: make(map[bgp.Community]Kind)}

	// Location detector runs once over the corpus.
	isLocation := make(map[bgp.Community]bool)
	for _, l := range locinfer.Infer(ts, geo, cfg.Loc) {
		isLocation[l.Comm] = true
	}

	// Gather per-community evidence over unique on-path paths.
	evs := make(map[bgp.Community]*evidence)
	type commPath struct {
		comm bgp.Community
		path int32
	}
	seen := make(map[commPath]struct{})
	tuples := ts.Tuples()
	for i := range tuples {
		t := &tuples[i]
		asns := ts.Path(t.PathID).ASNs
		for _, c := range ts.TupleComms(t) {
			if intent.Category(c) != dict.CatInformation {
				continue
			}
			cp := commPath{c, t.PathID}
			if _, dup := seen[cp]; dup {
				continue
			}
			seen[cp] = struct{}{}
			alpha := uint32(c.ASN())
			pos := -1
			for i, a := range asns {
				if a == alpha {
					pos = i
					break
				}
			}
			if pos < 0 {
				continue // off-path observation: no ingress context
			}
			ev := evs[c]
			if ev == nil {
				ev = &evidence{origins: make(map[uint32]int), neighbors: make(map[uint32]struct{})}
				evs[c] = ev
			}
			ev.paths++
			ev.origins[asns[len(asns)-1]]++
			if pos+1 < len(asns) {
				next := asns[pos+1]
				ev.neighbors[next] = struct{}{}
				switch {
				case rels.IsCustomerOf(next, alpha):
					ev.relCounts[0]++
					ev.relKnown++
				case rels.IsPeer(next, alpha):
					ev.relCounts[1]++
					ev.relKnown++
				case rels.IsCustomerOf(alpha, next):
					ev.relCounts[2]++
					ev.relKnown++
				}
			}
		}
	}

	comms := make([]bgp.Community, 0, len(evs))
	for c := range evs {
		comms = append(comms, c)
	}
	sort.Slice(comms, func(i, j int) bool { return comms[i] < comms[j] })

	for _, c := range comms {
		ev := evs[c]
		if ev.paths < cfg.MinPaths {
			continue
		}
		switch {
		case rov != nil && rovPure(ev, rov, cfg):
			res.Kinds[c] = KindROV
		case isLocation[c]:
			res.Kinds[c] = KindLocation
		case relPure(ev, cfg):
			res.Kinds[c] = KindRelationship
		default:
			res.Kinds[c] = KindOther
		}
	}
	return res
}

// rovPure reports whether the community's origins overwhelmingly share
// one validation state.
func rovPure(ev *evidence, rov ROVOracle, cfg Config) bool {
	if len(ev.origins) < cfg.MinOrigins {
		return false
	}
	var states [3]int
	total := 0
	for origin := range ev.origins {
		s := rov.ROVState(origin)
		if s < 0 || s > 2 {
			continue
		}
		states[s]++
		total++
	}
	if total < cfg.MinOrigins {
		return false
	}
	max := states[0]
	for _, n := range states[1:] {
		if n > max {
			max = n
		}
	}
	// A pure "valid" set is weak evidence (most origins are valid
	// anyway); require the dominant state to be a minority class, or an
	// essentially perfect valid-only partition with many origins.
	dominant := 0
	for s, n := range states {
		if n == max {
			dominant = s
		}
	}
	pure := float64(max) >= cfg.ROVPurity*float64(total)
	if !pure {
		return false
	}
	if dominant == 0 {
		return total >= 4*cfg.MinOrigins
	}
	return true
}

// relPure reports whether the community's ingress relationships
// overwhelmingly agree.
func relPure(ev *evidence, cfg Config) bool {
	if ev.relKnown < cfg.MinPaths || len(ev.neighbors) < cfg.MinNeighbors {
		return false
	}
	max := ev.relCounts[0]
	if ev.relCounts[1] > max {
		max = ev.relCounts[1]
	}
	if ev.relCounts[2] > max {
		max = ev.relCounts[2]
	}
	return float64(max) >= cfg.RelPurity*float64(ev.relKnown)
}

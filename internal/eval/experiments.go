package eval

import (
	"math"
	"math/rand"
	"sort"
	"strconv"

	"bgpintent/internal/asrel"
	"bgpintent/internal/core"
	"bgpintent/internal/corpus"
	"bgpintent/internal/dict"
	"bgpintent/internal/finegrained"
	"bgpintent/internal/locinfer"
	"bgpintent/internal/simulate"
)

// Headline reproduces the §6 headline numbers: communities observed,
// classified (action/information split), excluded, and accuracy against
// the ground-truth dictionary.
func Headline(c *corpus.Corpus) *Report {
	r := newReport("headline", "Corpus totals and overall accuracy",
		"78,480 of 88,982 communities classified: 24,376 action + 54,104 information; 96.5% accuracy on 6,259 dictionary communities")
	inf := core.Classify(c.Store, c.Options())
	action, info := inf.Counts()
	conf := AgainstDictionary(inf, c.Dict)

	observed := len(c.Store.Communities())
	r.addf("tuples=%d unique-paths=%d observed-communities=%d (regular) + %d large",
		c.Store.Len(), c.Store.PathCount(), observed, c.Store.LargeCommunityCount())
	r.addf("classified=%d (action=%d information=%d) excluded=%d", action+info, action, info, len(inf.Excluded))
	r.addf("dictionary: ases=%d entries=%d covered-communities=%d", c.Dict.ASNs(), c.Dict.Len(), conf.Total())
	r.addf("accuracy=%.3f (info->info=%d info->action=%d action->action=%d action->info=%d)",
		conf.Accuracy(), conf.InfoAsInfo, conf.InfoAsAction, conf.ActionAsAction, conf.ActionAsInfo)
	r.Metrics["accuracy"] = conf.Accuracy()
	r.Metrics["action"] = float64(action)
	r.Metrics["information"] = float64(info)
	r.Metrics["excluded"] = float64(len(inf.Excluded))
	r.Metrics["observed"] = float64(observed)
	r.Metrics["covered"] = float64(conf.Total())
	return r
}

// Fig4 reproduces Figure 4: for ground-truth ASes with both categories,
// the contiguous dictionary ranges and the BGP-observed values beside
// them (observed values uncovered by the dictionary are "unknown").
func Fig4(c *corpus.Corpus) *Report {
	r := newReport("fig4", "Dictionary ranges vs BGP-observed communities per AS",
		"operators devote contiguous β ranges to one purpose; many observed values are undocumented")
	os := core.Observe(c.Store, c.Options())
	observedBy := make(map[uint32][]uint16)
	for comm := range os.Stats {
		observedBy[uint32(comm.ASN())] = append(observedBy[uint32(comm.ASN())], comm.Value())
	}

	shown := 0
	for _, asn := range c.DictASNs {
		entries := c.Dict.Entries(asn)
		hasAction, hasInfo := false, false
		for _, e := range entries {
			switch e.Category() {
			case dict.CatAction:
				hasAction = true
			case dict.CatInformation:
				hasInfo = true
			}
		}
		if !hasAction || !hasInfo {
			continue
		}
		plan := c.Topo.ASes[asn].Plan
		betas := observedBy[asn]
		sort.Slice(betas, func(i, j int) bool { return betas[i] < betas[j] })
		var obsAction, obsInfo, obsUnknown int
		for _, b := range betas {
			switch c.Dict.Category(asn, b) {
			case dict.CatAction:
				obsAction++
			case dict.CatInformation:
				obsInfo++
			default:
				obsUnknown++
			}
		}
		blocks := ""
		for _, blk := range plan.Blocks {
			tag := "A"
			if blk.Category() == dict.CatInformation {
				tag = "I"
			}
			blocks += renderBlock(tag, blk.Lo, blk.Hi)
		}
		r.addf("AS%-6d dict-blocks:%s", asn, blocks)
		r.addf("          observed: action=%d info=%d unknown=%d (β %s)",
			obsAction, obsInfo, obsUnknown, renderSpan(betas))
		shown++
		if shown >= 30 { // the paper shows 30 ASes
			break
		}
	}
	r.Metrics["ases"] = float64(shown)
	return r
}

// Fig6 reproduces Figure 6: the CDF of on-path:off-path ratios of
// mixed baseline (regex) clusters per category, and the accuracy of a
// ratio threshold, optimal near 160:1.
func Fig6(c *corpus.Corpus) *Report {
	r := newReport("fig6", "CDF of on-path:off-path ratios of baseline clusters",
		"111 info and 72 action mixed clusters separate at ~160:1, yielding ~98% accuracy")
	os := core.Observe(c.Store, c.Options())
	clusters := BaselineClusters(os, c.Dict)

	var pureOn, pureOff, mixedInfo, mixedAction int
	var commPureOn, commPureOff, commMixed int
	infoCDF, actionCDF := &CDF{}, &CDF{}
	for _, cl := range clusters {
		switch {
		case cl.PureOnPath:
			pureOn++
			commPureOn += len(cl.Members)
		case cl.PureOffPath:
			pureOff++
			commPureOff += len(cl.Members)
		default:
			commMixed += len(cl.Members)
			if cl.Category() == dict.CatInformation {
				mixedInfo++
				infoCDF.Add(cl.Ratio)
			} else {
				mixedAction++
				actionCDF.Add(cl.Ratio)
			}
		}
	}
	r.addf("clusters=%d: pure-on-path=%d (comms %d), pure-off-path=%d (comms %d), mixed=%d (comms %d; info=%d action=%d)",
		len(clusters), pureOn, commPureOn, pureOff, commPureOff, mixedInfo+mixedAction, commMixed, mixedInfo, mixedAction)
	for _, q := range []float64{0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95} {
		r.addf("ratio q%02.0f: action=%-12.2f info=%.2f", q*100, actionCDF.Quantile(q), infoCDF.Quantile(q))
	}
	thresholds := logGrid(0.01, 100000, 41)
	scan := ScanRatioThreshold(clusters, thresholds)
	best := bestPoint(scan)
	at160 := accuracyAt(scan, 160)
	r.addf("threshold scan: best=%.1f:1 accuracy=%.3f; at 160:1 accuracy=%.3f", best.Threshold, best.Accuracy, at160)
	r.addf("info clusters with ratio >= 160: %.1f%%; action clusters: %.1f%%",
		100*(1-infoCDF.FractionBelow(160)), 100*(1-actionCDF.FractionBelow(160)))
	r.Metrics["best_threshold"] = best.Threshold
	r.Metrics["best_accuracy"] = best.Accuracy
	r.Metrics["accuracy_at_160"] = at160
	r.Metrics["mixed_info"] = float64(mixedInfo)
	r.Metrics["mixed_action"] = float64(mixedAction)
	return r
}

// Fig7 reproduces Figure 7: the customer:peer ratio CDFs of baseline
// clusters, whose best threshold (~5:1) is a much weaker separator
// (~80% accuracy).
func Fig7(c *corpus.Corpus) *Report {
	r := newReport("fig7", "CDF of customer:peer ratios of baseline clusters",
		"best threshold ~5:1 reaches only ~80% accuracy: not a useful feature")
	os := core.Observe(c.Store, c.Options())
	clusters := BaselineClusters(os, c.Dict)
	rels := asrel.Infer(c.Store.AllPaths())
	stats := core.CustomerPeer(c.Store, c.Options(), rels)
	cps := CustPeerClusters(clusters, stats)

	infoCDF, actionCDF := &CDF{}, &CDF{}
	for _, cp := range cps {
		if cp.Cluster.Category() == dict.CatInformation {
			infoCDF.Add(cp.Ratio)
		} else {
			actionCDF.Add(cp.Ratio)
		}
	}
	r.addf("clusters with evidence=%d (info=%d action=%d); inferred rel pairs=%d",
		len(cps), infoCDF.Len(), actionCDF.Len(), rels.Len())
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90} {
		r.addf("cust:peer q%02.0f: action=%-12.2f info=%.2f", q*100, actionCDF.Quantile(q), infoCDF.Quantile(q))
	}
	thresholds := logGrid(0.1, 1000, 31)
	scan := ScanCustPeerThreshold(cps, thresholds)
	best := bestPoint(scan)
	r.addf("threshold scan: best=%.1f:1 accuracy=%.3f (info if ratio below threshold)", best.Threshold, best.Accuracy)
	r.Metrics["best_threshold"] = best.Threshold
	r.Metrics["best_accuracy"] = best.Accuracy
	return r
}

// Fig9 reproduces Figure 9: inference accuracy across minimum-gap
// parameters, with gap 0 meaning no clustering.
func Fig9(c *corpus.Corpus, gaps []int) *Report {
	r := newReport("fig9", "Accuracy vs minimum gap between clusters",
		"no clustering 73.7%; gaps 100-250 yield >96%; the paper uses 140 (96.5%)")
	if len(gaps) == 0 {
		gaps = []int{0, 10, 20, 40, 70, 100, 140, 180, 250, 350, 500, 700, 1000, 1400, 2000}
	}
	opts := c.Options()
	os := core.Observe(c.Store, opts)
	var bestGap int
	bestAcc := -1.0
	for _, gap := range gaps {
		o := opts
		o.MinGap = gap
		inf := core.ClassifyObserved(os, o)
		conf := AgainstDictionary(inf, c.Dict)
		acc := conf.Accuracy()
		r.addf("gap=%-5d accuracy=%.3f (n=%d)", gap, acc, conf.Total())
		if acc > bestAcc {
			bestAcc, bestGap = acc, gap
		}
		if gap == 0 {
			r.Metrics["accuracy_no_clustering"] = acc
		}
		if gap == 140 {
			r.Metrics["accuracy_at_140"] = acc
		}
	}
	r.addf("best gap=%d accuracy=%.3f", bestGap, bestAcc)
	r.Metrics["best_gap"] = float64(bestGap)
	r.Metrics["best_accuracy"] = bestAcc
	return r
}

// Fig10 reproduces Figure 10: accuracy and coverage as randomly chosen
// vantage points accumulate, over the given trial count.
func Fig10(c *corpus.Corpus, counts []int, trials int, seed int64) *Report {
	r := newReport("fig10", "Accuracy/coverage vs number of vantage points",
		"median accuracy stabilizes above 93% by ~20 VPs, covering ~76.5% of communities")
	opts := c.Options()
	sweep := core.NewVPSweep(c.Store, opts)
	all := sweep.VPs()
	if len(counts) == 0 {
		counts = []int{1, 2, 3, 5, 8, 12, 16, 20, 25, 30, 40, 60, 90, 130, len(all)}
	}

	// Full-data reference for coverage.
	fullInf := core.ClassifyObserved(sweep.Run(all), opts)
	fullClassified := len(fullInf.Labels)
	r.addf("total VPs=%d, classified with all=%d", len(all), fullClassified)

	// Trials are independent given their sampled subsets, so each VP
	// count pre-draws every subset from the shared rng (keeping the
	// random sequence identical to the sequential run) and then fans the
	// trials out over one worker pool; per-trial results land in
	// trial-indexed slots and are reduced in trial order.
	rng := rand.New(rand.NewSource(seed))
	topts := opts
	topts.Workers = 1 // trials are the unit of parallelism; don't nest pools
	for _, n := range counts {
		if n > len(all) {
			n = len(all)
		}
		accs := &CDF{}
		covs := &CDF{}
		subsets := make([][]uint32, trials)
		for trial := range subsets {
			subsets[trial] = sampleVPs(rng, all, n)
		}
		type trialResult struct {
			acc    float64
			hasAcc bool
			cov    float64
		}
		results := make([]trialResult, trials)
		core.ParallelFor(opts.Workers, trials, func(trial int) {
			inf := core.ClassifyObserved(sweep.Run(subsets[trial]), topts)
			conf := AgainstDictionary(inf, c.Dict)
			res := trialResult{cov: float64(len(inf.Labels)) / float64(max(fullClassified, 1))}
			if conf.Total() > 0 {
				res.acc = conf.Accuracy()
				res.hasAcc = true
			}
			results[trial] = res
		})
		for _, res := range results {
			if res.hasAcc {
				accs.Add(res.acc)
			}
			covs.Add(res.cov)
		}
		r.addf("vps=%-4d accuracy p10=%.3f p50=%.3f p90=%.3f coverage p50=%.3f",
			n, accs.Quantile(0.10), accs.Quantile(0.50), accs.Quantile(0.90), covs.Quantile(0.50))
		if n == 20 {
			r.Metrics["accuracy_p50_at_20"] = accs.Quantile(0.50)
			r.Metrics["coverage_p50_at_20"] = covs.Quantile(0.50)
		}
	}
	return r
}

// DaysSweep reproduces the §6 "benefits of additional days" analysis:
// accuracy as days of input accumulate.
func DaysSweep(cfg corpus.Config, maxDays int) (*Report, error) {
	r := newReport("days", "Accuracy vs days of input data",
		"accuracy stabilizes between 96.4% and 96.6% with two or more days")
	cfg.Days = 1
	c, err := corpus.Build(cfg)
	if err != nil {
		return nil, err
	}
	for day := 1; day <= maxDays; day++ {
		if day > 1 {
			c.LoadDay(day - 1)
			c.Store.AnnotateOrgs(c.Orgs)
		}
		inf := core.Classify(c.Store, c.Options())
		conf := AgainstDictionary(inf, c.Dict)
		r.addf("days=%d tuples=%-8d accuracy=%.3f classified=%d", day, c.Store.Len(), conf.Accuracy(), len(inf.Labels))
		if day == 1 {
			r.Metrics["accuracy_day1"] = conf.Accuracy()
		}
		r.Metrics["accuracy_final"] = conf.Accuracy()
	}
	return r, nil
}

// MonthsSweep reproduces the §6 longitudinal analysis: one day of data
// from each of the given number of consecutive months (topology epochs).
// Accuracy stays in a narrow band while the inferred-community count
// grows, mostly through new information communities.
func MonthsSweep(cfg corpus.Config, months int) (*Report, error) {
	r := newReport("months", "Accuracy over monthly snapshots",
		"accuracy 92.6%-95.4% over a year; inferred communities grow ~5%, mostly information")
	cfg.Days = 1
	var firstCount, lastCount int
	var firstInfo, lastInfo int
	minAcc, maxAcc := 1.0, 0.0
	for m := 0; m < months; m++ {
		cfg.Epoch = m
		c, err := corpus.Build(cfg)
		if err != nil {
			return nil, err
		}
		inf := core.Classify(c.Store, c.Options())
		conf := AgainstDictionary(inf, c.Dict)
		action, info := inf.Counts()
		acc := conf.Accuracy()
		r.addf("month=%-2d accuracy=%.3f classified=%d (action=%d info=%d)", m+1, acc, action+info, action, info)
		if m == 0 {
			firstCount, firstInfo = action+info, info
		}
		lastCount, lastInfo = action+info, info
		minAcc = math.Min(minAcc, acc)
		maxAcc = math.Max(maxAcc, acc)
	}
	growth := float64(lastCount-firstCount) / float64(max(firstCount, 1))
	r.addf("accuracy band [%.3f, %.3f]; classified growth %+.1f%% (information %+d, action %+d)",
		minAcc, maxAcc, 100*growth, lastInfo-firstInfo, (lastCount-lastInfo)-(firstCount-firstInfo))
	r.Metrics["min_accuracy"] = minAcc
	r.Metrics["max_accuracy"] = maxAcc
	r.Metrics["growth"] = growth
	r.Metrics["info_growth"] = float64(lastInfo - firstInfo)
	return r, nil
}

// Table1 reproduces Table 1: the location-community inference's
// precision before and after filtering with the intent classification.
func Table1(c *corpus.Corpus) *Report {
	r := newReport("tab1", "Location inference before/after intent filtering",
		"precision 68.2% -> 94.8%; traffic-engineering false positives drop 206 -> 12")
	locs := locinfer.Infer(c.Store, c.Topo, locinfer.DefaultConfig())
	intent := core.Classify(c.Store, c.Options())
	kept, dropped := locinfer.FilterWithIntent(locs, intent)

	type row struct{ geo, te, route, internal, other int }
	categorize := func(ls []locinfer.Inference) row {
		var out row
		for _, l := range ls {
			a := c.Topo.ASes[uint32(l.Comm.ASN())]
			if a == nil || a.Plan == nil {
				out.other++
				continue
			}
			d, ok := a.Plan.Lookup(l.Comm.Value())
			switch {
			case !ok:
				out.other++
			case d.Sub == dict.SubLocation:
				out.geo++
			case d.Category() == dict.CatAction:
				out.te++
			case d.Sub == dict.SubRelationship || d.Sub == dict.SubROV:
				out.route++
			case d.Sub == dict.SubOtherInfo:
				out.internal++
			default:
				out.internal++
			}
		}
		return out
	}
	before := categorize(locs)
	after := categorize(kept)
	precision := func(x row) float64 {
		total := x.geo + x.te + x.route + x.internal + x.other
		if total == 0 {
			return 0
		}
		return float64(x.geo) / float64(total)
	}
	r.addf("%-28s %8s %8s", "class/type", "before", "after")
	r.addf("%-28s %8d %8d", "Info/Geolocation", before.geo, after.geo)
	r.addf("%-28s %8d %8d", "Action/Traffic Engineering", before.te, after.te)
	r.addf("%-28s %8d %8d", "Info/Route Type", before.route, after.route)
	r.addf("%-28s %8d %8d", "Info/Internal-Other", before.internal+before.other, after.internal+after.other)
	r.addf("%-28s %8d %8d", "Total", len(locs), len(kept))
	r.addf("precision %.3f -> %.3f (dropped %d)", precision(before), precision(after), len(dropped))
	r.addf("(internal/other split before: other-info=%d uncategorized=%d)", before.internal, before.other)
	r.Metrics["precision_before"] = precision(before)
	r.Metrics["precision_after"] = precision(after)
	r.Metrics["te_before"] = float64(before.te)
	r.Metrics["te_after"] = float64(after.te)
	return r
}

// Ablations quantifies the design choices: cluster-mean vs pooled
// ratios, sibling awareness, and the exclusion rules, scored against the
// generator's full ground truth.
func Ablations(c *corpus.Corpus) *Report {
	r := newReport("ablation", "Design-choice ablations",
		"(no single paper number; §5.2 motivates each rule)")
	base := c.Options()
	variants := []struct {
		name, key string
		mod       func(core.Options) core.Options
	}{
		{"baseline (paper)", "accuracy_baseline", func(o core.Options) core.Options { return o }},
		{"pooled cluster ratio", "accuracy_pooled_ratio", func(o core.Options) core.Options { o.PooledRatio = true; return o }},
		{"no sibling awareness", "accuracy_no_siblings", func(o core.Options) core.Options { o.Orgs = nil; return o }},
		{"no exclusions", "accuracy_no_exclusions", func(o core.Options) core.Options { o.DisableExclusions = true; return o }},
	}
	for _, v := range variants {
		opts := v.mod(base)
		inf := core.Classify(c.Store, opts)
		conf := againstTruth(inf, c)
		r.addf("%-22s accuracy=%.3f scored=%d classified=%d excluded=%d",
			v.name, conf.Accuracy(), conf.Total(), len(inf.Labels), len(inf.Excluded))
		r.Metrics[v.key] = conf.Accuracy()
	}
	return r
}

// againstTruth scores against the generator's complete ground truth
// (every plan, including IXP route servers), not just the dictionary
// subset.
func againstTruth(inf *core.Inferences, c *corpus.Corpus) Confusion {
	var conf Confusion
	for comm, got := range inf.Labels {
		truth := c.TruthCategory(uint32(comm.ASN()), comm.Value())
		if truth == dict.CatUnknown {
			continue
		}
		conf.Add(truth, got)
	}
	return conf
}

// sampleVPs picks n distinct vantage points.
func sampleVPs(rng *rand.Rand, all []uint32, n int) []uint32 {
	if n >= len(all) {
		return all
	}
	idx := rng.Perm(len(all))[:n]
	out := make([]uint32, n)
	for i, j := range idx {
		out[i] = all[j]
	}
	return out
}

// logGrid returns n log-spaced thresholds in [lo, hi].
func logGrid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(hi/lo, f)
	}
	return out
}

func bestPoint(scan []ThresholdPoint) ThresholdPoint {
	best := scan[0]
	for _, p := range scan[1:] {
		if p.Accuracy > best.Accuracy {
			best = p
		}
	}
	return best
}

func accuracyAt(scan []ThresholdPoint, threshold float64) float64 {
	bestDist := math.Inf(1)
	acc := 0.0
	for _, p := range scan {
		d := math.Abs(math.Log(p.Threshold) - math.Log(threshold))
		if d < bestDist {
			bestDist = d
			acc = p.Accuracy
		}
	}
	return acc
}

func renderBlock(tag string, lo, hi uint16) string {
	if lo == hi {
		return " " + tag + "[" + itoa(int(lo)) + "]"
	}
	return " " + tag + "[" + itoa(int(lo)) + "-" + itoa(int(hi)) + "]"
}

func renderSpan(betas []uint16) string {
	if len(betas) == 0 {
		return "none"
	}
	return itoa(int(betas[0])) + ".." + itoa(int(betas[len(betas)-1]))
}

func itoa(v int) string { return strconv.Itoa(v) }

// SeedSweep checks robustness of the headline result across independent
// corpora: the calibration must not be an artifact of one seed.
func SeedSweep(cfg corpus.Config, seeds []int64) (*Report, error) {
	r := newReport("seeds", "Headline accuracy across corpus seeds",
		"(robustness check; no paper counterpart — the paper has one Internet)")
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	minAcc, maxAcc := 1.0, 0.0
	for _, seed := range seeds {
		cfg.Seed = seed
		c, err := corpus.Build(cfg)
		if err != nil {
			return nil, err
		}
		inf := core.Classify(c.Store, c.Options())
		conf := AgainstDictionary(inf, c.Dict)
		action, info := inf.Counts()
		acc := conf.Accuracy()
		r.addf("seed=%-3d accuracy=%.3f scored=%d action=%d info=%d", seed, acc, conf.Total(), action, info)
		minAcc = math.Min(minAcc, acc)
		maxAcc = math.Max(maxAcc, acc)
	}
	r.addf("accuracy band [%.3f, %.3f] across %d seeds", minAcc, maxAcc, len(seeds))
	r.Metrics["min_accuracy"] = minAcc
	r.Metrics["max_accuracy"] = maxAcc
	return r, nil
}

// FineGrained runs the §7 future-work extension: refining information
// communities into location / relationship / ROV / other, scored against
// the generator's subcategory ground truth. The paper publishes no
// numbers for this step — it is the direction the coarse classification
// enables.
func FineGrained(c *corpus.Corpus) *Report {
	r := newReport("fine", "Fine-grained information sub-categories (§7 extension)",
		"(future work in the paper; no published numbers)")
	intent := core.Classify(c.Store, c.Options())
	rels := asrel.Infer(c.Store.AllPaths())
	res := finegrained.Classify(c.Store, intent, c.Topo, finegrained.ROVFunc(simulate.ROVState), rels, finegrained.DefaultConfig())

	kinds := []finegrained.Kind{finegrained.KindLocation, finegrained.KindRelationship, finegrained.KindROV, finegrained.KindOther}
	kindOf := func(sub dict.SubCategory) (finegrained.Kind, bool) {
		switch sub {
		case dict.SubLocation:
			return finegrained.KindLocation, true
		case dict.SubRelationship:
			return finegrained.KindRelationship, true
		case dict.SubROV:
			return finegrained.KindROV, true
		case dict.SubOtherInfo:
			return finegrained.KindOther, true
		}
		return finegrained.KindOther, false
	}
	// confusion[truth][inferred]
	confusion := make(map[finegrained.Kind]map[finegrained.Kind]int)
	for _, k := range kinds {
		confusion[k] = make(map[finegrained.Kind]int)
	}
	correct, total := 0, 0
	for comm, got := range res.Kinds {
		a := c.Topo.ASes[uint32(comm.ASN())]
		if a == nil || a.Plan == nil || a.Plan.ASN != uint32(comm.ASN()) {
			continue
		}
		d, ok := a.Plan.Lookup(comm.Value())
		if !ok {
			continue
		}
		want, ok := kindOf(d.Sub)
		if !ok {
			continue
		}
		confusion[want][got]++
		total++
		if got == want {
			correct++
		}
	}
	r.addf("%-14s %10s %13s %6s %11s", "truth \\ inferred", "location", "relationship", "rov", "other-info")
	for _, truth := range kinds {
		r.addf("%-14s %10d %13d %6d %11d", truth,
			confusion[truth][finegrained.KindLocation],
			confusion[truth][finegrained.KindRelationship],
			confusion[truth][finegrained.KindROV],
			confusion[truth][finegrained.KindOther])
	}
	acc := 0.0
	if total > 0 {
		acc = float64(correct) / float64(total)
	}
	r.addf("fine-grained accuracy=%.3f over %d information communities (chance over 4 kinds ~0.25)", acc, total)
	r.Metrics["accuracy"] = acc
	r.Metrics["scored"] = float64(total)
	return r
}

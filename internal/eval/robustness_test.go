package eval

import (
	"strings"
	"testing"

	"bgpintent/internal/corpus"
)

func TestFaultToleranceTiny(t *testing.T) {
	cfg := corpus.TinyConfig()
	r, err := FaultTolerance(cfg, []float64{0, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if !strings.Contains(out, "== faults:") || !strings.Contains(out, "clean corpus:") {
		t.Errorf("render = %q", out)
	}
	if !strings.Contains(out, "rate=0.010") || !strings.Contains(out, "salvaged-tuples=") {
		t.Errorf("missing corruption series: %q", out)
	}
	if acc := r.Metrics["accuracy_clean"]; acc < 0.9 {
		t.Errorf("clean accuracy = %v, want >= 0.9", acc)
	}
	// The issue's acceptance bar: >= 95% of clean tuples survive a 1%
	// record-corruption rate.
	if salvage := r.Metrics["salvage_at_1pct"]; salvage < 0.95 {
		t.Errorf("salvage at 1%% corruption = %v, want >= 0.95", salvage)
	}
	if r.Metrics["max_rate"] != 0.01 {
		t.Errorf("max_rate = %v", r.Metrics["max_rate"])
	}
}

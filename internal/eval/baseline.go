package eval

import (
	"sort"

	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
)

// BaselineCluster groups observed communities by the ground-truth regex
// that covers them — the "baseline clusters" of §5.1 whose
// on-path:off-path (Fig. 6) and customer:peer (Fig. 7) ratios motivate
// the method.
type BaselineCluster struct {
	ASN     uint32
	Entry   *dict.Entry
	Members []core.CommunityStats

	PureOnPath  bool
	PureOffPath bool
	// Ratio is the mean of member on:off ratios (meaningful for mixed
	// clusters).
	Ratio float64
}

// Category returns the cluster's ground-truth label.
func (b *BaselineCluster) Category() dict.Category { return b.Entry.Category() }

// Mixed reports whether the cluster has both on- and off-path counts.
func (b *BaselineCluster) Mixed() bool { return !b.PureOnPath && !b.PureOffPath }

// BaselineClusters assigns each observed community covered by the
// dictionary to its first matching entry and computes cluster ratios.
func BaselineClusters(os *core.ObservationSet, d *dict.Dictionary) []*BaselineCluster {
	byEntry := make(map[*dict.Entry]*BaselineCluster)
	comms := make([]bgp.Community, 0, len(os.Stats))
	for comm := range os.Stats {
		comms = append(comms, comm)
	}
	sort.Slice(comms, func(i, j int) bool { return comms[i] < comms[j] })
	for _, comm := range comms {
		e, ok := d.Lookup(uint32(comm.ASN()), comm.Value())
		if !ok {
			continue
		}
		cl := byEntry[e]
		if cl == nil {
			cl = &BaselineCluster{ASN: uint32(comm.ASN()), Entry: e}
			byEntry[e] = cl
		}
		cl.Members = append(cl.Members, *os.Stats[comm])
	}
	out := make([]*BaselineCluster, 0, len(byEntry))
	for _, cl := range byEntry {
		onTotal, offTotal, ratioSum := 0, 0, 0.0
		for _, m := range cl.Members {
			onTotal += m.OnPath
			offTotal += m.OffPath
			ratioSum += m.Ratio()
		}
		cl.PureOnPath = offTotal == 0
		cl.PureOffPath = onTotal == 0
		cl.Ratio = ratioSum / float64(len(cl.Members))
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		return out[i].Members[0].Comm < out[j].Members[0].Comm
	})
	return out
}

// ThresholdPoint is one point of a threshold accuracy scan.
type ThresholdPoint struct {
	Threshold float64
	Accuracy  float64
}

// ScanRatioThreshold evaluates, over the mixed baseline clusters, the
// community-weighted accuracy of "ratio >= t -> information" for each
// threshold, reproducing the Fig. 6 observation that ~160:1 separates
// the categories.
func ScanRatioThreshold(clusters []*BaselineCluster, thresholds []float64) []ThresholdPoint {
	out := make([]ThresholdPoint, 0, len(thresholds))
	for _, t := range thresholds {
		correct, total := 0, 0
		for _, cl := range clusters {
			if !cl.Mixed() {
				continue
			}
			inferred := dict.CatAction
			if cl.Ratio >= t {
				inferred = dict.CatInformation
			}
			total += len(cl.Members)
			if inferred == cl.Category() {
				correct += len(cl.Members)
			}
		}
		acc := 0.0
		if total > 0 {
			acc = float64(correct) / float64(total)
		}
		out = append(out, ThresholdPoint{Threshold: t, Accuracy: acc})
	}
	return out
}

// CustPeerCluster carries a baseline cluster's mean customer:peer ratio
// (Fig. 7).
type CustPeerCluster struct {
	Cluster *BaselineCluster
	Ratio   float64
	Members int // members with any customer/peer evidence
}

// CustPeerClusters aggregates per-community customer:peer statistics to
// baseline clusters (mean of member ratios, over members with evidence).
func CustPeerClusters(clusters []*BaselineCluster, stats map[bgp.Community]*core.CustPeerStats) []CustPeerCluster {
	var out []CustPeerCluster
	for _, cl := range clusters {
		sum, n := 0.0, 0
		for _, m := range cl.Members {
			if st, ok := stats[m.Comm]; ok {
				sum += st.Ratio()
				n++
			}
		}
		if n == 0 {
			continue
		}
		out = append(out, CustPeerCluster{Cluster: cl, Ratio: sum / float64(n), Members: n})
	}
	return out
}

// ScanCustPeerThreshold evaluates "ratio < t -> information" over
// clusters with evidence, community-weighted, reproducing the Fig. 7
// finding that the best threshold (~5:1) only reaches ~80% accuracy.
func ScanCustPeerThreshold(clusters []CustPeerCluster, thresholds []float64) []ThresholdPoint {
	out := make([]ThresholdPoint, 0, len(thresholds))
	for _, t := range thresholds {
		correct, total := 0, 0
		for _, cp := range clusters {
			inferred := dict.CatAction
			if cp.Ratio < t {
				inferred = dict.CatInformation
			}
			total += cp.Members
			if inferred == cp.Cluster.Category() {
				correct += cp.Members
			}
		}
		acc := 0.0
		if total > 0 {
			acc = float64(correct) / float64(total)
		}
		out = append(out, ThresholdPoint{Threshold: t, Accuracy: acc})
	}
	return out
}

// Package eval regenerates the paper's evaluation: every figure and
// table in §5-§6, plus the ablations DESIGN.md calls out. Each
// experiment returns a Report with rendered text rows (the analogue of
// the paper's plots) and machine-readable key metrics.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"bgpintent/internal/core"
	"bgpintent/internal/dict"
)

// Confusion is a two-class confusion matrix against ground truth.
type Confusion struct {
	InfoAsInfo     int
	InfoAsAction   int
	ActionAsAction int
	ActionAsInfo   int
}

// Total returns the number of scored communities.
func (c Confusion) Total() int {
	return c.InfoAsInfo + c.InfoAsAction + c.ActionAsAction + c.ActionAsInfo
}

// Accuracy returns the fraction classified correctly (0 when nothing was
// scored).
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.InfoAsInfo+c.ActionAsAction) / float64(t)
}

// Add accumulates one (truth, inferred) pair.
func (c *Confusion) Add(truth, inferred dict.Category) {
	switch {
	case truth == dict.CatInformation && inferred == dict.CatInformation:
		c.InfoAsInfo++
	case truth == dict.CatInformation && inferred == dict.CatAction:
		c.InfoAsAction++
	case truth == dict.CatAction && inferred == dict.CatAction:
		c.ActionAsAction++
	case truth == dict.CatAction && inferred == dict.CatInformation:
		c.ActionAsInfo++
	}
}

// AgainstDictionary scores inferences against a ground-truth regex
// dictionary, over the communities the method classified and the
// dictionary covers — the paper's validation population (6,259
// communities, 96.5% accuracy).
func AgainstDictionary(inf *core.Inferences, d *dict.Dictionary) Confusion {
	var c Confusion
	for comm, got := range inf.Labels {
		truth := d.Category(uint32(comm.ASN()), comm.Value())
		if truth == dict.CatUnknown {
			continue
		}
		c.Add(truth, got)
	}
	return c
}

// CDF collects values and answers quantile/fraction queries, standing in
// for the paper's CDF plots.
type CDF struct {
	values []float64
	sorted bool
}

// Add inserts one value.
func (c *CDF) Add(v float64) {
	c.values = append(c.values, v)
	c.sorted = false
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.values) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.values)
		c.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample, or NaN
// for an empty sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.values) == 0 {
		return math.NaN()
	}
	c.sort()
	idx := int(q * float64(len(c.values)-1))
	return c.values[idx]
}

// FractionBelow returns P(X < x).
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.values) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.values, x)
	return float64(i) / float64(len(c.values))
}

// Points samples the CDF at n evenly spaced sample indexes, returning
// (value, cumulative fraction) pairs — the series a plot would draw.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.values) == 0 || n <= 0 {
		return nil
	}
	c.sort()
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.values) - 1) / max(n-1, 1)
		out = append(out, [2]float64{c.values[idx], float64(idx+1) / float64(len(c.values))})
	}
	return out
}

// Report is one regenerated table or figure.
type Report struct {
	ID         string
	Title      string
	PaperClaim string
	Lines      []string
	Metrics    map[string]float64
}

func newReport(id, title, claim string) *Report {
	return &Report{ID: id, Title: title, PaperClaim: claim, Metrics: make(map[string]float64)}
}

func (r *Report) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Render produces the text block for the experiment.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package eval

import (
	"bytes"
	"fmt"

	"bgpintent/internal/core"
	"bgpintent/internal/corpus"
	"bgpintent/internal/ingest"
	"bgpintent/internal/ingest/faults"
	"bgpintent/internal/mrt"
)

// FaultTolerance measures how gracefully the pipeline degrades on dirty
// input: one day of the synthetic corpus is serialized to MRT, corrupted
// at increasing per-record fault rates with ingest/faults (bit flips,
// truncation, oversized lengths, garbage bytes, duplicates), and
// re-loaded through the lenient ingestion layer. The report tracks the
// fraction of clean tuples salvaged and the classification accuracy at
// each corruption rate.
func FaultTolerance(cfg corpus.Config, rates []float64) (*Report, error) {
	r := newReport("faults", "Salvage and accuracy vs injected MRT corruption rate",
		"(robustness harness; no paper counterpart — real RouteViews/RIS archives carry truncated and corrupt records)")
	if len(rates) == 0 {
		rates = []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10}
	}
	cfg.Days = 0 // the day is simulated and serialized below
	c, err := corpus.Build(cfg)
	if err != nil {
		return nil, err
	}
	day := c.Sim.RunDay(0)

	// Serialize one RIB snapshot per collector, the files a collector
	// archive would ship.
	clean := make([][]byte, c.Sim.Collectors())
	for col := range clean {
		var buf bytes.Buffer
		if err := c.Sim.WriteRIB(&buf, 1714521600, col, day); err != nil {
			return nil, err
		}
		clean[col] = buf.Bytes()
	}

	load := func(blobs [][]byte) (*core.TupleStore, *ingest.Stats, error) {
		store := core.NewTupleStore()
		st := &ingest.Stats{}
		// The budget is disabled: the whole point is to measure
		// degradation beyond any reasonable budget.
		opts := ingest.Options{MaxErrorRate: -1}
		for i, blob := range blobs {
			name := fmt.Sprintf("rc%02d.rib.mrt", i)
			err := ingest.ScanRIBsFrom(bytes.NewReader(blob), name, opts, st, func(v *mrt.RIBView) error {
				store.AddView(v.Peer.ASN, v.Entry.Attrs.ASPath.Flatten(), v.Entry.Attrs.Communities)
				return nil
			})
			if err != nil {
				return nil, st, err
			}
		}
		store.AnnotateOrgs(c.Orgs)
		return store, st, nil
	}

	cleanStore, _, err := load(clean)
	if err != nil {
		return nil, err
	}
	cleanTuples := cleanStore.Len()
	r.addf("clean corpus: %d tuples over %d collectors", cleanTuples, len(clean))

	for i, rate := range rates {
		dirty := make([][]byte, len(clean))
		var injected faults.Result
		for col, blob := range clean {
			var buf bytes.Buffer
			res, err := faults.Corrupt(&buf, bytes.NewReader(blob), faults.Config{
				Seed: cfg.Seed ^ int64(i)<<20 ^ int64(col)<<8,
				Rate: rate,
			})
			if err != nil {
				return nil, err
			}
			injected.Records += res.Records
			injected.Faults += res.Faults
			dirty[col] = buf.Bytes()
		}
		store, st, err := load(dirty)
		if err != nil {
			return nil, err
		}
		inf := core.Classify(store, c.Options())
		conf := AgainstDictionary(inf, c.Dict)
		salvage := 1.0
		if cleanTuples > 0 {
			salvage = float64(store.Len()) / float64(cleanTuples)
		}
		t := &st.Total
		r.addf("rate=%.3f injected=%-4d salvaged-tuples=%5.1f%% accuracy=%.3f classified=%-5d skipped=%-4d resyncs=%-4d truncated=%d",
			rate, injected.Faults, 100*salvage, conf.Accuracy(), len(inf.Labels), t.Skipped, t.Resyncs, t.Truncated)
		switch rate {
		case 0:
			r.Metrics["accuracy_clean"] = conf.Accuracy()
		case 0.01:
			r.Metrics["accuracy_at_1pct"] = conf.Accuracy()
			r.Metrics["salvage_at_1pct"] = salvage
		}
		if i == len(rates)-1 {
			r.Metrics["accuracy_at_max"] = conf.Accuracy()
			r.Metrics["salvage_at_max"] = salvage
			r.Metrics["max_rate"] = rate
		}
	}
	return r, nil
}

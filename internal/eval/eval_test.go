package eval

import (
	"math"
	"strings"
	"testing"

	"bgpintent/internal/core"
	"bgpintent/internal/corpus"
	"bgpintent/internal/dict"
)

func tinyCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Build(corpus.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Add(dict.CatInformation, dict.CatInformation)
	c.Add(dict.CatInformation, dict.CatAction)
	c.Add(dict.CatAction, dict.CatAction)
	c.Add(dict.CatAction, dict.CatAction)
	c.Add(dict.CatUnknown, dict.CatAction) // ignored
	if c.Total() != 4 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); got != 0.75 {
		t.Errorf("Accuracy = %v", got)
	}
	var empty Confusion
	if empty.Accuracy() != 0 {
		t.Error("empty accuracy != 0")
	}
}

func TestCDF(t *testing.T) {
	cdf := &CDF{}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		cdf.Add(v)
	}
	if got := cdf.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := cdf.Quantile(1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := cdf.Quantile(0.5); got != 3 {
		t.Errorf("q50 = %v", got)
	}
	if got := cdf.FractionBelow(3); got != 0.4 {
		t.Errorf("FractionBelow(3) = %v", got)
	}
	if got := cdf.FractionBelow(100); got != 1 {
		t.Errorf("FractionBelow(100) = %v", got)
	}
	pts := cdf.Points(5)
	if len(pts) != 5 || pts[0][0] != 1 || pts[4][0] != 5 {
		t.Errorf("Points = %v", pts)
	}
	var empty CDF
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestLogGrid(t *testing.T) {
	g := logGrid(0.01, 100000, 41)
	if len(g) != 41 {
		t.Fatalf("len = %d", len(g))
	}
	if math.Abs(g[0]-0.01) > 1e-9 || math.Abs(g[40]-100000) > 1e-3 {
		t.Errorf("grid ends = %v %v", g[0], g[40])
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatal("grid not increasing")
		}
	}
}

func TestHeadlineTiny(t *testing.T) {
	c := tinyCorpus(t)
	r := Headline(c)
	if r.Metrics["accuracy"] < 0.85 {
		t.Errorf("accuracy = %.3f, want >= 0.85", r.Metrics["accuracy"])
	}
	if r.Metrics["information"] <= r.Metrics["action"] {
		t.Errorf("info (%v) should outnumber action (%v), as in the paper",
			r.Metrics["information"], r.Metrics["action"])
	}
	if r.Metrics["excluded"] == 0 {
		t.Error("no exclusions; private/IXP communities missing from corpus")
	}
	if !strings.Contains(r.Render(), "accuracy=") {
		t.Error("render missing accuracy line")
	}
}

func TestFig4Tiny(t *testing.T) {
	c := tinyCorpus(t)
	r := Fig4(c)
	if r.Metrics["ases"] < 5 {
		t.Errorf("only %v ASes with both categories", r.Metrics["ases"])
	}
	out := r.Render()
	if !strings.Contains(out, "dict-blocks:") || !strings.Contains(out, "observed:") {
		t.Error("render missing expected rows")
	}
}

func TestFig6Tiny(t *testing.T) {
	c := tinyCorpus(t)
	r := Fig6(c)
	// The ratio threshold must separate categories well on baseline
	// clusters (paper: ~98% at the optimum).
	if r.Metrics["best_accuracy"] < 0.9 {
		t.Errorf("best accuracy = %.3f, want >= 0.9", r.Metrics["best_accuracy"])
	}
	if r.Metrics["mixed_info"] == 0 || r.Metrics["mixed_action"] == 0 {
		t.Errorf("mixed clusters: info=%v action=%v; need both",
			r.Metrics["mixed_info"], r.Metrics["mixed_action"])
	}
	// 160:1 should perform close to the optimum.
	if r.Metrics["best_accuracy"]-r.Metrics["accuracy_at_160"] > 0.08 {
		t.Errorf("accuracy at 160 (%.3f) far below best (%.3f)",
			r.Metrics["accuracy_at_160"], r.Metrics["best_accuracy"])
	}
}

func TestFig7Tiny(t *testing.T) {
	c := tinyCorpus(t)
	r6 := Fig6(c)
	r7 := Fig7(c)
	// Customer:peer must be a weaker separator than on:off-path.
	if r7.Metrics["best_accuracy"] >= r6.Metrics["best_accuracy"] {
		t.Errorf("customer:peer accuracy (%.3f) should trail on:off-path accuracy (%.3f)",
			r7.Metrics["best_accuracy"], r6.Metrics["best_accuracy"])
	}
	if r7.Metrics["best_accuracy"] < 0.5 {
		t.Errorf("customer:peer accuracy = %.3f; degenerate", r7.Metrics["best_accuracy"])
	}
}

func TestFig9Tiny(t *testing.T) {
	c := tinyCorpus(t)
	r := Fig9(c, nil)
	noClust := r.Metrics["accuracy_no_clustering"]
	at140 := r.Metrics["accuracy_at_140"]
	if at140 <= noClust {
		t.Errorf("clustering (%.3f) must beat no clustering (%.3f)", at140, noClust)
	}
	if at140 < 0.85 {
		t.Errorf("accuracy at gap 140 = %.3f", at140)
	}
	// The plateau contains the paper's operating point: gap 140 must be
	// within a whisker of the best gap found.
	if best := r.Metrics["best_accuracy"]; best-at140 > 0.02 {
		t.Errorf("gap 140 accuracy %.3f far below best %.3f", at140, best)
	}
}

func TestFig10Tiny(t *testing.T) {
	c := tinyCorpus(t)
	r := Fig10(c, []int{1, 3, 8, 20, 40}, 10, 7)
	if r.Metrics["accuracy_p50_at_20"] < 0.8 {
		t.Errorf("median accuracy at 20 VPs = %.3f", r.Metrics["accuracy_p50_at_20"])
	}
	if cov := r.Metrics["coverage_p50_at_20"]; cov <= 0.3 || cov > 1.0 {
		t.Errorf("coverage at 20 VPs = %.3f", cov)
	}
}

func TestDaysSweepTiny(t *testing.T) {
	r, err := DaysSweep(corpus.TinyConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["accuracy_final"] < 0.85 {
		t.Errorf("final accuracy = %.3f", r.Metrics["accuracy_final"])
	}
	if len(r.Lines) != 3 {
		t.Errorf("lines = %d, want 3 (one per day)", len(r.Lines))
	}
}

func TestMonthsSweepTiny(t *testing.T) {
	// Five months: enough epochs for growth to dominate day-to-day noise
	// at the tiny scale.
	r, err := MonthsSweep(corpus.TinyConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["min_accuracy"] < 0.80 {
		t.Errorf("min accuracy = %.3f", r.Metrics["min_accuracy"])
	}
	if r.Metrics["growth"] <= 0 {
		t.Errorf("classified communities shrank over months: %v", r.Metrics["growth"])
	}
	if r.Metrics["info_growth"] <= 0 {
		t.Errorf("information communities did not grow: %v", r.Metrics["info_growth"])
	}
}

func TestTable1Tiny(t *testing.T) {
	c := tinyCorpus(t)
	r := Table1(c)
	if r.Metrics["precision_after"] <= r.Metrics["precision_before"] {
		t.Errorf("precision did not improve: %.3f -> %.3f",
			r.Metrics["precision_before"], r.Metrics["precision_after"])
	}
	if r.Metrics["te_after"] > r.Metrics["te_before"]/2 {
		t.Errorf("TE false positives barely reduced: %v -> %v",
			r.Metrics["te_before"], r.Metrics["te_after"])
	}
}

func TestAblationsTiny(t *testing.T) {
	c := tinyCorpus(t)
	r := Ablations(c)
	base := r.Metrics["accuracy_baseline"]
	if base < 0.85 {
		t.Errorf("baseline accuracy = %.3f", base)
	}
	// Dropping exclusions misclassifies route-server communities, so
	// truth-wide accuracy must not improve.
	if r.Metrics["accuracy_no_exclusions"] > base+1e-9 {
		t.Errorf("no-exclusions (%.3f) beat baseline (%.3f)",
			r.Metrics["accuracy_no_exclusions"], base)
	}
}

func TestBaselineClustersCoverObservedDictComms(t *testing.T) {
	c := tinyCorpus(t)
	os := core.Observe(c.Store, c.Options())
	clusters := BaselineClusters(os, c.Dict)
	if len(clusters) == 0 {
		t.Fatal("no baseline clusters")
	}
	seen := 0
	for _, cl := range clusters {
		seen += len(cl.Members)
		for _, m := range cl.Members {
			if got := c.Dict.Category(cl.ASN, m.Comm.Value()); got != cl.Category() {
				t.Fatalf("member %v in cluster of category %v has dict category %v",
					m.Comm, cl.Category(), got)
			}
		}
	}
	// Every observed dictionary-covered community is in exactly one
	// cluster.
	want := 0
	for comm := range os.Stats {
		if c.Dict.Category(uint32(comm.ASN()), comm.Value()) != dict.CatUnknown {
			want++
		}
	}
	if seen != want {
		t.Errorf("clusters cover %d communities, dictionary covers %d observed", seen, want)
	}
}

func TestSeedSweepTiny(t *testing.T) {
	cfg := corpus.TinyConfig()
	cfg.Days = 1
	r, err := SeedSweep(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["min_accuracy"] < 0.9 {
		t.Errorf("seed-robustness floor = %.3f; calibration overfits the default seed",
			r.Metrics["min_accuracy"])
	}
}

func TestFineGrainedTiny(t *testing.T) {
	c := tinyCorpus(t)
	r := FineGrained(c)
	if r.Metrics["scored"] < 50 {
		t.Fatalf("scored = %v", r.Metrics["scored"])
	}
	if r.Metrics["accuracy"] < 0.5 {
		t.Errorf("fine-grained accuracy = %.3f", r.Metrics["accuracy"])
	}
	if !strings.Contains(r.Render(), "truth \\ inferred") {
		t.Error("render missing confusion matrix")
	}
}

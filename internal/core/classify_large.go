// Large-community classification: the RFC 8092 sibling of the §5.2
// pipeline. Large communities carry an explicit (α, fn, value) triple,
// so the clustering groups by (GlobalAdmin, LocalData1) — the AS and
// its function selector — and applies the gap rule over the 32-bit
// LocalData2 value space. The evidence model is unchanged: on-path
// means the global administrator (or an org sibling) appears in the AS
// path, and the purity/ratio decision rule is shared with the classic
// classifier, so a large community α:fn:β mirroring a classic α:β sees
// the same verdict when its observations match.
package core

import (
	"cmp"
	"slices"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
)

// LargeStats holds a large community's unique-path observation counts.
// It is the RFC 8092 counterpart of CommunityStats (a separate type:
// CommunityStats is wired into the gob'd v1 snapshot body and must not
// change shape).
type LargeStats struct {
	Comm    bgp.LargeCommunity
	OnPath  int // unique AS paths containing the global admin (or a sibling)
	OffPath int // unique AS paths not containing it
}

// Ratio is the on-path:off-path ratio with the zero denominator clamped
// to one; see CommunityStats.Ratio.
func (ls LargeStats) Ratio() float64 {
	off := ls.OffPath
	if off == 0 {
		off = 1
	}
	return float64(ls.OnPath) / float64(off)
}

// LargeCluster is a contiguous range of one (α, fn) group's values with
// its inferred label. Lo/Hi bound LocalData2; all members share
// Alpha (GlobalAdmin) and Fn (LocalData1).
type LargeCluster struct {
	Alpha   uint32
	Fn      uint32
	Lo, Hi  uint32
	Members []LargeStats

	PureOnPath  bool
	PureOffPath bool
	Ratio       float64

	Label dict.Category
}

// largeLookupEntry is one observed large community in the query index.
type largeLookupEntry struct {
	stats   LargeStats
	cluster int32 // index into LargeClusters; -1 for excluded
}

// LargeLookup is the full verdict for one large community, mirroring
// Lookup.
type LargeLookup struct {
	Comm     bgp.LargeCommunity
	Observed bool
	Category dict.Category
	Stats    LargeStats
	Reason   ExcludeReason
	Cluster  *LargeCluster // nil when excluded or unobserved
}

// LargeClusterSummary is the flat, pointer-free description of one
// large cluster; see ClusterSummary.
type LargeClusterSummary struct {
	Alpha  uint32
	Fn     uint32
	Lo, Hi uint32
	Label  dict.Category
	Size   int
	// OnPath/OffPath are the members' unique-path counts, summed.
	OnPath, OffPath int64
	PureOnPath      bool
	PureOffPath     bool
	Ratio           float64
}

// LargeVerdict is the flat counterpart of LargeLookup, the
// allocation-free serving primitive for large-community queries.
type LargeVerdict struct {
	Comm     bgp.LargeCommunity
	Observed bool
	Category dict.Category
	Stats    LargeStats
	Reason   ExcludeReason
	// HasCluster reports whether Cluster is meaningful.
	HasCluster bool
	Cluster    LargeClusterSummary
}

// summarizeLarge aggregates one heap large cluster into its summary.
func summarizeLarge(cl *LargeCluster) LargeClusterSummary {
	s := LargeClusterSummary{
		Alpha: cl.Alpha, Fn: cl.Fn, Lo: cl.Lo, Hi: cl.Hi, Label: cl.Label,
		Size:       len(cl.Members),
		PureOnPath: cl.PureOnPath, PureOffPath: cl.PureOffPath,
		Ratio: cl.Ratio,
	}
	for i := range cl.Members {
		s.OnPath += int64(cl.Members[i].OnPath)
		s.OffPath += int64(cl.Members[i].OffPath)
	}
	return s
}

// CategoryLarge returns the inferred label of a large community
// (CatUnknown when excluded or unobserved).
func (inf *Inferences) CategoryLarge(lc bgp.LargeCommunity) dict.Category {
	return inf.LargeLabels[lc]
}

// LookupLarge explains a large community's verdict; see Lookup. The
// returned Cluster aliases the Inferences and must not be mutated.
func (inf *Inferences) LookupLarge(lc bgp.LargeCommunity) LargeLookup {
	e, ok := inf.largeIndex[lc]
	if !ok {
		return LargeLookup{Comm: lc, Reason: ExcludeUnobserved}
	}
	l := LargeLookup{Comm: lc, Observed: true, Stats: e.stats}
	if e.cluster >= 0 {
		l.Cluster = &inf.LargeClusters[e.cluster]
		l.Category = l.Cluster.Label
	} else {
		l.Reason = inf.LargeExcluded[lc]
	}
	return l
}

// VerdictLarge answers one large-community query without allocating.
func (inf *Inferences) VerdictLarge(lc bgp.LargeCommunity) LargeVerdict {
	e, ok := inf.largeIndex[lc]
	if !ok {
		return LargeVerdict{Comm: lc, Reason: ExcludeUnobserved}
	}
	v := LargeVerdict{Comm: lc, Observed: true, Stats: e.stats}
	if e.cluster >= 0 {
		v.HasCluster = true
		v.Cluster = summarizeLarge(&inf.LargeClusters[e.cluster])
		v.Category = v.Cluster.Label
	} else {
		v.Reason = inf.LargeExcluded[lc]
	}
	return v
}

// LargeObserved returns how many large communities the index covers.
func (inf *Inferences) LargeObserved() int { return len(inf.largeIndex) }

// LargeCounts returns how many large communities were inferred action
// and information.
func (inf *Inferences) LargeCounts() (action, info int) {
	for _, cat := range inf.LargeLabels {
		switch cat {
		case dict.CatAction:
			action++
		case dict.CatInformation:
			info++
		}
	}
	return action, info
}

// LargeClusterCount returns the number of inferred large clusters.
func (inf *Inferences) LargeClusterCount() int { return len(inf.LargeClusters) }

// LargeClusterSummaryAt summarizes the i-th large cluster.
func (inf *Inferences) LargeClusterSummaryAt(i int) LargeClusterSummary {
	return summarizeLarge(&inf.LargeClusters[i])
}

// EachLargeLabeled visits every classified large community in map
// order.
func (inf *Inferences) EachLargeLabeled(fn func(lc bgp.LargeCommunity, cat dict.Category) bool) {
	for lc, cat := range inf.LargeLabels {
		if !fn(lc, cat) {
			return
		}
	}
}

// buildLargeIndex (re)derives the large Lookup index from LargeClusters
// and the excluded large communities' stats.
func (inf *Inferences) buildLargeIndex(excludedStats map[bgp.LargeCommunity]LargeStats) {
	if len(inf.LargeClusters) == 0 && len(inf.LargeExcluded) == 0 {
		return
	}
	inf.largeIndex = make(map[bgp.LargeCommunity]largeLookupEntry,
		len(inf.LargeLabels)+len(inf.LargeExcluded))
	for i := range inf.LargeClusters {
		for _, m := range inf.LargeClusters[i].Members {
			inf.largeIndex[m.Comm] = largeLookupEntry{stats: m, cluster: int32(i)}
		}
	}
	for lc := range inf.LargeExcluded {
		st := excludedStats[lc]
		st.Comm = lc
		inf.largeIndex[lc] = largeLookupEntry{stats: st, cluster: -1}
	}
}

// hasLargeTuples reports (in O(1)) whether any tuple in the store
// carries large communities, so classic-only loads skip the large
// observation pass entirely.
func (ts *TupleStore) hasLargeTuples() bool {
	if ts.shared != nil {
		return ts.shared.larges.table.Load() != nil
	}
	return len(ts.largeArena) > 0
}

// largePair is one (large community, path ID) observation; the large
// triple does not pack into a uint64, so the large index sorts structs
// instead of packed integers. Large volume is a fraction of classic
// volume in every corpus we load, so the extra comparator cost is
// negligible.
type largePair struct {
	lc  bgp.LargeCommunity
	pid int32
}

func compareLargePair(a, b largePair) int {
	if c := a.lc.Compare(b.lc); c != 0 {
		return c
	}
	return cmp.Compare(a.pid, b.pid)
}

// observeLarges computes per-large-community on/off-path statistics
// over unique AS paths into os.LargeStats, honoring the VP filter and
// sibling awareness. Deterministic for every worker count: workers
// collect (large, path) pairs over disjoint tuple ranges; the merged
// pair set is order-independent after the global sort.
func observeLarges(ts *TupleStore, opts Options, os *ObservationSet, workers int, done <-chan struct{}) {
	tuples := ts.Tuples()
	parts := make([][]largePair, workers)
	parallelRanges(workers, len(tuples), func(w, lo, hi int) {
		var pairs []largePair
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelCheckStride == 0 && chClosed(done) {
				break
			}
			t := &tuples[i]
			larges := ts.TupleLarges(t)
			if len(larges) == 0 {
				continue
			}
			if opts.VPFilter != nil && !anyVP(ts.TupleVPs(t), opts.VPFilter) {
				continue
			}
			for _, lc := range larges {
				pairs = append(pairs, largePair{lc: lc, pid: t.PathID})
			}
		}
		parts[w] = pairs
	})
	if chClosed(done) {
		return
	}
	var all []largePair
	for _, p := range parts {
		all = append(all, p...)
	}
	slices.SortFunc(all, compareLargePair)
	all = slices.Compact(all)

	os.LargeStats = make(map[bgp.LargeCommunity]*LargeStats)
	for i := 0; i < len(all); {
		if chClosed(done) {
			return
		}
		lc := all[i].lc
		alpha := lc.GlobalAdmin
		var alphaOrg string
		var haveOrg bool
		if opts.Orgs != nil {
			alphaOrg, haveOrg = opts.Orgs.Org(alpha)
		}
		st := &LargeStats{Comm: lc}
		for ; i < len(all) && all[i].lc == lc; i++ {
			info := ts.Path(all[i].pid)
			on := containsASN(info.ASNs, alpha)
			if !on && haveOrg {
				on = containsOrg(info.Orgs, alphaOrg)
			}
			if on {
				st.OnPath++
			} else {
				st.OffPath++
			}
		}
		os.LargeStats[lc] = st
	}
}

// excludedLarge is one large exclusion decision with the stats that
// back LookupLarge's explanation.
type excludedLarge struct {
	comm   bgp.LargeCommunity
	reason ExcludeReason
	stats  LargeStats
}

// largeGroupKey packs the (GlobalAdmin, LocalData1) clustering group
// into one sortable integer.
func largeGroupKey(lc bgp.LargeCommunity) uint64 {
	return uint64(lc.GlobalAdmin)<<32 | uint64(lc.LocalData1)
}

// clusterLarges groups the observed large communities by (α, fn) and
// applies the exclusion and gap rules, emitting unlabeled clusters in
// (α, fn, Lo) order plus the exclusion decisions. Sequential: large
// group counts are small relative to classic α counts.
func clusterLarges(os *ObservationSet, opts Options) (clusters []LargeCluster, excluded []excludedLarge) {
	byGroup := make(map[uint64][]uint32)
	for lc := range os.LargeStats {
		k := largeGroupKey(lc)
		byGroup[k] = append(byGroup[k], lc.LocalData2)
	}
	groups := make([]uint64, 0, len(byGroup))
	for k := range byGroup {
		groups = append(groups, k)
	}
	slices.Sort(groups)

	for _, k := range groups {
		alpha := uint32(k >> 32)
		fn := uint32(k)
		values := byGroup[k]
		slices.Sort(values)

		if !opts.DisableExclusions {
			var reason ExcludeReason
			switch {
			case bgp.IsPrivateASN32(alpha):
				reason = ExcludePrivateASN
			case !os.AlphaOnPath(alpha):
				reason = ExcludeNeverOnPath
			}
			if reason != 0 {
				for _, v := range values {
					lc := bgp.LargeCommunity{GlobalAdmin: alpha, LocalData1: fn, LocalData2: v}
					excluded = append(excluded, excludedLarge{lc, reason, *os.LargeStats[lc]})
				}
				continue
			}
		}

		for _, idx := range clusterIndexes(values, opts.MinGap) {
			members := make([]LargeStats, 0, idx[1]-idx[0])
			for _, v := range values[idx[0]:idx[1]] {
				members = append(members, *os.LargeStats[bgp.LargeCommunity{GlobalAdmin: alpha, LocalData1: fn, LocalData2: v}])
			}
			clusters = append(clusters, LargeCluster{
				Alpha:   alpha,
				Fn:      fn,
				Lo:      members[0].Comm.LocalData2,
				Hi:      members[len(members)-1].Comm.LocalData2,
				Members: members,
			})
		}
	}
	return clusters, excluded
}

// labelLargeCluster applies the shared §5.2 decision rule in place.
func labelLargeCluster(cl *LargeCluster, opts Options) {
	onTotal, offTotal := 0, 0
	ratioSum := 0.0
	for _, m := range cl.Members {
		onTotal += m.OnPath
		offTotal += m.OffPath
		ratioSum += m.Ratio()
	}
	cl.PureOnPath, cl.PureOffPath, cl.Ratio, cl.Label =
		decideLabel(onTotal, offTotal, ratioSum, len(cl.Members), opts)
}

package core

import "bgpintent/internal/bgp"

// FNV-1a constants, shared by the path-key hash (which routes paths to
// shards) and the community-list hash (which feeds tupleKey.commsHash).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashKey is FNV-1a over a binary key; it routes paths to shards.
func hashKey(b []byte) uint64 {
	h := fnvOffset64
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// fnvU32 folds one little-endian uint32 into an FNV-1a state.
func fnvU32(h uint64, v uint32) uint64 {
	h ^= uint64(v & 0xff)
	h *= fnvPrime64
	h ^= uint64(v >> 8 & 0xff)
	h *= fnvPrime64
	h ^= uint64(v >> 16 & 0xff)
	h *= fnvPrime64
	h ^= uint64(v >> 24)
	h *= fnvPrime64
	return h
}

// hashComms is FNV-1a over canonical communities.
func hashComms(comms bgp.Communities) uint64 {
	h := fnvOffset64
	for _, c := range comms {
		h = fnvU32(h, uint32(c))
	}
	return h
}

// hashLarges is FNV-1a over canonical large communities. The empty
// list hashes to 0, matching the zero intern ref, so classic-only
// tuples carry a zero large key either way.
func hashLarges(ls bgp.LargeCommunities) uint64 {
	if len(ls) == 0 {
		return 0
	}
	h := fnvOffset64
	for _, lc := range ls {
		h = fnvU32(h, lc.GlobalAdmin)
		h = fnvU32(h, lc.LocalData1)
		h = fnvU32(h, lc.LocalData2)
	}
	return h
}

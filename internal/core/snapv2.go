// Snapshot format version 2: a flat, pointer-free, 8-byte-aligned
// layout designed to be mmap-ed and queried in place. Where v1 gob-
// encodes the inference set (so a reader must deserialize the whole
// body into the heap), v2 writes the query indexes out verbatim as
// fixed-width little-endian record arrays behind a section table:
//
//	[9]byte  magic "BGPINTSNP"
//	byte     version = 2
//	[6]byte  zero padding
//	uint64   total file size (self-check against truncation)
//	uint32   section count
//	uint32   IEEE CRC-32 of the section table bytes
//	count ×  32-byte section entries:
//	           uint32 kind, uint32 pad,
//	           uint64 offset, uint64 length,
//	           uint32 IEEE CRC-32 of the section bytes, uint32 pad
//	...      sections, each starting on an 8-byte boundary
//
// Sections (offsets from file start, every record little-endian):
//
//	meta (1)     gob(SnapshotMeta) — provenance, readable alone
//	stats (2)    64 bytes: classifier options + precomputed counters,
//	             so Counts/ExcludedCount are O(1) on a mapped snapshot
//	clusters (3) n × 48-byte records sorted by (alpha, lo):
//	             u16 alpha, u16 lo, u16 hi, u8 label, u8 flags,
//	             u32 memberStart, u32 memberCount, f64 ratio,
//	             i64 onPathSum, i64 offPathSum, u64 reserved
//	members (4)  n × 24-byte CommunityStats records grouped by cluster:
//	             u32 comm, u32 pad, i64 onPath, i64 offPath
//	lookup (5)   n × 24-byte records sorted by community:
//	             u32 comm, i32 cluster (≥0: cluster index;
//	             <0: negated ExcludeReason), i64 onPath, i64 offPath
//
// Version 3 is the same container with four more sections carrying the
// RFC 8092 large-community inferences (the wider keys do not fit the
// v2 record shapes):
//
//	lstats (6)    32 bytes: i64 action, i64 information, i64 observed,
//	              u64 reserved
//	lclusters (7) n × 56-byte records sorted by (alpha, fn, lo):
//	              u32 alpha, u32 fn, u32 lo, u32 hi, u8 label, u8 flags,
//	              u16 pad, u32 memberStart, u32 memberCount, u32 pad,
//	              f64 ratio, i64 onPathSum, i64 offPathSum
//	lmembers (8)  n × 32-byte LargeStats records grouped by cluster:
//	              u32 ga, u32 ld1, u32 ld2, u32 pad, i64 onPath,
//	              i64 offPath
//	llookup (9)   n × 32-byte records sorted by (ga, ld1, ld2):
//	              u32 ga, u32 ld1, u32 ld2, i32 cluster (encoded as in
//	              lookup), i64 onPath, i64 offPath
//
// Classic-only inference sets are always written as v2 — byte-identical
// to a larges-unaware writer — and v2 files remain readable forever;
// the version bump exists so a v2-era reader fails loudly on a file
// whose large sections it would otherwise silently ignore.
//
// Opening a v2/v3 snapshot is O(sections): validate the header and
// table, decode the tiny meta/stats sections, and point slices at the
// record arrays. Lookups binary-search the lookup section directly
// against the mapped pages — no deserialization, no per-corpus heap,
// and cold start independent of corpus size. Section CRCs are verified
// by VerifySnapshotV2 (tools, fuzzing), not on open, to keep open O(1).
package core

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
)

// SnapshotVersionV2 is the format version byte of the mmap-able layout.
const SnapshotVersionV2 = 2

// SnapshotVersionV3 is v2 plus the large-community sections.
const SnapshotVersionV3 = 3

// v2/v3 section kinds.
const (
	secMeta     = 1
	secStats    = 2
	secClusters = 3
	secMembers  = 4
	secLookup   = 5
	// v3-only sections.
	secLargeStats    = 6
	secLargeClusters = 7
	secLargeMembers  = 8
	secLargeLookup   = 9
)

// v2/v3 fixed sizes.
const (
	v2HeaderLen     = 32
	v2SectionLen    = 32 // one section-table entry
	v2StatsLen      = 64
	v2ClusterRecLen = 48
	v2MemberRecLen  = 24
	v2LookupRecLen  = 24

	v3LargeStatsLen      = 32
	v3LargeClusterRecLen = 56
	v3LargeMemberRecLen  = 32
	v3LargeLookupRecLen  = 32

	// v2MaxSections bounds the section count a header may claim, so a
	// corrupt table cannot demand absurd allocations.
	v2MaxSections = 64
)

// stats-section flag bits.
const (
	v2FlagDisableExclusions = 1 << 0
	v2FlagPooledRatio       = 1 << 1
)

// cluster-record flag bits.
const (
	v2ClusterPureOnPath  = 1 << 0
	v2ClusterPureOffPath = 1 << 1
)

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// v2LookupEntry is the writer-side shape of one lookup record.
type v2LookupEntry struct {
	comm    uint32
	cluster int32
	on, off int64
}

// WriteSnapshotV2 serializes the inferences in the flat v2 layout.
// The output is deterministic: identical inferences produce identical
// bytes regardless of map iteration order. Errors (rather than
// silently dropping data) when the inferences carry large-community
// results, which the v2 record shapes cannot hold; use
// WriteSnapshotV3 or the auto-selecting WriteSnapshotFlat.
func WriteSnapshotV2(w io.Writer, inf *Inferences, meta SnapshotMeta) error {
	if hasLargeInferences(inf) {
		return fmt.Errorf("snapshot: inferences contain %d large clusters and %d large exclusions, which the v2 format cannot represent; write v3",
			len(inf.LargeClusters), len(inf.LargeExcluded))
	}
	return writeFlatSnapshot(w, inf, meta, SnapshotVersionV2)
}

// WriteSnapshotV3 serializes the inferences in the flat v3 layout
// (v2 plus the large-community sections, present even when empty).
func WriteSnapshotV3(w io.Writer, inf *Inferences, meta SnapshotMeta) error {
	return writeFlatSnapshot(w, inf, meta, SnapshotVersionV3)
}

// WriteSnapshotFlat writes the newest flat layout the inferences need:
// v2 for classic-only sets (byte-identical to a larges-unaware
// writer), v3 when large-community inferences are present.
func WriteSnapshotFlat(w io.Writer, inf *Inferences, meta SnapshotMeta) error {
	if hasLargeInferences(inf) {
		return writeFlatSnapshot(w, inf, meta, SnapshotVersionV3)
	}
	return writeFlatSnapshot(w, inf, meta, SnapshotVersionV2)
}

func writeFlatSnapshot(w io.Writer, inf *Inferences, meta SnapshotMeta, version byte) error {
	var metaBuf bytes.Buffer
	if err := gob.NewEncoder(&metaBuf).Encode(&meta); err != nil {
		return fmt.Errorf("snapshot: encode meta: %w", err)
	}

	// Clusters in canonical (alpha, lo, hi) order; the classifier
	// already emits them sorted, but the format guarantees it so mapped
	// readers can binary-search per-α cluster ranges.
	order := make([]int, len(inf.Clusters))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		ca, cb := &inf.Clusters[a], &inf.Clusters[b]
		if c := cmp.Compare(ca.Alpha, cb.Alpha); c != 0 {
			return c
		}
		if c := cmp.Compare(ca.Lo, cb.Lo); c != 0 {
			return c
		}
		return cmp.Compare(ca.Hi, cb.Hi)
	})

	clusterBuf := make([]byte, 0, len(order)*v2ClusterRecLen)
	var memberBuf []byte
	lookups := make([]v2LookupEntry, 0, len(inf.Labels)+len(inf.Excluded))
	var rec [v2ClusterRecLen]byte
	for newIdx, oi := range order {
		cl := &inf.Clusters[oi]
		memberStart := len(memberBuf) / v2MemberRecLen
		var onSum, offSum int64
		for i := range cl.Members {
			m := &cl.Members[i]
			var mr [v2MemberRecLen]byte
			binary.LittleEndian.PutUint32(mr[0:], uint32(m.Comm))
			binary.LittleEndian.PutUint64(mr[8:], uint64(int64(m.OnPath)))
			binary.LittleEndian.PutUint64(mr[16:], uint64(int64(m.OffPath)))
			memberBuf = append(memberBuf, mr[:]...)
			onSum += int64(m.OnPath)
			offSum += int64(m.OffPath)
			lookups = append(lookups, v2LookupEntry{
				comm: uint32(m.Comm), cluster: int32(newIdx),
				on: int64(m.OnPath), off: int64(m.OffPath),
			})
		}
		rec = [v2ClusterRecLen]byte{}
		binary.LittleEndian.PutUint16(rec[0:], cl.Alpha)
		binary.LittleEndian.PutUint16(rec[2:], cl.Lo)
		binary.LittleEndian.PutUint16(rec[4:], cl.Hi)
		rec[6] = byte(cl.Label)
		var flags byte
		if cl.PureOnPath {
			flags |= v2ClusterPureOnPath
		}
		if cl.PureOffPath {
			flags |= v2ClusterPureOffPath
		}
		rec[7] = flags
		binary.LittleEndian.PutUint32(rec[8:], uint32(memberStart))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(cl.Members)))
		binary.LittleEndian.PutUint64(rec[16:], math.Float64bits(cl.Ratio))
		binary.LittleEndian.PutUint64(rec[24:], uint64(onSum))
		binary.LittleEndian.PutUint64(rec[32:], uint64(offSum))
		clusterBuf = append(clusterBuf, rec[:]...)
	}

	for c, reason := range inf.Excluded {
		l := inf.Lookup(c)
		lookups = append(lookups, v2LookupEntry{
			comm: uint32(c), cluster: -int32(reason),
			on: int64(l.Stats.OnPath), off: int64(l.Stats.OffPath),
		})
	}
	slices.SortFunc(lookups, func(a, b v2LookupEntry) int {
		return cmp.Compare(a.comm, b.comm)
	})
	lookupBuf := make([]byte, 0, len(lookups)*v2LookupRecLen)
	for _, e := range lookups {
		var lr [v2LookupRecLen]byte
		binary.LittleEndian.PutUint32(lr[0:], e.comm)
		binary.LittleEndian.PutUint32(lr[4:], uint32(e.cluster))
		binary.LittleEndian.PutUint64(lr[8:], uint64(e.on))
		binary.LittleEndian.PutUint64(lr[16:], uint64(e.off))
		lookupBuf = append(lookupBuf, lr[:]...)
	}

	action, information := inf.Counts()
	var statsBuf [v2StatsLen]byte
	binary.LittleEndian.PutUint64(statsBuf[0:], uint64(int64(inf.Opts.MinGap)))
	binary.LittleEndian.PutUint64(statsBuf[8:], math.Float64bits(inf.Opts.RatioThreshold))
	var oflags uint64
	if inf.Opts.DisableExclusions {
		oflags |= v2FlagDisableExclusions
	}
	if inf.Opts.PooledRatio {
		oflags |= v2FlagPooledRatio
	}
	binary.LittleEndian.PutUint64(statsBuf[16:], oflags)
	binary.LittleEndian.PutUint64(statsBuf[24:], uint64(int64(action)))
	binary.LittleEndian.PutUint64(statsBuf[32:], uint64(int64(information)))
	binary.LittleEndian.PutUint64(statsBuf[40:], uint64(int64(len(lookups))))

	// Assemble the section table; every section starts 8-byte aligned.
	type section struct {
		kind uint32
		body []byte
	}
	sections := []section{
		{secMeta, metaBuf.Bytes()},
		{secStats, statsBuf[:]},
		{secClusters, clusterBuf},
		{secMembers, memberBuf},
		{secLookup, lookupBuf},
	}
	if version >= SnapshotVersionV3 {
		ls, lc, lm, ll := encodeLargeSections(inf)
		sections = append(sections,
			section{secLargeStats, ls},
			section{secLargeClusters, lc},
			section{secLargeMembers, lm},
			section{secLargeLookup, ll},
		)
	}
	tableLen := len(sections) * v2SectionLen
	off := v2HeaderLen + tableLen
	table := make([]byte, 0, tableLen)
	totalSize := off
	offsets := make([]int, len(sections))
	for i, s := range sections {
		totalSize = align8(totalSize)
		offsets[i] = totalSize
		totalSize += len(s.body)
		var ent [v2SectionLen]byte
		binary.LittleEndian.PutUint32(ent[0:], s.kind)
		binary.LittleEndian.PutUint64(ent[8:], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(ent[16:], uint64(len(s.body)))
		binary.LittleEndian.PutUint32(ent[24:], crc32.ChecksumIEEE(s.body))
		table = append(table, ent[:]...)
	}

	var hdr [v2HeaderLen]byte
	copy(hdr[:9], snapshotMagic[:9])
	hdr[9] = version
	binary.LittleEndian.PutUint64(hdr[16:], uint64(totalSize))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(sections)))
	binary.LittleEndian.PutUint32(hdr[28:], crc32.ChecksumIEEE(table))

	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(table); err != nil {
		return err
	}
	written := v2HeaderLen + tableLen
	var pad [8]byte
	for i, s := range sections {
		if n := offsets[i] - written; n > 0 {
			if _, err := w.Write(pad[:n]); err != nil {
				return err
			}
			written += n
		}
		if _, err := w.Write(s.body); err != nil {
			return err
		}
		written += len(s.body)
	}
	return nil
}

// v3LargeLookupEntry is the writer-side shape of one large lookup
// record.
type v3LargeLookupEntry struct {
	comm    bgp.LargeCommunity
	cluster int32
	on, off int64
}

// encodeLargeSections renders the four v3 large sections. Output is
// deterministic for identical inferences.
func encodeLargeSections(inf *Inferences) (statsSec, clusterSec, memberSec, lookupSec []byte) {
	order := make([]int, len(inf.LargeClusters))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		ca, cb := &inf.LargeClusters[a], &inf.LargeClusters[b]
		if c := cmp.Compare(ca.Alpha, cb.Alpha); c != 0 {
			return c
		}
		if c := cmp.Compare(ca.Fn, cb.Fn); c != 0 {
			return c
		}
		if c := cmp.Compare(ca.Lo, cb.Lo); c != 0 {
			return c
		}
		return cmp.Compare(ca.Hi, cb.Hi)
	})

	clusterSec = make([]byte, 0, len(order)*v3LargeClusterRecLen)
	lookups := make([]v3LargeLookupEntry, 0, len(inf.LargeLabels)+len(inf.LargeExcluded))
	for newIdx, oi := range order {
		cl := &inf.LargeClusters[oi]
		memberStart := len(memberSec) / v3LargeMemberRecLen
		var onSum, offSum int64
		for i := range cl.Members {
			m := &cl.Members[i]
			var mr [v3LargeMemberRecLen]byte
			binary.LittleEndian.PutUint32(mr[0:], m.Comm.GlobalAdmin)
			binary.LittleEndian.PutUint32(mr[4:], m.Comm.LocalData1)
			binary.LittleEndian.PutUint32(mr[8:], m.Comm.LocalData2)
			binary.LittleEndian.PutUint64(mr[16:], uint64(int64(m.OnPath)))
			binary.LittleEndian.PutUint64(mr[24:], uint64(int64(m.OffPath)))
			memberSec = append(memberSec, mr[:]...)
			onSum += int64(m.OnPath)
			offSum += int64(m.OffPath)
			lookups = append(lookups, v3LargeLookupEntry{
				comm: m.Comm, cluster: int32(newIdx),
				on: int64(m.OnPath), off: int64(m.OffPath),
			})
		}
		var rec [v3LargeClusterRecLen]byte
		binary.LittleEndian.PutUint32(rec[0:], cl.Alpha)
		binary.LittleEndian.PutUint32(rec[4:], cl.Fn)
		binary.LittleEndian.PutUint32(rec[8:], cl.Lo)
		binary.LittleEndian.PutUint32(rec[12:], cl.Hi)
		rec[16] = byte(cl.Label)
		var flags byte
		if cl.PureOnPath {
			flags |= v2ClusterPureOnPath
		}
		if cl.PureOffPath {
			flags |= v2ClusterPureOffPath
		}
		rec[17] = flags
		binary.LittleEndian.PutUint32(rec[20:], uint32(memberStart))
		binary.LittleEndian.PutUint32(rec[24:], uint32(len(cl.Members)))
		binary.LittleEndian.PutUint64(rec[32:], math.Float64bits(cl.Ratio))
		binary.LittleEndian.PutUint64(rec[40:], uint64(onSum))
		binary.LittleEndian.PutUint64(rec[48:], uint64(offSum))
		clusterSec = append(clusterSec, rec[:]...)
	}

	for lc, reason := range inf.LargeExcluded {
		l := inf.LookupLarge(lc)
		lookups = append(lookups, v3LargeLookupEntry{
			comm: lc, cluster: -int32(reason),
			on: int64(l.Stats.OnPath), off: int64(l.Stats.OffPath),
		})
	}
	slices.SortFunc(lookups, func(a, b v3LargeLookupEntry) int {
		return a.comm.Compare(b.comm)
	})
	lookupSec = make([]byte, 0, len(lookups)*v3LargeLookupRecLen)
	for _, e := range lookups {
		var lr [v3LargeLookupRecLen]byte
		binary.LittleEndian.PutUint32(lr[0:], e.comm.GlobalAdmin)
		binary.LittleEndian.PutUint32(lr[4:], e.comm.LocalData1)
		binary.LittleEndian.PutUint32(lr[8:], e.comm.LocalData2)
		binary.LittleEndian.PutUint32(lr[12:], uint32(e.cluster))
		binary.LittleEndian.PutUint64(lr[16:], uint64(e.on))
		binary.LittleEndian.PutUint64(lr[24:], uint64(e.off))
		lookupSec = append(lookupSec, lr[:]...)
	}

	action, information := inf.LargeCounts()
	statsSec = make([]byte, v3LargeStatsLen)
	binary.LittleEndian.PutUint64(statsSec[0:], uint64(int64(action)))
	binary.LittleEndian.PutUint64(statsSec[8:], uint64(int64(information)))
	binary.LittleEndian.PutUint64(statsSec[16:], uint64(int64(len(lookups))))
	return statsSec, clusterSec, memberSec, lookupSec
}

// snapV2 is a parsed view over a v2 or v3 snapshot's bytes — either an
// mmap-ed region or a heap buffer. It holds only slice views into data
// plus the decoded tiny sections; nothing per-record is materialized.
type snapV2 struct {
	data []byte
	meta SnapshotMeta

	// decoded stats section
	minGap            int
	ratioThreshold    float64
	disableExclusions bool
	pooledRatio       bool
	action            int
	information       int
	observed          int

	clusters []byte // whole clusters section; len % v2ClusterRecLen == 0
	members  []byte // whole members section; len % v2MemberRecLen == 0
	lookup   []byte // whole lookup section; len % v2LookupRecLen == 0

	// v3 large sections; nil on v2 files, in which case the large
	// accessors report an empty large inference set.
	largeAction      int
	largeInformation int
	largeObserved    int
	largeClusters    []byte
	largeMembers     []byte
	largeLookup      []byte
}

// parseSnapshotV2 validates the header and section table and builds
// the section views. The work is O(section count) plus decoding the
// small meta gob — independent of corpus size. Section payload CRCs
// are NOT verified here (see VerifySnapshotV2); record accessors are
// bounds-checked so a corrupt body yields wrong answers, not panics.
func parseSnapshotV2(data []byte) (*snapV2, error) {
	if len(data) < v2HeaderLen {
		return nil, fmt.Errorf("snapshot: short v2 header (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:9], snapshotMagic[:9]) {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:9])
	}
	version := data[9]
	if version != SnapshotVersionV2 && version != SnapshotVersionV3 {
		return nil, fmt.Errorf("snapshot: not a v2/v3 snapshot (version %d)", version)
	}
	if size := binary.LittleEndian.Uint64(data[16:]); size != uint64(len(data)) {
		return nil, fmt.Errorf("snapshot: file size %d does not match header %d (truncated?)",
			len(data), size)
	}
	nsec := int(binary.LittleEndian.Uint32(data[24:]))
	if nsec <= 0 || nsec > v2MaxSections {
		return nil, fmt.Errorf("snapshot: implausible section count %d", nsec)
	}
	tableEnd := v2HeaderLen + nsec*v2SectionLen
	if tableEnd > len(data) {
		return nil, fmt.Errorf("snapshot: section table extends past file end")
	}
	table := data[v2HeaderLen:tableEnd]
	if got, want := crc32.ChecksumIEEE(table), binary.LittleEndian.Uint32(data[28:]); got != want {
		return nil, fmt.Errorf("snapshot: section table checksum mismatch (corrupt file): got %08x want %08x", got, want)
	}

	s := &snapV2{data: data}
	var metaRaw, statsRaw, largeStatsRaw []byte
	seen := make(map[uint32]bool, nsec)
	for i := 0; i < nsec; i++ {
		ent := table[i*v2SectionLen:]
		kind := binary.LittleEndian.Uint32(ent[0:])
		off := binary.LittleEndian.Uint64(ent[8:])
		length := binary.LittleEndian.Uint64(ent[16:])
		if off%8 != 0 {
			return nil, fmt.Errorf("snapshot: section %d (kind %d) misaligned at offset %d", i, kind, off)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("snapshot: section %d (kind %d) [%d,+%d) extends past file end", i, kind, off, length)
		}
		if seen[kind] {
			return nil, fmt.Errorf("snapshot: duplicate section kind %d", kind)
		}
		seen[kind] = true
		body := data[off : off+length]
		switch kind {
		case secMeta:
			metaRaw = body
		case secStats:
			statsRaw = body
		case secClusters:
			if length%v2ClusterRecLen != 0 {
				return nil, fmt.Errorf("snapshot: clusters section length %d not a multiple of %d", length, v2ClusterRecLen)
			}
			s.clusters = body
		case secMembers:
			if length%v2MemberRecLen != 0 {
				return nil, fmt.Errorf("snapshot: members section length %d not a multiple of %d", length, v2MemberRecLen)
			}
			s.members = body
		case secLookup:
			if length%v2LookupRecLen != 0 {
				return nil, fmt.Errorf("snapshot: lookup section length %d not a multiple of %d", length, v2LookupRecLen)
			}
			s.lookup = body
		case secLargeStats:
			largeStatsRaw = body
		case secLargeClusters:
			if length%v3LargeClusterRecLen != 0 {
				return nil, fmt.Errorf("snapshot: large clusters section length %d not a multiple of %d", length, v3LargeClusterRecLen)
			}
			s.largeClusters = body
		case secLargeMembers:
			if length%v3LargeMemberRecLen != 0 {
				return nil, fmt.Errorf("snapshot: large members section length %d not a multiple of %d", length, v3LargeMemberRecLen)
			}
			s.largeMembers = body
		case secLargeLookup:
			if length%v3LargeLookupRecLen != 0 {
				return nil, fmt.Errorf("snapshot: large lookup section length %d not a multiple of %d", length, v3LargeLookupRecLen)
			}
			s.largeLookup = body
		default:
			// Unknown sections are skipped: future writers may append
			// kinds old readers do not understand.
		}
	}
	if metaRaw == nil || statsRaw == nil || s.clusters == nil || s.members == nil || s.lookup == nil {
		return nil, fmt.Errorf("snapshot: missing required section (meta/stats/clusters/members/lookup)")
	}
	if version >= SnapshotVersionV3 {
		if largeStatsRaw == nil || s.largeClusters == nil || s.largeMembers == nil || s.largeLookup == nil {
			return nil, fmt.Errorf("snapshot: v3 snapshot missing large section (lstats/lclusters/lmembers/llookup)")
		}
		if len(largeStatsRaw) != v3LargeStatsLen {
			return nil, fmt.Errorf("snapshot: large stats section is %d bytes, want %d", len(largeStatsRaw), v3LargeStatsLen)
		}
		s.largeAction = int(int64(binary.LittleEndian.Uint64(largeStatsRaw[0:])))
		s.largeInformation = int(int64(binary.LittleEndian.Uint64(largeStatsRaw[8:])))
		s.largeObserved = int(int64(binary.LittleEndian.Uint64(largeStatsRaw[16:])))
		if s.largeObserved != s.largeLookupCount() {
			return nil, fmt.Errorf("snapshot: stats claim %d observed large communities, large lookup section holds %d",
				s.largeObserved, s.largeLookupCount())
		}
		if s.largeAction < 0 || s.largeInformation < 0 || s.largeAction+s.largeInformation > s.largeObserved {
			return nil, fmt.Errorf("snapshot: implausible large counters (action %d, information %d, observed %d)",
				s.largeAction, s.largeInformation, s.largeObserved)
		}
	}
	if len(statsRaw) != v2StatsLen {
		return nil, fmt.Errorf("snapshot: stats section is %d bytes, want %d", len(statsRaw), v2StatsLen)
	}
	if err := gob.NewDecoder(bytes.NewReader(metaRaw)).Decode(&s.meta); err != nil {
		return nil, fmt.Errorf("snapshot: decode meta: %w", err)
	}

	s.minGap = int(int64(binary.LittleEndian.Uint64(statsRaw[0:])))
	s.ratioThreshold = math.Float64frombits(binary.LittleEndian.Uint64(statsRaw[8:]))
	oflags := binary.LittleEndian.Uint64(statsRaw[16:])
	s.disableExclusions = oflags&v2FlagDisableExclusions != 0
	s.pooledRatio = oflags&v2FlagPooledRatio != 0
	s.action = int(int64(binary.LittleEndian.Uint64(statsRaw[24:])))
	s.information = int(int64(binary.LittleEndian.Uint64(statsRaw[32:])))
	s.observed = int(int64(binary.LittleEndian.Uint64(statsRaw[40:])))
	if s.observed != s.lookupCount() {
		return nil, fmt.Errorf("snapshot: stats claim %d observed communities, lookup section holds %d",
			s.observed, s.lookupCount())
	}
	if s.action < 0 || s.information < 0 || s.action+s.information > s.observed {
		return nil, fmt.Errorf("snapshot: implausible counters (action %d, information %d, observed %d)",
			s.action, s.information, s.observed)
	}
	return s, nil
}

func (s *snapV2) clusterCount() int { return len(s.clusters) / v2ClusterRecLen }
func (s *snapV2) lookupCount() int  { return len(s.lookup) / v2LookupRecLen }
func (s *snapV2) memberCount() int  { return len(s.members) / v2MemberRecLen }

func (s *snapV2) largeClusterCount() int { return len(s.largeClusters) / v3LargeClusterRecLen }
func (s *snapV2) largeLookupCount() int  { return len(s.largeLookup) / v3LargeLookupRecLen }
func (s *snapV2) largeMemberCount() int  { return len(s.largeMembers) / v3LargeMemberRecLen }

// lookupAt decodes the i-th lookup record straight from the backing
// pages. i must be in [0, lookupCount()).
func (s *snapV2) lookupAt(i int) (comm uint32, cluster int32, on, off int64) {
	b := s.lookup[i*v2LookupRecLen : i*v2LookupRecLen+v2LookupRecLen]
	comm = binary.LittleEndian.Uint32(b[0:])
	cluster = int32(binary.LittleEndian.Uint32(b[4:]))
	on = int64(binary.LittleEndian.Uint64(b[8:]))
	off = int64(binary.LittleEndian.Uint64(b[16:]))
	return
}

// findLookup binary-searches the comm-sorted lookup section.
func (s *snapV2) findLookup(comm uint32) (int, bool) {
	lo, hi := 0, s.lookupCount()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c := binary.LittleEndian.Uint32(s.lookup[mid*v2LookupRecLen:])
		switch {
		case c < comm:
			lo = mid + 1
		case c > comm:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// clusterSummaryAt decodes the i-th cluster record into its flat
// summary. ok is false when i is out of range (possible with a corrupt
// lookup section pointing past the cluster array).
func (s *snapV2) clusterSummaryAt(i int) (cs ClusterSummary, ok bool) {
	if i < 0 || i >= s.clusterCount() {
		return cs, false
	}
	b := s.clusters[i*v2ClusterRecLen : i*v2ClusterRecLen+v2ClusterRecLen]
	cs.Alpha = binary.LittleEndian.Uint16(b[0:])
	cs.Lo = binary.LittleEndian.Uint16(b[2:])
	cs.Hi = binary.LittleEndian.Uint16(b[4:])
	cs.Label = dict.Category(int8(b[6]))
	cs.PureOnPath = b[7]&v2ClusterPureOnPath != 0
	cs.PureOffPath = b[7]&v2ClusterPureOffPath != 0
	cs.Size = int(binary.LittleEndian.Uint32(b[12:]))
	cs.Ratio = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
	cs.OnPath = int64(binary.LittleEndian.Uint64(b[24:]))
	cs.OffPath = int64(binary.LittleEndian.Uint64(b[32:]))
	return cs, true
}

// clusterLabel reads just the i-th cluster's label byte.
func (s *snapV2) clusterLabel(i int) dict.Category {
	if i < 0 || i >= s.clusterCount() {
		return dict.CatUnknown
	}
	return dict.Category(int8(s.clusters[i*v2ClusterRecLen+6]))
}

// searchAlpha returns the index of the first cluster record with
// Alpha >= alpha, using the (alpha, lo) sort order.
func (s *snapV2) searchAlpha(alpha uint16, n int) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		a := binary.LittleEndian.Uint16(s.clusters[mid*v2ClusterRecLen:])
		if a < alpha {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// clusterMemberRange returns the i-th cluster's member index range,
// clamped to the members section so corrupt records cannot walk out of
// bounds.
func (s *snapV2) clusterMemberRange(i int) (start, count int) {
	if i < 0 || i >= s.clusterCount() {
		return 0, 0
	}
	b := s.clusters[i*v2ClusterRecLen:]
	start = int(binary.LittleEndian.Uint32(b[8:]))
	count = int(binary.LittleEndian.Uint32(b[12:]))
	total := s.memberCount()
	if start > total {
		return 0, 0
	}
	if count > total-start {
		count = total - start
	}
	return start, count
}

// memberAt decodes one member record. i must be in [0, memberCount()).
func (s *snapV2) memberAt(i int) CommunityStats {
	b := s.members[i*v2MemberRecLen : i*v2MemberRecLen+v2MemberRecLen]
	return CommunityStats{
		Comm:    bgp.Community(binary.LittleEndian.Uint32(b[0:])),
		OnPath:  int(int64(binary.LittleEndian.Uint64(b[8:]))),
		OffPath: int(int64(binary.LittleEndian.Uint64(b[16:]))),
	}
}

// largeLookupAt decodes the i-th large lookup record.
func (s *snapV2) largeLookupAt(i int) (comm bgp.LargeCommunity, cluster int32, on, off int64) {
	b := s.largeLookup[i*v3LargeLookupRecLen : i*v3LargeLookupRecLen+v3LargeLookupRecLen]
	comm = bgp.LargeCommunity{
		GlobalAdmin: binary.LittleEndian.Uint32(b[0:]),
		LocalData1:  binary.LittleEndian.Uint32(b[4:]),
		LocalData2:  binary.LittleEndian.Uint32(b[8:]),
	}
	cluster = int32(binary.LittleEndian.Uint32(b[12:]))
	on = int64(binary.LittleEndian.Uint64(b[16:]))
	off = int64(binary.LittleEndian.Uint64(b[24:]))
	return
}

// findLargeLookup binary-searches the (ga, ld1, ld2)-sorted large
// lookup section.
func (s *snapV2) findLargeLookup(lc bgp.LargeCommunity) (int, bool) {
	lo, hi := 0, s.largeLookupCount()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		b := s.largeLookup[mid*v3LargeLookupRecLen:]
		rec := bgp.LargeCommunity{
			GlobalAdmin: binary.LittleEndian.Uint32(b[0:]),
			LocalData1:  binary.LittleEndian.Uint32(b[4:]),
			LocalData2:  binary.LittleEndian.Uint32(b[8:]),
		}
		switch c := rec.Compare(lc); {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// largeClusterSummaryAt decodes the i-th large cluster record; ok is
// false when i is out of range.
func (s *snapV2) largeClusterSummaryAt(i int) (cs LargeClusterSummary, ok bool) {
	if i < 0 || i >= s.largeClusterCount() {
		return cs, false
	}
	b := s.largeClusters[i*v3LargeClusterRecLen : i*v3LargeClusterRecLen+v3LargeClusterRecLen]
	cs.Alpha = binary.LittleEndian.Uint32(b[0:])
	cs.Fn = binary.LittleEndian.Uint32(b[4:])
	cs.Lo = binary.LittleEndian.Uint32(b[8:])
	cs.Hi = binary.LittleEndian.Uint32(b[12:])
	cs.Label = dict.Category(int8(b[16]))
	cs.PureOnPath = b[17]&v2ClusterPureOnPath != 0
	cs.PureOffPath = b[17]&v2ClusterPureOffPath != 0
	cs.Size = int(binary.LittleEndian.Uint32(b[24:]))
	cs.Ratio = math.Float64frombits(binary.LittleEndian.Uint64(b[32:]))
	cs.OnPath = int64(binary.LittleEndian.Uint64(b[40:]))
	cs.OffPath = int64(binary.LittleEndian.Uint64(b[48:]))
	return cs, true
}

// largeClusterLabel reads just the i-th large cluster's label byte.
func (s *snapV2) largeClusterLabel(i int) dict.Category {
	if i < 0 || i >= s.largeClusterCount() {
		return dict.CatUnknown
	}
	return dict.Category(int8(s.largeClusters[i*v3LargeClusterRecLen+16]))
}

// largeClusterMemberRange returns the i-th large cluster's member
// index range, clamped to the members section.
func (s *snapV2) largeClusterMemberRange(i int) (start, count int) {
	if i < 0 || i >= s.largeClusterCount() {
		return 0, 0
	}
	b := s.largeClusters[i*v3LargeClusterRecLen:]
	start = int(binary.LittleEndian.Uint32(b[20:]))
	count = int(binary.LittleEndian.Uint32(b[24:]))
	total := s.largeMemberCount()
	if start > total {
		return 0, 0
	}
	if count > total-start {
		count = total - start
	}
	return start, count
}

// largeMemberAt decodes one large member record.
func (s *snapV2) largeMemberAt(i int) LargeStats {
	b := s.largeMembers[i*v3LargeMemberRecLen : i*v3LargeMemberRecLen+v3LargeMemberRecLen]
	return LargeStats{
		Comm: bgp.LargeCommunity{
			GlobalAdmin: binary.LittleEndian.Uint32(b[0:]),
			LocalData1:  binary.LittleEndian.Uint32(b[4:]),
			LocalData2:  binary.LittleEndian.Uint32(b[8:]),
		},
		OnPath:  int(int64(binary.LittleEndian.Uint64(b[16:]))),
		OffPath: int(int64(binary.LittleEndian.Uint64(b[24:]))),
	}
}

// options reconstructs the serializable classifier options.
func (s *snapV2) options() Options {
	return Options{
		MinGap:            s.minGap,
		RatioThreshold:    s.ratioThreshold,
		DisableExclusions: s.disableExclusions,
		PooledRatio:       s.pooledRatio,
	}
}

// materialize rebuilds a heap *Inferences equivalent to what the v1
// round trip of the same inferences would produce.
func (s *snapV2) materialize() *Inferences {
	inf := &Inferences{
		Labels:   make(map[bgp.Community]dict.Category),
		Excluded: make(map[bgp.Community]ExcludeReason),
		Opts:     s.options(),
	}
	nc := s.clusterCount()
	inf.Clusters = make([]Cluster, 0, nc)
	for i := 0; i < nc; i++ {
		cs, _ := s.clusterSummaryAt(i)
		start, count := s.clusterMemberRange(i)
		cl := Cluster{
			Alpha: cs.Alpha, Lo: cs.Lo, Hi: cs.Hi, Label: cs.Label,
			PureOnPath: cs.PureOnPath, PureOffPath: cs.PureOffPath,
			Ratio:   cs.Ratio,
			Members: make([]CommunityStats, count),
		}
		for j := 0; j < count; j++ {
			cl.Members[j] = s.memberAt(start + j)
		}
		inf.Clusters = append(inf.Clusters, cl)
		for _, m := range cl.Members {
			inf.Labels[m.Comm] = cl.Label
		}
	}
	excludedStats := make(map[bgp.Community]CommunityStats)
	for i, n := 0, s.lookupCount(); i < n; i++ {
		comm, cluster, on, off := s.lookupAt(i)
		if cluster >= 0 {
			continue
		}
		c := bgp.Community(comm)
		reason := ExcludeReason(min(-int64(cluster), int64(ExcludeUnobserved)))
		inf.Excluded[c] = reason
		excludedStats[c] = CommunityStats{Comm: c, OnPath: int(on), OffPath: int(off)}
	}
	inf.buildIndex(excludedStats)

	if nlc := s.largeClusterCount(); nlc > 0 || s.largeLookupCount() > 0 {
		inf.LargeClusters = make([]LargeCluster, 0, nlc)
		if nlc > 0 {
			inf.LargeLabels = make(map[bgp.LargeCommunity]dict.Category)
		}
		for i := 0; i < nlc; i++ {
			cs, _ := s.largeClusterSummaryAt(i)
			start, count := s.largeClusterMemberRange(i)
			cl := LargeCluster{
				Alpha: cs.Alpha, Fn: cs.Fn, Lo: cs.Lo, Hi: cs.Hi, Label: cs.Label,
				PureOnPath: cs.PureOnPath, PureOffPath: cs.PureOffPath,
				Ratio:   cs.Ratio,
				Members: make([]LargeStats, count),
			}
			for j := 0; j < count; j++ {
				cl.Members[j] = s.largeMemberAt(start + j)
			}
			inf.LargeClusters = append(inf.LargeClusters, cl)
			for _, m := range cl.Members {
				inf.LargeLabels[m.Comm] = cl.Label
			}
		}
		largeExclStats := make(map[bgp.LargeCommunity]LargeStats)
		for i, n := 0, s.largeLookupCount(); i < n; i++ {
			lc, cluster, on, off := s.largeLookupAt(i)
			if cluster >= 0 {
				continue
			}
			if inf.LargeExcluded == nil {
				inf.LargeExcluded = make(map[bgp.LargeCommunity]ExcludeReason)
			}
			reason := ExcludeReason(min(-int64(cluster), int64(ExcludeUnobserved)))
			inf.LargeExcluded[lc] = reason
			largeExclStats[lc] = LargeStats{Comm: lc, OnPath: int(on), OffPath: int(off)}
		}
		inf.buildLargeIndex(largeExclStats)
	}
	return inf
}

// VerifySnapshotV2 runs the full integrity pass a plain open skips for
// O(1) cold start: per-section CRCs, lookup-section sort order, and
// cluster member/index ranges. Tools (snapconvert -verify) and tests
// use it; serving replicas trust the writer plus the table checksum.
func VerifySnapshotV2(data []byte) error {
	s, err := parseSnapshotV2(data)
	if err != nil {
		return err
	}
	nsec := int(binary.LittleEndian.Uint32(data[24:]))
	table := data[v2HeaderLen : v2HeaderLen+nsec*v2SectionLen]
	for i := 0; i < nsec; i++ {
		ent := table[i*v2SectionLen:]
		kind := binary.LittleEndian.Uint32(ent[0:])
		off := binary.LittleEndian.Uint64(ent[8:])
		length := binary.LittleEndian.Uint64(ent[16:])
		want := binary.LittleEndian.Uint32(ent[24:])
		if got := crc32.ChecksumIEEE(data[off : off+length]); got != want {
			return fmt.Errorf("snapshot: section kind %d checksum mismatch (corrupt file): got %08x want %08x", kind, got, want)
		}
	}
	var prev uint32
	for i, n := 0, s.lookupCount(); i < n; i++ {
		comm, cluster, _, _ := s.lookupAt(i)
		if i > 0 && comm <= prev {
			return fmt.Errorf("snapshot: lookup section not strictly sorted at record %d", i)
		}
		prev = comm
		if cluster >= 0 {
			if int(cluster) >= s.clusterCount() {
				return fmt.Errorf("snapshot: lookup record %d references cluster %d of %d", i, cluster, s.clusterCount())
			}
		} else if -cluster > int32(ExcludeNeverOnPath) {
			return fmt.Errorf("snapshot: lookup record %d has unknown exclusion reason %d", i, -cluster)
		}
	}
	for i, n := 0, s.clusterCount(); i < n; i++ {
		b := s.clusters[i*v2ClusterRecLen:]
		start := int(binary.LittleEndian.Uint32(b[8:]))
		count := int(binary.LittleEndian.Uint32(b[12:]))
		if start > s.memberCount() || count > s.memberCount()-start {
			return fmt.Errorf("snapshot: cluster %d members [%d,+%d) exceed member section (%d records)",
				i, start, count, s.memberCount())
		}
	}
	var prevLarge bgp.LargeCommunity
	for i, n := 0, s.largeLookupCount(); i < n; i++ {
		lc, cluster, _, _ := s.largeLookupAt(i)
		if i > 0 && lc.Compare(prevLarge) <= 0 {
			return fmt.Errorf("snapshot: large lookup section not strictly sorted at record %d", i)
		}
		prevLarge = lc
		if cluster >= 0 {
			if int(cluster) >= s.largeClusterCount() {
				return fmt.Errorf("snapshot: large lookup record %d references cluster %d of %d", i, cluster, s.largeClusterCount())
			}
		} else if -cluster > int32(ExcludeNeverOnPath) {
			return fmt.Errorf("snapshot: large lookup record %d has unknown exclusion reason %d", i, -cluster)
		}
	}
	for i, n := 0, s.largeClusterCount(); i < n; i++ {
		b := s.largeClusters[i*v3LargeClusterRecLen:]
		start := int(binary.LittleEndian.Uint32(b[20:]))
		count := int(binary.LittleEndian.Uint32(b[24:]))
		if start > s.largeMemberCount() || count > s.largeMemberCount()-start {
			return fmt.Errorf("snapshot: large cluster %d members [%d,+%d) exceed member section (%d records)",
				i, start, count, s.largeMemberCount())
		}
	}
	return nil
}

package core

import (
	"bytes"
	"reflect"
	"testing"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
)

// buildTestInferences classifies a small hand-built store exercising
// all verdicts: classified clusters, a private-ASN exclusion, and a
// never-on-path exclusion.
func buildTestInferences(t *testing.T) (*TupleStore, *Inferences) {
	t.Helper()
	ts := NewTupleStore()
	// AS 100 on-path with an information community, plus an off-path
	// action community far away (gap > MinGap splits them).
	ts.AddView(900, []uint32{900, 100, 200}, []bgp.Community{bgp.NewCommunity(100, 10)})
	ts.AddView(901, []uint32{901, 300, 400}, []bgp.Community{
		bgp.NewCommunity(100, 9000),    // off-path for AS 100 -> action
		bgp.NewCommunity(64512, 77),    // private ASN -> excluded
		bgp.NewCommunity(500, 1),       // AS 500 never on any path -> excluded
	})
	inf := Classify(ts, Options{MinGap: 140, RatioThreshold: 160})
	return ts, inf
}

func TestLookupVerdicts(t *testing.T) {
	_, inf := buildTestInferences(t)

	info := inf.Lookup(bgp.NewCommunity(100, 10))
	if !info.Observed || info.Category != dict.CatInformation || info.Reason != ExcludeNone {
		t.Fatalf("100:10 = %+v, want observed information", info)
	}
	if info.Cluster == nil || info.Cluster.Alpha != 100 || info.Cluster.Lo != 10 || info.Cluster.Hi != 10 {
		t.Fatalf("100:10 cluster = %+v", info.Cluster)
	}
	if info.Stats.OnPath != 1 || info.Stats.OffPath != 0 {
		t.Fatalf("100:10 stats = %+v, want on=1 off=0", info.Stats)
	}

	act := inf.Lookup(bgp.NewCommunity(100, 9000))
	if act.Category != dict.CatAction || act.Cluster == nil {
		t.Fatalf("100:9000 = %+v, want action with cluster", act)
	}
	if act.Stats.OnPath != 0 || act.Stats.OffPath != 1 {
		t.Fatalf("100:9000 stats = %+v, want on=0 off=1", act.Stats)
	}

	priv := inf.Lookup(bgp.NewCommunity(64512, 77))
	if !priv.Observed || priv.Reason != ExcludePrivateASN || priv.Cluster != nil {
		t.Fatalf("64512:77 = %+v, want observed private-asn exclusion", priv)
	}
	if priv.Stats.OffPath != 1 {
		t.Fatalf("64512:77 stats = %+v, want the observation evidence", priv.Stats)
	}

	nop := inf.Lookup(bgp.NewCommunity(500, 1))
	if !nop.Observed || nop.Reason != ExcludeNeverOnPath {
		t.Fatalf("500:1 = %+v, want never-on-path exclusion", nop)
	}

	ghost := inf.Lookup(bgp.NewCommunity(4242, 4242))
	if ghost.Observed || ghost.Reason != ExcludeUnobserved || ghost.Category != dict.CatUnknown {
		t.Fatalf("4242:4242 = %+v, want unobserved", ghost)
	}

	if want := 4; inf.Observed() != want {
		t.Fatalf("Observed() = %d, want %d", inf.Observed(), want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	_, inf := buildTestInferences(t)
	meta := SnapshotMeta{
		CreatedUnix: 1714521600, Source: "test",
		Tuples: 2, Paths: 2, VantagePoints: 2, Communities: 4, LargeCommunities: 0,
	}

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, inf, meta); err != nil {
		t.Fatal(err)
	}

	// Meta is readable without the body.
	gotMeta, err := ReadSnapshotMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}

	got, gotMeta2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta2 != meta {
		t.Fatalf("meta via ReadSnapshot = %+v, want %+v", gotMeta2, meta)
	}
	if !reflect.DeepEqual(got.Labels, inf.Labels) {
		t.Fatalf("labels differ: got %v want %v", got.Labels, inf.Labels)
	}
	if !reflect.DeepEqual(got.Excluded, inf.Excluded) {
		t.Fatalf("exclusions differ: got %v want %v", got.Excluded, inf.Excluded)
	}
	if !reflect.DeepEqual(got.Clusters, inf.Clusters) {
		t.Fatalf("clusters differ")
	}
	// Lookup is fully rebuilt, including excluded-community evidence.
	for _, c := range []bgp.Community{
		bgp.NewCommunity(100, 10), bgp.NewCommunity(100, 9000),
		bgp.NewCommunity(64512, 77), bgp.NewCommunity(500, 1),
		bgp.NewCommunity(4242, 4242),
	} {
		a, b := inf.Lookup(c), got.Lookup(c)
		a.Cluster, b.Cluster = nil, nil // compared separately above
		if a != b {
			t.Fatalf("Lookup(%v) differs after round trip: %+v vs %+v", c, a, b)
		}
	}

	// Identical inferences serialize to identical bytes.
	var buf2 bytes.Buffer
	if err := WriteSnapshot(&buf2, inf, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot bytes are not deterministic")
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	_, inf := buildTestInferences(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, inf, SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a byte in the body (past header+meta): checksum must catch it.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-10] ^= 0xff
	if _, _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt body accepted")
	}

	// Bad magic.
	corrupt = append([]byte(nil), raw...)
	corrupt[0] = 'X'
	if _, _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Unsupported version.
	corrupt = append([]byte(nil), raw...)
	corrupt[9] = 99
	if _, _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("future version accepted")
	}

	// Truncation.
	if _, _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; see
// race_on_test.go for why the zero-alloc guards need to know.
const raceEnabled = false

package core

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// buildParallelStore loads enough synthetic views that both Observe's
// and ClassifyObserved's parallel paths engage (>= minParallelTuples
// tuples, >= minParallelAlphas alphas).
func buildParallelStore(t *testing.T) *TupleStore {
	t.Helper()
	views := genViews(7, 40000)
	ts := NewTupleStore()
	for _, v := range views {
		ts.AddView(v.vp, v.path, v.comms)
	}
	if ts.Len() < minParallelTuples {
		t.Fatalf("fixture too small: %d tuples < %d", ts.Len(), minParallelTuples)
	}
	return ts
}

// TestObserveParallelEquivalence: Observe returns identical statistics
// for every worker count.
func TestObserveParallelEquivalence(t *testing.T) {
	ts := buildParallelStore(t)
	opts := DefaultOptions()
	opts.Workers = 1
	ref := Observe(ts, opts)
	for _, workers := range []int{2, 8} {
		opts.Workers = workers
		got := Observe(ts, opts)
		if len(got.Stats) != len(ref.Stats) {
			t.Fatalf("workers=%d: %d communities, want %d", workers, len(got.Stats), len(ref.Stats))
		}
		for c, want := range ref.Stats {
			if g := got.Stats[c]; g == nil || *g != *want {
				t.Fatalf("workers=%d: stats[%v] = %+v, want %+v", workers, c, got.Stats[c], want)
			}
		}
		if !reflect.DeepEqual(got.asnOnPath, ref.asnOnPath) {
			t.Fatalf("workers=%d: asnOnPath sets differ", workers)
		}
		if !reflect.DeepEqual(got.orgOnPath, ref.orgOnPath) {
			t.Fatalf("workers=%d: orgOnPath sets differ", workers)
		}
	}
}

// TestClassifyParallelEquivalence: the full pipeline emits identical
// labels, clusters and exclusions for every worker count.
func TestClassifyParallelEquivalence(t *testing.T) {
	ts := buildParallelStore(t)
	opts := DefaultOptions()
	opts.Workers = 1
	ref := Classify(ts, opts)
	for _, workers := range []int{2, 8} {
		opts.Workers = workers
		got := Classify(ts, opts)
		if !reflect.DeepEqual(got.Labels, ref.Labels) {
			t.Fatalf("workers=%d: labels differ", workers)
		}
		if !reflect.DeepEqual(got.Excluded, ref.Excluded) {
			t.Fatalf("workers=%d: exclusions differ", workers)
		}
		if len(got.Clusters) != len(ref.Clusters) {
			t.Fatalf("workers=%d: %d clusters, want %d", workers, len(got.Clusters), len(ref.Clusters))
		}
		for i := range ref.Clusters {
			if !reflect.DeepEqual(got.Clusters[i], ref.Clusters[i]) {
				t.Fatalf("workers=%d: cluster %d = %+v, want %+v", workers, i, got.Clusters[i], ref.Clusters[i])
			}
		}
	}
}

// TestParallelFor covers the pool helper: every index runs exactly
// once, for worker counts around and beyond n.
func TestParallelFor(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16} {
		for _, n := range []int{0, 1, 5, 100} {
			var hits atomic.Int64
			seen := make([]atomic.Bool, n)
			ParallelFor(workers, n, func(i int) {
				if seen[i].Swap(true) {
					t.Errorf("workers=%d n=%d: index %d ran twice", workers, n, i)
				}
				hits.Add(1)
			})
			if int(hits.Load()) != n {
				t.Errorf("workers=%d n=%d: %d calls", workers, n, hits.Load())
			}
		}
	}
}

// TestParallelRanges covers the range splitter: the ranges tile [0, n)
// without overlap.
func TestParallelRanges(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		for _, n := range []int{0, 1, 6, 97} {
			covered := make([]atomic.Int32, n)
			parallelRanges(workers, n, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			})
			for i := range covered {
				if c := covered[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestResolveWorkers pins the knob semantics.
func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3); got != 3 {
		t.Errorf("ResolveWorkers(3) = %d", got)
	}
	if got := ResolveWorkers(0); got < 1 {
		t.Errorf("ResolveWorkers(0) = %d", got)
	}
	if got := ResolveWorkers(-2); got < 1 {
		t.Errorf("ResolveWorkers(-2) = %d", got)
	}
}

// BenchmarkAddViewDup measures the hot dedup path: every view after the
// first hits an existing tuple, so a lean AddView allocates nothing.
func BenchmarkAddViewDup(b *testing.B) {
	ts := NewTupleStore()
	path := []uint32{65269, 3356, 64496}
	cs := genViews(11, 1)[0].comms
	ts.AddView(1, path, cs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.AddView(1, path, cs)
	}
}

// Incremental reclassification: the streaming path calls ClassifyDelta
// with the set of dirty αs — the ASes whose evidence changed since the
// previous classification — so only their clusters re-run the
// observe/cluster/ratio/classify stages; every clean α reuses its
// clusters from the previous Inferences verbatim.
package core

import (
	"cmp"
	"context"
	"slices"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
	"bgpintent/internal/obs"
)

// deltaCompatible reports whether two option sets classify under the
// same regime, so previous clusters remain valid for clean αs.
func deltaCompatible(a, b Options) bool {
	return a.MinGap == b.MinGap &&
		a.RatioThreshold == b.RatioThreshold &&
		a.DisableExclusions == b.DisableExclusions &&
		a.PooledRatio == b.PooledRatio
}

// ClassifyDelta reclassifies only the dirty αs against the current
// store, merging with prev for every other α. The result is identical
// to ClassifyContext(ctx, ts, opts) provided dirty covers every α
// whose evidence changed: the α of every community added to or evicted
// from the store since prev, plus every 16-bit ASN whose presence in
// the observed path set flipped (never-on-path exclusions depend on
// it). The stream.Window tracks exactly that set.
//
// Falls back to a full classification when prev is nil, when the
// classification options changed, when sibling awareness (opts.Orgs)
// is enabled — an org flip can dirty sibling αs the caller cannot see
// — or when large communities are in play on either side: the dirty
// set tracks 16-bit αs only, so large evidence changes are invisible
// to it and the conservative path is the correct one.
//
// A nil dirty set with a valid prev means nothing changed; prev is
// returned as-is.
func ClassifyDelta(ctx context.Context, ts *TupleStore, opts Options, prev *Inferences, dirty map[uint16]bool) (*Inferences, error) {
	if prev == nil || opts.Orgs != nil || !deltaCompatible(opts, prev.Opts) ||
		ts.hasLargeTuples() || len(prev.LargeClusters) > 0 || len(prev.LargeExcluded) > 0 {
		return ClassifyContext(ctx, ts, opts)
	}
	if len(dirty) == 0 {
		return prev, nil
	}

	// Observe only the dirty αs' communities (the CSR build skips clean
	// pairs before the sort/merge); on-path evidence stays global.
	var os *ObservationSet
	err := opts.Tracer.Stage(ctx, obs.StageObserve, "", func(s *obs.Span) {
		s.Tuples = int64(len(ts.Tuples()))
		if os != nil {
			s.Records = int64(len(os.Stats))
		}
	}, func(ctx context.Context) error {
		var err error
		os, err = observe(ctx, ts, opts, dirty)
		return err
	})
	if err != nil {
		return nil, err
	}

	// Cluster/ratio/classify the dirty αs alone.
	sub, err := ClassifyObservedContext(ctx, os, opts)
	if err != nil {
		return nil, err
	}

	// Merge: clean αs keep their previous clusters and exclusions
	// (shared, immutable), dirty αs take the fresh ones.
	merged := &Inferences{
		Labels:   make(map[bgp.Community]dict.Category, len(prev.Labels)),
		Excluded: make(map[bgp.Community]ExcludeReason, len(prev.Excluded)),
		Opts:     opts,
	}
	merged.Clusters = make([]Cluster, 0, len(prev.Clusters)+len(sub.Clusters))
	for i := range prev.Clusters {
		if !dirty[prev.Clusters[i].Alpha] {
			merged.Clusters = append(merged.Clusters, prev.Clusters[i])
		}
	}
	merged.Clusters = append(merged.Clusters, sub.Clusters...)
	// ClassifyContext emits clusters in (α, Lo) order; restore it so a
	// delta-maintained result is byte-identical to a batch one.
	slices.SortFunc(merged.Clusters, func(a, b Cluster) int {
		if a.Alpha != b.Alpha {
			return cmp.Compare(a.Alpha, b.Alpha)
		}
		return cmp.Compare(a.Lo, b.Lo)
	})
	for i := range merged.Clusters {
		cl := &merged.Clusters[i]
		for _, m := range cl.Members {
			merged.Labels[m.Comm] = cl.Label
		}
	}

	excludedStats := make(map[bgp.Community]CommunityStats, len(prev.Excluded))
	for c, reason := range prev.Excluded {
		if dirty[c.ASN()] {
			continue
		}
		merged.Excluded[c] = reason
		excludedStats[c] = prev.index[c].stats
	}
	for c, reason := range sub.Excluded {
		merged.Excluded[c] = reason
		excludedStats[c] = sub.index[c].stats
	}
	merged.buildIndex(excludedStats)
	return merged, nil
}

package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"bgpintent/internal/bgp"
)

// testOrgs is a map-backed OrgMapper.
type testOrgs map[uint32]string

func (m testOrgs) Org(asn uint32) (string, bool) {
	o, ok := m[asn]
	return o, ok
}

// deltaView is one synthetic observation a test corpus is made of.
type deltaView struct {
	vp    uint32
	path  []uint32
	comms bgp.Communities
}

// genDeltaViews produces a randomized corpus slice: paths over a small ASN
// universe with communities whose αs are drawn from the path ASNs
// (classifiable) and from ASNs never on any path (excludable), so every
// classifier branch — action, information, private-ASN and
// never-on-path exclusion — shows up.
func genDeltaViews(rng *rand.Rand, n int) []deltaView {
	views := make([]deltaView, 0, n)
	for i := 0; i < n; i++ {
		vp := uint32(1100 + rng.Intn(6))
		hops := 2 + rng.Intn(3)
		path := []uint32{vp}
		for h := 0; h < hops; h++ {
			path = append(path, uint32(100+rng.Intn(12)*100))
		}
		var comms bgp.Communities
		for k := rng.Intn(3) + 1; k > 0; k-- {
			var alpha uint16
			switch rng.Intn(4) {
			case 0: // α on this very path: strong on-path evidence
				alpha = uint16(path[1+rng.Intn(len(path)-1)])
			case 1: // α from the universe, on some paths but maybe not this one
				alpha = uint16(100 + rng.Intn(12)*100)
			case 2: // α never on any path (the universe stops at 1200)
				alpha = uint16(5000 + rng.Intn(3))
			default: // private ASN range
				alpha = uint16(64512 + rng.Intn(3))
			}
			comms = append(comms, bgp.NewCommunity(alpha, uint16(rng.Intn(400))))
		}
		views = append(views, deltaView{vp: vp, path: path, comms: comms})
	}
	return views
}

func storeOf(views []deltaView) *TupleStore {
	ts := NewTupleStore()
	for _, v := range views {
		ts.AddView(v.vp, v.path, v.comms)
	}
	return ts
}

// dirtyBetween computes the dirty-α set exactly the way stream.Window
// does for a transition old → new: the α of every community on a view
// present in one set but not the other, plus every 16-bit path ASN
// whose presence in the path universe flipped.
func dirtyBetween(old, new []deltaView) map[uint16]bool {
	pathASNs := func(views []deltaView) map[uint32]bool {
		m := make(map[uint32]bool)
		for _, v := range views {
			for _, a := range v.path {
				m[a] = true
			}
		}
		return m
	}
	dirty := make(map[uint16]bool)
	// Views are value slices; compare by index identity: the tests only
	// ever append to or truncate the shared backing corpus, so a view in
	// exactly one of the two sets is one beyond the shorter prefix.
	shorter, longer := old, new
	if len(longer) < len(shorter) {
		shorter, longer = longer, shorter
	}
	for _, v := range longer[len(shorter):] {
		for _, c := range v.comms {
			dirty[c.ASN()] = true
		}
	}
	oldASNs, newASNs := pathASNs(old), pathASNs(new)
	for a := range oldASNs {
		if !newASNs[a] && a <= 0xFFFF {
			dirty[uint16(a)] = true
		}
	}
	for a := range newASNs {
		if !oldASNs[a] && a <= 0xFFFF {
			dirty[uint16(a)] = true
		}
	}
	return dirty
}

// sameInf fails unless two Inferences agree on labels, clusters,
// exclusions, and per-community lookups (which exercises the rebuilt
// index and the stats carried for excluded communities).
func sameInf(t *testing.T, ts *TupleStore, got, want *Inferences) {
	t.Helper()
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatalf("labels diverged: %d vs %d", len(got.Labels), len(want.Labels))
	}
	if !reflect.DeepEqual(got.Excluded, want.Excluded) {
		t.Fatalf("exclusions diverged: %d vs %d", len(got.Excluded), len(want.Excluded))
	}
	if !reflect.DeepEqual(got.Clusters, want.Clusters) {
		t.Fatalf("clusters diverged: %d vs %d", len(got.Clusters), len(want.Clusters))
	}
	for _, comm := range ts.Communities() {
		g, w := got.Lookup(comm), want.Lookup(comm)
		if g.Observed != w.Observed || g.Category != w.Category ||
			g.Reason != w.Reason || g.Stats != w.Stats {
			t.Fatalf("lookup(%v) diverged: %+v vs %+v", comm, g, w)
		}
	}
}

func TestClassifyDeltaAdditionsEqualFull(t *testing.T) {
	opts := DefaultOptions()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		corpus := genDeltaViews(rng, 300)
		base := corpus[:200]

		prev, err := ClassifyContext(context.Background(), storeOf(base), opts)
		if err != nil {
			t.Fatal(err)
		}
		// Grow in two delta steps to also exercise delta-on-delta.
		for _, cut := range []int{250, 300} {
			grown := corpus[:cut]
			ts := storeOf(grown)
			dirty := dirtyBetween(base, grown)
			got, err := ClassifyDelta(context.Background(), ts, opts, prev, dirty)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ClassifyContext(context.Background(), ts, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameInf(t, ts, got, want)
			base, prev = grown, got
		}
	}
}

func TestClassifyDeltaEvictionsEqualFull(t *testing.T) {
	opts := DefaultOptions()
	for seed := int64(10); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		corpus := genDeltaViews(rng, 300)

		prev, err := ClassifyContext(context.Background(), storeOf(corpus), opts)
		if err != nil {
			t.Fatal(err)
		}
		// Evict the tail third, as a rolling window dropping a bucket.
		kept := corpus[:200]
		ts := storeOf(kept)
		dirty := dirtyBetween(corpus, kept)
		got, err := ClassifyDelta(context.Background(), ts, opts, prev, dirty)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ClassifyContext(context.Background(), ts, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameInf(t, ts, got, want)
	}
}

func TestClassifyDeltaNoChangeReturnsPrev(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	views := genDeltaViews(rng, 100)
	ts := storeOf(views)
	prev, err := ClassifyContext(context.Background(), ts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ClassifyDelta(context.Background(), ts, DefaultOptions(), prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != prev {
		t.Fatal("empty dirty set should return prev verbatim")
	}
}

func TestClassifyDeltaFallsBackToFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	views := genDeltaViews(rng, 150)
	ts := storeOf(views)
	opts := DefaultOptions()
	want, err := ClassifyContext(context.Background(), ts, opts)
	if err != nil {
		t.Fatal(err)
	}

	// nil prev: full classification regardless of dirty.
	got, err := ClassifyDelta(context.Background(), ts, opts, nil, map[uint16]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	sameInf(t, ts, got, want)

	// Changed options: prev is unusable, must fall back (and adopt the
	// new options, not prev's).
	prevOther, err := ClassifyContext(context.Background(), ts, Options{MinGap: 1, RatioThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err = ClassifyDelta(context.Background(), ts, opts, prevOther, map[uint16]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	sameInf(t, ts, got, want)

	// Sibling-aware mode: org flips can dirty αs the window cannot see,
	// so delta always falls back when Orgs is set.
	orgOpts := opts
	orgOpts.Orgs = testOrgs{100: "org-a", 200: "org-a"}
	wantOrg, err := ClassifyContext(context.Background(), ts, orgOpts)
	if err != nil {
		t.Fatal(err)
	}
	got, err = ClassifyDelta(context.Background(), ts, orgOpts, want, map[uint16]bool{})
	if err != nil {
		t.Fatal(err)
	}
	sameInf(t, ts, got, wantOrg)
}

package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ResolveWorkers maps a worker-count knob to an effective pool size:
// positive values are taken as-is, anything else means one worker per
// available CPU (GOMAXPROCS).
func ResolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelFor runs fn(i) for every i in [0, n) on a bounded worker
// pool and blocks until all calls return. Work is handed out through an
// atomic counter, so callers get dynamic load balancing; determinism is
// the caller's job (write results into a slice indexed by i and reduce
// in order). workers <= 0 means GOMAXPROCS; with one worker (or n <= 1)
// fn runs inline on the calling goroutine.
func ParallelFor(workers, n int, fn func(i int)) {
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// parallelRanges splits [0, n) into one contiguous range per worker and
// runs fn(w, lo, hi) for each; it blocks until all return. Used where
// each worker accumulates into private state indexed by w and the
// caller merges the parts in worker order, keeping results independent
// of scheduling.
func parallelRanges(workers, n int, fn func(w, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ResolveWorkers maps a worker-count knob to an effective pool size:
// positive values are taken as-is, anything else means one worker per
// available CPU (GOMAXPROCS).
func ResolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelFor runs fn(i) for every i in [0, n) on a bounded worker
// pool and blocks until all calls return. Work is handed out through an
// atomic counter, so callers get dynamic load balancing; determinism is
// the caller's job (write results into a slice indexed by i and reduce
// in order). workers <= 0 means GOMAXPROCS; with one worker (or n <= 1)
// fn runs inline on the calling goroutine.
func ParallelFor(workers, n int, fn func(i int)) {
	ParallelForContext(context.Background(), workers, n, fn) //nolint:errcheck // Background never cancels
}

// ParallelForContext is ParallelFor with cancellation: every worker
// checks ctx before claiming the next index, so an abort is noticed
// within one fn call per worker — bounded latency, and wg.Wait
// guarantees no goroutine outlives the call. Returns ctx.Err() when the
// context was canceled (some indexes may not have run), nil otherwise.
func ParallelForContext(ctx context.Context, workers, n int, fn func(i int)) error {
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if chClosed(done) {
				return ctx.Err()
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !chClosed(done) {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// chClosed is a non-blocking closed-channel probe; a nil channel (no
// cancellation wired) reads as open.
func chClosed(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// parallelRanges splits [0, n) into one contiguous range per worker and
// runs fn(w, lo, hi) for each; it blocks until all return. Used where
// each worker accumulates into private state indexed by w and the
// caller merges the parts in worker order, keeping results independent
// of scheduling.
func parallelRanges(workers, n int, fn func(w, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

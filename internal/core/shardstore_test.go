package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"bgpintent/internal/bgp"
)

// synthView is one generated observation for store tests.
type synthView struct {
	vp    uint32
	path  []uint32
	comms bgp.Communities
	large bgp.LargeCommunities
}

// genViews builds a deterministic stream of views with heavy path and
// tuple reuse, prepending, duplicate communities, and some large
// communities — the shapes AddView has to canonicalize.
func genViews(seed int64, n int) []synthView {
	rng := rand.New(rand.NewSource(seed))
	views := make([]synthView, n)
	for i := range views {
		pathLen := 2 + rng.Intn(4)
		path := make([]uint32, 0, pathLen+2)
		for j := 0; j < pathLen; j++ {
			asn := uint32(100 + rng.Intn(400))
			path = append(path, asn)
			if rng.Intn(5) == 0 { // prepend
				path = append(path, asn)
			}
		}
		nc := rng.Intn(4)
		comms := make(bgp.Communities, 0, nc+1)
		for j := 0; j < nc; j++ {
			c := bgp.NewCommunity(uint16(100+rng.Intn(50)), uint16(rng.Intn(300)))
			comms = append(comms, c)
			if rng.Intn(6) == 0 { // duplicate
				comms = append(comms, c)
			}
		}
		v := synthView{vp: uint32(1 + rng.Intn(30)), path: path, comms: comms}
		if rng.Intn(10) == 0 {
			v.large = bgp.LargeCommunities{{GlobalAdmin: uint32(rng.Intn(5)), LocalData1: 1, LocalData2: uint32(rng.Intn(3))}}
		}
		views[i] = v
	}
	return views
}

// dumpStore renders a store's full logical content in canonical order:
// one line per tuple with the path key, the communities and the VPs,
// plus the large-community set.
func dumpStore(ts *TupleStore) []string {
	lines := make([]string, 0, len(ts.tuples)+len(ts.large))
	for i := range ts.tuples {
		t := &ts.tuples[i]
		lines = append(lines, fmt.Sprintf("t %x %v %v %v", ts.pathKeys[t.PathID], ts.Path(t.PathID).ASNs, ts.TupleComms(t), ts.TupleVPs(t)))
	}
	larges := make([]string, 0, len(ts.large))
	for lc := range ts.large {
		larges = append(larges, "l "+lc.String())
	}
	sortStrings(larges)
	return append(lines, larges...)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// sortedDump is dumpStore with the tuple lines also sorted, for
// comparing stores that may order tuples differently (sequential
// insertion order vs canonical merge order).
func sortedDump(ts *TupleStore) []string {
	d := dumpStore(ts)
	sortStrings(d)
	return d
}

func equalDumps(t *testing.T, a, b []string, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d lines vs %d lines", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: line %d differs:\n  %s\n  %s", label, i, a[i], b[i])
		}
	}
}

// TestShardedMergeMatchesSequential: the merged sharded store holds
// exactly the tuples, paths, VPs and large communities of a sequential
// TupleStore fed the same views, for several shard counts.
func TestShardedMergeMatchesSequential(t *testing.T) {
	views := genViews(1, 5000)
	seq := NewTupleStore()
	for _, v := range views {
		seq.AddView(v.vp, v.path, v.comms)
		seq.NoteLarge(v.large)
	}
	for _, shards := range []int{1, 2, 7, 64} {
		sts := NewShardedTupleStore(shards)
		for _, v := range views {
			sts.AddView(v.vp, v.path, v.comms)
			sts.NoteLarge(v.large)
		}
		if got, want := sts.Len(), seq.Len(); got != want {
			t.Fatalf("shards=%d: Len=%d, want %d", shards, got, want)
		}
		// Odd shard counts exercise the deprecated Merge wrapper; the
		// rest call Stitch directly with a worker count that differs
		// from the shard count.
		var merged *TupleStore
		if shards%2 == 1 {
			merged = sts.Merge()
		} else {
			merged = sts.Stitch(3)
		}
		if merged.PathCount() != seq.PathCount() {
			t.Fatalf("shards=%d: PathCount=%d, want %d", shards, merged.PathCount(), seq.PathCount())
		}
		if merged.LargeCommunityCount() != seq.LargeCommunityCount() {
			t.Fatalf("shards=%d: LargeCommunityCount=%d, want %d", shards, merged.LargeCommunityCount(), seq.LargeCommunityCount())
		}
		equalDumps(t, sortedDump(merged), sortedDump(seq), fmt.Sprintf("shards=%d vs sequential", shards))
	}
}

// TestShardedMergeDeterministic: the merged store is byte-identical —
// including path-ID assignment and tuple order — no matter how many
// goroutines fed it or in what order the views arrived.
func TestShardedMergeDeterministic(t *testing.T) {
	views := genViews(2, 4000)
	var reference []string
	for _, writers := range []int{1, 2, 8} {
		sts := NewShardedTupleStore(16)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Stripe the views so each goroutine interleaves over the
				// whole range, maximizing cross-shard contention.
				for i := w; i < len(views); i += writers {
					v := views[i]
					sts.AddView(v.vp, v.path, v.comms)
					sts.NoteLarge(v.large)
				}
			}(w)
		}
		wg.Wait()
		// Stitch with as many workers as writers: determinism must hold
		// across both the feeding and the stitching parallelism.
		dump := dumpStore(sts.Stitch(writers))
		if reference == nil {
			reference = dump
			continue
		}
		equalDumps(t, dump, reference, fmt.Sprintf("writers=%d vs writers=1", writers))
	}
}

// TestShardedStoreRace hammers one store from many goroutines; run
// under -race it proves the locking is sound.
func TestShardedStoreRace(t *testing.T) {
	views := genViews(3, 2000)
	sts := NewShardedTupleStore(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(views); i += 8 {
				v := views[i]
				sts.AddView(v.vp, v.path, v.comms)
				sts.NoteLarge(v.large)
			}
		}(w)
	}
	// Concurrent readers of the aggregate length.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = sts.Len()
			}
		}()
	}
	wg.Wait()
	if sts.Len() == 0 {
		t.Fatal("store empty after concurrent load")
	}
}

// TestShardCountsRounding: shard counts round up to powers of two and
// degenerate inputs still work.
func TestShardCountsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-1, 1}, {0, 1}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		if got := NewShardedTupleStore(tc.in).Shards(); got != tc.want {
			t.Errorf("NewShardedTupleStore(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

package core

import (
	"slices"

	"bgpintent/internal/bgp"
)

// RelLookup resolves inferred AS relationships (satisfied by
// asrel.Graph).
type RelLookup interface {
	IsCustomerOf(customer, provider uint32) bool
	IsPeer(a, b uint32) bool
}

// CustPeerStats counts, for one community α:β over unique on-path AS
// paths, how often the AS after α in the path (the neighbor α learned
// the route from) is an inferred customer versus peer of α — the §5.1
// customer:peer feature of Figure 7.
type CustPeerStats struct {
	Comm     bgp.Community
	Customer int
	Peer     int
}

// Ratio is the customer:peer ratio with the denominator clamped to one.
func (cp CustPeerStats) Ratio() float64 {
	peer := cp.Peer
	if peer == 0 {
		peer = 1
	}
	return float64(cp.Customer) / float64(peer)
}

// CustomerPeer computes customer:peer statistics for every observed
// community, using the same VP filtering as Observe.
func CustomerPeer(ts *TupleStore, opts Options, rels RelLookup) map[bgp.Community]*CustPeerStats {
	out := make(map[bgp.Community]*CustPeerStats)
	commPaths := make(map[bgp.Community][]int32)
	tuples := ts.Tuples()
	for i := range tuples {
		t := &tuples[i]
		if opts.VPFilter != nil && !anyVP(ts.TupleVPs(t), opts.VPFilter) {
			continue
		}
		for _, c := range ts.TupleComms(t) {
			commPaths[c] = append(commPaths[c], t.PathID)
		}
	}
	for c, ids := range commPaths {
		slices.Sort(ids)
		alpha := uint32(c.ASN())
		st := &CustPeerStats{Comm: c}
		var prev int32 = -1
		for _, id := range ids {
			if id == prev {
				continue
			}
			prev = id
			asns := ts.Path(id).ASNs
			for i, asn := range asns {
				if asn != alpha || i+1 >= len(asns) {
					continue
				}
				next := asns[i+1]
				switch {
				case rels.IsCustomerOf(next, alpha):
					st.Customer++
				case rels.IsPeer(next, alpha):
					st.Peer++
				}
				break
			}
		}
		if st.Customer+st.Peer > 0 {
			out[c] = st
		}
	}
	return out
}

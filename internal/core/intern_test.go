package core

import (
	"slices"
	"sync"
	"testing"

	"bgpintent/internal/bgp"
)

// TestCommInternConcurrent hammers one intern table from many
// goroutines with overlapping community lists and verifies the exact-
// identity contract: every interning of the same canonical list, from
// any goroutine at any time, yields the same ref, and the ref resolves
// to the list's contents. Run under -race this also exercises the
// lock-free probe against concurrent inserts and table growth.
func TestCommInternConcurrent(t *testing.T) {
	const (
		goroutines = 8
		lists      = 3000 // overlapping across goroutines; forces several grows
		rounds     = 3
	)
	mk := func(i int) bgp.Communities {
		return bgp.Communities{
			bgp.NewCommunity(uint16(i%500), uint16(i)),
			bgp.NewCommunity(uint16(i%500)+1, uint16(i/2)),
		}.Canonical()
	}
	var ci commIntern
	refs := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			got := make([]uint64, lists)
			for r := 0; r < rounds; r++ {
				for i := 0; i < lists; i++ {
					// Each goroutine starts at its own position so inserts
					// interleave instead of racing on the same first list.
					j := (i + g*lists/goroutines) % lists
					ref := ci.intern(mk(j))
					if r == 0 && got[j] == 0 {
						got[j] = ref
					} else if got[j] != ref {
						t.Errorf("g%d list %d: ref changed %#x -> %#x", g, j, got[j], ref)
						return
					}
				}
			}
			refs[g] = got
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for g := 1; g < goroutines; g++ {
		for i := range refs[g] {
			if refs[g][i] != refs[0][i] {
				t.Fatalf("list %d: goroutines disagree on ref: %#x vs %#x", i, refs[0][i], refs[g][i])
			}
		}
	}
	for i := 0; i < lists; i++ {
		off, n := unpackRef(refs[0][i])
		if got, want := ci.view(off, n), mk(i); !commsEqual(got, want) {
			t.Fatalf("list %d: view %v, want %v", i, got, want)
		}
	}
}

// TestCommInternEmptyList pins the empty-list convention: ref 0, never
// stored, resolving to an empty view.
func TestCommInternEmptyList(t *testing.T) {
	var ci commIntern
	if ref := ci.intern(nil); ref != 0 {
		t.Fatalf("intern(nil) = %#x, want 0", ref)
	}
	if ref := ci.intern(bgp.Communities{}); ref != 0 {
		t.Fatalf("intern(empty) = %#x, want 0", ref)
	}
	if v := ci.view(0, 0); len(v) != 0 {
		t.Fatalf("view of ref 0 = %v, want empty", v)
	}
}

// TestCommInternDupZeroAlloc guards the intern hot path: re-interning
// a list already in the table — the overwhelmingly common case at
// steady state — must not allocate.
func TestCommInternDupZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items; alloc counts are noise")
	}
	var ci commIntern
	canon := bgp.Communities{bgp.NewCommunity(1299, 100), bgp.NewCommunity(1299, 2569)}
	want := ci.intern(canon)
	var ref uint64
	if avg := testing.AllocsPerRun(200, func() {
		ref = ci.intern(canon)
	}); avg != 0 {
		t.Errorf("duplicate intern allocates %.1f per run, want 0", avg)
	}
	if ref != want {
		t.Fatalf("duplicate intern returned %#x, want %#x", ref, want)
	}
}

// TestShardedAddViewDupZeroAlloc is the sharded-store counterpart of
// TestAddViewDuplicateHitZeroAlloc: with the shared intern table and
// ASN arena in the path, a duplicate observation must still be
// allocation-free end to end (path-key render, shard routing, intern
// probe, VP binary search).
func TestShardedAddViewDupZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items; alloc counts are noise")
	}
	sts := NewShardedTupleStore(8)
	path := []uint32{65269, 7018, 1299, 64496}
	comms := bgp.Communities{bgp.NewCommunity(1299, 2569), bgp.NewCommunity(1299, 100)}
	sts.AddView(65269, path, comms)
	// Pre-grow the VP list past the guarded runs so growVPs relocation
	// (amortized-free, not per-call-free) never fires under the meter.
	for vp := uint32(1); vp <= 64; vp++ {
		sts.AddView(vp, path, comms)
	}

	if avg := testing.AllocsPerRun(200, func() {
		sts.AddView(65269, path, comms)
	}); avg != 0 {
		t.Errorf("sharded AddView duplicate hit allocates %.1f per run, want 0", avg)
	}

	messy := bgp.Communities{bgp.NewCommunity(1299, 100), bgp.NewCommunity(1299, 2569), bgp.NewCommunity(1299, 100)}
	if avg := testing.AllocsPerRun(200, func() {
		sts.AddView(65269, path, messy)
	}); avg != 0 {
		t.Errorf("sharded AddView with messy comms allocates %.1f per run, want 0", avg)
	}
}

// TestSharedArenaOffsets exercises chunk-boundary placement: lists that
// do not fit in the current chunk's tail start a fresh chunk, and every
// returned span resolves to the exact values appended.
func TestSharedArenaOffsets(t *testing.T) {
	var a sharedArena[uint32]
	type appended struct {
		off  uint32
		vals []uint32
	}
	var all []appended
	// Large appends force chunk turnover quickly (chunk = 1<<20 elems).
	big := make([]uint32, internChunkSize/2+1)
	for round := 0; round < 5; round++ {
		for i := range big {
			big[i] = uint32(round*len(big) + i)
		}
		vals := append([]uint32(nil), big...)
		all = append(all, appended{off: a.append(vals), vals: vals})
		small := []uint32{uint32(round), uint32(round + 1)}
		all = append(all, appended{off: a.append(small), vals: small})
	}
	for i, ap := range all {
		got := a.view(ap.off, uint32(len(ap.vals)))
		if len(got) != len(ap.vals) {
			t.Fatalf("append %d: view length %d, want %d", i, len(got), len(ap.vals))
		}
		for j := range got {
			if got[j] != ap.vals[j] {
				t.Fatalf("append %d: view[%d] = %d, want %d", i, j, got[j], ap.vals[j])
			}
		}
	}
}

// TestStitchStoreStillAcceptsViews pins the lazy reindex: a stitched
// store can keep ingesting (the live window path appends to a merged
// store), deduplicating against the stitched contents.
func TestStitchStoreStillAcceptsViews(t *testing.T) {
	sts := NewShardedTupleStore(4)
	for i := 0; i < 50; i++ {
		path := []uint32{uint32(100 + i%7), 7018, uint32(200 + i)}
		comms := bgp.Communities{bgp.NewCommunity(uint16(100+i%7), uint16(i))}
		sts.AddView(uint32(1+i%3), path, comms)
	}
	ts := sts.Stitch(2)
	nTuples, nPaths := ts.Len(), ts.PathCount()

	// Exact duplicate of an existing observation: nothing may grow.
	dupPath := []uint32{uint32(100), 7018, uint32(200)}
	dupComms := bgp.Communities{bgp.NewCommunity(100, 0)}
	ts.AddView(1, dupPath, dupComms)
	if ts.Len() != nTuples || ts.PathCount() != nPaths {
		t.Fatalf("duplicate AddView grew stitched store: %d/%d -> %d/%d",
			nTuples, nPaths, ts.Len(), ts.PathCount())
	}
	// New vantage point on the same tuple: tuple count stable.
	ts.AddView(99, dupPath, dupComms)
	if ts.Len() != nTuples {
		t.Fatalf("new-VP AddView grew tuple count: %d -> %d", nTuples, ts.Len())
	}
	// Genuinely new tuple and path.
	ts.AddView(1, []uint32{9999, 8888}, bgp.Communities{bgp.NewCommunity(9999, 1)})
	if ts.Len() != nTuples+1 || ts.PathCount() != nPaths+1 {
		t.Fatalf("new tuple not appended: %d/%d, want %d/%d",
			ts.Len(), ts.PathCount(), nTuples+1, nPaths+1)
	}
	if got := ts.LargeCommunityCount(); got != 0 {
		t.Fatalf("unexpected large communities: %d", got)
	}
}

// TestStitchWorkerCounts checks Stitch itself is deterministic in its
// own parallelism knob (the shards are fixed work items; only their
// processing interleaves).
func TestStitchWorkerCounts(t *testing.T) {
	build := func() *ShardedTupleStore {
		sts := NewShardedTupleStore(16)
		for i := 0; i < 400; i++ {
			path := []uint32{uint32(100 + i%31), uint32(1 + i%13), uint32(500 + i%97)}
			comms := bgp.Communities{
				bgp.NewCommunity(uint16(100+i%31), uint16(i%50)),
				bgp.NewCommunity(uint16(1+i%13), uint16(i%20)),
			}
			sts.AddView(uint32(1+i%9), path, comms)
		}
		return sts
	}
	ref := dumpStore(build().Stitch(1))
	for _, workers := range []int{2, 4, 8} {
		if got := dumpStore(build().Stitch(workers)); !slices.Equal(got, ref) {
			t.Fatalf("Stitch(%d) differs from Stitch(1)", workers)
		}
	}
}

package core

import (
	"fmt"
	"testing"

	"bgpintent/internal/asrel"
	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
	"bgpintent/internal/simulate"
	"bgpintent/internal/topology"
)

func c(asn, val uint16) bgp.Community { return bgp.NewCommunity(asn, val) }

func TestTupleStoreDedup(t *testing.T) {
	ts := NewTupleStore()
	path := []uint32{65269, 7018, 1299, 64496}
	comms := bgp.Communities{c(1299, 2569), c(1299, 100)}

	ts.AddView(65269, path, comms)
	ts.AddView(65269, path, bgp.Communities{c(1299, 100), c(1299, 2569)}) // same, reordered
	if ts.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ts.Len())
	}
	ts.AddView(65270, path, comms) // same tuple from a second VP
	if ts.Len() != 1 {
		t.Fatalf("Len after second VP = %d, want 1", ts.Len())
	}
	if vps := ts.TupleVPs(&ts.Tuples()[0]); len(vps) != 2 || vps[0] != 65269 || vps[1] != 65270 {
		t.Errorf("VPs = %v", vps)
	}
	// Different communities: a new tuple, same interned path.
	ts.AddView(65269, path, bgp.Communities{c(1299, 2569)})
	if ts.Len() != 2 || ts.PathCount() != 1 {
		t.Errorf("Len = %d PathCount = %d", ts.Len(), ts.PathCount())
	}
	// Prepending collapses into the same path.
	ts.AddView(65269, []uint32{65269, 7018, 7018, 7018, 1299, 64496}, comms)
	if ts.PathCount() != 1 {
		t.Errorf("PathCount after prepended variant = %d, want 1", ts.PathCount())
	}
	// Empty paths are ignored.
	ts.AddView(1, nil, comms)
	if ts.Len() != 2 {
		t.Errorf("empty path added a tuple")
	}
}

func TestTupleStoreAccessors(t *testing.T) {
	ts := NewTupleStore()
	ts.AddView(10, []uint32{10, 20, 30}, bgp.Communities{c(20, 5)})
	ts.AddView(11, []uint32{11, 20, 30}, bgp.Communities{c(20, 5), c(30, 7)})
	if got := ts.VPSet(); len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Errorf("VPSet = %v", got)
	}
	if got := ts.Communities(); len(got) != 2 || got[0] != c(20, 5) || got[1] != c(30, 7) {
		t.Errorf("Communities = %v", got)
	}
}

func TestClusterIndexes(t *testing.T) {
	tests := []struct {
		betas []uint16
		gap   int
		want  [][2]int
	}{
		{nil, 140, nil},
		{[]uint16{5}, 140, [][2]int{{0, 1}}},
		{[]uint16{1, 2, 3}, 0, [][2]int{{0, 1}, {1, 2}, {2, 3}}}, // no clustering
		{[]uint16{1, 2, 300}, 140, [][2]int{{0, 2}, {2, 3}}},
		// 141-1 = 140 stays together; 282-141 = 141 > 140 splits.
		{[]uint16{1, 141, 282}, 140, [][2]int{{0, 2}, {2, 3}}},
	}
	for _, tc := range tests {
		got := clusterIndexes(tc.betas, tc.gap)
		if len(got) != len(tc.want) {
			t.Errorf("clusterIndexes(%v, %d) = %v, want %v", tc.betas, tc.gap, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("clusterIndexes(%v, %d)[%d] = %v, want %v", tc.betas, tc.gap, i, got[i], tc.want[i])
			}
		}
	}
}

// buildSyntheticStore creates a corpus with known properties:
//   - 100:10..12 — info communities of AS100, always on-path
//   - 100:500..502 — action communities of AS100, mostly off-path
//   - 65001:7 — private α
//   - 900:5 — AS900 never appears in any path (route server)
func buildSyntheticStore() *TupleStore {
	ts := NewTupleStore()
	// 30 distinct paths through AS100 carrying its info communities.
	for i := 0; i < 30; i++ {
		vp := uint32(1000 + i)
		path := []uint32{vp, 100, uint32(2000 + i)}
		ts.AddView(vp, path, bgp.Communities{c(100, 10), c(100, uint16(10+i%3))})
	}
	// Action communities: 5 on-path, 25 off-path observations.
	for i := 0; i < 5; i++ {
		vp := uint32(1100 + i)
		path := []uint32{vp, 100, uint32(2100 + i)}
		ts.AddView(vp, path, bgp.Communities{c(100, uint16(500+i%3))})
	}
	for i := 0; i < 25; i++ {
		vp := uint32(1200 + i)
		path := []uint32{vp, 300, uint32(2200 + i)}
		ts.AddView(vp, path, bgp.Communities{c(100, uint16(500+i%3))})
	}
	// Private-α and never-on-path communities ride existing paths.
	ts.AddView(1200, []uint32{1200, 300, 2200}, bgp.Communities{c(65001, 7)})
	ts.AddView(1200, []uint32{1200, 300, 2200}, bgp.Communities{c(900, 5)})
	return ts
}

func TestClassifySynthetic(t *testing.T) {
	ts := buildSyntheticStore()
	inf := Classify(ts, DefaultOptions())

	for _, v := range []uint16{10, 11, 12} {
		if got := inf.Category(c(100, v)); got != dict.CatInformation {
			t.Errorf("100:%d = %v, want information", v, got)
		}
	}
	for _, v := range []uint16{500, 501, 502} {
		if got := inf.Category(c(100, v)); got != dict.CatAction {
			t.Errorf("100:%d = %v, want action", v, got)
		}
	}
	if got := inf.Excluded[c(65001, 7)]; got != ExcludePrivateASN {
		t.Errorf("65001:7 excluded = %v, want private-asn", got)
	}
	if got := inf.Excluded[c(900, 5)]; got != ExcludeNeverOnPath {
		t.Errorf("900:5 excluded = %v, want never-on-path", got)
	}
	if got := inf.Category(c(65001, 7)); got != dict.CatUnknown {
		t.Errorf("excluded community classified: %v", got)
	}
	action, info := inf.Counts()
	if action != 3 || info != 3 {
		t.Errorf("Counts = %d action, %d info", action, info)
	}
	// The two AS100 clusters must be separate (gap 500-12 > 140).
	var clusters100 int
	for _, cl := range inf.Clusters {
		if cl.Alpha == 100 {
			clusters100++
		}
	}
	if clusters100 != 2 {
		t.Errorf("AS100 clusters = %d, want 2", clusters100)
	}
}

func TestClassifyDisableExclusions(t *testing.T) {
	ts := buildSyntheticStore()
	opts := DefaultOptions()
	opts.DisableExclusions = true
	inf := Classify(ts, opts)
	if len(inf.Excluded) != 0 {
		t.Errorf("exclusions applied despite ablation: %v", inf.Excluded)
	}
	// 900:5 never on-path -> pure off-path -> action (wrong for an RS
	// info community, which is the point of the exclusion rule).
	if got := inf.Category(c(900, 5)); got != dict.CatAction {
		t.Errorf("900:5 = %v under ablation, want action", got)
	}
}

func TestClassifySiblingAware(t *testing.T) {
	ts := NewTupleStore()
	// AS 200 tags with α=100 (its org sibling). AS100 never on path.
	for i := 0; i < 20; i++ {
		vp := uint32(1000 + i)
		ts.AddView(vp, []uint32{vp, 200, uint32(3000 + i)}, bgp.Communities{c(100, 42)})
	}
	orgs := asrel.NewOrgMap()
	orgs.Set(100, "org-x")
	orgs.Set(200, "org-x")

	// Without sibling awareness: α=100 never on-path -> excluded.
	inf := Classify(ts, DefaultOptions())
	if got := inf.Excluded[c(100, 42)]; got != ExcludeNeverOnPath {
		t.Fatalf("without orgs: excluded = %v, want never-on-path", got)
	}

	// With sibling awareness the observations become on-path -> info.
	ts.AnnotateOrgs(orgs)
	opts := DefaultOptions()
	opts.Orgs = orgs
	inf = Classify(ts, opts)
	if got := inf.Category(c(100, 42)); got != dict.CatInformation {
		t.Fatalf("with orgs: 100:42 = %v, want information", got)
	}
}

func TestClassifyVPFilter(t *testing.T) {
	ts := buildSyntheticStore()
	opts := DefaultOptions()
	opts.VPFilter = map[uint32]bool{1000: true, 1001: true}
	inf := Classify(ts, opts)
	// Only info observations remain visible.
	if got := inf.Category(c(100, 10)); got != dict.CatInformation {
		t.Errorf("100:10 = %v", got)
	}
	if _, seen := inf.Labels[c(100, 500)]; seen {
		t.Error("filtered-out community still classified")
	}
}

func TestClassifyNoClusteringChangesSparseLabels(t *testing.T) {
	ts := NewTupleStore()
	// Two action communities in one block: 100:500 well observed with
	// off-path dominance; 100:501 seen once, on-path only (a single-homed
	// customer). Clustering should pull 501 to action; no clustering
	// leaves it information.
	for i := 0; i < 20; i++ {
		vp := uint32(1200 + i)
		ts.AddView(vp, []uint32{vp, 300, 2200}, bgp.Communities{c(100, 500)})
	}
	ts.AddView(1100, []uint32{1100, 100, 2100}, bgp.Communities{c(100, 500)})
	ts.AddView(1101, []uint32{1101, 100, 2101}, bgp.Communities{c(100, 501)})

	clustered := Classify(ts, DefaultOptions())
	if got := clustered.Category(c(100, 501)); got != dict.CatAction {
		t.Errorf("clustered: 100:501 = %v, want action", got)
	}
	opts := DefaultOptions()
	opts.MinGap = 0
	isolated := Classify(ts, opts)
	if got := isolated.Category(c(100, 501)); got != dict.CatInformation {
		t.Errorf("no clustering: 100:501 = %v, want information (pure on-path alone)", got)
	}
}

func TestCustomerPeerSynthetic(t *testing.T) {
	ts := NewTupleStore()
	// Paths where AS100's downstream is 500 (customer) or 600 (peer).
	for i := 0; i < 8; i++ {
		vp := uint32(1000 + i)
		ts.AddView(vp, []uint32{vp, 100, 500, uint32(7000 + i)}, bgp.Communities{c(100, 500)})
	}
	for i := 0; i < 2; i++ {
		vp := uint32(1100 + i)
		ts.AddView(vp, []uint32{vp, 100, 600, uint32(7100 + i)}, bgp.Communities{c(100, 500)})
	}
	g := asrel.NewGraph()
	g.SetP2C(100, 500)
	g.SetP2P(100, 600)

	stats := CustomerPeer(ts, DefaultOptions(), g)
	st := stats[c(100, 500)]
	if st == nil {
		t.Fatal("no stats for 100:500")
	}
	if st.Customer != 8 || st.Peer != 2 {
		t.Errorf("customer/peer = %d/%d, want 8/2", st.Customer, st.Peer)
	}
	if got := st.Ratio(); got != 4.0 {
		t.Errorf("ratio = %v, want 4", got)
	}
}

// corpusAccuracy classifies a simulated corpus and scores it against the
// generator's ground-truth plans over observed, classified communities.
func corpusAccuracy(t *testing.T, days int) (acc float64, classified int) {
	t.Helper()
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate.New(topo, simulate.TinyConfig())
	ts := NewTupleStore()
	for d := 0; d < days; d++ {
		day := sim.RunDay(d)
		for _, v := range day.Views {
			ts.AddView(v.VP, v.Path, v.Comms)
		}
	}
	orgs := asrel.NewOrgMap()
	for orgID, members := range topo.Orgs {
		for _, m := range members {
			orgs.Set(m, fmt.Sprintf("org-%d", orgID))
		}
	}
	ts.AnnotateOrgs(orgs)
	opts := DefaultOptions()
	opts.Orgs = orgs
	inf := Classify(ts, opts)

	correct, wrong := 0, 0
	for comm, got := range inf.Labels {
		a := topo.ASes[uint32(comm.ASN())]
		if a == nil || a.Plan == nil {
			continue
		}
		want := a.Plan.Category(comm.Value())
		if want == dict.CatUnknown {
			continue
		}
		if got == want {
			correct++
		} else {
			wrong++
		}
	}
	if correct+wrong == 0 {
		t.Fatal("no labeled communities to score")
	}
	return float64(correct) / float64(correct+wrong), correct + wrong
}

func TestClassifyAccuracyOnSimulatedCorpus(t *testing.T) {
	acc, n := corpusAccuracy(t, 2)
	t.Logf("accuracy = %.3f over %d communities", acc, n)
	if acc < 0.85 {
		t.Errorf("accuracy = %.3f over %d communities, want >= 0.85", acc, n)
	}
	if n < 100 {
		t.Errorf("only %d communities scored; corpus too sparse", n)
	}
}

func TestVPSweepMatchesObserve(t *testing.T) {
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate.New(topo, simulate.TinyConfig())
	ts := NewTupleStore()
	day := sim.RunDay(0)
	for _, v := range day.Views {
		ts.AddView(v.VP, v.Path, v.Comms)
	}
	orgs := asrel.NewOrgMap()
	for orgID, members := range topo.Orgs {
		for _, m := range members {
			orgs.Set(m, fmt.Sprintf("org-%d", orgID))
		}
	}
	ts.AnnotateOrgs(orgs)
	opts := DefaultOptions()
	opts.Orgs = orgs

	sweep := NewVPSweep(ts, opts)
	all := sweep.VPs()
	subsets := [][]uint32{
		all,     // everything
		all[:1], // single VP
		all[:len(all)/2],
		all[len(all)/2:],
	}
	for si, subset := range subsets {
		fast := sweep.Run(subset)
		filter := make(map[uint32]bool, len(subset))
		for _, vp := range subset {
			filter[vp] = true
		}
		slowOpts := opts
		slowOpts.VPFilter = filter
		slow := Observe(ts, slowOpts)
		if len(fast.Stats) != len(slow.Stats) {
			t.Fatalf("subset %d: %d fast stats vs %d slow", si, len(fast.Stats), len(slow.Stats))
		}
		for comm, want := range slow.Stats {
			got := fast.Stats[comm]
			if got == nil || got.OnPath != want.OnPath || got.OffPath != want.OffPath {
				t.Fatalf("subset %d: %v fast=%+v slow=%+v", si, comm, got, want)
			}
		}
		// Classification must agree too.
		fastInf := ClassifyObserved(fast, opts)
		slowInf := ClassifyObserved(slow, slowOpts)
		if len(fastInf.Labels) != len(slowInf.Labels) {
			t.Fatalf("subset %d: label counts differ: %d vs %d", si, len(fastInf.Labels), len(slowInf.Labels))
		}
		for comm, want := range slowInf.Labels {
			if fastInf.Labels[comm] != want {
				t.Fatalf("subset %d: %v label %v vs %v", si, comm, fastInf.Labels[comm], want)
			}
		}
	}
}

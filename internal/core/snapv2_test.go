package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
	"bgpintent/internal/simulate"
	"bgpintent/internal/topology"
)

// writeV2 serializes inf into the flat v2 layout.
func writeV2(t *testing.T, inf *Inferences, meta SnapshotMeta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshotV2(&buf, inf, meta); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openMapped writes data to a temp file and memory-maps it.
func openMapped(t *testing.T, data []byte) *Mapped {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenSnapshotMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// simInferences classifies a full synthetic day — a corpus large
// enough to exercise multi-cluster ASes and every exclusion kind.
func simInferences(t testing.TB) (*TupleStore, *Inferences) {
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate.New(topo, simulate.TinyConfig())
	ts := NewTupleStore()
	for _, v := range sim.RunDay(0).Views {
		ts.AddView(v.VP, v.Path, v.Comms)
	}
	return ts, Classify(ts, DefaultOptions())
}

// TestSnapshotV2VerdictEquivalence is the byte-level contract: every
// community's verdict through the mmap path must equal the heap
// path's, on both the hand-built and the simulated corpus.
func TestSnapshotV2VerdictEquivalence(t *testing.T) {
	check := func(t *testing.T, ts *TupleStore, inf *Inferences) {
		t.Helper()
		meta := SnapshotMeta{CreatedUnix: 1714521600, Source: "v2-test"}
		m := openMapped(t, writeV2(t, inf, meta))
		if m.Meta() != meta {
			t.Fatalf("meta = %+v, want %+v", m.Meta(), meta)
		}
		probes := append([]bgp.Community{}, ts.Communities()...)
		probes = append(probes, bgp.NewCommunity(4242, 4242)) // unobserved
		for _, c := range probes {
			if hv, mv := inf.Verdict(c), m.Verdict(c); hv != mv {
				t.Fatalf("Verdict(%v): heap %+v, mmap %+v", c, hv, mv)
			}
			if hc, mc := inf.Category(c), m.Category(c); hc != mc {
				t.Fatalf("Category(%v): heap %v, mmap %v", c, hc, mc)
			}
		}
		if h, mm := inf.Observed(), m.Observed(); h != mm {
			t.Fatalf("Observed: heap %d, mmap %d", h, mm)
		}
		ha, hi := inf.Counts()
		ma, mi := m.Counts()
		if ha != ma || hi != mi {
			t.Fatalf("Counts: heap (%d,%d), mmap (%d,%d)", ha, hi, ma, mi)
		}
		if h, mm := inf.ExcludedCount(), m.ExcludedCount(); h != mm {
			t.Fatalf("ExcludedCount: heap %d, mmap %d", h, mm)
		}
		if h, mm := inf.ClusterCount(), m.ClusterCount(); h != mm {
			t.Fatalf("ClusterCount: heap %d, mmap %d", h, mm)
		}
		if h, mm := inf.Options(), m.Options(); h.MinGap != mm.MinGap ||
			h.RatioThreshold != mm.RatioThreshold || h.DisableExclusions != mm.DisableExclusions {
			t.Fatalf("Options: heap %+v, mmap %+v", h, mm)
		}
		// Labeled sets match (heap iterates a map, so compare as sets).
		hl := map[bgp.Community]dict.Category{}
		inf.EachLabeled(func(c bgp.Community, cat dict.Category) bool { hl[c] = cat; return true })
		n := 0
		m.EachLabeled(func(c bgp.Community, cat dict.Category) bool {
			n++
			if got, ok := hl[c]; !ok || got != cat {
				t.Fatalf("EachLabeled(%v)=%d, heap has %d (present=%v)", c, cat, got, ok)
			}
			return true
		})
		if n != len(hl) {
			t.Fatalf("EachLabeled yielded %d communities, heap has %d", n, len(hl))
		}
		// Cluster summaries match index-for-index: both sides sort by
		// (alpha, lo).
		for i := 0; i < inf.ClusterCount(); i++ {
			if h, mm := inf.ClusterSummaryAt(i), m.ClusterSummaryAt(i); h != mm {
				t.Fatalf("ClusterSummaryAt(%d): heap %+v, mmap %+v", i, h, mm)
			}
		}
	}
	t.Run("hand-built", func(t *testing.T) {
		ts, inf := buildTestInferences(t)
		check(t, ts, inf)
	})
	t.Run("simulated", func(t *testing.T) {
		ts, inf := simInferences(t)
		check(t, ts, inf)
	})
}

// TestSnapshotV2Materialize round-trips a v2 stream back onto the heap
// through the version-dispatching ReadSnapshot.
func TestSnapshotV2Materialize(t *testing.T) {
	_, inf := simInferences(t)
	meta := SnapshotMeta{CreatedUnix: 1714521600, Source: "v2-test", Communities: 4}
	data := writeV2(t, inf, meta)

	gotMeta, err := ReadSnapshotMeta(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}

	got, gotMeta2, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta2 != meta {
		t.Fatalf("ReadSnapshot meta = %+v, want %+v", gotMeta2, meta)
	}
	if !reflect.DeepEqual(got.Labels, inf.Labels) {
		t.Fatal("labels differ after v2 materialize")
	}
	if !reflect.DeepEqual(got.Clusters, inf.Clusters) {
		t.Fatal("clusters differ after v2 materialize")
	}
	if !reflect.DeepEqual(got.Excluded, inf.Excluded) {
		t.Fatalf("exclusions differ after v2 materialize: got %v want %v", got.Excluded, inf.Excluded)
	}
	// Rebuilt index answers the full verdict, evidence included.
	for c := range inf.Labels {
		if a, b := inf.Verdict(c), got.Verdict(c); a != b {
			t.Fatalf("Verdict(%v) differs after materialize: %+v vs %+v", c, a, b)
		}
	}
}

// TestSnapshotV2Deterministic: identical inferences, identical bytes —
// the property the replica's content-hash poll gate relies on.
func TestSnapshotV2Deterministic(t *testing.T) {
	_, inf := simInferences(t)
	meta := SnapshotMeta{CreatedUnix: 1714521600, Source: "det"}
	a := writeV2(t, inf, meta)
	b := writeV2(t, inf, meta)
	if !bytes.Equal(a, b) {
		t.Fatal("v2 snapshot bytes are not deterministic")
	}
}

// TestSnapshotV2CorruptionDetected: structural damage fails the O(1)
// open; payload damage is caught by the deep verifier (open stays
// cheap by design and does not hash every arena).
func TestSnapshotV2CorruptionDetected(t *testing.T) {
	_, inf := buildTestInferences(t)
	good := writeV2(t, inf, SnapshotMeta{Source: "corrupt-test"})
	if err := VerifySnapshotV2(good); err != nil {
		t.Fatalf("pristine snapshot fails verify: %v", err)
	}

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	parse := func(b []byte) error {
		_, err := parseSnapshotV2(b)
		return err
	}

	if err := parse(mutate(func(b []byte) { b[0] = 'X' })); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := parse(mutate(func(b []byte) { b[9] = 99 })); err == nil {
		t.Fatal("future version accepted")
	}
	if err := parse(good[:len(good)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// Corrupt the section table (byte past the 32-byte header): the
	// table CRC is part of the O(1) open.
	if err := parse(mutate(func(b []byte) { b[v2HeaderLen+8] ^= 0xff })); err == nil {
		t.Fatal("corrupt section table accepted")
	}
	// Flip a byte in the last arena: open may accept it (deferred
	// hashing), but the deep verifier must not.
	payload := mutate(func(b []byte) { b[len(b)-4] ^= 0xff })
	if err := VerifySnapshotV2(payload); err == nil {
		t.Fatal("corrupt arena passed deep verification")
	}
	// And the streaming reader (which verifies) must reject it too.
	if _, _, err := ReadSnapshot(bytes.NewReader(payload)); err == nil {
		t.Fatal("corrupt arena accepted by ReadSnapshot")
	}
}

// TestOpenSnapshotMmapFast: opening is O(1) in corpus size — the whole
// point of the flat layout. 10ms is generous (the budget covers CI
// noise); a linear open would blow through it as corpora grow.
func TestOpenSnapshotMmapFast(t *testing.T) {
	_, inf := simInferences(t)
	path := filepath.Join(t.TempDir(), "fast.snap")
	var buf bytes.Buffer
	if err := WriteSnapshotV2(&buf, inf, SnapshotMeta{Source: "fast"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	best := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		start := time.Now()
		m, err := OpenSnapshotMmap(path)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		m.Close()
	}
	if best > 10*time.Millisecond {
		t.Errorf("OpenSnapshotMmap best-of-3 = %v, want < 10ms", best)
	}
}

// TestMappedVerdictZeroAlloc guards the replica hot path: answering a
// lookup straight off the mapped pages must not allocate.
func TestMappedVerdictZeroAlloc(t *testing.T) {
	ts, inf := simInferences(t)
	m := openMapped(t, writeV2(t, inf, SnapshotMeta{}))
	comms := ts.Communities()
	if len(comms) == 0 {
		t.Fatal("no communities")
	}
	unobserved := bgp.NewCommunity(64999, 64999)
	var sink Verdict
	if avg := testing.AllocsPerRun(200, func() {
		for _, c := range comms {
			sink = m.Verdict(c)
		}
		sink = m.Verdict(unobserved)
	}); avg != 0 {
		t.Errorf("Mapped.Verdict allocates %.2f per run, want 0", avg)
	}
	_ = sink
}

// TestMappedClusterQueries covers the navigation the facade's
// ClustersFor and member listing use.
func TestMappedClusterQueries(t *testing.T) {
	_, inf := simInferences(t)
	m := openMapped(t, writeV2(t, inf, SnapshotMeta{}))

	// Group heap clusters by alpha for comparison.
	byAlpha := map[uint16][]ClusterSummary{}
	for i := 0; i < inf.ClusterCount(); i++ {
		cs := inf.ClusterSummaryAt(i)
		byAlpha[cs.Alpha] = append(byAlpha[cs.Alpha], cs)
	}
	seen := 0
	for alpha, want := range byAlpha {
		lo, hi := m.AlphaClusters(alpha)
		if hi-lo != len(want) {
			t.Fatalf("AlphaClusters(%d) spans %d clusters, want %d", alpha, hi-lo, len(want))
		}
		for i := lo; i < hi; i++ {
			cs := m.ClusterSummaryAt(i)
			if cs.Alpha != alpha {
				t.Fatalf("cluster %d has alpha %d, want %d", i, cs.Alpha, alpha)
			}
			members := m.ClusterMembers(i)
			if len(members) != cs.Size {
				t.Fatalf("cluster %d: %d members, want %d", i, len(members), cs.Size)
			}
			for _, mc := range members {
				if mc.Comm.ASN() != alpha || mc.Comm.Value() < cs.Lo || mc.Comm.Value() > cs.Hi {
					t.Fatalf("member %v outside cluster [%d, %d:%d]", mc.Comm, alpha, cs.Lo, cs.Hi)
				}
			}
			seen++
		}
	}
	if seen != m.ClusterCount() {
		t.Fatalf("alpha sweep visited %d clusters, index has %d", seen, m.ClusterCount())
	}
	// An alpha with no clusters yields an empty range.
	if lo, hi := m.AlphaClusters(64999); lo != hi {
		t.Fatalf("AlphaClusters(64999) = [%d,%d), want empty", lo, hi)
	}
}

//go:build !unix

package core

import (
	"fmt"
	"io"
	"os"
)

// mmapFile on platforms without a usable mmap syscall reads the whole
// file into the heap. Queries behave identically; only the shared-
// page-cache property is lost, which Mapped.Mmapped reports.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size != int64(int(size)) {
		return nil, false, fmt.Errorf("file too large to read (%d bytes)", size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// munmapFile is a no-op for heap-backed views; the GC owns the buffer.
func munmapFile(data []byte) error { return nil }

package core

import (
	"testing"

	"bgpintent/internal/bgp"
	"bgpintent/internal/simulate"
	"bgpintent/internal/topology"
)

// TestAddViewDuplicateHitZeroAlloc guards the arena layout's core
// promise: once a (path, communities) tuple exists, re-observing it —
// even from a new vantage point with room in the VP list — allocates
// nothing. A regression here silently reintroduces the per-view churn
// the columnar store exists to eliminate.
func TestAddViewDuplicateHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items; alloc counts are noise")
	}
	ts := NewTupleStore()
	path := []uint32{65269, 7018, 1299, 64496}
	comms := bgp.Communities{bgp.NewCommunity(1299, 2569), bgp.NewCommunity(1299, 100)}
	ts.AddView(65269, path, comms)
	// Pre-grow the VP list so the guarded runs never trip a growVPs
	// relocation (growth is amortized-free, not per-call-free).
	for vp := uint32(1); vp <= 64; vp++ {
		ts.AddView(vp, path, comms)
	}

	if avg := testing.AllocsPerRun(200, func() {
		ts.AddView(65269, path, comms) // exact duplicate: VP already present
	}); avg != 0 {
		t.Errorf("AddView duplicate hit allocates %.1f per run, want 0", avg)
	}

	// Unsorted/duplicated community input still canonicalizes into the
	// pooled scratch without allocating.
	messy := bgp.Communities{bgp.NewCommunity(1299, 100), bgp.NewCommunity(1299, 2569), bgp.NewCommunity(1299, 100)}
	if avg := testing.AllocsPerRun(200, func() {
		ts.AddView(65269, path, messy)
	}); avg != 0 {
		t.Errorf("AddView with messy comms allocates %.1f per run, want 0", avg)
	}
}

// TestLookupZeroAlloc guards the serving hot path: Inferences.Lookup is
// called per query by intentd and must stay allocation-free.
func TestLookupZeroAlloc(t *testing.T) {
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate.New(topo, simulate.TinyConfig())
	ts := NewTupleStore()
	for _, v := range sim.RunDay(0).Views {
		ts.AddView(v.VP, v.Path, v.Comms)
	}
	inf := Classify(ts, DefaultOptions())
	comms := ts.Communities()
	if len(comms) == 0 {
		t.Fatal("no communities in corpus")
	}
	unobserved := bgp.NewCommunity(64999, 64999)
	var sink Lookup
	if avg := testing.AllocsPerRun(200, func() {
		for _, c := range comms {
			sink = inf.Lookup(c)
		}
		sink = inf.Lookup(unobserved)
	}); avg != 0 {
		t.Errorf("Lookup allocates %.2f per run, want 0", avg)
	}
	_ = sink
}

package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"bgpintent/internal/bgp"
)

// fuzzSeeds builds the corpus the fuzzer mutates from: a valid v1
// snapshot, a valid v2 snapshot, a v2 with a corrupted section table,
// and a v2 with a truncated arena — the failure classes the replica
// path must survive when an origin serves torn or damaged bytes.
func fuzzSeeds(f *testing.F) {
	ts := NewTupleStore()
	ts.AddView(900, []uint32{900, 100, 200}, []bgp.Community{bgp.NewCommunity(100, 10)})
	ts.AddView(901, []uint32{901, 300, 400}, []bgp.Community{
		bgp.NewCommunity(100, 9000),
		bgp.NewCommunity(64512, 77),
		bgp.NewCommunity(500, 1),
	})
	inf := Classify(ts, Options{MinGap: 140, RatioThreshold: 160})
	meta := SnapshotMeta{CreatedUnix: 1714521600, Source: "fuzz"}

	var v1 bytes.Buffer
	if err := WriteSnapshot(&v1, inf, meta); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())

	var v2 bytes.Buffer
	if err := WriteSnapshotV2(&v2, inf, meta); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())

	// Corrupt section table: flip an entry's offset field.
	corrupt := append([]byte(nil), v2.Bytes()...)
	if len(corrupt) > v2HeaderLen+16 {
		corrupt[v2HeaderLen+8] ^= 0xff
	}
	f.Add(corrupt)

	// Truncated arena: file size claims more than is present.
	truncated := append([]byte(nil), v2.Bytes()...)
	truncated = truncated[:len(truncated)-v2LookupRecLen]
	f.Add(truncated)

	// Inflated section count with a plausible header.
	inflated := append([]byte(nil), v2.Bytes()...)
	binary.LittleEndian.PutUint32(inflated[24:], v2MaxSections)
	f.Add(inflated)

	f.Add([]byte("BGPINTSNP"))
	f.Add([]byte{})
}

// FuzzReadSnapshot asserts the snapshot readers never panic on
// arbitrary input: they either return an error or a usable result. The
// accessors of an accepted v2 payload are exercised too, since the
// mmap path defers payload validation to access time.
func FuzzReadSnapshot(f *testing.F) {
	fuzzSeeds(f)
	probes := []bgp.Community{
		bgp.NewCommunity(100, 10), bgp.NewCommunity(100, 9000),
		bgp.NewCommunity(64512, 77), bgp.NewCommunity(500, 1),
		bgp.NewCommunity(4242, 4242),
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Streaming reader (both format versions).
		if inf, _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
			for _, c := range probes {
				_ = inf.Verdict(c)
			}
		}
		_, _ = ReadSnapshotMeta(bytes.NewReader(data))
		_ = VerifySnapshot(data)

		// Zero-copy parser + every accessor a server would hit. Accepted
		// corrupt payloads may answer wrong, but must not panic.
		s, err := parseSnapshotV2(data)
		if err != nil {
			return
		}
		for _, c := range probes {
			v := mappedVerdict(s, c)
			_ = v
		}
		n := s.clusterCount()
		for i := -1; i <= n; i++ {
			_, _ = s.clusterSummaryAt(i)
			start, count := s.clusterMemberRange(i)
			for j := 0; j < count; j++ {
				_ = s.memberAt(start + j)
			}
		}
		for i := 0; i < s.lookupCount(); i++ {
			_, _, _, _ = s.lookupAt(i)
		}
		_ = s.options()
		_ = s.materialize()
	})
}

// mappedVerdict drives the same lookup logic Mapped.Verdict uses,
// against a parsed (not necessarily mapped) payload.
func mappedVerdict(s *snapV2, c bgp.Community) Verdict {
	m := &Mapped{s: s}
	return m.Verdict(c)
}

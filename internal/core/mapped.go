// Mapped is the mmap-backed InferenceSource: a read-only view over a
// v2 or v3 snapshot file whose query structures live in the kernel page
// cache, not this process's heap. Opening one is O(1) in corpus size;
// N replicas mapping the same file share one physical copy of the
// data; and Verdict reads decode fixed-width records straight off the
// mapped pages without allocating.
//
// Safety model: no unsafe pointer casts — records are decoded with
// encoding/binary accessors (which compile to plain loads), and every
// public method that returns reference types (Materialize) copies out
// of the mapping, so no caller-held slice can alias pages that a later
// Close unmaps. Value results (Verdict, ClusterSummary) are copies by
// construction.
package core

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
)

// Mapped is an immutable inference set served directly from a mapped
// v2 or v3 snapshot file. Safe for unsynchronized concurrent readers.
type Mapped struct {
	s       *snapV2
	mmapped bool // true when backed by a real mmap, false for the heap fallback
	path    string
	size    int64
	closed  atomic.Bool
}

// OpenSnapshotMmap maps the v2/v3 snapshot at path and returns a queryable
// view. The work done is O(1) in corpus size: the file is mapped (or,
// on platforms without mmap support, read whole), the header and
// section table are validated, and the tiny meta/stats sections are
// decoded; record arrays are only faulted in as queries touch them.
//
// The mapping is released by Close, or by the garbage collector when
// the Mapped becomes unreachable — so an atomically swapped-out
// generation stays valid until the last in-flight request drops its
// reference.
func OpenSnapshotMmap(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, mmapped, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("snapshot: mmap %s: %w", path, err)
	}
	s, err := parseSnapshotV2(data)
	if err != nil {
		if mmapped {
			munmapFile(data)
		}
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	m := &Mapped{s: s, mmapped: mmapped, path: path, size: st.Size()}
	if mmapped {
		// Belt and braces: unmap when the GC proves no reference —
		// including any in-flight request's — can still reach the pages.
		runtime.SetFinalizer(m, func(m *Mapped) { m.Close() })
	}
	return m, nil
}

// Close releases the mapping. Idempotent; safe to call while other
// goroutines still hold the *Mapped only if they have stopped querying
// it (the serving layer guarantees this by draining before closing —
// or by not calling Close at all and letting the finalizer run).
func (m *Mapped) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	runtime.SetFinalizer(m, nil)
	if m.mmapped {
		return munmapFile(m.s.data)
	}
	return nil
}

// Path returns the snapshot file this view is mapped from.
func (m *Mapped) Path() string { return m.path }

// SizeBytes is the mapped file's size.
func (m *Mapped) SizeBytes() int64 { return m.size }

// Mmapped reports whether the view is backed by a real memory mapping
// (false on platforms where the fallback read the file into the heap).
func (m *Mapped) Mmapped() bool { return m.mmapped }

// Meta returns the snapshot's provenance block.
func (m *Mapped) Meta() SnapshotMeta { return m.s.meta }

// Verdict answers one community query by binary-searching the mapped
// lookup section. Zero-alloc: everything returned is a value decoded
// from the pages.
func (m *Mapped) Verdict(c bgp.Community) Verdict {
	i, ok := m.s.findLookup(uint32(c))
	if !ok {
		return Verdict{Comm: c, Reason: ExcludeUnobserved}
	}
	_, cluster, on, off := m.s.lookupAt(i)
	v := Verdict{
		Comm:     c,
		Observed: true,
		Stats:    CommunityStats{Comm: c, OnPath: int(on), OffPath: int(off)},
	}
	if cluster >= 0 {
		if cs, ok := m.s.clusterSummaryAt(int(cluster)); ok {
			v.HasCluster = true
			v.Cluster = cs
			v.Category = cs.Label
		}
		return v
	}
	reason := -cluster
	if reason > int32(ExcludeNeverOnPath) {
		reason = int32(ExcludeUnobserved)
	}
	v.Reason = ExcludeReason(reason)
	return v
}

// Category returns the community's label, CatUnknown when excluded or
// unobserved.
func (m *Mapped) Category(c bgp.Community) dict.Category {
	i, ok := m.s.findLookup(uint32(c))
	if !ok {
		return dict.CatUnknown
	}
	_, cluster, _, _ := m.s.lookupAt(i)
	if cluster < 0 {
		return dict.CatUnknown
	}
	return m.s.clusterLabel(int(cluster))
}

// Observed is the number of distinct communities in the snapshot.
func (m *Mapped) Observed() int { return m.s.observed }

// Counts returns the action/information label totals, precomputed at
// write time (stats section), so this is O(1) on a mapped view.
func (m *Mapped) Counts() (action, information int) {
	return m.s.action, m.s.information
}

// ExcludedCount is observed minus classified — both O(1) section
// record counts.
func (m *Mapped) ExcludedCount() int {
	return m.s.lookupCount() - m.s.memberCount()
}

// ClusterCount is the number of clusters in the snapshot.
func (m *Mapped) ClusterCount() int { return m.s.clusterCount() }

// ClusterSummaryAt decodes the i-th cluster record (sorted by
// (alpha, lo)); i must be in [0, ClusterCount()).
func (m *Mapped) ClusterSummaryAt(i int) ClusterSummary {
	cs, _ := m.s.clusterSummaryAt(i)
	return cs
}

// ClusterMembers copies the i-th cluster's member stats out of the
// mapping. The returned slice is heap-owned and remains valid after
// Close.
func (m *Mapped) ClusterMembers(i int) []CommunityStats {
	start, count := m.s.clusterMemberRange(i)
	if count == 0 {
		return nil
	}
	out := make([]CommunityStats, count)
	for j := 0; j < count; j++ {
		out[j] = m.s.memberAt(start + j)
	}
	return out
}

// AlphaClusters returns the index range [lo, hi) of clusters whose
// Alpha equals alpha, by binary search over the (alpha, lo)-sorted
// cluster section.
func (m *Mapped) AlphaClusters(alpha uint16) (lo, hi int) {
	n := m.s.clusterCount()
	lo = m.s.searchAlpha(alpha, n)
	hi = lo
	for hi < n {
		cs, _ := m.s.clusterSummaryAt(hi)
		if cs.Alpha != alpha {
			break
		}
		hi++
	}
	return lo, hi
}

// EachLabeled visits every classified community in ascending community
// order (the lookup section's order).
func (m *Mapped) EachLabeled(fn func(c bgp.Community, cat dict.Category) bool) {
	for i, n := 0, m.s.lookupCount(); i < n; i++ {
		comm, cluster, _, _ := m.s.lookupAt(i)
		if cluster < 0 {
			continue
		}
		if !fn(bgp.Community(comm), m.s.clusterLabel(int(cluster))) {
			return
		}
	}
}

// VerdictLarge answers one large-community query by binary-searching
// the mapped large lookup section (v3 snapshots; on a v2 file every
// large community is unobserved). Zero-alloc like Verdict.
func (m *Mapped) VerdictLarge(lc bgp.LargeCommunity) LargeVerdict {
	i, ok := m.s.findLargeLookup(lc)
	if !ok {
		return LargeVerdict{Comm: lc, Reason: ExcludeUnobserved}
	}
	_, cluster, on, off := m.s.largeLookupAt(i)
	v := LargeVerdict{
		Comm:     lc,
		Observed: true,
		Stats:    LargeStats{Comm: lc, OnPath: int(on), OffPath: int(off)},
	}
	if cluster >= 0 {
		if cs, ok := m.s.largeClusterSummaryAt(int(cluster)); ok {
			v.HasCluster = true
			v.Cluster = cs
			v.Category = cs.Label
		}
		return v
	}
	reason := -cluster
	if reason > int32(ExcludeNeverOnPath) {
		reason = int32(ExcludeUnobserved)
	}
	v.Reason = ExcludeReason(reason)
	return v
}

// LargeObserved is the number of distinct large communities in the
// snapshot (0 on v2 files).
func (m *Mapped) LargeObserved() int { return m.s.largeObserved }

// LargeCounts returns the large action/information label totals,
// precomputed at write time.
func (m *Mapped) LargeCounts() (action, information int) {
	return m.s.largeAction, m.s.largeInformation
}

// LargeClusterCount is the number of large clusters in the snapshot.
func (m *Mapped) LargeClusterCount() int { return m.s.largeClusterCount() }

// LargeClusterSummaryAt decodes the i-th large cluster record (sorted
// by (alpha, fn, lo)); i must be in [0, LargeClusterCount()).
func (m *Mapped) LargeClusterSummaryAt(i int) LargeClusterSummary {
	cs, _ := m.s.largeClusterSummaryAt(i)
	return cs
}

// EachLargeLabeled visits every classified large community in
// ascending (ga, ld1, ld2) order.
func (m *Mapped) EachLargeLabeled(fn func(lc bgp.LargeCommunity, cat dict.Category) bool) {
	for i, n := 0, m.s.largeLookupCount(); i < n; i++ {
		lc, cluster, _, _ := m.s.largeLookupAt(i)
		if cluster < 0 {
			continue
		}
		if !fn(lc, m.s.largeClusterLabel(int(cluster))) {
			return
		}
	}
}

// Options returns the classifier options recorded in the snapshot.
func (m *Mapped) Options() Options { return m.s.options() }

// Materialize reconstructs a fully heap-resident *Inferences — every
// byte copied out of the mapping — for callers that need the mutable
// form (delta reclassification, TSV export over the legacy path).
func (m *Mapped) Materialize() *Inferences { return m.s.materialize() }

// Verify runs the full integrity pass (section CRCs, sort invariants,
// index ranges) against the mapped bytes.
func (m *Mapped) Verify() error { return VerifySnapshotV2(m.s.data) }

package core

import (
	"context"
	"slices"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
	"bgpintent/internal/obs"
)

// Options configure the classifier. The defaults are the paper's
// operating point (§5.2, Fig. 9): a minimum gap of 140 between clusters
// and an on-path:off-path ratio threshold of 160:1.
type Options struct {
	// MinGap is the maximum distance between adjacent β values inside one
	// cluster; 0 disables clustering (each community considered alone).
	MinGap int

	// RatioThreshold is the on-path:off-path ratio at or above which a
	// mixed cluster is labeled information.
	RatioThreshold float64

	// Orgs enables sibling-aware on-path matching (as2org); nil disables
	// it.
	Orgs OrgMapper

	// VPFilter restricts the dataset to tuples observed by these vantage
	// points; nil means all.
	VPFilter map[uint32]bool

	// DisableExclusions classifies private-ASN and never-on-path
	// communities anyway (ablation).
	DisableExclusions bool

	// PooledRatio computes a cluster's ratio as sum(on)/sum(off) instead
	// of the paper's mean of per-community ratios (ablation).
	PooledRatio bool

	// Workers bounds the classifier's parallelism: 0 means one worker
	// per CPU (GOMAXPROCS), 1 forces sequential execution. Results are
	// identical for every worker count.
	Workers int

	// Tracer receives per-stage spans (observe, cluster, ratio,
	// classify) and carries the pprof stage labels; nil disables
	// telemetry but keeps the labels.
	Tracer *obs.Tracer
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{MinGap: 140, RatioThreshold: 160}
}

// ExcludeReason says why a community was left unclassified (§5.2).
type ExcludeReason int8

const (
	// ExcludeNone: the community was not excluded.
	ExcludeNone ExcludeReason = iota
	// ExcludePrivateASN: the α half is in the private/reserved 16-bit
	// ASN range, so no public AS can be identified.
	ExcludePrivateASN
	// ExcludeNeverOnPath: neither α nor any sibling appears in any AS
	// path (IXP route servers and other transparent taggers).
	ExcludeNeverOnPath
	// ExcludeUnobserved is never stored in Inferences.Excluded: Lookup
	// reports it for communities absent from the corpus.
	ExcludeUnobserved
)

// String names the reason for reports.
func (r ExcludeReason) String() string {
	switch r {
	case ExcludePrivateASN:
		return "private-asn"
	case ExcludeNeverOnPath:
		return "never-on-path"
	case ExcludeUnobserved:
		return "unobserved"
	default:
		return "none"
	}
}

// CommunityStats holds a community's unique-path observation counts.
type CommunityStats struct {
	Comm    bgp.Community
	OnPath  int // unique AS paths containing α (or a sibling)
	OffPath int // unique AS paths not containing it
}

// Ratio is the on-path:off-path ratio; with no off-path observations the
// denominator is clamped to one so the ratio stays finite (the paper
// handles never-off-path clusters by rule before ratios are consulted).
func (cs CommunityStats) Ratio() float64 {
	off := cs.OffPath
	if off == 0 {
		off = 1
	}
	return float64(cs.OnPath) / float64(off)
}

// Cluster is a contiguous range of one AS's β values with its inferred
// label.
type Cluster struct {
	Alpha   uint16
	Lo, Hi  uint16
	Members []CommunityStats

	// PureOnPath / PureOffPath mark clusters never observed off-path /
	// on-path; Ratio is meaningful for mixed clusters.
	PureOnPath  bool
	PureOffPath bool
	Ratio       float64

	Label dict.Category
}

// Inferences is the classifier output.
type Inferences struct {
	Labels   map[bgp.Community]dict.Category
	Clusters []Cluster
	Excluded map[bgp.Community]ExcludeReason
	Opts     Options

	// The large-community (RFC 8092) counterparts; empty for
	// classic-only corpora, in which case snapshots and reports are
	// byte-identical to a larges-unaware build.
	LargeLabels   map[bgp.LargeCommunity]dict.Category
	LargeClusters []LargeCluster
	LargeExcluded map[bgp.LargeCommunity]ExcludeReason

	// index maps every observed community — classified or excluded —
	// to its stats and (for classified ones) its cluster, backing
	// Lookup. Built by ClassifyObserved and ReadSnapshot; the structure
	// is immutable once built, so lookups need no locking. largeIndex
	// is its large-community sibling (nil when no larges were seen).
	index      map[bgp.Community]lookupEntry
	largeIndex map[bgp.LargeCommunity]largeLookupEntry
}

// lookupEntry is one observed community in the query index.
type lookupEntry struct {
	stats   CommunityStats
	cluster int32 // index into Clusters; -1 for excluded communities
}

// Category returns the inferred label of a community (CatUnknown when
// excluded or unobserved).
func (inf *Inferences) Category(c bgp.Community) dict.Category {
	return inf.Labels[c]
}

// Lookup is the full verdict for one community: not just the label but
// the evidence behind it and, when unclassified, the reason why.
type Lookup struct {
	Comm     bgp.Community
	Observed bool          // the community appeared in the corpus
	Category dict.Category // CatUnknown when excluded or unobserved
	Stats    CommunityStats
	Reason   ExcludeReason // ExcludeNone for classified communities
	Cluster  *Cluster      // nil when excluded or unobserved
}

// Lookup explains a community's verdict: its on/off-path evidence, the
// cluster that labeled it, or the exclusion reason (private-ASN α,
// never-on-path α, or simply unobserved). The returned Cluster aliases
// the Inferences and must not be mutated.
func (inf *Inferences) Lookup(c bgp.Community) Lookup {
	e, ok := inf.index[c]
	if !ok {
		return Lookup{Comm: c, Reason: ExcludeUnobserved}
	}
	l := Lookup{Comm: c, Observed: true, Stats: e.stats}
	if e.cluster >= 0 {
		l.Cluster = &inf.Clusters[e.cluster]
		l.Category = l.Cluster.Label
	} else {
		l.Reason = inf.Excluded[c]
	}
	return l
}

// Observed returns how many communities the index covers (classified
// plus excluded).
func (inf *Inferences) Observed() int { return len(inf.index) }

// buildIndex (re)derives the Lookup index from Clusters and the
// supplied per-community stats of excluded communities.
func (inf *Inferences) buildIndex(excludedStats map[bgp.Community]CommunityStats) {
	inf.index = make(map[bgp.Community]lookupEntry,
		len(inf.Labels)+len(inf.Excluded))
	for i := range inf.Clusters {
		for _, m := range inf.Clusters[i].Members {
			inf.index[m.Comm] = lookupEntry{stats: m, cluster: int32(i)}
		}
	}
	for c := range inf.Excluded {
		st := excludedStats[c]
		st.Comm = c
		inf.index[c] = lookupEntry{stats: st, cluster: -1}
	}
}

// Counts returns how many communities were inferred action and
// information.
func (inf *Inferences) Counts() (action, info int) {
	for _, cat := range inf.Labels {
		switch cat {
		case dict.CatAction:
			action++
		case dict.CatInformation:
			info++
		}
	}
	return action, info
}

// ObservationSet is the per-community measurement the classifier (and
// the evaluation's baseline-cluster analyses) build on.
type ObservationSet struct {
	Stats map[bgp.Community]*CommunityStats

	// LargeStats is the large-community counterpart; nil when the
	// corpus carries no large communities on any tuple.
	LargeStats map[bgp.LargeCommunity]*LargeStats

	asnOnPath map[uint32]bool
	orgOnPath map[string]bool
	orgs      OrgMapper
}

// AlphaOnPath reports whether α (or an org sibling) appears in any AS
// path of the observed dataset.
func (os *ObservationSet) AlphaOnPath(alpha uint32) bool {
	if os.asnOnPath[alpha] {
		return true
	}
	if os.orgs != nil {
		if org, ok := os.orgs.Org(alpha); ok && os.orgOnPath[org] {
			return true
		}
	}
	return false
}

// minParallelTuples is the tuple count below which Observe stays
// sequential; tiny inputs are not worth goroutine startup.
const minParallelTuples = 4096

// commIndex is a CSR (compressed-sparse-row) community→path index:
// row r covers community comms[r], whose sorted unique path IDs are
// paths[start[r]:start[r+1]].
type commIndex struct {
	comms []bgp.Community
	start []int32
	paths []int32
}

// cancelCheckStride is how many loop iterations the classifier's inner
// loops run between cancellation probes: frequent enough that an abort
// is noticed within microseconds, rare enough to cost nothing.
const cancelCheckStride = 4096

// buildCommIndex scans the tuples (honoring the VP filter) and returns
// the CSR community→path index plus a bitset of the path IDs observed.
// Each worker emits (community, pathID) pairs encoded as uint64 into a
// private flat buffer and sorts it; the sorted runs are merged (with
// deduplication) into one run that becomes the CSR rows. No maps, no
// per-community slices — allocation is O(workers + rows), not O(pairs).
// When done closes mid-build, workers stop early and the (partial)
// result must be discarded by the caller.
//
// A non-nil dirty set restricts the index to communities whose α is in
// it (the ClassifyDelta path); the observed-path bitset always covers
// every tuple, because on-path exclusion evidence is global.
func buildCommIndex(ts *TupleStore, opts Options, workers int, done <-chan struct{}, dirty map[uint16]bool) (commIndex, bitset) {
	tuples := ts.Tuples()
	pathSeen := newBitset(ts.PathCount())
	pairParts := make([][]uint64, workers)
	seenParts := make([]bitset, workers)
	parallelRanges(workers, len(tuples), func(w, lo, hi int) {
		pairs := make([]uint64, 0, 2*(hi-lo))
		seen := newBitset(ts.PathCount())
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelCheckStride == 0 && chClosed(done) {
				break
			}
			t := &tuples[i]
			if opts.VPFilter != nil && !anyVP(ts.TupleVPs(t), opts.VPFilter) {
				continue
			}
			pid := uint32(t.PathID)
			seen.set(pid)
			for _, c := range ts.TupleComms(t) {
				if dirty != nil && !dirty[c.ASN()] {
					continue
				}
				pairs = append(pairs, uint64(c)<<32|uint64(pid))
			}
		}
		slices.Sort(pairs)
		pairParts[w] = slices.Compact(pairs)
		seenParts[w] = seen
	})
	for _, p := range seenParts {
		pathSeen.union(p)
	}
	merged := mergeSortedRuns(pairParts, workers)

	var idx commIndex
	idx.start = append(idx.start, 0)
	for i, pair := range merged {
		c := bgp.Community(pair >> 32)
		if i == 0 || c != idx.comms[len(idx.comms)-1] {
			idx.comms = append(idx.comms, c)
			idx.start = append(idx.start, int32(len(idx.paths)))
		}
		idx.paths = append(idx.paths, int32(uint32(pair)))
		idx.start[len(idx.start)-1] = int32(len(idx.paths))
	}
	return idx, pathSeen
}

// mergeSortedRuns merges sorted, deduplicated uint64 runs into one,
// pairwise (so log₂(k) passes over the data, each pass merging pairs
// concurrently on at most workers goroutines).
func mergeSortedRuns(runs [][]uint64, workers int) []uint64 {
	for len(runs) > 1 {
		next := make([][]uint64, (len(runs)+1)/2)
		ParallelFor(workers, len(next), func(i int) {
			if 2*i+1 < len(runs) {
				next[i] = mergeDedup(runs[2*i], runs[2*i+1])
			} else {
				next[i] = runs[2*i]
			}
		})
		runs = next
	}
	if len(runs) == 0 {
		return nil
	}
	return runs[0]
}

// mergeDedup merges two sorted deduplicated runs into one.
func mergeDedup(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// bitset is a fixed-size bitmap over dense IDs (path IDs here).
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i uint32)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) get(i uint32) bool { return b[i/64]>>(i%64)&1 != 0 }

func (b bitset) union(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Observe computes per-community on/off-path statistics over unique AS
// paths, honoring the VP filter and sibling awareness in opts. With
// opts.Workers != 1 the two passes — tuple scanning and per-community
// path counting — are partitioned across a worker pool; results are
// identical to the sequential computation for every worker count.
func Observe(ts *TupleStore, opts Options) *ObservationSet {
	os, _ := ObserveContext(context.Background(), ts, opts)
	return os
}

// ObserveContext is Observe with cancellation and stage telemetry: the
// whole computation runs under a StageObserve span/pprof label, and a
// canceled ctx aborts between work chunks (bounded latency, no
// goroutine leaks — every worker is joined before return). On
// cancellation the returned set is nil and the error is ctx.Err().
func ObserveContext(ctx context.Context, ts *TupleStore, opts Options) (*ObservationSet, error) {
	var os *ObservationSet
	err := opts.Tracer.Stage(ctx, obs.StageObserve, "", func(s *obs.Span) {
		s.Tuples = int64(len(ts.Tuples()))
		if os != nil {
			s.Records = int64(len(os.Stats))
		}
	}, func(ctx context.Context) error {
		var err error
		os, err = observe(ctx, ts, opts, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	return os, nil
}

// observe computes the observation set; a non-nil dirty set restricts
// the per-community stats to αs in it while keeping the global on-path
// ASN/org evidence complete (see ClassifyDelta).
func observe(ctx context.Context, ts *TupleStore, opts Options, dirty map[uint16]bool) (*ObservationSet, error) {
	os := &ObservationSet{
		asnOnPath: make(map[uint32]bool),
		orgOnPath: make(map[string]bool),
		orgs:      opts.Orgs,
	}
	done := ctx.Done()

	workers := ResolveWorkers(opts.Workers)
	if len(ts.Tuples()) < minParallelTuples {
		workers = 1
	}

	// Pass 1: build the CSR community→path index and the observed-path
	// bitset, then derive the on-path ASN/org sets from the distinct
	// observed paths (each path visited exactly once).
	idx, pathSeen := buildCommIndex(ts, opts, workers, done, dirty)
	if chClosed(done) {
		return nil, ctx.Err()
	}
	for pid := 0; pid < ts.PathCount(); pid++ {
		if pid%cancelCheckStride == 0 && chClosed(done) {
			return nil, ctx.Err()
		}
		if !pathSeen.get(uint32(pid)) {
			continue
		}
		info := ts.Path(int32(pid))
		for _, asn := range info.ASNs {
			os.asnOnPath[asn] = true
		}
		for _, org := range info.Orgs {
			os.orgOnPath[org] = true
		}
	}

	// Pass 2: count unique on/off-path appearances per community. CSR
	// rows are already sorted and deduplicated, so each worker walks its
	// contiguous row range writing into a disjoint slice region — no
	// per-community sorting and no map merging.
	statsArr := make([]CommunityStats, len(idx.comms))
	parallelRanges(workers, len(idx.comms), func(w, lo, hi int) {
		for r := lo; r < hi; r++ {
			if (r-lo)%cancelCheckStride == 0 && chClosed(done) {
				return
			}
			c := idx.comms[r]
			alpha := uint32(c.ASN())
			var alphaOrg string
			var haveOrg bool
			if opts.Orgs != nil {
				alphaOrg, haveOrg = opts.Orgs.Org(alpha)
			}
			st := CommunityStats{Comm: c}
			for _, id := range idx.paths[idx.start[r]:idx.start[r+1]] {
				info := ts.Path(id)
				on := containsASN(info.ASNs, alpha)
				if !on && haveOrg {
					on = containsOrg(info.Orgs, alphaOrg)
				}
				if on {
					st.OnPath++
				} else {
					st.OffPath++
				}
			}
			statsArr[r] = st
		}
	})
	if chClosed(done) {
		return nil, ctx.Err()
	}
	os.Stats = make(map[bgp.Community]*CommunityStats, len(idx.comms))
	for r := range idx.comms {
		os.Stats[idx.comms[r]] = &statsArr[r]
	}

	// Pass 3 (large communities): only when some tuple carries them,
	// and never on the delta path — large dirty tracking does not exist,
	// so ClassifyDelta falls back to a full classification instead.
	if dirty == nil && ts.hasLargeTuples() {
		observeLarges(ts, opts, os, workers, done)
		if chClosed(done) {
			return nil, ctx.Err()
		}
	}
	return os, nil
}

// Classify runs the full §5.2 pipeline: observe, exclude, cluster per
// AS, label clusters by on-path:off-path ratio, and apply the labels to
// communities.
func Classify(ts *TupleStore, opts Options) *Inferences {
	inf, _ := ClassifyContext(context.Background(), ts, opts)
	return inf
}

// ClassifyContext is Classify with cancellation and stage telemetry:
// the observe/cluster/ratio/classify stages each run under their span
// and pprof label, and a canceled ctx aborts promptly with ctx.Err()
// (nil Inferences), with every worker goroutine joined before return.
func ClassifyContext(ctx context.Context, ts *TupleStore, opts Options) (*Inferences, error) {
	os, err := ObserveContext(ctx, ts, opts)
	if err != nil {
		return nil, err
	}
	return ClassifyObservedContext(ctx, os, opts)
}

// ClassifyObserved runs the pipeline on precomputed observations, so
// parameter sweeps (e.g. the Fig. 9 gap sweep) do not recount paths.
// The opts must use the same VPFilter and Orgs the observations were
// built with.
func ClassifyObserved(os *ObservationSet, opts Options) *Inferences {
	inf, _ := ClassifyObservedContext(context.Background(), os, opts)
	return inf
}

// ClassifyObservedContext is ClassifyObserved with cancellation and
// per-stage telemetry. The three stages match the paper's structure:
// cluster (group each α's βs by the gap rule, applying exclusions),
// ratio (purity/ratio evidence labels each cluster), classify (apply
// labels to members and build the lookup index). Output is identical to
// ClassifyObserved for every worker count.
func ClassifyObservedContext(ctx context.Context, os *ObservationSet, opts Options) (*Inferences, error) {
	inf := &Inferences{
		Labels:   make(map[bgp.Community]dict.Category),
		Excluded: make(map[bgp.Community]ExcludeReason),
		Opts:     opts,
	}
	done := ctx.Done()
	tr := opts.Tracer

	workers := ResolveWorkers(opts.Workers)

	// Stage: cluster. Group observed β values by α; each α clusters
	// independently. Workers take contiguous ranges of the sorted α list
	// and emit unlabeled clusters/exclusions in α order within their
	// range; concatenating the per-worker parts in worker order
	// reproduces the sequential output exactly.
	type alphaPart struct {
		clusters []Cluster
		excluded []excludedComm
	}
	var parts []alphaPart
	var largeExcl []excludedLarge
	err := tr.Stage(ctx, obs.StageCluster, "", func(s *obs.Span) {
		s.Records = int64(len(os.Stats) + len(os.LargeStats))
	}, func(ctx context.Context) error {
		if len(os.LargeStats) > 0 {
			inf.LargeClusters, largeExcl = clusterLarges(os, opts)
		}
		byAlpha := make(map[uint16][]uint16)
		for c := range os.Stats {
			byAlpha[c.ASN()] = append(byAlpha[c.ASN()], c.Value())
		}
		alphas := make([]uint16, 0, len(byAlpha))
		for a := range byAlpha {
			alphas = append(alphas, a)
		}
		slices.Sort(alphas)

		w := workers
		if len(alphas) < minParallelAlphas {
			w = 1
		}
		parts = make([]alphaPart, w)
		parallelRanges(w, len(alphas), func(w, lo, hi int) {
			var p alphaPart
			for n, alpha := range alphas[lo:hi] {
				if n%cancelCheckStride == 0 && chClosed(done) {
					return
				}
				betas := byAlpha[alpha]
				slices.Sort(betas)

				if !opts.DisableExclusions {
					var reason ExcludeReason
					switch {
					case bgp.NewCommunity(alpha, 0).IsPrivateASN():
						reason = ExcludePrivateASN
					case !os.AlphaOnPath(uint32(alpha)):
						reason = ExcludeNeverOnPath
					}
					if reason != 0 {
						for _, b := range betas {
							c := bgp.NewCommunity(alpha, b)
							p.excluded = append(p.excluded, excludedComm{c, reason, *os.Stats[c]})
						}
						continue
					}
				}

				for _, idx := range clusterIndexes(betas, opts.MinGap) {
					members := make([]CommunityStats, 0, idx[1]-idx[0])
					for _, b := range betas[idx[0]:idx[1]] {
						members = append(members, *os.Stats[bgp.NewCommunity(alpha, b)])
					}
					p.clusters = append(p.clusters, Cluster{
						Alpha:   alpha,
						Lo:      members[0].Comm.Value(),
						Hi:      members[len(members)-1].Comm.Value(),
						Members: members,
					})
				}
			}
			parts[w] = p
		})
		return ctx.Err()
	})
	if err != nil {
		return nil, err
	}

	// Stage: ratio. Label every cluster from its members' evidence —
	// a pure per-cluster function, so clusters are labeled in place on
	// the worker pool with no ordering concerns.
	excludedStats := make(map[bgp.Community]CommunityStats)
	largeExclStats := make(map[bgp.LargeCommunity]LargeStats)
	err = tr.Stage(ctx, obs.StageRatio, "", func(s *obs.Span) {
		s.Records = int64(len(inf.Clusters) + len(inf.LargeClusters))
	}, func(ctx context.Context) error {
		for _, p := range parts {
			for _, e := range p.excluded {
				inf.Excluded[e.comm] = e.reason
				excludedStats[e.comm] = e.stats
			}
			inf.Clusters = append(inf.Clusters, p.clusters...)
		}
		if len(largeExcl) > 0 {
			inf.LargeExcluded = make(map[bgp.LargeCommunity]ExcludeReason, len(largeExcl))
			for _, e := range largeExcl {
				inf.LargeExcluded[e.comm] = e.reason
				largeExclStats[e.comm] = e.stats
			}
		}
		if err := ParallelForContext(ctx, workers, len(inf.Clusters), func(i int) {
			labelCluster(&inf.Clusters[i], opts)
		}); err != nil {
			return err
		}
		return ParallelForContext(ctx, workers, len(inf.LargeClusters), func(i int) {
			labelLargeCluster(&inf.LargeClusters[i], opts)
		})
	})
	if err != nil {
		return nil, err
	}

	// Stage: classify. Apply cluster labels to member communities and
	// build the lookup index.
	err = tr.Stage(ctx, obs.StageClassify, "", func(s *obs.Span) {
		s.Records = int64(len(inf.Labels))
	}, func(ctx context.Context) error {
		for i := range inf.Clusters {
			if i%cancelCheckStride == 0 && chClosed(done) {
				return ctx.Err()
			}
			cl := &inf.Clusters[i]
			for _, m := range cl.Members {
				inf.Labels[m.Comm] = cl.Label
			}
		}
		if len(inf.LargeClusters) > 0 {
			inf.LargeLabels = make(map[bgp.LargeCommunity]dict.Category)
			for i := range inf.LargeClusters {
				cl := &inf.LargeClusters[i]
				for _, m := range cl.Members {
					inf.LargeLabels[m.Comm] = cl.Label
				}
			}
		}
		inf.buildIndex(excludedStats)
		inf.buildLargeIndex(largeExclStats)
		return ctx.Err()
	})
	if err != nil {
		return nil, err
	}
	return inf, nil
}

// minParallelAlphas is the α count below which ClassifyObserved stays
// sequential.
const minParallelAlphas = 64

// excludedComm is one exclusion decision carried from a classify worker
// to the merge, with the stats that back Lookup's explanation.
type excludedComm struct {
	comm   bgp.Community
	reason ExcludeReason
	stats  CommunityStats
}

// clusterIndexes splits a sorted value list into [start, end) cluster
// index pairs using the minimum-gap rule. Generic over the value
// width: classic clustering runs over 16-bit β values, large-community
// clustering over the 32-bit LocalData2 space, with identical gap
// semantics (so a classic corpus mirrored into α:fn:β clusters the
// same way).
func clusterIndexes[T uint16 | uint32](vals []T, minGap int) [][2]int {
	var out [][2]int
	start := 0
	for i := 1; i <= len(vals); i++ {
		if i == len(vals) || int(vals[i])-int(vals[i-1]) > minGap {
			out = append(out, [2]int{start, i})
			start = i
		}
	}
	return out
}

// decideLabel is the §5.2 decision rule shared by the classic and
// large labelers: never off-path or ratio at/above threshold ->
// information; always off-path or ratio below -> action. The
// mixed-cluster ratio is the mean of the member ratios (or the pooled
// ratio under the ablation option).
func decideLabel(onTotal, offTotal int, ratioSum float64, members int, opts Options) (pureOn, pureOff bool, ratio float64, label dict.Category) {
	pureOn = offTotal == 0
	pureOff = onTotal == 0
	if opts.PooledRatio {
		off := offTotal
		if off == 0 {
			off = 1
		}
		ratio = float64(onTotal) / float64(off)
	} else {
		ratio = ratioSum / float64(members)
	}
	switch {
	case pureOn:
		label = dict.CatInformation
	case pureOff:
		label = dict.CatAction
	case ratio >= opts.RatioThreshold:
		label = dict.CatInformation
	default:
		label = dict.CatAction
	}
	return pureOn, pureOff, ratio, label
}

// labelCluster applies the decision rule to a classic cluster in place.
func labelCluster(cl *Cluster, opts Options) {
	onTotal, offTotal := 0, 0
	ratioSum := 0.0
	for _, m := range cl.Members {
		onTotal += m.OnPath
		offTotal += m.OffPath
		ratioSum += m.Ratio()
	}
	cl.PureOnPath, cl.PureOffPath, cl.Ratio, cl.Label =
		decideLabel(onTotal, offTotal, ratioSum, len(cl.Members), opts)
}

func anyVP(vps []uint32, filter map[uint32]bool) bool {
	for _, vp := range vps {
		if filter[vp] {
			return true
		}
	}
	return false
}

func containsASN(asns []uint32, asn uint32) bool {
	for _, a := range asns {
		if a == asn {
			return true
		}
	}
	return false
}

func containsOrg(orgs []string, org string) bool {
	for _, o := range orgs {
		if o == org {
			return true
		}
	}
	return false
}

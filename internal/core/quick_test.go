package core

import (
	"sort"
	"testing"
	"testing/quick"

	"bgpintent/internal/bgp"
)

// TestClusterIndexesQuick: for random sorted β lists and gaps, the
// clustering must partition the list into contiguous, ordered segments
// whose internal adjacent gaps are <= gap and whose boundary gaps are
// > gap.
func TestClusterIndexesQuick(t *testing.T) {
	f := func(raw []uint16, gap uint8) bool {
		betas := append([]uint16(nil), raw...)
		sort.Slice(betas, func(i, j int) bool { return betas[i] < betas[j] })
		// clusterIndexes expects deduplicated input like Classify builds.
		betas = dedupU16(betas)
		g := int(gap)
		idx := clusterIndexes(betas, g)
		if len(betas) == 0 {
			return len(idx) == 0
		}
		// Partition: contiguous cover of [0, len).
		pos := 0
		for _, pair := range idx {
			if pair[0] != pos || pair[1] <= pair[0] {
				return false
			}
			pos = pair[1]
		}
		if pos != len(betas) {
			return false
		}
		// Gap property.
		for _, pair := range idx {
			for i := pair[0] + 1; i < pair[1]; i++ {
				if int(betas[i])-int(betas[i-1]) > g {
					return false
				}
			}
		}
		for k := 1; k < len(idx); k++ {
			lo := betas[idx[k][0]]
			hi := betas[idx[k-1][1]-1]
			if int(lo)-int(hi) <= g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func dedupU16(v []uint16) []uint16 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// TestTupleStoreQuick: adding random views never loses communities, and
// tuple count is bounded by view count.
func TestTupleStoreQuick(t *testing.T) {
	f := func(seeds []uint32) bool {
		ts := NewTupleStore()
		views := 0
		want := make(map[bgp.Community]bool)
		for _, s := range seeds {
			vp := 1 + s%7
			path := []uint32{vp, 100 + s%5, 1000 + s%13}
			comm := bgp.NewCommunity(uint16(100+s%5), uint16(s%50))
			ts.AddView(vp, path, bgp.Communities{comm})
			want[comm] = true
			views++
		}
		if ts.Len() > views {
			return false
		}
		got := make(map[bgp.Community]bool)
		for _, c := range ts.Communities() {
			got[c] = true
		}
		if len(got) != len(want) {
			return false
		}
		for c := range want {
			if !got[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCommunityStatsRatioQuick: the ratio is finite, non-negative and
// monotone in OnPath.
func TestCommunityStatsRatioQuick(t *testing.T) {
	f := func(on, off uint16) bool {
		a := CommunityStats{OnPath: int(on), OffPath: int(off)}
		b := CommunityStats{OnPath: int(on) + 1, OffPath: int(off)}
		if a.Ratio() < 0 {
			return false
		}
		return b.Ratio() > a.Ratio()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClassifyLabelsSubsetOfObserved: every label refers to an observed
// community and no community is both labeled and excluded.
func TestClassifyLabelsSubsetOfObserved(t *testing.T) {
	ts := buildSyntheticStore()
	inf := Classify(ts, DefaultOptions())
	observed := make(map[bgp.Community]bool)
	for _, c := range ts.Communities() {
		observed[c] = true
	}
	for c := range inf.Labels {
		if !observed[c] {
			t.Fatalf("label for unobserved community %v", c)
		}
		if _, dual := inf.Excluded[c]; dual {
			t.Fatalf("%v both labeled and excluded", c)
		}
	}
	for c := range inf.Excluded {
		if !observed[c] {
			t.Fatalf("exclusion for unobserved community %v", c)
		}
	}
	if len(inf.Labels)+len(inf.Excluded) != len(observed) {
		t.Fatalf("labels(%d)+excluded(%d) != observed(%d)",
			len(inf.Labels), len(inf.Excluded), len(observed))
	}
}

// TestClusterMembersMatchLabels: each cluster's members carry the
// cluster's label in the final map.
func TestClusterMembersMatchLabels(t *testing.T) {
	ts := buildSyntheticStore()
	inf := Classify(ts, DefaultOptions())
	for _, cl := range inf.Clusters {
		if cl.Lo > cl.Hi {
			t.Fatalf("inverted cluster %+v", cl)
		}
		for _, m := range cl.Members {
			if m.Comm.ASN() != cl.Alpha {
				t.Fatalf("cluster %d has member %v", cl.Alpha, m.Comm)
			}
			if v := m.Comm.Value(); v < cl.Lo || v > cl.Hi {
				t.Fatalf("member %v outside cluster [%d,%d]", m.Comm, cl.Lo, cl.Hi)
			}
			if inf.Labels[m.Comm] != cl.Label {
				t.Fatalf("member %v label %v != cluster label %v", m.Comm, inf.Labels[m.Comm], cl.Label)
			}
		}
	}
}

package core

import (
	"slices"
	"sort"
	"testing"
	"testing/quick"

	"bgpintent/internal/bgp"
)

// TestClusterIndexesQuick: for random sorted β lists and gaps, the
// clustering must partition the list into contiguous, ordered segments
// whose internal adjacent gaps are <= gap and whose boundary gaps are
// > gap.
func TestClusterIndexesQuick(t *testing.T) {
	f := func(raw []uint16, gap uint8) bool {
		betas := append([]uint16(nil), raw...)
		sort.Slice(betas, func(i, j int) bool { return betas[i] < betas[j] })
		// clusterIndexes expects deduplicated input like Classify builds.
		betas = dedupU16(betas)
		g := int(gap)
		idx := clusterIndexes(betas, g)
		if len(betas) == 0 {
			return len(idx) == 0
		}
		// Partition: contiguous cover of [0, len).
		pos := 0
		for _, pair := range idx {
			if pair[0] != pos || pair[1] <= pair[0] {
				return false
			}
			pos = pair[1]
		}
		if pos != len(betas) {
			return false
		}
		// Gap property.
		for _, pair := range idx {
			for i := pair[0] + 1; i < pair[1]; i++ {
				if int(betas[i])-int(betas[i-1]) > g {
					return false
				}
			}
		}
		for k := 1; k < len(idx); k++ {
			lo := betas[idx[k][0]]
			hi := betas[idx[k-1][1]-1]
			if int(lo)-int(hi) <= g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func dedupU16(v []uint16) []uint16 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// TestTupleStoreQuick: adding random views never loses communities, and
// tuple count is bounded by view count.
func TestTupleStoreQuick(t *testing.T) {
	f := func(seeds []uint32) bool {
		ts := NewTupleStore()
		views := 0
		want := make(map[bgp.Community]bool)
		for _, s := range seeds {
			vp := 1 + s%7
			path := []uint32{vp, 100 + s%5, 1000 + s%13}
			comm := bgp.NewCommunity(uint16(100+s%5), uint16(s%50))
			ts.AddView(vp, path, bgp.Communities{comm})
			want[comm] = true
			views++
		}
		if ts.Len() > views {
			return false
		}
		got := make(map[bgp.Community]bool)
		for _, c := range ts.Communities() {
			got[c] = true
		}
		if len(got) != len(want) {
			return false
		}
		for c := range want {
			if !got[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// oracleStore is a deliberately naive map-based tuple store — the shape
// the columnar TupleStore replaced — retained as a reference model:
// path key -> canonical comms key -> VP set.
type oracleStore struct {
	tuples map[string]map[string]map[uint32]bool // pathKey -> commsKey -> VPs
	paths  map[string][]uint32                   // pathKey -> distinct ASNs
}

func newOracleStore() *oracleStore {
	return &oracleStore{
		tuples: make(map[string]map[string]map[uint32]bool),
		paths:  make(map[string][]uint32),
	}
}

func (o *oracleStore) addView(vp uint32, path []uint32, comms bgp.Communities) {
	if len(path) == 0 {
		return
	}
	key := string(appendPathKey(nil, path))
	if _, ok := o.paths[key]; !ok {
		var distinct []uint32
		for _, asn := range path {
			if !containsASN(distinct, asn) {
				distinct = append(distinct, asn)
			}
		}
		o.paths[key] = distinct
	}
	ck := string(appendCommsKey(nil, canonicalInto(nil, comms)))
	byComms := o.tuples[key]
	if byComms == nil {
		byComms = make(map[string]map[uint32]bool)
		o.tuples[key] = byComms
	}
	vps := byComms[ck]
	if vps == nil {
		vps = make(map[uint32]bool)
		byComms[ck] = vps
	}
	vps[vp] = true
}

func appendCommsKey(dst []byte, comms bgp.Communities) []byte {
	for _, c := range comms {
		dst = append(dst, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return dst
}

// TestColumnarMatchesOracleQuick: on random corpora the columnar store
// holds exactly the oracle's logical content — same tuple set, same
// per-tuple VP sets, same interned paths. This pins the arena/span
// bookkeeping (VP growth, hash-collision overflow, path interning) to a
// model too simple to share its bugs.
func TestColumnarMatchesOracleQuick(t *testing.T) {
	f := func(seeds []uint32) bool {
		ts := NewTupleStore()
		oracle := newOracleStore()
		for _, s := range seeds {
			// Derive a small view from the seed: overlapping paths and
			// community lists so dedup, VP merge, and canonicalization
			// all fire; occasional empty comms and prepended paths.
			vp := 1 + s%5
			path := []uint32{vp, 100 + s%3, 100 + s%3, 200 + s%7} // prepend collapses
			var comms bgp.Communities
			for i := uint32(0); i < s%4; i++ {
				comms = append(comms, bgp.NewCommunity(uint16(100+s%3), uint16((s+i)%9)))
			}
			ts.AddView(vp, path, comms)
			oracle.addView(vp, path, comms)
		}
		if ts.Len() != countOracleTuples(oracle) {
			return false
		}
		if ts.PathCount() != len(oracle.paths) {
			return false
		}
		tuples := ts.Tuples()
		for i := range tuples {
			tu := &tuples[i]
			key := ts.pathKeys[tu.PathID]
			if !slices.Equal(ts.Path(tu.PathID).ASNs, oracle.paths[key]) {
				return false
			}
			ck := string(appendCommsKey(nil, ts.TupleComms(tu)))
			wantVPs := oracle.tuples[key][ck]
			gotVPs := ts.TupleVPs(tu)
			if len(gotVPs) != len(wantVPs) {
				return false
			}
			for _, vp := range gotVPs {
				if !wantVPs[vp] {
					return false
				}
			}
			if !slices.IsSorted(gotVPs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func countOracleTuples(o *oracleStore) int {
	n := 0
	for _, byComms := range o.tuples {
		n += len(byComms)
	}
	return n
}

// TestCommunityStatsRatioQuick: the ratio is finite, non-negative and
// monotone in OnPath.
func TestCommunityStatsRatioQuick(t *testing.T) {
	f := func(on, off uint16) bool {
		a := CommunityStats{OnPath: int(on), OffPath: int(off)}
		b := CommunityStats{OnPath: int(on) + 1, OffPath: int(off)}
		if a.Ratio() < 0 {
			return false
		}
		return b.Ratio() > a.Ratio()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClassifyLabelsSubsetOfObserved: every label refers to an observed
// community and no community is both labeled and excluded.
func TestClassifyLabelsSubsetOfObserved(t *testing.T) {
	ts := buildSyntheticStore()
	inf := Classify(ts, DefaultOptions())
	observed := make(map[bgp.Community]bool)
	for _, c := range ts.Communities() {
		observed[c] = true
	}
	for c := range inf.Labels {
		if !observed[c] {
			t.Fatalf("label for unobserved community %v", c)
		}
		if _, dual := inf.Excluded[c]; dual {
			t.Fatalf("%v both labeled and excluded", c)
		}
	}
	for c := range inf.Excluded {
		if !observed[c] {
			t.Fatalf("exclusion for unobserved community %v", c)
		}
	}
	if len(inf.Labels)+len(inf.Excluded) != len(observed) {
		t.Fatalf("labels(%d)+excluded(%d) != observed(%d)",
			len(inf.Labels), len(inf.Excluded), len(observed))
	}
}

// TestClusterMembersMatchLabels: each cluster's members carry the
// cluster's label in the final map.
func TestClusterMembersMatchLabels(t *testing.T) {
	ts := buildSyntheticStore()
	inf := Classify(ts, DefaultOptions())
	for _, cl := range inf.Clusters {
		if cl.Lo > cl.Hi {
			t.Fatalf("inverted cluster %+v", cl)
		}
		for _, m := range cl.Members {
			if m.Comm.ASN() != cl.Alpha {
				t.Fatalf("cluster %d has member %v", cl.Alpha, m.Comm)
			}
			if v := m.Comm.Value(); v < cl.Lo || v > cl.Hi {
				t.Fatalf("member %v outside cluster [%d,%d]", m.Comm, cl.Lo, cl.Hi)
			}
			if inf.Labels[m.Comm] != cl.Label {
				t.Fatalf("member %v label %v != cluster label %v", m.Comm, inf.Labels[m.Comm], cl.Label)
			}
		}
	}
}

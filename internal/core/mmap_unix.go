//go:build unix

package core

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so every replica
// process mapping the same snapshot file shares one physical copy in
// the page cache. The second result reports whether a real mapping was
// created (always true here on success, except for empty files).
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	if size != int64(int(size)) {
		return nil, false, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}

package core

import (
	"slices"
	"strings"
	"sync"

	"bgpintent/internal/bgp"
)

// ShardedTupleStore is a concurrency-safe TupleStore front: AddView
// hashes the path key to one of N shards, each an independent
// TupleStore behind its own mutex, so parallel MRT workers ingest
// without contending on one lock. Merge collapses the shards into a
// single canonical TupleStore whose contents are deterministic — the
// same input views produce a byte-identical store regardless of worker
// count or goroutine scheduling.
//
// Because shard routing is a pure function of the path key, every
// observation of one path lands in the same shard, so per-shard
// deduplication is global deduplication: no cross-shard reconciliation
// is needed at merge time.
type ShardedTupleStore struct {
	shards []tupleShard
	mask   uint64
}

type tupleShard struct {
	mu sync.Mutex
	ts *TupleStore
	// pad the shard out to its own cache lines so neighboring shard
	// locks do not false-share.
	_ [64]byte
}

// NewShardedTupleStore returns a store with at least n shards (rounded
// up to a power of two; n <= 0 means a single shard). A good n is a
// small multiple of the worker count.
func NewShardedTupleStore(n int) *ShardedTupleStore {
	size := 1
	for size < n {
		size <<= 1
	}
	s := &ShardedTupleStore{shards: make([]tupleShard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].ts = NewTupleStore()
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedTupleStore) Shards() int { return len(s.shards) }

// AddView records one vantage-point observation; safe for concurrent
// use. Semantics match TupleStore.AddView.
func (s *ShardedTupleStore) AddView(vp uint32, path []uint32, comms bgp.Communities) {
	if len(path) == 0 {
		return
	}
	sc := addScratchPool.Get().(*addScratch)
	sc.key = appendPathKey(sc.key[:0], path)
	sh := &s.shards[hashKey(sc.key)&s.mask]
	sh.mu.Lock()
	sh.ts.addViewKeyed(vp, sc.key, path, comms, sc)
	sh.mu.Unlock()
	addScratchPool.Put(sc)
}

// AddViewASPath is AddView taking the path as an un-flattened
// bgp.ASPath: the flattening happens into pooled scratch, so callers
// feeding decoded MRT attributes avoid the per-view []uint32 allocation
// of ASPath.Flatten.
func (s *ShardedTupleStore) AddViewASPath(vp uint32, path bgp.ASPath, comms bgp.Communities) {
	sc := addScratchPool.Get().(*addScratch)
	sc.flat = path.AppendFlatten(sc.flat[:0])
	if len(sc.flat) == 0 {
		addScratchPool.Put(sc)
		return
	}
	sc.key = appendPathKey(sc.key[:0], sc.flat)
	sh := &s.shards[hashKey(sc.key)&s.mask]
	sh.mu.Lock()
	sh.ts.addViewKeyed(vp, sc.key, sc.flat, comms, sc)
	sh.mu.Unlock()
	addScratchPool.Put(sc)
}

// NoteLarge records large communities; safe for concurrent use.
func (s *ShardedTupleStore) NoteLarge(ls bgp.LargeCommunities) {
	for _, lc := range ls {
		h := splitmix64(uint64(lc.GlobalAdmin)<<32|uint64(lc.LocalData1)) ^ splitmix64(uint64(lc.LocalData2))
		sh := &s.shards[h&s.mask]
		sh.mu.Lock()
		sh.ts.large[lc] = struct{}{}
		sh.mu.Unlock()
	}
}

// Len returns the number of unique tuples across all shards; safe for
// concurrent use.
func (s *ShardedTupleStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.ts.Len()
		sh.mu.Unlock()
	}
	return n
}

// Merge collapses the shards into one canonical TupleStore. Within each
// shard, tuples are emitted in (path key, communities) order, and
// shards are visited in index order; both orders are independent of how
// observations interleaved across goroutines, so the merged store is
// deterministic for a given input set. The merged store takes ownership
// of the shard contents; the sharded store must not be used afterwards.
//
// The merged arenas are pre-sized from the shard totals and VP lists
// are copied compacted (capacity == length), so the merged store
// carries none of the shards' growth slack.
func (s *ShardedTupleStore) Merge() *TupleStore {
	out := NewTupleStore()
	var nTuples, nComms, nVPs, nPaths, nASNs int
	for i := range s.shards {
		ts := s.shards[i].ts
		nTuples += len(ts.tuples)
		nComms += len(ts.commArena)
		nPaths += len(ts.paths)
		nASNs += len(ts.asnArena)
		for j := range ts.tuples {
			nVPs += int(ts.tuples[j].vpLen)
		}
	}
	out.tuples = make([]Tuple, 0, nTuples)
	out.commArena = make([]bgp.Community, 0, nComms)
	out.vpArena = make([]uint32, 0, nVPs)
	out.paths = make([]pathMeta, 0, nPaths)
	out.asnArena = make([]uint32, 0, nASNs)
	out.pathKeys = make([]string, 0, nPaths)

	for i := range s.shards {
		ts := s.shards[i].ts
		order := make([]int32, len(ts.tuples))
		for j := range order {
			order[j] = int32(j)
		}
		slices.SortFunc(order, func(a, b int32) int {
			ta, tb := &ts.tuples[a], &ts.tuples[b]
			if c := strings.Compare(ts.pathKeys[ta.PathID], ts.pathKeys[tb.PathID]); c != 0 {
				return c
			}
			return compareComms(ts.TupleComms(ta), ts.TupleComms(tb))
		})
		for _, ti := range order {
			t := &ts.tuples[ti]
			key := ts.pathKeys[t.PathID]
			id, ok := out.pathIDs[key]
			if !ok {
				// Shard routing is a pure function of the path key, so
				// this path cannot appear in any other shard: copy its
				// ASNs over once.
				id = int32(len(out.paths))
				asns := ts.Path(t.PathID).ASNs
				off := uint32(len(out.asnArena))
				out.asnArena = append(out.asnArena, asns...)
				out.paths = append(out.paths, pathMeta{asns: span{off: off, n: uint32(len(asns))}})
				out.pathIDs[key] = id
				out.pathKeys = append(out.pathKeys, key)
			}
			comms := ts.TupleComms(t)
			vps := ts.TupleVPs(t)
			commOff := uint32(len(out.commArena))
			out.commArena = append(out.commArena, comms...)
			vpOff := uint32(len(out.vpArena))
			out.vpArena = append(out.vpArena, vps...)
			idx := int32(len(out.tuples))
			tk := tupleKey{pathID: id, commsHash: hashComms(comms)}
			if _, dup := out.tupleIdx[tk]; dup {
				if out.tupleDup == nil {
					out.tupleDup = make(map[tupleKey][]int32)
				}
				out.tupleDup[tk] = append(out.tupleDup[tk], idx)
			} else {
				out.tupleIdx[tk] = idx
			}
			out.tuples = append(out.tuples, Tuple{
				PathID: id,
				comms:  span{off: commOff, n: uint32(len(comms))},
				vpOff:  vpOff, vpLen: uint32(len(vps)), vpCap: uint32(len(vps)),
			})
		}
		for lc := range ts.large {
			out.large[lc] = struct{}{}
		}
	}
	return out
}

// compareComms orders canonical community lists lexicographically.
func compareComms(a, b bgp.Communities) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// splitmix64 is the splitmix64 finalizer, used to spread large-community
// values across shards.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package core

import (
	"sort"
	"sync"

	"bgpintent/internal/bgp"
)

// ShardedTupleStore is a concurrency-safe TupleStore front: AddView
// hashes the path key to one of N shards, each an independent
// TupleStore behind its own mutex, so parallel MRT workers ingest
// without contending on one lock. Merge collapses the shards into a
// single canonical TupleStore whose contents are deterministic — the
// same input views produce a byte-identical store regardless of worker
// count or goroutine scheduling.
//
// Because shard routing is a pure function of the path key, every
// observation of one path lands in the same shard, so per-shard
// deduplication is global deduplication: no cross-shard reconciliation
// is needed at merge time.
type ShardedTupleStore struct {
	shards []tupleShard
	mask   uint64
}

type tupleShard struct {
	mu sync.Mutex
	ts *TupleStore
	// pad the shard out to its own cache lines so neighboring shard
	// locks do not false-share.
	_ [64]byte
}

// NewShardedTupleStore returns a store with at least n shards (rounded
// up to a power of two; n <= 0 means a single shard). A good n is a
// small multiple of the worker count.
func NewShardedTupleStore(n int) *ShardedTupleStore {
	size := 1
	for size < n {
		size <<= 1
	}
	s := &ShardedTupleStore{shards: make([]tupleShard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].ts = NewTupleStore()
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedTupleStore) Shards() int { return len(s.shards) }

// AddView records one vantage-point observation; safe for concurrent
// use. Semantics match TupleStore.AddView.
func (s *ShardedTupleStore) AddView(vp uint32, path []uint32, comms bgp.Communities) {
	if len(path) == 0 {
		return
	}
	sc := addScratchPool.Get().(*addScratch)
	sc.key = appendPathKey(sc.key[:0], path)
	sh := &s.shards[hashKey(sc.key)&s.mask]
	sh.mu.Lock()
	sh.ts.addViewKeyed(vp, sc.key, path, comms, sc)
	sh.mu.Unlock()
	addScratchPool.Put(sc)
}

// NoteLarge records large communities; safe for concurrent use.
func (s *ShardedTupleStore) NoteLarge(ls bgp.LargeCommunities) {
	for _, lc := range ls {
		h := splitmix64(uint64(lc.GlobalAdmin)<<32|uint64(lc.LocalData1)) ^ splitmix64(uint64(lc.LocalData2))
		sh := &s.shards[h&s.mask]
		sh.mu.Lock()
		sh.ts.large[lc] = struct{}{}
		sh.mu.Unlock()
	}
}

// Len returns the number of unique tuples across all shards; safe for
// concurrent use.
func (s *ShardedTupleStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.ts.Len()
		sh.mu.Unlock()
	}
	return n
}

// Merge collapses the shards into one canonical TupleStore. Within each
// shard, tuples are emitted in (path key, communities) order, and
// shards are visited in index order; both orders are independent of how
// observations interleaved across goroutines, so the merged store is
// deterministic for a given input set. The merged store takes ownership
// of the shard contents; the sharded store must not be used afterwards.
func (s *ShardedTupleStore) Merge() *TupleStore {
	out := NewTupleStore()
	for i := range s.shards {
		ts := s.shards[i].ts
		order := make([]int32, len(ts.tuples))
		for j := range order {
			order[j] = int32(j)
		}
		sort.Slice(order, func(a, b int) bool {
			ta, tb := ts.tuples[order[a]], ts.tuples[order[b]]
			ka, kb := ts.pathKeys[ta.PathID], ts.pathKeys[tb.PathID]
			if ka != kb {
				return ka < kb
			}
			return lessComms(ta.Comms, tb.Comms)
		})
		for _, ti := range order {
			t := ts.tuples[ti]
			id, ok := out.pathIDs[ts.pathKeys[t.PathID]]
			if !ok {
				id = int32(len(out.paths))
				key := ts.pathKeys[t.PathID]
				out.paths = append(out.paths, ts.paths[t.PathID])
				out.pathIDs[key] = id
				out.pathKeys = append(out.pathKeys, key)
			}
			t.PathID = id
			tk := tupleKey{pathID: id, commsHash: hashComms(t.Comms)}
			out.tupleIdx[tk] = append(out.tupleIdx[tk], int32(len(out.tuples)))
			out.tuples = append(out.tuples, t)
		}
		for lc := range ts.large {
			out.large[lc] = struct{}{}
		}
	}
	return out
}

// lessComms orders canonical community lists lexicographically.
func lessComms(a, b bgp.Communities) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// splitmix64 is the splitmix64 finalizer, used to spread large-community
// values across shards.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package core

import (
	"slices"
	"strings"
	"sync"

	"bgpintent/internal/bgp"
)

// ShardedTupleStore is a concurrency-safe TupleStore front: AddView
// hashes the path key to one of N shards, each an independent
// TupleStore behind its own mutex, so parallel MRT workers ingest
// without contending on one lock. Stitch collapses the shards into a
// single canonical TupleStore whose contents are deterministic — the
// same input views produce a byte-identical store regardless of worker
// count or goroutine scheduling.
//
// Because shard routing is a pure function of the path key, every
// observation of one path lands in the same shard, so per-shard
// deduplication is global deduplication: no cross-shard reconciliation
// is needed at stitch time.
//
// All shards run their TupleStores in shared-storage mode against one
// storeShared: community lists intern into one lock-free global table
// and path ASN sequences land in one globally addressed arena, so
// every span a shard writes is already valid in the stitched store and
// Stitch moves only index-sized data (tuple records, path metas, VP
// lists) — never community or ASN payloads.
type ShardedTupleStore struct {
	shards []tupleShard
	mask   uint64
	shared *storeShared
}

type tupleShard struct {
	mu sync.Mutex
	ts *TupleStore
	// pad the shard out to its own cache lines so neighboring shard
	// locks do not false-share.
	_ [64]byte
}

// NewShardedTupleStore returns a store with at least n shards (rounded
// up to a power of two; n <= 0 means a single shard). A good n is a
// small multiple of the worker count.
func NewShardedTupleStore(n int) *ShardedTupleStore {
	size := 1
	for size < n {
		size <<= 1
	}
	s := &ShardedTupleStore{
		shards: make([]tupleShard, size),
		mask:   uint64(size - 1),
		shared: &storeShared{},
	}
	for i := range s.shards {
		ts := NewTupleStore()
		ts.shared = s.shared
		s.shards[i].ts = ts
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedTupleStore) Shards() int { return len(s.shards) }

// AddView records one vantage-point observation without large
// communities; safe for concurrent use. See AddViewLarge.
func (s *ShardedTupleStore) AddView(vp uint32, path []uint32, comms bgp.Communities) {
	s.AddViewLarge(vp, path, comms, nil)
}

// AddViewLarge records one vantage-point observation; safe for
// concurrent use. Semantics match TupleStore.AddViewLarge: the larges
// are noted into the distinct-large statistics even when the path is
// empty and no tuple results.
func (s *ShardedTupleStore) AddViewLarge(vp uint32, path []uint32, comms bgp.Communities, larges bgp.LargeCommunities) {
	s.NoteLarge(larges)
	if len(path) == 0 {
		return
	}
	sc := addScratchPool.Get().(*addScratch)
	sc.key = appendPathKey(sc.key[:0], path)
	sh := &s.shards[hashKey(sc.key)&s.mask]
	sh.mu.Lock()
	sh.ts.addViewKeyed(vp, sc.key, path, comms, larges, sc)
	sh.mu.Unlock()
	addScratchPool.Put(sc)
}

// AddViewASPath is AddViewASPathLarge without large communities.
func (s *ShardedTupleStore) AddViewASPath(vp uint32, path bgp.ASPath, comms bgp.Communities) {
	s.AddViewASPathLarge(vp, path, comms, nil)
}

// AddViewASPathLarge is AddViewLarge taking the path as an
// un-flattened bgp.ASPath: the flattening happens into pooled scratch,
// so callers feeding decoded MRT attributes avoid the per-view
// []uint32 allocation of ASPath.Flatten. Larges are noted before the
// empty-path early return, so the distinct-large count matches the
// sequential loader's.
func (s *ShardedTupleStore) AddViewASPathLarge(vp uint32, path bgp.ASPath, comms bgp.Communities, larges bgp.LargeCommunities) {
	s.NoteLarge(larges)
	sc := addScratchPool.Get().(*addScratch)
	sc.flat = path.AppendFlatten(sc.flat[:0])
	if len(sc.flat) == 0 {
		addScratchPool.Put(sc)
		return
	}
	sc.key = appendPathKey(sc.key[:0], sc.flat)
	sh := &s.shards[hashKey(sc.key)&s.mask]
	sh.mu.Lock()
	sh.ts.addViewKeyed(vp, sc.key, sc.flat, comms, larges, sc)
	sh.mu.Unlock()
	addScratchPool.Put(sc)
}

// NoteLarge records large communities; safe for concurrent use.
func (s *ShardedTupleStore) NoteLarge(ls bgp.LargeCommunities) {
	for _, lc := range ls {
		h := splitmix64(uint64(lc.GlobalAdmin)<<32|uint64(lc.LocalData1)) ^ splitmix64(uint64(lc.LocalData2))
		sh := &s.shards[h&s.mask]
		sh.mu.Lock()
		sh.ts.large[lc] = struct{}{}
		sh.mu.Unlock()
	}
}

// Len returns the number of unique tuples across all shards; safe for
// concurrent use.
func (s *ShardedTupleStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.ts.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stitch collapses the shards into one canonical TupleStore without
// moving any community or ASN payload: every shard span already points
// into the shared cross-shard storage, so stitching is index work —
// sort each shard's tuples into (path key, communities) order, renumber
// its paths into a contiguous global range, and copy the tuple records,
// path metas, and VP lists into disjoint pre-sized regions of the
// output. Shards are laid out in index order, and each is sorted by
// content, so the result is deterministic — the same input views
// produce a byte-identical store regardless of worker count or
// goroutine scheduling (shard routing is content-hashed, so shard
// membership itself never depends on scheduling). The per-shard work
// runs on up to workers goroutines (<= 0 means GOMAXPROCS): the
// regions are disjoint, so the phase parallelizes without locks.
//
// The stitched store takes ownership of the shard contents and the
// shared storage; the sharded store must not be used afterwards. Its
// lookup maps are left nil and rebuilt lazily on the first AddView —
// pure readers (Observe, snapshot write) never pay for them. VP lists
// are copied compacted (capacity == length), so the stitched store
// carries none of the shards' growth slack.
func (s *ShardedTupleStore) Stitch(workers int) *TupleStore {
	n := len(s.shards)
	tupleOff := make([]int, n+1)
	pathOff := make([]int, n+1)
	vpOff := make([]int, n+1)
	large := make(map[bgp.LargeCommunity]struct{})
	for i := range s.shards {
		ts := s.shards[i].ts
		nVPs := 0
		for j := range ts.tuples {
			nVPs += int(ts.tuples[j].vpLen)
		}
		tupleOff[i+1] = tupleOff[i] + len(ts.tuples)
		pathOff[i+1] = pathOff[i] + len(ts.paths)
		vpOff[i+1] = vpOff[i] + nVPs
		for lc := range ts.large {
			large[lc] = struct{}{}
		}
	}
	out := &TupleStore{
		shared:   s.shared,
		tuples:   make([]Tuple, tupleOff[n]),
		paths:    make([]pathMeta, pathOff[n]),
		pathKeys: make([]string, pathOff[n]),
		vpArena:  make([]uint32, vpOff[n]),
		large:    large,
	}
	ParallelFor(workers, n, func(i int) {
		ts := s.shards[i].ts
		order := make([]int32, len(ts.tuples))
		for j := range order {
			order[j] = int32(j)
		}
		slices.SortFunc(order, func(a, b int32) int {
			ta, tb := &ts.tuples[a], &ts.tuples[b]
			if c := strings.Compare(ts.pathKeys[ta.PathID], ts.pathKeys[tb.PathID]); c != 0 {
				return c
			}
			if c := compareComms(ts.TupleComms(ta), ts.TupleComms(tb)); c != 0 {
				return c
			}
			return compareLarges(ts.TupleLarges(ta), ts.TupleLarges(tb))
		})
		// Paths get their global IDs in ascending path-key order — the
		// same first-appearance order the sorted tuple emission implies,
		// matching what the old full merge produced.
		porder := make([]int32, len(ts.paths))
		for j := range porder {
			porder[j] = int32(j)
		}
		slices.SortFunc(porder, func(a, b int32) int {
			return strings.Compare(ts.pathKeys[a], ts.pathKeys[b])
		})
		remap := make([]int32, len(ts.paths))
		for rank, old := range porder {
			id := int32(pathOff[i] + rank)
			remap[old] = id
			out.paths[id] = ts.paths[old]
			out.pathKeys[id] = ts.pathKeys[old]
		}
		vpCur := uint32(vpOff[i])
		for j, ti := range order {
			t := &ts.tuples[ti]
			vps := ts.TupleVPs(t)
			copy(out.vpArena[vpCur:], vps)
			out.tuples[tupleOff[i]+j] = Tuple{
				PathID: remap[t.PathID],
				comms:  t.comms,
				lcomms: t.lcomms,
				vpOff:  vpCur, vpLen: uint32(len(vps)), vpCap: uint32(len(vps)),
			}
			vpCur += uint32(len(vps))
		}
	})
	return out
}

// Merge collapses the shards into one canonical TupleStore.
//
// Deprecated: Merge is the old name for the stitch phase; it now
// delegates to Stitch with default (GOMAXPROCS) parallelism.
func (s *ShardedTupleStore) Merge() *TupleStore {
	return s.Stitch(0)
}

// compareComms orders canonical community lists lexicographically.
func compareComms(a, b bgp.Communities) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// compareLarges orders canonical large-community lists
// lexicographically by element Compare order.
func compareLarges(a, b bgp.LargeCommunities) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// splitmix64 is the splitmix64 finalizer, used to spread large-community
// values across shards.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// InferenceSource abstracts "a queryable set of inferences" over its
// two implementations: the heap-resident *Inferences the classifier
// produces, and the mmap-backed *Mapped view over a v2 snapshot file.
// The serving layer programs against this interface so a replica can
// swap between heap and mapped generations without caring which it got.
package core

import (
	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
)

// ClusterSummary is the flat, pointer-free description of one cluster:
// everything a query response renders, with the per-member evidence
// pre-aggregated. Unlike Cluster it holds no slices, so producing one
// never allocates — the serving hot path returns these by value.
type ClusterSummary struct {
	Alpha  uint16
	Lo, Hi uint16
	Label  dict.Category
	// Size is the observed member-community count.
	Size int
	// OnPath/OffPath are the members' unique-path counts, summed.
	OnPath, OffPath int64
	PureOnPath      bool
	PureOffPath     bool
	Ratio           float64
}

// Verdict is the flat counterpart of Lookup: the full answer for one
// community with the deciding cluster embedded by value instead of by
// pointer. It is the allocation-free serving primitive — a Verdict can
// be produced straight from mapped snapshot pages without touching the
// heap.
type Verdict struct {
	Comm     bgp.Community
	Observed bool
	Category dict.Category
	Stats    CommunityStats
	Reason   ExcludeReason
	// HasCluster reports whether Cluster is meaningful (false for
	// excluded and unobserved communities).
	HasCluster bool
	Cluster    ClusterSummary
}

// InferenceSource is a read-only set of community-intent inferences.
// Implementations are immutable after construction and safe for
// unsynchronized concurrent readers.
type InferenceSource interface {
	// Verdict answers one community query without allocating.
	Verdict(c bgp.Community) Verdict
	// Category returns the label (CatUnknown when excluded/unobserved).
	Category(c bgp.Community) dict.Category
	// Observed is the number of distinct communities covered
	// (classified plus excluded).
	Observed() int
	// Counts returns how many communities were labeled action and
	// information.
	Counts() (action, information int)
	// ExcludedCount is how many observed communities were deliberately
	// left unclassified.
	ExcludedCount() int
	// ClusterCount is the number of inferred clusters; summaries are
	// addressed by index in (Alpha, Lo) order.
	ClusterCount() int
	// ClusterSummaryAt returns the i-th cluster's summary; i must be in
	// [0, ClusterCount()).
	ClusterSummaryAt(i int) ClusterSummary
	// EachLabeled visits every classified community. Order is
	// implementation-defined; callers needing determinism must sort.
	EachLabeled(fn func(c bgp.Community, cat dict.Category) bool)
	// Options returns the classifier options the inferences were
	// produced with (query-shaping fields only).
	Options() Options
	// Materialize returns the inferences as a heap *Inferences —
	// the implementation itself when already heap-resident, otherwise a
	// full reconstruction. The result must round-trip through the v1
	// snapshot format identically to the original classifier output.
	Materialize() *Inferences

	// Large-community (RFC 8092) counterparts. Sources built from
	// classic-only corpora report zero large clusters and answer every
	// large query as unobserved.

	// VerdictLarge answers one large-community query without
	// allocating.
	VerdictLarge(lc bgp.LargeCommunity) LargeVerdict
	// LargeObserved is the number of distinct large communities covered
	// (classified plus excluded).
	LargeObserved() int
	// LargeCounts returns how many large communities were labeled
	// action and information.
	LargeCounts() (action, information int)
	// LargeClusterCount is the number of inferred large clusters;
	// summaries are addressed by index in (Alpha, Fn, Lo) order.
	LargeClusterCount() int
	// LargeClusterSummaryAt returns the i-th large cluster's summary.
	LargeClusterSummaryAt(i int) LargeClusterSummary
	// EachLargeLabeled visits every classified large community; order
	// is implementation-defined.
	EachLargeLabeled(fn func(lc bgp.LargeCommunity, cat dict.Category) bool)
}

// Compile-time interface checks for both implementations.
var (
	_ InferenceSource = (*Inferences)(nil)
	_ InferenceSource = (*Mapped)(nil)
)

// NoLargeInferences provides the large-community half of
// InferenceSource with the classic-only answers: zero large clusters,
// every large query unobserved. Embed it in adapters and test fakes
// that only model classic communities.
type NoLargeInferences struct{}

// VerdictLarge reports every large community as unobserved.
func (NoLargeInferences) VerdictLarge(lc bgp.LargeCommunity) LargeVerdict {
	return LargeVerdict{Comm: lc, Reason: ExcludeUnobserved}
}

// LargeObserved is always zero.
func (NoLargeInferences) LargeObserved() int { return 0 }

// LargeCounts is always zero.
func (NoLargeInferences) LargeCounts() (action, information int) { return 0, 0 }

// LargeClusterCount is always zero.
func (NoLargeInferences) LargeClusterCount() int { return 0 }

// LargeClusterSummaryAt never has a valid index; it returns the zero
// summary.
func (NoLargeInferences) LargeClusterSummaryAt(int) LargeClusterSummary {
	return LargeClusterSummary{}
}

// EachLargeLabeled visits nothing.
func (NoLargeInferences) EachLargeLabeled(func(lc bgp.LargeCommunity, cat dict.Category) bool) {}

// summarize aggregates one heap cluster into its flat summary.
func summarize(cl *Cluster) ClusterSummary {
	s := ClusterSummary{
		Alpha: cl.Alpha, Lo: cl.Lo, Hi: cl.Hi, Label: cl.Label,
		Size:       len(cl.Members),
		PureOnPath: cl.PureOnPath, PureOffPath: cl.PureOffPath,
		Ratio: cl.Ratio,
	}
	for i := range cl.Members {
		s.OnPath += int64(cl.Members[i].OnPath)
		s.OffPath += int64(cl.Members[i].OffPath)
	}
	return s
}

// Verdict answers one community query from the heap index without
// allocating (the cluster summary is aggregated on the fly; member
// counts are small by construction).
func (inf *Inferences) Verdict(c bgp.Community) Verdict {
	e, ok := inf.index[c]
	if !ok {
		return Verdict{Comm: c, Reason: ExcludeUnobserved}
	}
	v := Verdict{Comm: c, Observed: true, Stats: e.stats}
	if e.cluster >= 0 {
		v.HasCluster = true
		v.Cluster = summarize(&inf.Clusters[e.cluster])
		v.Category = v.Cluster.Label
	} else {
		v.Reason = inf.Excluded[c]
	}
	return v
}

// ExcludedCount is how many observed communities were left
// unclassified.
func (inf *Inferences) ExcludedCount() int { return len(inf.Excluded) }

// ClusterCount returns the number of inferred clusters.
func (inf *Inferences) ClusterCount() int { return len(inf.Clusters) }

// ClusterSummaryAt summarizes the i-th cluster.
func (inf *Inferences) ClusterSummaryAt(i int) ClusterSummary {
	return summarize(&inf.Clusters[i])
}

// EachLabeled visits every classified community in map order.
func (inf *Inferences) EachLabeled(fn func(c bgp.Community, cat dict.Category) bool) {
	for c, cat := range inf.Labels {
		if !fn(c, cat) {
			return
		}
	}
}

// Options returns the classifier options behind these inferences.
func (inf *Inferences) Options() Options { return inf.Opts }

// Materialize returns the receiver: it is already heap-resident.
func (inf *Inferences) Materialize() *Inferences { return inf }

package core

import (
	"cmp"
	"slices"

	"bgpintent/internal/bgp"
)

// VPSweep answers "what would the method see with only these vantage
// points?" quickly, for the Fig. 10 experiment (50 random-subset trials
// per VP count). It precomputes, per (community, path) pair, the tuples
// that support it, and per tuple a VP bitmask, so one trial is a single
// linear pass instead of a full Observe.
type VPSweep struct {
	ts   *TupleStore
	orgs OrgMapper

	vps   []uint32          // all vantage points, sorted
	vpIdx map[uint32]int    // vp -> bit index
	words int               // bitmask words per tuple
	masks [][]uint64        // tuple index -> VP bitmask
	recs  []vpRec           // sorted by (comm, path)
	comms []bgp.Community   // distinct communities
	paths map[int32][]int32 // path -> tuple indexes (for α presence)
}

type vpRec struct {
	comm   bgp.Community
	path   int32
	tuple  int32
	onPath bool
}

// NewVPSweep indexes the store. opts supplies the org mapper for
// sibling-aware on-path flags (VPFilter in opts is ignored; subsets are
// given per Run call).
func NewVPSweep(ts *TupleStore, opts Options) *VPSweep {
	s := &VPSweep{
		ts:    ts,
		orgs:  opts.Orgs,
		vps:   ts.VPSet(),
		vpIdx: make(map[uint32]int),
		paths: make(map[int32][]int32),
	}
	for i, vp := range s.vps {
		s.vpIdx[vp] = i
	}
	s.words = (len(s.vps) + 63) / 64

	commSet := make(map[bgp.Community]struct{})
	tuples := ts.Tuples()
	for ti := range tuples {
		t := &tuples[ti]
		mask := make([]uint64, s.words)
		for _, vp := range ts.TupleVPs(t) {
			bit := s.vpIdx[vp]
			mask[bit/64] |= 1 << (bit % 64)
		}
		s.masks = append(s.masks, mask)
		s.paths[t.PathID] = append(s.paths[t.PathID], int32(ti))
		info := ts.Path(t.PathID)
		for _, c := range ts.TupleComms(t) {
			commSet[c] = struct{}{}
			s.recs = append(s.recs, vpRec{
				comm:   c,
				path:   t.PathID,
				tuple:  int32(ti),
				onPath: s.onPath(info, uint32(c.ASN())),
			})
		}
	}
	slices.SortFunc(s.recs, func(a, b vpRec) int {
		if c := cmp.Compare(a.comm, b.comm); c != 0 {
			return c
		}
		return cmp.Compare(a.path, b.path)
	})
	s.comms = make([]bgp.Community, 0, len(commSet))
	for c := range commSet {
		s.comms = append(s.comms, c)
	}
	slices.Sort(s.comms)
	return s
}

func (s *VPSweep) onPath(info PathInfo, alpha uint32) bool {
	if containsASN(info.ASNs, alpha) {
		return true
	}
	if s.orgs != nil {
		if org, ok := s.orgs.Org(alpha); ok && containsOrg(info.Orgs, org) {
			return true
		}
	}
	return false
}

// VPs returns all vantage points in the store.
func (s *VPSweep) VPs() []uint32 { return s.vps }

// Run computes the ObservationSet visible to the given VP subset.
func (s *VPSweep) Run(subset []uint32) *ObservationSet {
	mask := make([]uint64, s.words)
	for _, vp := range subset {
		if bit, ok := s.vpIdx[vp]; ok {
			mask[bit/64] |= 1 << (bit % 64)
		}
	}
	active := func(tuple int32) bool {
		tm := s.masks[tuple]
		for w := 0; w < s.words; w++ {
			if tm[w]&mask[w] != 0 {
				return true
			}
		}
		return false
	}

	os := &ObservationSet{
		Stats:     make(map[bgp.Community]*CommunityStats),
		asnOnPath: make(map[uint32]bool),
		orgOnPath: make(map[string]bool),
		orgs:      s.orgs,
	}
	// Active paths determine which ASNs/orgs are on-path at all.
	for pathID, tuples := range s.paths {
		seen := false
		for _, ti := range tuples {
			if active(ti) {
				seen = true
				break
			}
		}
		if !seen {
			continue
		}
		info := s.ts.Path(pathID)
		for _, asn := range info.ASNs {
			os.asnOnPath[asn] = true
		}
		for _, org := range info.Orgs {
			os.orgOnPath[org] = true
		}
	}
	// One pass over the sorted records: count each (comm, path) pair
	// once if any of its tuples is active.
	i := 0
	for i < len(s.recs) {
		comm := s.recs[i].comm
		var st *CommunityStats
		for i < len(s.recs) && s.recs[i].comm == comm {
			path := s.recs[i].path
			onPath := s.recs[i].onPath
			counted := false
			for i < len(s.recs) && s.recs[i].comm == comm && s.recs[i].path == path {
				if !counted && active(s.recs[i].tuple) {
					counted = true
				}
				i++
			}
			if counted {
				if st == nil {
					st = &CommunityStats{Comm: comm}
					os.Stats[comm] = st
				}
				if onPath {
					st.OnPath++
				} else {
					st.OffPath++
				}
			}
		}
	}
	return os
}

// Package core implements the paper's contribution: classifying BGP
// communities as action or information. The pipeline mirrors §5.2 —
// extract unique (AS path, communities) tuples from BGP data, cluster
// each AS's observed β values by a minimum gap, compute each cluster's
// on-path:off-path ratio, and label the cluster's communities.
package core

import (
	"encoding/binary"
	"sort"
	"sync"

	"bgpintent/internal/bgp"
)

// PathInfo is one interned AS path.
type PathInfo struct {
	ASNs []uint32 // distinct ASNs on the path, in first-appearance order
	Orgs []string // distinct organizations of those ASNs (when mapped)
}

// Tuple is one unique (AS path, communities) observation with the
// vantage points that reported it.
type Tuple struct {
	PathID int32
	Comms  bgp.Communities // canonical (sorted, deduplicated)
	VPs    []uint32        // sorted distinct vantage points
}

// tupleKey is the fixed-size dedup key of one (path, communities)
// tuple: the interned path ID plus a 64-bit hash of the canonical
// communities. Tuples whose communities collide on the hash are
// disambiguated by comparing the communities themselves (the index maps
// to a candidate list), so the key is compact without being lossy.
type tupleKey struct {
	pathID    int32
	commsHash uint64
}

// TupleStore interns AS paths and deduplicates (path, communities)
// tuples, the §4 data reduction (the paper extracts ≈174M such tuples
// from one week of RouteViews/RIS data).
type TupleStore struct {
	paths    []PathInfo
	pathIDs  map[string]int32
	pathKeys []string // path ID -> binary path key (shares pathIDs' key storage)
	tuples   []*Tuple
	tupleIdx map[tupleKey][]int32

	// large counts distinct large (96-bit) communities seen alongside the
	// regular ones. The paper records their prevalence (11,524 vs 88,982
	// regular in May 2023) and defers their classification; so do we.
	large map[bgp.LargeCommunity]struct{}
}

// NewTupleStore returns an empty store.
func NewTupleStore() *TupleStore {
	return &TupleStore{
		pathIDs:  make(map[string]int32),
		tupleIdx: make(map[tupleKey][]int32),
		large:    make(map[bgp.LargeCommunity]struct{}),
	}
}

// NoteLarge records large communities for the corpus statistics; they
// are not classified.
func (ts *TupleStore) NoteLarge(ls bgp.LargeCommunities) {
	for _, lc := range ls {
		ts.large[lc] = struct{}{}
	}
}

// LargeCommunityCount returns the number of distinct large communities
// noted.
func (ts *TupleStore) LargeCommunityCount() int { return len(ts.large) }

// appendPathKey renders a path (with prepending collapsed) to a compact
// binary key, appending to dst.
func appendPathKey(dst []byte, path []uint32) []byte {
	var prev uint32
	for i, asn := range path {
		if i > 0 && asn == prev {
			continue
		}
		prev = asn
		dst = binary.LittleEndian.AppendUint32(dst, asn)
	}
	return dst
}

// hashKey is FNV-1a over a binary key; it routes paths to shards and
// feeds tupleKey.commsHash.
func hashKey(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// hashComms is FNV-1a over canonical communities.
func hashComms(comms bgp.Communities) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range comms {
		v := uint32(c)
		h ^= uint64(v & 0xff)
		h *= prime64
		h ^= uint64(v >> 8 & 0xff)
		h *= prime64
		h ^= uint64(v >> 16 & 0xff)
		h *= prime64
		h ^= uint64(v >> 24)
		h *= prime64
	}
	return h
}

// addScratch holds the per-AddView working buffers; pooled so the hot
// path allocates nothing when it hits existing paths and tuples.
type addScratch struct {
	key   []byte
	comms bgp.Communities
}

var addScratchPool = sync.Pool{New: func() any { return new(addScratch) }}

// canonicalInto writes the sorted, de-duplicated form of comms into dst
// (reusing its capacity) and returns it. Unlike Communities.Canonical it
// does not allocate fresh storage per call; community lists are short,
// so an insertion sort beats sort.Slice and its closure allocation.
func canonicalInto(dst, comms bgp.Communities) bgp.Communities {
	dst = append(dst[:0], comms...)
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j] < dst[j-1]; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	w := 0
	for i := range dst {
		if i == 0 || dst[i] != dst[i-1] {
			dst[w] = dst[i]
			w++
		}
	}
	return dst[:w]
}

// commsEqual reports whether two canonical community lists are equal.
func commsEqual(a, b bgp.Communities) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// internPathKey returns the path ID for a path whose binary key has
// already been rendered, creating the entry if new. The key bytes are
// only copied to a string on insertion; lookups are allocation-free.
func (ts *TupleStore) internPathKey(key []byte, path []uint32) int32 {
	if id, ok := ts.pathIDs[string(key)]; ok {
		return id
	}
	id := int32(len(ts.paths))
	seen := make(map[uint32]struct{}, len(path))
	info := PathInfo{ASNs: make([]uint32, 0, len(path))}
	for _, asn := range path {
		if _, dup := seen[asn]; dup {
			continue
		}
		seen[asn] = struct{}{}
		info.ASNs = append(info.ASNs, asn)
	}
	skey := string(key)
	ts.paths = append(ts.paths, info)
	ts.pathIDs[skey] = id
	ts.pathKeys = append(ts.pathKeys, skey)
	return id
}

// AddView records one vantage-point observation. The communities are
// canonicalized; observations differing only in VP collapse into one
// tuple. Paths and communities may be reused by the caller; the store
// copies what it keeps.
func (ts *TupleStore) AddView(vp uint32, path []uint32, comms bgp.Communities) {
	if len(path) == 0 {
		return
	}
	sc := addScratchPool.Get().(*addScratch)
	sc.key = appendPathKey(sc.key[:0], path)
	ts.addViewKeyed(vp, sc.key, path, comms, sc)
	addScratchPool.Put(sc)
}

// addViewKeyed is AddView with the path key pre-rendered into sc.key;
// sc also carries the canonicalization scratch. Shared by the plain and
// sharded stores.
func (ts *TupleStore) addViewKeyed(vp uint32, key []byte, path []uint32, comms bgp.Communities, sc *addScratch) {
	id := ts.internPathKey(key, path)
	sc.comms = canonicalInto(sc.comms, comms)
	canon := sc.comms
	tk := tupleKey{pathID: id, commsHash: hashComms(canon)}
	for _, ti := range ts.tupleIdx[tk] {
		t := ts.tuples[ti]
		if !commsEqual(t.Comms, canon) {
			continue
		}
		pos := sort.Search(len(t.VPs), func(i int) bool { return t.VPs[i] >= vp })
		if pos == len(t.VPs) || t.VPs[pos] != vp {
			t.VPs = append(t.VPs, 0)
			copy(t.VPs[pos+1:], t.VPs[pos:])
			t.VPs[pos] = vp
		}
		return
	}
	var owned bgp.Communities
	if len(canon) > 0 {
		owned = append(bgp.Communities(nil), canon...)
	}
	t := &Tuple{PathID: id, Comms: owned, VPs: []uint32{vp}}
	ts.tupleIdx[tk] = append(ts.tupleIdx[tk], int32(len(ts.tuples)))
	ts.tuples = append(ts.tuples, t)
}

// Len returns the number of unique tuples.
func (ts *TupleStore) Len() int { return len(ts.tuples) }

// PathCount returns the number of interned unique paths.
func (ts *TupleStore) PathCount() int { return len(ts.paths) }

// Path returns the interned path info for a tuple's PathID.
func (ts *TupleStore) Path(id int32) *PathInfo { return &ts.paths[id] }

// Tuples returns the tuple list (shared storage; do not mutate).
func (ts *TupleStore) Tuples() []*Tuple { return ts.tuples }

// VPSet returns the distinct vantage points across all tuples.
func (ts *TupleStore) VPSet() []uint32 {
	set := make(map[uint32]struct{})
	for _, t := range ts.tuples {
		for _, vp := range t.VPs {
			set[vp] = struct{}{}
		}
	}
	out := make([]uint32, 0, len(set))
	for vp := range set {
		out = append(out, vp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Communities returns the distinct communities across all tuples, sorted.
func (ts *TupleStore) Communities() []bgp.Community {
	set := make(map[bgp.Community]struct{})
	for _, t := range ts.tuples {
		for _, c := range t.Comms {
			set[c] = struct{}{}
		}
	}
	out := make([]bgp.Community, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllPaths returns every interned path's distinct-ASN sequence (shared
// storage; do not mutate). Suitable input for AS-relationship inference.
func (ts *TupleStore) AllPaths() [][]uint32 {
	out := make([][]uint32, len(ts.paths))
	for i := range ts.paths {
		out[i] = ts.paths[i].ASNs
	}
	return out
}

// OrgMapper resolves an ASN to its organization, the as2org sibling
// context (§4).
type OrgMapper interface {
	Org(asn uint32) (string, bool)
}

// AnnotateOrgs fills each interned path's organization list using the
// mapper. Call once after loading all data and before classification
// when sibling awareness is wanted.
func (ts *TupleStore) AnnotateOrgs(orgs OrgMapper) {
	for i := range ts.paths {
		p := &ts.paths[i]
		p.Orgs = p.Orgs[:0]
		seen := make(map[string]struct{}, len(p.ASNs))
		for _, asn := range p.ASNs {
			if org, ok := orgs.Org(asn); ok {
				if _, dup := seen[org]; !dup {
					seen[org] = struct{}{}
					p.Orgs = append(p.Orgs, org)
				}
			}
		}
	}
}

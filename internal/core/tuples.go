// Package core implements the paper's contribution: classifying BGP
// communities as action or information. The pipeline mirrors §5.2 —
// extract unique (AS path, communities) tuples from BGP data, cluster
// each AS's observed β values by a minimum gap, compute each cluster's
// on-path:off-path ratio, and label the cluster's communities.
package core

import (
	"encoding/binary"
	"slices"
	"sync"

	"bgpintent/internal/bgp"
)

// span is an offset+length view into one of the store's shared arenas.
// Offsets are 32-bit: the paper-scale corpus (≈174M tuples) stays well
// under 4G arena entries per store because ingestion shards first.
type span struct {
	off, n uint32
}

// PathInfo is one interned AS path, viewed out of the store's arenas.
// The slices alias shared storage and must not be mutated.
type PathInfo struct {
	ASNs []uint32 // distinct ASNs on the path, in first-appearance order
	Orgs []string // distinct organizations of those ASNs (when mapped)
}

// pathMeta locates one interned path's ASNs and organizations in the
// store arenas.
type pathMeta struct {
	asns span
	orgs span
}

// Tuple is one unique (AS path, communities) observation. The
// communities and vantage points live in the store's shared arenas;
// read them through TupleStore.TupleComms and TupleStore.TupleVPs.
// Tuples are plain values in one flat slice — no per-tuple pointers,
// no per-tuple slice headers.
type Tuple struct {
	PathID int32
	comms  span
	// lcomms locates the tuple's canonical large-community list (RFC
	// 8092); the zero span means none. Large communities are part of
	// tuple identity: observations that differ only in their large
	// communities are distinct tuples.
	lcomms span
	// The VP list is the one per-tuple field that grows after creation,
	// so it carries a capacity: when full it relocates to the arena
	// tail with doubled capacity (amortized O(1), bounded dead space).
	vpOff, vpLen, vpCap uint32
}

// tupleKey is the fixed-size dedup key of one (path, communities,
// large communities) tuple: the interned path ID plus a 64-bit hash of
// each canonical community list. Tuples whose lists collide on the
// hashes are disambiguated by comparing the lists themselves (a rare
// overflow list holds the extra candidates), so the key is compact
// without being lossy. Classic-only tuples carry largeHash 0, so their
// keys are exactly the pre-large ones.
type tupleKey struct {
	pathID    int32
	commsHash uint64
	largeHash uint64
}

// TupleStore interns AS paths and deduplicates (path, communities)
// tuples, the §4 data reduction (the paper extracts ≈174M such tuples
// from one week of RouteViews/RIS data).
//
// Storage is columnar (struct-of-arrays): tuples are one flat []Tuple,
// and their variable-length payloads — community lists, VP lists, path
// ASN sequences, path org lists — are offset+length views into four
// append-only arenas. The hot ingest path therefore allocates only
// when an arena or the flat slice grows, not per tuple.
type TupleStore struct {
	// shared, when non-nil, switches the store to shared-storage mode:
	// community lists resolve through the cross-shard intern table and
	// path ASN sequences live in the cross-shard arena, so spans are
	// global and a ShardedTupleStore.Stitch moves no payload data. A
	// plain NewTupleStore leaves it nil and keeps the local arenas.
	shared *storeShared

	paths    []pathMeta
	asnArena []uint32 // all interned path ASN sequences (nil in shared mode)
	orgArena []string // all path org lists (filled by AnnotateOrgs)
	pathIDs  map[string]int32
	pathKeys []string // path ID -> binary path key (shares pathIDs' key storage)

	tuples     []Tuple
	commArena  []bgp.Community      // all tuple community lists (append-only; nil in shared mode)
	largeArena []bgp.LargeCommunity // all tuple large-community lists (append-only; nil in shared mode)
	vpArena    []uint32             // all tuple VP lists (relocating; see Tuple)

	// tupleIdx maps a dedup key to its first tuple; tupleDup holds the
	// (vanishingly rare) extra tuples whose communities collide on the
	// hash, so the common case costs one map entry and zero slices. In
	// shared mode the key's commsHash field carries the exact intern ref
	// instead of a content hash, so collisions cannot happen and
	// tupleDup stays empty. A stitched store leaves both nil; the first
	// AddView rebuilds them (see reindex).
	tupleIdx map[tupleKey]int32
	tupleDup map[tupleKey][]int32

	// large tracks the distinct large (96-bit) communities seen, for the
	// corpus statistics. The paper records their prevalence (11,524 vs
	// 88,982 regular in May 2023) and defers their classification; this
	// pipeline goes further and classifies them — large communities
	// attach to tuples (see AddViewLarge) and flow through the same
	// observe/cluster/classify stages as classic ones.
	large map[bgp.LargeCommunity]struct{}
}

// NewTupleStore returns an empty store.
func NewTupleStore() *TupleStore {
	return &TupleStore{
		pathIDs:  make(map[string]int32),
		tupleIdx: make(map[tupleKey]int32),
		large:    make(map[bgp.LargeCommunity]struct{}),
	}
}

// NoteLarge records large communities in the distinct-large statistics
// without attaching them to a tuple — the path for observations whose
// AS path is empty or unusable. Views with a usable path should go
// through AddViewLarge, which both notes and classifies.
func (ts *TupleStore) NoteLarge(ls bgp.LargeCommunities) {
	for _, lc := range ls {
		ts.large[lc] = struct{}{}
	}
}

// LargeCommunityCount returns the number of distinct large communities
// noted.
func (ts *TupleStore) LargeCommunityCount() int { return len(ts.large) }

// appendPathKey renders a path (with prepending collapsed) to a compact
// binary key, appending to dst.
func appendPathKey(dst []byte, path []uint32) []byte {
	var prev uint32
	for i, asn := range path {
		if i > 0 && asn == prev {
			continue
		}
		prev = asn
		dst = binary.LittleEndian.AppendUint32(dst, asn)
	}
	return dst
}

// addScratch holds the per-AddView working buffers; pooled so the hot
// path allocates nothing when it hits existing paths and tuples.
type addScratch struct {
	key    []byte
	comms  bgp.Communities
	larges bgp.LargeCommunities // large-community canonicalization buffer
	flat   []uint32             // AS-path flattening buffer for AddViewASPath
	asns   []uint32             // distinct-ASN buffer for shared-mode path interning
}

var addScratchPool = sync.Pool{New: func() any { return new(addScratch) }}

// canonicalInto writes the sorted, de-duplicated form of comms into dst
// (reusing its capacity) and returns it. Unlike Communities.Canonical it
// does not allocate fresh storage per call; community lists are short,
// so an insertion sort beats sort.Slice and its closure allocation.
func canonicalInto(dst, comms bgp.Communities) bgp.Communities {
	dst = append(dst[:0], comms...)
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j] < dst[j-1]; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	w := 0
	for i := range dst {
		if i == 0 || dst[i] != dst[i-1] {
			dst[w] = dst[i]
			w++
		}
	}
	return dst[:w]
}

// commsEqual reports whether two canonical community lists are equal.
func commsEqual(a, b bgp.Communities) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// canonicalLargeInto writes the sorted, de-duplicated form of ls into
// dst (reusing its capacity) and returns it — the large-community
// sibling of canonicalInto.
func canonicalLargeInto(dst, ls bgp.LargeCommunities) bgp.LargeCommunities {
	dst = append(dst[:0], ls...)
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].Compare(dst[j-1]) < 0; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	w := 0
	for i := range dst {
		if i == 0 || dst[i] != dst[i-1] {
			dst[w] = dst[i]
			w++
		}
	}
	return dst[:w]
}

// largesEqual reports whether two canonical large-community lists are
// equal.
func largesEqual(a, b bgp.LargeCommunities) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// internPathKey returns the path ID for a path whose binary key has
// already been rendered, creating the entry if new. The key bytes are
// only copied to a string on insertion; lookups are allocation-free.
// The distinct-ASN sequence is appended to the store's ASN arena (AS
// paths are short, so the dedup scan beats a map); in shared mode it
// goes through pooled scratch into the cross-shard arena, so the
// resulting span is globally addressed.
func (ts *TupleStore) internPathKey(key []byte, path []uint32, sc *addScratch) int32 {
	if id, ok := ts.pathIDs[string(key)]; ok {
		return id
	}
	id := int32(len(ts.paths))
	var asns span
	if ts.shared != nil {
		buf := sc.asns[:0]
		for _, asn := range path {
			if !containsASN(buf, asn) {
				buf = append(buf, asn)
			}
		}
		sc.asns = buf
		asns = span{off: ts.shared.asns.append(buf), n: uint32(len(buf))}
	} else {
		off := uint32(len(ts.asnArena))
		for _, asn := range path {
			if !containsASN(ts.asnArena[off:], asn) {
				ts.asnArena = append(ts.asnArena, asn)
			}
		}
		asns = span{off: off, n: uint32(len(ts.asnArena)) - off}
	}
	skey := string(key)
	ts.paths = append(ts.paths, pathMeta{asns: asns})
	ts.pathIDs[skey] = id
	ts.pathKeys = append(ts.pathKeys, skey)
	return id
}

// AddView records one vantage-point observation without large
// communities; see AddViewLarge.
func (ts *TupleStore) AddView(vp uint32, path []uint32, comms bgp.Communities) {
	ts.AddViewLarge(vp, path, comms, nil)
}

// AddViewLarge records one vantage-point observation. Both community
// lists are canonicalized; observations differing only in VP collapse
// into one tuple, while the large communities are part of tuple
// identity. Paths and communities may be reused by the caller; the
// store copies what it keeps. Large communities are also noted in the
// distinct-large statistics, even when the path is empty and no tuple
// results.
func (ts *TupleStore) AddViewLarge(vp uint32, path []uint32, comms bgp.Communities, larges bgp.LargeCommunities) {
	for _, lc := range larges {
		ts.large[lc] = struct{}{}
	}
	if len(path) == 0 {
		return
	}
	sc := addScratchPool.Get().(*addScratch)
	sc.key = appendPathKey(sc.key[:0], path)
	ts.addViewKeyed(vp, sc.key, path, comms, larges, sc)
	addScratchPool.Put(sc)
}

// addViewKeyed is AddViewLarge with the path key pre-rendered into
// sc.key; sc also carries the canonicalization scratch. Shared by the
// plain and sharded stores. Callers are responsible for noting larges
// in ts.large.
func (ts *TupleStore) addViewKeyed(vp uint32, key []byte, path []uint32, comms bgp.Communities, larges bgp.LargeCommunities, sc *addScratch) {
	if ts.tupleIdx == nil {
		ts.reindex()
	}
	id := ts.internPathKey(key, path, sc)
	sc.comms = canonicalInto(sc.comms, comms)
	canon := sc.comms
	sc.larges = canonicalLargeInto(sc.larges, larges)
	canonLarge := sc.larges
	if ts.shared != nil {
		// The intern refs are exact identities for the canonical lists, so
		// the dedup key needs no content comparison and cannot collide.
		ref := ts.shared.comms.intern(canon)
		lref := ts.shared.larges.intern(canonLarge)
		tk := tupleKey{pathID: id, commsHash: ref, largeHash: lref}
		if ti, ok := ts.tupleIdx[tk]; ok {
			ts.addVP(ti, vp)
			return
		}
		ts.tupleIdx[tk] = int32(len(ts.tuples))
		off, n := unpackRef(ref)
		loff, ln := unpackRef(lref)
		vpOff := uint32(len(ts.vpArena))
		ts.vpArena = append(ts.vpArena, vp)
		ts.tuples = append(ts.tuples, Tuple{
			PathID: id,
			comms:  span{off: off, n: n},
			lcomms: span{off: loff, n: ln},
			vpOff:  vpOff, vpLen: 1, vpCap: 1,
		})
		return
	}
	tk := tupleKey{pathID: id, commsHash: hashComms(canon), largeHash: hashLarges(canonLarge)}
	if ti, ok := ts.tupleIdx[tk]; ok {
		if ts.addVPIfMatch(ti, canon, canonLarge, vp) {
			return
		}
		for _, di := range ts.tupleDup[tk] {
			if ts.addVPIfMatch(di, canon, canonLarge, vp) {
				return
			}
		}
		// Hash collision: distinct community lists under the same key.
		if ts.tupleDup == nil {
			ts.tupleDup = make(map[tupleKey][]int32)
		}
		ts.tupleDup[tk] = append(ts.tupleDup[tk], int32(len(ts.tuples)))
	} else {
		ts.tupleIdx[tk] = int32(len(ts.tuples))
	}
	commOff := uint32(len(ts.commArena))
	ts.commArena = append(ts.commArena, canon...)
	largeOff := uint32(len(ts.largeArena))
	ts.largeArena = append(ts.largeArena, canonLarge...)
	vpOff := uint32(len(ts.vpArena))
	ts.vpArena = append(ts.vpArena, vp)
	ts.tuples = append(ts.tuples, Tuple{
		PathID: id,
		comms:  span{off: commOff, n: uint32(len(canon))},
		lcomms: span{off: largeOff, n: uint32(len(canonLarge))},
		vpOff:  vpOff, vpLen: 1, vpCap: 1,
	})
}

// reindex rebuilds the lookup maps from the columnar data. A stitched
// store arrives with nil maps — readers never need them, and building
// them eagerly would put a serial map-construction pass back into the
// load path — so the first post-stitch AddView pays for them lazily.
func (ts *TupleStore) reindex() {
	ts.pathIDs = make(map[string]int32, len(ts.pathKeys))
	for i, key := range ts.pathKeys {
		ts.pathIDs[key] = int32(i)
	}
	ts.tupleIdx = make(map[tupleKey]int32, len(ts.tuples))
	for i := range ts.tuples {
		t := &ts.tuples[i]
		var tk tupleKey
		if ts.shared != nil {
			tk = tupleKey{
				pathID:    t.PathID,
				commsHash: packRef(t.comms.off, t.comms.n),
				largeHash: packRef(t.lcomms.off, t.lcomms.n),
			}
		} else {
			tk = tupleKey{
				pathID:    t.PathID,
				commsHash: hashComms(ts.TupleComms(t)),
				largeHash: hashLarges(ts.TupleLarges(t)),
			}
		}
		if _, dup := ts.tupleIdx[tk]; dup {
			if ts.tupleDup == nil {
				ts.tupleDup = make(map[tupleKey][]int32)
			}
			ts.tupleDup[tk] = append(ts.tupleDup[tk], int32(i))
		} else {
			ts.tupleIdx[tk] = int32(i)
		}
	}
	if ts.large == nil {
		ts.large = make(map[bgp.LargeCommunity]struct{})
	}
}

// addVPIfMatch merges vp into tuple ti if both of its community lists
// equal the canonical candidates, reporting whether it did.
func (ts *TupleStore) addVPIfMatch(ti int32, canon bgp.Communities, canonLarge bgp.LargeCommunities, vp uint32) bool {
	if !commsEqual(ts.TupleComms(&ts.tuples[ti]), canon) {
		return false
	}
	if !largesEqual(ts.TupleLarges(&ts.tuples[ti]), canonLarge) {
		return false
	}
	ts.addVP(ti, vp)
	return true
}

// addVP inserts vp into tuple ti's sorted VP list (no-op when present).
func (ts *TupleStore) addVP(ti int32, vp uint32) {
	t := &ts.tuples[ti]
	vps := ts.vpArena[t.vpOff : t.vpOff+t.vpLen]
	pos, found := slices.BinarySearch(vps, vp)
	if found {
		return
	}
	if t.vpLen == t.vpCap {
		ts.growVPs(t)
	}
	vps = ts.vpArena[t.vpOff : t.vpOff+t.vpLen+1]
	copy(vps[pos+1:], vps[pos:])
	vps[pos] = vp
	t.vpLen++
}

// growVPs doubles a tuple's VP capacity: in place when the tuple sits at
// the arena tail, otherwise by relocating it there. Each relocation
// doubles the capacity, so the dead space left behind stays bounded by
// the live data.
func (ts *TupleStore) growVPs(t *Tuple) {
	newCap := t.vpCap * 2
	if int(t.vpOff+t.vpCap) != len(ts.vpArena) {
		newOff := uint32(len(ts.vpArena))
		ts.vpArena = append(ts.vpArena, ts.vpArena[t.vpOff:t.vpOff+t.vpLen]...)
		t.vpOff = newOff
	}
	need := int(t.vpOff) + int(newCap)
	ts.vpArena = slices.Grow(ts.vpArena, need-len(ts.vpArena))[:need]
	t.vpCap = newCap
}

// Len returns the number of unique tuples.
func (ts *TupleStore) Len() int { return len(ts.tuples) }

// PathCount returns the number of interned unique paths.
func (ts *TupleStore) PathCount() int { return len(ts.paths) }

// Path returns the interned path info for a tuple's PathID. The
// returned views alias the store arenas; do not mutate them.
func (ts *TupleStore) Path(id int32) PathInfo {
	p := &ts.paths[id]
	return PathInfo{
		ASNs: ts.pathASNs(p),
		Orgs: ts.orgArena[p.orgs.off : p.orgs.off+p.orgs.n],
	}
}

// pathASNs resolves a path's distinct-ASN span against whichever arena
// holds it (cross-shard in shared mode, local otherwise).
func (ts *TupleStore) pathASNs(p *pathMeta) []uint32 {
	if ts.shared != nil {
		return ts.shared.asns.view(p.asns.off, p.asns.n)
	}
	return ts.asnArena[p.asns.off : p.asns.off+p.asns.n]
}

// Tuples returns the flat tuple slice (shared storage; do not mutate).
// Iterate by index and resolve payloads through TupleComms/TupleVPs.
func (ts *TupleStore) Tuples() []Tuple { return ts.tuples }

// TupleComms returns a tuple's canonical community list (a view into
// the community arena or the shared intern arena; do not mutate).
func (ts *TupleStore) TupleComms(t *Tuple) bgp.Communities {
	if ts.shared != nil {
		return ts.shared.comms.view(t.comms.off, t.comms.n)
	}
	return ts.commArena[t.comms.off : t.comms.off+t.comms.n]
}

// TupleLarges returns a tuple's canonical large-community list (a view
// into the large arena or the shared intern arena; do not mutate). Nil
// for classic-only tuples.
func (ts *TupleStore) TupleLarges(t *Tuple) bgp.LargeCommunities {
	if t.lcomms.n == 0 {
		return nil
	}
	if ts.shared != nil {
		return ts.shared.larges.view(t.lcomms.off, t.lcomms.n)
	}
	return ts.largeArena[t.lcomms.off : t.lcomms.off+t.lcomms.n]
}

// TupleVPs returns a tuple's sorted distinct vantage points (a view
// into the VP arena; do not mutate).
func (ts *TupleStore) TupleVPs(t *Tuple) []uint32 {
	return ts.vpArena[t.vpOff : t.vpOff+t.vpLen]
}

// VPSet returns the distinct vantage points across all tuples.
func (ts *TupleStore) VPSet() []uint32 {
	out := make([]uint32, 0, 64)
	for i := range ts.tuples {
		out = append(out, ts.TupleVPs(&ts.tuples[i])...)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// Communities returns the distinct communities across all tuples, sorted.
func (ts *TupleStore) Communities() []bgp.Community {
	if ts.shared != nil {
		// The shared intern arena holds every list seen by ANY store on
		// the same storeShared, so walk this store's tuples instead.
		n := 0
		for i := range ts.tuples {
			n += int(ts.tuples[i].comms.n)
		}
		out := make([]bgp.Community, 0, n)
		for i := range ts.tuples {
			out = append(out, ts.TupleComms(&ts.tuples[i])...)
		}
		slices.Sort(out)
		return slices.Compact(out)
	}
	// The community arena is append-only with no dead regions, so it is
	// exactly the concatenation of every tuple's list.
	out := make([]bgp.Community, len(ts.commArena))
	copy(out, ts.commArena)
	slices.Sort(out)
	return slices.Compact(out)
}

// AllPaths returns every interned path's distinct-ASN sequence (views
// into shared storage; do not mutate). Suitable input for
// AS-relationship inference.
func (ts *TupleStore) AllPaths() [][]uint32 {
	out := make([][]uint32, len(ts.paths))
	for i := range ts.paths {
		out[i] = ts.pathASNs(&ts.paths[i])
	}
	return out
}

// OrgMapper resolves an ASN to its organization, the as2org sibling
// context (§4).
type OrgMapper interface {
	Org(asn uint32) (string, bool)
}

// AnnotateOrgs fills each interned path's organization list using the
// mapper. Call once after loading all data and before classification
// when sibling awareness is wanted.
func (ts *TupleStore) AnnotateOrgs(orgs OrgMapper) {
	ts.orgArena = ts.orgArena[:0]
	for i := range ts.paths {
		p := &ts.paths[i]
		off := uint32(len(ts.orgArena))
		for _, asn := range ts.pathASNs(p) {
			if org, ok := orgs.Org(asn); ok {
				if !containsOrg(ts.orgArena[off:], org) {
					ts.orgArena = append(ts.orgArena, org)
				}
			}
		}
		p.orgs = span{off: off, n: uint32(len(ts.orgArena)) - off}
	}
}

// Package core implements the paper's contribution: classifying BGP
// communities as action or information. The pipeline mirrors §5.2 —
// extract unique (AS path, communities) tuples from BGP data, cluster
// each AS's observed β values by a minimum gap, compute each cluster's
// on-path:off-path ratio, and label the cluster's communities.
package core

import (
	"encoding/binary"
	"sort"

	"bgpintent/internal/bgp"
)

// PathInfo is one interned AS path.
type PathInfo struct {
	ASNs []uint32 // distinct ASNs on the path, in first-appearance order
	Orgs []string // distinct organizations of those ASNs (when mapped)
}

// Tuple is one unique (AS path, communities) observation with the
// vantage points that reported it.
type Tuple struct {
	PathID int32
	Comms  bgp.Communities // canonical (sorted, deduplicated)
	VPs    []uint32        // sorted distinct vantage points
}

// TupleStore interns AS paths and deduplicates (path, communities)
// tuples, the §4 data reduction (the paper extracts ≈174M such tuples
// from one week of RouteViews/RIS data).
type TupleStore struct {
	paths    []PathInfo
	pathIDs  map[string]int32
	tuples   []*Tuple
	tupleIdx map[string]int32

	// large counts distinct large (96-bit) communities seen alongside the
	// regular ones. The paper records their prevalence (11,524 vs 88,982
	// regular in May 2023) and defers their classification; so do we.
	large map[bgp.LargeCommunity]struct{}
}

// NewTupleStore returns an empty store.
func NewTupleStore() *TupleStore {
	return &TupleStore{
		pathIDs:  make(map[string]int32),
		tupleIdx: make(map[string]int32),
		large:    make(map[bgp.LargeCommunity]struct{}),
	}
}

// NoteLarge records large communities for the corpus statistics; they
// are not classified.
func (ts *TupleStore) NoteLarge(ls bgp.LargeCommunities) {
	for _, lc := range ls {
		ts.large[lc] = struct{}{}
	}
}

// LargeCommunityCount returns the number of distinct large communities
// noted.
func (ts *TupleStore) LargeCommunityCount() int { return len(ts.large) }

// pathKey renders a path (with prepending collapsed) to a compact binary
// key.
func pathKey(path []uint32) string {
	buf := make([]byte, 0, 4*len(path))
	var prev uint32
	for i, asn := range path {
		if i > 0 && asn == prev {
			continue
		}
		prev = asn
		buf = binary.LittleEndian.AppendUint32(buf, asn)
	}
	return string(buf)
}

// commsKey renders canonical communities to a compact binary key.
func commsKey(comms bgp.Communities) string {
	buf := make([]byte, 0, 4*len(comms))
	for _, c := range comms {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	return string(buf)
}

// internPath returns the path ID for a (prepend-collapsed) path,
// creating it if new. Distinct ASNs are recorded once.
func (ts *TupleStore) internPath(path []uint32) int32 {
	key := pathKey(path)
	if id, ok := ts.pathIDs[key]; ok {
		return id
	}
	id := int32(len(ts.paths))
	seen := make(map[uint32]struct{}, len(path))
	info := PathInfo{ASNs: make([]uint32, 0, len(path))}
	for _, asn := range path {
		if _, dup := seen[asn]; dup {
			continue
		}
		seen[asn] = struct{}{}
		info.ASNs = append(info.ASNs, asn)
	}
	ts.paths = append(ts.paths, info)
	ts.pathIDs[key] = id
	return id
}

// AddView records one vantage-point observation. The communities are
// canonicalized; observations differing only in VP collapse into one
// tuple. Paths and communities may be reused by the caller; the store
// copies what it keeps.
func (ts *TupleStore) AddView(vp uint32, path []uint32, comms bgp.Communities) {
	if len(path) == 0 {
		return
	}
	id := ts.internPath(path)
	canon := comms.Canonical()
	key := pathKey(path) + "\x00" + commsKey(canon)
	if ti, ok := ts.tupleIdx[key]; ok {
		t := ts.tuples[ti]
		pos := sort.Search(len(t.VPs), func(i int) bool { return t.VPs[i] >= vp })
		if pos == len(t.VPs) || t.VPs[pos] != vp {
			t.VPs = append(t.VPs, 0)
			copy(t.VPs[pos+1:], t.VPs[pos:])
			t.VPs[pos] = vp
		}
		return
	}
	t := &Tuple{PathID: id, Comms: canon, VPs: []uint32{vp}}
	ts.tupleIdx[key] = int32(len(ts.tuples))
	ts.tuples = append(ts.tuples, t)
}

// Len returns the number of unique tuples.
func (ts *TupleStore) Len() int { return len(ts.tuples) }

// PathCount returns the number of interned unique paths.
func (ts *TupleStore) PathCount() int { return len(ts.paths) }

// Path returns the interned path info for a tuple's PathID.
func (ts *TupleStore) Path(id int32) *PathInfo { return &ts.paths[id] }

// Tuples returns the tuple list (shared storage; do not mutate).
func (ts *TupleStore) Tuples() []*Tuple { return ts.tuples }

// VPSet returns the distinct vantage points across all tuples.
func (ts *TupleStore) VPSet() []uint32 {
	set := make(map[uint32]struct{})
	for _, t := range ts.tuples {
		for _, vp := range t.VPs {
			set[vp] = struct{}{}
		}
	}
	out := make([]uint32, 0, len(set))
	for vp := range set {
		out = append(out, vp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Communities returns the distinct communities across all tuples, sorted.
func (ts *TupleStore) Communities() []bgp.Community {
	set := make(map[bgp.Community]struct{})
	for _, t := range ts.tuples {
		for _, c := range t.Comms {
			set[c] = struct{}{}
		}
	}
	out := make([]bgp.Community, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllPaths returns every interned path's distinct-ASN sequence (shared
// storage; do not mutate). Suitable input for AS-relationship inference.
func (ts *TupleStore) AllPaths() [][]uint32 {
	out := make([][]uint32, len(ts.paths))
	for i := range ts.paths {
		out[i] = ts.paths[i].ASNs
	}
	return out
}

// OrgMapper resolves an ASN to its organization, the as2org sibling
// context (§4).
type OrgMapper interface {
	Org(asn uint32) (string, bool)
}

// AnnotateOrgs fills each interned path's organization list using the
// mapper. Call once after loading all data and before classification
// when sibling awareness is wanted.
func (ts *TupleStore) AnnotateOrgs(orgs OrgMapper) {
	for i := range ts.paths {
		p := &ts.paths[i]
		p.Orgs = p.Orgs[:0]
		seen := make(map[string]struct{}, len(p.ASNs))
		for _, asn := range p.ASNs {
			if org, ok := orgs.Org(asn); ok {
				if _, dup := seen[org]; !dup {
					seen[org] = struct{}{}
					p.Orgs = append(p.Orgs, org)
				}
			}
		}
	}
}

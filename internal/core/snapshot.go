// Snapshot (de)serialization: a compact, versioned on-disk form of the
// classifier output, so a serving process can cold-start from an
// intentinfer run in milliseconds instead of re-ingesting MRT.
//
// Layout (all integers little-endian):
//
//	[10]byte  magic "BGPINTSNP" + format version byte
//	uint32    metaLen
//	[metaLen] gob(SnapshotMeta)   — counters, provenance; readable alone
//	uint64    bodyLen
//	[bodyLen] gob(snapshotBody)   — clusters, exclusions, options
//	uint32    IEEE CRC-32 of the body section
//	(optional, only when large-community inferences exist:)
//	uint64    largeLen
//	[largeLen] gob(snapshotLargeBody) — large clusters + exclusions
//	uint32    IEEE CRC-32 of the large section
//
// The header carries section lengths, so a reader can fetch the meta
// block (ReadSnapshotMeta) without touching the — much larger — body,
// and tools can seek past sections they do not care about. The large
// section trails the body CRC so that (a) classic-only snapshots stay
// byte-identical to what pre-large writers produced and (b) readers
// unaware of large communities stop cleanly at the CRC, ignoring the
// trailer. snapshotBody itself must never change shape: gob encodes
// struct fields even when zero, so adding a field there would silently
// change every classic snapshot's bytes.
package core

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"slices"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
)

// snapshotMagic identifies the file format; the trailing byte is the
// version and bumps on any incompatible layout change.
var snapshotMagic = [10]byte{'B', 'G', 'P', 'I', 'N', 'T', 'S', 'N', 'P', 1}

// maxSnapshotSection bounds a section length read from a header before
// allocation, so a corrupt or hostile file cannot demand gigabytes.
const maxSnapshotSection = 1 << 31

// SnapshotMeta carries corpus-level provenance alongside the
// inferences, so a server restored from a snapshot can still report
// where its data came from and how much of it there was.
type SnapshotMeta struct {
	// CreatedUnix is the snapshot creation time, in Unix seconds.
	CreatedUnix int64
	// Source is free-form provenance, e.g. the intentinfer input globs.
	Source string

	// Corpus counters at classification time.
	Tuples           int
	Paths            int
	VantagePoints    int
	Communities      int
	LargeCommunities int
}

// snapshotOpts is the serializable subset of Options (function-valued
// and map-valued fields — Orgs, VPFilter — shape the observations, not
// the queries, and are not persisted).
type snapshotOpts struct {
	MinGap            int
	RatioThreshold    float64
	DisableExclusions bool
	PooledRatio       bool
}

// snapshotExcluded is one excluded community with the evidence Lookup
// reports for it.
type snapshotExcluded struct {
	Comm    bgp.Community
	Reason  ExcludeReason
	OnPath  int
	OffPath int
}

// snapshotBody is the gob payload of the body section. Do not add
// fields: see the layout comment.
type snapshotBody struct {
	Opts     snapshotOpts
	Clusters []Cluster
	Excluded []snapshotExcluded
}

// snapshotLargeExcluded is one excluded large community with its
// evidence.
type snapshotLargeExcluded struct {
	Comm    bgp.LargeCommunity
	Reason  ExcludeReason
	OnPath  int
	OffPath int
}

// snapshotLargeBody is the gob payload of the optional trailing large
// section.
type snapshotLargeBody struct {
	Clusters []LargeCluster
	Excluded []snapshotLargeExcluded
}

// hasLargeInferences reports whether the inferences carry any
// large-community result worth persisting.
func hasLargeInferences(inf *Inferences) bool {
	return len(inf.LargeClusters) > 0 || len(inf.LargeExcluded) > 0
}

// WriteSnapshot serializes the inferences and meta into w.
func WriteSnapshot(w io.Writer, inf *Inferences, meta SnapshotMeta) error {
	var metaBuf bytes.Buffer
	if err := gob.NewEncoder(&metaBuf).Encode(&meta); err != nil {
		return fmt.Errorf("snapshot: encode meta: %w", err)
	}

	body := snapshotBody{
		Opts: snapshotOpts{
			MinGap:            inf.Opts.MinGap,
			RatioThreshold:    inf.Opts.RatioThreshold,
			DisableExclusions: inf.Opts.DisableExclusions,
			PooledRatio:       inf.Opts.PooledRatio,
		},
		Clusters: inf.Clusters,
		Excluded: make([]snapshotExcluded, 0, len(inf.Excluded)),
	}
	for c, reason := range inf.Excluded {
		e := snapshotExcluded{Comm: c, Reason: reason}
		if l := inf.Lookup(c); l.Observed {
			e.OnPath, e.OffPath = l.Stats.OnPath, l.Stats.OffPath
		}
		body.Excluded = append(body.Excluded, e)
	}
	// Deterministic bytes for identical inferences, regardless of map
	// iteration order.
	slices.SortFunc(body.Excluded, func(a, b snapshotExcluded) int {
		return cmp.Compare(a.Comm, b.Comm)
	})
	var bodyBuf bytes.Buffer
	if err := gob.NewEncoder(&bodyBuf).Encode(&body); err != nil {
		return fmt.Errorf("snapshot: encode body: %w", err)
	}

	if _, err := w.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(metaBuf.Len())); err != nil {
		return err
	}
	if _, err := w.Write(metaBuf.Bytes()); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(bodyBuf.Len())); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE(bodyBuf.Bytes())
	if _, err := w.Write(bodyBuf.Bytes()); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, crc); err != nil {
		return err
	}
	if !hasLargeInferences(inf) {
		return nil
	}

	large := snapshotLargeBody{
		Clusters: inf.LargeClusters,
		Excluded: make([]snapshotLargeExcluded, 0, len(inf.LargeExcluded)),
	}
	for lc, reason := range inf.LargeExcluded {
		e := snapshotLargeExcluded{Comm: lc, Reason: reason}
		if l := inf.LookupLarge(lc); l.Observed {
			e.OnPath, e.OffPath = l.Stats.OnPath, l.Stats.OffPath
		}
		large.Excluded = append(large.Excluded, e)
	}
	slices.SortFunc(large.Excluded, func(a, b snapshotLargeExcluded) int {
		return a.Comm.Compare(b.Comm)
	})
	var largeBuf bytes.Buffer
	if err := gob.NewEncoder(&largeBuf).Encode(&large); err != nil {
		return fmt.Errorf("snapshot: encode large section: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(largeBuf.Len())); err != nil {
		return err
	}
	if _, err := w.Write(largeBuf.Bytes()); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(largeBuf.Bytes()))
}

// readSnapshotMagic consumes the 10-byte magic block and returns the
// format version byte. Callers dispatch on it: 1 is the gob layout
// above, SnapshotVersionV2 the flat mmap-able layout (snapv2.go).
func readSnapshotMagic(r io.Reader) (byte, error) {
	var magic [10]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, fmt.Errorf("snapshot: short header: %w", err)
	}
	if !bytes.Equal(magic[:9], snapshotMagic[:9]) {
		return 0, fmt.Errorf("snapshot: bad magic %q", magic[:9])
	}
	return magic[9], nil
}

// readSnapshotHeaderV1 reads the v1 meta-section length that follows
// the magic.
func readSnapshotHeaderV1(r io.Reader) (int, error) {
	var metaLen uint32
	if err := binary.Read(r, binary.LittleEndian, &metaLen); err != nil {
		return 0, fmt.Errorf("snapshot: short header: %w", err)
	}
	if metaLen > maxSnapshotSection {
		return 0, fmt.Errorf("snapshot: implausible meta length %d", metaLen)
	}
	return int(metaLen), nil
}

// readAllV2 reads the remainder of a v2/v3 snapshot from r (the
// 10-byte magic already consumed; its version byte passed in) into
// memory and parses it. The streamed path exists for format
// compatibility — replicas use OpenSnapshotMmap.
func readAllV2(r io.Reader, version byte) (*snapV2, error) {
	data := make([]byte, v2HeaderLen)
	copy(data[:9], snapshotMagic[:9])
	data[9] = version
	if _, err := io.ReadFull(r, data[10:]); err != nil {
		return nil, fmt.Errorf("snapshot: short v2 header: %w", err)
	}
	size := binary.LittleEndian.Uint64(data[16:])
	if size < v2HeaderLen || size > maxSnapshotSection {
		return nil, fmt.Errorf("snapshot: implausible v2 file size %d", size)
	}
	rest, err := readExact(r, size-v2HeaderLen)
	if err != nil {
		return nil, fmt.Errorf("snapshot: short v2 body: %w", err)
	}
	return parseSnapshotV2(append(data, rest...))
}

// readExact reads exactly n bytes, growing the buffer only as bytes
// actually arrive, so a forged length header costs a short read — not
// a multi-gigabyte up-front allocation.
func readExact(r io.Reader, n uint64) ([]byte, error) {
	var buf bytes.Buffer
	if n < 1<<20 {
		buf.Grow(int(n))
	}
	copied, err := io.Copy(&buf, io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, err
	}
	if uint64(copied) != n {
		return nil, io.ErrUnexpectedEOF
	}
	return buf.Bytes(), nil
}

// ReadSnapshotMeta decodes only the meta section — both layouts place
// it so the (much larger) inference payload is never deserialized.
func ReadSnapshotMeta(r io.Reader) (SnapshotMeta, error) {
	var meta SnapshotMeta
	version, err := readSnapshotMagic(r)
	if err != nil {
		return meta, err
	}
	switch version {
	case 1:
		metaLen, err := readSnapshotHeaderV1(r)
		if err != nil {
			return meta, err
		}
		if err := gob.NewDecoder(io.LimitReader(r, int64(metaLen))).Decode(&meta); err != nil {
			return meta, fmt.Errorf("snapshot: decode meta: %w", err)
		}
		return meta, nil
	case SnapshotVersionV2, SnapshotVersionV3:
		s, err := readAllV2(r, version)
		if err != nil {
			return meta, err
		}
		return s.meta, nil
	default:
		return meta, fmt.Errorf("snapshot: unsupported format version %d", version)
	}
}

// ReadSnapshot decodes a snapshot of either format version, rebuilding
// the full heap query index (Labels, Excluded, Lookup).
func ReadSnapshot(r io.Reader) (*Inferences, SnapshotMeta, error) {
	var meta SnapshotMeta
	version, err := readSnapshotMagic(r)
	if err != nil {
		return nil, meta, err
	}
	switch version {
	case 1:
		return readSnapshotV1(r)
	case SnapshotVersionV2, SnapshotVersionV3:
		s, err := readAllV2(r, version)
		if err != nil {
			return nil, meta, err
		}
		// The streamed read already holds every byte, so deep-verify the
		// section checksums — matching the v1 path's whole-body CRC.
		// (OpenSnapshotMmap intentionally skips this to stay O(1).)
		if err := VerifySnapshotV2(s.data); err != nil {
			return nil, meta, err
		}
		return s.materialize(), s.meta, nil
	default:
		return nil, meta, fmt.Errorf("snapshot: unsupported format version %d", version)
	}
}

// readSnapshotV1 decodes the gob layout, magic already consumed.
func readSnapshotV1(r io.Reader) (*Inferences, SnapshotMeta, error) {
	var meta SnapshotMeta
	metaLen, err := readSnapshotHeaderV1(r)
	if err != nil {
		return nil, meta, err
	}
	metaRaw, err := readExact(r, uint64(metaLen))
	if err != nil {
		return nil, meta, fmt.Errorf("snapshot: short meta: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(metaRaw)).Decode(&meta); err != nil {
		return nil, meta, fmt.Errorf("snapshot: decode meta: %w", err)
	}

	var bodyLen uint64
	if err := binary.Read(r, binary.LittleEndian, &bodyLen); err != nil {
		return nil, meta, fmt.Errorf("snapshot: short body header: %w", err)
	}
	if bodyLen > maxSnapshotSection {
		return nil, meta, fmt.Errorf("snapshot: implausible body length %d", bodyLen)
	}
	bodyRaw, err := readExact(r, bodyLen)
	if err != nil {
		return nil, meta, fmt.Errorf("snapshot: short body: %w", err)
	}
	var wantCRC uint32
	if err := binary.Read(r, binary.LittleEndian, &wantCRC); err != nil {
		return nil, meta, fmt.Errorf("snapshot: missing checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(bodyRaw); got != wantCRC {
		return nil, meta, fmt.Errorf("snapshot: body checksum mismatch (corrupt file): got %08x want %08x", got, wantCRC)
	}
	var body snapshotBody
	if err := gob.NewDecoder(bytes.NewReader(bodyRaw)).Decode(&body); err != nil {
		return nil, meta, fmt.Errorf("snapshot: decode body: %w", err)
	}

	inf := &Inferences{
		Labels:   make(map[bgp.Community]dict.Category),
		Clusters: body.Clusters,
		Excluded: make(map[bgp.Community]ExcludeReason, len(body.Excluded)),
		Opts: Options{
			MinGap:            body.Opts.MinGap,
			RatioThreshold:    body.Opts.RatioThreshold,
			DisableExclusions: body.Opts.DisableExclusions,
			PooledRatio:       body.Opts.PooledRatio,
		},
	}
	excludedStats := make(map[bgp.Community]CommunityStats, len(body.Excluded))
	for _, cl := range inf.Clusters {
		for _, m := range cl.Members {
			inf.Labels[m.Comm] = cl.Label
		}
	}
	for _, e := range body.Excluded {
		inf.Excluded[e.Comm] = e.Reason
		excludedStats[e.Comm] = CommunityStats{Comm: e.Comm, OnPath: e.OnPath, OffPath: e.OffPath}
	}
	inf.buildIndex(excludedStats)
	if err := readSnapshotV1Large(r, inf); err != nil {
		return nil, meta, err
	}
	return inf, meta, nil
}

// readSnapshotV1Large consumes the optional trailing large section; a
// clean EOF at the section boundary means a classic-only snapshot.
func readSnapshotV1Large(r io.Reader, inf *Inferences) error {
	var largeLen uint64
	if err := binary.Read(r, binary.LittleEndian, &largeLen); err != nil {
		if err == io.EOF {
			return nil
		}
		return fmt.Errorf("snapshot: short large section header: %w", err)
	}
	if largeLen > maxSnapshotSection {
		return fmt.Errorf("snapshot: implausible large section length %d", largeLen)
	}
	largeRaw, err := readExact(r, largeLen)
	if err != nil {
		return fmt.Errorf("snapshot: short large section: %w", err)
	}
	var wantCRC uint32
	if err := binary.Read(r, binary.LittleEndian, &wantCRC); err != nil {
		return fmt.Errorf("snapshot: missing large section checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(largeRaw); got != wantCRC {
		return fmt.Errorf("snapshot: large section checksum mismatch (corrupt file): got %08x want %08x", got, wantCRC)
	}
	var large snapshotLargeBody
	if err := gob.NewDecoder(bytes.NewReader(largeRaw)).Decode(&large); err != nil {
		return fmt.Errorf("snapshot: decode large section: %w", err)
	}
	inf.LargeClusters = large.Clusters
	if len(inf.LargeClusters) > 0 {
		inf.LargeLabels = make(map[bgp.LargeCommunity]dict.Category)
		for i := range inf.LargeClusters {
			cl := &inf.LargeClusters[i]
			for _, m := range cl.Members {
				inf.LargeLabels[m.Comm] = cl.Label
			}
		}
	}
	largeExclStats := make(map[bgp.LargeCommunity]LargeStats, len(large.Excluded))
	if len(large.Excluded) > 0 {
		inf.LargeExcluded = make(map[bgp.LargeCommunity]ExcludeReason, len(large.Excluded))
		for _, e := range large.Excluded {
			inf.LargeExcluded[e.Comm] = e.Reason
			largeExclStats[e.Comm] = LargeStats{Comm: e.Comm, OnPath: e.OnPath, OffPath: e.OffPath}
		}
	}
	inf.buildLargeIndex(largeExclStats)
	return nil
}

// VerifySnapshot fully validates a snapshot of either format version:
// v1 is decoded end to end (which checks its body CRC), v2 gets the
// deep section-CRC and invariant pass of VerifySnapshotV2.
func VerifySnapshot(data []byte) error {
	if len(data) < 10 {
		return fmt.Errorf("snapshot: short header (%d bytes)", len(data))
	}
	if (data[9] == SnapshotVersionV2 || data[9] == SnapshotVersionV3) && bytes.Equal(data[:9], snapshotMagic[:9]) {
		return VerifySnapshotV2(data)
	}
	_, _, err := ReadSnapshot(bytes.NewReader(data))
	return err
}

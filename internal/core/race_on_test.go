//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. The
// zero-alloc guards skip under -race: race-mode sync.Pool randomly
// drops Put items (see sync/pool.go), so pool-backed hot paths
// allocate probabilistically and AllocsPerRun flickers between 0 and 1
// with no real regression.
const raceEnabled = true

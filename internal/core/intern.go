package core

// Shared cross-shard storage for the parallel load path. A
// ShardedTupleStore used to give every shard its own community and ASN
// arenas, which forced Merge to copy and re-intern everything through
// one goroutine — the serialization that made parallel loads slower
// than sequential. Instead the shards now share two global structures:
//
//   - a community intern table (commIntern): canonical community lists
//     are deduplicated globally and stored once in a chunked arena, so a
//     tuple's comms span is already global and Stitch moves no
//     community data. Reads are lock-free (atomic table pointer,
//     CAS-free probing of atomically published slots); inserts take one
//     mutex but are rare once the distinct lists have been seen.
//   - a shared ASN arena (sharedArena[uint32]): each shard appends its
//     new paths' distinct-ASN sequences into globally addressed chunks,
//     so path spans are global too and Stitch moves no ASN data either.
//     (Paths shard by path key, so there is no cross-shard ASN-sequence
//     duplication to dedup — sharing the arena is purely about making
//     the spans stitchable.)
//
// Memory-model argument for the lock-free read path: an inserter, while
// holding the intern mutex, (1) publishes any new arena chunk through
// an atomic pointer, (2) writes the list values into the chunk, and
// (3) atomically stores the packed slot last. A reader that observes
// the slot value (atomic load) therefore observes the chunk pointer and
// the values written before it, per the Go memory model. Readers that
// miss (stale table or empty slot) fall back to the mutex and re-probe.

import (
	"sync"
	"sync/atomic"

	"bgpintent/internal/bgp"
)

// Arena chunks hold 1<<20 elements each; a span's 32-bit offset packs
// the chunk index above the in-chunk position, so the global capacity
// stays the 4G entries the span layout already assumed. Lists never
// span chunks (BGP attribute lengths cap lists far below a chunk).
const (
	internChunkShift = 20
	internChunkSize  = 1 << internChunkShift
	internChunkMask  = internChunkSize - 1
	internMaxChunks  = 1 << (32 - internChunkShift)
)

// sharedArena is a concurrently appendable, globally addressed arena:
// appends reserve a contiguous region under a mutex, reads resolve a
// (offset, length) span lock-free at any time.
type sharedArena[T any] struct {
	chunks atomic.Pointer[[][]T]
	mu     sync.Mutex
	fill   int // elements used in the newest chunk (guarded by mu)
}

// append copies vals into the arena and returns the global offset of
// the copy. The written values are visible to any reader that acquired
// the offset through a properly published location (see the package
// comment); callers that hand the offset to another goroutine through
// a mutex or channel are covered by those primitives instead.
func (a *sharedArena[T]) append(vals []T) uint32 {
	n := len(vals)
	if n > internChunkSize {
		panic("core: arena list exceeds chunk size")
	}
	a.mu.Lock()
	chunks := a.chunks.Load()
	var cur []T
	nc := 0
	if chunks != nil {
		nc = len(*chunks)
	}
	if nc > 0 && a.fill+n <= internChunkSize {
		cur = (*chunks)[nc-1]
	} else {
		if nc >= internMaxChunks {
			panic("core: shared arena full")
		}
		cur = make([]T, internChunkSize)
		next := make([][]T, nc+1)
		if chunks != nil {
			copy(next, *chunks)
		}
		next[nc] = cur
		a.chunks.Store(&next)
		nc++
		a.fill = 0
	}
	off := uint32(nc-1)<<internChunkShift | uint32(a.fill)
	copy(cur[a.fill:], vals)
	a.fill += n
	a.mu.Unlock()
	return off
}

// view resolves a span into the arena. Zero-length spans return nil.
func (a *sharedArena[T]) view(off, n uint32) []T {
	if n == 0 {
		return nil
	}
	chunks := *a.chunks.Load()
	c := chunks[off>>internChunkShift]
	i := off & internChunkMask
	return c[i : i+n : i+n]
}

// commTable is one generation of the intern hash table: open-addressed,
// linear probing, power-of-two sized. A slot holds the packed span of
// one interned list plus one (so zero means empty); slots are written
// atomically exactly once.
type commTable struct {
	mask  uint64
	slots []atomic.Uint64
}

// packRef packs an arena span into the intern reference: offset in the
// high 32 bits, length in the low 32. The empty list is ref 0.
func packRef(off, n uint32) uint64 { return uint64(off)<<32 | uint64(n) }

func unpackRef(ref uint64) (off, n uint32) { return uint32(ref >> 32), uint32(ref) }

// lookup probes for a list with the given hash and content, returning
// its ref. Lock-free; may miss entries inserted into a newer table.
func (t *commTable) lookup(h uint64, canon bgp.Communities, arena *sharedArena[bgp.Community]) (uint64, bool) {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := t.slots[i].Load()
		if s == 0 {
			return 0, false
		}
		ref := s - 1
		off, n := unpackRef(ref)
		if int(n) == len(canon) && commsEqual(arena.view(off, n), canon) {
			return ref, true
		}
	}
}

// insert publishes ref into the first empty slot of its probe chain.
// Callers hold the intern mutex.
func (t *commTable) insert(h uint64, ref uint64) {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		if t.slots[i].Load() == 0 {
			t.slots[i].Store(ref + 1)
			return
		}
	}
}

// commIntern globally deduplicates canonical community lists across all
// shards of a ShardedTupleStore. The returned refs are exact identities
// — two AddViews with the same canonical list always get the same ref —
// so shard-level tuple dedup needs no content hashing or collision
// overflow. Ref values depend on arrival order and are NOT stable
// across runs; everything derived from them must go through the list
// content (and does: Stitch orders by content, snapshots and TSV render
// content).
type commIntern struct {
	arena sharedArena[bgp.Community]
	table atomic.Pointer[commTable]
	mu    sync.Mutex
	count int // live entries (guarded by mu)
}

// intern returns the ref of canon, inserting it on first sight. The hit
// path is lock-free and allocation-free; canon may be reused by the
// caller (the arena keeps its own copy).
func (ci *commIntern) intern(canon bgp.Communities) uint64 {
	if len(canon) == 0 {
		return 0
	}
	h := hashComms(canon)
	if t := ci.table.Load(); t != nil {
		if ref, ok := t.lookup(h, canon, &ci.arena); ok {
			return ref
		}
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	t := ci.table.Load()
	if t != nil {
		// Re-probe the latest table: another shard may have inserted the
		// list between our lock-free miss and taking the mutex.
		if ref, ok := t.lookup(h, canon, &ci.arena); ok {
			return ref
		}
	}
	if t == nil || uint64(ci.count+1)*4 > 3*(t.mask+1) {
		t = ci.grow(t)
	}
	off := ci.arena.append(canon)
	ref := packRef(off, uint32(len(canon)))
	t.insert(h, ref)
	ci.count++
	return ref
}

// view resolves a ref back to its list (shared storage; do not mutate).
func (ci *commIntern) view(off, n uint32) bgp.Communities {
	return ci.arena.view(off, n)
}

// grow publishes a table of at least double the capacity with every
// existing entry rehashed into it. Holding the mutex keeps insertions
// out; lock-free readers keep probing the old table (every entry they
// could have seen is in both) until the pointer swap lands.
func (ci *commIntern) grow(old *commTable) *commTable {
	size := uint64(1024)
	if old != nil {
		size = 2 * (old.mask + 1)
	}
	nt := &commTable{mask: size - 1, slots: make([]atomic.Uint64, size)}
	if old != nil {
		for i := range old.slots {
			s := old.slots[i].Load()
			if s == 0 {
				continue
			}
			off, n := unpackRef(s - 1)
			nt.insert(hashComms(ci.arena.view(off, n)), s-1)
		}
	}
	ci.table.Store(nt)
	return nt
}

// largeTable is one generation of the large-community intern hash
// table, the RFC 8092 sibling of commTable: open-addressed, linear
// probing, slots written atomically exactly once.
type largeTable struct {
	mask  uint64
	slots []atomic.Uint64
}

// lookup probes for a large list with the given hash and content,
// returning its ref. Lock-free; may miss entries inserted into a newer
// table.
func (t *largeTable) lookup(h uint64, canon bgp.LargeCommunities, arena *sharedArena[bgp.LargeCommunity]) (uint64, bool) {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := t.slots[i].Load()
		if s == 0 {
			return 0, false
		}
		ref := s - 1
		off, n := unpackRef(ref)
		if int(n) == len(canon) && largesEqual(arena.view(off, n), canon) {
			return ref, true
		}
	}
}

// insert publishes ref into the first empty slot of its probe chain.
// Callers hold the intern mutex.
func (t *largeTable) insert(h uint64, ref uint64) {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		if t.slots[i].Load() == 0 {
			t.slots[i].Store(ref + 1)
			return
		}
	}
}

// largeIntern globally deduplicates canonical large-community lists,
// giving the RFC 8092 community key the same exact interned identity
// the classic key has: two AddViews with the same canonical large list
// always get the same ref, so shard-level tuple dedup needs no content
// hashing. Refs depend on arrival order and are NOT stable across
// runs; everything derived from them goes through the list content.
type largeIntern struct {
	arena sharedArena[bgp.LargeCommunity]
	table atomic.Pointer[largeTable]
	mu    sync.Mutex
	count int // live entries (guarded by mu)
}

// intern returns the ref of canon, inserting it on first sight. The
// hit path is lock-free and allocation-free; canon may be reused by
// the caller (the arena keeps its own copy).
func (li *largeIntern) intern(canon bgp.LargeCommunities) uint64 {
	if len(canon) == 0 {
		return 0
	}
	h := hashLarges(canon)
	if t := li.table.Load(); t != nil {
		if ref, ok := t.lookup(h, canon, &li.arena); ok {
			return ref
		}
	}
	li.mu.Lock()
	defer li.mu.Unlock()
	t := li.table.Load()
	if t != nil {
		if ref, ok := t.lookup(h, canon, &li.arena); ok {
			return ref
		}
	}
	if t == nil || uint64(li.count+1)*4 > 3*(t.mask+1) {
		t = li.grow(t)
	}
	off := li.arena.append(canon)
	ref := packRef(off, uint32(len(canon)))
	t.insert(h, ref)
	li.count++
	return ref
}

// view resolves a ref back to its list (shared storage; do not mutate).
func (li *largeIntern) view(off, n uint32) bgp.LargeCommunities {
	return li.arena.view(off, n)
}

// grow publishes a table of at least double the capacity with every
// existing entry rehashed into it; see commIntern.grow.
func (li *largeIntern) grow(old *largeTable) *largeTable {
	size := uint64(1024)
	if old != nil {
		size = 2 * (old.mask + 1)
	}
	nt := &largeTable{mask: size - 1, slots: make([]atomic.Uint64, size)}
	if old != nil {
		for i := range old.slots {
			s := old.slots[i].Load()
			if s == 0 {
				continue
			}
			off, n := unpackRef(s - 1)
			nt.insert(hashLarges(li.arena.view(off, n)), s-1)
		}
	}
	li.table.Store(nt)
	return nt
}

// storeShared bundles the cross-shard structures one ShardedTupleStore
// hands to all its shard TupleStores (and to the stitched output).
type storeShared struct {
	comms  commIntern
	larges largeIntern
	asns   sharedArena[uint32]
}

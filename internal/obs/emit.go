package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Collector is an Observer that accumulates spans in memory, for tests
// and end-of-run summaries. Safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	spans []Span
	evs   []ProgressEvent
}

// StageStart implements Observer.
func (c *Collector) StageStart(Stage, string) {}

// StageEnd implements Observer.
func (c *Collector) StageEnd(span Span) {
	c.mu.Lock()
	c.spans = append(c.spans, span)
	c.mu.Unlock()
}

// Progress implements Observer.
func (c *Collector) Progress(ev ProgressEvent) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

// Spans returns a copy of the collected spans in arrival order.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// Events returns a copy of the collected progress events.
func (c *Collector) Events() []ProgressEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ProgressEvent(nil), c.evs...)
}

// StageAgg is one row of Collector.Summary: every span of one stage
// folded together.
type StageAgg struct {
	Stage    Stage
	Spans    int
	Duration time.Duration // summed — overlapping worker spans exceed wall time
	Records  int64
	Tuples   int64
	Bytes    int64
	Allocs   uint64
}

// Summary folds the collected spans per stage, ordered by first
// appearance.
func (c *Collector) Summary() []StageAgg {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := make(map[Stage]int)
	var out []StageAgg
	for _, s := range c.spans {
		i, ok := idx[s.Stage]
		if !ok {
			i = len(out)
			idx[s.Stage] = i
			out = append(out, StageAgg{Stage: s.Stage})
		}
		a := &out[i]
		a.Spans++
		a.Duration += s.Duration
		a.Records += s.Records
		a.Tuples += s.Tuples
		a.Bytes += s.Bytes
		a.Allocs += s.Allocs
	}
	return out
}

// RenderSummary formats the per-stage aggregation as an aligned table.
func (c *Collector) RenderSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %6s %12s %12s %10s %12s %10s\n",
		"stage", "spans", "time", "records", "tuples", "bytes", "allocs")
	for _, a := range c.Summary() {
		fmt.Fprintf(&b, "%-15s %6d %12s %12d %10d %12d %10d\n",
			a.Stage, a.Spans, a.Duration.Round(time.Microsecond), a.Records, a.Tuples, a.Bytes, a.Allocs)
	}
	return b.String()
}

// ProgressPrinter is an Observer writing human-readable one-line
// updates — stage completions and periodic heartbeats — to w. Safe for
// concurrent use.
type ProgressPrinter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgressPrinter returns a printer writing to w.
func NewProgressPrinter(w io.Writer) *ProgressPrinter { return &ProgressPrinter{w: w} }

// StageStart implements Observer; per-file stage starts are suppressed
// to keep the stream readable (their spans still print on completion).
func (p *ProgressPrinter) StageStart(stage Stage, label string) {
	if label != "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "stage %s...\n", stage)
}

// StageEnd implements Observer.
func (p *ProgressPrinter) StageEnd(s Span) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "stage %s done in %s", s.Stage, s.Duration.Round(time.Microsecond))
	if s.Label != "" {
		fmt.Fprintf(p.w, " (%s)", s.Label)
	}
	if s.Records > 0 {
		fmt.Fprintf(p.w, ", %d records", s.Records)
	}
	if s.Tuples > 0 {
		fmt.Fprintf(p.w, ", %d tuples", s.Tuples)
	}
	if s.Bytes > 0 {
		fmt.Fprintf(p.w, ", %s", formatBytes(s.Bytes))
	}
	if s.Allocs > 0 {
		fmt.Fprintf(p.w, ", %d allocs (%s)", s.Allocs, formatBytes(int64(s.AllocBytes)))
	}
	fmt.Fprintln(p.w)
}

// Progress implements Observer.
func (p *ProgressPrinter) Progress(ev ProgressEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	verb := "progress"
	if ev.Final {
		verb = "finished"
	}
	fmt.Fprintf(p.w, "%s %s:", verb, ev.Elapsed.Round(time.Millisecond))
	if ev.Stage != "" {
		fmt.Fprintf(p.w, " stage=%s", ev.Stage)
	}
	if ev.Files > 0 {
		fmt.Fprintf(p.w, " files=%d/%d", ev.FilesDone, ev.Files)
	}
	fmt.Fprintf(p.w, " records=%d tuples=%d", ev.Records, ev.Tuples)
	if ev.Bytes > 0 {
		fmt.Fprintf(p.w, " bytes=%s", formatBytes(ev.Bytes))
	}
	fmt.Fprintln(p.w)
}

// formatBytes renders a byte count with a binary unit.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// JSONTracer is an Observer emitting one JSON object per line — the
// -trace-json event stream. Event shapes:
//
//	{"event":"stage_start","t_ms":0.1,"stage":"decode","label":"a.mrt"}
//	{"event":"stage_end","t_ms":9.2,"stage":"decode","label":"a.mrt",
//	 "wall_ms":9.1,"records":1200,"tuples":0,"bytes":51234,
//	 "allocs":0,"alloc_bytes":0}
//	{"event":"progress","t_ms":500.0,"stage":"decode","files_done":1,
//	 "files":4,"records":3400,"tuples":2100,"bytes":140000,"final":false}
//
// t_ms is milliseconds since the tracer was constructed. Safe for
// concurrent use; lines are written atomically.
type JSONTracer struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	enc   *json.Encoder
}

// NewJSONTracer returns a tracer writing JSON lines to w.
func NewJSONTracer(w io.Writer) *JSONTracer {
	return &JSONTracer{w: w, start: time.Now(), enc: json.NewEncoder(w)}
}

func (j *JSONTracer) emit(v any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.enc.Encode(v) //nolint:errcheck // telemetry stream; nothing to do on error
}

func (j *JSONTracer) tms() float64 {
	return float64(time.Since(j.start).Microseconds()) / 1e3
}

// StageStart implements Observer.
func (j *JSONTracer) StageStart(stage Stage, label string) {
	j.emit(struct {
		Event string  `json:"event"`
		TMs   float64 `json:"t_ms"`
		Stage Stage   `json:"stage"`
		Label string  `json:"label,omitempty"`
	}{"stage_start", j.tms(), stage, label})
}

// StageEnd implements Observer.
func (j *JSONTracer) StageEnd(s Span) {
	j.emit(struct {
		Event      string  `json:"event"`
		TMs        float64 `json:"t_ms"`
		Stage      Stage   `json:"stage"`
		Label      string  `json:"label,omitempty"`
		WallMs     float64 `json:"wall_ms"`
		Records    int64   `json:"records"`
		Tuples     int64   `json:"tuples"`
		Bytes      int64   `json:"bytes"`
		Allocs     uint64  `json:"allocs"`
		AllocBytes uint64  `json:"alloc_bytes"`
	}{"stage_end", j.tms(), s.Stage, s.Label,
		float64(s.Duration.Microseconds()) / 1e3, s.Records, s.Tuples, s.Bytes, s.Allocs, s.AllocBytes})
}

// Progress implements Observer.
func (j *JSONTracer) Progress(ev ProgressEvent) {
	j.emit(struct {
		Event     string  `json:"event"`
		TMs       float64 `json:"t_ms"`
		Stage     Stage   `json:"stage,omitempty"`
		FilesDone int64   `json:"files_done"`
		Files     int64   `json:"files"`
		Records   int64   `json:"records"`
		Tuples    int64   `json:"tuples"`
		Bytes     int64   `json:"bytes"`
		Final     bool    `json:"final"`
	}{"progress", j.tms(), ev.Stage, ev.FilesDone, ev.Files, ev.Records, ev.Tuples, ev.Bytes, ev.Final})
}

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a minimal Prometheus-style metric registry: named
// counter/gauge families, optionally labeled, with text exposition in
// the Prometheus 0.0.4 format. Zero dependencies; updates are atomic
// float64 operations, so the hot path (one Add per HTTP request) never
// takes the registry lock.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// family is one metric family: a name, help, kind and its label series.
type family struct {
	name, help, kind string
	labels           []string

	mu     sync.Mutex
	order  []string // series keys in first-use order
	series map[string]*Metric

	fn    func() float64           // GaugeFunc families compute at scrape time
	fnVec func() map[string]float64 // GaugeFuncVec: label value -> sample
}

// Metric is one series of a family: an atomic float64 the holder
// updates lock-free.
type Metric struct {
	labelStr string // pre-rendered `{k="v",...}` or ""
	bits     atomic.Uint64
}

// Add increments the value by d (counters use d > 0).
func (m *Metric) Add(d float64) {
	for {
		old := m.bits.Load()
		if m.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Set stores the value (gauges).
func (m *Metric) Set(v float64) { m.bits.Store(math.Float64bits(v)) }

// Max raises the value to v if larger (gauges tracking a maximum).
func (m *Metric) Max(v float64) {
	for {
		old := m.bits.Load()
		if math.Float64frombits(old) >= v || m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the current value.
func (m *Metric) Value() float64 { return math.Float64frombits(m.bits.Load()) }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName matches the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register creates or fetches a family, panicking on misuse — metric
// registration happens at construction time, so a bad name or a
// kind/label mismatch is a programming error, not a runtime condition.
func (r *Registry) register(name, help, kind string, labels []string) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validName(l) {
			panic("obs: invalid label name " + l + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.byName[name]; f != nil {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic("obs: conflicting re-registration of " + name)
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, series: make(map[string]*Metric)}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// with fetches or creates the series for one label-value tuple.
func (f *family) with(values ...string) *Metric {
	if len(values) != len(f.labels) {
		panic("obs: wrong label count for " + f.name)
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if m := f.series[key]; m != nil {
		return m
	}
	m := &Metric{labelStr: renderLabels(f.labels, values)}
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// renderLabels renders `{k="v",...}` with Prometheus escaping.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		v := values[i]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Metric {
	return r.register(name, help, "counter", nil).with()
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Metric {
	return r.register(name, help, "gauge", nil).with()
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.fn = fn
}

// GaugeFuncVec registers a single-label gauge family whose full series
// set is computed at scrape time: fn returns label value -> sample.
// For sources that already aggregate per key (e.g. findings per
// detector) and would otherwise need one registered series per key
// known in advance.
func (r *Registry) GaugeFuncVec(name, help, label string, fn func() map[string]float64) {
	f := r.register(name, help, "gauge", []string{label})
	f.fnVec = fn
}

// Vec is a labeled metric family handle.
type Vec struct{ f *family }

// With returns the series for the given label values, creating it on
// first use.
func (v Vec) With(values ...string) *Metric { return v.f.with(values...) }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) Vec {
	return Vec{r.register(name, help, "counter", labels)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) Vec {
	return Vec{r.register(name, help, "gauge", labels)}
}

// ContentType is the exposition format's Content-Type header value.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the text exposition format:
// families in name order, series in label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn())); err != nil {
				return err
			}
			continue
		}
		if f.fnVec != nil {
			samples := f.fnVec()
			vals := make([]string, 0, len(samples))
			for v := range samples {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				ls := renderLabels(f.labels, []string{v})
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatValue(samples[v])); err != nil {
					return err
				}
			}
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		series := make([]*Metric, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool { return series[i].labelStr < series[j].labelStr })
		for _, m := range series {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, m.labelStr, formatValue(m.Value())); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue renders a sample value the way Prometheus expects:
// integers without an exponent, everything else in %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer threads one pipeline run's telemetry: it owns the live
// throughput counters behind progress events, forwards spans to the
// attached Observer, and drives the periodic progress ticker. Every
// method is safe on a nil *Tracer (and safe for concurrent use), so
// instrumented code paths need no observer-presence branching beyond
// what the compiler inserts for the nil check.
type Tracer struct {
	o        Observer
	start    time.Time
	interval time.Duration

	stage atomic.Value // Stage: most recently started top-level stage

	files     atomic.Int64
	filesDone atomic.Int64
	records   atomic.Int64
	tuples    atomic.Int64
	bytes     atomic.Int64

	// per-stage accumulated durations for aggregate spans (store-add)
	aggMu sync.Mutex
	agg   map[Stage]*aggStage

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// aggStage accumulates worker-side time attributed to one stage.
type aggStage struct {
	ns    atomic.Int64
	items atomic.Int64
}

// NewTracer wires an Observer into a tracer; a nil observer yields a
// nil tracer, on which every method is a no-op. interval > 0 enables
// periodic ProgressEvents once StartProgress is called.
func NewTracer(o Observer, interval time.Duration) *Tracer {
	if o == nil {
		return nil
	}
	return &Tracer{
		o:        o,
		start:    time.Now(),
		interval: interval,
		agg:      make(map[Stage]*aggStage),
	}
}

// Observer returns the attached observer (nil for a nil tracer).
func (t *Tracer) Observer() Observer {
	if t == nil {
		return nil
	}
	return t.o
}

// SetFiles announces the total input-file count for progress events.
func (t *Tracer) SetFiles(n int64) {
	if t != nil {
		t.files.Store(n)
	}
}

// FileDone marks one input file fully ingested.
func (t *Tracer) FileDone() {
	if t != nil {
		t.filesDone.Add(1)
	}
}

// AddRecords bumps the live record counter.
func (t *Tracer) AddRecords(n int64) {
	if t != nil {
		t.records.Add(n)
	}
}

// AddTuples bumps the live tuple counter.
func (t *Tracer) AddTuples(n int64) {
	if t != nil {
		t.tuples.Add(n)
	}
}

// AddBytes bumps the live byte counter.
func (t *Tracer) AddBytes(n int64) {
	if t != nil {
		t.bytes.Add(n)
	}
}

// Active reports whether telemetry is being collected; instrumented hot
// paths use it to skip per-item timing when nobody is watching.
func (t *Tracer) Active() bool { return t != nil }

// Stage runs f as a top-level pipeline stage via Time, recording the
// stage for progress events. Safe (and still pprof-labeling) on a nil
// tracer.
func (t *Tracer) Stage(ctx context.Context, stage Stage, label string, fill func(*Span), f func(context.Context) error) error {
	if t == nil {
		return Time(ctx, nil, stage, label, fill, f)
	}
	t.stage.Store(stage)
	return Time(ctx, t.o, stage, label, fill, f)
}

// EmitSpan reports an externally-timed span (per-file open/decode spans
// from ingest workers). No allocation deltas are attached: the workers
// overlap, so a process-wide delta would be noise.
func (t *Tracer) EmitSpan(stage Stage, label string, start time.Time, d time.Duration, fill func(*Span)) {
	if t == nil {
		return
	}
	span := Span{Stage: stage, Label: label, Start: start, Duration: d}
	if fill != nil {
		fill(&span)
	}
	t.o.StageEnd(span)
}

// StageStartOnly announces a stage beginning without timing it (the
// matching span arrives via EmitSpan).
func (t *Tracer) StageStartOnly(stage Stage, label string) {
	if t == nil {
		return
	}
	t.o.StageStart(stage, label)
}

// AddStageTime accumulates worker-side time into an aggregate stage;
// FlushAggregates later emits one span per accumulated stage.
func (t *Tracer) AddStageTime(stage Stage, d time.Duration, items int64) {
	if t == nil {
		return
	}
	t.aggMu.Lock()
	a := t.agg[stage]
	if a == nil {
		a = &aggStage{}
		t.agg[stage] = a
	}
	t.aggMu.Unlock()
	a.ns.Add(int64(d))
	a.items.Add(items)
}

// FlushAggregates emits one span per stage accumulated through
// AddStageTime, then clears them. Their Duration is summed
// worker-seconds, not elapsed wall time.
func (t *Tracer) FlushAggregates() {
	if t == nil {
		return
	}
	t.aggMu.Lock()
	agg := t.agg
	t.agg = make(map[Stage]*aggStage)
	t.aggMu.Unlock()
	for stage, a := range agg {
		t.o.StageEnd(Span{
			Stage:    stage,
			Start:    t.start,
			Duration: time.Duration(a.ns.Load()),
			Records:  a.items.Load(),
		})
	}
}

// progress assembles the current heartbeat.
func (t *Tracer) progress(final bool) ProgressEvent {
	stage, _ := t.stage.Load().(Stage)
	return ProgressEvent{
		Elapsed:   time.Since(t.start),
		Stage:     stage,
		FilesDone: t.filesDone.Load(),
		Files:     t.files.Load(),
		Records:   t.records.Load(),
		Tuples:    t.tuples.Load(),
		Bytes:     t.bytes.Load(),
		Final:     final,
	}
}

// StartProgress launches the periodic progress goroutine (no-op when
// the tracer is nil or the interval is zero). Close stops it; the
// goroutine never leaks past Close.
func (t *Tracer) StartProgress() {
	if t == nil || t.interval <= 0 || t.stop != nil {
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go func() {
		defer close(t.done)
		tick := time.NewTicker(t.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.o.Progress(t.progress(false))
			case <-t.stop:
				return
			}
		}
	}()
}

// Close stops the progress goroutine (waiting for it to exit) and
// emits one final progress event so observers always see the end
// totals. Safe to call multiple times and on a nil tracer.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.stopOnce.Do(func() {
		if t.stop != nil {
			close(t.stop)
			<-t.done
		}
		t.o.Progress(t.progress(true))
	})
}

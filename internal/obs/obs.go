// Package obs is the pipeline's zero-dependency observability layer:
// per-stage spans with wall time, throughput and allocation deltas;
// periodic progress events; runtime/pprof stage labels so CPU profiles
// attribute samples to pipeline stages; and a small Prometheus-style
// metric registry with text exposition (see registry.go) that backs
// intentd's GET /metrics.
//
// Everything is callback-based and optional: a nil Observer (or a nil
// *Tracer) costs one branch on the instrumented paths, so the
// unobserved pipeline keeps its allocation-free hot loops.
package obs

import (
	"context"
	"runtime"
	"runtime/pprof"
	"time"
)

// Stage identifies one pipeline stage in spans, progress events and
// pprof labels. The constants below are the built-in pipeline stages;
// callers may mint their own (Stage is an open string type — evalrepro
// labels its experiments this way).
type Stage string

// Built-in pipeline stages, in rough pipeline order.
const (
	// StageOpen is opening (and wiring decompression for) one input file.
	StageOpen Stage = "open"
	// StageDecode is framing + decoding one MRT file into views. The
	// span's wall time includes the per-record store-add callbacks; the
	// aggregate StageStoreAdd span reports that inner share.
	StageDecode Stage = "decode"
	// StageFrame is the aggregate time the frame/decode split pipeline
	// spends framing records into batches (a share of StageDecode's wall
	// time), summed across input files. Absent when files are scanned
	// sequentially, where framing and decode are one loop.
	StageFrame Stage = "frame"
	// StageStoreAdd is the aggregate time spent inserting decoded views
	// into the (sharded) tuple store, summed across all decode workers.
	StageStoreAdd Stage = "store-add"
	// StageStitch is collapsing ingestion shards into the canonical
	// tuple store: index concatenation and ordering only, since shard
	// payloads live in storage shared with the stitched store.
	StageStitch Stage = "stitch"
	// StageShardMerge is the pre-stitch name of that phase, when it
	// copied every arena through one goroutine. No longer emitted; kept
	// so trace consumers compiled against it keep building.
	StageShardMerge Stage = "shard-merge"
	// StageObserve is the CSR community→path index build plus on/off-path
	// counting.
	StageObserve Stage = "observe"
	// StageCluster groups each α's β values into gap-separated clusters
	// (and applies the paper's exclusion rules).
	StageCluster Stage = "cluster"
	// StageRatio computes cluster purity/ratio evidence and labels each
	// cluster.
	StageRatio Stage = "ratio"
	// StageClassify applies cluster labels to communities and builds the
	// lookup index.
	StageClassify Stage = "classify"
	// StageSnapshotWrite serializes a result into the binary snapshot
	// format.
	StageSnapshotWrite Stage = "snapshot-write"
)

// Span is one completed stage measurement. Spans from parallel workers
// (per-file open/decode) overlap in wall time; sum their durations for
// aggregate worker-seconds, not elapsed time.
type Span struct {
	Stage Stage
	// Label is optional detail — the input file path for per-file spans,
	// the experiment id for evalrepro stages.
	Label    string
	Start    time.Time
	Duration time.Duration

	// Throughput counters; zero when a stage has nothing to report.
	Records int64 // MRT records (or stage-specific items) processed
	Tuples  int64 // tuples produced/visited
	Bytes   int64 // bytes consumed

	// Allocation deltas over the span, from runtime.MemStats — process
	// wide, so concurrent stages attribute each other's allocations.
	// Only top-level sequential stages report them; per-file worker
	// spans leave them zero.
	Allocs     uint64 // heap objects allocated
	AllocBytes uint64 // heap bytes allocated
}

// ProgressEvent is a periodic pipeline heartbeat.
type ProgressEvent struct {
	// Elapsed is the time since the pipeline (tracer) started.
	Elapsed time.Duration
	// Stage is the most recently started stage.
	Stage Stage
	// FilesDone / Files track input-file completion (MRT loads only).
	FilesDone, Files int64
	// Live throughput counters.
	Records int64
	Tuples  int64
	Bytes   int64
	// Final marks the closing event emitted when the pipeline finishes.
	Final bool
}

// Observer receives pipeline telemetry. Implementations MUST be safe
// for concurrent use: per-file spans arrive from parallel ingest
// workers, and progress events from a ticker goroutine.
type Observer interface {
	// StageStart announces a stage (or one file's stage) beginning.
	StageStart(stage Stage, label string)
	// StageEnd delivers the completed span.
	StageEnd(span Span)
	// Progress delivers a periodic heartbeat.
	Progress(ev ProgressEvent)
}

// Funcs adapts optional callbacks to the Observer interface; nil fields
// are skipped.
type Funcs struct {
	OnStageStart func(stage Stage, label string)
	OnStageEnd   func(span Span)
	OnProgress   func(ev ProgressEvent)
}

// StageStart implements Observer.
func (f Funcs) StageStart(stage Stage, label string) {
	if f.OnStageStart != nil {
		f.OnStageStart(stage, label)
	}
}

// StageEnd implements Observer.
func (f Funcs) StageEnd(span Span) {
	if f.OnStageEnd != nil {
		f.OnStageEnd(span)
	}
}

// Progress implements Observer.
func (f Funcs) Progress(ev ProgressEvent) {
	if f.OnProgress != nil {
		f.OnProgress(ev)
	}
}

// multi fans telemetry out to several observers in order.
type multi []Observer

// Multi combines observers; nils are dropped. Returns nil when nothing
// remains, so Multi(nil, nil) disables observation entirely.
func Multi(os ...Observer) Observer {
	var m multi
	for _, o := range os {
		if o != nil {
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	default:
		return m
	}
}

func (m multi) StageStart(stage Stage, label string) {
	for _, o := range m {
		o.StageStart(stage, label)
	}
}

func (m multi) StageEnd(span Span) {
	for _, o := range m {
		o.StageEnd(span)
	}
}

func (m multi) Progress(ev ProgressEvent) {
	for _, o := range m {
		o.Progress(ev)
	}
}

// Time runs f as the named stage: the goroutine (and every goroutine it
// spawns) carries a pprof "stage" label while f runs, so -cpuprofile
// output attributes samples per stage even with a nil observer; with an
// observer attached it also measures wall time plus process allocation
// deltas and emits StageStart/StageEnd. fill, if non-nil, runs after f
// to annotate the span with throughput counters.
func Time(ctx context.Context, o Observer, stage Stage, label string, fill func(*Span), f func(context.Context) error) error {
	var err error
	labels := pprof.Labels("stage", string(stage))
	if o == nil {
		pprof.Do(ctx, labels, func(ctx context.Context) { err = f(ctx) })
		return err
	}

	o.StageStart(stage, label)
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	pprof.Do(ctx, labels, func(ctx context.Context) { err = f(ctx) })
	span := Span{Stage: stage, Label: label, Start: start, Duration: time.Since(start)}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	span.Allocs = after.Mallocs - before.Mallocs
	span.AllocBytes = after.TotalAlloc - before.TotalAlloc
	if fill != nil {
		fill(&span)
	}
	o.StageEnd(span)
	return err
}

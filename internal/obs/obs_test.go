package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimeNilObserverRunsFunc(t *testing.T) {
	ran := false
	err := Time(context.Background(), nil, StageObserve, "", nil, func(context.Context) error {
		ran = true
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
	want := errors.New("boom")
	if err := Time(context.Background(), nil, StageObserve, "", nil, func(context.Context) error {
		return want
	}); err != want {
		t.Errorf("err = %v, want %v", err, want)
	}
}

func TestTimeEmitsSpan(t *testing.T) {
	col := &Collector{}
	err := Time(context.Background(), col, StageCluster, "label", func(s *Span) {
		s.Tuples = 42
	}, func(context.Context) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Stage != StageCluster || s.Label != "label" || s.Tuples != 42 {
		t.Errorf("span = %+v", s)
	}
	if s.Duration < time.Millisecond {
		t.Errorf("duration %v < 1ms", s.Duration)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	m := Multi(a, b)
	m.StageEnd(Span{Stage: StageOpen})
	m.Progress(ProgressEvent{Final: true})
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Error("span not fanned out")
	}
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Error("progress not fanned out")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Active() {
		t.Error("nil tracer active")
	}
	// None of these may panic.
	tr.SetFiles(3)
	tr.FileDone()
	tr.AddRecords(1)
	tr.AddTuples(1)
	tr.AddBytes(1)
	tr.EmitSpan(StageOpen, "x", time.Now(), time.Second, nil)
	tr.StageStartOnly(StageDecode, "x")
	tr.AddStageTime(StageStoreAdd, time.Second, 1)
	tr.FlushAggregates()
	tr.StartProgress()
	tr.Close()
	if err := tr.Stage(context.Background(), StageObserve, "", nil, func(context.Context) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if NewTracer(nil, time.Second) != nil {
		t.Error("NewTracer(nil) != nil")
	}
}

func TestTracerProgressLifecycle(t *testing.T) {
	col := &Collector{}
	tr := NewTracer(col, time.Millisecond)
	tr.SetFiles(2)
	tr.AddRecords(10)
	tr.AddTuples(5)
	tr.AddBytes(100)
	tr.FileDone()
	tr.StartProgress()
	time.Sleep(20 * time.Millisecond)
	tr.Close()
	tr.Close() // idempotent

	evs := col.Events()
	if len(evs) < 2 {
		t.Fatalf("got %d progress events, want ticker beats plus final", len(evs))
	}
	final := evs[len(evs)-1]
	if !final.Final {
		t.Error("last event not final")
	}
	if final.Files != 2 || final.FilesDone != 1 || final.Records != 10 || final.Tuples != 5 || final.Bytes != 100 {
		t.Errorf("final = %+v", final)
	}
	for _, ev := range evs[:len(evs)-1] {
		if ev.Final {
			t.Error("non-last event marked final")
		}
	}
}

func TestTracerAggregates(t *testing.T) {
	col := &Collector{}
	tr := NewTracer(col, 0)
	tr.AddStageTime(StageStoreAdd, time.Second, 3)
	tr.AddStageTime(StageStoreAdd, time.Second, 2)
	tr.FlushAggregates()
	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Stage != StageStoreAdd || spans[0].Duration != 2*time.Second || spans[0].Records != 5 {
		t.Errorf("aggregate span = %+v", spans[0])
	}
	// Flushed state is cleared; a second flush emits nothing.
	tr.FlushAggregates()
	if len(col.Spans()) != 1 {
		t.Error("second flush re-emitted")
	}
}

func TestCollectorSummary(t *testing.T) {
	col := &Collector{}
	col.StageEnd(Span{Stage: StageDecode, Duration: time.Second, Records: 10, Bytes: 100})
	col.StageEnd(Span{Stage: StageDecode, Duration: time.Second, Records: 5, Bytes: 50})
	col.StageEnd(Span{Stage: StageObserve, Duration: time.Second, Tuples: 7})
	sum := col.Summary()
	if len(sum) != 2 {
		t.Fatalf("got %d rows", len(sum))
	}
	if sum[0].Stage != StageDecode || sum[0].Spans != 2 || sum[0].Records != 15 || sum[0].Bytes != 150 {
		t.Errorf("decode row = %+v", sum[0])
	}
	if sum[1].Stage != StageObserve || sum[1].Tuples != 7 {
		t.Errorf("observe row = %+v", sum[1])
	}
	if !strings.Contains(col.RenderSummary(), "decode") {
		t.Error("rendered summary misses decode")
	}
}

func TestJSONTracerEmitsValidLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONTracer(&buf)
	j.StageStart(StageDecode, "a.mrt")
	j.StageEnd(Span{Stage: StageDecode, Label: "a.mrt", Duration: 3 * time.Millisecond, Records: 7})
	j.Progress(ProgressEvent{Stage: StageDecode, Files: 2, FilesDone: 1, Final: true})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	var events []map[string]any
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %q: %v", i+1, line, err)
		}
		events = append(events, m)
	}
	if events[0]["event"] != "stage_start" || events[0]["stage"] != "decode" {
		t.Errorf("first event = %v", events[0])
	}
	if events[1]["event"] != "stage_end" || events[1]["wall_ms"] != 3.0 || events[1]["records"] != 7.0 {
		t.Errorf("second event = %v", events[1])
	}
	if events[2]["event"] != "progress" || events[2]["final"] != true {
		t.Errorf("third event = %v", events[2])
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "A counter.")
	c.Add(3)
	g := reg.Gauge("test_gauge", "A gauge.")
	g.Set(1.5)
	v := reg.CounterVec("test_labeled_total", "Labeled.", "endpoint")
	v.With("a").Add(1)
	v.With(`q"u\o

te`).Add(2)
	reg.GaugeFunc("test_func", "Computed.", func() float64 { return 9 })
	mx := reg.Gauge("test_max", "Max.")
	mx.Max(2)
	mx.Max(1) // lower: no effect

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		"test_total 3",
		"test_gauge 1.5",
		`test_labeled_total{endpoint="a"} 1`,
		`test_labeled_total{endpoint="q\"u\\o\n\nte"} 2`,
		"test_func 9",
		"test_max 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition misses %q:\n%s", want, out)
		}
	}
	// Families render in name order.
	if strings.Index(out, "test_func") > strings.Index(out, "test_gauge") ||
		strings.Index(out, "test_gauge") > strings.Index(out, "test_labeled_total") {
		t.Errorf("families not name-sorted:\n%s", out)
	}
	if !strings.HasPrefix(ContentType, "text/plain; version=0.0.4") {
		t.Errorf("ContentType = %q", ContentType)
	}
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_total", "")
	v := reg.CounterVec("conc_labeled_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
				v.With("x").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %g, want 8000", got)
	}
	if got := v.With("x").Value(); got != 8000 {
		t.Errorf("labeled counter = %g, want 8000", got)
	}
}

func TestRegistryMisusePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "")
	for name, fn := range map[string]func(){
		"bad name":      func() { reg.Counter("bad metric", "") },
		"bad label":     func() { reg.CounterVec("ok_total", "", "bad label") },
		"kind conflict": func() { reg.Gauge("dup_total", "") },
		"label count":   func() { reg.CounterVec("lv_total", "", "a").With("x", "y") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		})
	}
}

func TestRegistryGaugeFuncVec(t *testing.T) {
	reg := NewRegistry()
	samples := map[string]float64{"spike": 3, "churn": 1, `e"s\c`: 2.5}
	reg.GaugeFuncVec("test_by_detector", "Computed, labeled.", "detector",
		func() map[string]float64 { return samples })

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_by_detector gauge",
		`test_by_detector{detector="churn"} 1`,
		`test_by_detector{detector="spike"} 3`,
		`test_by_detector{detector="e\"s\\c"} 2.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition misses %q:\n%s", want, out)
		}
	}
	// Series render in label-value order.
	if strings.Index(out, `"churn"`) > strings.Index(out, `"spike"`) {
		t.Errorf("series not value-sorted:\n%s", out)
	}

	// The scrape-time series set tracks the source map.
	samples["disappearance"] = 7
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `test_by_detector{detector="disappearance"} 7`) {
		t.Errorf("new key not exposed:\n%s", buf.String())
	}
}

// Package asrel infers AS relationships from observed AS paths using
// Gao's degree-based algorithm, and models the as2org sibling dataset.
// It substitutes for the CAIDA AS-relationship and organization
// inferences the paper uses as context (§4).
package asrel

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Rel is an inferred relationship between two adjacent ASes, following
// the CAIDA serialization convention.
type Rel int8

const (
	// RelP2C: the first AS is a provider of the second.
	RelP2C Rel = -1
	// RelP2P: the ASes are peers.
	RelP2P Rel = 0
)

// Graph holds inferred relationships for AS pairs.
type Graph struct {
	// rels maps an ordered pair key (lo, hi) to the relationship and its
	// orientation: provider == lo (true) or provider == hi (false); for
	// p2p the orientation is meaningless.
	rels map[uint64]edge
}

type edge struct {
	rel        Rel
	providerLo bool
}

func pairKey(a, b uint32) (uint64, bool) {
	if a < b {
		return uint64(a)<<32 | uint64(b), true
	}
	return uint64(b)<<32 | uint64(a), false
}

// NewGraph returns an empty relationship graph.
func NewGraph() *Graph {
	return &Graph{rels: make(map[uint64]edge)}
}

// SetP2C records provider -> customer.
func (g *Graph) SetP2C(provider, customer uint32) {
	key, loFirst := pairKey(provider, customer)
	g.rels[key] = edge{rel: RelP2C, providerLo: loFirst}
}

// SetP2P records a peering between a and b.
func (g *Graph) SetP2P(a, b uint32) {
	key, _ := pairKey(a, b)
	g.rels[key] = edge{rel: RelP2P}
}

// Rel returns the relationship of b as seen from a: RelP2C with
// aIsProvider true means a is b's provider; ok is false for unknown
// pairs.
func (g *Graph) Rel(a, b uint32) (rel Rel, aIsProvider bool, ok bool) {
	key, aIsLo := pairKey(a, b)
	e, ok := g.rels[key]
	if !ok {
		return 0, false, false
	}
	if e.rel == RelP2P {
		return RelP2P, false, true
	}
	return RelP2C, e.providerLo == aIsLo, true
}

// IsCustomerOf reports whether c is inferred to be a customer of p.
func (g *Graph) IsCustomerOf(c, p uint32) bool {
	rel, pIsProv, ok := g.Rel(p, c)
	return ok && rel == RelP2C && pIsProv
}

// IsPeer reports whether a and b are inferred peers.
func (g *Graph) IsPeer(a, b uint32) bool {
	rel, _, ok := g.Rel(a, b)
	return ok && rel == RelP2P
}

// Len returns the number of inferred pairs.
func (g *Graph) Len() int { return len(g.rels) }

// Options tune the inference.
type Options struct {
	// TransitThreshold is Gao's L: more than this many independent
	// transit observations in both directions marks a sibling-like pair
	// (serialized as p2p).
	TransitThreshold int

	// PeerDegreeRatio is Gao's R: when the only evidence for a pair comes
	// from top-of-path positions, a degree ratio at or below R labels the
	// pair peers. Gao used 60 on the 2001 Internet; the right value
	// scales with the corpus's degree distribution (the simulated corpus
	// works well around 3).
	PeerDegreeRatio float64
}

// DefaultOptions mirror the thresholds that behave well on the simulated
// corpus.
func DefaultOptions() Options {
	return Options{TransitThreshold: 1, PeerDegreeRatio: 3.0}
}

// Infer runs InferWithOptions with DefaultOptions.
func Infer(paths [][]uint32) *Graph { return InferWithOptions(paths, DefaultOptions()) }

// InferWithOptions runs a Gao-style relationship inference over AS paths:
//
//  1. compute each AS's degree (distinct neighbors across all paths);
//  2. per path, locate the top (highest-degree) AS and vote each edge:
//     uphill edges vote "nearer-to-origin side has the provider above
//     it", downhill edges the reverse; votes on edges adjacent to the
//     top are kept in a separate, less-trusted pool because the peering
//     link of a path (if any) sits there;
//  3. classify each pair: mutual non-top transit -> sibling-like
//     (serialized p2p); one-sided non-top transit -> p2c; top-only
//     evidence -> peers when the degrees are comparable, otherwise p2c
//     toward the larger degree.
//
// Paths should be loop-free; prepending is removed internally.
func InferWithOptions(paths [][]uint32, opt Options) *Graph {
	if opt.TransitThreshold <= 0 {
		opt.TransitThreshold = 1
	}
	if opt.PeerDegreeRatio <= 0 {
		opt.PeerDegreeRatio = 3.0
	}
	deg := make(map[uint32]map[uint32]struct{})
	addAdj := func(a, b uint32) {
		if deg[a] == nil {
			deg[a] = make(map[uint32]struct{})
		}
		deg[a][b] = struct{}{}
	}
	cleaned := make([][]uint32, 0, len(paths))
	for _, p := range paths {
		c := dedupAdjacent(p)
		if len(c) < 2 {
			continue
		}
		cleaned = append(cleaned, c)
		for i := 1; i < len(c); i++ {
			addAdj(c[i-1], c[i])
			addAdj(c[i], c[i-1])
		}
	}

	// votes[(p,c)] counts observations suggesting p provides transit to
	// c, split by whether the edge touched the path top.
	nonTop := make(map[uint64]int)
	topAdj := make(map[uint64]int)
	voteKey := func(p, c uint32) uint64 {
		k, _ := pairKey(p, c)
		if p < c {
			return k << 1
		}
		return k<<1 | 1
	}
	for _, p := range cleaned {
		top := 0
		for i := range p {
			if len(deg[p[i]]) > len(deg[p[top]]) {
				top = i
			}
		}
		// Path is nearest-first; the route flowed origin -> ... -> first.
		// Edges before the top are downhill (nearer AS is below), edges
		// after it uphill.
		for i := 0; i+1 < len(p); i++ {
			var provider, customer uint32
			if i < top {
				provider, customer = p[i+1], p[i]
			} else {
				provider, customer = p[i], p[i+1]
			}
			pool := nonTop
			if i == top || i+1 == top {
				pool = topAdj
			}
			pool[voteKey(provider, customer)]++
		}
	}

	g := NewGraph()
	seen := make(map[uint64]bool)
	for _, p := range cleaned {
		for i := 1; i < len(p); i++ {
			a, b := p[i-1], p[i]
			key, _ := pairKey(a, b)
			if seen[key] {
				continue
			}
			seen[key] = true
			na := nonTop[voteKey(a, b)] // a provides b, solid evidence
			nb := nonTop[voteKey(b, a)]
			switch {
			case na > opt.TransitThreshold && nb > opt.TransitThreshold:
				g.SetP2P(a, b) // mutual transit: sibling-like
			case na > nb:
				g.SetP2C(a, b)
			case nb > na:
				g.SetP2C(b, a)
			case na > 0: // equal, non-zero: ambiguous mutual transit
				g.SetP2P(a, b)
			default:
				// Only top-of-path evidence: peers if degrees are
				// comparable, otherwise the larger degree provides.
				da, db := float64(len(deg[a])), float64(len(deg[b]))
				ratio := da / db
				if ratio < 1 {
					ratio = db / da
				}
				switch {
				case ratio <= opt.PeerDegreeRatio:
					g.SetP2P(a, b)
				case da > db:
					g.SetP2C(a, b)
				default:
					g.SetP2C(b, a)
				}
			}
		}
	}
	return g
}

func dedupAdjacent(p []uint32) []uint32 {
	out := make([]uint32, 0, len(p))
	for _, asn := range p {
		if len(out) == 0 || out[len(out)-1] != asn {
			out = append(out, asn)
		}
	}
	return out
}

// WriteTo serializes the graph in the CAIDA AS-relationship format:
// provider|customer|-1 and peer|peer|0 lines.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	keys := make([]uint64, 0, len(g.rels))
	for k := range g.rels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		e := g.rels[k]
		lo, hi := uint32(k>>32), uint32(k&0xffffffff)
		a, b := lo, hi
		if e.rel == RelP2C && !e.providerLo {
			a, b = hi, lo
		}
		n, err := fmt.Fprintf(bw, "%d|%d|%d\n", a, b, e.rel)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadGraph parses the WriteTo format. Lines beginning with '#' are
// ignored.
func ReadGraph(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("asrel: line %d: want 3 fields", lineNo)
		}
		a, err1 := strconv.ParseUint(parts[0], 10, 32)
		b, err2 := strconv.ParseUint(parts[1], 10, 32)
		rel, err3 := strconv.ParseInt(parts[2], 10, 8)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("asrel: line %d: bad numbers", lineNo)
		}
		switch Rel(rel) {
		case RelP2C:
			g.SetP2C(uint32(a), uint32(b))
		case RelP2P:
			g.SetP2P(uint32(a), uint32(b))
		default:
			return nil, fmt.Errorf("asrel: line %d: unknown relationship %d", lineNo, rel)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

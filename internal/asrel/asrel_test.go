package asrel

import (
	"bytes"
	"testing"

	"bgpintent/internal/simulate"
	"bgpintent/internal/topology"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.SetP2C(1299, 64496)
	g.SetP2P(1299, 3356)

	if !g.IsCustomerOf(64496, 1299) {
		t.Error("64496 should be customer of 1299")
	}
	if g.IsCustomerOf(1299, 64496) {
		t.Error("1299 is not customer of 64496")
	}
	if !g.IsPeer(1299, 3356) || !g.IsPeer(3356, 1299) {
		t.Error("peering not symmetric")
	}
	if g.IsPeer(1299, 64496) {
		t.Error("p2c reported as peer")
	}
	if _, _, ok := g.Rel(5, 6); ok {
		t.Error("unknown pair reported known")
	}
	rel, aProv, ok := g.Rel(64496, 1299)
	if !ok || rel != RelP2C || aProv {
		t.Errorf("Rel(64496,1299) = %v %v %v", rel, aProv, ok)
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGraphOverwriteOrientation(t *testing.T) {
	g := NewGraph()
	g.SetP2C(10, 20)
	g.SetP2C(20, 10) // re-learned in the other direction
	if !g.IsCustomerOf(10, 20) {
		t.Error("orientation not updated")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1 (same pair)", g.Len())
	}
}

func TestInferSimpleHierarchy(t *testing.T) {
	// Star: AS1 is the high-degree core; stubs 10..13 hang off it, and
	// paths transit AS1.
	paths := [][]uint32{
		{10, 1, 11},
		{11, 1, 12},
		{12, 1, 13},
		{13, 1, 10},
		{10, 1, 12},
		{11, 1, 13},
	}
	g := Infer(paths)
	for _, stub := range []uint32{10, 11, 12, 13} {
		if !g.IsCustomerOf(stub, 1) {
			t.Errorf("AS%d should be inferred customer of AS1", stub)
		}
	}
}

func TestInferPeersAtTop(t *testing.T) {
	// Two cores peer; each has its own customers. Paths cross the
	// core-core link at the top.
	paths := [][]uint32{
		{10, 1, 2, 20},
		{11, 1, 2, 21},
		{12, 1, 2, 20},
		{10, 1, 2, 21},
		{20, 2, 1, 11},
		{21, 2, 1, 12},
		{10, 1, 11},
		{20, 2, 21},
	}
	g := Infer(paths)
	rel, _, ok := g.Rel(1, 2)
	if !ok {
		t.Fatal("1-2 not inferred")
	}
	if rel != RelP2P {
		t.Errorf("1-2 inferred %v, want p2p", rel)
	}
	if !g.IsCustomerOf(10, 1) || !g.IsCustomerOf(20, 2) {
		t.Error("customers not inferred")
	}
}

func TestInferHandlesPrependsAndShortPaths(t *testing.T) {
	paths := [][]uint32{
		{10},               // too short: ignored
		{10, 10, 1, 1, 11}, // prepends collapse
		{11, 1, 10},
	}
	g := Infer(paths)
	if g.Len() == 0 {
		t.Fatal("nothing inferred")
	}
	if _, _, ok := g.Rel(10, 1); !ok {
		t.Error("10-1 not inferred despite prepends")
	}
}

func TestInferOnSimulatedCorpus(t *testing.T) {
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate.New(topo, simulate.TinyConfig())
	day := sim.RunDay(0)
	paths := make([][]uint32, 0, len(day.Views))
	for _, v := range day.Views {
		paths = append(paths, v.Path)
	}
	g := Infer(paths)
	if g.Len() == 0 {
		t.Fatal("no relationships inferred")
	}

	// Score against ground truth for pairs the inference covered.
	correct, wrong := 0, 0
	for asn, a := range topo.ASes {
		for _, c := range a.Customers {
			rel, aProv, ok := g.Rel(asn, c)
			if !ok {
				continue
			}
			if rel == RelP2C && aProv {
				correct++
			} else {
				wrong++
			}
		}
		for _, p := range a.Peers {
			if asn > p {
				continue
			}
			rel, _, ok := g.Rel(asn, p)
			if !ok {
				continue
			}
			if rel == RelP2P {
				correct++
			} else {
				wrong++
			}
		}
	}
	total := correct + wrong
	if total == 0 {
		t.Fatal("no overlapping pairs scored")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.80 {
		t.Errorf("relationship inference accuracy = %.3f (%d/%d), want >= 0.80", acc, correct, total)
	}
	t.Logf("gao accuracy on simulated corpus: %.3f (%d pairs)", acc, total)
}

func TestGraphIORoundTrip(t *testing.T) {
	g := NewGraph()
	g.SetP2C(1299, 64496)
	g.SetP2C(64500, 64501)
	g.SetP2P(1299, 3356)

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("Len = %d", got.Len())
	}
	if !got.IsCustomerOf(64496, 1299) || !got.IsCustomerOf(64501, 64500) || !got.IsPeer(1299, 3356) {
		t.Error("round trip lost relationships")
	}
}

func TestReadGraphErrors(t *testing.T) {
	for name, in := range map[string]string{
		"fields":  "1|2\n",
		"numbers": "a|2|-1\n",
		"rel":     "1|2|7\n",
	} {
		if _, err := ReadGraph(bytes.NewBufferString(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	g, err := ReadGraph(bytes.NewBufferString("# comment\n\n1|2|-1\n"))
	if err != nil || g.Len() != 1 {
		t.Errorf("comment handling: %v", err)
	}
}

func TestOrgMap(t *testing.T) {
	m := NewOrgMap()
	m.Set(1299, "org-arelion")
	m.Set(1300, "org-arelion")
	m.Set(3356, "org-lumen")

	if !m.Siblings(1299, 1300) || !m.Siblings(1300, 1299) {
		t.Error("siblings not symmetric")
	}
	if m.Siblings(1299, 3356) {
		t.Error("different orgs reported siblings")
	}
	if m.Siblings(1299, 1299) {
		t.Error("self-sibling")
	}
	if m.Siblings(1299, 9999) || m.Siblings(9999, 9998) {
		t.Error("unknown ASNs reported siblings")
	}
	if o, ok := m.Org(1299); !ok || o != "org-arelion" {
		t.Errorf("Org = %q %v", o, ok)
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestOrgMapIORoundTrip(t *testing.T) {
	m := NewOrgMap()
	m.Set(1, "o1")
	m.Set(2, "o1")
	m.Set(3, "o2")
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOrgMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || !got.Siblings(1, 2) || got.Siblings(1, 3) {
		t.Error("round trip mismatch")
	}
}

func TestReadOrgMapErrors(t *testing.T) {
	for name, in := range map[string]string{
		"fields": "1\n",
		"asn":    "x|org\n",
		"empty":  "1|\n",
	} {
		if _, err := ReadOrgMap(bytes.NewBufferString(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

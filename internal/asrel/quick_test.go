package asrel

import (
	"testing"
	"testing/quick"
)

// TestPairKeySymmetryQuick: the pair key ignores order; the lo-first flag
// tracks it.
func TestPairKeySymmetryQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return true
		}
		k1, lo1 := pairKey(a, b)
		k2, lo2 := pairKey(b, a)
		return k1 == k2 && lo1 != lo2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGraphRelSymmetryQuick: after SetP2C, exactly one side is the
// provider, from both viewpoints.
func TestGraphRelSymmetryQuick(t *testing.T) {
	f := func(p, c uint32) bool {
		if p == c {
			return true
		}
		g := NewGraph()
		g.SetP2C(p, c)
		rel1, pProv, ok1 := g.Rel(p, c)
		rel2, cProv, ok2 := g.Rel(c, p)
		return ok1 && ok2 && rel1 == RelP2C && rel2 == RelP2C && pProv && !cProv &&
			g.IsCustomerOf(c, p) && !g.IsCustomerOf(p, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInferNeverPanicsQuick: arbitrary path soup must not break the
// inference.
func TestInferNeverPanicsQuick(t *testing.T) {
	f := func(raw [][]uint32) bool {
		g := Infer(raw)
		return g != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInferCoversAllAdjacencies: every adjacent pair in the input is
// classified.
func TestInferCoversAllAdjacencies(t *testing.T) {
	paths := [][]uint32{
		{1, 2, 3},
		{4, 2, 5},
		{3, 2, 1},
		{6, 5, 2, 3},
	}
	g := Infer(paths)
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			if _, _, ok := g.Rel(p[i-1], p[i]); !ok {
				t.Fatalf("pair %d-%d unclassified", p[i-1], p[i])
			}
		}
	}
}

package asrel

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// OrgMap maps ASNs to organization identifiers, the as2org dataset the
// paper uses to make its on-path test sibling-aware.
type OrgMap struct {
	org map[uint32]string
}

// NewOrgMap returns an empty organization map.
func NewOrgMap() *OrgMap {
	return &OrgMap{org: make(map[uint32]string)}
}

// Set assigns an AS to an organization.
func (m *OrgMap) Set(asn uint32, org string) { m.org[asn] = org }

// Org returns the organization of asn, if known.
func (m *OrgMap) Org(asn uint32) (string, bool) {
	o, ok := m.org[asn]
	return o, ok
}

// Siblings reports whether two distinct ASNs belong to the same known
// organization.
func (m *OrgMap) Siblings(a, b uint32) bool {
	if a == b {
		return false
	}
	oa, ok := m.org[a]
	if !ok {
		return false
	}
	ob, ok := m.org[b]
	return ok && oa == ob
}

// Len returns the number of mapped ASNs.
func (m *OrgMap) Len() int { return len(m.org) }

// WriteTo serializes the map as asn|org lines.
func (m *OrgMap) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	asns := make([]uint32, 0, len(m.org))
	for asn := range m.org {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		n, err := fmt.Fprintf(bw, "%d|%s\n", asn, m.org[asn])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadOrgMap parses the WriteTo format. Lines beginning with '#' are
// ignored.
func ReadOrgMap(r io.Reader) (*OrgMap, error) {
	m := NewOrgMap()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "|", 2)
		if len(parts) != 2 || parts[1] == "" {
			return nil, fmt.Errorf("asrel: org line %d: want asn|org", lineNo)
		}
		asn, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("asrel: org line %d: bad ASN: %v", lineNo, err)
		}
		m.Set(uint32(asn), parts[1])
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

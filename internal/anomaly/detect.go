package anomaly

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"bgpintent/internal/bgp"
	"bgpintent/internal/dict"
)

// Thresholds are the committed detection parameters. The zero value
// selects the defaults the ground-truth validation pins down; tests and
// the CI smoke run at exactly these numbers.
type Thresholds struct {
	// SpikeWarmup is how many closed buckets a series needs before spike
	// judgments begin (default 6).
	SpikeWarmup int
	// SpikeK scales the MAD in the burst threshold (default 6).
	SpikeK float64
	// SpikeRatio is the multiplicative guard: a burst must also exceed
	// SpikeRatio x median, so organic day-over-day level shifts on busy
	// series stay quiet (default 3).
	SpikeRatio float64
	// SpikeMin is the absolute activity floor of a burst, guarding
	// near-zero baselines (default 50).
	SpikeMin float64

	// FlapTransitions is how many burst/calm transitions within the
	// history window call a series churning (default 5).
	FlapTransitions int

	// ReliableMin is the decayed route count through an AS before its
	// tagging baseline is trusted; ReliableFrac the tag rate it must
	// sustain (defaults 300 routes, 0.9).
	ReliableMin  float64
	ReliableFrac float64
	// MissFrac is the per-bucket miss rate on a reliable AS that flags a
	// disappearance; MissMin the minimum routes in the bucket for the
	// rate to mean anything (defaults 0.6, 20).
	MissFrac float64
	MissMin  int
	// BaselineDecay is the per-bucket exponential decay of the learned
	// per-AS counts (default 0.98).
	BaselineDecay float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.SpikeWarmup <= 0 {
		t.SpikeWarmup = 6
	}
	if t.SpikeK <= 0 {
		t.SpikeK = 6
	}
	if t.SpikeRatio <= 0 {
		t.SpikeRatio = 3
	}
	if t.SpikeMin <= 0 {
		t.SpikeMin = 50
	}
	if t.FlapTransitions <= 0 {
		t.FlapTransitions = 5
	}
	if t.ReliableMin <= 0 {
		t.ReliableMin = 300
	}
	if t.ReliableFrac <= 0 {
		t.ReliableFrac = 0.9
	}
	if t.MissFrac <= 0 {
		t.MissFrac = 0.6
	}
	if t.MissMin <= 0 {
		t.MissMin = 20
	}
	if t.BaselineDecay <= 0 {
		t.BaselineDecay = 0.98
	}
	return t
}

// burst* are the engine-level burst threshold parameters; they mirror
// the spike thresholds so "burst" means the same thing to the spike and
// churn detectors.
const (
	burstK      = 6.0
	burstRatio  = 3.0
	burstMinAbs = 50.0
)

// burstThreshold is the robust activity level above which a closed
// bucket counts as bursting: median plus a MAD margin, at least a
// multiple of the median (level-shift guard), at least an absolute
// floor (cold-series guard).
func burstThreshold(med, mad float64) float64 {
	return math.Max(math.Max(med+burstK*mad, burstRatio*med), burstMinAbs)
}

// BucketInfo describes the bucket being closed to detectors.
type BucketInfo struct {
	Start        time.Time
	Span         time.Duration
	Index        uint64
	Generation   uint64
	HasSemantics bool
}

// SeriesStat is one community's closed-bucket measurement: the count,
// the robust statistics of its retained history, its burst state, and
// its current inferred semantics.
type SeriesStat struct {
	Comm       bgp.Community
	Count      int
	Median     float64
	MAD        float64
	HistoryLen int
	Category   dict.Category
	Burst      bool
	// BurstBits is the trailing burst history, bit 0 = this bucket.
	BurstBits uint64
}

// ASStat is one AS's closed-bucket path accounting.
type ASStat struct {
	ASN     uint32
	Through int
	Tagged  int
}

// Detector is the pluggable contract: a named detector implementing
// SeriesDetector (called once per active community per closed bucket),
// PathDetector (called once per on-path AS per closed bucket), or both.
// Detectors own their cross-bucket state; the engine owns measurement.
// Calls arrive from the single processing goroutine, never concurrently.
type Detector interface {
	Name() string
}

// SeriesDetector judges per-community activity series.
type SeriesDetector interface {
	Detector
	CloseSeries(b BucketInfo, s SeriesStat, emit func(Finding))
}

// PathDetector judges per-AS path aggregates.
type PathDetector interface {
	Detector
	CloseAS(b BucketInfo, a ASStat, emit func(Finding))
}

// DefaultDetectors is the standard CommunityWatch set: spike, churn,
// and disappearance, at the given thresholds.
func DefaultDetectors(t Thresholds) []Detector {
	t = t.withDefaults()
	return []Detector{
		NewSpikeDetector(t),
		NewChurnDetector(t),
		NewDisappearDetector(t),
	}
}

func fracStr(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }

// SpikeDetector flags activity bursts on action communities — the
// blackhole-onset signature — and their withdrawal when the series
// falls back to baseline. Only action communities are judged: an
// information community's activity follows route volume, an action
// community's follows operator intervention.
type SpikeDetector struct {
	t       Thresholds
	spiking map[bgp.Community]bool
}

// NewSpikeDetector builds the spike detector at the given thresholds.
func NewSpikeDetector(t Thresholds) *SpikeDetector {
	return &SpikeDetector{t: t.withDefaults(), spiking: make(map[bgp.Community]bool)}
}

// Name implements Detector.
func (d *SpikeDetector) Name() string { return "spike" }

// CloseSeries implements SeriesDetector.
func (d *SpikeDetector) CloseSeries(b BucketInfo, s SeriesStat, emit func(Finding)) {
	if !b.HasSemantics || s.HistoryLen < d.t.SpikeWarmup {
		return
	}
	x := float64(s.Count)
	thr := math.Max(math.Max(s.Median+d.t.SpikeK*s.MAD, d.t.SpikeRatio*s.Median), d.t.SpikeMin)
	score := (x - s.Median) / math.Max(s.MAD, 1)
	switch {
	case !d.spiking[s.Comm] && x >= thr && s.Category == dict.CatAction:
		d.spiking[s.Comm] = true
		f := Finding{
			Detector: d.Name(), Kind: "spike-onset",
			Community: s.Comm, HasCommunity: true, ASN: uint32(s.Comm.ASN()),
			Category: s.Category,
			Value:    x, Baseline: s.Median, Score: score,
		}
		f.Summary = fmt.Sprintf("spike-onset: %s community %s at %d updates/bucket (baseline %.0f, %.0fx MAD)",
			s.Category, f.subject(), s.Count, s.Median, score)
		emit(f)
	case d.spiking[s.Comm] && x < thr/2:
		delete(d.spiking, s.Comm)
		f := Finding{
			Detector: d.Name(), Kind: "spike-withdrawal",
			Community: s.Comm, HasCommunity: true, ASN: uint32(s.Comm.ASN()),
			Category: s.Category,
			Value:    x, Baseline: s.Median, Score: score,
		}
		f.Summary = fmt.Sprintf("spike-withdrawal: %s community %s back to %d updates/bucket (baseline %.0f)",
			s.Category, f.subject(), s.Count, s.Median)
		emit(f)
	}
}

// ChurnDetector flags series that keep flipping between bursting and
// calm — the traffic-engineering flap signature. A single sustained
// spike produces two transitions; a flap series produces two per cycle,
// so the transition threshold separates the shapes.
type ChurnDetector struct {
	t       Thresholds
	flagged map[bgp.Community]bool
}

// NewChurnDetector builds the churn detector at the given thresholds.
func NewChurnDetector(t Thresholds) *ChurnDetector {
	return &ChurnDetector{t: t.withDefaults(), flagged: make(map[bgp.Community]bool)}
}

// Name implements Detector.
func (d *ChurnDetector) Name() string { return "churn" }

// transitions counts burst-state changes over the n newest bits.
func transitions(bitsWord uint64, n int) int {
	if n < 2 {
		return 0
	}
	if n < 64 {
		bitsWord &= (1 << n) - 1
	}
	return bits.OnesCount64((bitsWord ^ (bitsWord >> 1)) & ((1 << (n - 1)) - 1))
}

// CloseSeries implements SeriesDetector.
func (d *ChurnDetector) CloseSeries(b BucketInfo, s SeriesStat, emit func(Finding)) {
	if !b.HasSemantics || s.HistoryLen < d.t.SpikeWarmup {
		return
	}
	// History length plus the just-closed bucket, capped at the bitmap.
	n := s.HistoryLen + 1
	if n > 64 {
		n = 64
	}
	tr := transitions(s.BurstBits, n)
	switch {
	case !d.flagged[s.Comm] && tr >= d.t.FlapTransitions && s.Category == dict.CatAction:
		d.flagged[s.Comm] = true
		f := Finding{
			Detector: d.Name(), Kind: "churn",
			Community: s.Comm, HasCommunity: true, ASN: uint32(s.Comm.ASN()),
			Category: s.Category,
			Value:    float64(s.Count), Baseline: s.Median, Score: float64(tr),
		}
		f.Summary = fmt.Sprintf("churn: %s community %s flapped %d times across the window",
			s.Category, f.subject(), tr)
		emit(f)
	case d.flagged[s.Comm] && tr <= d.t.FlapTransitions/2:
		// Re-arm quietly once the series settles.
		delete(d.flagged, s.Comm)
	}
}

// asBaseline is a DisappearDetector's learned view of one AS: decayed
// route and tag counts, accumulated from unflagged buckets only so a
// strip event cannot erode the baseline that detects it.
type asBaseline struct {
	through float64
	tagged  float64
	flagged bool
}

// DisappearDetector learns, per AS (full 32-bit space), how reliably
// routes through it carry its own information communities, and flags
// buckets where those tags go missing — the community-stripping leak
// signature. This is the promotion of examples/anomaly's batch
// heuristic into a streaming detector, minus its 16-bit truncation
// bias: 4-byte ASes are counted like any other, and since a classic
// community α is 16-bit they can never look "reliably tagged", so they
// also can never produce a false disappearance.
type DisappearDetector struct {
	t  Thresholds
	as map[uint32]*asBaseline
}

// NewDisappearDetector builds the disappearance detector at the given
// thresholds.
func NewDisappearDetector(t Thresholds) *DisappearDetector {
	return &DisappearDetector{t: t.withDefaults(), as: make(map[uint32]*asBaseline)}
}

// Name implements Detector.
func (d *DisappearDetector) Name() string { return "disappearance" }

// CloseAS implements PathDetector.
func (d *DisappearDetector) CloseAS(b BucketInfo, a ASStat, emit func(Finding)) {
	if !b.HasSemantics {
		return
	}
	bl := d.as[a.ASN]
	if bl == nil {
		bl = &asBaseline{}
		d.as[a.ASN] = bl
	}
	reliable := bl.through >= d.t.ReliableMin &&
		bl.tagged/bl.through >= d.t.ReliableFrac
	missFrac := 0.0
	if a.Through > 0 {
		missFrac = float64(a.Through-a.Tagged) / float64(a.Through)
	}
	anomalous := reliable && a.Through >= d.t.MissMin && missFrac >= d.t.MissFrac

	switch {
	case anomalous && !bl.flagged:
		bl.flagged = true
		f := Finding{
			Detector: d.Name(), Kind: "info-disappearance",
			ASN:      a.ASN,
			Category: dict.CatInformation,
			Value:    missFrac, Baseline: 1 - bl.tagged/bl.through, Score: missFrac / d.t.MissFrac,
		}
		f.Summary = fmt.Sprintf("info-disappearance: %s of %d routes through %s lost its information tags (baseline miss %s)",
			fracStr(missFrac), a.Through, f.subject(), fracStr(f.Baseline))
		emit(f)
	case bl.flagged && a.Through >= d.t.MissMin && missFrac < d.t.MissFrac/2:
		bl.flagged = false
		f := Finding{
			Detector: d.Name(), Kind: "info-recovery",
			ASN:      a.ASN,
			Category: dict.CatInformation,
			Value:    missFrac, Baseline: 1 - bl.tagged/bl.through, Score: missFrac / d.t.MissFrac,
		}
		f.Summary = fmt.Sprintf("info-recovery: routes through %s carry their information tags again (%s missing)",
			f.subject(), fracStr(missFrac))
		emit(f)
	}

	// Learn from calm buckets only; the decay keeps the baseline
	// tracking slow organic drift.
	if !bl.flagged {
		bl.through = bl.through*d.t.BaselineDecay + float64(a.Through)
		bl.tagged = bl.tagged*d.t.BaselineDecay + float64(a.Tagged)
	}
}

package anomaly

import (
	"context"
	"runtime"
	"testing"
	"time"

	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
	"bgpintent/internal/stream"
)

// fakeSem is a minimal InferenceSource for unit tests: a category map.
type fakeSem struct {
	core.NoLargeInferences
	cats map[bgp.Community]dict.Category
}

func (f *fakeSem) Verdict(c bgp.Community) core.Verdict {
	return core.Verdict{Comm: c, Observed: true, Category: f.cats[c]}
}
func (f *fakeSem) Category(c bgp.Community) dict.Category { return f.cats[c] }
func (f *fakeSem) Observed() int                          { return len(f.cats) }
func (f *fakeSem) Counts() (int, int)                     { return 0, 0 }
func (f *fakeSem) ExcludedCount() int                     { return 0 }
func (f *fakeSem) ClusterCount() int                      { return 0 }
func (f *fakeSem) ClusterSummaryAt(int) core.ClusterSummary {
	panic("not used")
}
func (f *fakeSem) EachLabeled(fn func(bgp.Community, dict.Category) bool) {
	for c, cat := range f.cats {
		if !fn(c, cat) {
			return
		}
	}
}
func (f *fakeSem) Options() core.Options          { return core.Options{} }
func (f *fakeSem) Materialize() *core.Inferences  { panic("not used") }

// epoch is aligned to the bucket grid so each synthetic bucket in
// feedBucket maps onto exactly one engine bucket.
var epoch = time.Unix(1_600_000_000, 0).UTC().Truncate(time.Hour)

// feedBucket sends n updates carrying comms over the given path, spread
// within bucket b (span 10m).
func feedBucket(e *Engine, b int, n int, path []uint32, comms ...bgp.Community) {
	span := 10 * time.Minute
	for i := 0; i < n; i++ {
		e.Process(stream.Update{
			Seq:   1, // unused by the engine
			Time:  epoch.Add(time.Duration(b)*span + time.Duration(i)*span/time.Duration(n+1)),
			VP:    path[0],
			Path:  path,
			Comms: comms,
		})
	}
}

func testEngine(t *testing.T, th Thresholds) *Engine {
	t.Helper()
	return NewEngine(Options{
		BucketSpan: 10 * time.Minute,
		History:    16,
		Detectors:  DefaultDetectors(th),
		Logf:       t.Logf,
	})
}

func findKinds(rep Report) map[string]int {
	out := make(map[string]int)
	for _, f := range rep.Findings {
		out[f.Kind]++
	}
	return out
}

func TestSpikeOnsetAndWithdrawal(t *testing.T) {
	action := bgp.NewCommunity(100, 666)
	e := testEngine(t, Thresholds{})
	e.SetSemantics(&fakeSem{cats: map[bgp.Community]dict.Category{action: dict.CatAction}})

	path := []uint32{10, 20, 30}
	for b := 0; b < 10; b++ {
		feedBucket(e, b, 5, path, action)
	}
	feedBucket(e, 10, 200, path, action) // burst
	for b := 11; b < 14; b++ {
		feedBucket(e, b, 5, path, action)
	}
	e.CloseUpTo(epoch.Add(14 * 10 * time.Minute))

	rep := e.Query(Query{})
	kinds := findKinds(rep)
	if kinds["spike-onset"] != 1 || kinds["spike-withdrawal"] != 1 {
		t.Fatalf("got kinds %v, want one spike-onset and one spike-withdrawal", kinds)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("extra findings: %+v", rep.Findings)
	}
	onset := rep.Findings[0]
	if onset.Kind != "spike-onset" || onset.Community != action || onset.Category != dict.CatAction {
		t.Errorf("onset finding wrong: %+v", onset)
	}
	if onset.Value != 200 || onset.Baseline != 5 {
		t.Errorf("onset value/baseline = %v/%v, want 200/5", onset.Value, onset.Baseline)
	}
	if onset.Bucket != epoch.Add(10*10*time.Minute) {
		t.Errorf("onset bucket %v, want bucket 10", onset.Bucket)
	}
}

func TestSpikeIgnoresNonActionCommunities(t *testing.T) {
	info := bgp.NewCommunity(100, 1)
	unknown := bgp.NewCommunity(100, 2)
	e := testEngine(t, Thresholds{})
	e.SetSemantics(&fakeSem{cats: map[bgp.Community]dict.Category{info: dict.CatInformation}})

	path := []uint32{10, 20, 30}
	for b := 0; b < 10; b++ {
		feedBucket(e, b, 5, path, info, unknown)
	}
	feedBucket(e, 10, 200, path, info, unknown)
	e.CloseUpTo(epoch.Add(12 * 10 * time.Minute))

	if rep := e.Query(Query{}); len(rep.Findings) != 0 {
		t.Fatalf("non-action burst produced findings: %+v", rep.Findings)
	}
}

func TestChurnOnFlappingSeries(t *testing.T) {
	te := bgp.NewCommunity(200, 20)
	e := testEngine(t, Thresholds{})
	e.SetSemantics(&fakeSem{cats: map[bgp.Community]dict.Category{te: dict.CatAction}})

	path := []uint32{10, 20, 30}
	b := 0
	for ; b < 8; b++ { // calm baseline
		feedBucket(e, b, 3, path, te)
	}
	for cycle := 0; cycle < 4; cycle++ { // 4 on/off cycles
		feedBucket(e, b, 200, path, te)
		b++
		feedBucket(e, b, 3, path, te)
		b++
	}
	e.CloseUpTo(epoch.Add(time.Duration(b+1) * 10 * time.Minute))

	rep := e.Query(Query{Detector: "churn"})
	if len(rep.Findings) == 0 {
		t.Fatalf("flapping series produced no churn finding")
	}
	f := rep.Findings[0]
	if f.Community != te || f.Category != dict.CatAction || f.Score < 5 {
		t.Errorf("churn finding wrong: %+v", f)
	}
}

func TestDisappearanceAndRecovery(t *testing.T) {
	infoC := bgp.NewCommunity(5000, 300)
	e := testEngine(t, Thresholds{})
	e.SetSemantics(&fakeSem{cats: map[bgp.Community]dict.Category{infoC: dict.CatInformation}})

	// AS 5000 reliably tags; AS 70000 (4-byte) is on every path and can
	// never tag (α is 16-bit) — it must stay silent despite a 100% miss
	// rate, proving the full-ASN-space handling has no truncation bias.
	path := []uint32{10, 70000, 5000, 30}
	b := 0
	for ; b < 20; b++ {
		feedBucket(e, b, 30, path, infoC)
	}
	for ; b < 23; b++ { // strip: tags gone on routes through 5000
		feedBucket(e, b, 30, path)
	}
	for ; b < 27; b++ { // remediation
		feedBucket(e, b, 30, path, infoC)
	}
	e.CloseUpTo(epoch.Add(time.Duration(b+1) * 10 * time.Minute))

	rep := e.Query(Query{Detector: "disappearance"})
	kinds := findKinds(rep)
	if kinds["info-disappearance"] != 1 || kinds["info-recovery"] != 1 {
		t.Fatalf("got kinds %v, want one disappearance and one recovery", kinds)
	}
	for _, f := range rep.Findings {
		if f.ASN != 5000 {
			t.Errorf("finding names AS%d, want AS5000 only: %+v", f.ASN, f)
		}
	}
}

func TestGenerationSwapRelabelsWithoutRestart(t *testing.T) {
	c := bgp.NewCommunity(300, 666)
	e := testEngine(t, Thresholds{})
	e.SetSemantics(&fakeSem{cats: map[bgp.Community]dict.Category{c: dict.CatInformation}})

	path := []uint32{10, 20, 30}
	for b := 0; b < 10; b++ {
		feedBucket(e, b, 5, path, c)
	}
	feedBucket(e, 10, 200, path, c) // burst while labeled information
	for b := 11; b < 14; b++ {
		feedBucket(e, b, 5, path, c)
	}
	if rep := e.Query(Query{Detector: "spike"}); len(rep.Findings) != 0 {
		t.Fatalf("information-labeled burst fired: %+v", rep.Findings)
	}

	// A new classification generation flips the community to action; the
	// running detectors must pick it up with no restart.
	e.SetSemantics(&fakeSem{cats: map[bgp.Community]dict.Category{c: dict.CatAction}})
	feedBucket(e, 14, 200, path, c)
	e.CloseUpTo(epoch.Add(16 * 10 * time.Minute))

	rep := e.Query(Query{Detector: "spike"})
	if len(rep.Findings) == 0 || rep.Findings[0].Kind != "spike-onset" {
		t.Fatalf("post-swap burst: got %+v, want a spike-onset", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Category != dict.CatAction || f.Generation != 2 {
		t.Errorf("finding category/generation = %v/%d, want action/2", f.Category, f.Generation)
	}
	if h := e.Health(); h.Generation != 2 {
		t.Errorf("health generation %d, want 2", h.Generation)
	}
}

func TestQueryFilters(t *testing.T) {
	action := bgp.NewCommunity(100, 666)
	e := testEngine(t, Thresholds{})
	e.SetSemantics(&fakeSem{cats: map[bgp.Community]dict.Category{action: dict.CatAction}})
	path := []uint32{10, 20}
	for b := 0; b < 10; b++ {
		feedBucket(e, b, 5, path, action)
	}
	feedBucket(e, 10, 200, path, action)
	feedBucket(e, 11, 5, path, action)
	feedBucket(e, 12, 200, path, action)
	e.CloseUpTo(epoch.Add(14 * 10 * time.Minute))

	all := e.Query(Query{})
	if len(all.Findings) < 3 {
		t.Fatalf("want >= 3 findings, got %+v", all.Findings)
	}
	if lim := e.Query(Query{Limit: 1}); len(lim.Findings) != 1 ||
		lim.Findings[0].ID != all.Findings[len(all.Findings)-1].ID {
		t.Errorf("Limit 1 did not return the newest finding")
	}
	if det := e.Query(Query{Detector: "disappearance"}); len(det.Findings) != 0 {
		t.Errorf("detector filter leaked: %+v", det.Findings)
	}
	// Window: only findings within 2 buckets of the last closed bucket.
	win := e.Query(Query{Window: 2 * 10 * time.Minute})
	for _, f := range win.Findings {
		if f.Bucket.Before(all.LastBucket.Add(-2 * 10 * time.Minute)) {
			t.Errorf("windowed query returned old finding: %+v", f)
		}
	}
	if all.Stamp == 0 || all.Generation != 1 {
		t.Errorf("report stamp/generation = %d/%d", all.Stamp, all.Generation)
	}
}

func TestEngineCountsWithoutSemantics(t *testing.T) {
	c := bgp.NewCommunity(100, 666)
	e := testEngine(t, Thresholds{})
	path := []uint32{10, 20}
	for b := 0; b < 8; b++ {
		feedBucket(e, b, 5, path, c)
	}
	feedBucket(e, 8, 500, path, c)
	e.CloseUpTo(epoch.Add(10 * 10 * time.Minute))
	if rep := e.Query(Query{}); len(rep.Findings) != 0 {
		t.Fatalf("findings before any semantics: %+v", rep.Findings)
	}
	h := e.Health()
	if h.Updates == 0 || h.Buckets == 0 || h.Generation != 0 {
		t.Errorf("health without semantics: %+v", h)
	}
	if h.Lag <= 0 {
		t.Errorf("lag not reported after bucket closes: %v", h.Lag)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWatcherLifecycleNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	e := testEngine(t, Thresholds{})
	w := StartWatcher(ctx, e, 16)
	for i := 0; i < 100; i++ {
		w.Offer(stream.Update{Time: epoch.Add(time.Duration(i) * time.Minute), Path: []uint32{1, 2}})
	}
	waitFor(t, "watcher to drain offers", func() bool { return w.Health().Updates > 0 })

	cancel()
	select {
	case <-w.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop after cancel")
	}
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})

	// Offers after shutdown are dropped, not deadlocked.
	for i := 0; i < 20; i++ {
		w.Offer(stream.Update{Time: epoch})
	}
	if d := w.Health().Dropped; d == 0 {
		t.Errorf("post-shutdown offers were not counted as dropped")
	}
}

func TestWatcherProcessesAllBuffered(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := testEngine(t, Thresholds{})
	w := StartWatcher(ctx, e, 1024)
	const n = 500
	for i := 0; i < n; i++ {
		w.Offer(stream.Update{Time: epoch.Add(time.Duration(i) * time.Second), Path: []uint32{1, 2}})
	}
	waitFor(t, "all updates processed", func() bool {
		h := w.Health()
		return h.Updates+h.Dropped >= n
	})
	if h := w.Health(); h.Dropped != 0 {
		t.Errorf("dropped %d updates with a roomy buffer", h.Dropped)
	}
}

package anomaly

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"testing"
	"time"

	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
	"bgpintent/internal/simulate"
	"bgpintent/internal/stream"
	"bgpintent/internal/topology"
)

// Ground-truth validation: play a fixed-seed simulated feed with
// scripted events through the real ingestion path, run the detectors
// at the committed thresholds, and score them. Every scripted event
// must be detected with the category the inference pipeline assigned
// to its subject, and nothing may fire outside an event's influence
// window — zero false positives. The CI anomaly smoke job runs exactly
// this test.

const (
	gtBucket = time.Hour
	gtDays   = 2
	gtSlack  = 2 * gtBucket // grace around event windows for closings
)

// gtThresholds are the committed detection thresholds for the tiny
// simulated corpus (~40 VPs). They scale the production defaults down
// to its per-bucket densities and are what CI scores against.
var gtThresholds = Thresholds{
	SpikeWarmup:     6,
	SpikeK:          6,
	SpikeRatio:      3,
	SpikeMin:        50,
	FlapTransitions: 5,
	ReliableMin:     100,
	ReliableFrac:    0.9,
	MissFrac:        0.6,
	MissMin:         10,
	BaselineDecay:   0.98,
}

func gtSim(t *testing.T) *simulate.Simulator {
	t.Helper()
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		t.Fatalf("topology.Generate: %v", err)
	}
	return simulate.New(topo, simulate.TinyConfig())
}

func drainAll(t *testing.T, src stream.Source) []stream.Update {
	t.Helper()
	sess, err := src.Connect(context.Background(), 0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer sess.Close()
	var out []stream.Update
	for {
		u, err := sess.Recv(context.Background())
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		out = append(out, u)
	}
}

// classifyCorpus runs the batch inference pipeline over a clean drain
// of the feed — the semantics generation the detectors attribute with.
func classifyCorpus(updates []stream.Update) *core.Inferences {
	ts := core.NewTupleStore()
	for _, u := range updates {
		ts.AddView(u.VP, u.Path, u.Comms)
	}
	return core.Classify(ts, core.DefaultOptions())
}

// asTagStats aggregates, per 16-bit on-path AS, how many updates pass
// through it and how many of those carry an information community it
// owns — the same measurement the disappearance detector makes.
type tagStat struct {
	through int
	tagged  int
	overlap map[uint32]int // through-counts shared with other ASes
}

func gatherTagStats(updates []stream.Update, sem core.InferenceSource) map[uint32]*tagStat {
	stats := make(map[uint32]*tagStat)
	var asns []uint32
	for _, u := range updates {
		asns = asns[:0]
		for i := 1; i < len(u.Path); i++ {
			a := u.Path[i]
			dup := false
			for _, b := range asns {
				if a == b {
					dup = true
					break
				}
			}
			if !dup {
				asns = append(asns, a)
			}
		}
		for _, a := range asns {
			st := stats[a]
			if st == nil {
				st = &tagStat{overlap: make(map[uint32]int)}
				stats[a] = st
			}
			st.through++
			for _, b := range asns {
				if b != a {
					st.overlap[b]++
				}
			}
			if a > 0xffff {
				continue // α is 16-bit; a 4-byte AS cannot own a classic community
			}
			for _, c := range u.Comms {
				if uint32(c.ASN()) == a && sem.Category(c) == dict.CatInformation {
					st.tagged++
					break
				}
			}
		}
	}
	return stats
}

// pickSubjects chooses the event subjects from the baseline corpus and
// classification alone — nothing is hard-coded, so the test keeps
// working as the simulator's community dialect evolves.
func pickSubjects(t *testing.T, updates []stream.Update, sem core.InferenceSource) (spike, flap bgp.Community, strip uint32) {
	t.Helper()

	// Spike/flap subjects: the two least-frequent action-labeled
	// communities (quiet baselines give the cleanest onsets), by count
	// then community value for determinism.
	freq := make(map[bgp.Community]int)
	for _, u := range updates {
		for _, c := range u.Comms {
			freq[c]++
		}
	}
	var actions []bgp.Community
	sem.EachLabeled(func(c bgp.Community, cat dict.Category) bool {
		if cat == dict.CatAction {
			actions = append(actions, c)
		}
		return true
	})
	if len(actions) < 2 {
		t.Fatalf("corpus classified only %d action communities", len(actions))
	}
	sort.Slice(actions, func(i, j int) bool {
		if freq[actions[i]] != freq[actions[j]] {
			return freq[actions[i]] < freq[actions[j]]
		}
		return actions[i] < actions[j]
	})
	spike, flap = actions[0], actions[1]

	// Strip subject: the busiest reliable information tagger whose
	// traffic is not mostly shared with another reliable tagger (so the
	// stripped routes implicate it alone and the test can demand exact
	// attribution).
	stats := gatherTagStats(updates, sem)
	reliable := make(map[uint32]bool)
	for a, st := range stats {
		if st.through >= 50 && float64(st.tagged)/float64(st.through) >= 0.9 {
			reliable[a] = true
		}
	}
	best, bestThrough := uint32(0), 0
	for a := range reliable {
		st := stats[a]
		clean := true
		for b := range reliable {
			if b == a {
				continue
			}
			// Stripping a would hide > half of b's tagged routes: the
			// collateral could legitimately implicate b too. Skip a.
			if float64(st.overlap[b]) > 0.5*float64(stats[b].through) {
				clean = false
				break
			}
		}
		if clean && (st.through > bestThrough || (st.through == bestThrough && a < best)) {
			best, bestThrough = a, st.through
		}
	}
	if best == 0 {
		t.Fatalf("no isolated reliable tagging AS in corpus (%d reliable)", len(reliable))
	}
	return spike, flap, best
}

// gtEvent is one scripted event plus the findings it licenses.
type gtEvent struct {
	name     string
	start    time.Time
	end      time.Time
	comm     bgp.Community // zero when the subject is an AS
	asn      uint32
	required string // detector kind that must fire at least once
}

func (e gtEvent) covers(f Finding) bool {
	if f.Bucket.Before(e.start.Add(-gtSlack)) || f.Bucket.After(e.end.Add(gtSlack)) {
		return false
	}
	if e.comm != 0 {
		return f.HasCommunity && f.Community == e.comm
	}
	return !f.HasCommunity && f.ASN == e.asn
}

func TestGroundTruthScriptedEvents(t *testing.T) {
	epoch := stream.DefaultEpoch.Truncate(gtBucket)

	clean := drainAll(t, stream.NewSimSource(gtSim(t), stream.SimConfig{Days: gtDays, Epoch: epoch}))
	if len(clean) == 0 {
		t.Fatal("clean feed is empty")
	}
	t.Logf("clean corpus: %d updates over %d days", len(clean), gtDays)

	inf := classifyCorpus(clean)
	spikeC, flapC, stripAS := pickSubjects(t, clean, inf)
	t.Logf("subjects: spike=%v flap=%v strip=AS%d", spikeC, flapC, stripAS)

	// Day 0 is the learning baseline; all events land inside day 1.
	script := fmt.Sprintf("spike:%d:%d@25h+2h#400;strip:%d@30h+3h;flap:%d:%d@35h+8h#4x200",
		spikeC.ASN(), spikeC.Value(), stripAS, flapC.ASN(), flapC.Value())
	sc, err := simulate.ParseScript(script)
	if err != nil {
		t.Fatalf("ParseScript(%q): %v", script, err)
	}

	events := []gtEvent{
		{name: "spike", start: epoch.Add(25 * time.Hour), end: epoch.Add(27 * time.Hour),
			comm: spikeC, required: "spike-onset"},
		{name: "strip", start: epoch.Add(30 * time.Hour), end: epoch.Add(33 * time.Hour),
			asn: stripAS, required: "info-disappearance"},
		{name: "flap", start: epoch.Add(35 * time.Hour), end: epoch.Add(43 * time.Hour),
			comm: flapC, required: "churn"},
	}

	// Replay the perturbed feed through the engine exactly as the live
	// tap delivers it.
	eng := NewEngine(Options{
		BucketSpan: gtBucket,
		History:    24,
		Detectors:  DefaultDetectors(gtThresholds),
		Logf:       t.Logf,
	})
	eng.SetSemantics(inf)
	scripted := drainAll(t, stream.NewSimSource(gtSim(t), stream.SimConfig{Days: gtDays, Epoch: epoch, Script: sc}))
	if len(scripted) <= len(clean) {
		t.Fatalf("script injected nothing: %d scripted vs %d clean updates", len(scripted), len(clean))
	}
	for _, u := range scripted {
		eng.Process(u)
	}
	eng.CloseUpTo(epoch.Add(gtDays*24*time.Hour + gtBucket))

	rep := eng.Query(Query{})
	t.Logf("findings: %d", len(rep.Findings))
	for _, f := range rep.Findings {
		t.Logf("  %s", f.Summary)
	}

	// Recall: every scripted event produced its required finding with
	// the category the inference assigned.
	for _, e := range events {
		hit := false
		for _, f := range rep.Findings {
			if f.Kind != e.required || !e.covers(f) {
				continue
			}
			hit = true
			want := dict.CatAction
			if e.name == "strip" {
				want = dict.CatInformation
			}
			if f.Category != want {
				t.Errorf("%s finding category %v, want %v: %+v", e.name, f.Category, want, f)
			}
			if f.Generation != 1 {
				t.Errorf("%s finding generation %d, want 1", e.name, f.Generation)
			}
		}
		if !hit {
			t.Errorf("scripted %s event was not detected (no %s finding for its subject in window)",
				e.name, e.required)
		}
	}

	// Precision: every finding must be licensed by some scripted event
	// — same subject, inside the window. Cross-detector findings on an
	// event's own subject (a flap also looks spiky; a strip recovers)
	// are correct detections, not noise.
	for _, f := range rep.Findings {
		licensed := false
		for _, e := range events {
			if e.covers(f) {
				licensed = true
				break
			}
		}
		if !licensed {
			t.Errorf("false positive: %+v", f)
		}
	}
}

package anomaly

import (
	"context"
	"sync/atomic"

	"bgpintent/internal/core"
	"bgpintent/internal/stream"
)

// DefaultWatcherBuffer is the Offer channel depth when StartWatcher is
// given 0.
const DefaultWatcherBuffer = 4096

// Watcher runs an Engine on its own goroutine behind a buffered
// channel, so the stream Ingestor's OnUpdate tap can hand updates off
// without ever blocking ingestion. When the buffer is full the update
// is dropped and counted — detection degrades visibly (the dropped
// counter is in Health) instead of stalling the feed.
type Watcher struct {
	eng     *Engine
	ch      chan stream.Update
	dropped atomic.Uint64
	done    chan struct{}
}

// StartWatcher wraps eng and starts its processing goroutine. The
// goroutine drains remaining buffered updates and exits when ctx is
// canceled; Done observes termination.
func StartWatcher(ctx context.Context, eng *Engine, buffer int) *Watcher {
	if buffer <= 0 {
		buffer = DefaultWatcherBuffer
	}
	w := &Watcher{
		eng:  eng,
		ch:   make(chan stream.Update, buffer),
		done: make(chan struct{}),
	}
	go w.run(ctx)
	return w
}

func (w *Watcher) run(ctx context.Context) {
	defer close(w.done)
	for {
		select {
		case u := <-w.ch:
			w.eng.Process(u)
		case <-ctx.Done():
			// Drain what is already buffered, then stop.
			for {
				select {
				case u := <-w.ch:
					w.eng.Process(u)
				default:
					return
				}
			}
		}
	}
}

// Offer hands one update to the engine without blocking: safe to call
// from the ingest goroutine's OnUpdate tap. Full buffer drops the
// update and counts it.
func (w *Watcher) Offer(u stream.Update) {
	select {
	case w.ch <- u:
	default:
		w.dropped.Add(1)
	}
}

// SetSemantics forwards a fresh classification to the engine.
func (w *Watcher) SetSemantics(src core.InferenceSource) { w.eng.SetSemantics(src) }

// Query answers a windowed finding query.
func (w *Watcher) Query(q Query) Report { return w.eng.Query(q) }

// Stamp is the engine's monotone change counter (cache invalidation).
func (w *Watcher) Stamp() uint64 { return w.eng.Stamp() }

// Health reports the engine's provenance plus the watcher's dropped
// count.
func (w *Watcher) Health() WatchHealth {
	return WatchHealth{HealthInfo: w.eng.Health(), Dropped: w.dropped.Load()}
}

// Done closes when the processing goroutine has exited.
func (w *Watcher) Done() <-chan struct{} { return w.done }

// WatchHealth is HealthInfo plus the hand-off drop counter.
type WatchHealth struct {
	HealthInfo
	// Dropped counts updates discarded because the hand-off buffer was
	// full (detection fell behind ingestion).
	Dropped uint64
}

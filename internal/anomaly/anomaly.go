// Package anomaly is CommunityWatch: streaming anomaly detection over
// inferred community intent. It consumes the live update stream, keeps
// ring-buffered per-community activity time series bucketed by feed
// time, and runs pluggable detectors at every bucket close — MAD-based
// spike detection on action communities (blackhole onset/withdrawal),
// disappearance of reliably-tagged information communities on paths
// through an AS (leak/strip events), and churn detection on flapping
// traffic engineering. Every finding carries the inferred semantics of
// its subject at detection time; semantics refresh on each published
// classification generation without restarting the detectors.
package anomaly

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
	"bgpintent/internal/stream"
)

// Defaults for Options fields left zero.
const (
	DefaultBucketSpan  = 30 * time.Minute
	DefaultHistory     = 32
	DefaultMaxFindings = 4096
)

// Options shape the engine's time series and the default detector set.
type Options struct {
	// BucketSpan is the feed-time width of one activity bucket.
	BucketSpan time.Duration
	// History is how many closed buckets each series retains (2..64);
	// robust statistics and flap windows are computed over it.
	History int
	// MaxFindings bounds the retained finding log; the oldest half is
	// dropped when it fills.
	MaxFindings int

	// Detectors overrides the detector set; nil means
	// DefaultDetectors(Thresholds{}).
	Detectors []Detector

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.BucketSpan <= 0 {
		o.BucketSpan = DefaultBucketSpan
	}
	if o.History < 2 {
		o.History = DefaultHistory
	}
	if o.History > 64 {
		o.History = 64 // burst history is a uint64 bitmap
	}
	if o.MaxFindings <= 0 {
		o.MaxFindings = DefaultMaxFindings
	}
	if o.Detectors == nil {
		o.Detectors = DefaultDetectors(Thresholds{})
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Finding is one detected anomaly, stamped with the inferred semantics
// of its subject at detection time.
type Finding struct {
	// ID is a monotone per-engine identifier.
	ID uint64
	// Detector is the emitting detector's name; Kind is the specific
	// event shape ("spike-onset", "spike-withdrawal", "churn",
	// "info-disappearance", "info-recovery").
	Detector string
	Kind     string

	// Community is the subject of series findings (HasCommunity true);
	// ASN is the subject AS — the community's α, or the on-path AS of a
	// disappearance finding (full 32-bit space).
	Community    bgp.Community
	HasCommunity bool
	ASN          uint32

	// Category is the subject's inferred semantics when the finding was
	// made; Generation is the classification generation that said so.
	Category   dict.Category
	Generation uint64

	// Bucket is the closed feed-time bucket the finding describes;
	// Span its width.
	Bucket time.Time
	Span   time.Duration

	// Value is the observed measurement (bucket activity, or miss
	// fraction), Baseline the expectation it deviated from, and Score
	// the deviation's strength (MAD z-score, or miss/threshold ratio).
	Value, Baseline, Score float64

	// Summary is a one-line human-readable account.
	Summary string
}

// Query selects findings; zero values mean "no constraint".
type Query struct {
	// Since keeps findings whose bucket starts at or after it.
	Since time.Time
	// Window, when positive, keeps findings within this much feed time
	// of the newest closed bucket (an alternative to Since).
	Window time.Duration
	// Detector keeps findings from one detector.
	Detector string
	// Limit caps the result to the newest N findings (0 = all).
	Limit int
}

// Report is a query answer plus the engine provenance a caller needs to
// interpret (and cache) it.
type Report struct {
	Findings []Finding
	// Generation is the semantics generation detectors currently use.
	Generation uint64
	// Stamp increments on every observable change (finding, bucket
	// close, semantics swap) — the response-cache invalidation key.
	Stamp uint64
	// LastBucket is the start of the newest closed bucket; zero before
	// the first close.
	LastBucket time.Time
	// Buckets and Total are lifetime counters (closed buckets, findings
	// ever made — Total counts dropped ones too).
	Buckets uint64
	Total   uint64
}

// HealthInfo is the provenance /v1/health renders: what runs, how far
// behind it is, and how much it has seen.
type HealthInfo struct {
	// Detectors are the active detector names.
	Detectors []string
	// Updates and Buckets are lifetime counts of processed updates and
	// closed buckets.
	Updates uint64
	Buckets uint64
	// Findings is the lifetime finding count; ByDetector splits it per
	// emitting detector.
	Findings   uint64
	ByDetector map[string]uint64
	// Generation is the semantics generation in force (0 until the
	// first SetSemantics).
	Generation uint64
	// LastBucket is the feed-time start of the newest closed bucket.
	LastBucket time.Time
	// Lag is the wall-clock time since a bucket last closed — the
	// detector lag: how stale detection is relative to now, regardless
	// of feed-time compression. Zero before the first close.
	Lag time.Duration
	// Stamp mirrors Report.Stamp for cheap cache probes.
	Stamp uint64
}

// series is one community's bucketed activity ring.
type series struct {
	counts [64]uint32 // closed-bucket ring, History entries live
	n      int        // closed buckets recorded (saturates at History)
	head   int        // next ring write index
	cur    uint32     // open-bucket count
	bursts uint64     // trailing burst bits, bit 0 = newest closed bucket
	run    int        // consecutive bursting closes (baseline freeze cap)
}

// history copies the live ring, oldest first, into dst.
func (s *series) history(dst []float64) []float64 {
	dst = dst[:0]
	for i := 0; i < s.n; i++ {
		idx := (s.head - s.n + i + 64) & 63
		dst = append(dst, float64(s.counts[idx]))
	}
	return dst
}

// asOpen is one AS's open-bucket path accounting.
type asOpen struct {
	through int // routes through the AS this bucket
	tagged  int // of those, routes carrying one of its info communities
}

// Engine is the single-writer detection state machine. Process owns all
// mutation and must be called from one goroutine (the Watcher's, or a
// driver's loop); queries take a read lock and may come from anywhere.
type Engine struct {
	mu  sync.RWMutex
	opt Options

	sem    core.InferenceSource // nil until the first SetSemantics
	semGen uint64

	cur       time.Time // current open bucket start; zero before first update
	lastClose time.Time // wall clock of the newest bucket close
	series    map[bgp.Community]*series
	open      map[uint32]*asOpen // per-AS open-bucket counts
	touched   []uint32           // ASes counted this bucket (reset list)

	updates  uint64
	buckets  uint64
	total    uint64 // findings ever made
	perDet   map[string]uint64
	stamp    uint64
	findings []Finding

	// scratch buffers reused across closes (History is capped at 64).
	hist  [64]float64
	devs  [64]float64
	infoB []uint16 // info-community αs of the update being processed
}

// NewEngine builds an engine with the given options and no semantics
// yet: detectors idle (counting, not judging) until SetSemantics.
func NewEngine(opt Options) *Engine {
	return &Engine{
		opt:    opt.withDefaults(),
		series: make(map[bgp.Community]*series),
		open:   make(map[uint32]*asOpen),
		perDet: make(map[string]uint64),
	}
}

// SetSemantics swaps in a freshly-published classification; detectors
// use it from the next lookup on, no restart involved. Call on every
// snapshot generation change.
func (e *Engine) SetSemantics(src core.InferenceSource) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sem = src
	e.semGen++
	e.stamp++
}

// Process feeds one in-order stream update into the open bucket,
// closing buckets (and running detectors) whenever the update's feed
// time has moved past the bucket boundary. Single caller only.
func (e *Engine) Process(u stream.Update) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.updates++

	t := u.Time.Truncate(e.opt.BucketSpan)
	switch {
	case e.cur.IsZero():
		e.cur = t
	case t.After(e.cur):
		steps := int(t.Sub(e.cur) / e.opt.BucketSpan)
		if steps > e.opt.History {
			// The feed jumped past everything we remember: close once to
			// flush, then restart the timeline at the new bucket.
			e.closeBucketLocked()
			e.resetSeriesLocked()
			e.cur = t
			e.opt.Logf("anomaly: feed time jumped %d buckets, series history reset", steps)
		} else {
			for i := 0; i < steps; i++ {
				e.closeBucketLocked()
				e.cur = e.cur.Add(e.opt.BucketSpan)
			}
		}
	}
	// Stragglers older than the open bucket are counted into it rather
	// than dropped: conservative, like the window.

	for _, c := range u.Comms {
		s := e.series[c]
		if s == nil {
			s = &series{}
			e.series[c] = s
		}
		s.cur++
	}

	// Per-AS accounting needs semantics (which communities are
	// information); before the first classification there is nothing to
	// learn or judge.
	if e.sem == nil {
		return
	}
	e.infoB = e.infoB[:0]
	for _, c := range u.Comms {
		if e.sem.Category(c) == dict.CatInformation {
			e.infoB = append(e.infoB, c.ASN())
		}
	}
	path := u.Path
	if len(path) == 0 {
		return
	}
	for i := 1; i < len(path); i++ { // skip the vantage point itself
		asn := path[i]
		dup := false
		for j := 1; j < i; j++ {
			if path[j] == asn { // prepends count once
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		st := e.open[asn]
		if st == nil {
			st = &asOpen{}
			e.open[asn] = st
			e.touched = append(e.touched, asn)
		} else if st.through == 0 && st.tagged == 0 {
			e.touched = append(e.touched, asn)
		}
		st.through++
		if asn <= 0xffff {
			for _, b := range e.infoB {
				if uint32(b) == asn {
					st.tagged++
					break
				}
			}
		}
	}
}

// CloseUpTo closes every bucket whose span ends at or before t — the
// flush a finite feed (or a test) calls after its last update, since
// buckets otherwise close only when a later update arrives.
func (e *Engine) CloseUpTo(t time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cur.IsZero() {
		return
	}
	for !e.cur.Add(e.opt.BucketSpan).After(t) {
		e.closeBucketLocked()
		e.cur = e.cur.Add(e.opt.BucketSpan)
	}
}

// resetSeriesLocked zeroes all ring and open-bucket state.
func (e *Engine) resetSeriesLocked() {
	e.series = make(map[bgp.Community]*series)
	e.open = make(map[uint32]*asOpen)
	e.touched = e.touched[:0]
}

// closeBucketLocked seals the open bucket: computes per-series robust
// statistics, hands everything to the detectors, and rolls the rings.
func (e *Engine) closeBucketLocked() {
	info := BucketInfo{
		Start:        e.cur,
		Span:         e.opt.BucketSpan,
		Index:        e.buckets,
		Generation:   e.semGen,
		HasSemantics: e.sem != nil,
	}
	emit := func(f Finding) { e.emitLocked(f) }

	for c, s := range e.series {
		x := float64(s.cur)
		hist := s.history(e.hist[:0])
		med, mad := medianMAD(hist, e.devs[:0])
		stat := SeriesStat{
			Comm:       c,
			Count:      int(s.cur),
			Median:     med,
			MAD:        mad,
			HistoryLen: s.n,
		}
		if e.sem != nil {
			stat.Category = e.sem.Category(c)
		}
		// A bucket "bursts" when it clears the shared robust threshold;
		// bursting values are kept out of the baseline ring (frozen
		// baseline) so an excursion cannot mask itself — capped, so a
		// genuine level shift is eventually accepted as the new normal.
		stat.Burst = s.n >= 2 && x >= burstThreshold(med, mad)
		s.bursts = s.bursts<<1 | btoi(stat.Burst)
		stat.BurstBits = s.bursts
		freeze := stat.Burst && s.run < e.opt.History/2
		if stat.Burst {
			s.run++
		} else {
			s.run = 0
		}

		for _, d := range e.opt.Detectors {
			if sd, ok := d.(SeriesDetector); ok {
				sd.CloseSeries(info, stat, emit)
			}
		}

		if !freeze {
			s.counts[s.head] = s.cur
			s.head = (s.head + 1) & 63
			if s.n < e.opt.History {
				s.n++
			}
		}
		s.cur = 0
	}

	for _, asn := range e.touched {
		st := e.open[asn]
		a := ASStat{ASN: asn, Through: st.through, Tagged: st.tagged}
		for _, d := range e.opt.Detectors {
			if pd, ok := d.(PathDetector); ok {
				pd.CloseAS(info, a, emit)
			}
		}
		st.through, st.tagged = 0, 0
	}
	e.touched = e.touched[:0]

	e.buckets++
	e.lastClose = time.Now()
	e.stamp++
}

// emitLocked stamps and stores one finding.
func (e *Engine) emitLocked(f Finding) {
	e.total++
	e.perDet[f.Detector]++
	f.ID = e.total
	f.Generation = e.semGen
	f.Bucket = e.cur
	f.Span = e.opt.BucketSpan
	if len(e.findings) >= e.opt.MaxFindings {
		half := len(e.findings) / 2
		e.findings = append(e.findings[:0], e.findings[half:]...)
	}
	e.findings = append(e.findings, f)
	e.stamp++
	e.opt.Logf("anomaly: %s", f.Summary)
}

// Query answers a windowed finding query.
func (e *Engine) Query(q Query) Report {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var lastBucket time.Time
	if e.buckets > 0 {
		lastBucket = e.cur.Add(-e.opt.BucketSpan)
	}
	since := q.Since
	if q.Window > 0 {
		ws := lastBucket.Add(-q.Window)
		if ws.After(since) {
			since = ws
		}
	}
	rep := Report{
		Generation: e.semGen,
		Stamp:      e.stamp,
		LastBucket: lastBucket,
		Buckets:    e.buckets,
		Total:      e.total,
	}
	for i := len(e.findings) - 1; i >= 0; i-- {
		f := e.findings[i]
		if !since.IsZero() && f.Bucket.Before(since) {
			continue
		}
		if q.Detector != "" && f.Detector != q.Detector {
			continue
		}
		rep.Findings = append(rep.Findings, f)
		if q.Limit > 0 && len(rep.Findings) >= q.Limit {
			break
		}
	}
	// Newest-first scan for the limit; present oldest-first.
	sort.Slice(rep.Findings, func(i, j int) bool { return rep.Findings[i].ID < rep.Findings[j].ID })
	return rep
}

// Health reports detector provenance and lag.
func (e *Engine) Health() HealthInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h := HealthInfo{
		Updates:    e.updates,
		Buckets:    e.buckets,
		Findings:   e.total,
		Generation: e.semGen,
		Stamp:      e.stamp,
	}
	if e.buckets > 0 {
		h.LastBucket = e.cur.Add(-e.opt.BucketSpan)
		h.Lag = time.Since(e.lastClose)
	}
	for _, d := range e.opt.Detectors {
		h.Detectors = append(h.Detectors, d.Name())
	}
	h.ByDetector = make(map[string]uint64, len(e.perDet))
	for name, n := range e.perDet {
		h.ByDetector[name] = n
	}
	return h
}

// Stamp is the engine's monotone change counter (cache invalidation).
func (e *Engine) Stamp() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stamp
}

// medianMAD computes the median and the median absolute deviation of
// xs, using devs as scratch. xs is sorted in place. Empty xs yields
// (0, 0).
func medianMAD(xs, devs []float64) (med, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sort.Float64s(xs)
	med = quantile(xs)
	for _, x := range xs {
		d := x - med
		if d < 0 {
			d = -d
		}
		devs = append(devs, d)
	}
	sort.Float64s(devs)
	return med, quantile(devs)
}

// quantile returns the median of a sorted slice.
func quantile(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func btoi(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// String renders a finding subject for summaries.
func (f *Finding) subject() string {
	if f.HasCommunity {
		return f.Community.String()
	}
	return fmt.Sprintf("AS%d", f.ASN)
}

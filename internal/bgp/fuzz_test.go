package bgp

import (
	"math/rand"
	"testing"
)

// TestDecodeUpdateNeverPanics feeds random corruptions of a valid UPDATE
// through the decoder: every outcome must be a clean error or a decode,
// never a panic or out-of-range access.
func TestDecodeUpdateNeverPanics(t *testing.T) {
	base := &UpdateMessage{
		Withdrawn: []Prefix{MustParsePrefix("10.1.0.0/16")},
		Attrs:     testAttrs(),
		NLRI:      []Prefix{MustParsePrefix("192.0.2.0/24")},
	}
	wire, err := base.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 5000; trial++ {
		buf := append([]byte(nil), wire...)
		// Corrupt 1-8 random bytes.
		for k := 0; k < 1+rng.Intn(8); k++ {
			buf[rng.Intn(len(buf))] = byte(rng.Intn(256))
		}
		// Random truncation half the time.
		if rng.Intn(2) == 0 {
			buf = buf[:rng.Intn(len(buf)+1)]
		}
		_, _ = DecodeUpdate(buf) // must not panic
	}
}

// TestDecodeUpdateRandomBytes drives the decoder with pure noise.
func TestDecodeUpdateRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		buf := make([]byte, rng.Intn(256))
		rng.Read(buf)
		_, _ = DecodeUpdate(buf)
	}
}

// TestDecodeAttrsRandomBytes drives the attribute parser with noise.
func TestDecodeAttrsRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		buf := make([]byte, rng.Intn(128))
		rng.Read(buf)
		var a PathAttributes
		_ = DecodeAttrs(buf, &a)
	}
}

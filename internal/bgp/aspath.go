package bgp

import (
	"fmt"
	"strconv"
	"strings"
)

// Segment types for AS_PATH path segments (RFC 4271 §4.3).
const (
	SegmentTypeASSet      uint8 = 1 // unordered set of ASes a route has traversed
	SegmentTypeASSequence uint8 = 2 // ordered sequence of ASes a route has traversed
)

// PathSegment is one AS_PATH segment: an ordered AS_SEQUENCE or an
// unordered AS_SET (the latter produced by route aggregation).
type PathSegment struct {
	Type uint8    // SegmentTypeASSet or SegmentTypeASSequence
	ASNs []uint32 // 4-octet AS numbers (RFC 6793 semantics throughout)
}

// ASPath is a route's AS_PATH attribute: the sequence of ASes the
// announcement traversed, nearest AS first, origin AS last.
//
// All ASNs are handled as 4-octet values (RFC 6793); the wire codecs write
// AS_PATH in the 4-octet encoding used by BGP4MP_MESSAGE_AS4 and modern
// TABLE_DUMP_V2 archives.
type ASPath struct {
	Segments []PathSegment
}

// NewASPath builds a single-sequence path from the given ASNs (nearest
// first, origin last).
func NewASPath(asns ...uint32) ASPath {
	if len(asns) == 0 {
		return ASPath{}
	}
	seq := make([]uint32, len(asns))
	copy(seq, asns)
	return ASPath{Segments: []PathSegment{{Type: SegmentTypeASSequence, ASNs: seq}}}
}

// Clone returns a deep copy of the path.
func (p ASPath) Clone() ASPath {
	out := ASPath{Segments: make([]PathSegment, len(p.Segments))}
	for i, seg := range p.Segments {
		asns := make([]uint32, len(seg.ASNs))
		copy(asns, seg.ASNs)
		out.Segments[i] = PathSegment{Type: seg.Type, ASNs: asns}
	}
	return out
}

// Empty reports whether the path contains no ASNs.
func (p ASPath) Empty() bool {
	for _, seg := range p.Segments {
		if len(seg.ASNs) > 0 {
			return false
		}
	}
	return true
}

// Flatten returns every ASN in the path in order, with AS_SET members in
// their stored order. Prepended duplicates are preserved.
func (p ASPath) Flatten() []uint32 {
	n := 0
	for _, seg := range p.Segments {
		n += len(seg.ASNs)
	}
	return p.AppendFlatten(make([]uint32, 0, n))
}

// AppendFlatten appends every ASN in the path to dst and returns the
// extended slice; it is Flatten for callers that reuse a scratch buffer.
func (p ASPath) AppendFlatten(dst []uint32) []uint32 {
	for _, seg := range p.Segments {
		dst = append(dst, seg.ASNs...)
	}
	return dst
}

// Unique returns the distinct ASNs in the path, in first-appearance order.
func (p ASPath) Unique() []uint32 {
	seen := make(map[uint32]struct{})
	var out []uint32
	for _, seg := range p.Segments {
		for _, asn := range seg.ASNs {
			if _, ok := seen[asn]; !ok {
				seen[asn] = struct{}{}
				out = append(out, asn)
			}
		}
	}
	return out
}

// Contains reports whether asn appears anywhere in the path.
func (p ASPath) Contains(asn uint32) bool {
	for _, seg := range p.Segments {
		for _, a := range seg.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// Origin returns the origin AS (the last ASN of the last segment) and true,
// or 0 and false for an empty path. If the last segment is an AS_SET the
// origin is ambiguous; the first set member is returned, matching common
// measurement practice.
func (p ASPath) Origin() (uint32, bool) {
	for i := len(p.Segments) - 1; i >= 0; i-- {
		seg := p.Segments[i]
		if len(seg.ASNs) == 0 {
			continue
		}
		if seg.Type == SegmentTypeASSet {
			return seg.ASNs[0], true
		}
		return seg.ASNs[len(seg.ASNs)-1], true
	}
	return 0, false
}

// First returns the nearest ASN (the collector-facing end) and true, or
// 0 and false for an empty path.
func (p ASPath) First() (uint32, bool) {
	for _, seg := range p.Segments {
		if len(seg.ASNs) > 0 {
			return seg.ASNs[0], true
		}
	}
	return 0, false
}

// Prepend inserts asn at the front of the path count times, extending the
// leading AS_SEQUENCE (or creating one). This mirrors what a router does
// when applying prepend policy or propagating a route.
func (p *ASPath) Prepend(asn uint32, count int) {
	if count <= 0 {
		return
	}
	pre := make([]uint32, count)
	for i := range pre {
		pre[i] = asn
	}
	if len(p.Segments) > 0 && p.Segments[0].Type == SegmentTypeASSequence {
		p.Segments[0].ASNs = append(pre, p.Segments[0].ASNs...)
		return
	}
	p.Segments = append([]PathSegment{{Type: SegmentTypeASSequence, ASNs: pre}}, p.Segments...)
}

// Len returns the AS_PATH length used in best-path selection: the number
// of ASNs in sequences, with each AS_SET counting as one hop (RFC 4271
// §9.1.2.2).
func (p ASPath) Len() int {
	n := 0
	for _, seg := range p.Segments {
		if seg.Type == SegmentTypeASSet {
			if len(seg.ASNs) > 0 {
				n++
			}
			continue
		}
		n += len(seg.ASNs)
	}
	return n
}

// HasLoop reports whether asn already appears in the path, the check a
// router performs before accepting a route from an eBGP neighbor.
func (p ASPath) HasLoop(asn uint32) bool { return p.Contains(asn) }

// Equal reports whether two paths have identical segment structure.
func (p ASPath) Equal(q ASPath) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		a, b := p.Segments[i], q.Segments[i]
		if a.Type != b.Type || len(a.ASNs) != len(b.ASNs) {
			return false
		}
		for j := range a.ASNs {
			if a.ASNs[j] != b.ASNs[j] {
				return false
			}
		}
	}
	return true
}

// Key returns a compact, comparable string key for the path, suitable for
// de-duplicating (AS path, communities) tuples in maps. Sequences render
// as space-separated ASNs; sets as {a,b,...}.
func (p ASPath) Key() string {
	var b strings.Builder
	for i, seg := range p.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		if seg.Type == SegmentTypeASSet {
			b.WriteByte('{')
			for j, asn := range seg.ASNs {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatUint(uint64(asn), 10))
			}
			b.WriteByte('}')
			continue
		}
		for j, asn := range seg.ASNs {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatUint(uint64(asn), 10))
		}
	}
	return b.String()
}

// String renders the path in looking-glass style, identical to Key.
func (p ASPath) String() string { return p.Key() }

// ParseASPath parses the Key/String representation back into a path.
func ParseASPath(s string) (ASPath, error) {
	var p ASPath
	fields := strings.Fields(s)
	for _, f := range fields {
		if strings.HasPrefix(f, "{") {
			if !strings.HasSuffix(f, "}") {
				return ASPath{}, fmt.Errorf("bgp: as path %q: unterminated AS_SET %q", s, f)
			}
			inner := strings.Trim(f, "{}")
			var set []uint32
			if inner != "" {
				for _, part := range strings.Split(inner, ",") {
					v, err := strconv.ParseUint(part, 10, 32)
					if err != nil {
						return ASPath{}, fmt.Errorf("bgp: as path %q: bad AS_SET member %q: %v", s, part, err)
					}
					set = append(set, uint32(v))
				}
			}
			p.Segments = append(p.Segments, PathSegment{Type: SegmentTypeASSet, ASNs: set})
			continue
		}
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return ASPath{}, fmt.Errorf("bgp: as path %q: bad ASN %q: %v", s, f, err)
		}
		if n := len(p.Segments); n > 0 && p.Segments[n-1].Type == SegmentTypeASSequence {
			p.Segments[n-1].ASNs = append(p.Segments[n-1].ASNs, uint32(v))
		} else {
			p.Segments = append(p.Segments, PathSegment{Type: SegmentTypeASSequence, ASNs: []uint32{uint32(v)}})
		}
	}
	return p, nil
}

package bgp

import (
	"testing"
	"testing/quick"
)

func TestCommunityParts(t *testing.T) {
	c := NewCommunity(1299, 2569)
	if got := c.ASN(); got != 1299 {
		t.Errorf("ASN() = %d, want 1299", got)
	}
	if got := c.Value(); got != 2569 {
		t.Errorf("Value() = %d, want 2569", got)
	}
	if got := c.String(); got != "1299:2569" {
		t.Errorf("String() = %q, want \"1299:2569\"", got)
	}
}

func TestCommunityRoundTripQuick(t *testing.T) {
	f := func(asn, val uint16) bool {
		c := NewCommunity(asn, val)
		return c.ASN() == asn && c.Value() == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCommunity(t *testing.T) {
	tests := []struct {
		in      string
		want    Community
		wantErr bool
	}{
		{"1299:2569", NewCommunity(1299, 2569), false},
		{"0:0", NewCommunity(0, 0), false},
		{"65535:65535", NewCommunity(65535, 65535), false},
		{"3356:0", NewCommunity(3356, 0), false},
		{"65536:1", 0, true},     // ASN overflows 16 bits
		{"1:65536", 0, true},     // value overflows 16 bits
		{"1299", 0, true},        // missing colon
		{"a:b", 0, true},         // not numeric
		{"-1:5", 0, true},        // negative
		{"1299:2569:1", 0, true}, // too many parts for a regular community
		{"", 0, true},
	}
	for _, tc := range tests {
		got, err := ParseCommunity(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseCommunity(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCommunity(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseCommunity(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseCommunityStringRoundTripQuick(t *testing.T) {
	f := func(asn, val uint16) bool {
		c := NewCommunity(asn, val)
		got, err := ParseCommunity(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWellKnownCommunities(t *testing.T) {
	if got := CommunityNoExport.String(); got != "65535:65281" {
		t.Errorf("NO_EXPORT = %q, want 65535:65281", got)
	}
	if got := CommunityBlackhole.String(); got != "65535:666" {
		t.Errorf("BLACKHOLE = %q, want 65535:666", got)
	}
	if got := CommunityGracefulShutdown.String(); got != "65535:0" {
		t.Errorf("GSHUT = %q, want 65535:0", got)
	}
	if got := CommunityNoPeer.String(); got != "65535:65284" {
		t.Errorf("NOPEER = %q, want 65535:65284", got)
	}
	for _, c := range []Community{
		CommunityGracefulShutdown, CommunityBlackhole, CommunityNoExport,
		CommunityNoAdvertise, CommunityNoExportSubconfed, CommunityNoPeer,
	} {
		if !c.IsWellKnown() {
			t.Errorf("%v.IsWellKnown() = false, want true", c)
		}
	}
	if NewCommunity(1299, 2569).IsWellKnown() {
		t.Error("1299:2569 flagged well-known")
	}
}

func TestIsPrivateASN(t *testing.T) {
	tests := []struct {
		c    Community
		want bool
	}{
		{NewCommunity(64511, 1), false},
		{NewCommunity(64512, 1), true}, // first private ASN
		{NewCommunity(65000, 1), true},
		{NewCommunity(65534, 1), true}, // last private ASN
		{NewCommunity(65535, 1), true}, // reserved; also not classifiable
		{NewCommunity(1299, 1), false},
	}
	for _, tc := range tests {
		if got := tc.c.IsPrivateASN(); got != tc.want {
			t.Errorf("%v.IsPrivateASN() = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestCommunitiesHas(t *testing.T) {
	cs := Communities{NewCommunity(1299, 50), NewCommunity(3356, 100)}
	if !cs.Has(NewCommunity(1299, 50)) {
		t.Error("Has existing = false")
	}
	if cs.Has(NewCommunity(1299, 51)) {
		t.Error("Has missing = true")
	}
	var empty Communities
	if empty.Has(NewCommunity(1, 1)) {
		t.Error("empty set Has = true")
	}
}

func TestCommunitiesCanonical(t *testing.T) {
	cs := Communities{
		NewCommunity(3356, 100),
		NewCommunity(1299, 50),
		NewCommunity(3356, 100),
		NewCommunity(1299, 50),
		NewCommunity(1299, 49),
	}
	got := cs.Canonical()
	want := Communities{
		NewCommunity(1299, 49),
		NewCommunity(1299, 50),
		NewCommunity(3356, 100),
	}
	if len(got) != len(want) {
		t.Fatalf("Canonical len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Canonical[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Original must be untouched.
	if cs[0] != NewCommunity(3356, 100) {
		t.Error("Canonical mutated its receiver")
	}
	if got := Communities(nil).Canonical(); got != nil {
		t.Errorf("nil Canonical = %v, want nil", got)
	}
}

func TestCommunitiesCanonicalQuick(t *testing.T) {
	// Property: canonical form is sorted and duplicate-free, and contains
	// exactly the distinct input values.
	f := func(vals []uint32) bool {
		cs := make(Communities, len(vals))
		set := make(map[Community]bool)
		for i, v := range vals {
			cs[i] = Community(v)
			set[Community(v)] = true
		}
		canon := cs.Canonical()
		if len(canon) != len(set) {
			return false
		}
		for i, c := range canon {
			if !set[c] {
				return false
			}
			if i > 0 && canon[i-1] >= c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommunitiesString(t *testing.T) {
	cs := Communities{NewCommunity(1299, 50), NewCommunity(1299, 150)}
	if got := cs.String(); got != "1299:50 1299:150" {
		t.Errorf("String() = %q", got)
	}
	if got := (Communities{}).String(); got != "" {
		t.Errorf("empty String() = %q, want \"\"", got)
	}
}

func TestLargeCommunityString(t *testing.T) {
	lc := LargeCommunity{GlobalAdmin: 197000, LocalData1: 100, LocalData2: 7}
	if got := lc.String(); got != "197000:100:7" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseLargeCommunity(t *testing.T) {
	lc, err := ParseLargeCommunity("4200000000:1:2")
	if err != nil {
		t.Fatal(err)
	}
	if lc.GlobalAdmin != 4200000000 || lc.LocalData1 != 1 || lc.LocalData2 != 2 {
		t.Errorf("got %+v", lc)
	}
	for _, bad := range []string{"1:2", "1:2:3:4", "a:1:2", "1:2:4294967296", ""} {
		if _, err := ParseLargeCommunity(bad); err == nil {
			t.Errorf("ParseLargeCommunity(%q): want error", bad)
		}
	}
}

func TestParseLargeCommunityRoundTripQuick(t *testing.T) {
	f := func(a, b, c uint32) bool {
		lc := LargeCommunity{a, b, c}
		got, err := ParseLargeCommunity(lc.String())
		return err == nil && got == lc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargeCommunitiesSort(t *testing.T) {
	ls := LargeCommunities{
		{2, 0, 0},
		{1, 5, 5},
		{1, 5, 4},
		{1, 4, 9},
	}
	ls.Sort()
	want := LargeCommunities{{1, 4, 9}, {1, 5, 4}, {1, 5, 5}, {2, 0, 0}}
	for i := range want {
		if ls[i] != want[i] {
			t.Errorf("Sort[%d] = %v, want %v", i, ls[i], want[i])
		}
	}
}

func TestExtendedCommunity(t *testing.T) {
	ec := ExtendedCommunity{Type: ExtCommTypeTransitive4ByteAS, SubType: 2, Global: 196615, Local: 300}
	if !ec.IsFourOctetAS() {
		t.Error("IsFourOctetAS = false")
	}
	if got := ec.String(); got != "196615:300" {
		t.Errorf("String() = %q", got)
	}
	opaque := ExtendedCommunity{Type: 0x03, SubType: 0x0c, Global: 1, Local: 2}
	if opaque.IsFourOctetAS() {
		t.Error("opaque IsFourOctetAS = true")
	}
	if got := opaque.String(); got != "ext(0x03:0x0c):1:2" {
		t.Errorf("opaque String() = %q", got)
	}
}

func TestCommunitiesClone(t *testing.T) {
	cs := Communities{NewCommunity(1, 2)}
	c2 := cs.Clone()
	c2[0] = NewCommunity(3, 4)
	if cs[0] != NewCommunity(1, 2) {
		t.Error("Clone shares backing array")
	}
	if Communities(nil).Clone() != nil {
		t.Error("nil Clone != nil")
	}
}

func TestParseCommunities(t *testing.T) {
	for _, tc := range []struct {
		in        string
		want      Communities
		wantLarge LargeCommunities
	}{
		{"", nil, nil},
		{"   ", nil, nil},
		{"2914:3075", Communities{NewCommunity(2914, 3075)}, nil},
		{"2914:3075 2914:420", Communities{NewCommunity(2914, 3075), NewCommunity(2914, 420)}, nil},
		{"2914:3075,2914:420", Communities{NewCommunity(2914, 3075), NewCommunity(2914, 420)}, nil},
		{"2914:3075, 2914:420\t1299:20", Communities{
			NewCommunity(2914, 3075), NewCommunity(2914, 420), NewCommunity(1299, 20)}, nil},
		{"4200000000:1:2", nil, LargeCommunities{{4200000000, 1, 2}}},
		{"2914:3075 57866:100:1,2914:420", Communities{NewCommunity(2914, 3075), NewCommunity(2914, 420)},
			LargeCommunities{{57866, 100, 1}}},
	} {
		got, gotLarge, err := ParseCommunities(tc.in)
		if err != nil {
			t.Errorf("ParseCommunities(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) || len(gotLarge) != len(tc.wantLarge) {
			t.Errorf("ParseCommunities(%q) = %v, %v, want %v, %v", tc.in, got, gotLarge, tc.want, tc.wantLarge)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseCommunities(%q)[%d] = %v, want %v", tc.in, i, got[i], tc.want[i])
			}
		}
		for i := range gotLarge {
			if gotLarge[i] != tc.wantLarge[i] {
				t.Errorf("ParseCommunities(%q) large[%d] = %v, want %v", tc.in, i, gotLarge[i], tc.wantLarge[i])
			}
		}
	}
	for _, bad := range []string{"2914", "2914:x", "70000:1", "2914:3075 nope", "1:2:3:4", "1:2:x"} {
		if _, _, err := ParseCommunities(bad); err == nil {
			t.Errorf("ParseCommunities(%q) accepted", bad)
		}
	}
}
